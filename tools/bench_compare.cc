// Benchmark-regression gate: diff a fresh bench_snapshot run against the
// committed baseline.
//
//   bench_compare <baseline.json> <current.json> [--threshold=0.10]
//
// Rules, per metric name in the baseline:
//   - gated metrics ("gate": true) fail the run when the current value
//     regresses by more than `threshold` (relative, direction-aware: a
//     "lower"-is-better metric regresses when it grows; "higher" when it
//     shrinks). Improvements of any size pass — with a note, so a
//     too-good-to-be-true jump is visible in the CI log.
//   - a gated baseline metric missing from the current run fails (a flow
//     that stopped compiling is a regression too).
//   - non-gated metrics are printed as informational deltas only.
// New metrics present only in the current run are listed as additions and
// never fail — committing a refreshed baseline is how they become gated.
//
// Exit status: 0 = within threshold, 1 = regression, 2 = usage/parse error.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>

#include "support/json.h"

namespace {

struct Metric {
  double value = 0.0;
  bool lower_is_better = true;
  bool gate = true;
};

std::map<std::string, Metric> LoadSnapshot(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    throw std::runtime_error("cannot open " + path);
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const tnp::support::JsonValue root = tnp::support::JsonValue::Parse(buffer.str());
  const tnp::support::JsonValue* metrics = root.Find("metrics");
  if (metrics == nullptr || !metrics->is_object()) {
    throw std::runtime_error(path + ": missing \"metrics\" object");
  }
  std::map<std::string, Metric> result;
  for (const auto& [name, entry] : metrics->object()) {
    Metric metric;
    metric.value = entry.NumberOr("value", 0.0);
    metric.lower_is_better = entry.StringOr("better", "lower") != "higher";
    const tnp::support::JsonValue* gate = entry.Find("gate");
    metric.gate = gate == nullptr || (gate->is_bool() && gate->bool_value());
    result[name] = metric;
  }
  return result;
}

std::string Percent(double ratio) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%+.1f%%", ratio * 100.0);
  return buffer;
}

}  // namespace

int main(int argc, char** argv) {
  double threshold = 0.10;
  std::string baseline_path;
  std::string current_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threshold=", 12) == 0) {
      threshold = std::atof(argv[i] + 12);
    } else if (baseline_path.empty()) {
      baseline_path = argv[i];
    } else if (current_path.empty()) {
      current_path = argv[i];
    }
  }
  if (baseline_path.empty() || current_path.empty()) {
    std::cerr << "usage: bench_compare <baseline.json> <current.json>"
                 " [--threshold=0.10]\n";
    return 2;
  }

  std::map<std::string, Metric> baseline;
  std::map<std::string, Metric> current;
  try {
    baseline = LoadSnapshot(baseline_path);
    current = LoadSnapshot(current_path);
  } catch (const std::exception& error) {
    std::cerr << "bench_compare: " << error.what() << "\n";
    return 2;
  }

  int regressions = 0;
  for (const auto& [name, base] : baseline) {
    const auto it = current.find(name);
    if (it == current.end()) {
      if (base.gate) {
        std::cout << "FAIL  " << name << ": missing from current run\n";
        ++regressions;
      } else {
        std::cout << "info  " << name << ": missing from current run\n";
      }
      continue;
    }
    const Metric& cur = it->second;
    // Signed relative change where positive = worse, respecting direction.
    double change = 0.0;
    if (base.value != 0.0) {
      change = (cur.value - base.value) / std::fabs(base.value);
      if (!base.lower_is_better) change = -change;
    } else if (cur.value != 0.0) {
      change = base.lower_is_better == (cur.value > 0.0) ? 1.0 : -1.0;
    }
    const bool regressed = base.gate && change > threshold;
    const char* tag = regressed ? "FAIL " : (base.gate ? "ok   " : "info ");
    std::cout << tag << " " << name << ": " << base.value << " -> " << cur.value
              << " (" << Percent(change) << " toward worse"
              << (base.gate && change <= -threshold
                      ? "; large improvement, consider refreshing the baseline"
                      : "")
              << ")\n";
    if (regressed) ++regressions;
  }
  for (const auto& [name, cur] : current) {
    if (baseline.find(name) == baseline.end()) {
      std::cout << "new   " << name << " = " << cur.value
                << " (not in baseline; refresh to gate it)\n";
    }
  }

  if (regressions > 0) {
    std::cout << "\nbench_compare: " << regressions << " regression(s) beyond "
              << Percent(threshold) << " threshold\n";
    return 1;
  }
  std::cout << "\nbench_compare: all gated metrics within " << Percent(threshold)
            << " of baseline\n";
  return 0;
}
