// tune_cli — sweep the model zoo's GEMM workloads and persist winners into
// a tuning DB, the offline half of the tune-then-serve workflow:
//
//   tune_cli --db=/var/tnp/tune --budget-ms=2000
//   showcase_app --tuning-db=/var/tnp/tune ...   # builds consult the DB
//
// Workloads come from relay::CollectGemmWorkloads over each model's compiled
// program, so the CLI tunes exactly the (op, dtype, M, K, N) set the build
// will look up — no hand-maintained shape list to drift. Output is a
// per-shape before/after table (default config vs tuned winner) on stdout;
// CI uploads it next to the DB.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <unordered_set>
#include <vector>

#include "relay/build.h"
#include "support/logging.h"
#include "support/metrics.h"
#include "tune/db.h"
#include "tune/tuner.h"
#include "zoo/zoo.h"

namespace {

using tnp::relay::CollectGemmWorkloads;
using tnp::tune::TuneOptions;
using tnp::tune::TuneResult;
using tnp::tune::TuningDb;
using tnp::tune::Workload;

int Usage() {
  std::fprintf(stderr,
               "usage: tune_cli --db=DIR [options]\n"
               "  --db=DIR          tuning DB directory (created if missing; required)\n"
               "  --budget-ms=N     total wall-clock budget for the sweep (0 = unbounded)\n"
               "  --models=a,b,...  zoo models to collect workloads from\n"
               "                    (default: emotion_cnn,mobilenet_v1,mobilenet_v2,\n"
               "                     mobilenet_v1_quant,resnet18; 'all' sweeps the zoo)\n"
               "  --repetitions=N   timed repetitions per candidate (default 5)\n"
               "  --retune          re-measure workloads already in the DB\n"
               "  --verify          rebuild the models with the DB active and fail\n"
               "                    unless the builds consult it (db hits > 0)\n");
  return 2;
}

std::vector<std::string> SplitList(const std::string& text) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::string item = text.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (!item.empty()) out.push_back(item);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

/// Deduplicated GEMM workloads of the given models, in discovery order.
std::vector<Workload> CollectWorkloads(const std::vector<std::string>& models) {
  std::vector<Workload> workloads;
  std::unordered_set<std::string> seen;
  for (const std::string& name : models) {
    const tnp::relay::Module module = tnp::zoo::Build(name);
    const tnp::relay::CompiledModulePtr compiled = tnp::relay::Build(module);
    const std::vector<Workload> found = CollectGemmWorkloads(*compiled);
    int fresh = 0;
    for (const Workload& workload : found) {
      if (seen.insert(workload.Key()).second) {
        workloads.push_back(workload);
        ++fresh;
      }
    }
    std::fprintf(stderr, "tune_cli: %s: %d workloads (%d new)\n", name.c_str(),
                 static_cast<int>(found.size()), fresh);
  }
  return workloads;
}

}  // namespace

int main(int argc, char** argv) {
  std::string db_dir;
  bool verify = false;
  TuneOptions options;
  std::vector<std::string> models = {"emotion_cnn", "mobilenet_v1", "mobilenet_v2",
                                     "mobilenet_v1_quant", "resnet18"};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--db=", 0) == 0) {
      db_dir = arg.substr(5);
    } else if (arg.rfind("--budget-ms=", 0) == 0) {
      options.budget_ms = std::atof(arg.substr(12).c_str());
    } else if (arg.rfind("--models=", 0) == 0) {
      const std::string list = arg.substr(9);
      if (list == "all") {
        models.clear();
        for (const auto& info : tnp::zoo::AllModels()) models.push_back(info.name);
      } else {
        models = SplitList(list);
      }
    } else if (arg.rfind("--repetitions=", 0) == 0) {
      options.repetitions = std::atoi(arg.substr(14).c_str());
    } else if (arg == "--retune") {
      options.retune = true;
    } else if (arg == "--verify") {
      verify = true;
    } else {
      std::fprintf(stderr, "tune_cli: unknown argument '%s'\n", arg.c_str());
      return Usage();
    }
  }
  if (db_dir.empty()) return Usage();

  try {
    auto db = std::make_shared<TuningDb>(db_dir);
    std::fprintf(stderr, "tune_cli: DB %s (%d existing records)\n", db_dir.c_str(),
                 static_cast<int>(db->size()));

    const std::vector<Workload> workloads = CollectWorkloads(models);
    std::fprintf(stderr, "tune_cli: %d distinct workloads, budget %.0f ms\n",
                 static_cast<int>(workloads.size()), options.budget_ms);

    std::vector<TuneResult> results;
    const int tuned = tnp::tune::TuneAll(workloads, db.get(), options,
                                         [&](const TuneResult& result) {
                                           results.push_back(result);
                                         });

    // Per-shape before/after table (stdout; everything else goes to stderr).
    std::printf("%-34s %8s %10s %10s %8s  %s\n", "workload", "trials",
                "default_us", "best_us", "speedup", "config");
    for (const TuneResult& result : results) {
      const auto& record = result.record;
      const double speedup =
          record.best_us > 0.0 ? record.baseline_us / record.best_us : 1.0;
      std::printf("%-34s %5d/%-2d %10.1f %10.1f %7.2fx  %s%s\n",
                  record.workload.Key().c_str(), record.trials,
                  result.candidates_total, record.baseline_us, record.best_us,
                  speedup, record.config.ToString().c_str(),
                  result.exhausted ? "" : "  (budget hit)");
    }
    std::fprintf(stderr, "tune_cli: tuned %d workloads, DB now %d records\n",
                 tuned, static_cast<int>(db->size()));
    std::fprintf(stderr, "tune_cli: fingerprint %s\n", db->Fingerprint().c_str());

    if (verify) {
      // Consultation check: rebuild the same models with the DB active and
      // require the builds to actually look it up. The workloads were
      // derived from these exact builds, so every tuned shape must hit.
      auto& registry = tnp::support::metrics::Registry::Global();
      const std::int64_t hits_before = registry.GetCounter("tune/db_hits").value();
      const std::int64_t misses_before =
          registry.GetCounter("tune/db_misses").value();
      tnp::tune::SetActiveTuningDb(db);
      for (const std::string& name : models) {
        (void)tnp::relay::Build(tnp::zoo::Build(name));
      }
      tnp::tune::SetActiveTuningDb(nullptr);
      const std::int64_t hits =
          registry.GetCounter("tune/db_hits").value() - hits_before;
      const std::int64_t misses =
          registry.GetCounter("tune/db_misses").value() - misses_before;
      std::fprintf(stderr,
                   "tune_cli: verify: rebuild consulted the DB %lld times "
                   "(%lld hits, %lld misses)\n",
                   static_cast<long long>(hits + misses),
                   static_cast<long long>(hits), static_cast<long long>(misses));
      if (hits <= 0) {
        std::fprintf(stderr,
                     "tune_cli: verify FAILED: no build looked up a tuned "
                     "config (db_hits=0)\n");
        return 1;
      }
    }
  } catch (const tnp::Error& e) {
    std::fprintf(stderr, "tune_cli: error: %s\n", e.what());
    return 1;
  }
  return 0;
}
