// Cross-process artifact cache round-trip checker (the CI "cache
// round-trip" job, and the artifact_roundtrip_{save,verify} ctest pair).
//
//   artifact_roundtrip save <dir>     build the model zoo through an
//                                     ArtifactStore at <dir>/store and write
//                                     every flow's outputs to <dir>/expected
//   artifact_roundtrip verify <dir>   in a FRESH process: compile the same
//                                     zoo through the same store (every
//                                     compile must be a cache hit), run, and
//                                     diff outputs bitwise against both a
//                                     fresh in-process compile and the saved
//                                     bytes from the `save` process
//
// `verify` exits non-zero on any cache miss, any bitwise difference, or any
// load error — a loaded artifact must be indistinguishable from a fresh
// compile across process boundaries, not merely within one.
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "artifact/store.h"
#include "core/flows.h"
#include "relay/expr.h"
#include "support/error.h"
#include "support/metrics.h"
#include "zoo/zoo.h"

namespace fs = std::filesystem;
using namespace tnp;

namespace {

/// The showcase trio plus one model per frontend framework, small enough
/// for CI numerics but covering every serialization path (f32, s8 quant,
/// multi-output SSD, BYOC partitions, NP packages).
const std::vector<std::string>& Models() {
  static const std::vector<std::string> models = {
      "mobilenet_v1",    "mobilenet_v1_quant", "mobilenet_v2",
      "deepixbis",       "emotion_cnn",        "mobilenet_ssd_quant",
  };
  return models;
}

constexpr core::FlowKind kFlows[] = {
    core::FlowKind::kTvmOnly,
    core::FlowKind::kByocCpuApu,
    core::FlowKind::kNpCpuApu,
};

zoo::ZooOptions SmallOptions() {
  zoo::ZooOptions options;
  options.image_size = 32;
  options.width = 0.25;
  options.depth = 0.3;
  return options;
}

std::string Sanitize(const std::string& name) {
  std::string out;
  for (const char c : name) {
    out.push_back(std::isalnum(static_cast<unsigned char>(c)) ? c : '_');
  }
  return out;
}

std::string ExpectedPath(const std::string& dir, const std::string& model,
                         core::FlowKind flow, int output) {
  return dir + "/" + Sanitize(model) + "__" + Sanitize(core::FlowName(flow)) + "__" +
         std::to_string(output) + ".bin";
}

/// Deterministic inputs derived from the graph signature (seeded like the
/// zoo's own weights, so save and verify agree byte-for-byte).
std::vector<std::pair<std::string, NDArray>> MakeInputs(const relay::Module& module) {
  std::vector<std::pair<std::string, NDArray>> inputs;
  std::uint64_t seed = 1234;
  for (const auto& param : module.main()->params()) {
    const relay::Type& type = param->type_annotation();
    if (!type.IsTensor() || type.AsTensor().dtype != DType::kFloat32) {
      throw Error(ErrorKind::kInvalidArgument,
                  "non-f32 graph input " + param->name() + ": " + type.ToString());
    }
    inputs.emplace_back(param->name(),
                        NDArray::RandomNormal(type.AsTensor().shape, seed++, 0.5f));
  }
  return inputs;
}

std::vector<NDArray> RunSession(core::InferenceSession& session,
                                const std::vector<std::pair<std::string, NDArray>>& inputs) {
  for (const auto& [name, value] : inputs) session.SetInput(name, value);
  session.Run();
  std::vector<NDArray> outputs;
  for (int i = 0; i < session.NumOutputs(); ++i) outputs.push_back(session.GetOutput(i));
  return outputs;
}

void WriteTensor(const std::string& path, const NDArray& tensor) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.good()) throw Error(ErrorKind::kRuntimeError, "cannot write " + path);
  out.write(static_cast<const char*>(tensor.RawData()),
            static_cast<std::streamsize>(tensor.SizeBytes()));
}

bool MatchesFile(const std::string& path, const NDArray& tensor) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return false;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string bytes = buffer.str();
  return bytes.size() == tensor.SizeBytes() &&
         std::memcmp(bytes.data(), tensor.RawData(), bytes.size()) == 0;
}

std::int64_t Misses() {
  const auto* counter =
      support::metrics::Registry::Global().FindCounter("artifact/cache_misses");
  return counter != nullptr ? counter->value() : 0;
}

int Run(const std::string& mode, const std::string& dir) {
  const bool saving = mode == "save";
  const std::string store_dir = dir + "/store";
  const std::string expected_dir = dir + "/expected";
  fs::create_directories(expected_dir);

  core::FlowCompileSettings cached;
  cached.artifact_cache = std::make_shared<artifact::ArtifactStore>(store_dir);

  int artifacts = 0, outputs = 0, skipped = 0;
  for (const std::string& model : Models()) {
    const relay::Module module = zoo::Build(model, SmallOptions());
    const auto inputs = MakeInputs(module);
    for (const core::FlowKind flow : kFlows) {
      std::string error;
      const auto fresh = core::TryCompileFlow(module, flow, &error);
      if (fresh == nullptr) {
        ++skipped;  // flow legitimately unsupported (e.g. NP-only gaps)
        continue;
      }
      const std::int64_t misses_before = Misses();
      const auto via_store = core::CompileFlow(module, flow, cached);
      if (!saving && Misses() != misses_before) {
        std::cerr << "FAIL: " << model << " / " << core::FlowName(flow)
                  << " was a cache miss in verify mode (store incomplete?)\n";
        return 1;
      }

      const auto want = RunSession(*fresh, inputs);
      const auto got = RunSession(*via_store, inputs);
      if (want.size() != got.size()) {
        std::cerr << "FAIL: " << model << " / " << core::FlowName(flow)
                  << " output count " << got.size() << " != " << want.size() << "\n";
        return 1;
      }
      for (std::size_t i = 0; i < want.size(); ++i) {
        if (!NDArray::BitEqual(want[i], got[i])) {
          std::cerr << "FAIL: " << model << " / " << core::FlowName(flow) << " output "
                    << i << " differs loaded-vs-fresh in this process\n";
          return 1;
        }
        const std::string path = ExpectedPath(expected_dir, model, flow, static_cast<int>(i));
        if (saving) {
          WriteTensor(path, want[i]);
        } else if (!MatchesFile(path, got[i])) {
          std::cerr << "FAIL: " << model << " / " << core::FlowName(flow) << " output "
                    << i << " differs from the save process's bytes (" << path << ")\n";
          return 1;
        }
        ++outputs;
      }
      ++artifacts;
    }
  }

  std::cout << mode << ": " << artifacts << " artifacts, " << outputs
            << " outputs bitwise-checked, " << skipped << " unsupported flow pairs skipped"
            << (saving ? "" : ", 0 cache misses") << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3 || (std::string(argv[1]) != "save" && std::string(argv[1]) != "verify")) {
    std::cerr << "usage: artifact_roundtrip save|verify <dir>\n";
    return 2;
  }
  try {
    return Run(argv[1], argv[2]);
  } catch (const std::exception& e) {
    std::cerr << "artifact_roundtrip: " << e.what() << "\n";
    return 1;
  }
}
