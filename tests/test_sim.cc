// Device simulator: testbed presets, cost-model properties (monotonicity,
// ramp behaviour), clock accounting, timeline invariants.
#include <gtest/gtest.h>

#include "sim/cost_model.h"
#include "sim/timeline.h"

namespace tnp {
namespace sim {
namespace {

const Testbed& TB() { return Testbed::Dimensity800(); }

OpDesc ConvDesc(std::int64_t macs, bool int8 = false) {
  OpDesc desc;
  desc.category = OpCategory::kConv;
  desc.name = "conv";
  desc.macs = macs;
  desc.input_bytes = 1 << 16;
  desc.output_bytes = 1 << 16;
  desc.int8 = int8;
  return desc;
}

TEST(Testbed, PresetsOrdered) {
  // Vendor CPU kernels beat TVM's; the APU beats both at peak.
  EXPECT_GT(TB().neuron_cpu.fp32_gflops, TB().tvm_cpu.fp32_gflops);
  EXPECT_GT(TB().neuron_apu.fp32_gflops, TB().neuron_cpu.fp32_gflops);
  EXPECT_GT(TB().neuron_apu.int8_gops, 10 * TB().neuron_cpu.int8_gops);
  // And the APU has the largest utilization ramp (needs big ops).
  EXPECT_GT(TB().neuron_apu.half_peak_macs, TB().neuron_cpu.half_peak_macs);
}

TEST(Testbed, SpecLookup) {
  EXPECT_EQ(TB().Spec(DeviceKind::kTvmCpu).kind, DeviceKind::kTvmCpu);
  EXPECT_EQ(TB().Spec(DeviceKind::kNeuronApu).kind, DeviceKind::kNeuronApu);
}

TEST(Resources, Mapping) {
  EXPECT_EQ(ResourceOf(DeviceKind::kTvmCpu), Resource::kCpu);
  EXPECT_EQ(ResourceOf(DeviceKind::kNeuronCpu), Resource::kCpu);
  EXPECT_EQ(ResourceOf(DeviceKind::kNeuronApu), Resource::kApu);
  EXPECT_STREQ(ResourceName(Resource::kApu), "APU");
  EXPECT_STREQ(DeviceKindName(DeviceKind::kNeuronCpu), "np-cpu");
}

TEST(CostModelProps, MonotoneInMacs) {
  // Cost never decreases with MACs, and strictly increases once the op is
  // compute-bound (below that, the memory floor dominates).
  const CostModel cost(TB());
  double previous = 0.0;
  for (const std::int64_t macs : {1000, 10'000, 100'000, 1'000'000, 10'000'000}) {
    const double us = cost.OpMicros(ConvDesc(macs), DeviceKind::kNeuronCpu);
    EXPECT_GE(us, previous);
    previous = us;
  }
  EXPECT_GT(cost.OpMicros(ConvDesc(10'000'000), DeviceKind::kNeuronCpu),
            cost.OpMicros(ConvDesc(1'000'000), DeviceKind::kNeuronCpu));
}

TEST(CostModelProps, LaunchOverheadIsFloor) {
  const CostModel cost(TB());
  OpDesc empty;
  empty.category = OpCategory::kElementwise;
  EXPECT_GE(cost.OpMicros(empty, DeviceKind::kTvmCpu),
            TB().tvm_cpu.launch_overhead_us);
}

TEST(CostModelProps, RampPenalizesSmallOpsMore) {
  // Relative efficiency (macs per microsecond) grows with op size.
  const CostModel cost(TB());
  const double small_rate =
      10'000 / cost.OpMicros(ConvDesc(10'000), DeviceKind::kNeuronApu);
  const double large_rate =
      100'000'000 / cost.OpMicros(ConvDesc(100'000'000), DeviceKind::kNeuronApu);
  EXPECT_GT(large_rate, 10 * small_rate);
}

TEST(CostModelProps, MemoryBoundOpsScaleWithBytes) {
  const CostModel cost(TB());
  OpDesc small;
  small.category = OpCategory::kElementwise;
  small.input_bytes = 1 << 10;
  small.output_bytes = 1 << 10;
  OpDesc big = small;
  big.input_bytes = 1 << 24;
  big.output_bytes = 1 << 24;
  EXPECT_GT(cost.OpMicros(big, DeviceKind::kNeuronCpu),
            5 * cost.OpMicros(small, DeviceKind::kNeuronCpu));
}

TEST(CostModelProps, SoftmaxCostlierThanDataMove) {
  const CostModel cost(TB());
  OpDesc softmax;
  softmax.category = OpCategory::kSoftmax;
  softmax.input_bytes = 1 << 20;
  softmax.output_bytes = 1 << 20;
  OpDesc move = softmax;
  move.category = OpCategory::kDataMove;
  EXPECT_GT(cost.OpMicros(softmax, DeviceKind::kNeuronCpu),
            cost.OpMicros(move, DeviceKind::kNeuronCpu));
}

TEST(CostModelProps, TransferSymmetricAndLinear) {
  const CostModel cost(TB());
  const double one_mb = cost.TransferMicros(1 << 20, DeviceKind::kNeuronCpu,
                                            DeviceKind::kNeuronApu);
  const double reverse = cost.TransferMicros(1 << 20, DeviceKind::kNeuronApu,
                                             DeviceKind::kNeuronCpu);
  EXPECT_DOUBLE_EQ(one_mb, reverse);
  const double two_mb = cost.TransferMicros(2 << 20, DeviceKind::kNeuronCpu,
                                            DeviceKind::kNeuronApu);
  // Fixed latency + linear bandwidth term.
  EXPECT_NEAR(two_mb - one_mb, one_mb - TB().transfer_latency_us, 1e-6);
}

TEST(SimClockTest, AccumulatesAndMerges) {
  SimClock a;
  a.AddOp(ConvDesc(1000), DeviceKind::kTvmCpu, 10.0);
  a.AddTransfer(64, 5.0);
  SimClock b;
  b.AddOp(ConvDesc(1000), DeviceKind::kNeuronApu, 20.0);
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.total_us(), 35.0);
  EXPECT_DOUBLE_EQ(a.transfer_us(), 5.0);
  EXPECT_EQ(a.num_ops(), 2);
  EXPECT_EQ(a.num_transfers(), 1);
  EXPECT_DOUBLE_EQ(a.per_device_us().at(DeviceKind::kTvmCpu), 10.0);
  EXPECT_DOUBLE_EQ(a.per_device_us().at(DeviceKind::kNeuronApu), 20.0);
  EXPECT_DOUBLE_EQ(a.per_category_us().at("conv"), 30.0);
  a.Reset();
  EXPECT_DOUBLE_EQ(a.total_us(), 0.0);
  EXPECT_EQ(a.num_ops(), 0);
}

TEST(SimClockTest, SummaryMentionsDevices) {
  SimClock clock;
  clock.AddOp(ConvDesc(1000), DeviceKind::kNeuronApu, 1500.0);
  const std::string summary = clock.Summary();
  EXPECT_NE(summary.find("np-apu"), std::string::npos);
  EXPECT_NE(summary.find("1.500 ms"), std::string::npos);
}

TEST(TimelineTest, MakespanAndBusy) {
  Timeline timeline;
  timeline.Schedule("a", Resource::kCpu, 0.0, 10.0);
  timeline.Schedule("b", Resource::kApu, 5.0, 10.0);
  EXPECT_DOUBLE_EQ(timeline.makespan_us(), 15.0);
  EXPECT_DOUBLE_EQ(timeline.ResourceBusyUs(Resource::kCpu), 10.0);
  EXPECT_DOUBLE_EQ(timeline.ResourceBusyUs(Resource::kApu), 10.0);
}

TEST(TimelineTest, ReadyTimeRespected) {
  Timeline timeline;
  const double end = timeline.Schedule("late", Resource::kCpu, 100.0, 5.0);
  EXPECT_DOUBLE_EQ(end, 105.0);
  EXPECT_DOUBLE_EQ(timeline.spans()[0].start_us, 100.0);
}

TEST(TimelineTest, EmptyRenders) {
  Timeline timeline;
  EXPECT_EQ(timeline.RenderAscii(), "(empty timeline)\n");
  EXPECT_DOUBLE_EQ(timeline.makespan_us(), 0.0);
}

TEST(OpCategoryTest, Names) {
  EXPECT_STREQ(OpCategoryName(OpCategory::kConv), "conv");
  EXPECT_STREQ(OpCategoryName(OpCategory::kQuantize), "quantize");
}

}  // namespace
}  // namespace sim
}  // namespace tnp
