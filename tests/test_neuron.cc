// Simulated NeuroPilot stack: Neuron IR validation, Execution Planner
// policies, runtime numerics and time accounting.
#include <gtest/gtest.h>

#include "core/relay_to_neuron.h"
#include "frontend/common.h"
#include "neuron/runtime.h"
#include "relay/interpreter.h"
#include "relay/pass.h"

namespace tnp {
namespace neuron {
namespace {

using sim::DeviceKind;

/// Small valid model: conv -> relu.
NeuronModel ConvReluModel(std::int64_t channels = 4, std::int64_t hw = 8) {
  NeuronModel model;
  Operand input;
  input.name = "in";
  input.shape = Shape({1, 3, hw, hw});
  input.kind = OperandKind::kInput;
  const OperandId in_id = model.AddOperand(input);
  const OperandId w_id =
      model.AddConstant("w", NDArray::RandomNormal(Shape({channels, 3, 3, 3}), 3));
  Operand conv_out;
  conv_out.shape = Shape({1, channels, hw, hw});
  const OperandId conv_id = model.AddOperand(conv_out);
  Operand relu_out = conv_out;
  const OperandId relu_id = model.AddOperand(relu_out);

  Operation conv;
  conv.type = NeuronOpType::kConv2d;
  conv.attrs.padding = {1, 1};
  conv.inputs = {in_id, w_id};
  conv.outputs = {conv_id};
  model.AddOperation(conv);

  Operation relu;
  relu.type = NeuronOpType::kRelu;
  relu.inputs = {conv_id};
  relu.outputs = {relu_id};
  model.AddOperation(relu);

  model.SetModelInputs({in_id});
  model.SetModelOutputs({relu_id});
  return model;
}

TEST(NeuronIr, ValidModelValidates) { EXPECT_NO_THROW(ConvReluModel().Validate()); }

TEST(NeuronIr, OutOfOrderOperationsRejected) {
  NeuronModel model;
  Operand input;
  input.shape = Shape({1, 4});
  input.kind = OperandKind::kInput;
  const OperandId in_id = model.AddOperand(input);
  Operand mid;
  mid.shape = Shape({1, 4});
  const OperandId mid_id = model.AddOperand(mid);
  Operand out;
  out.shape = Shape({1, 4});
  const OperandId out_id = model.AddOperand(out);

  // Second op (producing mid) listed after the op that consumes it.
  Operation second;
  second.type = NeuronOpType::kRelu;
  second.inputs = {mid_id};
  second.outputs = {out_id};
  model.AddOperation(second);
  Operation first;
  first.type = NeuronOpType::kRelu;
  first.inputs = {in_id};
  first.outputs = {mid_id};
  model.AddOperation(first);

  model.SetModelInputs({in_id});
  model.SetModelOutputs({out_id});
  EXPECT_THROW(model.Validate(), Error);
}

TEST(NeuronIr, DoubleProductionRejected) {
  NeuronModel model;
  Operand input;
  input.shape = Shape({1, 4});
  input.kind = OperandKind::kInput;
  const OperandId in_id = model.AddOperand(input);
  Operand out;
  out.shape = Shape({1, 4});
  const OperandId out_id = model.AddOperand(out);
  for (int i = 0; i < 2; ++i) {
    Operation op;
    op.type = NeuronOpType::kRelu;
    op.inputs = {in_id};
    op.outputs = {out_id};
    model.AddOperation(op);
  }
  model.SetModelInputs({in_id});
  model.SetModelOutputs({out_id});
  EXPECT_THROW(model.Validate(), Error);
}

TEST(NeuronIr, ConstantWithoutDataRejected) {
  NeuronModel model;
  Operand c;
  c.shape = Shape({4});
  c.kind = OperandKind::kConstant;  // no data
  const OperandId c_id = model.AddOperand(c);
  model.SetModelOutputs({c_id});
  EXPECT_THROW(model.Validate(), Error);
}

TEST(NeuronIr, ToStringListsOps) {
  const std::string text = ConvReluModel().ToString();
  EXPECT_NE(text.find("CONV_2D"), std::string::npos);
  EXPECT_NE(text.find("RELU"), std::string::npos);
  EXPECT_NE(text.find("[input]"), std::string::npos);
  EXPECT_NE(text.find("[const]"), std::string::npos);
}

// ---------------------------------------------------------------- support

TEST(SupportMatrix, CpuCoversEverything) {
  for (int t = 0; t <= static_cast<int>(NeuronOpType::kRequantize); ++t) {
    EXPECT_TRUE(DeviceSupports(DeviceKind::kNeuronCpu, static_cast<NeuronOpType>(t)));
  }
}

TEST(SupportMatrix, ApuGaps) {
  EXPECT_TRUE(DeviceSupports(DeviceKind::kNeuronApu, NeuronOpType::kConv2d));
  EXPECT_TRUE(DeviceSupports(DeviceKind::kNeuronApu, NeuronOpType::kSoftmax));
  EXPECT_FALSE(DeviceSupports(DeviceKind::kNeuronApu, NeuronOpType::kSub));
  EXPECT_FALSE(DeviceSupports(DeviceKind::kNeuronApu, NeuronOpType::kPad));
  EXPECT_FALSE(DeviceSupports(DeviceKind::kTvmCpu, NeuronOpType::kConv2d));
}

TEST(TargetConfigTest, Parse) {
  EXPECT_EQ(TargetConfig::FromString("cpu"), TargetConfig::CpuOnly());
  EXPECT_EQ(TargetConfig::FromString("apu"), TargetConfig::ApuOnly());
  EXPECT_EQ(TargetConfig::FromString("cpu,apu"), TargetConfig::CpuApu());
  EXPECT_EQ(TargetConfig::FromString("apu, cpu"), TargetConfig::CpuApu());
  EXPECT_THROW(TargetConfig::FromString("gpu"), Error);
  EXPECT_THROW(TargetConfig::FromString(""), Error);
}

// ---------------------------------------------------------------- planner

TEST(Planner, CpuOnlyPlacesEverythingOnCpu) {
  const auto plan = PlanExecution(ConvReluModel(), TargetConfig::CpuOnly(),
                                  sim::Testbed::Dimensity800());
  for (const DeviceKind d : plan.placement) EXPECT_EQ(d, DeviceKind::kNeuronCpu);
}

TEST(Planner, BigConvGoesToApuUnderCpuApu) {
  // Large conv: APU wins despite the transfer.
  const auto plan = PlanExecution(ConvReluModel(/*channels=*/64, /*hw=*/64),
                                  TargetConfig::CpuApu(), sim::Testbed::Dimensity800());
  EXPECT_EQ(plan.placement[0], DeviceKind::kNeuronApu);
}

TEST(Planner, UnsupportedOpOnApuOnlyThrows) {
  NeuronModel model;
  Operand input;
  input.shape = Shape({1, 4});
  input.kind = OperandKind::kInput;
  const OperandId in_id = model.AddOperand(input);
  Operand out;
  out.shape = Shape({1, 4});
  const OperandId out_id = model.AddOperand(out);
  Operation sub;
  sub.type = NeuronOpType::kSub;  // not APU-supported
  sub.inputs = {in_id, in_id};
  sub.outputs = {out_id};
  model.AddOperation(sub);
  model.SetModelInputs({in_id});
  model.SetModelOutputs({out_id});

  try {
    PlanExecution(model, TargetConfig::ApuOnly(), sim::Testbed::Dimensity800());
    FAIL() << "expected UnsupportedOp";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kUnsupportedOp);
  }
  EXPECT_NO_THROW(
      PlanExecution(model, TargetConfig::CpuApu(), sim::Testbed::Dimensity800()));
}

/// Conv -> relu -> global pool: classifier-shaped (small output), where
/// APU offload clearly pays.
NeuronModel ConvReluPoolModel(std::int64_t channels, std::int64_t hw) {
  NeuronModel model = ConvReluModel(channels, hw);
  const OperandId relu_id = model.model_outputs()[0];
  Operand pooled;
  pooled.shape = Shape({1, channels, 1, 1});
  const OperandId pooled_id = model.AddOperand(pooled);
  Operation pool;
  pool.type = NeuronOpType::kGlobalAvgPool2d;
  pool.inputs = {relu_id};
  pool.outputs = {pooled_id};
  model.AddOperation(pool);
  model.SetModelOutputs({pooled_id});
  return model;
}

TEST(Planner, GreedyBeatsFirstDevicePolicy) {
  const NeuronModel model = ConvReluPoolModel(64, 64);
  const auto greedy = PlanExecution(model, TargetConfig::CpuApu(),
                                    sim::Testbed::Dimensity800(), PlannerPolicy::kGreedyCost);
  const auto naive = PlanExecution(model, TargetConfig::CpuApu(),
                                   sim::Testbed::Dimensity800(), PlannerPolicy::kFirstDevice);
  EXPECT_LT(greedy.estimated_us, naive.estimated_us);
}

TEST(Planner, DynamicNeverWorseThanGreedy) {
  for (const auto [channels, hw] : {std::pair<std::int64_t, std::int64_t>{64, 64},
                                    {16, 32},
                                    {4, 8}}) {
    const NeuronModel model = ConvReluPoolModel(channels, hw);
    const auto greedy = PlanExecution(model, TargetConfig::CpuApu(),
                                      sim::Testbed::Dimensity800(),
                                      PlannerPolicy::kGreedyCost);
    const auto dynamic = PlanExecution(model, TargetConfig::CpuApu(),
                                       sim::Testbed::Dimensity800(),
                                       PlannerPolicy::kDynamic);
    EXPECT_LE(dynamic.estimated_us, greedy.estimated_us + 1e-9)
        << "channels=" << channels << " hw=" << hw;
  }
}

TEST(Planner, DynamicFixesGreedyMyopia) {
  // The adversarial case from the greedy analysis: a huge activation output
  // makes APU placement a downstream loss the one-pass greedy cannot see.
  // The refinement sweep must not end up worse than CPU-everything.
  const NeuronModel model = ConvReluModel(64, 64);  // big output, no pool
  const auto dynamic = PlanExecution(model, TargetConfig::CpuApu(),
                                     sim::Testbed::Dimensity800(), PlannerPolicy::kDynamic);
  const auto cpu_only = PlanExecution(model, TargetConfig::CpuOnly(),
                                      sim::Testbed::Dimensity800());
  EXPECT_LE(dynamic.estimated_us, cpu_only.estimated_us + 1e-9);
}

TEST(Planner, DynamicRespectsSupportMatrix) {
  // The refinement must never move an op to a device that cannot run it.
  NeuronModel model = ConvReluModel(16, 16);
  Operation pad;
  pad.type = NeuronOpType::kPad;  // CPU-only op
  pad.attrs.pad_before = {0, 0, 1, 1};
  pad.attrs.pad_after = {0, 0, 1, 1};
  const OperandId in_id = model.model_outputs()[0];
  Operand out;
  out.shape = Shape({1, 16, 18, 18});
  const OperandId out_id = model.AddOperand(out);
  pad.inputs = {in_id};
  pad.outputs = {out_id};
  model.AddOperation(pad);
  model.SetModelOutputs({out_id});

  const auto plan = PlanExecution(model, TargetConfig::CpuApu(),
                                  sim::Testbed::Dimensity800(), PlannerPolicy::kDynamic);
  for (std::size_t i = 0; i < plan.placement.size(); ++i) {
    EXPECT_TRUE(DeviceSupports(plan.placement[i], model.operations()[i].type));
  }
}

TEST(Planner, EstimateMatchesRuntimeAccounting) {
  // EstimatePlanUs and the runtime's clock agree up to the fixed
  // invocation overhead (which only the runtime charges).
  const NeuronCompiler compiler(CompilerOptions{});
  const NeuronPackagePtr package = compiler.Compile(ConvReluModel(16, 16), "t");
  sim::SimClock clock;
  NeuronRuntime::Execute(*package, {}, &clock, false);
  const double estimate =
      EstimatePlanUs(package->model, package->plan.placement, sim::Testbed::Dimensity800());
  EXPECT_NEAR(clock.total_us(), estimate + kInvocationOverheadUs, 1e-6);
}

// ---------------------------------------------------------------- runtime

TEST(Runtime, MatchesRelayInterpreter) {
  // The same conv expressed in Relay and in Neuron IR must agree bitwise
  // (both dispatch to the shared kernels).
  auto x = frontend::TypedVar("x", Shape({1, 3, 8, 8}), DType::kFloat32);
  auto conv = frontend::TypedCall(
      "nn.conv2d",
      {x, frontend::WeightF32(Shape({4, 3, 3, 3}), 77), frontend::ZeroBiasF32(4)},
      relay::Attrs().SetInts("padding", {1, 1}));
  auto relu = frontend::TypedCall("nn.relu", {conv});
  auto fn = relay::MakeFunction({x}, relu);
  relay::InferFunctionTypes(fn);

  core::RelayToNeuronConverter converter;
  NeuronModel model = converter.Convert(fn);
  const NeuronCompiler compiler(CompilerOptions{});
  const NeuronPackagePtr package = compiler.Compile(std::move(model), "t");

  NDArray input = NDArray::RandomNormal(Shape({1, 3, 8, 8}), 5);
  const auto outputs = NeuronRuntime::Execute(*package, {input}, nullptr);
  ASSERT_EQ(outputs.size(), 1u);

  relay::Environment env;
  env[x.get()] = relay::Value(input);
  const relay::Value expected = relay::EvalExpr(relu, env);
  EXPECT_TRUE(NDArray::BitEqual(outputs[0], expected.AsTensor()));
}

TEST(Runtime, AccountsInvocationOverhead) {
  const NeuronCompiler compiler(CompilerOptions{});
  const NeuronPackagePtr package = compiler.Compile(ConvReluModel(), "t");
  sim::SimClock clock;
  NeuronRuntime::Execute(*package, {}, &clock, /*execute_numerics=*/false);
  EXPECT_GE(clock.total_us(), kInvocationOverheadUs);
  EXPECT_GT(clock.num_ops(), 0);
}

TEST(Runtime, ApuPlacementIncursTransfers) {
  CompilerOptions options;
  options.target = TargetConfig::ApuOnly();
  const NeuronCompiler compiler(options);
  const NeuronPackagePtr package = compiler.Compile(ConvReluModel(16, 32), "t");
  sim::SimClock clock;
  NeuronRuntime::Execute(*package, {}, &clock, false);
  // Input upload + output download at minimum.
  EXPECT_GE(clock.num_transfers(), 2);
}

TEST(Runtime, CpuOnlyHasNoDmaTransfers) {
  const NeuronCompiler compiler(CompilerOptions{});
  const NeuronPackagePtr package = compiler.Compile(ConvReluModel(), "t");
  sim::SimClock clock;
  NeuronRuntime::Execute(*package, {}, &clock, false);
  // Only the fixed invocation overhead is recorded as a "transfer" entry.
  EXPECT_EQ(clock.num_transfers(), 1);
}

TEST(Runtime, InputValidation) {
  const NeuronCompiler compiler(CompilerOptions{});
  const NeuronPackagePtr package = compiler.Compile(ConvReluModel(), "t");
  EXPECT_THROW(NeuronRuntime::Execute(*package, {}, nullptr, true), InternalError);
  EXPECT_THROW(NeuronRuntime::Execute(
                   *package, {NDArray::Zeros(Shape({1, 3, 4, 4}), DType::kFloat32)}, nullptr,
                   true),
               InternalError);  // wrong shape
}

TEST(Runtime, QuantizedPathUsesOperandParams) {
  // quantize -> requantize -> dequantize round trip driven purely by
  // tensor-oriented operand parameters.
  NeuronModel model;
  Operand input;
  input.shape = Shape({1, 8});
  input.kind = OperandKind::kInput;
  const OperandId in_id = model.AddOperand(input);
  Operand q;
  q.shape = Shape({1, 8});
  q.dtype = DType::kInt8;
  q.quant = QuantParams(0.1f, 0);
  const OperandId q_id = model.AddOperand(q);
  Operand rq = q;
  rq.quant = QuantParams(0.05f, 2);
  const OperandId rq_id = model.AddOperand(rq);
  Operand f;
  f.shape = Shape({1, 8});
  const OperandId f_id = model.AddOperand(f);

  Operation quantize;
  quantize.type = NeuronOpType::kQuantize;
  quantize.inputs = {in_id};
  quantize.outputs = {q_id};
  model.AddOperation(quantize);
  Operation requantize;
  requantize.type = NeuronOpType::kRequantize;
  requantize.inputs = {q_id};
  requantize.outputs = {rq_id};
  model.AddOperation(requantize);
  Operation dequantize;
  dequantize.type = NeuronOpType::kDequantize;
  dequantize.inputs = {rq_id};
  dequantize.outputs = {f_id};
  model.AddOperation(dequantize);
  model.SetModelInputs({in_id});
  model.SetModelOutputs({f_id});

  const NeuronCompiler compiler(CompilerOptions{});
  const NeuronPackagePtr package = compiler.Compile(std::move(model), "q");
  NDArray real = NDArray::FromVector<float>(Shape({1, 8}),
                                            {-0.4f, -0.2f, 0.0f, 0.1f, 0.2f, 0.3f, 0.4f, 0.5f});
  const auto outputs = NeuronRuntime::Execute(*package, {real}, nullptr);
  for (std::int64_t i = 0; i < 8; ++i) {
    EXPECT_NEAR(outputs[0].Data<float>()[i], real.Data<float>()[i], 0.1f);
  }
}

TEST(Package, CountsOpsPerDevice) {
  CompilerOptions options;
  options.target = TargetConfig::CpuApu();
  const NeuronCompiler compiler(options);
  const NeuronPackagePtr package = compiler.Compile(ConvReluModel(64, 64), "t");
  EXPECT_EQ(package->NumOps(), 2);
  EXPECT_EQ(package->NumOpsOn(DeviceKind::kNeuronCpu) +
                package->NumOpsOn(DeviceKind::kNeuronApu),
            2);
}

}  // namespace
}  // namespace neuron
}  // namespace tnp
