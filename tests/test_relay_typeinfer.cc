// Type inference for every registered operator, including failure cases.
#include <gtest/gtest.h>

#include "frontend/common.h"
#include "relay/op.h"
#include "relay/pass.h"

namespace tnp {
namespace relay {
namespace {

using frontend::TypedCall;
using frontend::TypedTuple;
using frontend::TypedVar;
using frontend::WeightF32;
using frontend::ZeroBiasF32;

Type TensorF32(std::initializer_list<std::int64_t> dims) {
  return Type::Tensor(Shape(dims), DType::kFloat32);
}

TEST(TypeInfer, Conv2D) {
  auto x = TypedVar("x", Shape({1, 3, 32, 32}), DType::kFloat32);
  auto conv = TypedCall("nn.conv2d", {x, WeightF32(Shape({8, 3, 3, 3}), 1), ZeroBiasF32(8)},
                        Attrs().SetInts("strides", {2, 2}).SetInts("padding", {1, 1}));
  EXPECT_EQ(conv->checked_type(), TensorF32({1, 8, 16, 16}));
}

TEST(TypeInfer, Conv2DGrouped) {
  auto x = TypedVar("x", Shape({1, 8, 16, 16}), DType::kFloat32);
  auto conv = TypedCall("nn.conv2d", {x, WeightF32(Shape({8, 1, 3, 3}), 1), ZeroBiasF32(8)},
                        Attrs().SetInts("padding", {1, 1}).SetInt("groups", 8));
  EXPECT_EQ(conv->checked_type(), TensorF32({1, 8, 16, 16}));
}

TEST(TypeInfer, Conv2DBadWeightChannelsThrows) {
  auto x = TypedVar("x", Shape({1, 3, 32, 32}), DType::kFloat32);
  EXPECT_THROW(
      TypedCall("nn.conv2d", {x, WeightF32(Shape({8, 4, 3, 3}), 1), ZeroBiasF32(8)}, Attrs()),
      Error);
}

TEST(TypeInfer, Conv2DBiasMismatchThrows) {
  auto x = TypedVar("x", Shape({1, 3, 32, 32}), DType::kFloat32);
  EXPECT_THROW(
      TypedCall("nn.conv2d", {x, WeightF32(Shape({8, 3, 3, 3}), 1), ZeroBiasF32(4)}, Attrs()),
      Error);
}

TEST(TypeInfer, Dense) {
  auto x = TypedVar("x", Shape({2, 10}), DType::kFloat32);
  auto dense = TypedCall("nn.dense", {x, WeightF32(Shape({5, 10}), 1), ZeroBiasF32(5)});
  EXPECT_EQ(dense->checked_type(), TensorF32({2, 5}));
}

TEST(TypeInfer, DenseMismatchThrows) {
  auto x = TypedVar("x", Shape({2, 10}), DType::kFloat32);
  EXPECT_THROW(TypedCall("nn.dense", {x, WeightF32(Shape({5, 11}), 1), ZeroBiasF32(5)}), Error);
}

TEST(TypeInfer, BroadcastBinary) {
  auto a = TypedVar("a", Shape({1, 3, 4, 4}), DType::kFloat32);
  auto b = TypedVar("b", Shape({1, 3, 1, 1}), DType::kFloat32);
  EXPECT_EQ(TypedCall("add", {a, b})->checked_type(), TensorF32({1, 3, 4, 4}));
}

TEST(TypeInfer, BinaryDtypeMismatchThrows) {
  auto a = TypedVar("a", Shape({4}), DType::kFloat32);
  auto b = TypedVar("b", Shape({4}), DType::kInt8);
  EXPECT_THROW(TypedCall("add", {a, b}), Error);
}

TEST(TypeInfer, PoolsAndGlobalPool) {
  auto x = TypedVar("x", Shape({1, 4, 16, 16}), DType::kFloat32);
  auto pool = TypedCall("nn.max_pool2d", {x},
                        Attrs().SetInts("pool_size", {2, 2}).SetInts("strides", {2, 2}));
  EXPECT_EQ(pool->checked_type(), TensorF32({1, 4, 8, 8}));
  auto gap = TypedCall("nn.global_avg_pool2d", {x});
  EXPECT_EQ(gap->checked_type(), TensorF32({1, 4, 1, 1}));
}

TEST(TypeInfer, PoolPreservesInt8) {
  auto x = TypedVar("x", Shape({1, 4, 8, 8}), DType::kInt8);
  auto pool = TypedCall("nn.avg_pool2d", {x}, Attrs().SetInts("pool_size", {2, 2}));
  EXPECT_EQ(pool->checked_type().AsTensor().dtype, DType::kInt8);
}

TEST(TypeInfer, BatchFlattenAndReshape) {
  auto x = TypedVar("x", Shape({2, 3, 4, 5}), DType::kFloat32);
  EXPECT_EQ(TypedCall("nn.batch_flatten", {x})->checked_type(), TensorF32({2, 60}));
  EXPECT_EQ(TypedCall("reshape", {x}, Attrs().SetInts("newshape", {2, -1}))->checked_type(),
            TensorF32({2, 60}));
  EXPECT_THROW(TypedCall("reshape", {x}, Attrs().SetInts("newshape", {7, 7})), Error);
  EXPECT_THROW(TypedCall("reshape", {x}, Attrs().SetInts("newshape", {-1, -1})), Error);
}

TEST(TypeInfer, Concatenate) {
  auto a = TypedVar("a", Shape({1, 2, 4, 4}), DType::kFloat32);
  auto b = TypedVar("b", Shape({1, 3, 4, 4}), DType::kFloat32);
  auto cat = TypedCall("concatenate", {TypedTuple({a, b})}, Attrs().SetInt("axis", 1));
  EXPECT_EQ(cat->checked_type(), TensorF32({1, 5, 4, 4}));
}

TEST(TypeInfer, ConcatenateMismatchThrows) {
  auto a = TypedVar("a", Shape({1, 2, 4, 4}), DType::kFloat32);
  auto b = TypedVar("b", Shape({1, 3, 5, 4}), DType::kFloat32);
  EXPECT_THROW(TypedCall("concatenate", {TypedTuple({a, b})}, Attrs().SetInt("axis", 1)),
               Error);
}

TEST(TypeInfer, ConcatenateNonTupleThrows) {
  auto a = TypedVar("a", Shape({1, 2}), DType::kFloat32);
  EXPECT_THROW(TypedCall("concatenate", {a}, Attrs().SetInt("axis", 1)), Error);
}

TEST(TypeInfer, PadUpsamplingSlice) {
  auto x = TypedVar("x", Shape({1, 2, 8, 8}), DType::kFloat32);
  EXPECT_EQ(TypedCall("nn.pad", {x},
                      Attrs()
                          .SetInts("pad_before", {0, 0, 1, 1})
                          .SetInts("pad_after", {0, 0, 1, 1}))
                ->checked_type(),
            TensorF32({1, 2, 10, 10}));
  EXPECT_EQ(TypedCall("nn.upsampling", {x}, Attrs().SetInt("scale_h", 2).SetInt("scale_w", 2))
                ->checked_type(),
            TensorF32({1, 2, 16, 16}));
  EXPECT_EQ(TypedCall("strided_slice", {x},
                      Attrs()
                          .SetInts("begin", {0, 0, 2, 2})
                          .SetInts("end", {1, 2, 6, 6})
                          .SetInts("strides", {1, 1, 2, 2}))
                ->checked_type(),
            TensorF32({1, 2, 2, 2}));
}

TEST(TypeInfer, StridedSliceNegativeIndices) {
  auto x = TypedVar("x", Shape({1, 4, 8, 8}), DType::kFloat32);
  auto sliced = TypedCall("strided_slice", {x},
                          Attrs().SetInts("begin", {0, 0, 1, 1}).SetInts(
                              "end", {1, 4, 1 << 20, 1 << 20}));
  EXPECT_EQ(sliced->checked_type(), TensorF32({1, 4, 7, 7}));
}

TEST(TypeInfer, MeanKeepdims) {
  auto x = TypedVar("x", Shape({1, 4, 8, 8}), DType::kFloat32);
  EXPECT_EQ(TypedCall("mean", {x}, Attrs().SetInts("axis", {2, 3}).SetInt("keepdims", 1))
                ->checked_type(),
            TensorF32({1, 4, 1, 1}));
  EXPECT_EQ(TypedCall("mean", {x}, Attrs().SetInts("axis", {2, 3}))->checked_type(),
            TensorF32({1, 4}));
}

TEST(TypeInfer, Transpose) {
  auto x = TypedVar("x", Shape({1, 2, 3}), DType::kFloat32);
  EXPECT_EQ(TypedCall("transpose", {x}, Attrs().SetInts("axes", {2, 0, 1}))->checked_type(),
            TensorF32({3, 1, 2}));
  EXPECT_THROW(TypedCall("transpose", {x}, Attrs().SetInts("axes", {0, 0, 1})), Error);
}

TEST(TypeInfer, Cast) {
  auto x = TypedVar("x", Shape({4}), DType::kFloat32);
  auto cast = TypedCall("cast", {x}, Attrs().SetString("dtype", "int8"));
  EXPECT_EQ(cast->checked_type().AsTensor().dtype, DType::kInt8);
}

TEST(TypeInfer, BatchNorm) {
  auto x = TypedVar("x", Shape({1, 4, 8, 8}), DType::kFloat32);
  auto bn = frontend::BatchNormConstants(4, 1);
  EXPECT_EQ(TypedCall("nn.batch_norm", {x, bn[0], bn[1], bn[2], bn[3]})->checked_type(),
            TensorF32({1, 4, 8, 8}));
  auto bad = frontend::BatchNormConstants(5, 1);
  EXPECT_THROW(TypedCall("nn.batch_norm", {x, bad[0], bad[1], bad[2], bad[3]}), Error);
}

// ---------------- QNN ----------------

Attrs QnnConvAttrs() {
  Attrs attrs;
  attrs.SetDouble("input_scale", 0.1).SetInt("input_zero_point", 0);
  attrs.SetDouble("weight_scale", 0.05).SetInt("weight_zero_point", 0);
  attrs.SetDouble("output_scale", 0.2).SetInt("output_zero_point", 0);
  attrs.SetInts("strides", {1, 1}).SetInts("padding", {1, 1});
  return attrs;
}

TEST(TypeInfer, QnnConv2D) {
  auto x = TypedVar("x", Shape({1, 3, 8, 8}), DType::kInt8);
  auto conv = TypedCall("qnn.conv2d",
                        {x, frontend::WeightS8(Shape({4, 3, 3, 3}), 1),
                         frontend::BiasS32(Shape({4}), 2)},
                        QnnConvAttrs());
  EXPECT_EQ(conv->checked_type().AsTensor().dtype, DType::kInt8);
  EXPECT_EQ(conv->checked_type().AsTensor().shape, Shape({1, 4, 8, 8}));
}

TEST(TypeInfer, QnnConvMissingQuantAttrThrows) {
  auto x = TypedVar("x", Shape({1, 3, 8, 8}), DType::kInt8);
  EXPECT_THROW(TypedCall("qnn.conv2d",
                         {x, frontend::WeightS8(Shape({4, 3, 3, 3}), 1),
                          frontend::BiasS32(Shape({4}), 2)},
                         Attrs().SetInts("padding", {1, 1})),
               Error);
}

TEST(TypeInfer, QnnConvFloatInputThrows) {
  auto x = TypedVar("x", Shape({1, 3, 8, 8}), DType::kFloat32);
  EXPECT_THROW(TypedCall("qnn.conv2d",
                         {x, frontend::WeightS8(Shape({4, 3, 3, 3}), 1),
                          frontend::BiasS32(Shape({4}), 2)},
                         QnnConvAttrs()),
               Error);
}

TEST(TypeInfer, QuantizeDequantizeRequantize) {
  auto f = TypedVar("f", Shape({4}), DType::kFloat32);
  auto q = TypedCall("qnn.quantize", {f},
                     Attrs().SetDouble("output_scale", 0.1).SetInt("output_zero_point", 0));
  EXPECT_EQ(q->checked_type().AsTensor().dtype, DType::kInt8);
  auto rq = TypedCall("qnn.requantize", {q},
                      Attrs()
                          .SetDouble("input_scale", 0.1)
                          .SetInt("input_zero_point", 0)
                          .SetDouble("output_scale", 0.2)
                          .SetInt("output_zero_point", 0));
  EXPECT_EQ(rq->checked_type().AsTensor().dtype, DType::kInt8);
  auto dq = TypedCall("qnn.dequantize", {rq},
                      Attrs().SetDouble("input_scale", 0.2).SetInt("input_zero_point", 0));
  EXPECT_EQ(dq->checked_type().AsTensor().dtype, DType::kFloat32);
}

TEST(TypeInfer, UnknownOpThrows) {
  auto x = TypedVar("x", Shape({1}), DType::kFloat32);
  EXPECT_THROW(TypedCall("nn.not_an_op", {x}), Error);
}

TEST(TypeInfer, ArityMismatchThrows) {
  auto x = TypedVar("x", Shape({1}), DType::kFloat32);
  EXPECT_THROW(TypedCall("nn.relu", {x, x}), Error);
}

TEST(TypeInfer, ModulePassAssignsAllTypes) {
  auto x = TypedVar("x", Shape({1, 3, 8, 8}), DType::kFloat32);
  auto conv = MakeCall("nn.conv2d", {x, WeightF32(Shape({4, 3, 3, 3}), 1), ZeroBiasF32(4)},
                       Attrs().SetInts("padding", {1, 1}));
  Module module(MakeFunction({x}, conv));
  const Module typed = InferType().Run(module);
  EXPECT_TRUE(typed.main()->checked_type().defined());
  EXPECT_EQ(typed.main()->checked_type(), TensorF32({1, 4, 8, 8}));
}

TEST(TypeInfer, UnannotatedVarThrows) {
  auto x = std::make_shared<Var>("x", Type());
  auto relu = MakeCall("nn.relu", {x});
  Module module(MakeFunction({x}, relu));
  EXPECT_THROW(InferType().Run(module), Error);
}

TEST(OpRegistryTest, MetadataConsistent) {
  const auto& reg = OpRegistry::Global();
  EXPECT_TRUE(reg.Has("nn.conv2d"));
  EXPECT_FALSE(reg.Has("bogus"));
  EXPECT_GE(reg.AllNames().size(), 35u);
  EXPECT_TRUE(reg.Get("nn.conv2d").fusion_anchor);
  EXPECT_TRUE(reg.Get("nn.relu").fusable_follower);
  EXPECT_FALSE(reg.Get("nn.softmax").fusable_follower);
  EXPECT_EQ(reg.Get("qnn.conv2d").category, sim::OpCategory::kConv);
}

}  // namespace
}  // namespace relay
}  // namespace tnp
