// End-to-end trace reconstruction under concurrent micro-batched serving:
// run a multi-client load with tracing enabled, re-parse the Chrome-trace
// export, and assert that every admitted request is fully reconstructable by
// its req_id — exactly one admission event, a causally linked span tree, and
// exactly one micro-batch membership. Also covers the per-priority expiry
// histogram the dispatcher records.
#include <gtest/gtest.h>

#include <cstdint>
#include <future>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/flows.h"
#include "frontend/common.h"
#include "serve/server.h"
#include "support/json.h"
#include "support/metrics.h"
#include "support/trace.h"

namespace tnp {
namespace serve {
namespace {

using frontend::TypedCall;
using frontend::TypedVar;
using frontend::WeightF32;
using frontend::ZeroBiasF32;
using support::JsonValue;
using support::metrics::Registry;

relay::Module TinyModel() {
  auto x = TypedVar("data", Shape({1, 3, 16, 16}), DType::kFloat32);
  auto conv = TypedCall("nn.conv2d", {x, WeightF32(Shape({8, 3, 3, 3}), 1), ZeroBiasF32(8)},
                        relay::Attrs().SetInts("padding", {1, 1}));
  auto relu = TypedCall("nn.relu", {conv});
  auto pool = TypedCall("nn.global_avg_pool2d", {relu});
  auto flat = TypedCall("nn.batch_flatten", {pool});
  auto dense = TypedCall("nn.dense", {flat, WeightF32(Shape({5, 8}), 2), ZeroBiasF32(5)});
  return relay::Module(relay::MakeFunction({x}, TypedCall("nn.softmax", {dense})));
}

ServedModel Served(const std::string& name, core::FlowKind primary) {
  ServedModel model;
  model.name = name;
  model.module = TinyModel();
  model.plan.primary = core::Assignment{primary, 100.0};
  return model;
}

NDArray TinyInput() { return NDArray::Full(Shape({1, 3, 16, 16}), DType::kFloat32, 0.5); }

/// One parsed trace event, reduced to what reconstruction needs.
struct ParsedEvent {
  std::string name;
  std::string phase;
  double ts = 0.0;
  double dur = 0.0;
  std::uint64_t req_id = 0;
  std::uint64_t span = 0;
  std::uint64_t parent = 0;
  std::string req_ids;  ///< batch spans: comma-joined member ids
};

std::uint64_t ArgId(const JsonValue& args, const std::string& key) {
  const JsonValue* value = args.Find(key);
  return value != nullptr && value->is_number()
             ? static_cast<std::uint64_t>(value->number())
             : 0;
}

std::vector<ParsedEvent> ParseEvents(const std::string& json) {
  const JsonValue root = JsonValue::Parse(json);
  const JsonValue* array = root.Find("traceEvents");
  std::vector<ParsedEvent> events;
  if (array == nullptr || !array->is_array()) return events;
  for (const JsonValue& raw : array->array()) {
    ParsedEvent event;
    event.name = raw.StringOr("name", "");
    event.phase = raw.StringOr("ph", "");
    event.ts = raw.NumberOr("ts", 0.0);
    event.dur = raw.NumberOr("dur", 0.0);
    if (const JsonValue* args = raw.Find("args")) {
      event.req_id = ArgId(*args, "req_id");
      event.span = ArgId(*args, "span");
      event.parent = ArgId(*args, "parent");
      event.req_ids = args->StringOr("req_ids", "");
    }
    events.push_back(std::move(event));
  }
  return events;
}

std::vector<std::uint64_t> SplitIds(const std::string& joined) {
  std::vector<std::uint64_t> ids;
  std::size_t start = 0;
  while (start < joined.size()) {
    std::size_t comma = joined.find(',', start);
    if (comma == std::string::npos) comma = joined.size();
    ids.push_back(std::stoull(joined.substr(start, comma - start)));
    start = comma + 1;
  }
  return ids;
}

TEST(ServeTrace, EveryRequestReconstructableUnderConcurrentLoad) {
  auto& tracer = support::Tracer::Global();
  tracer.SetCapacity(65536);  // hold the whole run (clears the ring)
  support::Tracer::ScopedEnable enable;

  std::vector<ServedModel> models;
  models.push_back(Served("trace-cpu", core::FlowKind::kByocCpu));
  models.push_back(Served("trace-tvm", core::FlowKind::kTvmOnly));

  ServerOptions options;
  options.queue_capacity = 64;
  options.max_batch = 4;
  options.batch_window_us = 200.0;  // coalesce: exercise multi-request batches

  std::vector<std::future<ServeResponse>> futures;
  {
    InferenceServer server(std::move(models), options);
    tracer.Clear();  // drop warm-start compile spans; keep only the load

    constexpr int kClients = 4;
    constexpr int kPerClient = 12;
    std::vector<std::thread> clients;
    std::mutex futures_mutex;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        for (int i = 0; i < kPerClient; ++i) {
          ServeRequest request;
          request.model = c % 2 == 0 ? "trace-cpu" : "trace-tvm";
          request.inputs = {{"data", TinyInput()}};
          std::future<ServeResponse> future = server.Submit(std::move(request));
          std::lock_guard<std::mutex> lock(futures_mutex);
          futures.push_back(std::move(future));
        }
      });
    }
    for (auto& client : clients) client.join();
    server.Shutdown();  // drain everything before exporting
  }

  std::set<std::uint64_t> ok_ids;
  for (auto& future : futures) {
    const ServeResponse response = future.get();
    ASSERT_EQ(response.status, ServeStatus::kOk) << response.error;
    ASSERT_NE(response.req_id, 0u);
    EXPECT_TRUE(ok_ids.insert(response.req_id).second) << "req_id reused";
  }
  ASSERT_EQ(ok_ids.size(), 48u);

  const std::string json = tracer.ExportChromeTrace();
  std::string error;
  ASSERT_TRUE(support::ValidateTraceJson(json, &error)) << error;
  ASSERT_EQ(tracer.dropped(), 0u) << "ring too small for the run";
  const std::vector<ParsedEvent> events = ParseEvents(json);

  // Group the per-request events; collect batch-span memberships.
  std::map<std::uint64_t, std::vector<const ParsedEvent*>> by_request;
  std::map<std::uint64_t, int> batch_memberships;
  for (const ParsedEvent& event : events) {
    if (event.req_id != 0) by_request[event.req_id].push_back(&event);
    if (!event.req_ids.empty()) {
      for (const std::uint64_t id : SplitIds(event.req_ids)) ++batch_memberships[id];
    }
  }

  for (const std::uint64_t req_id : ok_ids) {
    ASSERT_TRUE(by_request.count(req_id)) << "request " << req_id << " left no spans";
    const auto& request_events = by_request[req_id];

    // Exactly one admission instant, one queue-wait span, one run span.
    int submits = 0, queues = 0, runs = 0;
    for (const ParsedEvent* event : request_events) {
      if (event->name == "submit") ++submits;
      if (event->name.rfind("queue:", 0) == 0) ++queues;
      if (event->name.rfind("run:", 0) == 0) ++runs;
    }
    EXPECT_EQ(submits, 1) << "req " << req_id;
    EXPECT_EQ(queues, 1) << "req " << req_id;
    EXPECT_EQ(runs, 1) << "req " << req_id;

    // Causal links: every event's parent is another span of the same
    // request or the request's root span (which emits no event of its own).
    std::map<std::uint64_t, const ParsedEvent*> span_index;
    for (const ParsedEvent* event : request_events) {
      if (event->span != 0) span_index[event->span] = event;
    }
    std::set<std::uint64_t> orphan_parents;
    for (const ParsedEvent* event : request_events) {
      ASSERT_NE(event->parent, 0u) << event->name;
      const auto it = span_index.find(event->parent);
      if (it == span_index.end()) {
        orphan_parents.insert(event->parent);
        continue;
      }
      // Parent span temporally contains the child (1us slack for rounding).
      const ParsedEvent* parent = it->second;
      EXPECT_LE(parent->ts, event->ts + 1.0)
          << event->name << " starts before parent " << parent->name;
      if (event->phase == "X") {
        EXPECT_GE(parent->ts + parent->dur + 1.0, event->ts + event->dur)
            << event->name << " outlives parent " << parent->name;
      }
    }
    // All top-level events hang off one root: the id minted at admission.
    EXPECT_EQ(orphan_parents.size(), 1u) << "req " << req_id;

    // Micro-batch membership: in exactly one batch span's req_ids list.
    EXPECT_EQ(batch_memberships[req_id], 1) << "req " << req_id;
  }

  // The executor's nested session spans inherit the context: at least one
  // request must show a span beyond the serve.request layer (the flow run
  // recorded by the session itself).
  bool saw_nested = false;
  for (const auto& [req_id, request_events] : by_request) {
    for (const ParsedEvent* event : request_events) {
      if (event->name != "submit" && event->name.rfind("queue:", 0) != 0 &&
          event->name.rfind("run:", 0) != 0 && event->phase == "X") {
        saw_nested = true;
      }
    }
  }
  EXPECT_TRUE(saw_nested) << "no session/executor spans carried a req_id";
}

TEST(ServeTrace, ExpiredRequestsRecordPerPriorityLateness) {
  auto& expired_p3 = Registry::Global().GetHistogram("serve/expired/p3/late_us");
  expired_p3.Reset();

  std::vector<ServedModel> models;
  models.push_back(Served("expire-cpu", core::FlowKind::kByocCpu));
  ServerOptions options;
  options.queue_capacity = 8;
  InferenceServer server(std::move(models), options);

  ServeRequest request;
  request.model = "expire-cpu";
  request.inputs = {{"data", TinyInput()}};
  request.priority = 3;
  request.deadline_us = 0.001;  // already past by dispatch time
  std::future<ServeResponse> future = server.Submit(std::move(request));
  const ServeResponse response = future.get();
  EXPECT_EQ(response.status, ServeStatus::kExpired);
  EXPECT_NE(response.req_id, 0u);

  const auto summary = expired_p3.Summarize();
  EXPECT_EQ(summary.count, 1);
  EXPECT_GT(summary.max, 0.0);  // lateness, not just a counter
}

}  // namespace
}  // namespace serve
}  // namespace tnp
