// Relay IR structure: expressions, attrs, visitors, mutators, printer.
#include <gtest/gtest.h>

#include "relay/expr.h"
#include "relay/printer.h"
#include "relay/visitor.h"

namespace tnp {
namespace relay {
namespace {

TEST(Attrs, TypedAccess) {
  Attrs attrs;
  attrs.SetInt("k", 3).SetDouble("alpha", 0.5).SetString("mode", "same");
  attrs.SetInts("strides", {2, 2}).SetDoubles("scales", {0.1, 0.2});
  EXPECT_EQ(attrs.GetInt("k", 0), 3);
  EXPECT_DOUBLE_EQ(attrs.GetDouble("alpha", 0), 0.5);
  EXPECT_EQ(attrs.GetString("mode", ""), "same");
  EXPECT_EQ(attrs.GetInts("strides", {}), (std::vector<std::int64_t>{2, 2}));
  EXPECT_EQ(attrs.GetDoubles("scales", {}).size(), 2u);
}

TEST(Attrs, DefaultsWhenMissing) {
  Attrs attrs;
  EXPECT_EQ(attrs.GetInt("missing", 42), 42);
  EXPECT_FALSE(attrs.Has("missing"));
}

TEST(Attrs, IntPromotesToDouble) {
  Attrs attrs;
  attrs.SetInt("eps", 1);
  EXPECT_DOUBLE_EQ(attrs.GetDouble("eps", 0.0), 1.0);
}

TEST(Attrs, WrongKindThrows) {
  Attrs attrs;
  attrs.SetString("k", "three");
  EXPECT_THROW(attrs.GetInt("k", 0), Error);
}

TEST(Attrs, RequireThrowsWhenMissing) {
  Attrs attrs;
  EXPECT_THROW(attrs.RequireInt("absent"), Error);
  EXPECT_THROW(attrs.RequireInts("absent"), Error);
}

TEST(Expr, NodeKinds) {
  auto var = MakeVar("x", Type::Tensor(Shape({1}), DType::kFloat32));
  auto constant = MakeConstant(NDArray::Zeros(Shape({1}), DType::kFloat32));
  auto call = MakeCall("nn.relu", {var});
  auto tuple = MakeTuple({var, constant});
  auto get = MakeTupleGetItem(tuple, 1);
  auto fn = MakeFunction({var}, call);
  EXPECT_EQ(var->kind(), ExprKind::kVar);
  EXPECT_EQ(constant->kind(), ExprKind::kConstant);
  EXPECT_EQ(call->kind(), ExprKind::kCall);
  EXPECT_EQ(tuple->kind(), ExprKind::kTuple);
  EXPECT_EQ(get->kind(), ExprKind::kTupleGetItem);
  EXPECT_EQ(fn->kind(), ExprKind::kFunction);
  EXPECT_EQ(call->callee_kind(), CalleeKind::kOp);
  EXPECT_TRUE(IsCallTo(call, "nn.relu"));
  EXPECT_FALSE(IsCallTo(call, "nn.conv2d"));
  EXPECT_FALSE(IsCallTo(var, "nn.relu"));
}

TEST(Expr, FunctionAttrs) {
  Attrs attrs;
  attrs.SetString(kAttrCompiler, "nir").SetInt(kAttrPrimitive, 1);
  auto fn = MakeFunction({}, MakeConstant(NDArray::Zeros(Shape({1}), DType::kFloat32)), attrs);
  EXPECT_EQ(fn->compiler(), "nir");
  EXPECT_TRUE(fn->IsPrimitive());
}

TEST(Visitor, PostOrderChildrenFirst) {
  auto x = MakeVar("x", Type::Tensor(Shape({1}), DType::kFloat32));
  auto a = MakeCall("nn.relu", {x});
  auto b = MakeCall("sigmoid", {a});
  const auto order = PostOrder(b);
  // x before a before b.
  auto index_of = [&](const ExprPtr& e) {
    for (std::size_t i = 0; i < order.size(); ++i) {
      if (order[i] == e) return static_cast<int>(i);
    }
    return -1;
  };
  EXPECT_LT(index_of(x), index_of(a));
  EXPECT_LT(index_of(a), index_of(b));
}

TEST(Visitor, DagVisitedOnce) {
  auto x = MakeVar("x", Type::Tensor(Shape({1}), DType::kFloat32));
  auto shared = MakeCall("nn.relu", {x});
  auto sum = MakeCall("add", {shared, shared});  // diamond
  struct Counter : ExprVisitor {
    int calls = 0;
    void VisitCall(const CallPtr&) override { ++calls; }
  };
  Counter counter;
  counter.Visit(sum);
  EXPECT_EQ(counter.calls, 2);  // relu once, add once
}

TEST(Visitor, CountCalls) {
  auto x = MakeVar("x", Type::Tensor(Shape({1}), DType::kFloat32));
  auto a = MakeCall("nn.relu", {x});
  auto b = MakeCall("nn.relu", {a});
  auto c = MakeCall("sigmoid", {b});
  EXPECT_EQ(CountCalls(c), 3);
  EXPECT_EQ(CountCalls(c, "nn.relu"), 2);
  EXPECT_EQ(CountCalls(c, "exp"), 0);
}

TEST(Visitor, FreeVarsFirstUseOrder) {
  auto x = MakeVar("x", Type::Tensor(Shape({1}), DType::kFloat32));
  auto y = MakeVar("y", Type::Tensor(Shape({1}), DType::kFloat32));
  auto sum = MakeCall("add", {y, x});
  const auto free_vars = FreeVars(sum);
  ASSERT_EQ(free_vars.size(), 2u);
  EXPECT_EQ(free_vars[0]->name(), "y");
  EXPECT_EQ(free_vars[1]->name(), "x");
}

TEST(Mutator, IdentityPreservesSharing) {
  auto x = MakeVar("x", Type::Tensor(Shape({1}), DType::kFloat32));
  auto a = MakeCall("nn.relu", {x});
  auto b = MakeCall("sigmoid", {a});
  ExprMutator identity;
  EXPECT_EQ(identity.Mutate(b), b);  // no rebuild when nothing changes
}

TEST(Mutator, RewriteReplacesAndReusesMemo) {
  // Replace relu with sigmoid; the shared subtree must be rebuilt once.
  struct ReluToSigmoid : ExprMutator {
    int rewrites = 0;
    ExprPtr RewriteCall(const CallPtr& call) override {
      if (call->callee_kind() == CalleeKind::kOp && call->op_name() == "nn.relu") {
        ++rewrites;
        return MakeCall("sigmoid", call->args());
      }
      return call;
    }
  };
  auto x = MakeVar("x", Type::Tensor(Shape({1}), DType::kFloat32));
  auto shared = MakeCall("nn.relu", {x});
  auto sum = MakeCall("add", {shared, shared});
  ReluToSigmoid mutator;
  const ExprPtr result = mutator.Mutate(sum);
  EXPECT_EQ(mutator.rewrites, 1);
  const auto new_sum = As<Call>(result);
  EXPECT_EQ(new_sum->args()[0], new_sum->args()[1]);  // sharing preserved
  EXPECT_TRUE(IsCallTo(new_sum->args()[0], "sigmoid"));
}

TEST(Printer, ShowsStructure) {
  auto x = MakeVar("x", Type::Tensor(Shape({1, 3}), DType::kFloat32));
  auto relu = MakeCall("nn.relu", {x});
  auto fn = MakeFunction({x}, relu);
  const std::string text = PrintFunction(fn);
  EXPECT_NE(text.find("nn.relu"), std::string::npos);
  EXPECT_NE(text.find("%x"), std::string::npos);
  EXPECT_NE(text.find("return"), std::string::npos);
}

TEST(Printer, GlobalCallsAndTuples) {
  auto x = MakeVar("x", Type::Tensor(Shape({1}), DType::kFloat32));
  auto call = MakeGlobalCall("nir_0", {x});
  auto tuple = MakeTuple({call, x});
  auto get = MakeTupleGetItem(tuple, 0);
  const std::string text = PrintExpr(get);
  EXPECT_NE(text.find("@nir_0"), std::string::npos);
  EXPECT_NE(text.find(".0"), std::string::npos);
}

TEST(Downcast, CheckedAs) {
  auto x = MakeVar("x", Type::Tensor(Shape({1}), DType::kFloat32));
  ExprPtr e = x;
  EXPECT_EQ(As<Var>(e)->name(), "x");
  EXPECT_THROW(As<Call>(e), InternalError);
}

}  // namespace
}  // namespace relay
}  // namespace tnp
