// Differential tests for the packed GEMM engine: the tiled micro-kernel
// paths are checked against the naive references across odd M/K/N tails,
// multi-block k/n extents, and nonzero zero points (s8 must be bit-exact —
// the zero-point factorization is all-integer). The packed-weight kernel
// entry points are checked bitwise against their pack-on-the-fly fallbacks.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "kernels/conv.h"
#include "kernels/dense.h"
#include "kernels/gemm.h"
#include "kernels/pack.h"
#include "support/rng.h"
#include "tune/tuner.h"

namespace tnp {
namespace kernels {
namespace {

std::vector<float> RandomF32(std::int64_t count, std::uint64_t seed) {
  support::SplitMix64 rng(seed);
  std::vector<float> v(static_cast<std::size_t>(count));
  for (auto& x : v) x = static_cast<float>(rng.Uniform(-1.0, 1.0));
  return v;
}

std::vector<std::int8_t> RandomS8(std::int64_t count, std::uint64_t seed) {
  support::SplitMix64 rng(seed);
  std::vector<std::int8_t> v(static_cast<std::size_t>(count));
  for (auto& x : v) x = static_cast<std::int8_t>(rng.UniformInt(-128, 127));
  return v;
}

NDArray RandomS32Bias(std::int64_t n, std::uint64_t seed, int lo, int hi) {
  NDArray bias = NDArray::Empty(Shape({n}), DType::kInt32);
  support::SplitMix64 rng(seed);
  std::int32_t* d = bias.Data<std::int32_t>();
  for (std::int64_t i = 0; i < n; ++i) {
    d[i] = static_cast<std::int32_t>(rng.UniformInt(lo, hi));
  }
  return bias;
}

void ExpectBitwiseEqualS8(const NDArray& a, const NDArray& b) {
  ASSERT_EQ(a.SizeBytes(), b.SizeBytes());
  const std::int8_t* pa = a.Data<std::int8_t>();
  const std::int8_t* pb = b.Data<std::int8_t>();
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(a.SizeBytes()); ++i) {
    ASSERT_EQ(static_cast<int>(pa[i]), static_cast<int>(pb[i])) << "byte " << i;
  }
}

struct GemmShape {
  std::int64_t m, k, n;
};

class GemmSweep : public ::testing::TestWithParam<GemmShape> {};

TEST_P(GemmSweep, F32MatchesReference) {
  const auto [m, k, n] = GetParam();
  const auto a = RandomF32(m * k, 1);
  const auto b = RandomF32(k * n, 2);
  std::vector<float> c(static_cast<std::size_t>(m * n), -1.0f);
  std::vector<float> ref(static_cast<std::size_t>(m * n), 1.0f);
  GemmF32(a.data(), b.data(), c.data(), m, k, n);
  GemmF32Reference(a.data(), b.data(), ref.data(), m, k, n);
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c[i], ref[i], 1e-4f * static_cast<float>(k) + 1e-6f) << "at " << i;
  }
}

TEST_P(GemmSweep, S8BitExactWithNonzeroZeroPoints) {
  const auto [m, k, n] = GetParam();
  const auto a = RandomS8(m * k, 3);
  const auto b = RandomS8(k * n, 4);
  std::vector<std::int32_t> c(static_cast<std::size_t>(m * n), -7);
  std::vector<std::int32_t> ref(static_cast<std::size_t>(m * n), 7);
  GemmS8S32(a.data(), b.data(), c.data(), m, k, n, /*a_zero=*/-3, /*b_zero=*/11);
  GemmS8S32Reference(a.data(), b.data(), ref.data(), m, k, n, -3, 11);
  EXPECT_EQ(c, ref);
}

TEST_P(GemmSweep, S8BitExactOneSidedZeroPoints) {
  const auto [m, k, n] = GetParam();
  const auto a = RandomS8(m * k, 5);
  const auto b = RandomS8(k * n, 6);
  for (const auto& [az, bz] : {std::pair<int, int>{0, 0}, {5, 0}, {0, -9}}) {
    std::vector<std::int32_t> c(static_cast<std::size_t>(m * n));
    std::vector<std::int32_t> ref(static_cast<std::size_t>(m * n));
    GemmS8S32(a.data(), b.data(), c.data(), m, k, n, az, bz);
    GemmS8S32Reference(a.data(), b.data(), ref.data(), m, k, n, az, bz);
    EXPECT_EQ(c, ref) << "az=" << az << " bz=" << bz;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmSweep,
    ::testing::Values(GemmShape{1, 1, 1},      // degenerate
                      GemmShape{3, 5, 7},      // all-odd tails
                      GemmShape{4, 8, 8},      // exact tiles, even k
                      GemmShape{5, 9, 17},     // odd k (s8 pair padding)
                      GemmShape{13, 31, 29},   // odd everything
                      GemmShape{8, 300, 24},   // k spans two cache blocks
                      GemmShape{6, 16, 200},   // n spans two cache blocks
                      GemmShape{17, 257, 193}  // odd multi-block tails
                      ));

TEST(Gemm, ZeroKZeroFillsOutput) {
  const float af[1] = {9.0f};
  const float bf[1] = {9.0f};
  std::vector<float> c(6, 123.0f);
  GemmF32(af, bf, c.data(), 2, 0, 3);
  for (const float x : c) EXPECT_EQ(x, 0.0f);
  const std::int8_t ai[1] = {9};
  const std::int8_t bi[1] = {9};
  std::vector<std::int32_t> ci(6, 123);
  GemmS8S32(ai, bi, ci.data(), 2, 0, 3, 4, 5);
  for (const std::int32_t x : ci) EXPECT_EQ(x, 0);
}

// ---------------------------------------------------------------------------
// Pre-packed weights vs. the pack-on-the-fly fallback: the fallback builds
// identical panels with identical summation order, so results are bitwise
// equal — any divergence means the compile-time pack and the kernel layout
// drifted apart.

struct ConvCase {
  std::int64_t batch, ci, hw, co, kernel, stride, pad, dilation, groups;
};

class PackedConvSweep : public ::testing::TestWithParam<ConvCase> {};

TEST_P(PackedConvSweep, F32PackedMatchesFallbackBitwise) {
  const ConvCase& c = GetParam();
  NDArray input = NDArray::RandomNormal(Shape({c.batch, c.ci, c.hw, c.hw}), 40, 1.0f);
  NDArray weight =
      NDArray::RandomNormal(Shape({c.co, c.ci / c.groups, c.kernel, c.kernel}), 41, 0.5f);
  NDArray bias = NDArray::RandomNormal(Shape({c.co}), 42, 0.1f);
  Conv2DParams p;
  p.stride_h = p.stride_w = c.stride;
  p.pad_h = p.pad_w = c.pad;
  p.dilation_h = p.dilation_w = c.dilation;
  p.groups = c.groups;
  const Shape out_shape = Conv2DOutShape(input.shape(), weight.shape(), p);

  const PackedMatrixPtr packed = PackConvWeightsF32(weight, c.groups);
  NDArray with_pack = NDArray::Empty(out_shape, DType::kFloat32);
  NDArray without = NDArray::Empty(out_shape, DType::kFloat32);
  Conv2DF32(input, weight, bias, with_pack, p, packed.get());
  Conv2DF32(input, weight, bias, without, p, nullptr);
  EXPECT_EQ(NDArray::MaxAbsDiff(with_pack, without), 0.0);
}

TEST_P(PackedConvSweep, S8PackedMatchesFallbackBitwise) {
  const ConvCase& c = GetParam();
  const QuantParams in_q(0.04f, 5);
  const QuantParams w_q(0.03f, -2);
  const QuantParams out_q(0.3f, -1);
  NDArray input = NDArray::RandomInt8(Shape({c.batch, c.ci, c.hw, c.hw}), 43, -110, 110);
  NDArray weight = NDArray::RandomInt8(Shape({c.co, c.ci / c.groups, c.kernel, c.kernel}),
                                       44, -110, 110);
  NDArray bias = RandomS32Bias(c.co, 45, -40, 40);
  Conv2DParams p;
  p.stride_h = p.stride_w = c.stride;
  p.pad_h = p.pad_w = c.pad;
  p.dilation_h = p.dilation_w = c.dilation;
  p.groups = c.groups;
  const Shape out_shape = Conv2DOutShape(input.shape(), weight.shape(), p);

  const PackedMatrixPtr packed = PackConvWeightsS8(weight, c.groups);
  NDArray with_pack = NDArray::Empty(out_shape, DType::kInt8);
  NDArray without = NDArray::Empty(out_shape, DType::kInt8);
  QConv2DS8(input, weight, bias, with_pack, p, in_q, w_q, out_q, packed.get());
  QConv2DS8(input, weight, bias, without, p, in_q, w_q, out_q, nullptr);
  ExpectBitwiseEqualS8(with_pack, without);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PackedConvSweep,
    ::testing::Values(ConvCase{1, 3, 8, 8, 3, 1, 0, 1, 1},   // valid conv
                      ConvCase{1, 3, 9, 5, 3, 1, 1, 1, 1},   // padded, odd co/hw
                      ConvCase{2, 4, 8, 6, 3, 2, 1, 1, 1},   // strided, batch 2
                      ConvCase{1, 8, 8, 16, 3, 1, 1, 1, 4},  // grouped
                      ConvCase{1, 3, 12, 5, 3, 1, 2, 2, 1},  // dilated
                      ConvCase{1, 5, 10, 7, 1, 1, 0, 1, 1},  // 1x1, odd k
                      ConvCase{1, 3, 16, 9, 7, 2, 3, 1, 1}   // 7x7/2 stem
                      ));

TEST(PackedDense, F32AndS8PackedMatchFallbackBitwise) {
  for (const auto [m, k, n] : {GemmShape{1, 17, 9}, GemmShape{4, 16, 8},
                               GemmShape{5, 33, 13}}) {
    NDArray input_f = NDArray::RandomNormal(Shape({m, k}), 50, 1.0f);
    NDArray weight_f = NDArray::RandomNormal(Shape({n, k}), 51, 0.5f);
    NDArray bias_f = NDArray::RandomNormal(Shape({n}), 52, 0.1f);
    NDArray a = NDArray::Empty(Shape({m, n}), DType::kFloat32);
    NDArray b = NDArray::Empty(Shape({m, n}), DType::kFloat32);
    const PackedMatrixPtr packed_f = PackDenseWeightsF32(weight_f);
    DenseF32(input_f, weight_f, bias_f, a, packed_f.get());
    DenseF32(input_f, weight_f, bias_f, b, nullptr);
    EXPECT_EQ(NDArray::MaxAbsDiff(a, b), 0.0);

    const QuantParams in_q(0.05f, 4);
    const QuantParams w_q(0.02f, -3);
    const QuantParams out_q(0.4f, 2);
    NDArray input_q = NDArray::RandomInt8(Shape({m, k}), 53, -120, 120);
    NDArray weight_q = NDArray::RandomInt8(Shape({n, k}), 54, -120, 120);
    NDArray bias_q = RandomS32Bias(n, 55, -30, 30);
    NDArray qa = NDArray::Empty(Shape({m, n}), DType::kInt8);
    NDArray qb = NDArray::Empty(Shape({m, n}), DType::kInt8);
    const PackedMatrixPtr packed_q = PackDenseWeightsS8(weight_q);
    QDenseS8(input_q, weight_q, bias_q, qa, in_q, w_q, out_q, packed_q.get());
    QDenseS8(input_q, weight_q, bias_q, qb, in_q, w_q, out_q, nullptr);
    ExpectBitwiseEqualS8(qa, qb);
  }
}

// ---------------------------------------------------------------------------
// Tuned-config sweep: every legal candidate the tuner can pick must produce
// exactly what the engine produced before tuning existed. f32 results are
// bitwise-identical to GemmF32BlockedReference at the candidate's kc (the
// summation order depends only on kc — see gemm.h); s8 is bit-exact against
// the naive reference for every candidate (all-integer math). Shapes
// deliberately straddle the kc/nc candidate boundaries with odd tails.

class ConfigSweep : public ::testing::TestWithParam<GemmShape> {};

TEST_P(ConfigSweep, F32EveryCandidateBitwiseMatchesBlockedReference) {
  const auto [m, k, n] = GetParam();
  const auto a = RandomF32(m * k, 70);
  const auto b = RandomF32(k * n, 71);
  for (const GemmConfig& config : tune::CandidateConfigs(DType::kFloat32)) {
    ASSERT_TRUE(IsValidGemmConfig(config, DType::kFloat32)) << config.ToString();
    std::vector<float> ap(static_cast<std::size_t>(PackedExtent(m, config.mr) * k));
    std::vector<float> bp(static_cast<std::size_t>(PackedExtent(n, config.nr) * k));
    PackPanelsAF32(a.data(), m, k, k, ap.data(), config.mr);
    PackPanelsBF32(b.data(), k, n, n, bp.data(), config.nr);
    std::vector<float> c(static_cast<std::size_t>(m * n), -1.0f);
    std::vector<float> ref(static_cast<std::size_t>(m * n), 1.0f);
    GemmPackedF32(ap.data(), bp.data(), c.data(), m, k, n, n, /*parallel=*/false,
                  config);
    GemmF32BlockedReference(a.data(), b.data(), ref.data(), m, k, n, config.kc);
    for (std::size_t i = 0; i < c.size(); ++i) {
      ASSERT_EQ(c[i], ref[i]) << "config " << config.ToString() << " element " << i;
    }
  }
}

TEST_P(ConfigSweep, S8EveryCandidateBitExact) {
  const auto [m, k, n] = GetParam();
  const auto a = RandomS8(m * k, 72);
  const auto b = RandomS8(k * n, 73);
  std::vector<std::int32_t> ref(static_cast<std::size_t>(m * n));
  GemmS8S32Reference(a.data(), b.data(), ref.data(), m, k, n, /*a_zero=*/-5,
                     /*b_zero=*/7);
  for (const GemmConfig& config : tune::CandidateConfigs(DType::kInt8)) {
    ASSERT_TRUE(IsValidGemmConfig(config, DType::kInt8)) << config.ToString();
    const std::int64_t pk = PackedKS8(k);
    std::vector<std::int8_t> ap(static_cast<std::size_t>(PackedExtent(m, config.mr) * pk));
    std::vector<std::int8_t> bp(static_cast<std::size_t>(PackedExtent(n, config.nr) * pk));
    std::vector<std::int32_t> row_sums(static_cast<std::size_t>(m));
    std::vector<std::int32_t> col_sums(static_cast<std::size_t>(n));
    PackPanelsAS8(a.data(), m, k, k, ap.data(), row_sums.data(), config.mr);
    PackPanelsBS8(b.data(), k, n, n, bp.data(), col_sums.data(), config.nr);
    std::vector<std::int32_t> c(static_cast<std::size_t>(m * n), -7);
    GemmPackedS8S32(ap.data(), bp.data(), c.data(), m, k, n, n, /*parallel=*/false,
                    config);
    ApplyZeroPointCorrection(c.data(), m, n, n, k, -5, 7, row_sums.data(),
                             col_sums.data());
    ASSERT_EQ(c, ref) << "config " << config.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConfigSweep,
    ::testing::Values(GemmShape{5, 9, 17},      // odd tails, single block
                      GemmShape{13, 129, 97},   // k straddles kc=128
                      GemmShape{7, 257, 193},   // k spans three kc=128 blocks
                      GemmShape{9, 33, 385},    // n straddles nc=384 and 96/192
                      GemmShape{17, 131, 101},  // odd everything, multi-block
                      GemmShape{4, 384, 96}     // exact kc/nc boundary extents
                      ));

TEST(ConfigSweep, PackedConvAndDenseCarryTunedConfig) {
  const GemmConfig tuned{6, 8, 128, 96, 2};
  NDArray conv_w = NDArray::RandomNormal(Shape({8, 3, 3, 3}), 80, 0.5f);
  const PackedMatrixPtr conv_packed = PackConvWeightsF32(conv_w, 1, tuned);
  EXPECT_EQ(conv_packed->config, tuned);
  EXPECT_EQ(conv_packed->panel, tuned.mr);
  ValidatePackedLayout(*conv_packed);

  NDArray dense_w = NDArray::RandomNormal(Shape({16, 33}), 81, 0.5f);
  GemmConfig wide = GemmConfig::DefaultF32();
  wide.nr = 16;
  wide.mr = 4;
  const PackedMatrixPtr dense_packed = PackDenseWeightsF32(dense_w, wide);
  EXPECT_EQ(dense_packed->config, wide);
  EXPECT_EQ(dense_packed->panel, wide.nr);
  ValidatePackedLayout(*dense_packed);

  // Illegal configs are rejected at pack time, not at kernel time.
  GemmConfig bad = GemmConfig::DefaultF32();
  bad.kc = 7;  // odd kc breaks the s8 pair layout and is illegal everywhere
  EXPECT_THROW(PackConvWeightsF32(conv_w, 1, bad), InternalError);
}

TEST(ConfigSweep, ConvAndDenseBitwiseStableUnderTunedConfigs) {
  // End-to-end: a conv/dense run against weights packed with a *different
  // legal config* must agree with the default-config run wherever the
  // config shares kc (f32 order depends only on kc) and bit-exactly for s8.
  NDArray input = NDArray::RandomNormal(Shape({1, 5, 9, 9}), 82, 1.0f);
  NDArray weight = NDArray::RandomNormal(Shape({7, 5, 3, 3}), 83, 0.5f);
  NDArray bias = NDArray::RandomNormal(Shape({7}), 84, 0.1f);
  Conv2DParams p;
  p.pad_h = p.pad_w = 1;
  const Shape out_shape = Conv2DOutShape(input.shape(), weight.shape(), p);
  GemmConfig tuned{8, 4, 256, 192, 2};  // default kc/nc, different tile+unroll
  NDArray base = NDArray::Empty(out_shape, DType::kFloat32);
  NDArray with_tuned = NDArray::Empty(out_shape, DType::kFloat32);
  const PackedMatrixPtr packed_default = PackConvWeightsF32(weight, 1);
  const PackedMatrixPtr packed_tuned = PackConvWeightsF32(weight, 1, tuned);
  Conv2DF32(input, weight, bias, base, p, packed_default.get());
  Conv2DF32(input, weight, bias, with_tuned, p, packed_tuned.get());
  EXPECT_EQ(NDArray::MaxAbsDiff(base, with_tuned), 0.0);

  const QuantParams in_q(0.04f, 5), w_q(0.03f, -2), out_q(0.3f, -1);
  NDArray q_in = NDArray::RandomInt8(Shape({1, 5, 9, 9}), 85, -110, 110);
  NDArray q_w = NDArray::RandomInt8(Shape({7, 5, 3, 3}), 86, -110, 110);
  NDArray q_bias = RandomS32Bias(7, 87, -40, 40);
  GemmConfig s8_tuned = GemmConfig::DefaultS8();
  s8_tuned.kc = 128;
  s8_tuned.nc = 384;
  NDArray q_base = NDArray::Empty(out_shape, DType::kInt8);
  NDArray q_tuned = NDArray::Empty(out_shape, DType::kInt8);
  QConv2DS8(q_in, q_w, q_bias, q_base, p, in_q, w_q, out_q,
            PackConvWeightsS8(q_w, 1).get());
  QConv2DS8(q_in, q_w, q_bias, q_tuned, p, in_q, w_q, out_q,
            PackConvWeightsS8(q_w, 1, s8_tuned).get());
  ExpectBitwiseEqualS8(q_base, q_tuned);
}

TEST(PackedWeightsCache, SharesEntriesByKey) {
  NDArray weight = NDArray::RandomNormal(Shape({8, 16}), 60, 1.0f);
  PackedWeightsCache cache;
  const std::int64_t packs_before = TotalWeightPacks();
  const PackedMatrixPtr first =
      cache.GetOrPack("dense/f32/1/w", [&] { return PackDenseWeightsF32(weight); });
  const PackedMatrixPtr second =
      cache.GetOrPack("dense/f32/1/w", [&] { return PackDenseWeightsF32(weight); });
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(cache.size(), 1);
  EXPECT_EQ(TotalWeightPacks() - packs_before, 1);
  EXPECT_EQ(cache.total_bytes(), first->total_bytes());
}

TEST(PackedMatrix, ConvPackRecordsGeometryAndSums) {
  NDArray weight = NDArray::RandomInt8(Shape({6, 5, 3, 3}), 61, -100, 100);
  const PackedMatrixPtr packed = PackConvWeightsS8(weight, /*groups=*/2);
  EXPECT_EQ(packed->side, PackedMatrix::Side::kA);
  EXPECT_EQ(packed->rows, 3);        // co per group
  EXPECT_EQ(packed->cols, 45);       // ci_g * kh * kw
  EXPECT_EQ(packed->groups, 2);
  EXPECT_EQ(packed->group_stride, PackedExtent(3, kGemmMrS8) * PackedKS8(45));
  ASSERT_TRUE(packed->sums.defined());
  // Row sums must equal the plain weight-row sums (zero-point algebra input).
  const std::int8_t* w = weight.Data<std::int8_t>();
  const std::int32_t* sums = packed->sums.Data<std::int32_t>();
  for (std::int64_t oc = 0; oc < 6; ++oc) {
    std::int32_t expected = 0;
    for (std::int64_t t = 0; t < 45; ++t) expected += w[oc * 45 + t];
    EXPECT_EQ(sums[oc], expected) << "oc=" << oc;
  }
}

}  // namespace
}  // namespace kernels
}  // namespace tnp
