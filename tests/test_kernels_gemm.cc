// Differential tests for the packed GEMM engine: the tiled micro-kernel
// paths are checked against the naive references across odd M/K/N tails,
// multi-block k/n extents, and nonzero zero points (s8 must be bit-exact —
// the zero-point factorization is all-integer). The packed-weight kernel
// entry points are checked bitwise against their pack-on-the-fly fallbacks.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "kernels/conv.h"
#include "kernels/dense.h"
#include "kernels/gemm.h"
#include "kernels/pack.h"
#include "support/rng.h"

namespace tnp {
namespace kernels {
namespace {

std::vector<float> RandomF32(std::int64_t count, std::uint64_t seed) {
  support::SplitMix64 rng(seed);
  std::vector<float> v(static_cast<std::size_t>(count));
  for (auto& x : v) x = static_cast<float>(rng.Uniform(-1.0, 1.0));
  return v;
}

std::vector<std::int8_t> RandomS8(std::int64_t count, std::uint64_t seed) {
  support::SplitMix64 rng(seed);
  std::vector<std::int8_t> v(static_cast<std::size_t>(count));
  for (auto& x : v) x = static_cast<std::int8_t>(rng.UniformInt(-128, 127));
  return v;
}

NDArray RandomS32Bias(std::int64_t n, std::uint64_t seed, int lo, int hi) {
  NDArray bias = NDArray::Empty(Shape({n}), DType::kInt32);
  support::SplitMix64 rng(seed);
  std::int32_t* d = bias.Data<std::int32_t>();
  for (std::int64_t i = 0; i < n; ++i) {
    d[i] = static_cast<std::int32_t>(rng.UniformInt(lo, hi));
  }
  return bias;
}

void ExpectBitwiseEqualS8(const NDArray& a, const NDArray& b) {
  ASSERT_EQ(a.SizeBytes(), b.SizeBytes());
  const std::int8_t* pa = a.Data<std::int8_t>();
  const std::int8_t* pb = b.Data<std::int8_t>();
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(a.SizeBytes()); ++i) {
    ASSERT_EQ(static_cast<int>(pa[i]), static_cast<int>(pb[i])) << "byte " << i;
  }
}

struct GemmShape {
  std::int64_t m, k, n;
};

class GemmSweep : public ::testing::TestWithParam<GemmShape> {};

TEST_P(GemmSweep, F32MatchesReference) {
  const auto [m, k, n] = GetParam();
  const auto a = RandomF32(m * k, 1);
  const auto b = RandomF32(k * n, 2);
  std::vector<float> c(static_cast<std::size_t>(m * n), -1.0f);
  std::vector<float> ref(static_cast<std::size_t>(m * n), 1.0f);
  GemmF32(a.data(), b.data(), c.data(), m, k, n);
  GemmF32Reference(a.data(), b.data(), ref.data(), m, k, n);
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c[i], ref[i], 1e-4f * static_cast<float>(k) + 1e-6f) << "at " << i;
  }
}

TEST_P(GemmSweep, S8BitExactWithNonzeroZeroPoints) {
  const auto [m, k, n] = GetParam();
  const auto a = RandomS8(m * k, 3);
  const auto b = RandomS8(k * n, 4);
  std::vector<std::int32_t> c(static_cast<std::size_t>(m * n), -7);
  std::vector<std::int32_t> ref(static_cast<std::size_t>(m * n), 7);
  GemmS8S32(a.data(), b.data(), c.data(), m, k, n, /*a_zero=*/-3, /*b_zero=*/11);
  GemmS8S32Reference(a.data(), b.data(), ref.data(), m, k, n, -3, 11);
  EXPECT_EQ(c, ref);
}

TEST_P(GemmSweep, S8BitExactOneSidedZeroPoints) {
  const auto [m, k, n] = GetParam();
  const auto a = RandomS8(m * k, 5);
  const auto b = RandomS8(k * n, 6);
  for (const auto& [az, bz] : {std::pair<int, int>{0, 0}, {5, 0}, {0, -9}}) {
    std::vector<std::int32_t> c(static_cast<std::size_t>(m * n));
    std::vector<std::int32_t> ref(static_cast<std::size_t>(m * n));
    GemmS8S32(a.data(), b.data(), c.data(), m, k, n, az, bz);
    GemmS8S32Reference(a.data(), b.data(), ref.data(), m, k, n, az, bz);
    EXPECT_EQ(c, ref) << "az=" << az << " bz=" << bz;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmSweep,
    ::testing::Values(GemmShape{1, 1, 1},      // degenerate
                      GemmShape{3, 5, 7},      // all-odd tails
                      GemmShape{4, 8, 8},      // exact tiles, even k
                      GemmShape{5, 9, 17},     // odd k (s8 pair padding)
                      GemmShape{13, 31, 29},   // odd everything
                      GemmShape{8, 300, 24},   // k spans two cache blocks
                      GemmShape{6, 16, 200},   // n spans two cache blocks
                      GemmShape{17, 257, 193}  // odd multi-block tails
                      ));

TEST(Gemm, ZeroKZeroFillsOutput) {
  const float af[1] = {9.0f};
  const float bf[1] = {9.0f};
  std::vector<float> c(6, 123.0f);
  GemmF32(af, bf, c.data(), 2, 0, 3);
  for (const float x : c) EXPECT_EQ(x, 0.0f);
  const std::int8_t ai[1] = {9};
  const std::int8_t bi[1] = {9};
  std::vector<std::int32_t> ci(6, 123);
  GemmS8S32(ai, bi, ci.data(), 2, 0, 3, 4, 5);
  for (const std::int32_t x : ci) EXPECT_EQ(x, 0);
}

// ---------------------------------------------------------------------------
// Pre-packed weights vs. the pack-on-the-fly fallback: the fallback builds
// identical panels with identical summation order, so results are bitwise
// equal — any divergence means the compile-time pack and the kernel layout
// drifted apart.

struct ConvCase {
  std::int64_t batch, ci, hw, co, kernel, stride, pad, dilation, groups;
};

class PackedConvSweep : public ::testing::TestWithParam<ConvCase> {};

TEST_P(PackedConvSweep, F32PackedMatchesFallbackBitwise) {
  const ConvCase& c = GetParam();
  NDArray input = NDArray::RandomNormal(Shape({c.batch, c.ci, c.hw, c.hw}), 40, 1.0f);
  NDArray weight =
      NDArray::RandomNormal(Shape({c.co, c.ci / c.groups, c.kernel, c.kernel}), 41, 0.5f);
  NDArray bias = NDArray::RandomNormal(Shape({c.co}), 42, 0.1f);
  Conv2DParams p;
  p.stride_h = p.stride_w = c.stride;
  p.pad_h = p.pad_w = c.pad;
  p.dilation_h = p.dilation_w = c.dilation;
  p.groups = c.groups;
  const Shape out_shape = Conv2DOutShape(input.shape(), weight.shape(), p);

  const PackedMatrixPtr packed = PackConvWeightsF32(weight, c.groups);
  NDArray with_pack = NDArray::Empty(out_shape, DType::kFloat32);
  NDArray without = NDArray::Empty(out_shape, DType::kFloat32);
  Conv2DF32(input, weight, bias, with_pack, p, packed.get());
  Conv2DF32(input, weight, bias, without, p, nullptr);
  EXPECT_EQ(NDArray::MaxAbsDiff(with_pack, without), 0.0);
}

TEST_P(PackedConvSweep, S8PackedMatchesFallbackBitwise) {
  const ConvCase& c = GetParam();
  const QuantParams in_q(0.04f, 5);
  const QuantParams w_q(0.03f, -2);
  const QuantParams out_q(0.3f, -1);
  NDArray input = NDArray::RandomInt8(Shape({c.batch, c.ci, c.hw, c.hw}), 43, -110, 110);
  NDArray weight = NDArray::RandomInt8(Shape({c.co, c.ci / c.groups, c.kernel, c.kernel}),
                                       44, -110, 110);
  NDArray bias = RandomS32Bias(c.co, 45, -40, 40);
  Conv2DParams p;
  p.stride_h = p.stride_w = c.stride;
  p.pad_h = p.pad_w = c.pad;
  p.dilation_h = p.dilation_w = c.dilation;
  p.groups = c.groups;
  const Shape out_shape = Conv2DOutShape(input.shape(), weight.shape(), p);

  const PackedMatrixPtr packed = PackConvWeightsS8(weight, c.groups);
  NDArray with_pack = NDArray::Empty(out_shape, DType::kInt8);
  NDArray without = NDArray::Empty(out_shape, DType::kInt8);
  QConv2DS8(input, weight, bias, with_pack, p, in_q, w_q, out_q, packed.get());
  QConv2DS8(input, weight, bias, without, p, in_q, w_q, out_q, nullptr);
  ExpectBitwiseEqualS8(with_pack, without);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PackedConvSweep,
    ::testing::Values(ConvCase{1, 3, 8, 8, 3, 1, 0, 1, 1},   // valid conv
                      ConvCase{1, 3, 9, 5, 3, 1, 1, 1, 1},   // padded, odd co/hw
                      ConvCase{2, 4, 8, 6, 3, 2, 1, 1, 1},   // strided, batch 2
                      ConvCase{1, 8, 8, 16, 3, 1, 1, 1, 4},  // grouped
                      ConvCase{1, 3, 12, 5, 3, 1, 2, 2, 1},  // dilated
                      ConvCase{1, 5, 10, 7, 1, 1, 0, 1, 1},  // 1x1, odd k
                      ConvCase{1, 3, 16, 9, 7, 2, 3, 1, 1}   // 7x7/2 stem
                      ));

TEST(PackedDense, F32AndS8PackedMatchFallbackBitwise) {
  for (const auto [m, k, n] : {GemmShape{1, 17, 9}, GemmShape{4, 16, 8},
                               GemmShape{5, 33, 13}}) {
    NDArray input_f = NDArray::RandomNormal(Shape({m, k}), 50, 1.0f);
    NDArray weight_f = NDArray::RandomNormal(Shape({n, k}), 51, 0.5f);
    NDArray bias_f = NDArray::RandomNormal(Shape({n}), 52, 0.1f);
    NDArray a = NDArray::Empty(Shape({m, n}), DType::kFloat32);
    NDArray b = NDArray::Empty(Shape({m, n}), DType::kFloat32);
    const PackedMatrixPtr packed_f = PackDenseWeightsF32(weight_f);
    DenseF32(input_f, weight_f, bias_f, a, packed_f.get());
    DenseF32(input_f, weight_f, bias_f, b, nullptr);
    EXPECT_EQ(NDArray::MaxAbsDiff(a, b), 0.0);

    const QuantParams in_q(0.05f, 4);
    const QuantParams w_q(0.02f, -3);
    const QuantParams out_q(0.4f, 2);
    NDArray input_q = NDArray::RandomInt8(Shape({m, k}), 53, -120, 120);
    NDArray weight_q = NDArray::RandomInt8(Shape({n, k}), 54, -120, 120);
    NDArray bias_q = RandomS32Bias(n, 55, -30, 30);
    NDArray qa = NDArray::Empty(Shape({m, n}), DType::kInt8);
    NDArray qb = NDArray::Empty(Shape({m, n}), DType::kInt8);
    const PackedMatrixPtr packed_q = PackDenseWeightsS8(weight_q);
    QDenseS8(input_q, weight_q, bias_q, qa, in_q, w_q, out_q, packed_q.get());
    QDenseS8(input_q, weight_q, bias_q, qb, in_q, w_q, out_q, nullptr);
    ExpectBitwiseEqualS8(qa, qb);
  }
}

TEST(PackedWeightsCache, SharesEntriesByKey) {
  NDArray weight = NDArray::RandomNormal(Shape({8, 16}), 60, 1.0f);
  PackedWeightsCache cache;
  const std::int64_t packs_before = TotalWeightPacks();
  const PackedMatrixPtr first =
      cache.GetOrPack("dense/f32/1/w", [&] { return PackDenseWeightsF32(weight); });
  const PackedMatrixPtr second =
      cache.GetOrPack("dense/f32/1/w", [&] { return PackDenseWeightsF32(weight); });
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(cache.size(), 1);
  EXPECT_EQ(TotalWeightPacks() - packs_before, 1);
  EXPECT_EQ(cache.total_bytes(), first->total_bytes());
}

TEST(PackedMatrix, ConvPackRecordsGeometryAndSums) {
  NDArray weight = NDArray::RandomInt8(Shape({6, 5, 3, 3}), 61, -100, 100);
  const PackedMatrixPtr packed = PackConvWeightsS8(weight, /*groups=*/2);
  EXPECT_EQ(packed->side, PackedMatrix::Side::kA);
  EXPECT_EQ(packed->rows, 3);        // co per group
  EXPECT_EQ(packed->cols, 45);       // ci_g * kh * kw
  EXPECT_EQ(packed->groups, 2);
  EXPECT_EQ(packed->group_stride, PackedExtent(3, kGemmMrS8) * PackedKS8(45));
  ASSERT_TRUE(packed->sums.defined());
  // Row sums must equal the plain weight-row sums (zero-point algebra input).
  const std::int8_t* w = weight.Data<std::int8_t>();
  const std::int32_t* sums = packed->sums.Data<std::int32_t>();
  for (std::int64_t oc = 0; oc < 6; ++oc) {
    std::int32_t expected = 0;
    for (std::int64_t t = 0; t < 45; ++t) expected += w[oc * 45 + t];
    EXPECT_EQ(sums[oc], expected) << "oc=" << oc;
  }
}

}  // namespace
}  // namespace kernels
}  // namespace tnp
