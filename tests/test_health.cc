// The serving health & SLO layer: windowed time-series metrics, burn-rate
// alerting, the health state machine (with admission tightening and the
// one-shot flight-recorder trigger), and the /healthz + /metrics debug HTTP
// endpoint probed over loopback.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <vector>

#include "core/flows.h"
#include "frontend/common.h"
#include "serve/health.h"
#include "serve/server.h"
#include "support/debug_http.h"
#include "support/error.h"
#include "support/flight_recorder.h"
#include "support/metrics.h"
#include "support/slo.h"
#include "support/timeseries.h"

// ---------------------------------------------------------------------------
// Global allocation counter: proves the time-series record path performs no
// heap allocation in steady state (the same discipline the serving hot path
// already follows for tensors).
// ---------------------------------------------------------------------------

namespace {
std::atomic<std::int64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace tnp {
namespace {

using frontend::TypedCall;
using frontend::TypedVar;
using frontend::WeightF32;
using frontend::ZeroBiasF32;
using serve::HealthMonitor;
using serve::HealthOptions;
using serve::HealthSignals;
using serve::HealthState;
using support::metrics::Registry;
using support::timeseries::Collector;
using support::timeseries::CollectorOptions;
using support::timeseries::LatencySeries;
using support::timeseries::RateSeries;
using support::timeseries::WindowStats;

/// Deterministic pseudo-random stream (no <random> allocation surprises).
struct Lcg {
  std::uint64_t state = 0x853c49e6748fea9bULL;
  std::uint64_t Next() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  }
};

/// Nearest-rank percentile over raw samples — the scalar reference the
/// grid-bucketed window estimate is validated against.
double ReferencePercentile(std::vector<double> samples, double p) {
  std::sort(samples.begin(), samples.end());
  const std::size_t rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(samples.size())));
  return samples[std::max<std::size_t>(rank, 1) - 1];
}

// ---------------------------------------------------------------------------
// RateSeries / LatencySeries
// ---------------------------------------------------------------------------

TEST(TimeSeries, RateWindowsMergeAndExpire) {
  RateSeries series(10);
  series.AddDelta(5);  // second 0
  series.Advance(1);
  series.AddDelta(3);  // second 1
  series.Advance(2);
  series.AddDelta(2);  // second 2

  EXPECT_EQ(series.DeltaOver(1), 2);
  EXPECT_EQ(series.DeltaOver(2), 5);
  EXPECT_EQ(series.DeltaOver(10), 10);
  EXPECT_DOUBLE_EQ(series.RateOver(2), 2.5);

  // 12 seconds later every bucket above lapsed out of the 10s ring.
  series.Advance(14);
  EXPECT_EQ(series.DeltaOver(10), 0);
  // Requests wider than the ring clamp to the ring.
  series.AddDelta(7);
  EXPECT_EQ(series.DeltaOver(1000), 7);
}

TEST(TimeSeries, ConstantWindowReportsExactPercentiles) {
  LatencySeries series(10);
  for (int i = 0; i < 500; ++i) series.Record(777.0);
  const WindowStats stats = series.Summarize(10);
  EXPECT_EQ(stats.count, 500);
  // Min/max clamping makes a constant-valued window exact despite the
  // ~25% geometric grid.
  EXPECT_DOUBLE_EQ(stats.p50, 777.0);
  EXPECT_DOUBLE_EQ(stats.p95, 777.0);
  EXPECT_DOUBLE_EQ(stats.p99, 777.0);
  EXPECT_DOUBLE_EQ(stats.mean, 777.0);
  EXPECT_DOUBLE_EQ(stats.min, 777.0);
  EXPECT_DOUBLE_EQ(stats.max, 777.0);
}

TEST(TimeSeries, WindowedPercentilesTrackScalarReference) {
  // Synthetic traffic: heavy-tailed latencies spread across 10 seconds.
  LatencySeries series(60);
  Lcg rng;
  std::vector<double> reference;
  for (int second = 0; second < 10; ++second) {
    series.Advance(second);
    for (int i = 0; i < 1000; ++i) {
      // 50us floor with a long multiplicative tail up to ~50ms.
      const double value =
          50.0 * std::pow(1.001, static_cast<double>(rng.Next() % 6932));
      series.Record(value);
      reference.push_back(value);
    }
  }
  const WindowStats stats = series.Summarize(10);
  ASSERT_EQ(stats.count, static_cast<std::int64_t>(reference.size()));

  const double ref_p50 = ReferencePercentile(reference, 50.0);
  const double ref_p95 = ReferencePercentile(reference, 95.0);
  const double ref_p99 = ReferencePercentile(reference, 99.0);
  // The geometric grid spaces bounds 25% apart: the estimate must land
  // within one grid step of the true rank value.
  EXPECT_NEAR(stats.p50, ref_p50, 0.25 * ref_p50);
  EXPECT_NEAR(stats.p95, ref_p95, 0.25 * ref_p95);
  EXPECT_NEAR(stats.p99, ref_p99, 0.25 * ref_p99);
  // And the narrow window sees only the recent second.
  const WindowStats last_second = series.Summarize(1);
  EXPECT_EQ(last_second.count, 1000);
}

TEST(TimeSeries, LatencyWindowExpires) {
  LatencySeries series(5);
  for (int i = 0; i < 100; ++i) series.Record(200.0);
  EXPECT_EQ(series.Summarize(5).count, 100);
  series.Advance(20);
  EXPECT_EQ(series.Summarize(5).count, 0);
  EXPECT_DOUBLE_EQ(series.FractionBelow(1000.0, 5), 1.0) << "empty = no violations";
}

TEST(TimeSeries, RecordPathDoesNotAllocate) {
  LatencySeries latency(30);
  RateSeries rate(30);
  latency.Record(100.0);  // touch first buckets
  rate.AddDelta(1);

  const std::int64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 10000; ++i) {
    latency.Record(static_cast<double>(50 + (i % 1000)));
    rate.AddDelta(1);
  }
  latency.Advance(1);  // ring rotation is also allocation-free
  for (int i = 0; i < 1000; ++i) latency.Record(42.0);
  const std::int64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before) << "record path must stay allocation-free";
}

// ---------------------------------------------------------------------------
// Collector: registry-fed windows with an injected clock
// ---------------------------------------------------------------------------

TEST(TimeSeries, CollectorPullsCounterDeltasAndHistogramSamples) {
  auto& registry = Registry::Global();
  auto& counter = registry.GetCounter("tshealth/events");
  auto& histogram = registry.GetHistogram("tshealth/lat/us");

  Collector collector(CollectorOptions{30});
  RateSeries& events = collector.TrackCounter("tshealth/events");
  LatencySeries& latency = collector.TrackHistogram("tshealth/lat/us");

  counter.Increment(100);     // before the first Tick: baseline, not window
  collector.Tick(1);          // primes
  counter.Increment(10);
  histogram.Record(500.0);
  histogram.Record(600.0);
  collector.Tick(2);
  counter.Increment(4);
  histogram.Record(700.0);
  collector.Tick(3);

  EXPECT_EQ(events.DeltaOver(1), 4) << "only the last second's delta";
  EXPECT_EQ(events.DeltaOver(10), 14) << "baseline before priming excluded";
  const WindowStats stats = latency.Summarize(10);
  EXPECT_EQ(stats.count, 3);
  EXPECT_DOUBLE_EQ(stats.min, 500.0);
  EXPECT_DOUBLE_EQ(stats.max, 700.0);

  // ExportJson carries every tracked series with per-window stats.
  const std::string json = collector.ExportJson({10});
  EXPECT_NE(json.find("\"tshealth/events\""), std::string::npos);
  EXPECT_NE(json.find("\"tshealth/lat/us\""), std::string::npos);
  EXPECT_NE(json.find("\"10s\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// SLO burn rates
// ---------------------------------------------------------------------------

TEST(Slo, AvailabilityBurnUsesMultiwindowAnd) {
  auto& registry = Registry::Global();
  auto& bad = registry.GetCounter("slotest/shed");
  auto& total = registry.GetCounter("slotest/submitted");

  Collector collector(CollectorOptions{120});
  support::slo::SloTrackerOptions options;
  options.warning_burn = 1.0;
  options.critical_burn = 6.0;
  support::slo::SloTracker tracker(options, &collector);

  support::slo::Objective objective;
  objective.name = "slotest-availability";
  objective.target = 0.99;  // 1% error budget
  objective.bad_counter = "slotest/shed";
  objective.total_counter = "slotest/submitted";
  objective.short_window_s = 5;
  objective.long_window_s = 60;
  tracker.AddObjective(objective);

  collector.Tick(1);  // prime baselines

  // Clean traffic: no burn.
  total.Increment(1000);
  collector.Tick(2);
  auto statuses = tracker.Evaluate();
  ASSERT_EQ(statuses.size(), 1u);
  EXPECT_DOUBLE_EQ(statuses[0].burn_short, 0.0);
  EXPECT_EQ(statuses[0].alert, support::slo::AlertState::kOk);

  // A severe shed spike: 50% of submissions shed = 50x the 1% budget. The
  // short window confirms immediately; the long window includes the clean
  // 1000 so it burns less but still far above critical.
  total.Increment(1000);
  bad.Increment(500);
  collector.Tick(3);
  statuses = tracker.Evaluate();
  EXPECT_GT(statuses[0].burn_short, 6.0);
  EXPECT_GT(statuses[0].burn_long, 6.0);
  EXPECT_EQ(statuses[0].alert, support::slo::AlertState::kCritical);
  EXPECT_GT(tracker.worst_burn(), 6.0);
  EXPECT_EQ(tracker.worst_alert(), support::slo::AlertState::kCritical);

  // 10 quiet seconds: the short window is clean, so multiwindow AND clears
  // the alert even though the long window still remembers the spike.
  collector.Tick(13);
  statuses = tracker.Evaluate();
  EXPECT_DOUBLE_EQ(statuses[0].burn_short, 0.0);
  EXPECT_GT(statuses[0].burn_long, 0.0);
  EXPECT_EQ(statuses[0].alert, support::slo::AlertState::kOk)
      << "effective burn is min(short, long)";

  // Transitions were counted (Ok -> Critical -> Ok).
  const auto* transitions =
      registry.FindCounter("health/slo/slotest-availability/transitions");
  ASSERT_NE(transitions, nullptr);
  EXPECT_EQ(transitions->value(), 2);
  const auto* worst = registry.FindGauge("health/slo/worst_burn");
  ASSERT_NE(worst, nullptr);
}

TEST(Slo, LatencyObjectiveBurnsWhenThresholdExceeded) {
  auto& histogram = Registry::Global().GetHistogram("slotest/lat/us");

  Collector collector(CollectorOptions{120});
  support::slo::SloTracker tracker({}, &collector);
  support::slo::Objective objective;
  objective.name = "slotest-latency";
  objective.target = 0.9;  // 10% budget
  objective.histogram = "slotest/lat/us";
  objective.threshold_us = 1000.0;
  tracker.AddObjective(objective);
  EXPECT_EQ(tracker.num_objectives(), 1u);

  collector.Tick(1);
  for (int i = 0; i < 90; ++i) histogram.Record(100.0);    // good
  for (int i = 0; i < 10; ++i) histogram.Record(50000.0);  // bad: 10% = burn 1.0
  collector.Tick(2);
  auto statuses = tracker.Evaluate();
  ASSERT_EQ(statuses.size(), 1u);
  EXPECT_NEAR(statuses[0].burn_short, 1.0, 0.3) << "10% violations / 10% budget";
  EXPECT_NEAR(statuses[0].burn_long, 1.0, 0.3);
}

// ---------------------------------------------------------------------------
// Health state machine (injected signals: fully deterministic)
// ---------------------------------------------------------------------------

HealthOptions ManualHealthOptions() {
  HealthOptions options;
  options.tighten_admission = true;
  options.auto_evaluate_period_ms = 0;  // no cadence thread
  options.auto_tick_collector = false;  // the test owns time
  return options;
}

TEST(HealthMonitor, EscalatesImmediatelyRecoversWithHysteresis) {
  Collector collector(CollectorOptions{60});
  HealthMonitor monitor(ManualHealthOptions(), &collector);

  auto& recorder = support::FlightRecorder::Global();
  support::FlightRecorderOptions fr_options;
  fr_options.path = testing::TempDir() + "flight_health_cycle.json";
  recorder.Configure(fr_options);
  const std::int64_t dumps_before = recorder.dumps();

  HealthSignals calm;
  EXPECT_EQ(monitor.Evaluate(calm), HealthState::kHealthy);
  EXPECT_TRUE(monitor.AdmitsPriority(0));

  // Queue pressure crosses the degraded bound: escalate immediately.
  HealthSignals pressured;
  pressured.queue_saturation = 0.8;
  EXPECT_EQ(monitor.Evaluate(pressured), HealthState::kDegraded);
  EXPECT_EQ(monitor.transitions(), 1);
  EXPECT_FALSE(monitor.AdmitsPriority(0)) << "degraded sheds below priority 1";
  EXPECT_TRUE(monitor.AdmitsPriority(1));
  EXPECT_EQ(monitor.min_admit_priority(), 1);

  // Saturation: escalate again, and the flight recorder fires exactly once.
  HealthSignals saturated;
  saturated.queue_saturation = 1.0;
  saturated.shed_fraction = 0.5;
  EXPECT_EQ(monitor.Evaluate(saturated), HealthState::kUnhealthy);
  EXPECT_EQ(recorder.dumps(), dumps_before + 1);
  EXPECT_FALSE(monitor.AdmitsPriority(1));
  EXPECT_TRUE(monitor.AdmitsPriority(2));
  EXPECT_EQ(monitor.Evaluate(saturated), HealthState::kUnhealthy) << "no flap";
  EXPECT_EQ(recorder.dumps(), dumps_before + 1) << "one-shot while armed";

  // Recovery takes recovery_ticks calm evaluations per level (default 3).
  EXPECT_EQ(monitor.Evaluate(calm), HealthState::kUnhealthy);
  EXPECT_EQ(monitor.Evaluate(calm), HealthState::kUnhealthy);
  EXPECT_EQ(monitor.Evaluate(calm), HealthState::kDegraded) << "one level down";
  EXPECT_EQ(monitor.Evaluate(calm), HealthState::kDegraded);
  EXPECT_EQ(monitor.Evaluate(calm), HealthState::kDegraded);
  EXPECT_EQ(monitor.Evaluate(calm), HealthState::kHealthy);
  EXPECT_TRUE(monitor.AdmitsPriority(0));

  // A second incident does not dump again until the recorder is re-armed.
  EXPECT_EQ(monitor.Evaluate(saturated), HealthState::kUnhealthy);
  EXPECT_EQ(recorder.dumps(), dumps_before + 1);
  EXPECT_EQ(monitor.transitions(), 5);

  // The state gauge mirrors the machine.
  const auto* gauge = Registry::Global().FindGauge("serve/health/state");
  ASSERT_NE(gauge, nullptr);
  EXPECT_DOUBLE_EQ(gauge->value(), 2.0);

  recorder.Disarm();
  std::remove(fr_options.path.c_str());
}

TEST(HealthMonitor, InterruptedRecoveryResetsHysteresis) {
  Collector collector(CollectorOptions{60});
  HealthMonitor monitor(ManualHealthOptions(), &collector);

  HealthSignals pressured;
  pressured.queue_saturation = 0.8;
  HealthSignals calm;

  EXPECT_EQ(monitor.Evaluate(pressured), HealthState::kDegraded);
  EXPECT_EQ(monitor.Evaluate(calm), HealthState::kDegraded);
  EXPECT_EQ(monitor.Evaluate(calm), HealthState::kDegraded);
  // Pressure returns before the third calm tick: the countdown restarts.
  EXPECT_EQ(monitor.Evaluate(pressured), HealthState::kDegraded);
  EXPECT_EQ(monitor.Evaluate(calm), HealthState::kDegraded);
  EXPECT_EQ(monitor.Evaluate(calm), HealthState::kDegraded);
  EXPECT_EQ(monitor.Evaluate(calm), HealthState::kHealthy);
}

TEST(HealthMonitor, DisabledMonitorNeverTightens) {
  HealthOptions options = ManualHealthOptions();
  options.enabled = false;
  Collector collector(CollectorOptions{60});
  HealthMonitor monitor(options, &collector);
  HealthSignals saturated;
  saturated.queue_saturation = 5.0;
  EXPECT_EQ(monitor.Evaluate(saturated), HealthState::kHealthy);
  EXPECT_TRUE(monitor.AdmitsPriority(-100));
}

// ---------------------------------------------------------------------------
// Debug HTTP endpoint
// ---------------------------------------------------------------------------

TEST(DebugHttp, ServesSupportEndpointsOverLoopback) {
  Registry::Global().GetCounter("httptest/hits").Increment(3);
  // The /timeseries document lists per-window stats for tracked series only.
  Collector::Global().TrackCounter("httptest/hits");

  support::DebugHttpServer http;
  support::RegisterSupportEndpoints(http);
  http.Start(0);  // ephemeral port
  ASSERT_TRUE(http.running());
  const int port = http.port();
  ASSERT_GT(port, 0);

  const support::HttpResult metrics = support::HttpGet(port, "/metrics");
  ASSERT_TRUE(metrics.ok()) << metrics.error;
  EXPECT_NE(metrics.body.find("# TYPE"), std::string::npos);
  EXPECT_NE(metrics.body.find("tnp_httptest_hits"), std::string::npos);

  const support::HttpResult series = support::HttpGet(port, "/timeseries?window=7");
  ASSERT_TRUE(series.ok()) << series.error;
  EXPECT_EQ(series.content_type, "application/json");
  EXPECT_NE(series.body.find("\"now_sec\""), std::string::npos);
  EXPECT_NE(series.body.find("\"7s\""), std::string::npos);

  const support::HttpResult record = support::HttpGet(port, "/flightrecord");
  ASSERT_TRUE(record.ok()) << record.error;
  EXPECT_NE(record.body.find("\"reason\":\"on-demand\""), std::string::npos);

  const support::HttpResult missing = support::HttpGet(port, "/nope");
  EXPECT_EQ(missing.status, 404);

  http.Stop();
  http.Stop();  // idempotent
  EXPECT_FALSE(http.running());
}

TEST(DebugHttp, PortInUseThrowsGracefully) {
  support::DebugHttpServer first;
  first.Start(0);
  support::DebugHttpServer second;
  EXPECT_THROW(second.Start(first.port()), Error);
  EXPECT_FALSE(second.running());
  first.Stop();
}

TEST(DebugHttp, HealthzReportsStateWith503WhileUnhealthy) {
  Collector collector(CollectorOptions{60});
  HealthMonitor monitor(ManualHealthOptions(), &collector);

  support::DebugHttpServer http;
  monitor.RegisterWith(http);
  http.Start(0);
  const int port = http.port();

  support::HttpResult result = support::HttpGet(port, "/healthz");
  EXPECT_EQ(result.status, 200);
  EXPECT_NE(result.body.find("\"state\":\"healthy\""), std::string::npos);
  EXPECT_NE(result.body.find("\"serving\":true"), std::string::npos);

  HealthSignals saturated;
  saturated.queue_saturation = 1.5;
  monitor.Evaluate(saturated);
  result = support::HttpGet(port, "/healthz");
  EXPECT_EQ(result.status, 503) << "unhealthy answers 503 so balancers drain";
  EXPECT_NE(result.body.find("\"state\":\"unhealthy\""), std::string::npos);
  EXPECT_NE(result.body.find("\"serving\":false"), std::string::npos);

  // Degraded still serves: only Unhealthy is a probe failure.
  HealthSignals calm;
  monitor.Evaluate(calm);
  monitor.Evaluate(calm);
  monitor.Evaluate(calm);
  result = support::HttpGet(port, "/healthz");
  EXPECT_EQ(result.status, 200);
  EXPECT_NE(result.body.find("\"state\":\"degraded\""), std::string::npos);

  http.Stop();
}

// ---------------------------------------------------------------------------
// End-to-end overload scenario on a real server
// ---------------------------------------------------------------------------

relay::Module TinyModel() {
  auto x = TypedVar("data", Shape({1, 3, 16, 16}), DType::kFloat32);
  auto conv = TypedCall("nn.conv2d",
                        {x, WeightF32(Shape({8, 3, 3, 3}), 1), ZeroBiasF32(8)},
                        relay::Attrs().SetInts("padding", {1, 1}));
  auto relu = TypedCall("nn.relu", {conv});
  auto pool = TypedCall("nn.global_avg_pool2d", {relu});
  auto flat = TypedCall("nn.batch_flatten", {pool});
  auto dense =
      TypedCall("nn.dense", {flat, WeightF32(Shape({5, 8}), 2), ZeroBiasF32(5)});
  auto softmax = TypedCall("nn.softmax", {dense});
  return relay::Module(relay::MakeFunction({x}, softmax));
}

serve::ServedModel MakeTinyServed(const std::string& name) {
  serve::ServedModel model;
  model.name = name;
  model.module = TinyModel();
  model.plan.primary = core::Assignment{core::FlowKind::kTvmOnly, 100.0};
  return model;
}

serve::ServeRequest MakeRequest(const std::string& model, int priority) {
  serve::ServeRequest request;
  request.model = model;
  request.inputs.emplace_back(
      "data", NDArray::Full(Shape({1, 3, 16, 16}), DType::kFloat32, 0.5));
  request.priority = priority;
  return request;
}

std::int64_t CounterValue(const std::string& name) {
  const auto* counter = Registry::Global().FindCounter(name);
  return counter != nullptr ? counter->value() : 0;
}

TEST(ServeHealth, OverloadCycleTightensAdmissionAndRecovers) {
  serve::ServerOptions options;
  options.queue_capacity = 8;
  options.health.tighten_admission = true;
  options.health.auto_evaluate_period_ms = 0;
  options.health.auto_tick_collector = false;
  serve::InferenceServer server({MakeTinyServed("tiny-health")}, options);
  HealthMonitor& monitor = server.health();

  auto& recorder = support::FlightRecorder::Global();
  support::FlightRecorderOptions fr_options;
  fr_options.path = testing::TempDir() + "flight_serve_health.json";
  recorder.Configure(fr_options);
  const std::int64_t dumps_before = recorder.dumps();

  support::DebugHttpServer http;
  monitor.RegisterWith(http);
  http.Start(0);
  const int port = http.port();

  // Healthy: everything admitted.
  EXPECT_EQ(server.Submit(MakeRequest("tiny-health", 0)).get().status,
            serve::ServeStatus::kOk);
  EXPECT_EQ(support::HttpGet(port, "/healthz").status, 200);

  // Degraded: priority 0 sheds at admission, priority 1 still runs.
  HealthSignals pressured;
  pressured.queue_saturation = 0.8;
  ASSERT_EQ(monitor.Evaluate(pressured), HealthState::kDegraded);
  const std::int64_t p0_sheds_before = CounterValue("serve/shed/p0");
  EXPECT_EQ(server.Submit(MakeRequest("tiny-health", 0)).get().status,
            serve::ServeStatus::kShed);
  EXPECT_EQ(CounterValue("serve/shed/p0"), p0_sheds_before + 1)
      << "per-priority shed attribution";
  EXPECT_EQ(server.Submit(MakeRequest("tiny-health", 1)).get().status,
            serve::ServeStatus::kOk);
  EXPECT_EQ(support::HttpGet(port, "/healthz").status, 200)
      << "degraded still serves";

  // Unhealthy: tighter gate, flight recorder fires exactly once, /healthz 503.
  HealthSignals saturated;
  saturated.queue_saturation = 1.2;
  saturated.shed_fraction = 0.5;
  ASSERT_EQ(monitor.Evaluate(saturated), HealthState::kUnhealthy);
  EXPECT_EQ(recorder.dumps(), dumps_before + 1);
  EXPECT_EQ(server.Submit(MakeRequest("tiny-health", 1)).get().status,
            serve::ServeStatus::kShed);
  EXPECT_EQ(server.Submit(MakeRequest("tiny-health", 2)).get().status,
            serve::ServeStatus::kOk);
  EXPECT_EQ(support::HttpGet(port, "/healthz").status, 503);
  EXPECT_EQ(recorder.dumps(), dumps_before + 1) << "fired exactly once";

  // Recovery: hysteresis steps back down, admission reopens, probe passes.
  HealthSignals calm;
  for (int i = 0; i < 6; ++i) monitor.Evaluate(calm);
  EXPECT_EQ(monitor.state(), HealthState::kHealthy);
  EXPECT_EQ(server.Submit(MakeRequest("tiny-health", 0)).get().status,
            serve::ServeStatus::kOk);
  EXPECT_EQ(support::HttpGet(port, "/healthz").status, 200);

  http.Stop();
  recorder.Disarm();
  std::remove(fr_options.path.c_str());
  server.Shutdown();
}

TEST(ServeHealth, SignalSourceReportsQueueAndPoolSaturation) {
  serve::ServerOptions options;
  options.health.auto_evaluate_period_ms = 0;
  options.health.auto_tick_collector = false;
  serve::InferenceServer server({MakeTinyServed("tiny-signals")}, options);

  // The idle server's own signal source reports empty queues and pool.
  server.health().Evaluate();
  const HealthSignals signals = server.health().last_signals();
  EXPECT_GE(signals.queue_saturation, 0.0);
  EXPECT_LT(signals.queue_saturation, 1.0);
  EXPECT_GE(signals.pool_saturation, 0.0);
  EXPECT_EQ(server.health().state(), HealthState::kHealthy);
  server.Shutdown();
}

}  // namespace
}  // namespace tnp
