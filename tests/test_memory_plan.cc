// Static memory planning: planner unit behaviour, arena lifetime guarantees,
// liveness through tuple plumbing, the exhaustive no-overlap invariant on
// every zoo model's plan, bitwise equivalence of planned vs allocating
// execution, and the zero-allocation steady state of sessions and pipelines.
#include <gtest/gtest.h>

#include <cmath>

#include "core/flows.h"
#include "core/pipeline_executor.h"
#include "frontend/common.h"
#include "kernels/pack.h"
#include "relay/build.h"
#include "support/arena.h"
#include "support/memplan.h"
#include "zoo/zoo.h"

namespace tnp {
namespace relay {
namespace {

using frontend::TypedCall;
using frontend::TypedVar;
using frontend::WeightF32;
using frontend::ZeroBiasF32;

// ---------------------------------------------------------------------------
// LinearMemoryPlanner

TEST(MemPlanner, ReusesExpiredRegion) {
  support::LinearMemoryPlanner planner;
  planner.BeginStep(0);
  const int a = planner.Allocate(1000, /*last_use=*/1);
  planner.BeginStep(2);  // a expired (last_use 1 < 2)
  const int b = planner.Allocate(500, /*last_use=*/3);
  EXPECT_EQ(planner.region(b).offset, planner.region(a).offset);
  EXPECT_EQ(planner.arena_bytes(), planner.region(a).bytes);
  EXPECT_GT(planner.total_bytes(), planner.arena_bytes());
}

TEST(MemPlanner, RegionDyingAtCurrentStepIsNotReusable) {
  support::LinearMemoryPlanner planner;
  planner.BeginStep(0);
  const int a = planner.Allocate(256, /*last_use=*/1);
  planner.BeginStep(1);  // a is read AT step 1 — must survive it
  const int b = planner.Allocate(256, /*last_use=*/2);
  EXPECT_NE(planner.region(b).offset, planner.region(a).offset);
}

TEST(MemPlanner, CoalescesAdjacentFreeRanges) {
  support::LinearMemoryPlanner planner;
  planner.BeginStep(0);
  const int a = planner.Allocate(64, /*last_use=*/1);
  const int b = planner.Allocate(64, /*last_use=*/1);
  const int c = planner.Allocate(64, /*last_use=*/5);
  planner.BeginStep(2);  // a and b free and coalesce into one 128-byte range
  const int d = planner.Allocate(128, /*last_use=*/5);
  EXPECT_EQ(planner.region(d).offset, planner.region(a).offset);
  EXPECT_EQ(planner.region(d).offset + planner.region(d).bytes, planner.region(c).offset);
  (void)b;
}

TEST(MemPlanner, ExtendLifetimeBlocksReuse) {
  support::LinearMemoryPlanner planner;
  planner.BeginStep(0);
  const int a = planner.Allocate(128, /*last_use=*/1);
  planner.ExtendLifetime(a, 4);  // an alias keeps the bytes live
  planner.BeginStep(2);
  const int b = planner.Allocate(128, /*last_use=*/3);
  EXPECT_NE(planner.region(b).offset, planner.region(a).offset);
  EXPECT_EQ(planner.region(a).last_use, 4);
}

TEST(MemPlanner, BestFitPrefersSmallestHole) {
  support::LinearMemoryPlanner planner;
  planner.BeginStep(0);
  const int big = planner.Allocate(1024, /*last_use=*/1);
  const int keep1 = planner.Allocate(64, /*last_use=*/9);
  const int small = planner.Allocate(128, /*last_use=*/1);
  const int keep2 = planner.Allocate(64, /*last_use=*/9);
  planner.BeginStep(2);  // two holes: 1024 bytes and 128 bytes
  const int c = planner.Allocate(100, /*last_use=*/5);
  EXPECT_EQ(planner.region(c).offset, planner.region(small).offset);  // smallest fit
  (void)big;
  (void)keep1;
  (void)keep2;
}

// ---------------------------------------------------------------------------
// Arena

TEST(Arena, ViewsPinBytesAfterArenaDestruction) {
  NDArray view;
  {
    support::Arena arena("test");
    arena.Reserve(256);
    view = NDArray::ViewOver(arena.Data(64, 16), 16, Shape({4}), DType::kFloat32,
                             arena.handle());
    view.Data<float>()[0] = 42.5f;
  }  // arena destroyed; the view must keep the block alive
  EXPECT_EQ(view.Data<float>()[0], 42.5f);
  EXPECT_TRUE(view.IsView());
}

TEST(Arena, FreezesAfterFirstView) {
  support::Arena arena("test");
  arena.Reserve(128);
  (void)arena.Data(0, 64);
  EXPECT_THROW(arena.Reserve(1 << 20), InternalError);  // growing would dangle views
  EXPECT_THROW(arena.Data(64, 128), InternalError);     // out of bounds
}

TEST(Arena, ScratchBumpAllocatorAlignsAndResets) {
  support::Arena arena("test");
  void* p1 = arena.Allocate(10);
  void* p2 = arena.Allocate(10);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p1) % 64, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p2) % 64, 0u);
  EXPECT_NE(p1, p2);
  EXPECT_GT(arena.scratch_bytes(), 0u);
  arena.ResetScratch();
  EXPECT_EQ(arena.scratch_bytes(), 0u);
}

// ---------------------------------------------------------------------------
// Plan structure on hand-built programs

/// Root slot of an alias chain.
int RootSlot(const MemoryPlan& plan, int slot) {
  while (plan.slots[static_cast<std::size_t>(slot)].kind == SlotPlan::Kind::kAlias) {
    slot = plan.slots[static_cast<std::size_t>(slot)].alias_of;
  }
  return slot;
}

/// Index of the single kCallOp instruction with `op_name` (-1 if missing or
/// duplicated).
int FindOpIndex(const CompiledModule& compiled, const std::string& op_name) {
  int found = -1;
  for (std::size_t i = 0; i < compiled.instructions.size(); ++i) {
    const Instruction& inst = compiled.instructions[i];
    if (inst.kind != Instruction::Kind::kCallOp || inst.op_name != op_name) continue;
    if (found >= 0) return -1;  // duplicate
    found = static_cast<int>(i);
  }
  return found;
}

BuildOptions NoFusion() {
  BuildOptions options;
  options.enable_fusion = false;  // keep a 1:1 op/instruction mapping
  return options;
}

TEST(MemoryPlan, TupleForwardingExtendsProducerLifetime) {
  // a feeds a later consumer *through* a tuple, so multiply(a, a) must not
  // run in place over a's region even though a's last direct use is there.
  auto x = TypedVar("data", Shape({1, 8}), DType::kFloat32);
  auto a = MakeCall("add", {x, x});
  auto m = MakeCall("multiply", {a, a});
  auto t = MakeTuple({a, m});
  auto g = MakeTupleGetItem(t, 0);
  auto out = MakeCall("subtract", {g, m});
  const Module module = frontend::FinishModule({x}, out);
  const auto compiled = Build(module, NoFusion());

  const MemoryPlan& plan = compiled->memory_plan;
  const int add_index = FindOpIndex(*compiled, "add");
  const int mul_index = FindOpIndex(*compiled, "multiply");
  const int sub_index = FindOpIndex(*compiled, "subtract");
  ASSERT_GE(add_index, 0);
  ASSERT_GE(mul_index, 0);
  ASSERT_GE(sub_index, 0);
  const auto slot_of = [&](int inst_index) {
    return compiled->instructions[static_cast<std::size_t>(inst_index)].output_slot;
  };
  const SlotPlan& a_plan = plan.slots[static_cast<std::size_t>(slot_of(add_index))];
  const SlotPlan& m_plan = plan.slots[static_cast<std::size_t>(slot_of(mul_index))];
  ASSERT_EQ(a_plan.kind, SlotPlan::Kind::kArena);
  ASSERT_EQ(m_plan.kind, SlotPlan::Kind::kArena);  // aliasing a would corrupt g
  // a's region stays live through the tuple projection's consumer.
  EXPECT_GE(a_plan.last_use, sub_index);
  // Both regions are live simultaneously, so their bytes must not overlap.
  const bool disjoint = a_plan.offset + a_plan.bytes <= m_plan.offset ||
                        m_plan.offset + m_plan.bytes <= a_plan.offset;
  EXPECT_TRUE(disjoint);

  // Numerics agree with the legacy allocating executor.
  const NDArray input = NDArray::RandomNormal(Shape({1, 8}), 11, 0.5f);
  GraphExecutor planned(compiled);
  GraphExecutor legacy(compiled, /*use_memory_plan=*/false);
  planned.SetInput("data", input);
  legacy.SetInput("data", input);
  planned.Run();
  legacy.Run();
  EXPECT_TRUE(NDArray::BitEqual(planned.GetOutput(0), legacy.GetOutput(0)));
  EXPECT_TRUE(planned.planned());
  EXPECT_FALSE(legacy.planned());
  EXPECT_GT(planned.arena_bytes(), 0);
  EXPECT_EQ(legacy.arena_bytes(), 0);
}

TEST(MemoryPlan, ElementwiseChainAliasesInPlace) {
  // add -> relu -> batch_flatten -> multiply: the relu runs in place over the
  // add's region (it is the region's final reader), the flatten is a free
  // view over the relu, and BitEqual against the allocating path proves the
  // in-place rewrites never corrupt an operand.
  auto x = TypedVar("data", Shape({1, 8}), DType::kFloat32);
  auto c = TypedCall("add", {x, x});
  auto r = TypedCall("nn.relu", {c});
  auto f = TypedCall("nn.batch_flatten", {r});
  auto out = TypedCall("multiply", {f, r});
  const auto compiled = Build(Module(MakeFunction({x}, out)), NoFusion());

  const MemoryPlan& plan = compiled->memory_plan;
  const int add_index = FindOpIndex(*compiled, "add");
  const int relu_index = FindOpIndex(*compiled, "nn.relu");
  const int flat_index = FindOpIndex(*compiled, "nn.batch_flatten");
  ASSERT_GE(add_index, 0);
  ASSERT_GE(relu_index, 0);
  ASSERT_GE(flat_index, 0);
  const int c_slot = compiled->instructions[static_cast<std::size_t>(add_index)].output_slot;
  const int r_slot = compiled->instructions[static_cast<std::size_t>(relu_index)].output_slot;
  const int f_slot = compiled->instructions[static_cast<std::size_t>(flat_index)].output_slot;
  EXPECT_EQ(plan.slots[static_cast<std::size_t>(r_slot)].kind, SlotPlan::Kind::kAlias);
  EXPECT_EQ(plan.slots[static_cast<std::size_t>(f_slot)].kind, SlotPlan::Kind::kAlias);
  EXPECT_EQ(RootSlot(plan, r_slot), c_slot);
  EXPECT_EQ(RootSlot(plan, f_slot), c_slot);
  EXPECT_GE(plan.num_alias_slots, 2);

  const NDArray input = NDArray::RandomNormal(Shape({1, 8}), 13, 0.7f);
  GraphExecutor planned(compiled);
  GraphExecutor legacy(compiled, /*use_memory_plan=*/false);
  planned.SetInput("data", input);
  legacy.SetInput("data", input);
  planned.Run();
  legacy.Run();
  EXPECT_TRUE(NDArray::BitEqual(planned.GetOutput(0), legacy.GetOutput(0)));
}

// ---------------------------------------------------------------------------
// Zoo-wide invariants

zoo::ZooOptions SmallOptions(const std::string& name) {
  zoo::ZooOptions options;
  options.image_size = 32;
  options.width = 0.25;
  options.depth = 0.3;
  if (name == "emotion_cnn") options.image_size = 48;
  if (name == "yolov3_tiny" || name == "yolov3" || name == "nasnet") options.image_size = 64;
  return options;
}

NDArray ZooInput(const std::string& name, const zoo::ZooOptions& options) {
  const std::int64_t channels = name == "emotion_cnn" ? 1 : 3;
  return NDArray::RandomNormal(
      Shape({1, channels, options.image_size, options.image_size}), 99, 0.4f);
}

void SetFirstInput(GraphExecutor& executor, const NDArray& input) {
  for (const char* input_name : {"input", "x", "data", "t0"}) {
    try {
      executor.SetInput(input_name, input);
      return;
    } catch (const Error&) {
      continue;
    }
  }
  FAIL() << "no known input name bound";
}

TEST(MemoryPlan, ZooPlansHaveNoOverlappingLiveRegions) {
  for (const auto& info : zoo::AllModels()) {
    const zoo::ZooOptions options = SmallOptions(info.name);
    const auto compiled = Build(zoo::Build(info.name, options));
    const MemoryPlan& plan = compiled->memory_plan;
    ASSERT_EQ(static_cast<int>(plan.slots.size()), compiled->num_slots) << info.name;
    EXPECT_GT(plan.num_arena_slots, 0) << info.name;
    EXPECT_GT(plan.arena_bytes, 0) << info.name;
    EXPECT_LE(plan.arena_bytes, plan.planned_bytes) << info.name;

    // Alias chains resolve to an arena root sharing the same offset.
    std::vector<int> arena_roots;
    for (int s = 0; s < compiled->num_slots; ++s) {
      const SlotPlan& slot = plan.slots[static_cast<std::size_t>(s)];
      if (slot.kind == SlotPlan::Kind::kArena) arena_roots.push_back(s);
      if (slot.kind != SlotPlan::Kind::kAlias) continue;
      const int root = RootSlot(plan, s);
      ASSERT_EQ(plan.slots[static_cast<std::size_t>(root)].kind, SlotPlan::Kind::kArena)
          << info.name << " slot " << s;
      EXPECT_EQ(slot.offset, plan.slots[static_cast<std::size_t>(root)].offset)
          << info.name << " slot " << s;
      EXPECT_LE(slot.bytes, plan.slots[static_cast<std::size_t>(root)].bytes)
          << info.name << " slot " << s;
    }

    // Exhaustive pairwise check: byte-overlapping regions must have disjoint
    // [first_def, last_use] windows.
    for (std::size_t i = 0; i < arena_roots.size(); ++i) {
      const SlotPlan& a = plan.slots[static_cast<std::size_t>(arena_roots[i])];
      ASSERT_LE(a.offset + a.bytes, plan.arena_bytes) << info.name;
      for (std::size_t j = i + 1; j < arena_roots.size(); ++j) {
        const SlotPlan& b = plan.slots[static_cast<std::size_t>(arena_roots[j])];
        const bool bytes_overlap =
            a.offset < b.offset + b.bytes && b.offset < a.offset + a.bytes;
        if (!bytes_overlap) continue;
        const bool lifetimes_disjoint = a.last_use < b.first_def || b.last_use < a.first_def;
        EXPECT_TRUE(lifetimes_disjoint)
            << info.name << ": slots " << arena_roots[i] << " and " << arena_roots[j]
            << " share bytes while both live";
      }
    }

    // Every instruction's arena-backed inputs are live when it executes, and
    // the program output is never recycled.
    for (std::size_t i = 0; i < compiled->instructions.size(); ++i) {
      for (const int s : compiled->instructions[i].input_slots) {
        const SlotPlan& slot = plan.slots[static_cast<std::size_t>(s)];
        if (slot.kind != SlotPlan::Kind::kArena && slot.kind != SlotPlan::Kind::kAlias) continue;
        const SlotPlan& root = plan.slots[static_cast<std::size_t>(RootSlot(plan, s))];
        EXPECT_LE(root.first_def, static_cast<int>(i)) << info.name;
        EXPECT_GE(root.last_use, static_cast<int>(i)) << info.name;
      }
    }
    const SlotPlan& out = plan.slots[static_cast<std::size_t>(compiled->output_slot)];
    if (out.kind == SlotPlan::Kind::kArena || out.kind == SlotPlan::Kind::kAlias) {
      EXPECT_EQ(plan.slots[static_cast<std::size_t>(RootSlot(plan, compiled->output_slot))]
                    .last_use,
                MemoryPlan::kLiveForever)
          << info.name;
    }
  }
}

TEST(MemoryPlan, PlannedExecutionBitwiseMatchesLegacyAcrossZoo) {
  int aliased_models = 0;
  for (const auto& info : zoo::AllModels()) {
    const zoo::ZooOptions options = SmallOptions(info.name);
    const auto compiled = Build(zoo::Build(info.name, options));
    if (compiled->memory_plan.num_alias_slots > 0) ++aliased_models;

    const NDArray input = ZooInput(info.name, options);
    GraphExecutor planned(compiled);
    GraphExecutor legacy(compiled, /*use_memory_plan=*/false);
    SetFirstInput(planned, input);
    SetFirstInput(legacy, input);
    planned.Run();
    legacy.Run();
    ASSERT_EQ(planned.NumOutputs(), legacy.NumOutputs()) << info.name;
    for (int o = 0; o < planned.NumOutputs(); ++o) {
      EXPECT_TRUE(NDArray::BitEqual(planned.GetOutput(o), legacy.GetOutput(o)))
          << info.name << " output " << o;
    }
    // Second planned run over the same arena stays deterministic.
    SetFirstInput(planned, input);
    planned.Run();
    for (int o = 0; o < planned.NumOutputs(); ++o) {
      EXPECT_TRUE(NDArray::BitEqual(planned.GetOutput(o), legacy.GetOutput(o)))
          << info.name << " output " << o << " (second run)";
    }
  }
  EXPECT_GT(aliased_models, 0) << "in-place aliasing never engaged on the zoo";
}

// ---------------------------------------------------------------------------
// Zero-allocation steady state

relay::Module FullySupportedModel() {
  auto x = TypedVar("data", Shape({1, 3, 16, 16}), DType::kFloat32);
  auto conv = TypedCall("nn.conv2d", {x, WeightF32(Shape({8, 3, 3, 3}), 1), ZeroBiasF32(8)},
                        Attrs().SetInts("padding", {1, 1}));
  auto relu = TypedCall("nn.relu", {conv});
  auto pool = TypedCall("nn.global_avg_pool2d", {relu});
  auto flat = TypedCall("nn.batch_flatten", {pool});
  auto dense = TypedCall("nn.dense", {flat, WeightF32(Shape({5, 8}), 2), ZeroBiasF32(5)});
  auto softmax = TypedCall("nn.softmax", {dense});
  return Module(MakeFunction({x}, softmax));
}

TEST(MemoryPlan, SteadyStateRunsAllocateNoTensorsOnEveryFlow) {
  const Module module = FullySupportedModel();
  const NDArray input = NDArray::RandomNormal(Shape({1, 3, 16, 16}), 5, 0.5f);
  for (const core::FlowKind flow : core::kAllFlows) {
    std::string error;
    const auto session = core::TryCompileFlow(module, flow, &error);
    ASSERT_NE(session, nullptr) << core::FlowName(flow) << ": " << error;
    session->SetInput("data", input);
    session->Run();  // warmup: all buffers bound, kernel scratch arena grown
    const std::int64_t before = NDArray::TotalAllocations();
    const std::int64_t chunks_before = support::Arena::TotalScratchChunkAllocs();
    const std::int64_t packs_before = kernels::TotalWeightPacks();
    for (int frame = 0; frame < 3; ++frame) {
      session->SetInput("data", input);
      session->Run();
    }
    EXPECT_EQ(NDArray::TotalAllocations() - before, 0)
        << core::FlowName(flow) << " allocated tensors in steady state";
    EXPECT_EQ(support::Arena::TotalScratchChunkAllocs() - chunks_before, 0)
        << core::FlowName(flow) << " grew kernel scratch in steady state";
    EXPECT_EQ(kernels::TotalWeightPacks() - packs_before, 0)
        << core::FlowName(flow) << " repacked weights in steady state";
    (void)session->GetOutput(0);
  }
}

TEST(MemoryPlan, PipelineSteadyStateAllocatesNoTensors) {
  // Three pipeline stages, each owning one pre-planned session; packets carry
  // pre-created inputs and a scalar result, so warm frames touch the tensor
  // heap not at all.
  const Module module = FullySupportedModel();
  struct Packet {
    int frame = 0;
    NDArray input;
    float checksum = 0.0f;
  };

  std::vector<core::InferenceSessionPtr> sessions;
  for (const core::FlowKind flow :
       {core::FlowKind::kTvmOnly, core::FlowKind::kByocCpuApu, core::FlowKind::kNpCpuApu}) {
    sessions.push_back(core::CompileFlow(module, flow));
  }

  using P = core::Pipeline<Packet>;
  std::vector<P::Stage> stages;
  for (std::size_t s = 0; s < sessions.size(); ++s) {
    const auto session = sessions[s];
    stages.push_back(P::Stage{
        "stage" + std::to_string(s), session->UsedResources(),
        [session](Packet packet) -> std::optional<Packet> {
          session->SetInput("data", packet.input);
          session->Run();
          packet.checksum += session->GetOutput(0).Data<float>()[0];
          return packet;
        }});
  }

  const auto make_packets = [](int count) {
    std::vector<Packet> packets;
    for (int f = 0; f < count; ++f) {
      packets.push_back(Packet{
          f,
          NDArray::RandomNormal(Shape({1, 3, 16, 16}), 100 + static_cast<std::uint64_t>(f),
                                0.5f)});
    }
    return packets;
  };
  std::vector<Packet> warmup_packets = make_packets(2);
  std::vector<Packet> steady_packets = make_packets(6);  // created BEFORE measuring

  P pipeline(std::move(stages));
  const auto warm = pipeline.Run(std::move(warmup_packets));
  EXPECT_EQ(warm.size(), 2u);

  const std::int64_t before = NDArray::TotalAllocations();
  const auto results = pipeline.Run(std::move(steady_packets));
  EXPECT_EQ(NDArray::TotalAllocations() - before, 0)
      << "warm pipeline frames must not allocate tensors";
  ASSERT_EQ(results.size(), 6u);
  for (const auto& packet : results) {
    EXPECT_TRUE(std::isfinite(packet.checksum));
  }
}

TEST(MemoryPlan, OutputViewSurvivesSessionDestruction) {
  const Module module = FullySupportedModel();
  NDArray held;
  {
    auto session = core::CompileFlow(module, core::FlowKind::kTvmOnly);
    session->SetInput("data", NDArray::RandomNormal(Shape({1, 3, 16, 16}), 21, 0.5f));
    session->Run();
    held = session->GetOutput(0);
  }  // session (and its arena object) destroyed
  float sum = 0.0f;
  for (std::int64_t i = 0; i < held.NumElements(); ++i) sum += held.Data<float>()[i];
  EXPECT_TRUE(std::isfinite(sum));  // bytes stayed pinned by the view
}

}  // namespace
}  // namespace relay
}  // namespace tnp
