// Convolution / dense kernels, checked against independent naive reference
// implementations across a parameterized sweep of shapes, strides, padding,
// dilation and groups.
#include <gtest/gtest.h>

#include <cmath>

#include "kernels/conv.h"
#include "kernels/dense.h"
#include "kernels/quantize.h"
#include "support/rng.h"

namespace tnp {
namespace kernels {
namespace {

/// Naive direct convolution, written independently of the im2col kernel.
void NaiveConv2D(const NDArray& input, const NDArray& weight, const NDArray& bias,
                 NDArray& output, const Conv2DParams& p) {
  const std::int64_t batch = input.shape()[0];
  const std::int64_t ci = input.shape()[1];
  const std::int64_t in_h = input.shape()[2];
  const std::int64_t in_w = input.shape()[3];
  const std::int64_t co = weight.shape()[0];
  const std::int64_t ci_g = weight.shape()[1];
  const std::int64_t kh = weight.shape()[2];
  const std::int64_t kw = weight.shape()[3];
  const std::int64_t out_h = output.shape()[2];
  const std::int64_t out_w = output.shape()[3];
  const std::int64_t co_g = co / p.groups;

  const float* in = input.Data<float>();
  const float* w = weight.Data<float>();
  const float* b = bias.defined() ? bias.Data<float>() : nullptr;
  float* out = output.Data<float>();

  for (std::int64_t n = 0; n < batch; ++n) {
    for (std::int64_t oc = 0; oc < co; ++oc) {
      const std::int64_t g = oc / co_g;
      for (std::int64_t oh = 0; oh < out_h; ++oh) {
        for (std::int64_t ow = 0; ow < out_w; ++ow) {
          double acc = b != nullptr ? b[oc] : 0.0;
          for (std::int64_t ic = 0; ic < ci_g; ++ic) {
            const std::int64_t in_c = g * ci_g + ic;
            for (std::int64_t y = 0; y < kh; ++y) {
              const std::int64_t ih = oh * p.stride_h - p.pad_h + y * p.dilation_h;
              if (ih < 0 || ih >= in_h) continue;
              for (std::int64_t x = 0; x < kw; ++x) {
                const std::int64_t iw = ow * p.stride_w - p.pad_w + x * p.dilation_w;
                if (iw < 0 || iw >= in_w) continue;
                acc += in[((n * ci + in_c) * in_h + ih) * in_w + iw] *
                       w[((oc * ci_g + ic) * kh + y) * kw + x];
              }
            }
          }
          out[((n * co + oc) * out_h + oh) * out_w + ow] = static_cast<float>(acc);
        }
      }
    }
  }
}

struct ConvCase {
  std::int64_t batch, ci, hw, co, kernel, stride, pad, dilation, groups;
};

class ConvSweep : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvSweep, MatchesNaiveReference) {
  const ConvCase& c = GetParam();
  NDArray input = NDArray::RandomNormal(Shape({c.batch, c.ci, c.hw, c.hw}), 10, 1.0f);
  NDArray weight =
      NDArray::RandomNormal(Shape({c.co, c.ci / c.groups, c.kernel, c.kernel}), 11, 0.5f);
  NDArray bias = NDArray::RandomNormal(Shape({c.co}), 12, 0.1f);

  Conv2DParams p;
  p.stride_h = p.stride_w = c.stride;
  p.pad_h = p.pad_w = c.pad;
  p.dilation_h = p.dilation_w = c.dilation;
  p.groups = c.groups;

  const Shape out_shape = Conv2DOutShape(input.shape(), weight.shape(), p);
  NDArray fast = NDArray::Empty(out_shape, DType::kFloat32);
  NDArray naive = NDArray::Empty(out_shape, DType::kFloat32);
  Conv2DF32(input, weight, bias, fast, p);
  NaiveConv2D(input, weight, bias, naive, p);
  EXPECT_LT(NDArray::MaxAbsDiff(fast, naive), 1e-3) << "case hw=" << c.hw << " k=" << c.kernel;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConvSweep,
    ::testing::Values(
        ConvCase{1, 3, 8, 4, 3, 1, 0, 1, 1},    // basic valid conv
        ConvCase{1, 3, 8, 4, 3, 1, 1, 1, 1},    // padded
        ConvCase{1, 3, 9, 4, 3, 2, 1, 1, 1},    // strided odd extent
        ConvCase{2, 4, 8, 6, 3, 2, 1, 1, 1},    // batch 2
        ConvCase{1, 4, 8, 4, 1, 1, 0, 1, 1},    // 1x1
        ConvCase{1, 6, 8, 6, 3, 1, 1, 1, 6},    // depthwise
        ConvCase{1, 8, 8, 16, 3, 1, 1, 1, 4},   // grouped
        ConvCase{1, 3, 12, 4, 5, 1, 2, 1, 1},   // 5x5
        ConvCase{1, 3, 12, 4, 3, 1, 2, 2, 1},   // dilated
        ConvCase{1, 3, 16, 8, 7, 2, 3, 1, 1},   // 7x7/2 stem conv
        ConvCase{1, 2, 5, 2, 5, 1, 2, 1, 1},    // kernel ~ input size
        ConvCase{3, 5, 7, 5, 3, 3, 1, 1, 1}));  // stride 3, batch 3

TEST(Conv2D, OutputShapeMismatchThrows) {
  NDArray input = NDArray::Zeros(Shape({1, 3, 8, 8}), DType::kFloat32);
  NDArray weight = NDArray::Zeros(Shape({4, 3, 3, 3}), DType::kFloat32);
  NDArray bias = NDArray::Zeros(Shape({4}), DType::kFloat32);
  NDArray bad = NDArray::Zeros(Shape({1, 4, 8, 8}), DType::kFloat32);
  EXPECT_THROW(Conv2DF32(input, weight, bias, bad, Conv2DParams{}), InternalError);
}

TEST(Conv2D, WindowLargerThanInputThrows) {
  Conv2DParams p;
  EXPECT_THROW(Conv2DOutShape(Shape({1, 3, 2, 2}), Shape({4, 3, 5, 5}), p), InternalError);
}

TEST(Conv2D, NoBiasMatchesZeroBias) {
  NDArray input = NDArray::RandomNormal(Shape({1, 3, 6, 6}), 1);
  NDArray weight = NDArray::RandomNormal(Shape({2, 3, 3, 3}), 2);
  Conv2DParams p;
  const Shape out_shape = Conv2DOutShape(input.shape(), weight.shape(), p);
  NDArray with_zero = NDArray::Empty(out_shape, DType::kFloat32);
  NDArray without = NDArray::Empty(out_shape, DType::kFloat32);
  Conv2DF32(input, weight, NDArray::Zeros(Shape({2}), DType::kFloat32), with_zero, p);
  Conv2DF32(input, weight, NDArray(), without, p);
  EXPECT_TRUE(NDArray::BitEqual(with_zero, without));
}

// ---------------------------------------------------------------- quantized

struct QConvCase {
  std::int64_t ci, hw, co, kernel, stride, pad, groups;
};

class QConvSweep : public ::testing::TestWithParam<QConvCase> {};

TEST_P(QConvSweep, TracksFloatReference) {
  // Property: dequantize(QConv(quantize(x))) ~= float conv within a few
  // quantization steps.
  const QConvCase& c = GetParam();
  const QuantParams in_q(0.05f, 3);
  const QuantParams w_q(0.02f, 0);
  const QuantParams out_q(0.2f, -5);

  NDArray q_input = NDArray::RandomInt8(Shape({1, c.ci, c.hw, c.hw}), 20, -100, 100);
  NDArray q_weight =
      NDArray::RandomInt8(Shape({c.co, c.ci / c.groups, c.kernel, c.kernel}), 21, -100, 100);
  NDArray bias = NDArray::Zeros(Shape({c.co}), DType::kInt32);

  Conv2DParams p;
  p.stride_h = p.stride_w = c.stride;
  p.pad_h = p.pad_w = c.pad;
  p.groups = c.groups;
  const Shape out_shape = Conv2DOutShape(q_input.shape(), q_weight.shape(), p);

  NDArray q_out = NDArray::Empty(out_shape, DType::kInt8);
  QConv2DS8(q_input, q_weight, bias, q_out, p, in_q, w_q, out_q);

  // Float reference over dequantized operands.
  NDArray f_input = NDArray::Empty(q_input.shape(), DType::kFloat32);
  NDArray f_weight = NDArray::Empty(q_weight.shape(), DType::kFloat32);
  DequantizeS8ToF32(q_input, f_input, in_q);
  DequantizeS8ToF32(q_weight, f_weight, w_q);
  NDArray f_out = NDArray::Empty(out_shape, DType::kFloat32);
  NaiveConv2D(f_input, f_weight, NDArray(), f_out, p);

  const float* fo = f_out.Data<float>();
  const std::int8_t* qo = q_out.Data<std::int8_t>();
  for (std::int64_t i = 0; i < f_out.NumElements(); ++i) {
    const float expected = std::clamp(fo[i], out_q.Dequantize(-128), out_q.Dequantize(127));
    EXPECT_NEAR(out_q.Dequantize(qo[i]), expected, out_q.scale * 1.01f) << "at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, QConvSweep,
                         ::testing::Values(QConvCase{3, 8, 4, 3, 1, 1, 1},
                                           QConvCase{4, 8, 4, 3, 2, 1, 1},
                                           QConvCase{6, 8, 6, 3, 1, 1, 6},
                                           QConvCase{4, 6, 8, 1, 1, 0, 1},
                                           QConvCase{8, 10, 8, 5, 2, 2, 2}));

TEST(QConv2D, ZeroPointPaddingIsNeutral) {
  // With a non-zero input zero-point, padded positions must contribute
  // exactly zero after the zero-point shift.
  const QuantParams in_q(0.1f, 7);
  const QuantParams w_q(0.1f, 0);
  const QuantParams out_q(0.1f, 0);
  // Input where every value equals the zero-point: real value 0 everywhere.
  NDArray q_input = NDArray::Full(Shape({1, 1, 4, 4}), DType::kInt8, 7);
  NDArray q_weight = NDArray::RandomInt8(Shape({1, 1, 3, 3}), 5, -50, 50);
  Conv2DParams p;
  p.pad_h = p.pad_w = 1;
  NDArray out = NDArray::Empty(Shape({1, 1, 4, 4}), DType::kInt8);
  QConv2DS8(q_input, q_weight, NDArray(), out, p, in_q, w_q, out_q);
  for (std::int8_t v : out.Span<std::int8_t>()) EXPECT_EQ(v, 0);  // zp_out == 0
}

// -------------------------------------------------------------------- dense

TEST(Dense, MatchesManual) {
  NDArray input = NDArray::FromVector<float>(Shape({2, 3}), {1, 2, 3, 4, 5, 6});
  NDArray weight = NDArray::FromVector<float>(Shape({2, 3}), {1, 0, 0, 0, 1, 0});
  NDArray bias = NDArray::FromVector<float>(Shape({2}), {10, 20});
  NDArray out = NDArray::Empty(Shape({2, 2}), DType::kFloat32);
  DenseF32(input, weight, bias, out);
  const float* o = out.Data<float>();
  EXPECT_FLOAT_EQ(o[0], 11.0f);  // 1 + 10
  EXPECT_FLOAT_EQ(o[1], 22.0f);  // 2 + 20
  EXPECT_FLOAT_EQ(o[2], 14.0f);  // 4 + 10
  EXPECT_FLOAT_EQ(o[3], 25.0f);  // 5 + 20
}

TEST(Dense, ShapeMismatchThrows) {
  NDArray input = NDArray::Zeros(Shape({1, 3}), DType::kFloat32);
  NDArray weight = NDArray::Zeros(Shape({2, 4}), DType::kFloat32);
  NDArray out = NDArray::Zeros(Shape({1, 2}), DType::kFloat32);
  EXPECT_THROW(DenseF32(input, weight, NDArray(), out), InternalError);
}

TEST(QDense, TracksFloatReference) {
  const QuantParams in_q(0.05f, 0);
  const QuantParams w_q(0.02f, 2);
  const QuantParams out_q(0.5f, 0);
  NDArray q_input = NDArray::RandomInt8(Shape({2, 16}), 30, -100, 100);
  NDArray q_weight = NDArray::RandomInt8(Shape({4, 16}), 31, -100, 100);
  NDArray bias = NDArray::Zeros(Shape({4}), DType::kInt32);
  NDArray q_out = NDArray::Empty(Shape({2, 4}), DType::kInt8);
  QDenseS8(q_input, q_weight, bias, q_out, in_q, w_q, out_q);

  NDArray f_input = NDArray::Empty(q_input.shape(), DType::kFloat32);
  NDArray f_weight = NDArray::Empty(q_weight.shape(), DType::kFloat32);
  DequantizeS8ToF32(q_input, f_input, in_q);
  DequantizeS8ToF32(q_weight, f_weight, w_q);
  NDArray f_out = NDArray::Empty(Shape({2, 4}), DType::kFloat32);
  DenseF32(f_input, f_weight, NDArray(), f_out);

  for (std::int64_t i = 0; i < 8; ++i) {
    EXPECT_NEAR(out_q.Dequantize(q_out.Data<std::int8_t>()[i]), f_out.Data<float>()[i],
                out_q.scale);
  }
}

}  // namespace
}  // namespace kernels
}  // namespace tnp
