// The artifact store (DESIGN.md §5h): bitwise round trips across flows,
// zero-repack / zero-copy loading, hostile-input fail-closed behavior, and
// concurrent load-or-build convergence.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "artifact/file.h"
#include "artifact/format.h"
#include "artifact/serialize.h"
#include "artifact/store.h"
#include "core/flows.h"
#include "kernels/pack.h"
#include "relay/build.h"
#include "relay/pass.h"
#include "support/error.h"
#include "support/metrics.h"
#include "zoo/zoo.h"

namespace tnp {
namespace artifact {
namespace {

namespace fs = std::filesystem;

/// Per-test scratch directory under the ctest working directory, removed on
/// scope exit (artifact files in it stay alive while mapped — unlink is safe
/// against live mmaps on POSIX).
struct TempDir {
  std::string path;
  explicit TempDir(const std::string& tag)
      : path("artifact_test_" + tag + "_" + std::to_string(::getpid())) {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

relay::Module SmallZoo(const std::string& name) {
  zoo::ZooOptions options;
  options.image_size = 32;
  options.width = 0.25;
  options.depth = 0.3;
  return zoo::Build(name, options);
}

NDArray SmallInput(std::uint64_t seed) {
  return NDArray::RandomNormal(Shape({1, 3, 32, 32}), seed, 0.5f);
}

/// Zoo frontends disagree on the graph input's name; bind whichever exists
/// and report which one did.
std::string SetAnyInput(core::InferenceSession& session, const NDArray& input) {
  for (const char* name : {"input", "x", "t0", "data"}) {
    try {
      session.SetInput(name, input);
      return name;
    } catch (const Error&) {
    }
  }
  ADD_FAILURE() << "no known input name accepted";
  return "";
}

std::vector<NDArray> RunOnce(core::InferenceSession& session, const NDArray& input) {
  SetAnyInput(session, input);
  session.Run();
  std::vector<NDArray> outputs;
  for (int i = 0; i < session.NumOutputs(); ++i) outputs.push_back(session.GetOutput(i));
  return outputs;
}

core::FlowCompileSettings WithStore(const std::string& dir) {
  core::FlowCompileSettings settings;
  settings.artifact_cache = std::make_shared<ArtifactStore>(dir);
  return settings;
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void WriteAll(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.good()) << path;
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

template <typename Fn>
void ExpectError(ErrorKind kind, Fn&& fn) {
  try {
    fn();
    ADD_FAILURE() << "expected " << ErrorKindName(kind) << ", nothing thrown";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), kind) << e.what();
  }
}

std::int64_t CounterValue(const char* name) {
  const auto* counter = support::metrics::Registry::Global().FindCounter(name);
  return counter != nullptr ? counter->value() : 0;
}

/// A compiled TVM-only module for the direct Save/Map tests.
relay::CompiledModulePtr CompiledMobilenet() {
  const relay::Module typed = relay::InferType().Run(SmallZoo("mobilenet_v1"));
  return relay::Build(typed);
}

// ---------------------------------------------------------------------------
// Round trips: loaded artifacts are bitwise-identical to fresh compiles.
// ---------------------------------------------------------------------------

TEST(Artifact, StoreRoundTripBitwiseAcrossModelsAndFlows) {
  TempDir dir("roundtrip");
  const NDArray input = SmallInput(11);
  for (const char* name : {"mobilenet_v1", "mobilenet_v1_quant", "deepixbis"}) {
    const relay::Module module = SmallZoo(name);
    for (const core::FlowKind flow : core::kAllFlows) {
      std::string error;
      const auto fresh = core::TryCompileFlow(module, flow, &error);
      if (fresh == nullptr) continue;  // flow legitimately unsupported for the model

      const core::FlowCompileSettings cached = WithStore(dir.path);
      const auto built = core::CompileFlow(module, flow, cached);   // miss: build + publish
      const auto loaded = core::CompileFlow(module, flow, cached);  // hit: mmap from disk

      const auto want = RunOnce(*fresh, input);
      const auto via_store = RunOnce(*built, input);
      const auto mapped = RunOnce(*loaded, input);
      ASSERT_EQ(want.size(), mapped.size()) << name << " " << core::FlowName(flow);
      for (std::size_t i = 0; i < want.size(); ++i) {
        EXPECT_TRUE(NDArray::BitEqual(want[i], via_store[i]))
            << name << " " << core::FlowName(flow) << " output " << i;
        EXPECT_TRUE(NDArray::BitEqual(want[i], mapped[i]))
            << name << " " << core::FlowName(flow) << " output " << i;
      }
      EXPECT_EQ(loaded->NumPartitions(), fresh->NumPartitions());
      EXPECT_EQ(loaded->NumExternalOps(), fresh->NumExternalOps());
      EXPECT_EQ(loaded->UsedResources(), fresh->UsedResources());
    }
  }
}

TEST(Artifact, StoreCountsHitsAndMisses) {
  TempDir dir("counters");
  const relay::Module module = SmallZoo("mobilenet_v1");
  const core::FlowCompileSettings cached = WithStore(dir.path);

  const std::int64_t hits0 = CounterValue("artifact/cache_hits");
  const std::int64_t misses0 = CounterValue("artifact/cache_misses");
  core::CompileFlow(module, core::FlowKind::kTvmOnly, cached);
  EXPECT_EQ(CounterValue("artifact/cache_misses"), misses0 + 1);
  EXPECT_EQ(CounterValue("artifact/cache_hits"), hits0);
  core::CompileFlow(module, core::FlowKind::kTvmOnly, cached);
  EXPECT_EQ(CounterValue("artifact/cache_misses"), misses0 + 1);
  EXPECT_EQ(CounterValue("artifact/cache_hits"), hits0 + 1);
  EXPECT_GT(CounterValue("artifact/save_bytes"), 0);

  // A different flow is a different key: no false hit.
  core::CompileFlow(module, core::FlowKind::kByocCpuApu, cached);
  EXPECT_EQ(CounterValue("artifact/cache_misses"), misses0 + 2);
}

TEST(Artifact, SaveIsDeterministic) {
  TempDir dir("determinism");
  fs::create_directory(dir.path);
  const auto compiled = CompiledMobilenet();
  const std::string p1 = dir.path + "/a.tnpa";
  const std::string p2 = dir.path + "/b.tnpa";
  EXPECT_EQ(SaveCompiledModule(*compiled, p1), SaveCompiledModule(*compiled, p2));
  EXPECT_EQ(ReadAll(p1), ReadAll(p2));
}

// ---------------------------------------------------------------------------
// Zero-copy guarantees: no repacks, no tensor allocations, views only.
// ---------------------------------------------------------------------------

TEST(Artifact, MapDoesNotRepackOrAllocateTensorPayloads) {
  TempDir dir("zerocopy");
  fs::create_directory(dir.path);
  const std::string path = dir.path + "/m.tnpa";
  SaveCompiledModule(*CompiledMobilenet(), path);

  const std::int64_t packs_before = kernels::TotalWeightPacks();
  const std::int64_t allocs_before = NDArray::TotalAllocations();
  const relay::CompiledModulePtr loaded = MapCompiledModule(path);
  EXPECT_EQ(kernels::TotalWeightPacks(), packs_before) << "load must not repack weights";
  EXPECT_EQ(NDArray::TotalAllocations(), allocs_before)
      << "tensor payloads must be views into the mapping, not heap copies";

  int constants = 0, packed = 0;
  for (const auto& inst : loaded->instructions) {
    if (inst.kind == relay::Instruction::Kind::kConstant) {
      ++constants;
      EXPECT_TRUE(inst.constant.IsView());
    }
    if (inst.packed_weights != nullptr) {
      ++packed;
      EXPECT_TRUE(inst.packed_weights->data.IsView());
      if (inst.packed_weights->sums.defined()) {
        EXPECT_TRUE(inst.packed_weights->sums.IsView());
      }
    }
  }
  EXPECT_GT(constants, 0);
  EXPECT_GT(packed, 0) << "prepacked panels must survive the round trip";
  EXPECT_GT(MappedFile::TotalMappedBytes(), 0);
}

TEST(Artifact, SteadyStateZeroAllocationsAfterLoad) {
  TempDir dir("steady");
  const relay::Module module = SmallZoo("mobilenet_v1");
  const core::FlowCompileSettings cached = WithStore(dir.path);
  core::CompileFlow(module, core::FlowKind::kTvmOnly, cached);  // populate
  const auto loaded = core::CompileFlow(module, core::FlowKind::kTvmOnly, cached);

  const NDArray input = SmallInput(3);
  const std::string in_name = SetAnyInput(*loaded, input);
  loaded->Run();  // warm-up: arena views and external sessions exist now
  (void)loaded->GetOutput(0);

  const std::int64_t packs = kernels::TotalWeightPacks();
  const std::int64_t allocs = NDArray::TotalAllocations();
  for (int i = 0; i < 3; ++i) {
    loaded->SetInput(in_name, input);
    loaded->Run();
    (void)loaded->GetOutput(0);
  }
  EXPECT_EQ(kernels::TotalWeightPacks(), packs) << "steady-state repack after load";
  EXPECT_EQ(NDArray::TotalAllocations(), allocs) << "steady-state tensor allocation";
}

TEST(Artifact, LoadedPlannedVsLegacyDifferential) {
  TempDir dir("planned");
  fs::create_directory(dir.path);
  const std::string path = dir.path + "/m.tnpa";
  SaveCompiledModule(*CompiledMobilenet(), path);
  const relay::CompiledModulePtr loaded = MapCompiledModule(path);

  relay::GraphExecutor planned(loaded, /*use_memory_plan=*/true);
  relay::GraphExecutor legacy(loaded, /*use_memory_plan=*/false);
  ASSERT_TRUE(planned.planned());
  ASSERT_FALSE(legacy.planned());
  const NDArray input = SmallInput(5);
  for (const auto& [name, slot] : loaded->input_slots) {
    (void)slot;
    planned.SetInput(name, input);
    legacy.SetInput(name, input);
  }
  planned.Run();
  legacy.Run();
  for (int i = 0; i < planned.NumOutputs(); ++i) {
    EXPECT_TRUE(NDArray::BitEqual(planned.GetOutput(i), legacy.GetOutput(i))) << i;
  }
}

// ---------------------------------------------------------------------------
// Hostile inputs: every malformed byte fails closed with a typed error.
// ---------------------------------------------------------------------------

class ArtifactHostile : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::make_unique<TempDir>("hostile");
    fs::create_directory(dir_->path);
    path_ = dir_->path + "/m.tnpa";
    SaveCompiledModule(*CompiledMobilenet(), path_);
    bytes_ = ReadAll(path_);
    ASSERT_GT(bytes_.size(), sizeof(FileHeader) + 2 * sizeof(SectionEntry));
  }

  /// Write `mutated` next to the original and expect a typed load failure.
  void ExpectRejected(const std::string& mutated, ErrorKind kind = ErrorKind::kParseError) {
    const std::string path = dir_->path + "/mutated.tnpa";
    WriteAll(path, mutated);
    ExpectError(kind, [&] { MapCompiledModule(path); });
  }

  std::unique_ptr<TempDir> dir_;
  std::string path_;
  std::string bytes_;
};

TEST_F(ArtifactHostile, TruncatedFile) {
  ExpectRejected(bytes_.substr(0, bytes_.size() / 2));
  ExpectRejected(bytes_.substr(0, sizeof(FileHeader) - 1));  // below even the header
  ExpectRejected(bytes_.substr(0, bytes_.size() - 1));       // off by one
}

TEST_F(ArtifactHostile, FlippedPayloadByte) {
  std::string mutated = bytes_;
  mutated[mutated.size() - 1] ^= 0x01;  // last BLOB byte -> checksum mismatch
  ExpectRejected(mutated);
  mutated = bytes_;
  mutated[mutated.size() / 2] ^= 0x80;  // mid-file
  ExpectRejected(mutated);
}

TEST_F(ArtifactHostile, WrongFormatVersion) {
  std::string mutated = bytes_;
  mutated[offsetof(FileHeader, version)] += 1;
  ExpectRejected(mutated);
}

TEST_F(ArtifactHostile, WrongEndiannessStamp) {
  std::string mutated = bytes_;
  // A big-endian writer would emit the stamp bytes in the opposite order.
  const std::size_t at = offsetof(FileHeader, endian);
  std::swap(mutated[at], mutated[at + 3]);
  std::swap(mutated[at + 1], mutated[at + 2]);
  ExpectRejected(mutated);
}

TEST_F(ArtifactHostile, BadMagic) {
  std::string mutated = bytes_;
  mutated[0] ^= 0xFF;
  ExpectRejected(mutated);
}

TEST_F(ArtifactHostile, SectionOffsetOutOfRange) {
  std::string mutated = bytes_;
  const std::size_t offset_field = sizeof(FileHeader) + offsetof(SectionEntry, offset);
  for (int i = 0; i < 8; ++i) mutated[offset_field + i] = static_cast<char>(0xFF);
  ExpectRejected(mutated);
}

TEST_F(ArtifactHostile, WrongArtifactKind) {
  // A valid CompiledModule artifact offered as a NeuronPackage must be
  // rejected at the header, not misparsed.
  ExpectError(ErrorKind::kParseError, [&] { MapNeuronPackage(path_); });
}

TEST_F(ArtifactHostile, MissingFileIsIoError) {
  ExpectError(ErrorKind::kRuntimeError,
              [&] { MapCompiledModule(dir_->path + "/absent.tnpa"); });
}

TEST(Artifact, StoreMissesCleanlyButFailsClosedOnCorruption) {
  TempDir dir("failclosed");
  ArtifactStore store(dir.path);
  EXPECT_EQ(store.TryLoadModule("no-such-key"), nullptr);  // clean miss

  const auto compiled = CompiledMobilenet();
  store.SaveModule("k", *compiled);
  store.SaveModule("k", *compiled);  // idempotent republish of identical content
  EXPECT_NE(store.TryLoadModule("k"), nullptr);

  std::string damaged = ReadAll(store.PathFor("k", ArtifactKind::kCompiledModule));
  damaged[damaged.size() - 1] ^= 0x01;
  WriteAll(store.PathFor("k", ArtifactKind::kCompiledModule), damaged);
  // Present-but-corrupt is NOT a miss: no nullptr, no silent recompile.
  ExpectError(ErrorKind::kParseError, [&] { store.TryLoadModule("k"); });
}

// ---------------------------------------------------------------------------
// Concurrency: load-or-build racers converge on one valid entry.
// ---------------------------------------------------------------------------

TEST(Artifact, ConcurrentLoadOrBuildConverges) {
  TempDir dir("race");
  const relay::Module module = SmallZoo("mobilenet_v1");
  const NDArray input = SmallInput(17);

  const auto reference =
      RunOnce(*core::CompileFlow(module, core::FlowKind::kByocCpuApu), input);

  constexpr int kThreads = 8;
  std::vector<std::vector<NDArray>> outputs(kThreads);
  std::vector<std::string> errors(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      try {
        const core::FlowCompileSettings settings = WithStore(dir.path);
        const auto session = core::CompileFlow(module, core::FlowKind::kByocCpuApu, settings);
        outputs[t] = RunOnce(*session, input);
      } catch (const std::exception& e) {
        errors[t] = e.what();
      }
    });
  }
  for (auto& thread : threads) thread.join();

  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(errors[t], "") << "racer " << t;
    ASSERT_EQ(outputs[t].size(), reference.size()) << "racer " << t;
    for (std::size_t i = 0; i < reference.size(); ++i) {
      EXPECT_TRUE(NDArray::BitEqual(outputs[t][i], reference[i]))
          << "racer " << t << " output " << i;
    }
  }

  // Exactly one entry survives and later compiles hit it.
  int entries = 0;
  for (const auto& e : fs::directory_iterator(dir.path)) {
    EXPECT_EQ(e.path().extension(), ".tnpa") << e.path();
    ++entries;
  }
  EXPECT_EQ(entries, 1);
  const std::int64_t hits = CounterValue("artifact/cache_hits");
  core::CompileFlow(module, core::FlowKind::kByocCpuApu, WithStore(dir.path));
  EXPECT_EQ(CounterValue("artifact/cache_hits"), hits + 1);
}

}  // namespace
}  // namespace artifact
}  // namespace tnp
