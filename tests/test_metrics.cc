// The metrics registry: histogram percentiles, concurrent counter
// increments, gauge watermarks, reference stability across Reset, and the
// plain-text dump.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <thread>
#include <vector>

#include "support/metrics.h"

namespace tnp {
namespace support {
namespace metrics {
namespace {

TEST(Metrics, HistogramPercentilesNearestRank) {
  Histogram histogram;
  for (int i = 1; i <= 100; ++i) histogram.Record(static_cast<double>(i));

  EXPECT_EQ(histogram.count(), 100);
  EXPECT_DOUBLE_EQ(histogram.Percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(histogram.Percentile(95), 95.0);
  EXPECT_DOUBLE_EQ(histogram.Percentile(99), 99.0);
  EXPECT_DOUBLE_EQ(histogram.Percentile(100), 100.0);

  const HistogramSummary summary = histogram.Summarize();
  EXPECT_EQ(summary.count, 100);
  EXPECT_DOUBLE_EQ(summary.min, 1.0);
  EXPECT_DOUBLE_EQ(summary.max, 100.0);
  EXPECT_DOUBLE_EQ(summary.mean, 50.5);
  EXPECT_DOUBLE_EQ(summary.p50, 50.0);
  EXPECT_DOUBLE_EQ(summary.p95, 95.0);
  EXPECT_DOUBLE_EQ(summary.p99, 99.0);
  // Population stddev of 1..100: sqrt((100^2 - 1) / 12).
  EXPECT_NEAR(summary.stddev, std::sqrt((100.0 * 100.0 - 1.0) / 12.0), 1e-9);
}

TEST(Metrics, HistogramSingleSample) {
  Histogram histogram;
  histogram.Record(42.0);
  const HistogramSummary summary = histogram.Summarize();
  EXPECT_EQ(summary.count, 1);
  EXPECT_DOUBLE_EQ(summary.min, 42.0);
  EXPECT_DOUBLE_EQ(summary.max, 42.0);
  EXPECT_DOUBLE_EQ(summary.p50, 42.0);
  EXPECT_DOUBLE_EQ(summary.p99, 42.0);
  EXPECT_DOUBLE_EQ(summary.stddev, 0.0);
}

TEST(Metrics, ConcurrentCounterIncrements) {
  Counter& counter = Registry::Global().GetCounter("test/concurrent_counter");
  counter.Reset();

  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kIncrements; ++i) counter.Increment();
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(counter.value(), static_cast<std::int64_t>(kThreads) * kIncrements);
}

TEST(Metrics, ConcurrentHistogramRecords) {
  Histogram& histogram = Registry::Global().GetHistogram("test/concurrent_histogram");
  histogram.Reset();

  constexpr int kThreads = 4;
  constexpr int kRecords = 2500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram] {
      for (int i = 0; i < kRecords; ++i) histogram.Record(1.0);
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(histogram.count(), static_cast<std::int64_t>(kThreads) * kRecords);
  EXPECT_DOUBLE_EQ(histogram.Percentile(50), 1.0);
}

TEST(Metrics, GaugeTracksValueAndWatermark) {
  Gauge& gauge = Registry::Global().GetGauge("test/gauge");
  gauge.Reset();
  gauge.Set(3.0);
  gauge.Set(7.5);
  gauge.Set(2.0);
  EXPECT_DOUBLE_EQ(gauge.value(), 2.0);
  EXPECT_DOUBLE_EQ(gauge.max(), 7.5);
  gauge.Add(5.0);
  EXPECT_DOUBLE_EQ(gauge.value(), 7.0);
  EXPECT_DOUBLE_EQ(gauge.max(), 7.5);
}

TEST(Metrics, RegistryReferencesStableAcrossReset) {
  Registry& registry = Registry::Global();
  Counter& a = registry.GetCounter("test/stable");
  Counter& b = registry.GetCounter("test/stable");
  EXPECT_EQ(&a, &b) << "find-or-create must return the same object";

  a.Increment(5);
  registry.Reset();
  EXPECT_EQ(a.value(), 0) << "Reset zeroes in place";
  a.Increment(2);
  EXPECT_EQ(registry.GetCounter("test/stable").value(), 2);
}

TEST(Metrics, FindReturnsNullForUnknownNames) {
  const Registry& registry = Registry::Global();
  EXPECT_EQ(registry.FindCounter("test/never_created"), nullptr);
  EXPECT_EQ(registry.FindGauge("test/never_created"), nullptr);
  EXPECT_EQ(registry.FindHistogram("test/never_created"), nullptr);
}

TEST(Metrics, DumpTextListsEveryMetric) {
  Registry& registry = Registry::Global();
  registry.GetCounter("test/dump_counter").Increment(3);
  registry.GetGauge("test/dump_gauge").Set(1.5);
  registry.GetHistogram("test/dump_histogram").Record(10.0);

  const std::string dump = registry.DumpText();
  EXPECT_NE(dump.find("test/dump_counter"), std::string::npos);
  EXPECT_NE(dump.find("test/dump_gauge"), std::string::npos);
  EXPECT_NE(dump.find("test/dump_histogram"), std::string::npos);
}

}  // namespace
}  // namespace metrics
}  // namespace support
}  // namespace tnp
