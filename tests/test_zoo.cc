// Model zoo: every model emits + imports, structure matches the paper's
// Table 1, partition behaviour matches the support analysis, weights are
// deterministic.
#include <gtest/gtest.h>

#include "core/flows.h"
#include "relay/visitor.h"
#include "zoo/zoo.h"

namespace tnp {
namespace zoo {
namespace {

/// Small build options per model (fast numerics; topology preserved).
ZooOptions SmallOptions(const std::string& name) {
  ZooOptions options;
  options.image_size = 32;
  options.width = 0.25;
  options.depth = 0.3;
  if (name == "emotion_cnn") options.image_size = 48;
  if (name == "yolov3_tiny" || name == "yolov3" || name == "nasnet") options.image_size = 64;
  return options;
}

TEST(Zoo, RegistryMatchesPaperTable1) {
  // Table 1 lists the wider evaluation models with their data types.
  const std::pair<const char*, DType> expected[] = {
      {"densenet", DType::kFloat32},
      {"inception_resnet_v2", DType::kFloat32},
      {"inception_v3", DType::kFloat32},
      {"inception_v4", DType::kFloat32},
      {"mobilenet_v1", DType::kFloat32},
      {"mobilenet_v2", DType::kFloat32},
      {"nasnet", DType::kFloat32},
      {"inception_v3_quant", DType::kInt8},
      {"mobilenet_v1_quant", DType::kInt8},
      {"mobilenet_v2_quant", DType::kInt8},
  };
  for (const auto& [name, dtype] : expected) {
    const ModelInfo& info = Info(name);
    EXPECT_EQ(info.data_type, dtype) << name;
  }
  EXPECT_THROW(Info("resnet50"), Error);
}

TEST(Zoo, ShowcaseModelsComeFromThreeFrameworks) {
  EXPECT_EQ(Info("deepixbis").framework, "pytorch");
  EXPECT_EQ(Info("emotion_cnn").framework, "keras");
  EXPECT_EQ(Info("mobilenet_ssd_quant").framework, "tflite");
  EXPECT_EQ(Info("yolov3_tiny").framework, "darknet");
  EXPECT_EQ(Info("densenet").framework, "onnx");
}

class ZooBuildSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(ZooBuildSweep, EmitsParsesAndTypechecks) {
  const std::string& name = GetParam();
  const std::string source = EmitSource(name, SmallOptions(name));
  EXPECT_GT(source.size(), 100u);
  const relay::Module module = Build(name, SmallOptions(name));
  EXPECT_TRUE(module.main()->checked_type().defined());
  EXPECT_GT(relay::CountCalls(module.main()->body()), 5);
}

TEST_P(ZooBuildSweep, TvmOnlyAndByocAgree) {
  const std::string& name = GetParam();
  const ZooOptions options = SmallOptions(name);
  const relay::Module module = Build(name, options);
  const auto tvm = core::CompileFlow(module, core::FlowKind::kTvmOnly);
  const auto byoc = core::CompileFlow(module, core::FlowKind::kByocCpuApu);

  const int channels = name == "emotion_cnn" ? 1 : 3;
  NDArray input = NDArray::RandomNormal(
      Shape({1, channels, options.image_size, options.image_size}), 99, 0.4f);
  for (const char* input_name : {"input", "x", "data", "t0"}) {
    try {
      tvm->SetInput(input_name, input);
      byoc->SetInput(input_name, input);
      break;
    } catch (const Error&) {
      continue;
    }
  }
  tvm->Run();
  byoc->Run();
  ASSERT_EQ(tvm->NumOutputs(), byoc->NumOutputs());
  for (int i = 0; i < tvm->NumOutputs(); ++i) {
    EXPECT_TRUE(NDArray::BitEqual(tvm->GetOutput(i), byoc->GetOutput(i)))
        << name << " output " << i;
  }
  // BYOC with both devices never loses to TVM-only in simulated time.
  EXPECT_LT(byoc->last_clock().total_us(), tvm->last_clock().total_us()) << name;
}

INSTANTIATE_TEST_SUITE_P(AllModels, ZooBuildSweep, ::testing::Values(
    "emotion_cnn", "mobilenet_v1", "mobilenet_v2", "deepixbis", "inception_resnet_v2",
    "densenet", "inception_v3", "inception_v4", "nasnet", "yolov3_tiny",
    "mobilenet_v1_quant", "mobilenet_v2_quant", "inception_v3_quant", "mobilenet_ssd",
    "mobilenet_ssd_quant", "resnet18", "yolov3"));

TEST(Zoo, NpOnlySupportMatchesDesign) {
  // Fully Neuron-mappable models compile NP-only; models with sigmoid /
  // leaky_relu / strided_slice do not (the paper's missing bars).
  const char* supported[] = {"mobilenet_v1", "mobilenet_v2", "densenet", "inception_v3",
                             "inception_v4", "inception_resnet_v2", "emotion_cnn",
                             "mobilenet_v1_quant", "mobilenet_v2_quant", "inception_v3_quant",
                             "resnet18"};
  const char* unsupported[] = {"deepixbis", "nasnet", "yolov3_tiny", "yolov3",
                               "mobilenet_ssd", "mobilenet_ssd_quant"};
  for (const char* name : supported) {
    std::string error;
    EXPECT_NE(core::TryCompileFlow(Build(name, SmallOptions(name)), core::FlowKind::kNpCpu,
                                   &error),
              nullptr)
        << name << ": " << error;
  }
  for (const char* name : unsupported) {
    std::string error;
    EXPECT_EQ(core::TryCompileFlow(Build(name, SmallOptions(name)), core::FlowKind::kNpCpu,
                                   &error),
              nullptr)
        << name;
  }
}

TEST(Zoo, AntiSpoofingHasManySubgraphs) {
  // Section 5.1: "the inference time of the anti-spoofing model is longer
  // ... caused by the large number of subgraphs in the model".
  const auto deepix = core::CompileFlow(Build("deepixbis", SmallOptions("deepixbis")),
                                        core::FlowKind::kByocCpuApu);
  const auto mobilenet = core::CompileFlow(Build("mobilenet_v1", SmallOptions("mobilenet_v1")),
                                           core::FlowKind::kByocCpuApu);
  EXPECT_GT(deepix->NumPartitions(), mobilenet->NumPartitions());
  EXPECT_GE(deepix->NumPartitions(), 3);
}

TEST(Zoo, EmittedSourceDeterministic) {
  const ZooOptions options = SmallOptions("mobilenet_v2");
  EXPECT_EQ(EmitSource("mobilenet_v2", options), EmitSource("mobilenet_v2", options));
  ZooOptions different = options;
  different.seed = 999;
  EXPECT_NE(EmitSource("mobilenet_v2", options), EmitSource("mobilenet_v2", different));
}

TEST(Zoo, WidthScalesChannels) {
  ZooOptions narrow = SmallOptions("mobilenet_v1");
  ZooOptions wide = narrow;
  wide.width = 0.5;
  const relay::Module a = Build("mobilenet_v1", narrow);
  const relay::Module b = Build("mobilenet_v1", wide);
  // Wider model has more MACs -> higher simulated latency.
  EXPECT_LT(core::CompileFlow(a, core::FlowKind::kTvmOnly)->EstimateLatency().total_us(),
            core::CompileFlow(b, core::FlowKind::kTvmOnly)->EstimateLatency().total_us());
}

TEST(Zoo, CanonicalShapesTypecheck) {
  // Full-size models typecheck (no numerics executed here).
  for (const char* name : {"mobilenet_v1", "inception_v3", "mobilenet_ssd_quant"}) {
    ZooOptions options;  // canonical size, full width
    options.depth = 0.3;  // keep emit time reasonable
    const relay::Module module = Build(name, options);
    EXPECT_TRUE(module.main()->checked_type().defined()) << name;
  }
}

TEST(Zoo, SsdProducesBoxAndScoreOutputs) {
  const relay::Module module = Build("mobilenet_ssd_quant", SmallOptions("mobilenet_ssd_quant"));
  ASSERT_TRUE(module.main()->checked_type().IsTuple());
  EXPECT_EQ(module.main()->checked_type().AsTuple().size(), 2u);
}

TEST(Zoo, YoloHasTwoHeads) {
  const relay::Module module = Build("yolov3_tiny", SmallOptions("yolov3_tiny"));
  ASSERT_TRUE(module.main()->checked_type().IsTuple());
  EXPECT_EQ(module.main()->checked_type().AsTuple().size(), 2u);
}

TEST(Zoo, FullYoloHasThreeHeads) {
  const relay::Module module = Build("yolov3", SmallOptions("yolov3"));
  ASSERT_TRUE(module.main()->checked_type().IsTuple());
  const auto& heads = module.main()->checked_type().AsTuple();
  ASSERT_EQ(heads.size(), 3u);
  // Strides 32 / 16 / 8 on a 64px input: 2x2, 4x4, 8x8 feature maps.
  EXPECT_EQ(heads[0].AsTensor().shape[2], 2);
  EXPECT_EQ(heads[1].AsTensor().shape[2], 4);
  EXPECT_EQ(heads[2].AsTensor().shape[2], 8);
}

}  // namespace
}  // namespace zoo
}  // namespace tnp
