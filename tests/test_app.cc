// The application showcase end-to-end: cascade correctness (overlap gate,
// spoof gating, emotion recovery), sequential vs pipelined equivalence,
// and stage time accounting.
#include <gtest/gtest.h>

#include "vision/app.h"

namespace tnp {
namespace vision {
namespace {

/// Shared app with a small SSD so the suite stays fast.
ShowcaseApp& App() {
  static ShowcaseApp app = [] {
    ShowcaseConfig config;
    config.object_image_size = 64;
    config.object_width = 0.25;
    return ShowcaseApp(config);
  }();
  return app;
}

const Scene& TestScene() {
  static const Scene scene = Scene::Random(320, 240, 4, 2, 7);
  return scene;
}

TEST(Showcase, CandidatesRequireBodyOverlap) {
  const NDArray frame = RenderFrame(TestScene(), 0);
  const FrameResult result = App().ProcessFrame(frame, 0);
  // Posters (bare faces without bodies) must not become candidates.
  for (const auto& face : result.results) {
    bool near_poster = false;
    for (const auto& poster : TestScene().posters) {
      if (IoU(face.box, poster.face) > 0.5) near_poster = true;
    }
    EXPECT_FALSE(near_poster) << "poster passed the overlap gate";
  }
  // Every (non-occluded) person face becomes a candidate.
  EXPECT_GE(result.num_candidates, static_cast<int>(TestScene().persons.size()) - 1);
}

TEST(Showcase, SpoofGateBlocksEmotionStage) {
  const NDArray frame = RenderFrame(TestScene(), 0);
  const FrameResult result = App().ProcessFrame(frame, 0);
  for (const auto& face : result.results) {
    if (face.spoof) {
      EXPECT_EQ(face.emotion, -1) << "spoof face was emotion-classified";
    } else {
      EXPECT_GE(face.emotion, 0);
      EXPECT_LT(face.emotion, kNumEmotions);
    }
  }
}

TEST(Showcase, MatchesGroundTruth) {
  const NDArray frame = RenderFrame(TestScene(), 0);
  const FrameResult result = App().ProcessFrame(frame, 0);
  int matched = 0;
  for (const auto& face : result.results) {
    const Person* gt = nullptr;
    for (const auto& person : PersonsAtFrame(TestScene(), 0)) {
      if (IoU(face.box, person.face) > 0.5) gt = &person;
    }
    if (gt == nullptr) continue;
    ++matched;
    EXPECT_EQ(face.spoof, gt->spoof);
    if (!gt->spoof) EXPECT_EQ(face.emotion, static_cast<int>(gt->emotion));
  }
  EXPECT_GE(matched, 3);
}

TEST(Showcase, SequentialSummaryAccounting) {
  const RunSummary summary = App().RunSequential(TestScene(), 3);
  EXPECT_EQ(summary.frames.size(), 3u);
  EXPECT_GT(summary.sim_detection_ms, 0.0);  // SSD runs per frame
  EXPECT_GT(summary.sim_antispoof_ms, 0.0);
  EXPECT_GT(summary.sim_emotion_ms, 0.0);
  EXPECT_GT(summary.wall_ms, 0.0);
  EXPECT_NEAR(summary.SimTotalMs(),
              summary.sim_detection_ms + summary.sim_antispoof_ms + summary.sim_emotion_ms,
              1e-9);
}

TEST(Showcase, PipelinedMatchesSequentialResults) {
  const RunSummary seq = App().RunSequential(TestScene(), 4);
  const RunSummary pipe = App().RunPipelined(TestScene(), 4);
  ASSERT_EQ(seq.frames.size(), pipe.frames.size());
  for (std::size_t f = 0; f < seq.frames.size(); ++f) {
    ASSERT_EQ(seq.frames[f].results.size(), pipe.frames[f].results.size()) << "frame " << f;
    for (std::size_t i = 0; i < seq.frames[f].results.size(); ++i) {
      EXPECT_EQ(seq.frames[f].results[i].spoof, pipe.frames[f].results[i].spoof);
      EXPECT_EQ(seq.frames[f].results[i].emotion, pipe.frames[f].results[i].emotion);
      EXPECT_FLOAT_EQ(seq.frames[f].results[i].antispoof_score,
                      pipe.frames[f].results[i].antispoof_score);
    }
  }
  // Pipelined preserves frame order.
  for (std::size_t f = 0; f < pipe.frames.size(); ++f) {
    EXPECT_EQ(pipe.frames[f].frame_index, static_cast<int>(f));
  }
}

TEST(Showcase, StageLatencyEstimatesPositive) {
  EXPECT_GT(App().DetectionStageUs(), 0.0);
  EXPECT_GT(App().AntiSpoofStageUs(), 0.0);
  EXPECT_GT(App().EmotionStageUs(), 0.0);
}

TEST(Showcase, ModelBoxMode) {
  // Decode-SSD mode exercises the model-output plumbing; with synthetic
  // weights the boxes are arbitrary but the pipeline must stay well-formed.
  ShowcaseConfig config;
  config.object_image_size = 64;
  config.object_width = 0.25;
  config.use_model_boxes = true;
  ShowcaseApp app(config);
  const NDArray frame = RenderFrame(TestScene(), 0);
  const FrameResult result = app.ProcessFrame(frame, 0);
  EXPECT_GE(result.num_candidates, 0);
  for (const auto& face : result.results) {
    EXPECT_GE(face.antispoof_score, 0.0);
    EXPECT_LE(face.antispoof_score, 1.0);
  }
}

TEST(Showcase, NoObjectModelMode) {
  ShowcaseConfig config;
  config.run_object_model = false;
  ShowcaseApp app(config);
  const RunSummary summary = app.RunSequential(TestScene(), 2);
  EXPECT_EQ(summary.sim_detection_ms, 0.0);
  EXPECT_GT(summary.sim_antispoof_ms, 0.0);
}

TEST(Showcase, DeterministicAcrossRuns) {
  const RunSummary a = App().RunSequential(TestScene(), 2);
  const RunSummary b = App().RunSequential(TestScene(), 2);
  ASSERT_EQ(a.frames.size(), b.frames.size());
  for (std::size_t f = 0; f < a.frames.size(); ++f) {
    ASSERT_EQ(a.frames[f].results.size(), b.frames[f].results.size());
    for (std::size_t i = 0; i < a.frames[f].results.size(); ++i) {
      EXPECT_FLOAT_EQ(a.frames[f].results[i].antispoof_score,
                      b.frames[f].results[i].antispoof_score);
    }
  }
  EXPECT_DOUBLE_EQ(a.SimTotalMs(), b.SimTotalMs());
}

}  // namespace
}  // namespace vision
}  // namespace tnp
