// Optimization passes: FoldConstant, SimplifyExpr (incl. module DCE), FuseOps.
#include <gtest/gtest.h>

#include <cmath>

#include "frontend/common.h"
#include "relay/interpreter.h"
#include "relay/pass.h"
#include "relay/visitor.h"
#include "zoo/zoo.h"

namespace tnp {
namespace relay {
namespace {

using frontend::TypedCall;
using frontend::TypedVar;
using frontend::WeightF32;
using frontend::ZeroBiasF32;

int CountModuleCalls(const Module& module, const std::string& op = "") {
  return CountCalls(module.main()->body(), op);
}

TEST(FoldConstantPass, FoldsConstSubtree) {
  // relu(add(c1, c2)) with x unused in that branch folds to a constant.
  auto c1 = MakeConstant(NDArray::Full(Shape({2}), DType::kFloat32, 1.0));
  auto c2 = MakeConstant(NDArray::Full(Shape({2}), DType::kFloat32, -3.0));
  auto x = TypedVar("x", Shape({2}), DType::kFloat32);
  auto folded_branch = MakeCall("nn.relu", {MakeCall("add", {c1, c2})});
  auto body = MakeCall("add", {x, folded_branch});
  Module module(MakeFunction({x}, body));
  module = Sequential({InferType(), FoldConstant()}).Run(module);
  // Only the outer add survives.
  EXPECT_EQ(CountModuleCalls(module), 1);
  const auto call = As<Call>(module.main()->body());
  ASSERT_EQ(call->args()[1]->kind(), ExprKind::kConstant);
  const auto constant = As<Constant>(call->args()[1]);
  EXPECT_FLOAT_EQ(constant->data().Data<float>()[0], 0.0f);  // relu(1-3)=0
}

TEST(FoldConstantPass, DoesNotFoldVarDependent) {
  auto x = TypedVar("x", Shape({2}), DType::kFloat32);
  auto body = MakeCall("nn.relu", {x});
  Module module(MakeFunction({x}, body));
  module = Sequential({InferType(), FoldConstant()}).Run(module);
  EXPECT_EQ(CountModuleCalls(module, "nn.relu"), 1);
}

TEST(FoldConstantPass, FoldsConstantTupleConcat) {
  auto c1 = MakeConstant(NDArray::Full(Shape({1, 2}), DType::kFloat32, 1.0));
  auto c2 = MakeConstant(NDArray::Full(Shape({1, 3}), DType::kFloat32, 2.0));
  auto cat = MakeCall("concatenate", {MakeTuple({c1, c2})}, Attrs().SetInt("axis", 1));
  auto x = TypedVar("x", Shape({1, 5}), DType::kFloat32);
  Module module(MakeFunction({x}, MakeCall("add", {x, cat})));
  module = Sequential({InferType(), FoldConstant()}).Run(module);
  EXPECT_EQ(CountModuleCalls(module, "concatenate"), 0);
}

TEST(SimplifyExprPass, RemovesDropoutAndTupleGet) {
  auto x = TypedVar("x", Shape({2}), DType::kFloat32);
  auto dropped = MakeCall("nn.dropout", {x}, Attrs().SetDouble("rate", 0.5));
  auto tuple = MakeTuple({dropped, x});
  auto get = MakeTupleGetItem(tuple, 0);
  auto body = MakeCall("nn.relu", {get});
  Module module(MakeFunction({x}, body));
  module = Sequential({InferType(), SimplifyExpr()}).Run(module);
  EXPECT_EQ(CountModuleCalls(module, "nn.dropout"), 0);
  const auto relu = As<Call>(module.main()->body());
  EXPECT_EQ(relu->args()[0]->kind(), ExprKind::kVar);  // tuple-get collapsed
}

TEST(SimplifyExprPass, ModuleDceDropsUnreachable) {
  auto x = TypedVar("x", Shape({2}), DType::kFloat32);
  Module module(MakeFunction({x}, MakeCall("nn.relu", {x})));
  auto y = TypedVar("y", Shape({2}), DType::kFloat32);
  module.Add("orphan", MakeFunction({y}, MakeCall("sigmoid", {y})));
  auto z = TypedVar("z", Shape({2}), DType::kFloat32);
  module.Add("nir_0", MakeFunction({z}, MakeCall("tanh", {z})));
  // Reference nir_0 from main; orphan stays unreferenced.
  auto body = MakeGlobalCall("nir_0", {MakeCall("nn.relu", {x})});
  module.Add("main", MakeFunction({x}, body));

  const Module cleaned = SimplifyExpr().Run(module);
  EXPECT_TRUE(cleaned.Has("main"));
  EXPECT_TRUE(cleaned.Has("nir_0"));
  EXPECT_FALSE(cleaned.Has("orphan"));
}

TEST(FuseOpsPass, FusesConvBiasRelu) {
  auto x = TypedVar("x", Shape({1, 3, 8, 8}), DType::kFloat32);
  auto conv = TypedCall("nn.conv2d", {x, WeightF32(Shape({4, 3, 3, 3}), 1), ZeroBiasF32(4)},
                        Attrs().SetInts("padding", {1, 1}));
  auto biased = TypedCall("nn.bias_add", {conv, WeightF32(Shape({4}), 2, 0.1f)});
  auto relu = TypedCall("nn.relu", {biased});
  Module module(MakeFunction({x}, relu));
  module = Sequential({InferType(), FuseOps()}).Run(module);

  const auto body = As<Call>(module.main()->body());
  ASSERT_EQ(body->callee_kind(), CalleeKind::kFunction);
  EXPECT_TRUE(body->fn()->IsPrimitive());
  // One external input: x (constants stay embedded).
  EXPECT_EQ(body->args().size(), 1u);
  EXPECT_EQ(CountCalls(body->fn()->body()), 3);
}

TEST(FuseOpsPass, PreservesSemantics) {
  auto x = TypedVar("x", Shape({1, 3, 8, 8}), DType::kFloat32);
  auto conv = TypedCall("nn.conv2d", {x, WeightF32(Shape({4, 3, 3, 3}), 1), ZeroBiasF32(4)},
                        Attrs().SetInts("padding", {1, 1}));
  auto relu = TypedCall("nn.relu", {conv});
  Module module(MakeFunction({x}, relu));

  NDArray input = NDArray::RandomNormal(Shape({1, 3, 8, 8}), 7);
  Environment env;
  env[x.get()] = Value(input);
  const Value before = EvalExpr(module.main()->body(), env);

  module = Sequential({InferType(), FuseOps()}).Run(module);
  Environment env2;
  env2[module.main()->params()[0].get()] = Value(input);
  const Value after = EvalExpr(module.main()->body(), env2);
  EXPECT_TRUE(NDArray::BitEqual(before.AsTensor(), after.AsTensor()));
}

TEST(FuseOpsPass, StopsAtMultiConsumer) {
  // conv feeds both relu and sigmoid: the intermediate escapes, no fusion
  // past it.
  auto x = TypedVar("x", Shape({1, 3, 8, 8}), DType::kFloat32);
  auto conv = TypedCall("nn.conv2d", {x, WeightF32(Shape({4, 3, 3, 3}), 1), ZeroBiasF32(4)},
                        Attrs().SetInts("padding", {1, 1}));
  auto relu = TypedCall("nn.relu", {conv});
  auto sig = TypedCall("sigmoid", {conv});
  auto sum = TypedCall("add", {relu, sig});
  Module module(MakeFunction({x}, sum));
  module = Sequential({InferType(), FuseOps()}).Run(module);
  // conv must remain a standalone call (not fused into either consumer).
  EXPECT_EQ(CountModuleCalls(module, "nn.conv2d"), 1);
}

TEST(FuseOpsPass, StopsAtNonLeafSecondOperand) {
  // add(conv, other_conv): the second operand is not a leaf, so the add is
  // not absorbed into the first conv's group.
  auto x = TypedVar("x", Shape({1, 3, 8, 8}), DType::kFloat32);
  auto conv1 = TypedCall("nn.conv2d", {x, WeightF32(Shape({4, 3, 3, 3}), 1), ZeroBiasF32(4)},
                         Attrs().SetInts("padding", {1, 1}));
  auto conv2 = TypedCall("nn.conv2d", {x, WeightF32(Shape({4, 3, 3, 3}), 2), ZeroBiasF32(4)},
                         Attrs().SetInts("padding", {1, 1}));
  auto sum = TypedCall("add", {conv1, conv2});
  Module module(MakeFunction({x}, sum));
  module = Sequential({InferType(), FuseOps()}).Run(module);
  EXPECT_EQ(CountModuleCalls(module, "add"), 1);
  EXPECT_EQ(CountModuleCalls(module, "nn.conv2d"), 2);
}

TEST(FuseOpsPass, SkipsExternalFunctions) {
  auto x = TypedVar("x", Shape({1, 3, 8, 8}), DType::kFloat32);
  auto conv = TypedCall("nn.conv2d", {x, WeightF32(Shape({4, 3, 3, 3}), 1), ZeroBiasF32(4)},
                        Attrs().SetInts("padding", {1, 1}));
  auto relu = TypedCall("nn.relu", {conv});
  Attrs ext;
  ext.SetString(kAttrCompiler, "nir");
  Module module;
  module.Add("nir_0", MakeFunction({x}, relu, ext));
  auto y = TypedVar("y", Shape({1, 3, 8, 8}), DType::kFloat32);
  module.Add("main", MakeFunction({y}, MakeGlobalCall("nir_0", {y})));
  const Module fused = Sequential({InferType(), FuseOps()}).Run(module);
  // The external body keeps its plain op calls.
  EXPECT_EQ(CountCalls(fused.Get("nir_0")->body(), "nn.conv2d"), 1);
}

TEST(FoldBatchNormPass, FoldsConvBnPair) {
  auto x = TypedVar("x", Shape({1, 3, 8, 8}), DType::kFloat32);
  auto conv = TypedCall("nn.conv2d", {x, WeightF32(Shape({4, 3, 3, 3}), 1), ZeroBiasF32(4)},
                        Attrs().SetInts("padding", {1, 1}));
  auto bn_params = frontend::BatchNormConstants(4, 7);
  auto bn = TypedCall("nn.batch_norm",
                      {conv, bn_params[0], bn_params[1], bn_params[2], bn_params[3]},
                      Attrs().SetDouble("epsilon", 1e-5));
  Module module(MakeFunction({x}, bn));
  module = InferType().Run(module);

  NDArray input = NDArray::RandomNormal(Shape({1, 3, 8, 8}), 13);
  Environment env;
  env[module.main()->params()[0].get()] = Value(input);
  const Value expected = EvalExpr(module.main()->body(), env);

  const Module folded = FoldBatchNorm().Run(module);
  EXPECT_EQ(CountModuleCalls(folded, "nn.batch_norm"), 0);
  EXPECT_EQ(CountModuleCalls(folded, "nn.conv2d"), 1);

  Environment env2;
  env2[folded.main()->params()[0].get()] = Value(input);
  const Value actual = EvalExpr(folded.main()->body(), env2);
  EXPECT_LT(NDArray::MaxAbsDiff(expected.AsTensor(), actual.AsTensor()), 1e-4);
}

TEST(FoldBatchNormPass, GroupedConvFolds) {
  auto x = TypedVar("x", Shape({1, 4, 8, 8}), DType::kFloat32);
  auto conv = TypedCall("nn.conv2d", {x, WeightF32(Shape({4, 1, 3, 3}), 1), ZeroBiasF32(4)},
                        Attrs().SetInts("padding", {1, 1}).SetInt("groups", 4));
  auto bn_params = frontend::BatchNormConstants(4, 3);
  auto bn = TypedCall("nn.batch_norm",
                      {conv, bn_params[0], bn_params[1], bn_params[2], bn_params[3]});
  Module module = InferType().Run(Module(MakeFunction({x}, bn)));

  NDArray input = NDArray::RandomNormal(Shape({1, 4, 8, 8}), 21);
  Environment env;
  env[module.main()->params()[0].get()] = Value(input);
  const Value expected = EvalExpr(module.main()->body(), env);

  const Module folded = FoldBatchNorm().Run(module);
  EXPECT_EQ(CountModuleCalls(folded, "nn.batch_norm"), 0);
  Environment env2;
  env2[folded.main()->params()[0].get()] = Value(input);
  EXPECT_LT(NDArray::MaxAbsDiff(expected.AsTensor(),
                                EvalExpr(folded.main()->body(), env2).AsTensor()),
            1e-4);
}

TEST(FoldBatchNormPass, LeavesStandaloneBn) {
  // BN whose input is a graph input (no conv to fold into) must survive.
  auto x = TypedVar("x", Shape({1, 4, 8, 8}), DType::kFloat32);
  auto bn_params = frontend::BatchNormConstants(4, 3);
  auto bn = TypedCall("nn.batch_norm",
                      {x, bn_params[0], bn_params[1], bn_params[2], bn_params[3]});
  Module module = InferType().Run(Module(MakeFunction({x}, bn)));
  const Module folded = FoldBatchNorm().Run(module);
  EXPECT_EQ(CountModuleCalls(folded, "nn.batch_norm"), 1);
}

TEST(FoldBatchNormPass, WholeModelNumericsPreserved) {
  zoo::ZooOptions options;
  options.image_size = 32;
  options.width = 0.25;
  const Module module = InferType().Run(zoo::Build("mobilenet_v1", options));
  const int bn_before = CountModuleCalls(module, "nn.batch_norm");
  ASSERT_GT(bn_before, 5);
  const Module folded = FoldBatchNorm().Run(module);
  EXPECT_EQ(CountModuleCalls(folded, "nn.batch_norm"), 0);

  NDArray input = NDArray::RandomNormal(Shape({1, 3, 32, 32}), 9, 0.4f);
  Environment env_a;
  env_a[module.main()->params()[0].get()] = Value(input);
  Environment env_b;
  env_b[folded.main()->params()[0].get()] = Value(input);
  const NDArray a = EvalExpr(module.main()->body(), env_a).AsTensor();
  const NDArray b = EvalExpr(folded.main()->body(), env_b).AsTensor();
  EXPECT_LT(NDArray::MaxAbsDiff(a, b), 1e-3);  // softmax outputs
}

TEST(Interpreter, EvaluatesTupleResults) {
  auto x = TypedVar("x", Shape({2}), DType::kFloat32);
  auto relu = TypedCall("nn.relu", {x});
  auto tanh_e = TypedCall("tanh", {x});
  auto tuple = MakeTuple({relu, tanh_e});
  Environment env;
  NDArray input = NDArray::FromVector<float>(Shape({2}), {-1.0f, 1.0f});
  env[x.get()] = Value(input);
  const Value result = EvalExpr(tuple, env);
  ASSERT_TRUE(result.is_tuple());
  EXPECT_FLOAT_EQ(result.AsTuple()[0].AsTensor().Data<float>()[0], 0.0f);
  EXPECT_NEAR(result.AsTuple()[1].AsTensor().Data<float>()[1], std::tanh(1.0f), 1e-6);
}

TEST(Interpreter, UnboundVarThrows) {
  auto x = TypedVar("x", Shape({2}), DType::kFloat32);
  auto relu = TypedCall("nn.relu", {x});
  EXPECT_THROW(EvalExpr(relu, Environment{}), Error);
}

TEST(Interpreter, GlobalCallWithoutModuleThrows) {
  auto x = TypedVar("x", Shape({2}), DType::kFloat32);
  auto call = MakeGlobalCall("somewhere", {x});
  Environment env;
  env[x.get()] = Value(NDArray::Zeros(Shape({2}), DType::kFloat32));
  EXPECT_THROW(EvalExpr(call, env), Error);
}

}  // namespace
}  // namespace relay
}  // namespace tnp
