// Tuning subsystem: DB round-trips, key stability, fail-closed loading,
// concurrent lookup, compile-time consultation (relay::Build picks tuned
// configs up and records the fingerprint), and artifact round-trips that
// preserve the tuned config with zero repacks.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <optional>
#include <thread>
#include <vector>

#include "artifact/store.h"
#include "frontend/common.h"
#include "kernels/gemm.h"
#include "relay/build.h"
#include "tune/tuner.h"

namespace tnp {
namespace tune {
namespace {

using frontend::TypedCall;
using frontend::TypedVar;
using frontend::WeightF32;
using frontend::ZeroBiasF32;

std::string TempDir(const char* name) {
  const auto dir = std::filesystem::temp_directory_path() /
                   (std::string("tnp_tune_test_") + name);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

Workload DenseWorkload() {
  Workload w;
  w.op = "dense";
  w.dtype = DType::kFloat32;
  w.m = 8;
  w.k = 32;
  w.n = 16;
  return w;
}

TuningRecord SomeRecord() {
  TuningRecord record;
  record.workload = DenseWorkload();
  record.config = kernels::GemmConfig{6, 8, 128, 96, 2};
  record.best_us = 12.5;
  record.baseline_us = 20.0;
  record.trials = 9;
  return record;
}

/// RAII guard: installs a DB as process-global and always uninstalls it, so
/// a failing test can't leak tuned configs into other suites.
struct ActiveDbGuard {
  explicit ActiveDbGuard(std::shared_ptr<const TuningDb> db) {
    SetActiveTuningDb(std::move(db));
  }
  ~ActiveDbGuard() { SetActiveTuningDb(nullptr); }
};

TEST(TuningKey, StableRendering) {
  Workload w;
  w.op = "conv2d";
  w.dtype = DType::kFloat32;
  w.m = 64;
  w.k = 576;
  w.n = 3136;
  const std::string expected = std::string("conv2d/f32/m64/k576/n3136|isa=") +
                               kernels::GemmIsaName() + "|schema=1";
  EXPECT_EQ(w.Key(), expected);
  w.dtype = DType::kInt8;
  EXPECT_NE(w.Key(), expected);  // dtype is part of the key
}

TEST(TuningRecordJson, RoundTripsExactly) {
  const TuningRecord record = SomeRecord();
  const TuningRecord parsed = ParseTuningRecord(TuningRecordToJson(record));
  EXPECT_EQ(parsed.workload, record.workload);
  EXPECT_EQ(parsed.config, record.config);
  EXPECT_EQ(parsed.best_us, record.best_us);
  EXPECT_EQ(parsed.baseline_us, record.baseline_us);
  EXPECT_EQ(parsed.trials, record.trials);
}

TEST(TuningDbPersistence, PutThenReloadFromDisk) {
  const std::string dir = TempDir("roundtrip");
  const TuningRecord record = SomeRecord();
  {
    TuningDb db(dir);
    EXPECT_EQ(db.size(), 0u);
    db.Put(record);
    EXPECT_EQ(db.size(), 1u);
  }
  TuningDb reloaded(dir);  // fresh instance, records come from disk
  ASSERT_EQ(reloaded.size(), 1u);
  const std::optional<TuningRecord> found = reloaded.Lookup(record.workload);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->config, record.config);
  EXPECT_EQ(found->trials, record.trials);

  Workload other = record.workload;
  other.n += 1;
  EXPECT_FALSE(reloaded.Lookup(other).has_value());  // clean miss
}

TEST(TuningDbPersistence, DistinctWorkloadsNeverCollide) {
  const std::string dir = TempDir("collide");
  TuningDb db(dir);
  TuningRecord a = SomeRecord();
  TuningRecord b = SomeRecord();
  b.workload.m += 1;
  b.config = kernels::GemmConfig{4, 16, 256, 192, 1};
  db.Put(a);
  db.Put(b);
  TuningDb reloaded(dir);
  EXPECT_EQ(reloaded.size(), 2u);
  EXPECT_EQ(reloaded.Lookup(a.workload)->config, a.config);
  EXPECT_EQ(reloaded.Lookup(b.workload)->config, b.config);
}

TEST(TuningDbPersistence, FingerprintReflectsContentNotOrder) {
  TuningRecord a = SomeRecord();
  TuningRecord b = SomeRecord();
  b.workload.m += 1;
  TuningDb forward;
  forward.Put(a);
  forward.Put(b);
  TuningDb backward;
  backward.Put(b);
  backward.Put(a);
  EXPECT_EQ(forward.Fingerprint(), backward.Fingerprint());
  EXPECT_EQ(TuningDb().Fingerprint(), "empty");

  TuningDb changed;
  changed.Put(a);
  b.config.kc = 384;
  changed.Put(b);
  EXPECT_NE(changed.Fingerprint(), forward.Fingerprint());
}

TEST(TuningDbFailClosed, CorruptRecordThrowsNamingTheFile) {
  const std::string dir = TempDir("corrupt");
  {
    TuningDb db(dir);
    db.Put(SomeRecord());
  }
  std::ofstream(dir + "/deadbeef00000000.json") << "{ not json";
  try {
    TuningDb db(dir);
    FAIL() << "corrupt record must fail the load";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kParseError);
    EXPECT_NE(std::string(e.what()).find("deadbeef00000000.json"), std::string::npos);
  }
}

TEST(TuningDbFailClosed, InconsistentRecordRejected) {
  TuningRecord record = SomeRecord();
  std::string json = TuningRecordToJson(record);
  // Tamper with an extent but not the stored key: the self-check must fire.
  const auto pos = json.find("\"m\": 8");
  ASSERT_NE(pos, std::string::npos);
  json.replace(pos, 6, "\"m\": 9");
  EXPECT_THROW(ParseTuningRecord(json), Error);

  // An illegal config is rejected even when the key is consistent.
  TuningRecord bad = SomeRecord();
  bad.config.kc = 7;
  EXPECT_THROW(ParseTuningRecord(TuningRecordToJson(bad)), Error);
}

TEST(TuningDbFailClosed, OtherIsaRecordsNeverMatch) {
  const std::string dir = TempDir("isa");
  {
    TuningDb db(dir);
    db.Put(SomeRecord());
  }
  // Rewrite the record as if tuned on another ISA: loading must keep it
  // (it is well-formed) but Lookup on this host must miss.
  std::string json = TuningRecordToJson(SomeRecord());
  const std::string host_isa = std::string("\"isa\": \"") + kernels::GemmIsaName() + "\"";
  const auto pos = json.find(host_isa);
  ASSERT_NE(pos, std::string::npos);
  json.replace(pos, host_isa.size(), "\"isa\": \"neon\"");
  const std::string host_key_isa = std::string("isa=") + kernels::GemmIsaName();
  const auto key_pos = json.find(host_key_isa);
  ASSERT_NE(key_pos, std::string::npos);
  json.replace(key_pos, host_key_isa.size(), "isa=neon");
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  std::ofstream(dir + "/0123456789abcdef.json") << json;
  TuningDb db(dir);
  EXPECT_EQ(db.size(), 1u);
  EXPECT_FALSE(db.Lookup(SomeRecord().workload).has_value());
}

TEST(TuningDbConcurrency, ParallelLookupsAndPuts) {
  TuningDb db;  // in-memory
  const TuningRecord base = SomeRecord();
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&db, &base, t] {
      for (int i = 0; i < 200; ++i) {
        TuningRecord record = base;
        record.workload.n = 16 + (t * 200 + i) % 32;
        db.Put(record);
        const std::optional<TuningRecord> found = db.Lookup(record.workload);
        ASSERT_TRUE(found.has_value());
        EXPECT_EQ(found->workload, record.workload);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(db.size(), 32u);
}

TEST(ActiveDb, TunedConfigForFallsBackToDefaults) {
  SetActiveTuningDb(nullptr);
  EXPECT_EQ(ActiveTuningFingerprint(), "none");
  EXPECT_EQ(TunedConfigFor(DenseWorkload()), kernels::GemmConfig::DefaultF32());

  auto db = std::make_shared<TuningDb>();
  db->Put(SomeRecord());
  ActiveDbGuard guard(db);
  EXPECT_EQ(ActiveTuningFingerprint(), db->Fingerprint());
  EXPECT_EQ(TunedConfigFor(DenseWorkload()), SomeRecord().config);
  Workload miss = DenseWorkload();
  miss.k += 1;
  EXPECT_EQ(TunedConfigFor(miss), kernels::GemmConfig::DefaultF32());
}

TEST(Candidates, LegalSpaceWithDefaultFirst) {
  for (const DType dtype : {DType::kFloat32, DType::kInt8}) {
    const auto candidates = CandidateConfigs(dtype);
    ASSERT_FALSE(candidates.empty());
    EXPECT_EQ(candidates.front(), dtype == DType::kInt8
                                      ? kernels::GemmConfig::DefaultS8()
                                      : kernels::GemmConfig::DefaultF32());
    for (const auto& config : candidates) {
      EXPECT_TRUE(kernels::IsValidGemmConfig(config, dtype)) << config.ToString();
    }
  }
  EXPECT_GT(CandidateConfigs(DType::kFloat32).size(),
            CandidateConfigs(DType::kInt8).size());
}

TEST(Tuner, SmallWorkloadProducesValidRecord) {
  Workload w;
  w.op = "dense";
  w.dtype = DType::kInt8;
  w.m = 4;
  w.k = 16;
  w.n = 8;
  TuneOptions options;
  options.repetitions = 1;
  const TuneResult result = TuneWorkload(w, options, /*budget_us=*/0.0);
  EXPECT_TRUE(result.exhausted);
  EXPECT_EQ(result.record.trials, result.candidates_total);
  EXPECT_GT(result.record.baseline_us, 0.0);
  EXPECT_GT(result.record.best_us, 0.0);
  EXPECT_LE(result.record.best_us, result.record.baseline_us);
  EXPECT_TRUE(kernels::IsValidGemmConfig(result.record.config, w.dtype));
}

TEST(Tuner, F32TailShapeSweepsEveryTile) {
  // Regression: m=8 packs to 12 rows under mr=6 but only 8 under mr=8, so an
  // A-panel sized for the widest tile under-allocates for narrower ones; the
  // sweep must size scratch for the worst case over all candidates.
  for (const std::int64_t m : {std::int64_t{8}, std::int64_t{16}}) {
    Workload w;
    w.op = "dense";
    w.dtype = DType::kFloat32;
    w.m = m;
    w.k = 16;
    w.n = 8;
    TuneOptions options;
    options.repetitions = 1;
    const TuneResult result = TuneWorkload(w, options, /*budget_us=*/0.0);
    EXPECT_TRUE(result.exhausted);
    EXPECT_TRUE(kernels::IsValidGemmConfig(result.record.config, w.dtype));
  }
}

TEST(Tuner, TuneAllSkipsExistingRecords) {
  TuningDb db;
  Workload w = DenseWorkload();
  w.m = 4;
  w.k = 8;
  w.n = 8;
  TuneOptions options;
  options.repetitions = 1;
  EXPECT_EQ(TuneAll({w, w}, &db, options), 1);  // deduplicated
  EXPECT_EQ(db.size(), 1u);
  EXPECT_EQ(TuneAll({w}, &db, options), 0);  // already tuned -> skipped
  options.retune = true;
  EXPECT_EQ(TuneAll({w}, &db, options), 1);
}

// ---------------------------------------------------------------------------
// Compile-time consultation + artifact round trip.

relay::Module ConvDenseModule() {
  auto x = TypedVar("data", Shape({1, 3, 8, 8}), DType::kFloat32);
  auto conv = TypedCall("nn.conv2d",
                        {x, WeightF32(Shape({8, 3, 3, 3}), 1), ZeroBiasF32(8)},
                        relay::Attrs().SetInts("padding", {1, 1}));
  return relay::Module(relay::MakeFunction({x}, conv));
}

/// The conv's GEMM workload: m = co, k = ci*kh*kw, n = oh*ow.
Workload ConvWorkload() {
  Workload w;
  w.op = "conv2d";
  w.dtype = DType::kFloat32;
  w.m = 8;
  w.k = 27;
  w.n = 64;
  return w;
}

TEST(BuildConsultation, CollectGemmWorkloadsSeesTheConv) {
  const relay::CompiledModulePtr compiled = relay::Build(ConvDenseModule());
  const std::vector<Workload> workloads = relay::CollectGemmWorkloads(*compiled);
  ASSERT_EQ(workloads.size(), 1u);
  EXPECT_EQ(workloads[0], ConvWorkload());
}

TEST(BuildConsultation, TunedConfigReachesPackedWeights) {
  TuningRecord record;
  record.workload = ConvWorkload();
  record.config = kernels::GemmConfig{6, 8, 128, 96, 2};
  record.trials = 1;
  auto db = std::make_shared<TuningDb>();
  db->Put(record);
  ActiveDbGuard guard(db);

  const relay::CompiledModulePtr compiled = relay::Build(ConvDenseModule());
  EXPECT_EQ(compiled->tuning_fingerprint, db->Fingerprint());
  bool saw_packed = false;
  for (const auto& inst : compiled->instructions) {
    if (inst.packed_weights != nullptr) {
      saw_packed = true;
      EXPECT_EQ(inst.packed_weights->config, record.config);
    }
  }
  EXPECT_TRUE(saw_packed);
}

TEST(BuildConsultation, ArtifactRoundTripPreservesTunedConfig) {
  TuningRecord record;
  record.workload = ConvWorkload();
  record.config = kernels::GemmConfig{4, 16, 128, 192, 2};
  record.trials = 1;
  auto db = std::make_shared<TuningDb>();
  db->Put(record);
  ActiveDbGuard guard(db);

  const relay::Module module = ConvDenseModule();
  const relay::CompiledModulePtr compiled = relay::Build(module);
  NDArray input = NDArray::RandomNormal(Shape({1, 3, 8, 8}), 9);
  relay::GraphExecutor exec(compiled);
  exec.SetInput("data", input);
  exec.Run();
  const NDArray expected = exec.GetOutput(0).CopyDeep();

  const std::string dir = TempDir("artifact");
  artifact::ArtifactStore store(dir);
  store.SaveModule("tuned", *compiled);
  const std::int64_t packs_before = kernels::TotalWeightPacks();
  const relay::CompiledModulePtr loaded = store.TryLoadModule("tuned");
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(kernels::TotalWeightPacks(), packs_before);  // zero repacks
  EXPECT_EQ(loaded->tuning_fingerprint, db->Fingerprint());
  for (const auto& inst : loaded->instructions) {
    if (inst.packed_weights != nullptr) {
      EXPECT_EQ(inst.packed_weights->config, record.config);
    }
  }
  relay::GraphExecutor loaded_exec(loaded);
  loaded_exec.SetInput("data", input);
  loaded_exec.Run();
  EXPECT_EQ(NDArray::MaxAbsDiff(loaded_exec.GetOutput(0), expected), 0.0);
}

}  // namespace
}  // namespace tune
}  // namespace tnp
