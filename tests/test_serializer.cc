// Module serialization (the Section 4.5 export/deploy path): structural
// round trips, output equivalence after reload, malformed-artifact errors.
#include <gtest/gtest.h>

#include <sstream>

#include "core/flows.h"
#include "core/nir.h"
#include "frontend/common.h"
#include "relay/printer.h"
#include "relay/serializer.h"
#include "relay/visitor.h"
#include "zoo/zoo.h"

namespace tnp {
namespace relay {
namespace {

Module RoundTrip(const Module& module) {
  std::stringstream buffer;
  SaveModule(module, buffer);
  return LoadModule(buffer);
}

TEST(Serializer, PrinterStableUnderRoundTrip) {
  zoo::ZooOptions options;
  options.image_size = 32;
  options.width = 0.25;
  const Module module = InferType().Run(zoo::Build("mobilenet_v2", options));
  const Module loaded = RoundTrip(module);
  EXPECT_EQ(PrintModule(module), PrintModule(loaded));
}

TEST(Serializer, OutputsIdenticalAfterReload) {
  zoo::ZooOptions options;
  options.image_size = 32;
  options.width = 0.25;
  options.depth = 0.3;
  for (const char* name : {"mobilenet_v1", "deepixbis", "mobilenet_v1_quant"}) {
    const Module module = zoo::Build(name, options);
    const Module loaded = RoundTrip(module);

    NDArray input = NDArray::RandomNormal(Shape({1, 3, 32, 32}), 3, 0.4f);
    const auto run = [&input](const Module& m) {
      const auto session = core::CompileFlow(m, core::FlowKind::kTvmOnly);
      for (const char* in : {"input", "x", "t0"}) {
        try {
          session->SetInput(in, input);
          break;
        } catch (const Error&) {
        }
      }
      session->Run();
      return session->GetOutput(0);
    };
    EXPECT_TRUE(NDArray::BitEqual(run(module), run(loaded))) << name;
  }
}

TEST(Serializer, PartitionedModuleSurvives) {
  // The deploy flow: partition on the "server", export, reload, execute.
  zoo::ZooOptions options;
  options.image_size = 32;
  options.width = 0.25;
  options.depth = 0.3;
  const Module module = zoo::Build("deepixbis", options);
  const Module partitioned = core::PartitionForNir(module, core::NirOptions{});
  const Module loaded = RoundTrip(partitioned);
  // External functions and their Compiler attributes survive.
  EXPECT_EQ(loaded.ExternalFunctions("nir").size(),
            partitioned.ExternalFunctions("nir").size());

  NDArray input = NDArray::RandomNormal(Shape({1, 3, 32, 32}), 5, 0.4f);
  core::NirOptions nir_options;
  GraphExecutor a(Build(partitioned, core::MakeBuildOptions(nir_options)));
  GraphExecutor b(Build(loaded, core::MakeBuildOptions(nir_options)));
  a.SetInput("x", input);
  b.SetInput("x", input);
  a.Run();
  b.Run();
  EXPECT_TRUE(NDArray::BitEqual(a.GetOutput(0), b.GetOutput(0)));
  EXPECT_DOUBLE_EQ(a.last_clock().total_us(), b.last_clock().total_us());
}

TEST(Serializer, FusedPrimitiveFunctionsSurvive) {
  using frontend::TypedCall;
  auto x = frontend::TypedVar("x", Shape({1, 3, 8, 8}), DType::kFloat32);
  auto conv = TypedCall("nn.conv2d",
                        {x, frontend::WeightF32(Shape({4, 3, 3, 3}), 1),
                         frontend::ZeroBiasF32(4)},
                        Attrs().SetInts("padding", {1, 1}));
  auto relu = TypedCall("nn.relu", {conv});
  Module module(MakeFunction({x}, relu));
  module = Sequential({InferType(), FuseOps()}).Run(module);
  ASSERT_EQ(As<Call>(module.main()->body())->callee_kind(), CalleeKind::kFunction);

  const Module loaded = RoundTrip(module);
  const auto body = As<Call>(loaded.main()->body());
  ASSERT_EQ(body->callee_kind(), CalleeKind::kFunction);
  EXPECT_TRUE(body->fn()->IsPrimitive());
}

TEST(Serializer, QuantMetadataSurvives) {
  NDArray weights = NDArray::RandomInt8(Shape({4, 4}), 9);
  weights.set_quant(QuantParams(0.125f, -3));
  auto x = frontend::TypedVar("x", Shape({1, 4}), DType::kFloat32);
  Module module(MakeFunction(
      {x}, frontend::TypedCall("add", {x, frontend::WeightF32(Shape({1, 4}), 2)})));
  module.Add("holder",
             MakeFunction({}, MakeConstant(weights)));
  const Module loaded = RoundTrip(module);
  const auto holder = loaded.Get("holder");
  const auto constant = As<Constant>(holder->body());
  EXPECT_EQ(constant->data().quant(), QuantParams(0.125f, -3));
  EXPECT_TRUE(NDArray::BitEqual(constant->data(), weights));
}

TEST(Serializer, SharedSubgraphsStayShared) {
  auto x = frontend::TypedVar("x", Shape({1, 4}), DType::kFloat32);
  auto shared = frontend::TypedCall("nn.relu", {x});
  auto sum = frontend::TypedCall("add", {shared, shared});
  const Module loaded = RoundTrip(Module(MakeFunction({x}, sum)));
  const auto body = As<Call>(loaded.main()->body());
  EXPECT_EQ(body->args()[0], body->args()[1]);  // pointer-equal after reload
}

TEST(Serializer, FileRoundTrip) {
  auto x = frontend::TypedVar("x", Shape({1, 4}), DType::kFloat32);
  Module module(MakeFunction({x}, frontend::TypedCall("tanh", {x})));
  const std::string path = "/tmp/tnp_serializer_test.tnpm";
  SaveModuleToFile(module, path);
  const Module loaded = LoadModuleFromFile(path);
  EXPECT_EQ(PrintModule(InferType().Run(module)), PrintModule(loaded));
  EXPECT_THROW(LoadModuleFromFile("/tmp/does_not_exist.tnpm"), Error);
}

TEST(Serializer, MalformedArtifactsRejected) {
  // Bad magic.
  std::stringstream bad_magic(std::string("\x00\x00\x00\x00garbage", 11));
  EXPECT_THROW(LoadModule(bad_magic), Error);

  // Truncated stream: valid prefix, cut in the middle.
  auto x = frontend::TypedVar("x", Shape({1, 4}), DType::kFloat32);
  Module module(MakeFunction({x}, frontend::TypedCall("nn.relu", {x})));
  std::stringstream full;
  SaveModule(module, full);
  const std::string bytes = full.str();
  std::stringstream truncated(bytes.substr(0, bytes.size() / 2));
  EXPECT_THROW(LoadModule(truncated), Error);

  // Wrong version.
  std::string versioned = bytes;
  versioned[4] = 99;
  std::stringstream wrong_version(versioned);
  EXPECT_THROW(LoadModule(wrong_version), Error);
}

TEST(Serializer, EveryZooModelRoundTrips) {
  zoo::ZooOptions options;
  options.image_size = 32;
  options.width = 0.25;
  options.depth = 0.3;
  for (const auto& info : zoo::AllModels()) {
    zoo::ZooOptions o = options;
    if (info.name == "emotion_cnn") o.image_size = 48;
    if (info.name == "yolov3_tiny" || info.name == "nasnet") o.image_size = 64;
    const Module module = InferType().Run(zoo::Build(info.name, o));
    const Module loaded = RoundTrip(module);
    EXPECT_EQ(PrintModule(module), PrintModule(loaded)) << info.name;
  }
}

}  // namespace
}  // namespace relay
}  // namespace tnp
