// BYOC partitioning: region structure, convexity, multi-output extraction,
// and a randomized property test asserting that partitioning never changes
// program semantics.
#include <gtest/gtest.h>

#include <cmath>

#include "frontend/common.h"
#include "relay/byoc_partition.h"
#include "relay/interpreter.h"
#include "relay/pass.h"
#include "relay/visitor.h"
#include "support/rng.h"

namespace tnp {
namespace relay {
namespace {

using frontend::TypedCall;
using frontend::TypedVar;
using frontend::WeightF32;
using frontend::ZeroBiasF32;

/// Predicate used by most tests: everything except `sigmoid` is supported.
bool AllButSigmoid(const Call& call) {
  return call.callee_kind() == CalleeKind::kOp && call.op_name() != "sigmoid";
}

Module SimpleChainModule() {
  auto x = TypedVar("x", Shape({1, 4}), DType::kFloat32);
  auto a = TypedCall("nn.relu", {x});
  auto b = TypedCall("sigmoid", {a});
  auto c = TypedCall("tanh", {b});
  return Module(MakeFunction({x}, c));
}

int NumExternal(const Module& module) {
  return static_cast<int>(module.ExternalFunctions("nir").size());
}

TEST(Partition, ChainSplitsAroundUnsupported) {
  Module module = InferType().Run(SimpleChainModule());
  const Module partitioned = PartitionGraph(module, "nir", AllButSigmoid);
  // relu and tanh each form a region; sigmoid stays hosted.
  EXPECT_EQ(NumExternal(partitioned), 2);
  EXPECT_EQ(CountCalls(partitioned.main()->body(), "sigmoid"), 1);
  EXPECT_EQ(CountCalls(partitioned.main()->body(), "nn.relu"), 0);
}

TEST(Partition, FullySupportedIsOneRegion) {
  auto x = TypedVar("x", Shape({1, 4}), DType::kFloat32);
  auto a = TypedCall("nn.relu", {x});
  auto b = TypedCall("tanh", {a});
  Module module = InferType().Run(Module(MakeFunction({x}, b)));
  const Module partitioned =
      PartitionGraph(module, "nir", [](const Call&) { return true; });
  EXPECT_EQ(NumExternal(partitioned), 1);
  // Main body is just the external call.
  const auto body = As<Call>(partitioned.main()->body());
  EXPECT_EQ(body->callee_kind(), CalleeKind::kGlobal);
}

TEST(Partition, NothingSupportedNoChange) {
  Module module = InferType().Run(SimpleChainModule());
  const Module partitioned =
      PartitionGraph(module, "nir", [](const Call&) { return false; });
  EXPECT_EQ(NumExternal(partitioned), 0);
}

TEST(Partition, DiamondStaysOneRegion) {
  // x -> relu -> {tanh, exp} -> add : all supported, must be ONE region
  // (merging both branches is convex).
  auto x = TypedVar("x", Shape({1, 4}), DType::kFloat32);
  auto r = TypedCall("nn.relu", {x});
  auto t = TypedCall("tanh", {r});
  auto e = TypedCall("exp", {r});
  auto sum = TypedCall("add", {t, e});
  Module module = InferType().Run(Module(MakeFunction({x}, sum)));
  const Module partitioned = PartitionGraph(module, "nir", AllButSigmoid);
  EXPECT_EQ(NumExternal(partitioned), 1);
}

TEST(Partition, ConvexityPreventsCycle) {
  // r -> sigmoid(host) -> add(r, .): merging add with r's region would
  // create a region the host sigmoid both depends on and feeds.
  auto x = TypedVar("x", Shape({1, 4}), DType::kFloat32);
  auto r = TypedCall("nn.relu", {x});
  auto s = TypedCall("sigmoid", {r});
  auto sum = TypedCall("add", {r, s});
  Module module = InferType().Run(Module(MakeFunction({x}, sum)));
  const RegionAssignment regions = AnnotateAndMergeRegions(module.main(), AllButSigmoid);
  EXPECT_EQ(regions.num_regions, 2);
  EXPECT_NE(regions.RegionOf(r.get()), regions.RegionOf(sum.get()));
  // And the partitioned module still builds + runs (no cyclic call graph).
  const Module partitioned = PartitionGraph(module, "nir", AllButSigmoid);
  EXPECT_EQ(NumExternal(partitioned), 2);
}

TEST(Partition, MultiOutputRegionReturnsTuple) {
  // Region output consumed twice outside: relu feeds host sigmoid AND is
  // part of the final add -> region has one output used by two consumers;
  // a second region output appears when two distinct nodes escape.
  auto x = TypedVar("x", Shape({1, 4}), DType::kFloat32);
  auto r1 = TypedCall("nn.relu", {x});
  auto r2 = TypedCall("tanh", {r1});
  auto host1 = TypedCall("sigmoid", {r1});
  auto host2 = TypedCall("sigmoid", {r2});
  auto sum = TypedCall("add", {host1, host2});
  Module module = InferType().Run(Module(MakeFunction({x}, sum)));
  const Module partitioned = PartitionGraph(module, "nir", AllButSigmoid);
  // Two regions: {relu, tanh} (its outputs both escape to host sigmoids)
  // and {add} downstream of them.
  ASSERT_EQ(NumExternal(partitioned), 2);
  bool found_tuple_region = false;
  for (const auto& name : partitioned.ExternalFunctions("nir")) {
    if (partitioned.Get(name)->body()->kind() == ExprKind::kTuple) found_tuple_region = true;
  }
  EXPECT_TRUE(found_tuple_region) << "multi-output region should return a tuple";
}

TEST(Partition, ConstantsEmbeddedNotParams) {
  auto x = TypedVar("x", Shape({1, 3, 8, 8}), DType::kFloat32);
  auto conv = TypedCall("nn.conv2d", {x, WeightF32(Shape({4, 3, 3, 3}), 1), ZeroBiasF32(4)},
                        Attrs().SetInts("padding", {1, 1}));
  Module module = InferType().Run(Module(MakeFunction({x}, conv)));
  const Module partitioned = PartitionGraph(module, "nir", AllButSigmoid);
  ASSERT_EQ(NumExternal(partitioned), 1);
  const FunctionPtr region = partitioned.Get(partitioned.ExternalFunctions("nir")[0]);
  EXPECT_EQ(region->params().size(), 1u);  // only x; weights embedded
  EXPECT_EQ(region->attrs().GetString(kAttrCompiler, ""), "nir");
  EXPECT_FALSE(region->attrs().GetString(kAttrGlobalSymbol, "").empty());
}

TEST(Partition, TupleAbsorbedWithConcat) {
  auto x = TypedVar("x", Shape({1, 2, 4, 4}), DType::kFloat32);
  auto a = TypedCall("nn.relu", {x});
  auto b = TypedCall("tanh", {x});
  auto cat = TypedCall("concatenate", {frontend::TypedTuple({a, b})},
                       Attrs().SetInt("axis", 1));
  Module module = InferType().Run(Module(MakeFunction({x}, cat)));
  const Module partitioned = PartitionGraph(module, "nir", AllButSigmoid);
  // Everything (including the tuple) is one region.
  EXPECT_EQ(NumExternal(partitioned), 1);
}

TEST(Partition, RequiresInferredTypes) {
  Module module = SimpleChainModule();
  // Wipe cached types by rebuilding an untyped clone.
  auto x = MakeVar("y", Type::Tensor(Shape({1, 4}), DType::kFloat32));
  Module untyped(MakeFunction({x}, MakeCall("nn.relu", {x})));
  EXPECT_THROW(PartitionGraph(untyped, "nir", AllButSigmoid), InternalError);
}

// ------------------------- randomized property test -------------------------

/// Random DAG of unary/binary float ops (some NIR-supported, some not).
/// Property: partitioned module evaluates identically to the original.
class PartitionProperty : public ::testing::TestWithParam<int> {};

TEST_P(PartitionProperty, SemanticsPreserved) {
  support::SplitMix64 rng(static_cast<std::uint64_t>(GetParam()));
  auto x = TypedVar("x", Shape({1, 8}), DType::kFloat32);

  std::vector<ExprPtr> pool = {x};
  const char* unary_ops[] = {"nn.relu", "tanh", "sigmoid", "exp", "nn.leaky_relu"};
  const int num_nodes = 12 + static_cast<int>(rng.UniformInt(0, 10));
  for (int i = 0; i < num_nodes; ++i) {
    const ExprPtr pick_a = pool[static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(pool.size()) - 1))];
    if (rng.Uniform() < 0.6) {
      const char* op = unary_ops[rng.UniformInt(0, 4)];
      Attrs attrs;
      if (std::string(op) == "nn.leaky_relu") attrs.SetDouble("alpha", 0.1);
      pool.push_back(TypedCall(op, {pick_a}, attrs));
    } else {
      const ExprPtr pick_b = pool[static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(pool.size()) - 1))];
      pool.push_back(TypedCall(rng.Uniform() < 0.5 ? "add" : "multiply", {pick_a, pick_b}));
    }
  }
  // Combine a few leaves into the final output so the DAG has one root.
  ExprPtr root = pool.back();
  root = TypedCall("add", {root, pool[pool.size() / 2]});
  Module module = InferType().Run(Module(MakeFunction({x}, root)));

  // Supported = everything except sigmoid and leaky_relu (mirrors how the
  // real Neuron matrix excludes some activations).
  const SupportPredicate pred = [](const Call& call) {
    return call.op_name() != "sigmoid" && call.op_name() != "nn.leaky_relu";
  };

  NDArray input = NDArray::RandomNormal(Shape({1, 8}), 1000 + GetParam(), 0.7f);
  Environment env;
  env[module.main()->params()[0].get()] = Value(input);
  const Value expected = EvalExpr(module.main()->body(), env);

  const Module partitioned = PartitionGraph(module, "nir", pred);

  // Every supported call must live inside a region; no supported op remains
  // in main.
  for (const auto& node : PostOrder(partitioned.main()->body())) {
    if (node->kind() != ExprKind::kCall) continue;
    const auto call = std::static_pointer_cast<Call>(node);
    if (call->callee_kind() != CalleeKind::kOp) continue;
    EXPECT_FALSE(pred(*call)) << "supported op '" << call->op_name() << "' left in main";
  }

  // Evaluate the partitioned module by inlining the global functions.
  struct Inliner : ExprMutator {
    const Module* module = nullptr;
    ExprPtr RewriteCall(const CallPtr& call) override {
      if (call->callee_kind() != CalleeKind::kGlobal) return call;
      const FunctionPtr callee = module->Get(call->op_name());
      return MakeFunctionCall(MakeFunction(callee->params(), callee->body()), call->args());
    }
  };
  Inliner inliner;
  inliner.module = &partitioned;
  const ExprPtr inlined = inliner.Mutate(partitioned.main()->body());
  Environment env2;
  env2[partitioned.main()->params()[0].get()] = Value(input);
  const Value actual = EvalExpr(inlined, env2);

  EXPECT_TRUE(NDArray::BitEqual(expected.AsTensor(), actual.AsTensor()))
      << "partitioning changed program semantics (seed " << GetParam() << ")";
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionProperty, ::testing::Range(0, 24));

}  // namespace
}  // namespace relay
}  // namespace tnp
