// Hostile-input and concurrency coverage for the debug HTTP listener:
// malformed request lines, oversized heads, slow-loris partial sends,
// abrupt disconnects, and many concurrent clients hammering every endpoint
// while the responses must stay well-formed (run under TSan in CI).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/attribution.h"
#include "serve/health.h"
#include "support/debug_http.h"
#include "support/json.h"

namespace tnp {
namespace support {
namespace {

/// Raw loopback socket for speaking deliberately broken HTTP. -1 on failure.
int RawConnect(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  timeval timeout{};
  timeout.tv_sec = 5;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
  return fd;
}

void RawSend(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return;
    sent += static_cast<std::size_t>(n);
  }
}

std::string RawRecvAll(int fd) {
  std::string raw;
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    raw.append(buffer, static_cast<std::size_t>(n));
  }
  return raw;
}

/// Send `wire` verbatim and return the status code of whatever came back
/// (0 when the server sent nothing).
int RawRoundTrip(int port, const std::string& wire) {
  const int fd = RawConnect(port);
  if (fd < 0) return -1;
  RawSend(fd, wire);
  ::shutdown(fd, SHUT_WR);  // EOF ends ReadRequestHead without the timeout
  const std::string raw = RawRecvAll(fd);
  ::close(fd);
  const std::size_t space = raw.find(' ');
  if (space == std::string::npos) return 0;
  return std::atoi(raw.c_str() + space + 1);
}

class DebugHttpHostileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    RegisterSupportEndpoints(server_);
    serve::attribution::RegisterAttributionEndpoints(server_);
    monitor_ = std::make_unique<serve::HealthMonitor>(serve::HealthOptions{});
    monitor_->RegisterWith(server_);
    server_.Start(0);
  }
  void TearDown() override { server_.Stop(); }

  DebugHttpServer server_;
  std::unique_ptr<serve::HealthMonitor> monitor_;
};

TEST_F(DebugHttpHostileTest, MalformedRequestLinesGet400) {
  EXPECT_EQ(RawRoundTrip(server_.port(), "GARBAGE\r\n\r\n"), 400);
  EXPECT_EQ(RawRoundTrip(server_.port(), "GET\r\n\r\n"), 400);
  EXPECT_EQ(RawRoundTrip(server_.port(), "GET  \r\n\r\n"), 400);
  EXPECT_EQ(RawRoundTrip(server_.port(), "GET metrics HTTP/1.0\r\n\r\n"), 400);
  EXPECT_EQ(RawRoundTrip(server_.port(), "\r\n\r\n"), 400);
  // NUL bytes inside the request line must never crash; the embedded NUL
  // makes the target not start with '/', so it is rejected like any junk.
  EXPECT_EQ(RawRoundTrip(server_.port(),
                         std::string("GET \0/metrics\0 HTTP/1.0\r\n\r\n", 27)),
            400);
}

TEST_F(DebugHttpHostileTest, NonGetMethodsGet405) {
  EXPECT_EQ(RawRoundTrip(server_.port(), "POST /metrics HTTP/1.0\r\n\r\n"), 405);
  EXPECT_EQ(RawRoundTrip(server_.port(), "DELETE / HTTP/1.0\r\n\r\n"), 405);
}

TEST_F(DebugHttpHostileTest, UnknownPathGets404WithEndpointIndex) {
  const HttpResult result = HttpGet(server_.port(), "/nope");
  EXPECT_EQ(result.status, 404);
  EXPECT_NE(result.body.find("/metrics"), std::string::npos);
  EXPECT_NE(result.body.find("/profilez"), std::string::npos);
  EXPECT_NE(result.body.find("/attribution"), std::string::npos);
}

TEST_F(DebugHttpHostileTest, OversizedHeadIsBoundedAndAnswered) {
  // 64 KiB of junk with no terminator: the reader caps at 8 KiB and the
  // parser answers 400 instead of buffering forever. The server may close
  // with unread bytes pending (an RST can eat the reply), so accept a lost
  // response — what matters is that the next client is served normally.
  const std::string junk(64 * 1024, 'A');
  const int junk_status = RawRoundTrip(server_.port(), junk);
  EXPECT_TRUE(junk_status == 400 || junk_status == 0) << junk_status;
  EXPECT_EQ(HttpGet(server_.port(), "/metrics").status, 200);

  // A valid GET whose header block balloons past the cap still parses from
  // the first line (the cap truncates headers, not the request line).
  std::string oversized = "GET /metrics HTTP/1.0\r\n";
  for (int i = 0; i < 600; ++i) {
    oversized += "X-Padding-" + std::to_string(i) + ": " + std::string(64, 'x') +
                 "\r\n";
  }
  oversized += "\r\n";
  const int oversized_status = RawRoundTrip(server_.port(), oversized);
  EXPECT_TRUE(oversized_status == 200 || oversized_status == 0)
      << oversized_status;
  EXPECT_EQ(HttpGet(server_.port(), "/metrics").status, 200);
}

TEST_F(DebugHttpHostileTest, SlowLorisPartialSendCannotWedgeTheServer) {
  // Hold a connection open mid-request-line; the server must keep answering
  // everyone else while the loris dribbles.
  const int loris = RawConnect(server_.port());
  ASSERT_GE(loris, 0);
  RawSend(loris, "GET /metr");

  for (int i = 0; i < 8; ++i) {
    const HttpResult result = HttpGet(server_.port(), "/metrics");
    EXPECT_EQ(result.status, 200) << result.error;
  }

  // Closing the write side ends the head read; the truncated line gets 400.
  ::shutdown(loris, SHUT_WR);
  const std::string raw = RawRecvAll(loris);
  ::close(loris);
  EXPECT_NE(raw.find("400"), std::string::npos);
}

TEST_F(DebugHttpHostileTest, ImmediateDisconnectLeavesServerHealthy) {
  for (int i = 0; i < 16; ++i) {
    const int fd = RawConnect(server_.port());
    ASSERT_GE(fd, 0);
    ::close(fd);  // no bytes at all
  }
  EXPECT_EQ(HttpGet(server_.port(), "/metrics").status, 200);
}

TEST_F(DebugHttpHostileTest, ConcurrentClientsAcrossAllEndpointsStayValid) {
  const std::vector<std::string> json_paths = {"/timeseries", "/flightrecord",
                                               "/profilez", "/attribution",
                                               "/healthz"};
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(8);
  for (int t = 0; t < 8; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < 12; ++i) {
        const std::string& path = json_paths[(t + i) % json_paths.size()];
        const HttpResult result = HttpGet(server_.port(), path);
        if (result.status != 200) {
          ++failures;
          continue;
        }
        JsonValue parsed;
        std::string error;
        if (!JsonValue::TryParse(result.body, &parsed, &error)) ++failures;
      }
      // Interleave the two non-JSON surfaces and some hostility.
      if (HttpGet(server_.port(), "/metrics").status != 200) ++failures;
      if (HttpGet(server_.port(), "/profilez?format=folded").status != 200) {
        ++failures;
      }
      RawRoundTrip(server_.port(), "BROKEN\r\n\r\n");
    });
  }
  for (auto& client : clients) client.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace support
}  // namespace tnp
