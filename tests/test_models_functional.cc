// The hand-weighted functional models: anti-spoofing separates real from
// spoof faces, the emotion matched-filter bank recovers all 7 emotions,
// both with ground-truth and with detector-localized crops, and both
// produce identical outputs through every supported flow.
#include <gtest/gtest.h>

#include "core/flows.h"
#include "vision/detector.h"
#include "vision/image.h"
#include "vision/models.h"
#include "vision/scene.h"

namespace tnp {
namespace vision {
namespace {

NDArray RenderedFaceCrop(Emotion emotion, bool spoof, double face_size,
                         std::uint64_t seed) {
  Scene scene;
  scene.width = 160;
  scene.height = 160;
  Person person;
  person.face = Box{40.0 + (seed % 7), 40.0 + (seed % 5), face_size, face_size};
  person.body = Box{30, 90, 80, 60};
  person.spoof = spoof;
  person.emotion = emotion;
  scene.persons.push_back(person);
  const NDArray frame = RenderFrame(scene, static_cast<int>(seed));
  return FaceCrop48(frame, person.face);
}

core::InferenceSessionPtr AntiSpoofSession() {
  static core::InferenceSessionPtr session =
      core::CompileFlow(AntiSpoofFunctionalModule(), core::FlowKind::kByocCpuApu);
  return session;
}

core::InferenceSessionPtr EmotionSession() {
  static core::InferenceSessionPtr session =
      core::CompileFlow(EmotionFunctionalModule(), core::FlowKind::kNpApu);
  return session;
}

struct FaceCase {
  int emotion;
  double size;
};

class AntiSpoofSweep : public ::testing::TestWithParam<FaceCase> {};

TEST_P(AntiSpoofSweep, SeparatesRealFromSpoof) {
  const FaceCase c = GetParam();
  const auto session = AntiSpoofSession();

  const NDArray real = RenderedFaceCrop(static_cast<Emotion>(c.emotion), false, c.size, 3);
  session->SetInput("face", real);
  session->Run();
  const float real_score = session->GetOutput(0).Data<float>()[0];
  EXPECT_GT(real_score, 0.5f) << "real face misclassified (size " << c.size << ")";

  const NDArray spoof = RenderedFaceCrop(static_cast<Emotion>(c.emotion), true, c.size, 3);
  session->SetInput("face", spoof);
  session->Run();
  const float spoof_score = session->GetOutput(0).Data<float>()[0];
  EXPECT_LT(spoof_score, 0.5f) << "spoof face misclassified (size " << c.size << ")";
  EXPECT_TRUE(IsSpoof(session->GetOutput(0)));
}

class EmotionSweep : public ::testing::TestWithParam<FaceCase> {};

TEST_P(EmotionSweep, RecoversEmotion) {
  const FaceCase c = GetParam();
  const auto session = EmotionSession();
  const NDArray crop = RenderedFaceCrop(static_cast<Emotion>(c.emotion), false, c.size, 5);
  session->SetInput("face", crop);
  session->Run();
  const NDArray probs = session->GetOutput(0);
  EXPECT_EQ(ArgmaxEmotion(probs), c.emotion) << "size " << c.size;
  // Decisive: the winning probability dominates.
  EXPECT_GT(probs.Data<float>()[c.emotion], 0.8f);
}

std::vector<FaceCase> AllCases() {
  std::vector<FaceCase> cases;
  for (int emotion = 0; emotion < kNumEmotions; ++emotion) {
    for (const double size : {36.0, 44.0, 52.0}) {
      cases.push_back(FaceCase{emotion, size});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(EmotionsAndSizes, AntiSpoofSweep, ::testing::ValuesIn(AllCases()));
INSTANTIATE_TEST_SUITE_P(EmotionsAndSizes, EmotionSweep, ::testing::ValuesIn(AllCases()));

TEST(FunctionalModels, WorkWithDetectorBoxes) {
  // End-to-end: detector-localized (not ground-truth) crops still classify.
  const Scene scene = Scene::Random(320, 240, 4, 0, 21);
  const NDArray frame = RenderFrame(scene, 0);
  const auto faces = DetectFaces(frame);
  int checked = 0;
  for (const auto& detection : faces) {
    const Person* match = nullptr;
    for (const auto& person : scene.persons) {
      if (IoU(detection.box, person.face) > 0.5) match = &person;
    }
    if (match == nullptr) continue;
    ++checked;
    const NDArray crop = FaceCrop48(frame, detection.box);
    const auto anti = AntiSpoofSession();
    anti->SetInput("face", crop);
    anti->Run();
    EXPECT_EQ(IsSpoof(anti->GetOutput(0)), match->spoof);
    if (!match->spoof) {
      const auto emo = EmotionSession();
      emo->SetInput("face", crop);
      emo->Run();
      EXPECT_EQ(ArgmaxEmotion(emo->GetOutput(0)), static_cast<int>(match->emotion));
    }
  }
  EXPECT_GE(checked, 3);
}

TEST(FunctionalModels, AntiSpoofConsistentAcrossFlows) {
  // sigmoid keeps NP-only flows unsupported; all others agree bitwise.
  const relay::Module module = AntiSpoofFunctionalModule();
  const NDArray crop = RenderedFaceCrop(Emotion::kHappy, false, 44, 1);
  NDArray reference;
  int supported = 0;
  for (const core::FlowKind flow : core::kAllFlows) {
    std::string error;
    const auto session = core::TryCompileFlow(module, flow, &error);
    if (session == nullptr) {
      EXPECT_NE(error.find("sigmoid"), std::string::npos) << core::FlowName(flow);
      continue;
    }
    ++supported;
    session->SetInput("face", crop);
    session->Run();
    if (!reference.defined()) {
      reference = session->GetOutput(0);
    } else {
      EXPECT_TRUE(NDArray::BitEqual(reference, session->GetOutput(0)))
          << core::FlowName(flow);
    }
  }
  EXPECT_EQ(supported, 4);  // TVM-only + 3 BYOC
}

TEST(FunctionalModels, EmotionSupportedOnAllSevenFlows) {
  // The emotion model maps fully onto Neuron (no sigmoid/tanh), so even the
  // NeuroPilot-only APU flow compiles — mirroring the paper's observation
  // that the emotion model is most efficient on the APU alone.
  const relay::Module module = EmotionFunctionalModule();
  for (const core::FlowKind flow : core::kAllFlows) {
    std::string error;
    EXPECT_NE(core::TryCompileFlow(module, flow, &error), nullptr)
        << core::FlowName(flow) << ": " << error;
  }
}

TEST(FunctionalModels, AntiSpoofSplitsIntoMultipleSubgraphs) {
  const auto session =
      core::CompileFlow(AntiSpoofFunctionalModule(), core::FlowKind::kByocCpuApu);
  EXPECT_GE(session->NumPartitions(), 1);
  EXPECT_GT(session->NumExternalOps(), 2);
}

TEST(FunctionalModels, ArgmaxHelperValidation) {
  NDArray probs = NDArray::Zeros(Shape({1, kNumEmotions}), DType::kFloat32);
  probs.Data<float>()[4] = 1.0f;
  EXPECT_EQ(ArgmaxEmotion(probs), 4);
  EXPECT_THROW(ArgmaxEmotion(NDArray::Zeros(Shape({1, 3}), DType::kFloat32)), InternalError);
}

}  // namespace
}  // namespace vision
}  // namespace tnp
