// Framework frontends: each textual format parses to the expected Relay
// structure; malformed inputs produce ParseErrors with location info.
#include <gtest/gtest.h>

#include "frontend/frontend.h"
#include "relay/build.h"
#include "relay/visitor.h"

namespace tnp {
namespace frontend {
namespace {

using relay::CountCalls;
using relay::Module;

// ----------------------------------------------------------------- keras

constexpr const char* kTinyKeras = R"(KERAS_MODEL v1
name: tiny
input: shape=1x1x12x12 dtype=float32
layer Conv2D filters=4 kernel=3x3 activation=relu seed=1
layer MaxPooling2D pool=2x2
layer Flatten
layer Dense units=3 activation=softmax seed=2
)";

TEST(KerasFrontend, ParsesSequentialModel) {
  const Module module = FromKeras(kTinyKeras);
  const auto& body = module.main()->body();
  EXPECT_EQ(CountCalls(body, "nn.conv2d"), 1);
  EXPECT_EQ(CountCalls(body, "nn.relu"), 1);
  EXPECT_EQ(CountCalls(body, "nn.max_pool2d"), 1);
  EXPECT_EQ(CountCalls(body, "nn.dense"), 1);
  EXPECT_EQ(CountCalls(body, "nn.softmax"), 1);
  EXPECT_EQ(module.main()->checked_type().AsTensor().shape, Shape({1, 3}));
}

TEST(KerasFrontend, RunsEndToEnd) {
  relay::GraphExecutor exec(relay::Build(FromKeras(kTinyKeras)));
  exec.SetInput("input", NDArray::RandomNormal(Shape({1, 1, 12, 12}), 3));
  exec.Run();
  double sum = 0;
  for (float v : exec.GetOutput(0).Span<float>()) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-5);  // softmax output
}

TEST(KerasFrontend, SamePadding) {
  const Module module = FromKeras(
      "KERAS_MODEL v1\ninput: shape=1x2x8x8 dtype=float32\n"
      "layer Conv2D filters=2 kernel=3x3 padding=same seed=1\n");
  EXPECT_EQ(module.main()->checked_type().AsTensor().shape, Shape({1, 2, 8, 8}));
}

TEST(KerasFrontend, DepthwiseAndBatchNorm) {
  const Module module = FromKeras(
      "KERAS_MODEL v1\ninput: shape=1x4x8x8 dtype=float32\n"
      "layer DepthwiseConv2D kernel=3x3 padding=same use_bias=0 seed=1\n"
      "layer BatchNormalization seed=2\n"
      "layer ReLU max_value=6\n");
  EXPECT_EQ(CountCalls(module.main()->body(), "nn.batch_norm"), 1);
  EXPECT_EQ(CountCalls(module.main()->body(), "clip"), 1);
  EXPECT_EQ(module.main()->checked_type().AsTensor().shape, Shape({1, 4, 8, 8}));
}

TEST(KerasFrontend, Errors) {
  EXPECT_THROW(FromKeras("WRONG_HEADER\n"), Error);
  EXPECT_THROW(FromKeras("KERAS_MODEL v1\nlayer Conv2D filters=2\n"), Error);  // no input
  EXPECT_THROW(FromKeras("KERAS_MODEL v1\ninput: shape=1x1x8x8\nlayer Blah\n"), Error);
  EXPECT_THROW(FromKeras("KERAS_MODEL v1\ninput: shape=1x1x8x8\n"
                         "layer Conv2D kernel=3x3\n"),
               Error);  // missing filters
  EXPECT_THROW(FromKeras("KERAS_MODEL v1\ninput: shape=1x1x8x8\n"
                         "layer Dense units=3\n"),
               Error);  // dense without flatten
  EXPECT_THROW(FromKeras("KERAS_MODEL v1\ninput: shape=1x1x8x8\n"
                         "layer Conv2D filters=2 kernel=4x4 padding=same\n"),
               Error);  // even kernel with same padding
}

// ----------------------------------------------------------- torchscript

constexpr const char* kTinyTorch = R"(TORCHSCRIPT_GRAPH v1
name: tiny
input %x : Float(1,2,8,8)
%1 = aten::conv2d(%x, weight<seed=1,shape=4x2x3x3>, bias<seed=2,shape=4>, stride=[1,1], padding=[1,1])
%2 = aten::relu(%1)
%3 = aten::adaptive_avg_pool2d(%2, output_size=[1,1])
%4 = aten::flatten(%3)
%5 = aten::linear(%4, weight<seed=3,shape=3x4>, bias<seed=4,shape=3>)
%6 = aten::softmax(%5, dim=-1)
return %6
)";

TEST(TorchFrontend, ParsesGraph) {
  const Module module = FromTorchScript(kTinyTorch);
  EXPECT_EQ(CountCalls(module.main()->body(), "nn.conv2d"), 1);
  EXPECT_EQ(CountCalls(module.main()->body(), "nn.global_avg_pool2d"), 1);
  EXPECT_EQ(module.main()->checked_type().AsTensor().shape, Shape({1, 3}));
}

TEST(TorchFrontend, CatAndTupleReturn) {
  const Module module = FromTorchScript(
      "TORCHSCRIPT_GRAPH v1\n"
      "input %x : Float(1,2,4,4)\n"
      "%1 = aten::relu(%x)\n"
      "%2 = aten::sigmoid(%x)\n"
      "%3 = aten::cat([%1, %2], dim=1)\n"
      "return (%3, %1)\n");
  ASSERT_TRUE(module.main()->checked_type().IsTuple());
  EXPECT_EQ(module.main()->checked_type().AsTuple()[0].AsTensor().shape,
            Shape({1, 4, 4, 4}));
}

TEST(TorchFrontend, SliceAndUpsample) {
  const Module module = FromTorchScript(
      "TORCHSCRIPT_GRAPH v1\n"
      "input %x : Float(1,4,8,8)\n"
      "%1 = aten::slice(%x, dim=1, start=0, end=2)\n"
      "%2 = aten::upsample_nearest2d(%1, scale_factor=2)\n"
      "return %2\n");
  EXPECT_EQ(module.main()->checked_type().AsTensor().shape, Shape({1, 2, 16, 16}));
}

TEST(TorchFrontend, Errors) {
  EXPECT_THROW(FromTorchScript("TORCHSCRIPT_GRAPH v1\nreturn %x\n"), Error);  // undefined
  EXPECT_THROW(FromTorchScript("TORCHSCRIPT_GRAPH v1\n"
                               "input %x : Float(1,2,4,4)\n"
                               "%1 = aten::nope(%x)\nreturn %1\n"),
               Error);
  EXPECT_THROW(FromTorchScript("TORCHSCRIPT_GRAPH v1\n"
                               "input %x : Int8(1,2,4,4)\nreturn %x\n"),
               Error);  // only Float inputs
  EXPECT_THROW(FromTorchScript("bad"), Error);
}

// ----------------------------------------------------------------- tflite

constexpr const char* kTinyTfliteQuant = R"(TFLITE_MODEL v1
name: tinyq
tensor 0 name=input shape=1x2x6x6 dtype=float32 kind=input
tensor 1 name=q0 shape=1x2x6x6 dtype=int8 scale=0.02 zero_point=0 kind=temp
tensor 2 name=w shape=3x2x3x3 dtype=int8 scale=0.01 zero_point=0 kind=const seed=5
tensor 3 name=b shape=3 dtype=int32 kind=const seed=6
tensor 4 name=c shape=1x3x6x6 dtype=int8 scale=0.05 zero_point=1 kind=temp
tensor 5 name=f shape=1x3x6x6 dtype=float32 kind=temp
op QUANTIZE inputs=0 outputs=1
op CONV_2D inputs=1,2,3 outputs=4 strides=1x1 padding=1x1
op DEQUANTIZE inputs=4 outputs=5
outputs 5
)";

TEST(TfliteFrontend, ParsesQuantModel) {
  const Module module = FromTflite(kTinyTfliteQuant);
  const auto& body = module.main()->body();
  EXPECT_EQ(CountCalls(body, "qnn.quantize"), 1);
  EXPECT_EQ(CountCalls(body, "qnn.conv2d"), 1);
  EXPECT_EQ(CountCalls(body, "qnn.dequantize"), 1);
  // Tensor-oriented quant params became operator attrs on the conv.
  for (const auto& node : relay::PostOrder(body)) {
    if (relay::IsCallTo(node, "qnn.conv2d")) {
      const auto call = relay::As<relay::Call>(node);
      EXPECT_NEAR(call->attrs().GetDouble("input_scale", 0), 0.02, 1e-6);
      EXPECT_NEAR(call->attrs().GetDouble("output_scale", 0), 0.05, 1e-6);
      EXPECT_EQ(call->attrs().GetInt("output_zero_point", 99), 1);
    }
  }
}

TEST(TfliteFrontend, RunsQuantModel) {
  relay::GraphExecutor exec(relay::Build(FromTflite(kTinyTfliteQuant)));
  exec.SetInput("input", NDArray::RandomNormal(Shape({1, 2, 6, 6}), 4, 0.5f));
  exec.Run();
  EXPECT_EQ(exec.GetOutput(0).dtype(), DType::kFloat32);
}

TEST(TfliteFrontend, DeclaredShapeMismatchThrows) {
  const std::string bad = R"(TFLITE_MODEL v1
tensor 0 name=input shape=1x2x6x6 dtype=float32 kind=input
tensor 1 name=w shape=3x2x3x3 dtype=float32 kind=const seed=1
tensor 2 name=o shape=1x3x6x6 dtype=float32 kind=temp
op CONV_2D inputs=0,1 outputs=2 strides=1x1 padding=0x0
outputs 2
)";
  EXPECT_THROW(FromTflite(bad), Error);
}

TEST(TfliteFrontend, Errors) {
  EXPECT_THROW(FromTflite("TFLITE_MODEL v1\ntensor 5 name=x shape=1 dtype=float32 kind=temp\n"),
               Error);  // ids must be sequential
  EXPECT_THROW(FromTflite("TFLITE_MODEL v1\noutputs 0\n"), Error);  // no tensors
  EXPECT_THROW(FromTflite("nope"), Error);
}

// ---------------------------------------------------------------- darknet

constexpr const char* kTinyDarknet = R"(DARKNET_CFG v1
[net]
width=16
height=16
channels=3

[convolutional]
batch_normalize=1
filters=4
size=3
stride=1
pad=1
activation=leaky
seed=7

[maxpool]
size=2
stride=2

[convolutional]
filters=8
size=1
stride=1
pad=0
activation=linear
seed=8

[avgpool]

[connected]
output=5
activation=linear
seed=9

[softmax]
)";

TEST(DarknetFrontend, ParsesCfg) {
  const Module module = FromDarknet(kTinyDarknet);
  const auto& body = module.main()->body();
  EXPECT_EQ(CountCalls(body, "nn.conv2d"), 2);
  EXPECT_EQ(CountCalls(body, "nn.leaky_relu"), 1);
  EXPECT_EQ(CountCalls(body, "nn.batch_norm"), 1);
  EXPECT_EQ(module.main()->checked_type().AsTensor().shape, Shape({1, 5}));
}

TEST(DarknetFrontend, RouteConcat) {
  const Module module = FromDarknet(
      "DARKNET_CFG v1\n[net]\nwidth=8\nheight=8\nchannels=2\n"
      "[convolutional]\nfilters=2\nsize=3\nstride=1\npad=1\nactivation=linear\nseed=1\n"
      "[convolutional]\nfilters=3\nsize=3\nstride=1\npad=1\nactivation=linear\nseed=2\n"
      "[route]\nlayers=-1,0\n");
  EXPECT_EQ(module.main()->checked_type().AsTensor().shape, Shape({1, 5, 8, 8}));
}

TEST(DarknetFrontend, Shortcut) {
  const Module module = FromDarknet(
      "DARKNET_CFG v1\n[net]\nwidth=8\nheight=8\nchannels=2\n"
      "[convolutional]\nfilters=4\nsize=3\nstride=1\npad=1\nactivation=linear\nseed=1\n"
      "[convolutional]\nfilters=4\nsize=3\nstride=1\npad=1\nactivation=linear\nseed=2\n"
      "[shortcut]\nfrom=0\nactivation=relu\n");
  EXPECT_EQ(CountCalls(module.main()->body(), "add"), 1);
  EXPECT_EQ(CountCalls(module.main()->body(), "nn.relu"), 1);
}

TEST(DarknetFrontend, MultiHeadYolo) {
  const Module module = FromDarknet(
      "DARKNET_CFG v1\n[net]\nwidth=16\nheight=16\nchannels=3\n"
      "[convolutional]\nfilters=4\nsize=3\nstride=2\npad=1\nactivation=leaky\nseed=1\n"
      "[yolo]\n"
      "[route]\nlayers=0\n"
      "[convolutional]\nfilters=6\nsize=1\nstride=1\npad=0\nactivation=linear\nseed=2\n"
      "[yolo]\n");
  ASSERT_TRUE(module.main()->checked_type().IsTuple());
  EXPECT_EQ(module.main()->checked_type().AsTuple().size(), 2u);
}

TEST(DarknetFrontend, Errors) {
  EXPECT_THROW(FromDarknet("DARKNET_CFG v1\n[convolutional]\nfilters=2\n"), Error);  // no [net]
  EXPECT_THROW(FromDarknet("DARKNET_CFG v1\n[net]\nwidth=8\nheight=8\nchannels=1\n"
                           "[route]\nlayers=5\n"),
               Error);  // out-of-range reference
  EXPECT_THROW(FromDarknet("DARKNET_CFG v1\n[net]\nwidth=8\nheight=8\nchannels=1\n[blah]\n"),
               Error);
}

// ------------------------------------------------------------------- onnx

constexpr const char* kTinyOnnx = R"(ONNX_MODEL v1
name: tiny
input x shape=1x2x8x8 dtype=float32
init W shape=4x2x3x3 seed=1
init B shape=4 stddev=0.01 seed=2
node Conv in=x,W,B out=c strides=1,1 pads=1,1
node Relu in=c out=r
node GlobalAveragePool in=r out=g
node Flatten in=g out=f
init W2 shape=3x4 seed=3
node Gemm in=f,W2 out=d
node Softmax in=d out=s axis=-1
output s
)";

TEST(OnnxFrontend, ParsesNodeList) {
  const Module module = FromOnnx(kTinyOnnx);
  EXPECT_EQ(CountCalls(module.main()->body(), "nn.conv2d"), 1);
  EXPECT_EQ(module.main()->checked_type().AsTensor().shape, Shape({1, 3}));
}

TEST(OnnxFrontend, ConcatSlice) {
  const Module module = FromOnnx(
      "ONNX_MODEL v1\n"
      "input x shape=1x2x4x4\n"
      "node Relu in=x out=a\n"
      "node Tanh in=x out=b\n"
      "node Concat in=a,b out=c axis=1\n"
      "node Slice in=c out=d starts=0,1,0,0 ends=1,3,4,4\n"
      "output d\n");
  EXPECT_EQ(module.main()->checked_type().AsTensor().shape, Shape({1, 2, 4, 4}));
}

TEST(OnnxFrontend, MultipleOutputs) {
  const Module module = FromOnnx(
      "ONNX_MODEL v1\ninput x shape=1x4\n"
      "node Relu in=x out=a\nnode Sigmoid in=x out=b\noutput a,b\n");
  EXPECT_TRUE(module.main()->checked_type().IsTuple());
}

TEST(OnnxFrontend, Errors) {
  EXPECT_THROW(FromOnnx("ONNX_MODEL v1\ninput x shape=1x4\noutput missing\n"), Error);
  EXPECT_THROW(FromOnnx("ONNX_MODEL v1\ninput x shape=1x4\nnode Nope in=x out=y\noutput y\n"),
               Error);
  EXPECT_THROW(FromOnnx("ONNX_MODEL v1\ninput x shape=1x2x4x4\n"
                        "node Pad in=x out=y pads=1,1\noutput y\n"),
               Error);  // pads must be 2*rank
}

// ------------------------------------------------------------------ mxnet

constexpr const char* kTinyMxnet = R"(MXNET_SYMBOL v1
name: tiny
var data shape=1x3x16x16
sym conv0 op=Convolution in=data num_filter=8 kernel=3x3 stride=2x2 pad=1x1 no_bias=1 seed=1
sym bn0 op=BatchNorm in=conv0 seed=2
sym act0 op=Activation in=bn0 act_type=relu
sym proj op=Convolution in=act0 num_filter=8 kernel=1x1 seed=3
sym plus0 op=elemwise_add in=act0,proj
sym gpool op=Pooling in=plus0 global_pool=1 pool_type=avg
sym fc op=FullyConnected in=gpool num_hidden=4 seed=4
sym sm op=SoftmaxOutput in=fc
output sm
)";

TEST(MxnetFrontend, ParsesSymbolGraph) {
  const Module module = FromMxnet(kTinyMxnet);
  EXPECT_EQ(CountCalls(module.main()->body(), "nn.conv2d"), 2);
  EXPECT_EQ(CountCalls(module.main()->body(), "add"), 1);
  EXPECT_EQ(CountCalls(module.main()->body(), "nn.batch_norm"), 1);
  EXPECT_EQ(module.main()->checked_type().AsTensor().shape, Shape({1, 4}));
}

TEST(MxnetFrontend, RunsEndToEnd) {
  relay::GraphExecutor exec(relay::Build(FromMxnet(kTinyMxnet)));
  exec.SetInput("data", NDArray::RandomNormal(Shape({1, 3, 16, 16}), 5));
  exec.Run();
  double sum = 0;
  for (float v : exec.GetOutput(0).Span<float>()) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-5);
}

TEST(MxnetFrontend, Errors) {
  EXPECT_THROW(FromMxnet("MXNET_SYMBOL v1\noutput nothing\n"), Error);  // no var
  EXPECT_THROW(FromMxnet("MXNET_SYMBOL v1\nvar data shape=1x3x8x8\n"
                         "sym a op=Nope in=data\noutput a\n"),
               Error);
  EXPECT_THROW(FromMxnet("MXNET_SYMBOL v1\nvar data shape=1x3x8x8\n"
                         "sym a op=Convolution in=data kernel=3x3\noutput a\n"),
               Error);  // missing num_filter
  EXPECT_THROW(FromMxnet("MXNET_SYMBOL v1\nvar data shape=1x3x8x8\n"
                         "sym a op=Activation in=data act_type=gelu\noutput a\n"),
               Error);  // unknown activation
}

// ------------------------------------------------------------- dispatcher

TEST(ImportDispatch, RoutesByFramework) {
  EXPECT_NO_THROW(Import("keras", kTinyKeras));
  EXPECT_NO_THROW(Import("pytorch", kTinyTorch));
  EXPECT_NO_THROW(Import("tflite", kTinyTfliteQuant));
  EXPECT_NO_THROW(Import("darknet", kTinyDarknet));
  EXPECT_NO_THROW(Import("onnx", kTinyOnnx));
  EXPECT_NO_THROW(Import("mxnet", kTinyMxnet));
  EXPECT_THROW(Import("caffe", kTinyOnnx), Error);
}

TEST(SeededWeights, DeterministicAcrossImports) {
  const Module a = FromKeras(kTinyKeras);
  const Module b = FromKeras(kTinyKeras);
  // Find the conv weights in both and compare bit-for-bit.
  NDArray wa, wb;
  for (const auto& node : relay::PostOrder(a.main()->body())) {
    if (node->kind() == relay::ExprKind::kConstant) {
      const auto c = relay::As<relay::Constant>(node);
      if (c->data().shape().rank() == 4) wa = c->data();
    }
  }
  for (const auto& node : relay::PostOrder(b.main()->body())) {
    if (node->kind() == relay::ExprKind::kConstant) {
      const auto c = relay::As<relay::Constant>(node);
      if (c->data().shape().rank() == 4) wb = c->data();
    }
  }
  ASSERT_TRUE(wa.defined());
  EXPECT_TRUE(NDArray::BitEqual(wa, wb));
}

}  // namespace
}  // namespace frontend
}  // namespace tnp
