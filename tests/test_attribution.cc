// Tail-latency attribution: the phase split's exactness-by-construction,
// the ledger fed by a real InferenceServer (phase sums vs measured
// end-to-end, exemplar resolvability), tail-based trace retention, the
// alloc-free steady state, and the /attribution JSON schema.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <future>
#include <map>
#include <numeric>
#include <set>
#include <vector>

#include "core/flows.h"
#include "core/pipeline_executor.h"
#include "frontend/common.h"
#include "serve/attribution.h"
#include "serve/server.h"
#include "support/json.h"
#include "support/trace.h"

namespace tnp {
namespace serve {
namespace attribution {
namespace {

using frontend::TypedCall;
using frontend::TypedVar;
using frontend::WeightF32;
using frontend::ZeroBiasF32;

relay::Module TinyModel() {
  auto x = TypedVar("data", Shape({1, 3, 16, 16}), DType::kFloat32);
  auto conv = TypedCall("nn.conv2d",
                        {x, WeightF32(Shape({8, 3, 3, 3}), 1), ZeroBiasF32(8)},
                        relay::Attrs().SetInts("padding", {1, 1}));
  auto relu = TypedCall("nn.relu", {conv});
  auto pool = TypedCall("nn.global_avg_pool2d", {relu});
  auto flat = TypedCall("nn.batch_flatten", {pool});
  auto dense =
      TypedCall("nn.dense", {flat, WeightF32(Shape({5, 8}), 2), ZeroBiasF32(5)});
  return relay::Module(relay::MakeFunction({x}, TypedCall("nn.softmax", {dense})));
}

ServedModel MakeTinyServed(const std::string& name) {
  ServedModel model;
  model.name = name;
  model.module = TinyModel();
  model.plan.primary = core::Assignment{core::FlowKind::kTvmOnly, 100.0};
  return model;
}

NDArray TinyInput() {
  return NDArray::Full(Shape({1, 3, 16, 16}), DType::kFloat32, 0.5);
}

PhaseStamps FullStamps(std::uint64_t req_id, double base) {
  PhaseStamps stamps;
  stamps.req_id = req_id;
  stamps.submit_us = base;
  stamps.queued_us = base + 10.0;
  stamps.pop_begin_us = base + 20.0;
  stamps.popped_us = base + 30.0;
  stamps.session_us = base + 40.0;
  stamps.run_begin_us = base + 50.0;
  stamps.run_end_us = base + 150.0;
  return stamps;
}

double PhaseSum(const std::array<double, kNumPhases>& phases) {
  return std::accumulate(phases.begin(), phases.end(), 0.0);
}

// ------------------------------------------------------------- SplitPhases

TEST(SplitPhases, FullyStampedRequestSplitsExactly) {
  const PhaseStamps stamps = FullStamps(1, 1000.0);
  const auto phases = SplitPhases(stamps, ServeStatus::kOk, 1160.0);
  EXPECT_DOUBLE_EQ(phases[static_cast<int>(Phase::kAdmission)], 10.0);
  EXPECT_DOUBLE_EQ(phases[static_cast<int>(Phase::kQueueWait)], 10.0);
  EXPECT_DOUBLE_EQ(phases[static_cast<int>(Phase::kBatchAssembly)], 10.0);
  EXPECT_DOUBLE_EQ(phases[static_cast<int>(Phase::kSessionAcquire)], 10.0);
  EXPECT_DOUBLE_EQ(phases[static_cast<int>(Phase::kDeviceHold)], 10.0);
  EXPECT_DOUBLE_EQ(phases[static_cast<int>(Phase::kExecution)], 100.0);
  EXPECT_DOUBLE_EQ(phases[static_cast<int>(Phase::kResponse)], 10.0);
  EXPECT_DOUBLE_EQ(PhaseSum(phases), 160.0);
}

TEST(SplitPhases, UnsetStampsForwardFillAndStillSumExactly) {
  PhaseStamps stamps;
  stamps.req_id = 2;
  stamps.submit_us = 500.0;  // nothing else ever stamped
  const auto phases = SplitPhases(stamps, ServeStatus::kOk, 600.0);
  EXPECT_DOUBLE_EQ(PhaseSum(phases), 100.0);
  // Every boundary forward-filled to submit: the whole lifetime lands in
  // the final (response) phase.
  EXPECT_DOUBLE_EQ(phases[static_cast<int>(Phase::kResponse)], 100.0);
}

TEST(SplitPhases, OutOfOrderStampsClampMonotonic) {
  PhaseStamps stamps = FullStamps(3, 1000.0);
  stamps.popped_us = 900.0;  // bogus: earlier than every other boundary
  const auto phases = SplitPhases(stamps, ServeStatus::kOk, 1160.0);
  for (const double us : phases) EXPECT_GE(us, 0.0);
  EXPECT_DOUBLE_EQ(PhaseSum(phases), 160.0);
}

TEST(SplitPhases, ShedAttributesWholeLifetimeToAdmission) {
  // A request shed at admission never reaches the later boundaries.
  PhaseStamps stamps;
  stamps.req_id = 4;
  stamps.submit_us = 1000.0;
  const auto phases = SplitPhases(stamps, ServeStatus::kShed, 1080.0);
  EXPECT_DOUBLE_EQ(phases[static_cast<int>(Phase::kAdmission)], 80.0);
  for (int p = 1; p < kNumPhases; ++p) EXPECT_DOUBLE_EQ(phases[p], 0.0);
}

// ------------------------------------------------------------------ Ledger

TEST(Ledger, SyntheticCompletionsFoldIntoSummaries) {
  Ledger::Global().Configure(LedgerOptions{});
  for (int i = 0; i < 100; ++i) {
    const double base = 1000.0 * (i + 1);
    Ledger::Global().Complete(FullStamps(static_cast<std::uint64_t>(i + 1), base),
                              ServeStatus::kOk, base + 160.0);
  }
  EXPECT_EQ(Ledger::Global().completed(), 100);
  const PhaseSummary execution = Ledger::Global().Summarize(Phase::kExecution);
  EXPECT_EQ(execution.count, 100);
  EXPECT_NEAR(execution.mean_us, 100.0, 100.0 * 0.30);  // ~25% grid buckets
  const PhaseSummary end_to_end = Ledger::Global().EndToEnd();
  EXPECT_EQ(end_to_end.count, 100);
  EXPECT_DOUBLE_EQ(end_to_end.sum_us, 100 * 160.0);

  std::string worst_name;
  double worst_p99 = 0.0;
  std::uint64_t exemplar = 0;
  ASSERT_TRUE(Ledger::Global().WorstPhase(&worst_name, &worst_p99, &exemplar));
  EXPECT_EQ(worst_name, "execution");
  EXPECT_NE(exemplar, 0u);
}

TEST(Ledger, WorstPhaseEmptyUntilFirstCompletion) {
  Ledger::Global().Configure(LedgerOptions{});
  std::string name;
  double p99 = 0.0;
  std::uint64_t exemplar = 0;
  EXPECT_FALSE(Ledger::Global().WorstPhase(&name, &p99, &exemplar));
}

TEST(Ledger, SteadyStateCompletionsAreAllocFree) {
  LedgerOptions options;
  options.tail_slow_us = 1e12;  // nothing qualifies as tail-slow
  Ledger::Global().Configure(options);
  for (int i = 0; i < 5000; ++i) {
    const double base = 100.0 * (i + 1);
    Ledger::Global().Complete(FullStamps(static_cast<std::uint64_t>(i + 1), base),
                              ServeStatus::kOk, base + 160.0);
  }
  EXPECT_EQ(Ledger::Global().completed(), 5000);
  EXPECT_EQ(Ledger::Global().alloc_events(), 0);
}

TEST(Ledger, TailSlowRequestsRetainSpans) {
  support::Tracer::Global().SetCapacity(1 << 12);
  support::Tracer::Global().SetEnabled(true);
  LedgerOptions options;
  options.tail_slow_us = 0.1;  // everything is tail-slow
  Ledger::Global().Configure(options);

  InferenceServer server({MakeTinyServed("tiny")});
  ServeRequest request;
  request.model = "tiny";
  request.inputs = {{"data", TinyInput()}};
  const ServeResponse response = server.Submit(std::move(request)).get();
  ASSERT_EQ(response.status, ServeStatus::kOk) << response.error;

  const std::vector<RetainedTrace> retained = Ledger::Global().RetainedTraces();
  ASSERT_FALSE(retained.empty());
  bool found = false;
  for (const RetainedTrace& trace : retained) {
    if (trace.req_id != response.req_id) continue;
    found = true;
    EXPECT_STREQ(trace.reason, "slow");
    EXPECT_GT(trace.total_us, 0.0);
    // Tracing was on, so the request's span tree came along.
    EXPECT_FALSE(trace.spans.empty());
  }
  EXPECT_TRUE(found);
  EXPECT_GT(Ledger::Global().alloc_events(), 0);
  support::Tracer::Global().SetEnabled(false);
}

// ------------------------------------------- the acceptance-criteria tests

TEST(Ledger, PhaseSumMatchesMeasuredEndToEndForEveryAdmittedRequest) {
  Ledger::Global().Configure(LedgerOptions{});
  ServerOptions options;
  options.max_batch = 4;
  options.queue_capacity = 128;  // burst submit must not shed
  core::ResourceLocks locks;
  options.locks = &locks;
  InferenceServer server({MakeTinyServed("tiny")}, options);

  constexpr int kRequests = 48;
  std::vector<std::future<ServeResponse>> futures;
  futures.reserve(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    ServeRequest request;
    request.model = "tiny";
    request.priority = i % 3;
    request.inputs = {{"data", TinyInput()}};
    futures.push_back(server.Submit(std::move(request)));
  }
  std::map<std::uint64_t, double> measured_total;
  for (auto& future : futures) {
    const ServeResponse response = future.get();
    ASSERT_EQ(response.status, ServeStatus::kOk) << response.error;
    measured_total[response.req_id] = response.total_us;
  }

  const auto records = Ledger::Global().RecentCompletions(kRequests * 2);
  int matched = 0;
  for (const CompletionRecord& record : records) {
    const auto it = measured_total.find(record.req_id);
    if (it == measured_total.end()) continue;
    ++matched;
    const double attributed = PhaseSum(record.phase_us);
    // The ledger's decomposition sums to its own end-to-end exactly ...
    EXPECT_NEAR(attributed, record.total_us, 1e-6)
        << "req " << record.req_id << " phases do not sum to ledger total";
    // ... and the ledger total tracks the response's measured latency
    // within the 5% acceptance bound (the delta is the response phase,
    // which the response's own clock cannot see).
    EXPECT_NEAR(attributed, it->second, std::max(it->second * 0.05, 500.0))
        << "req " << record.req_id << " attributed " << attributed
        << "us vs measured " << it->second << "us";
  }
  EXPECT_EQ(matched, kRequests);
}

TEST(Ledger, EveryExportedP99CarriesResolvableExemplar) {
  Ledger::Global().Configure(LedgerOptions{});
  ServerOptions options;
  options.queue_capacity = 128;  // burst submit must not shed
  core::ResourceLocks locks;
  options.locks = &locks;
  InferenceServer server({MakeTinyServed("tiny")}, options);

  std::set<std::uint64_t> submitted;
  std::vector<std::future<ServeResponse>> futures;
  for (int i = 0; i < 32; ++i) {
    ServeRequest request;
    request.model = "tiny";
    request.inputs = {{"data", TinyInput()}};
    futures.push_back(server.Submit(std::move(request)));
  }
  for (auto& future : futures) {
    const ServeResponse response = future.get();
    ASSERT_EQ(response.status, ServeStatus::kOk) << response.error;
    submitted.insert(response.req_id);
  }

  // Every phase that saw samples exports >= 1 exemplar, and every exemplar
  // resolves back to a request this test actually ran.
  for (int p = 0; p < kNumPhases; ++p) {
    const PhaseSummary summary =
        Ledger::Global().Summarize(static_cast<Phase>(p));
    if (summary.count == 0) continue;
    ASSERT_FALSE(summary.exemplars.empty())
        << PhaseName(static_cast<Phase>(p)) << " p99 exported no exemplar";
    for (const Exemplar& exemplar : summary.exemplars) {
      EXPECT_TRUE(submitted.count(exemplar.req_id))
          << "unresolvable exemplar req_id " << exemplar.req_id;
    }
  }
  const PhaseSummary end_to_end = Ledger::Global().EndToEnd();
  ASSERT_GT(end_to_end.count, 0);
  ASSERT_FALSE(end_to_end.exemplars.empty());
  EXPECT_TRUE(submitted.count(end_to_end.exemplars.front().req_id));
}

// ------------------------------------------------------------- JSON export

TEST(Ledger, ExportJsonHasDeterministicSchema) {
  Ledger::Global().Configure(LedgerOptions{});
  const char* kPhaseNames[] = {"admission",      "queue_wait", "batch_assembly",
                               "session_acquire", "device_hold", "execution",
                               "response"};

  // Schema holds both empty and populated.
  for (const bool populated : {false, true}) {
    if (populated) {
      for (int i = 0; i < 10; ++i) {
        const double base = 1000.0 * (i + 1);
        Ledger::Global().Complete(
            FullStamps(static_cast<std::uint64_t>(i + 1), base), ServeStatus::kOk,
            base + 160.0);
      }
    }
    const support::JsonValue doc =
        support::JsonValue::Parse(Ledger::Global().ExportJson());
    ASSERT_TRUE(doc.is_object());
    for (const char* key : {"completed", "ok", "shed", "expired", "error",
                            "tail_slow_us", "alloc_events", "phases",
                            "end_to_end", "worst_phase", "retained"}) {
      EXPECT_NE(doc.Find(key), nullptr) << "missing key " << key;
    }
    const support::JsonValue* phases = doc.Find("phases");
    ASSERT_TRUE(phases != nullptr && phases->is_object());
    for (const char* name : kPhaseNames) {
      const support::JsonValue* phase = phases->Find(name);
      ASSERT_TRUE(phase != nullptr && phase->is_object()) << name;
      for (const char* key :
           {"count", "mean_us", "p50_us", "p95_us", "p99_us", "max_us",
            "exemplars"}) {
        EXPECT_NE(phase->Find(key), nullptr) << name << "." << key;
      }
    }
    EXPECT_TRUE(doc.Find("retained")->is_array());
  }
}

}  // namespace
}  // namespace attribution
}  // namespace serve
}  // namespace tnp
