// Hard-edge tests for the work-stealing pool: nested fan-out, exception
// propagation, shutdown semantics, steal-heavy stress, zero-allocation
// steady state, and the BlockingScope spare-worker liveness guarantee.
#include "support/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "support/metrics.h"

namespace tnp {
namespace support {
namespace {

std::int64_t CounterValue(const std::string& name) {
  return metrics::Registry::Global().GetCounter(name).value();
}

TEST(ParseThreadCountEnv, RejectsUnsetAndEmpty) {
  EXPECT_EQ(ParseThreadCountEnv(nullptr, 4), 0);
  EXPECT_EQ(ParseThreadCountEnv("", 4), 0);
}

TEST(ParseThreadCountEnv, RejectsMalformed) {
  EXPECT_EQ(ParseThreadCountEnv("abc", 4), 0);
  EXPECT_EQ(ParseThreadCountEnv("4x", 4), 0);
  EXPECT_EQ(ParseThreadCountEnv(" ", 4), 0);
  EXPECT_EQ(ParseThreadCountEnv("1e3", 4), 0);
}

TEST(ParseThreadCountEnv, RejectsNonPositive) {
  EXPECT_EQ(ParseThreadCountEnv("0", 4), 0);
  EXPECT_EQ(ParseThreadCountEnv("-3", 4), 0);
}

TEST(ParseThreadCountEnv, AcceptsAndClamps) {
  EXPECT_EQ(ParseThreadCountEnv("2", 4), 2);
  EXPECT_EQ(ParseThreadCountEnv("16", 4), 16);   // == 4x hardware: allowed
  EXPECT_EQ(ParseThreadCountEnv("17", 4), 16);   // above: clamped
  EXPECT_EQ(ParseThreadCountEnv("9999", 1), 4);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4, {/*queue_capacity=*/256, /*max_spares=*/8, "tp_cover"});
  std::vector<std::atomic<int>> hits(257);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(0, 257, [&](std::int64_t i) { hits[static_cast<std::size_t>(i)]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyAndReversedRanges) {
  ThreadPool pool(2, {/*queue_capacity=*/256, /*max_spares=*/8, "tp_empty"});
  std::atomic<int> calls{0};
  pool.ParallelFor(5, 5, [&](std::int64_t) { calls++; });
  pool.ParallelFor(9, 3, [&](std::int64_t) { calls++; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, AutoGrainPostsFourChunksPerThread) {
  // grain 0 splits the range into 4 chunks per worker (capped at the range);
  // this count is deterministic and is what bench_snapshot gates on.
  ThreadPool pool(2, {/*queue_capacity=*/256, /*max_spares=*/8, "tp_grain"});
  const std::int64_t before = CounterValue("tp_grain/parallel_for/chunks");
  pool.ParallelFor(0, 64, [](std::int64_t) {});
  EXPECT_EQ(CounterValue("tp_grain/parallel_for/chunks") - before, 8);
}

TEST(ThreadPool, ExplicitGrainIsAMinimumWorkFloor) {
  ThreadPool pool(4, {/*queue_capacity=*/256, /*max_spares=*/8, "tp_floor"});
  const std::int64_t before = CounterValue("tp_floor/parallel_for/chunks");
  pool.ParallelFor(0, 64, [](std::int64_t) {}, /*grain_size=*/32);
  EXPECT_EQ(CounterValue("tp_floor/parallel_for/chunks") - before, 2);
}

TEST(ThreadPool, NestedParallelForFansOut) {
  // A nested ParallelFor from inside a worker must parallelize (help-first
  // join), not serialize on the calling worker.
  ThreadPool pool(4, {/*queue_capacity=*/256, /*max_spares=*/8, "tp_nested"});
  std::mutex mutex;
  std::set<std::thread::id> threads;
  std::atomic<int> total{0};
  pool.ParallelFor(0, 4, [&](std::int64_t) {
    ParallelFor(0, 16, [&](std::int64_t) {
      {
        std::lock_guard<std::mutex> lock(mutex);
        threads.insert(std::this_thread::get_id());
      }
      total++;
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }, /*grain_size=*/1);
  }, /*grain_size=*/1);
  EXPECT_EQ(total.load(), 64);
  EXPECT_GE(threads.size(), 2u) << "nested chunks all ran on one thread";
}

TEST(ThreadPool, ParallelForPropagatesFirstException) {
  ThreadPool pool(4, {/*queue_capacity=*/256, /*max_spares=*/8, "tp_throw"});
  std::atomic<int> ran{0};
  EXPECT_THROW(
      pool.ParallelFor(0, 64, [&](std::int64_t i) {
        ran++;
        if (i == 7) throw std::runtime_error("chunk failed");
      }, /*grain_size=*/1),
      std::runtime_error);
  // failed() short-circuits remaining chunks, and the group resets after the
  // rethrow so the pool stays usable.
  std::atomic<int> after{0};
  pool.ParallelFor(0, 8, [&](std::int64_t) { after++; });
  EXPECT_EQ(after.load(), 8);
}

TEST(ThreadPool, TaskGroupWaitRethrowsAndResets) {
  ThreadPool pool(2, {/*queue_capacity=*/256, /*max_spares=*/8, "tp_group"});
  TaskGroup group(&pool);
  group.Run(+[] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(group.Wait(), std::runtime_error);
  // The group is reusable after the error was consumed.
  group.Run(+[] {});
  group.Wait();
}

TEST(ThreadPool, SubmitAndPostAfterShutdownThrow) {
  ThreadPool pool(2, {/*queue_capacity=*/256, /*max_spares=*/8, "tp_stopped"});
  pool.Shutdown();
  EXPECT_THROW(pool.Submit([] {}), Error);
  EXPECT_THROW(pool.Post(+[] {}), Error);
  // ParallelFor degrades to inline instead of throwing.
  std::atomic<int> ran{0};
  pool.ParallelFor(0, 4, [&](std::int64_t) { ran++; });
  EXPECT_EQ(ran.load(), 4);
}

TEST(ThreadPool, ShutdownDrainsEveryAcceptedTask) {
  std::atomic<int> ran{0};
  constexpr int kTasks = 200;
  {
    ThreadPool pool(2, {/*queue_capacity=*/16, /*max_spares=*/8, "tp_drain"});
    for (int i = 0; i < kTasks; ++i) {
      pool.Post([&ran] { ran++; });
    }
    pool.Shutdown();
  }
  EXPECT_EQ(ran.load(), kTasks);
}

TEST(ThreadPool, StealHeavyStressIsCorrect) {
  // Uneven chunk costs force idle workers to steal; the range must still be
  // covered exactly once. (Also the TSan target for the steal path.)
  ThreadPool pool(4, {/*queue_capacity=*/64, /*max_spares=*/8, "tp_steal"});
  constexpr std::int64_t kN = 4096;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  for (int round = 0; round < 8; ++round) {
    pool.ParallelFor(0, kN, [&](std::int64_t i) {
      hits[static_cast<std::size_t>(i)]++;
      if (i % 512 == 0) std::this_thread::sleep_for(std::chrono::microseconds(200));
    }, /*grain_size=*/1);
  }
  for (const auto& h : hits) EXPECT_EQ(h.load(), 8);
  EXPECT_GE(CounterValue("tp_steal/executed"), 8);
}

TEST(ThreadPool, SteadyStateSubmitPathDoesNotAllocate) {
  // After warm-up, ParallelFor must neither spill to the overflow list nor
  // touch the heap-task path: the whole dispatch lives in the inline slots.
  ThreadPool pool(4, {/*queue_capacity=*/256, /*max_spares=*/8, "tp_zalloc"});
  std::atomic<std::int64_t> sink{0};
  pool.ParallelFor(0, 1024, [&](std::int64_t i) { sink += i; });  // warm-up
  const std::int64_t overflow_before = CounterValue("tp_zalloc/overflow");
  const std::int64_t heap_before = CounterValue("tp_zalloc/heap_tasks");
  for (int round = 0; round < 100; ++round) {
    pool.ParallelFor(0, 1024, [&](std::int64_t i) { sink += i; });
  }
  EXPECT_EQ(CounterValue("tp_zalloc/overflow") - overflow_before, 0);
  EXPECT_EQ(CounterValue("tp_zalloc/heap_tasks") - heap_before, 0);
}

TEST(ThreadPool, BlockingScopeSpawnsSpareForLiveness) {
  // One worker; task A parks inside a BlockingScope waiting for task B,
  // which can only run if the pool back-fills a spare worker. Without the
  // scope this deadlocks.
  ThreadPool pool(1, {/*queue_capacity=*/256, /*max_spares=*/8, "tp_spare"});
  std::promise<void> unblock;
  std::shared_future<void> gate = unblock.get_future().share();
  std::future<void> a = pool.Submit([gate] {
    ThreadPool::BlockingScope blocking;
    gate.wait();
  });
  std::future<void> b = pool.Submit([&unblock] { unblock.set_value(); });
  ASSERT_EQ(a.wait_for(std::chrono::seconds(20)), std::future_status::ready);
  b.get();
  a.get();
  EXPECT_GE(CounterValue("tp_spare/spares_spawned"), 1);
}

TEST(ThreadPool, CurrentWorkerIndexIdentifiesWorkers) {
  EXPECT_EQ(ThreadPool::CurrentWorkerIndex(), -1);
  ThreadPool pool(3, {/*queue_capacity=*/256, /*max_spares=*/8, "tp_index"});
  std::mutex mutex;
  std::set<int> indices;
  pool.ParallelFor(0, 64, [&](std::int64_t) {
    std::lock_guard<std::mutex> lock(mutex);
    indices.insert(ThreadPool::CurrentWorkerIndex());
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }, /*grain_size=*/1);
  for (int index : indices) {
    // The joining caller help-executes chunks at index -1; workers (spares
    // included) are in [0, 3 + max_spares).
    EXPECT_GE(index, -1);
    EXPECT_LT(index, 3 + 8);
  }
}

TEST(ThreadPool, ScopedPoolRoutesFreeFunctions) {
  ThreadPool pool(2, {/*queue_capacity=*/256, /*max_spares=*/8, "tp_scoped"});
  const std::int64_t before = CounterValue("tp_scoped/parallel_for/chunks");
  {
    ScopedPool scope(pool);
    EXPECT_EQ(&CurrentPool(), &pool);
    ParallelFor(0, 64, [](std::int64_t) {});
  }
  EXPECT_EQ(CounterValue("tp_scoped/parallel_for/chunks") - before, 8);
  EXPECT_NE(&CurrentPool(), &pool);
}

TEST(ThreadPool, NumThreadsGaugePublished) {
  ThreadPool pool(3, {/*queue_capacity=*/256, /*max_spares=*/8, "tp_gauge"});
  EXPECT_EQ(metrics::Registry::Global().GetGauge("tp_gauge/num_threads").value(), 3.0);
  EXPECT_EQ(pool.num_threads(), 3);
}

}  // namespace
}  // namespace support
}  // namespace tnp
