// Telemetry export surface: JSON parser, Prometheus/JSON metric exporters,
// the periodic TelemetrySampler, the flight recorder, and structured
// logging's trace-context correlation.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include "support/error.h"
#include "support/flight_recorder.h"
#include "support/json.h"
#include "support/logging.h"
#include "support/metrics.h"
#include "support/telemetry.h"
#include "support/trace.h"
#include "support/trace_context.h"

namespace tnp {
namespace {

using support::JsonValue;
using support::metrics::Registry;

// ---------------------------------------------------------------------------
// JSON parser
// ---------------------------------------------------------------------------

TEST(Json, ParsesScalarsAndContainers) {
  const JsonValue root = JsonValue::Parse(
      R"({"a": 1.5, "b": "text", "c": [1, 2, 3], "d": {"nested": true},
          "e": null, "f": -2e3})");
  ASSERT_TRUE(root.is_object());
  EXPECT_DOUBLE_EQ(root.Find("a")->number(), 1.5);
  EXPECT_EQ(root.Find("b")->string(), "text");
  ASSERT_TRUE(root.Find("c")->is_array());
  EXPECT_EQ(root.Find("c")->array().size(), 3u);
  EXPECT_DOUBLE_EQ(root.Find("c")->array()[2].number(), 3.0);
  EXPECT_TRUE(root.Find("d")->Find("nested")->bool_value());
  EXPECT_TRUE(root.Find("e")->is_null());
  EXPECT_DOUBLE_EQ(root.Find("f")->number(), -2000.0);
  EXPECT_EQ(root.Find("missing"), nullptr);
}

TEST(Json, StringEscapes) {
  const JsonValue root = JsonValue::Parse(R"({"s": "a\"b\\c\nd\te"})");
  EXPECT_EQ(root.Find("s")->string(), "a\"b\\c\nd\te");
}

TEST(Json, HelpersAndDefaults) {
  const JsonValue root = JsonValue::Parse(R"({"n": 4, "s": "x"})");
  EXPECT_DOUBLE_EQ(root.NumberOr("n", -1.0), 4.0);
  EXPECT_DOUBLE_EQ(root.NumberOr("absent", -1.0), -1.0);
  EXPECT_EQ(root.StringOr("s", "d"), "x");
  EXPECT_EQ(root.StringOr("n", "d"), "d");  // wrong type -> default
}

TEST(Json, RejectsMalformedInput) {
  JsonValue out;
  std::string error;
  EXPECT_FALSE(JsonValue::TryParse("{\"a\": }", &out, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(JsonValue::TryParse("[1, 2", &out));
  EXPECT_FALSE(JsonValue::TryParse("{\"a\": 1} trailing", &out));
  EXPECT_THROW(JsonValue::Parse("nope"), Error);
}

TEST(Json, RoundTripsChromeTraceExport) {
  auto& tracer = support::Tracer::Global();
  support::Tracer::ScopedEnable enable;
  tracer.Clear();
  { TNP_TRACE_SCOPE("test", "json-roundtrip", support::TraceArg("k", "v")); }
  const JsonValue root = JsonValue::Parse(tracer.ExportChromeTrace());
  const JsonValue* events = root.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_FALSE(events->array().empty());
  const JsonValue& span = events->array().back();
  EXPECT_EQ(span.StringOr("name", ""), "json-roundtrip");
  EXPECT_EQ(span.Find("args")->StringOr("k", ""), "v");
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

TEST(Exporters, PrometheusTextFormat) {
  Registry registry;
  registry.GetCounter("serve/shed").Increment(3);
  auto& gauge = registry.GetGauge("serve/queue/cpu/depth");
  gauge.Set(7.0);
  gauge.Set(2.0);
  auto& histogram = registry.GetHistogram("serve/request/us");
  for (int i = 1; i <= 100; ++i) histogram.Record(static_cast<double>(i));

  const std::string text = support::metrics::ExportPrometheus(registry);
  EXPECT_NE(text.find("tnp_serve_shed 3"), std::string::npos);
  EXPECT_NE(text.find("tnp_serve_queue_cpu_depth 2"), std::string::npos);
  // Gauges export their high-watermark as a companion series.
  EXPECT_NE(text.find("tnp_serve_queue_cpu_depth_max 7"), std::string::npos);
  // Histograms export as summaries with quantile labels.
  EXPECT_NE(text.find("tnp_serve_request_us{quantile=\"0.5\"}"), std::string::npos);
  EXPECT_NE(text.find("tnp_serve_request_us{quantile=\"0.99\"}"), std::string::npos);
  EXPECT_NE(text.find("tnp_serve_request_us_count 100"), std::string::npos);
  EXPECT_NE(text.find("# TYPE tnp_serve_shed counter"), std::string::npos);
}

TEST(Exporters, PrometheusOutputIsSortedWithHelpLines) {
  Registry registry;
  // Registered deliberately out of name order: export must sort.
  registry.GetCounter("zeta/events").Increment();
  registry.GetGauge("mid/depth").Set(1.0);
  registry.GetCounter("alpha/events").Increment();

  const std::string text = support::metrics::ExportPrometheus(registry);
  const std::size_t alpha_at = text.find("tnp_alpha_events");
  const std::size_t mid_at = text.find("tnp_mid_depth");
  const std::size_t zeta_at = text.find("tnp_zeta_events");
  ASSERT_NE(alpha_at, std::string::npos);
  ASSERT_NE(mid_at, std::string::npos);
  ASSERT_NE(zeta_at, std::string::npos);
  EXPECT_LT(alpha_at, mid_at);
  EXPECT_LT(mid_at, zeta_at);

  // Every series carries # HELP (original slash name) and # TYPE.
  EXPECT_NE(text.find("# HELP tnp_alpha_events alpha/events"), std::string::npos);
  EXPECT_NE(text.find("# TYPE tnp_alpha_events counter"), std::string::npos);
  EXPECT_NE(text.find("# HELP tnp_mid_depth mid/depth"), std::string::npos);
  EXPECT_NE(text.find("# TYPE tnp_mid_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("# HELP tnp_mid_depth_max high-watermark of mid/depth"),
            std::string::npos);

  // Determinism: the same registry exports byte-identical text.
  EXPECT_EQ(text, support::metrics::ExportPrometheus(registry));
}

TEST(Exporters, JsonSnapshotRoundTrips) {
  Registry registry;
  registry.GetCounter("serve/completed").Increment(5);
  registry.GetGauge("pool/in_flight").Set(2.0);
  auto& histogram = registry.GetHistogram("serve/run/us");
  for (int i = 1; i <= 10; ++i) histogram.Record(static_cast<double>(i) * 100.0);

  const JsonValue root = JsonValue::Parse(support::metrics::ExportJson(registry));
  EXPECT_DOUBLE_EQ(root.Find("counters")->NumberOr("serve/completed", 0.0), 5.0);
  const JsonValue* gauge = root.Find("gauges")->Find("pool/in_flight");
  ASSERT_NE(gauge, nullptr);
  EXPECT_DOUBLE_EQ(gauge->NumberOr("value", 0.0), 2.0);
  const JsonValue* summary = root.Find("histograms")->Find("serve/run/us");
  ASSERT_NE(summary, nullptr);
  EXPECT_DOUBLE_EQ(summary->NumberOr("count", 0.0), 10.0);
  EXPECT_GT(summary->NumberOr("p95", 0.0), summary->NumberOr("p50", 0.0));
}

// ---------------------------------------------------------------------------
// TelemetrySampler
// ---------------------------------------------------------------------------

TEST(TelemetrySampler, PublishesPercentileGaugesAndCounterTracks) {
  auto& registry = Registry::Global();
  auto& histogram = registry.GetHistogram("sampler_test/flow/us");
  histogram.Reset();
  for (int i = 1; i <= 100; ++i) histogram.Record(static_cast<double>(i));
  registry.GetGauge("sampler_test/depth").Set(5.0);

  auto& tracer = support::Tracer::Global();
  support::Tracer::ScopedEnable enable;
  tracer.Clear();

  support::TelemetrySampler sampler;
  sampler.SampleOnce();
  EXPECT_EQ(sampler.samples(), 1u);

  const support::metrics::Gauge* p95 =
      registry.FindGauge("telemetry/sampler_test/flow/us/p95");
  ASSERT_NE(p95, nullptr);
  EXPECT_DOUBLE_EQ(p95->value(), 95.0);

  // Gauges re-published as Chrome-trace counter tracks.
  bool saw_counter = false;
  for (const auto& event : tracer.Snapshot()) {
    if (event.phase == support::TracePhase::kCounter &&
        event.name == "sampler_test/depth") {
      saw_counter = true;
      EXPECT_DOUBLE_EQ(event.counter_value, 5.0);
    }
  }
  EXPECT_TRUE(saw_counter);

  // Sampling again must not feed back on telemetry/* gauges.
  sampler.SampleOnce();
  EXPECT_EQ(registry.FindGauge("telemetry/telemetry/sampler_test/flow/us/p95/p50"),
            nullptr);
}

TEST(TelemetrySampler, BackgroundThreadSamplesOnCadence) {
  support::TelemetrySamplerOptions options;
  options.period = std::chrono::milliseconds(5);
  support::TelemetrySampler sampler(options);
  sampler.Start();
  sampler.Start();  // idempotent
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (sampler.samples() < 3 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  sampler.Stop();
  sampler.Stop();  // idempotent
  EXPECT_GE(sampler.samples(), 3u);
}

// ---------------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------------

TEST(FlightRecorder, ManualDumpContainsTraceTailAndMetrics) {
  auto& tracer = support::Tracer::Global();
  support::Tracer::ScopedEnable enable;
  tracer.Clear();
  { TNP_TRACE_SCOPE("test", "pre-incident"); }
  Registry::Global().GetCounter("flight_test/events").Increment();

  auto& recorder = support::FlightRecorder::Global();
  support::FlightRecorderOptions options;
  options.path = testing::TempDir() + "flight_manual.json";
  options.max_events = 8;
  recorder.Configure(options);
  EXPECT_TRUE(recorder.armed());

  const std::string path = recorder.Dump("unit-test");
  recorder.Disarm();
  EXPECT_FALSE(recorder.armed());

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const JsonValue root = JsonValue::Parse(buffer.str());
  EXPECT_EQ(root.StringOr("reason", ""), "unit-test");
  const JsonValue* events = root.Find("trace")->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_LE(events->array().size(), 8u);
  bool saw_span = false;
  for (const auto& event : events->array()) {
    if (event.StringOr("name", "") == "pre-incident") saw_span = true;
  }
  EXPECT_TRUE(saw_span);
  EXPECT_GE(root.Find("metrics")->Find("counters")->NumberOr("flight_test/events", 0.0),
            1.0);
  std::remove(path.c_str());
}

TEST(FlightRecorder, ShedStormTriggersOneAutomaticDump) {
  auto& recorder = support::FlightRecorder::Global();
  const std::int64_t dumps_before = recorder.dumps();

  support::FlightRecorderOptions options;
  options.path = testing::TempDir() + "flight_storm.json";
  options.shed_storm_threshold = 5;
  options.shed_storm_window_ms = 10000.0;
  recorder.Configure(options);

  for (int i = 0; i < 20; ++i) recorder.RecordShed();
  EXPECT_EQ(recorder.dumps(), dumps_before + 1);  // one-shot, not per-shed

  std::ifstream in(options.path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(JsonValue::Parse(buffer.str()).StringOr("reason", ""), "shed-storm");
  recorder.Disarm();
  for (int i = 0; i < 20; ++i) recorder.RecordShed();  // disarmed: no-op
  EXPECT_EQ(recorder.dumps(), dumps_before + 1);
  std::remove(options.path.c_str());
}

TEST(FlightRecorder, HealthTransitionTriggersOneDumpUntilRearmed) {
  auto& recorder = support::FlightRecorder::Global();
  const std::int64_t dumps_before = recorder.dumps();

  support::FlightRecorderOptions options;
  options.path = testing::TempDir() + "flight_health.json";
  recorder.Configure(options);

  recorder.RecordHealthTransition("healthy->unhealthy burn=9.0");
  EXPECT_EQ(recorder.dumps(), dumps_before + 1);
  recorder.RecordHealthTransition("healthy->unhealthy again");
  EXPECT_EQ(recorder.dumps(), dumps_before + 1) << "one-shot while armed";

  std::ifstream in(options.path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(JsonValue::Parse(buffer.str()).StringOr("reason", ""),
            "health:healthy->unhealthy burn=9.0");

  // Re-arming resets the one-shot; disarming silences it entirely.
  recorder.Configure(options);
  recorder.RecordHealthTransition("second incident");
  EXPECT_EQ(recorder.dumps(), dumps_before + 2);
  recorder.Disarm();
  recorder.RecordHealthTransition("while disarmed");
  EXPECT_EQ(recorder.dumps(), dumps_before + 2);
  std::remove(options.path.c_str());
}

TEST(FlightRecorder, DumpKeepsOnlyTheNewestEvents) {
  auto& tracer = support::Tracer::Global();
  support::Tracer::ScopedEnable enable;
  tracer.Clear();
  for (int i = 0; i < 20; ++i) {
    TNP_TRACE_SCOPE("test", "span-" + std::to_string(i));
  }

  auto& recorder = support::FlightRecorder::Global();
  support::FlightRecorderOptions options;
  options.path = testing::TempDir() + "flight_truncate.json";
  options.max_events = 5;
  recorder.Configure(options);
  const JsonValue root = JsonValue::Parse(recorder.Render("truncate-test"));
  recorder.Disarm();

  const JsonValue* events = root.Find("trace")->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_LE(events->array().size(), 5u);
  bool saw_newest = false;
  bool saw_oldest = false;
  for (const auto& event : events->array()) {
    const std::string name = event.StringOr("name", "");
    if (name == "span-19") saw_newest = true;
    if (name == "span-0") saw_oldest = true;
  }
  EXPECT_TRUE(saw_newest) << "the tail of the ring is the incident context";
  EXPECT_FALSE(saw_oldest) << "older events beyond max_events are dropped";
}

// ---------------------------------------------------------------------------
// Structured logging + trace-context correlation
// ---------------------------------------------------------------------------

TEST(Logging, StructuredFieldsAndRequestCorrelation) {
  std::ostringstream captured;
  support::SetLogSink(&captured);
  const support::LogLevel previous = support::ActiveLogLevel();
  support::SetLogLevel(support::LogLevel::kDebug);

  TNP_LOG(INFO) << "plain line" << support::KV("model", "det")
                << support::KV("count", 3);
  {
    support::TraceContext ctx = support::TraceContext::NewRequest();
    support::TraceContextScope scope(ctx);
    TNP_LOG(DEBUG) << "correlated" << support::KV("flow", "BYOC(APU)");
    const std::string text = captured.str();
    EXPECT_NE(text.find("model=\"det\""), std::string::npos);
    EXPECT_NE(text.find("count=3"), std::string::npos);
    EXPECT_NE(text.find("req_id=" + std::to_string(ctx.req_id)), std::string::npos);
  }
  const std::string before = captured.str();
  EXPECT_EQ(before.find("plain line req_id"), std::string::npos)
      << "no req_id outside a context scope";

  // Level filtering: DEBUG suppressed at INFO.
  support::SetLogLevel(support::LogLevel::kInfo);
  TNP_LOG(DEBUG) << "suppressed";
  EXPECT_EQ(captured.str().find("suppressed"), std::string::npos);

  support::SetLogLevel(previous);
  support::SetLogSink(nullptr);
}

// ---------------------------------------------------------------------------
// TraceContext primitives
// ---------------------------------------------------------------------------

TEST(TraceContext, ScopesNestAndRestore) {
  EXPECT_FALSE(support::CurrentTraceContext().active());
  support::TraceContext outer = support::TraceContext::NewRequest();
  support::TraceContext inner = support::TraceContext::NewRequest();
  EXPECT_NE(outer.req_id, inner.req_id);
  {
    support::TraceContextScope outer_scope(outer);
    EXPECT_EQ(support::CurrentTraceContext().req_id, outer.req_id);
    {
      support::TraceContextScope inner_scope(inner);
      EXPECT_EQ(support::CurrentTraceContext().req_id, inner.req_id);
    }
    EXPECT_EQ(support::CurrentTraceContext().req_id, outer.req_id);
  }
  EXPECT_FALSE(support::CurrentTraceContext().active());
}

TEST(TraceContext, SpansRecordRequestAndParentChain) {
  auto& tracer = support::Tracer::Global();
  support::Tracer::ScopedEnable enable;
  tracer.Clear();

  support::TraceContext ctx = support::TraceContext::NewRequest();
  {
    support::TraceContextScope scope(ctx);
    TNP_TRACE_SCOPE("test", "outer");
    { TNP_TRACE_SCOPE("test", "inner"); }
    TNP_TRACE_INSTANT("test", "point");
  }
  { TNP_TRACE_SCOPE("test", "unrelated"); }

  std::uint64_t outer_span = 0;
  std::uint64_t inner_parent = 0;
  std::uint64_t instant_parent = 0;
  for (const auto& event : tracer.Snapshot()) {
    if (event.name == "outer") {
      EXPECT_EQ(event.ArgValue("req_id"), std::to_string(ctx.req_id));
      EXPECT_EQ(event.ArgValue("parent"), std::to_string(ctx.span_id));
      outer_span = std::stoull(event.ArgValue("span"));
    } else if (event.name == "inner") {
      EXPECT_EQ(event.ArgValue("req_id"), std::to_string(ctx.req_id));
      inner_parent = std::stoull(event.ArgValue("parent"));
    } else if (event.name == "point") {
      EXPECT_EQ(event.ArgValue("req_id"), std::to_string(ctx.req_id));
      instant_parent = std::stoull(event.ArgValue("parent"));
    } else if (event.name == "unrelated") {
      EXPECT_TRUE(event.ArgValue("req_id").empty());
    }
  }
  ASSERT_NE(outer_span, 0u);
  EXPECT_EQ(inner_parent, outer_span);   // nesting chains the parent
  EXPECT_EQ(instant_parent, outer_span); // instant while outer is still open
}

}  // namespace
}  // namespace tnp
