// Unit tests for the support layer: strings, tokenizer, RNG, thread pool,
// table printer, error machinery.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>

#include "support/logging.h"
#include "support/rng.h"
#include "support/string_util.h"
#include "support/table.h"
#include "support/thread_pool.h"
#include "support/tokenizer.h"

namespace tnp {
namespace {

using support::Split;
using support::SplitWhitespace;
using support::Tokenizer;
using support::Trim;

TEST(StringUtil, SplitKeepsEmptyFields) {
  const auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtil, SplitSingleField) {
  const auto parts = Split("alone", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "alone");
}

TEST(StringUtil, SplitWhitespaceDropsEmpty) {
  const auto parts = SplitWhitespace("  a \t b\n c  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringUtil, TrimBothEnds) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("a b"), "a b");
}

TEST(StringUtil, StartsEndsWith) {
  EXPECT_TRUE(support::StartsWith("layer Conv2D", "layer "));
  EXPECT_FALSE(support::StartsWith("lay", "layer"));
  EXPECT_TRUE(support::EndsWith("model.cfg", ".cfg"));
  EXPECT_FALSE(support::EndsWith("cfg", "model.cfg"));
}

TEST(StringUtil, ParseIntValid) {
  EXPECT_EQ(support::ParseInt("42", "ctx"), 42);
  EXPECT_EQ(support::ParseInt(" -7 ", "ctx"), -7);
}

TEST(StringUtil, ParseIntInvalidThrows) {
  EXPECT_THROW(support::ParseInt("4x", "ctx"), Error);
  EXPECT_THROW(support::ParseInt("", "ctx"), Error);
  EXPECT_THROW(support::ParseInt("abc", "ctx"), Error);
}

TEST(StringUtil, ParseDoubleValid) {
  EXPECT_DOUBLE_EQ(support::ParseDouble("0.5", "ctx"), 0.5);
  EXPECT_DOUBLE_EQ(support::ParseDouble("1e-3", "ctx"), 1e-3);
}

TEST(StringUtil, ParseDoubleInvalidThrows) {
  EXPECT_THROW(support::ParseDouble("1.2.3", "ctx"), Error);
  EXPECT_THROW(support::ParseDouble("", "ctx"), Error);
}

TEST(StringUtil, FormatHelpers) {
  EXPECT_EQ(support::FormatIntVector({1, 2, 3}), "[1, 2, 3]");
  EXPECT_EQ(support::FormatIntVector({}), "[]");
  EXPECT_EQ(support::FormatDouble(1.23456, 2), "1.23");
}

TEST(Tokenizer, SkipsCommentsAndBlanks) {
  Tokenizer tok("# header\n\nline one\n   # comment\n  line two  \n", "t.txt");
  EXPECT_EQ(*tok.NextLine(), "line one");
  EXPECT_EQ(*tok.NextLine(), "line two");
  EXPECT_FALSE(tok.NextLine().has_value());
}

TEST(Tokenizer, TracksLineNumbers) {
  Tokenizer tok("# c\nalpha\n\nbeta\n", "t.txt");
  tok.NextLine();
  EXPECT_EQ(tok.current_line(), 2);
  tok.NextLine();
  EXPECT_EQ(tok.current_line(), 4);
  EXPECT_EQ(tok.Location(), "t.txt:4");
}

TEST(Tokenizer, PeekDoesNotConsume) {
  Tokenizer tok("one\ntwo\n", "t");
  EXPECT_EQ(*tok.PeekLine(), "one");
  EXPECT_EQ(*tok.NextLine(), "one");
  EXPECT_EQ(*tok.NextLine(), "two");
}

TEST(Tokenizer, ExpectExactMismatchThrows) {
  Tokenizer tok("HEADER v2\n", "t");
  EXPECT_THROW(tok.ExpectExact("HEADER v1"), Error);
}

TEST(Tokenizer, ExpectLineAtEofThrows) {
  Tokenizer tok("", "t");
  EXPECT_THROW(tok.ExpectLine("anything"), Error);
}

TEST(Tokenizer, ParseKeyValue) {
  const auto [k, v] = support::ParseKeyValue("filters = 32", "ctx");
  EXPECT_EQ(k, "filters");
  EXPECT_EQ(v, "32");
  EXPECT_THROW(support::ParseKeyValue("no-equals", "ctx"), Error);
}

TEST(Tokenizer, ParseDims) {
  EXPECT_EQ(support::ParseDims("1x3x224x224", "ctx"),
            (std::vector<std::int64_t>{1, 3, 224, 224}));
  EXPECT_EQ(support::ParseDims("4,5", "ctx"), (std::vector<std::int64_t>{4, 5}));
  EXPECT_THROW(support::ParseDims("", "ctx"), Error);
}

TEST(Rng, Deterministic) {
  support::SplitMix64 a(123);
  support::SplitMix64 b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiffer) {
  support::SplitMix64 a(1);
  support::SplitMix64 b(2);
  EXPECT_NE(a.Next(), b.Next());
}

TEST(Rng, UniformInRange) {
  support::SplitMix64 rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(2.0, 5.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntInclusive) {
  support::SplitMix64 rng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.UniformInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(Rng, NormalMoments) {
  support::SplitMix64 rng(99);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(Rng, StableHashIsStable) {
  EXPECT_EQ(support::StableHash("mobilenet"), support::StableHash(std::string("mobilenet")));
  EXPECT_NE(support::StableHash("a"), support::StableHash("b"));
}

TEST(ThreadPool, ParallelForCoversRange) {
  std::vector<std::atomic<int>> hits(256);
  support::ParallelFor(0, 256, [&](std::int64_t i) { hits[static_cast<std::size_t>(i)]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  int calls = 0;
  support::ParallelFor(5, 5, [&](std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  EXPECT_THROW(
      support::ParallelFor(0, 100, [](std::int64_t i) {
        if (i == 37) throw std::runtime_error("boom");
      }),
      std::runtime_error);
}

TEST(ThreadPool, NestedParallelForCompletes) {
  // Nested calls fan out on the work-stealing pool (help-first join); the
  // hard edges live in test_thread_pool.cc — here we only pin completeness.
  std::atomic<int> total{0};
  support::ParallelFor(0, 8, [&](std::int64_t) {
    support::ParallelFor(0, 8, [&](std::int64_t) { total++; });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPool, SubmitRuns) {
  std::atomic<bool> ran{false};
  auto future = support::ThreadPool::Global().Submit([&] { ran = true; });
  future.wait();
  EXPECT_TRUE(ran.load());
}

TEST(Table, AlignedOutput) {
  support::Table table({"model", "ms"});
  table.AddRow({"mobilenet", "1.5"});
  table.AddRow({"x", "12.25"});
  std::ostringstream os;
  table.Print(os, "Title");
  const std::string out = os.str();
  EXPECT_NE(out.find("Title"), std::string::npos);
  EXPECT_NE(out.find("| mobilenet |"), std::string::npos);
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST(Table, RowArityMismatchThrows) {
  support::Table table({"a", "b"});
  EXPECT_THROW(table.AddRow({"only-one"}), InternalError);
}

TEST(Errors, KindPreserved) {
  try {
    TNP_THROW(kParseError) << "bad token";
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kParseError);
    EXPECT_NE(std::string(e.what()).find("bad token"), std::string::npos);
  }
}

TEST(Errors, CheckMacroThrowsInternal) {
  EXPECT_THROW(TNP_CHECK(false) << "invariant", InternalError);
  EXPECT_NO_THROW(TNP_CHECK(true) << "fine");
}

TEST(Errors, ComparisonMacros) {
  EXPECT_THROW(TNP_CHECK_EQ(1, 2), InternalError);
  EXPECT_THROW(TNP_CHECK_LT(2, 1), InternalError);
  EXPECT_NO_THROW(TNP_CHECK_GE(2, 2));
}

}  // namespace
}  // namespace tnp
