// QnnCanonicalize: the float reference lowering of the QNN dialect.
// Property: for pre-quantized models, the canonicalized float graph tracks
// the dequantized int8 pipeline within a small multiple of the output scale.
#include <gtest/gtest.h>

#include "core/flows.h"
#include "frontend/common.h"
#include "relay/build.h"
#include "relay/pass.h"
#include "relay/visitor.h"
#include "zoo/zoo.h"

namespace tnp {
namespace relay {
namespace {

using frontend::TypedCall;
using frontend::TypedVar;

TEST(QnnCanonicalizeTest, RemovesAllQnnOps) {
  zoo::ZooOptions options;
  options.image_size = 32;
  options.width = 0.25;
  const Module module = zoo::Build("mobilenet_v1_quant", options);
  const Module canonical = QnnCanonicalize().Run(module);
  for (const auto& node : PostOrder(canonical.main()->body())) {
    if (node->kind() != ExprKind::kCall) continue;
    const auto call = As<Call>(node);
    if (call->callee_kind() != CalleeKind::kOp) continue;
    EXPECT_NE(call->op_name().substr(0, 4), "qnn.")
        << "residual QNN op " << call->op_name();
  }
  // Result type stays float (the model already dequantized before softmax).
  EXPECT_EQ(canonical.main()->checked_type().AsTensor().dtype, DType::kFloat32);
}

TEST(QnnCanonicalizeTest, Int8InputsBecomeFloat) {
  auto x = TypedVar("x", Shape({1, 4}), DType::kInt8);
  auto dq = TypedCall("qnn.dequantize", {x},
                      Attrs().SetDouble("input_scale", 0.1).SetInt("input_zero_point", 0));
  Module module(MakeFunction({x}, dq));
  const Module canonical = QnnCanonicalize().Run(InferType().Run(module));
  EXPECT_EQ(canonical.main()->params()[0]->type_annotation().AsTensor().dtype,
            DType::kFloat32);
}

TEST(QnnCanonicalizeTest, QuantizeBecomesSaturationClip) {
  auto x = TypedVar("x", Shape({1, 4}), DType::kFloat32);
  auto q = TypedCall("qnn.quantize", {x},
                     Attrs().SetDouble("output_scale", 0.1).SetInt("output_zero_point", 0));
  Module module(MakeFunction({x}, q));
  const Module canonical = QnnCanonicalize().Run(InferType().Run(module));
  const auto body = As<Call>(canonical.main()->body());
  ASSERT_EQ(body->op_name(), "clip");
  EXPECT_NEAR(body->attrs().GetDouble("a_min", 0), -12.8, 1e-5);
  EXPECT_NEAR(body->attrs().GetDouble("a_max", 0), 12.7, 1e-5);

  // Saturation semantics verified numerically.
  GraphExecutor exec(Build(canonical));
  exec.SetInput("x", NDArray::FromVector<float>(Shape({1, 4}), {-100, -1, 1, 100}));
  exec.Run();
  const float* out = exec.GetOutput(0).Data<float>();
  EXPECT_FLOAT_EQ(out[0], -12.8f);
  EXPECT_FLOAT_EQ(out[3], 12.7f);
  EXPECT_FLOAT_EQ(out[1], -1.0f);
}

class QnnCanonicalizeSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(QnnCanonicalizeSweep, FloatReferenceTracksIntegerPipeline) {
  // The canonicalized float graph and the genuine int8 graph, fed the same
  // real-valued input, must agree within a modest error bound (quantization
  // rounding accumulates through the stack; saturation is modeled exactly).
  zoo::ZooOptions options;
  options.image_size = 32;
  options.width = 0.25;
  options.depth = 0.3;
  const Module quant_module = zoo::Build(GetParam(), options);
  const Module float_module = QnnCanonicalize().Run(quant_module);

  NDArray input = NDArray::RandomNormal(Shape({1, 3, 32, 32}), 31, 0.4f);

  GraphExecutor int_exec(Build(quant_module));
  int_exec.SetInput("t0", input);
  int_exec.Run();
  const NDArray int_out = int_exec.GetOutput(0);

  GraphExecutor float_exec(Build(float_module));
  float_exec.SetInput("t0", input);
  float_exec.Run();
  const NDArray float_out = float_exec.GetOutput(0);

  ASSERT_EQ(int_out.shape(), float_out.shape());
  ASSERT_EQ(int_out.dtype(), DType::kFloat32);  // both models end in softmax

  // Softmax outputs live in [0,1]; rounding noise through a quantized
  // backbone perturbs the logits, so compare loosely but meaningfully.
  const double diff = NDArray::MaxAbsDiff(int_out, float_out);
  EXPECT_LT(diff, 0.35) << GetParam();
  // And the float reference is not a constant function.
  double spread = 0.0;
  const float* p = float_out.Data<float>();
  for (std::int64_t i = 1; i < float_out.NumElements(); ++i) {
    spread = std::max(spread, static_cast<double>(std::fabs(p[i] - p[0])));
  }
  EXPECT_GT(spread, 0.0);
}

INSTANTIATE_TEST_SUITE_P(QuantModels, QnnCanonicalizeSweep,
                         ::testing::Values("mobilenet_v1_quant", "mobilenet_v2_quant"));

TEST(QnnCanonicalizeTest, CanonicalizedModelRunsAllFloatFlows) {
  zoo::ZooOptions options;
  options.image_size = 32;
  options.width = 0.25;
  const Module canonical =
      QnnCanonicalize().Run(zoo::Build("mobilenet_v1_quant", options));
  // Fully float + all ops Neuron-mappable: every flow compiles.
  for (const core::FlowKind flow : core::kAllFlows) {
    std::string error;
    EXPECT_NE(core::TryCompileFlow(canonical, flow, &error), nullptr)
        << core::FlowName(flow) << ": " << error;
  }
}

TEST(QnnCanonicalizeTest, FloatGraphUntouched) {
  zoo::ZooOptions options;
  options.image_size = 32;
  options.width = 0.25;
  const Module module = InferType().Run(zoo::Build("mobilenet_v1", options));
  const Module canonical = QnnCanonicalize().Run(module);
  EXPECT_EQ(CountCalls(module.main()->body()), CountCalls(canonical.main()->body()));
}

}  // namespace
}  // namespace relay
}  // namespace tnp
