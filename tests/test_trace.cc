// The span/event tracer: nesting across threads, the disabled-mode
// zero-cost guarantee (no allocation, no argument evaluation), ring-buffer
// wrap-around accounting, and well-formedness of the Chrome-trace export
// (validated by a round-trip parse).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "support/trace.h"

// Global allocation counter for the zero-allocation assertion. Replacing
// the global operators in one test binary is well-defined; every other
// test keeps working because the operators still allocate normally.
namespace {
std::atomic<std::int64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace tnp {
namespace support {
namespace {

TEST(Trace, DisabledMacrosEvaluateNothingAndAllocateNothing) {
  Tracer::Global().SetEnabled(false);
  int evaluations = 0;
  const auto expensive = [&evaluations] {
    ++evaluations;
    return std::string("never-built");
  };

  const std::int64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    TNP_TRACE_SCOPE("test", expensive(), TraceArg("i", expensive()));
    TNP_TRACE_INSTANT("test", expensive());
    TNP_TRACE_COUNTER("test", expensive(), 1.0);
  }
  const std::int64_t after = g_allocations.load(std::memory_order_relaxed);

  EXPECT_EQ(after - before, 0) << "disabled trace macros allocated";
  EXPECT_EQ(evaluations, 0) << "disabled trace macros evaluated their arguments";
}

TEST(Trace, SpanNestingAcrossThreads) {
  Tracer& tracer = Tracer::Global();
  tracer.Clear();
  const Tracer::ScopedEnable enable;

  constexpr int kThreads = 4;
  constexpr int kInner = 3;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      TNP_TRACE_SCOPE("test.nest", "outer:" + std::to_string(t));
      for (int i = 0; i < kInner; ++i) {
        TNP_TRACE_SCOPE("test.nest", "inner:" + std::to_string(t));
      }
    });
  }
  for (auto& thread : threads) thread.join();

  const std::vector<TraceEvent> events = tracer.Snapshot();
  for (int t = 0; t < kThreads; ++t) {
    const TraceEvent* outer = nullptr;
    std::vector<const TraceEvent*> inner;
    for (const auto& event : events) {
      if (event.name == "outer:" + std::to_string(t)) outer = &event;
      if (event.name == "inner:" + std::to_string(t)) inner.push_back(&event);
    }
    ASSERT_NE(outer, nullptr) << "thread " << t;
    ASSERT_EQ(inner.size(), static_cast<std::size_t>(kInner)) << "thread " << t;
    for (const TraceEvent* span : inner) {
      // Same worker thread, and temporally contained in the outer span.
      EXPECT_EQ(span->tid, outer->tid);
      EXPECT_GE(span->ts_us, outer->ts_us - 1e-6);
      EXPECT_LE(span->ts_us + span->dur_us, outer->ts_us + outer->dur_us + 1e-6);
    }
  }
  // All four workers got distinct thread ids.
  std::vector<int> tids;
  for (const auto& event : events) {
    if (event.name.rfind("outer:", 0) == 0) tids.push_back(event.tid);
  }
  std::sort(tids.begin(), tids.end());
  EXPECT_EQ(std::unique(tids.begin(), tids.end()), tids.end());
}

TEST(Trace, ChromeExportRoundTripsThroughJsonParser) {
  Tracer& tracer = Tracer::Global();
  tracer.Clear();
  const Tracer::ScopedEnable enable;

  {
    TNP_TRACE_SCOPE("test.export", std::string("tricky \"name\" \\ with\nnewline"),
                    TraceArg("str", "quoted \"value\""), TraceArg("num", 42),
                    TraceArg("float", 3.25), TraceArg("flag", true));
  }
  TNP_TRACE_INSTANT("test.export", "instant", TraceArg("k", "v"));
  TNP_TRACE_COUNTER("test.export", "depth", 2.0);
  tracer.Emit("test.export", "explicit", 10.0, 250.0, {TraceArg("sim", true)});

  const std::string json = tracer.ExportChromeTrace();
  std::string error;
  EXPECT_TRUE(ValidateTraceJson(json, &error)) << error << "\n" << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);

  // The validator is a real parser: it must reject broken documents.
  EXPECT_FALSE(ValidateTraceJson("{\"traceEvents\":[", &error));
  EXPECT_FALSE(ValidateTraceJson("{\"traceEvents\":[{\"bad\":}]}", &error));
  EXPECT_FALSE(ValidateTraceJson("{\"traceEvents\":[\"unterminated]}", &error));
  EXPECT_FALSE(ValidateTraceJson("not json", &error));
  EXPECT_FALSE(ValidateTraceJson("{\"events\":[]}", &error)) << "traceEvents required";
}

TEST(Trace, EmitRecordsExplicitDuration) {
  Tracer& tracer = Tracer::Global();
  tracer.Clear();
  const Tracer::ScopedEnable enable;
  tracer.Emit("test.emit", "sim-span", 100.0, 1234.5,
              {TraceArg("flow", "BYOC(APU)"), TraceArg("model", "m")});

  const std::vector<TraceEvent> events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "sim-span");
  EXPECT_DOUBLE_EQ(events[0].ts_us, 100.0);
  EXPECT_DOUBLE_EQ(events[0].dur_us, 1234.5);
  EXPECT_EQ(events[0].ArgValue("flow"), "BYOC(APU)");
  EXPECT_EQ(events[0].ArgValue("missing"), "");
}

TEST(Trace, RingBufferWrapsAndCountsDropped) {
  Tracer& tracer = Tracer::Global();
  tracer.SetCapacity(8);
  const Tracer::ScopedEnable enable;
  for (int i = 0; i < 20; ++i) {
    tracer.Emit("test.ring", "e" + std::to_string(i), 0.0, 1.0);
  }
  EXPECT_EQ(tracer.dropped(), 12u);
  const std::vector<TraceEvent> events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 8u);
  // Oldest retained event is #12, newest #19, still in record order.
  EXPECT_EQ(events.front().name, "e12");
  EXPECT_EQ(events.back().name, "e19");

  const std::uint64_t seq = tracer.sequence();
  tracer.Emit("test.ring", "tail", 0.0, 1.0);
  const std::vector<TraceEvent> since = tracer.EventsSince(seq);
  ASSERT_EQ(since.size(), 1u);
  EXPECT_EQ(since[0].name, "tail");

  tracer.SetCapacity(1u << 15);  // restore the default for other tests
}

TEST(Trace, ScopedEnableRestoresPreviousState) {
  Tracer& tracer = Tracer::Global();
  tracer.SetEnabled(false);
  {
    const Tracer::ScopedEnable enable;
    EXPECT_TRUE(tracer.enabled());
    {
      const Tracer::ScopedEnable nested;
      EXPECT_TRUE(tracer.enabled());
    }
    EXPECT_TRUE(tracer.enabled());
  }
  EXPECT_FALSE(tracer.enabled());
}

}  // namespace
}  // namespace support
}  // namespace tnp
