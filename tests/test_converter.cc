// Relay -> Neuron IR conversion (paper Listing 1 + Section 3.3 QNN
// augmentation): NodeEntry bookkeeping, op-handler dictionary coverage,
// tensor-oriented quantization propagation.
#include <gtest/gtest.h>

#include "core/relay_to_neuron.h"
#include "frontend/common.h"
#include "relay/pass.h"

namespace tnp {
namespace core {
namespace {

using frontend::TypedCall;
using frontend::TypedTuple;
using frontend::TypedVar;
using frontend::WeightF32;
using frontend::ZeroBiasF32;
using relay::Attrs;

relay::FunctionPtr MakeFn(std::vector<relay::VarPtr> params, relay::ExprPtr body) {
  auto fn = relay::MakeFunction(std::move(params), std::move(body));
  relay::InferFunctionTypes(fn);
  return fn;
}

TEST(Converter, VarBecomesInputOperand) {
  auto x = TypedVar("data", Shape({1, 3, 4, 4}), DType::kFloat32);
  RelayToNeuronConverter converter;
  const neuron::NeuronModel model = converter.Convert(MakeFn({x}, TypedCall("nn.relu", {x})));
  ASSERT_EQ(model.model_inputs().size(), 1u);
  const neuron::Operand& input = model.operand(model.model_inputs()[0]);
  EXPECT_EQ(input.kind, neuron::OperandKind::kInput);
  EXPECT_EQ(input.name, "data");
  EXPECT_EQ(input.shape, Shape({1, 3, 4, 4}));
}

TEST(Converter, NodeEntryDictPopulated) {
  auto x = TypedVar("x", Shape({1, 4}), DType::kFloat32);
  auto relu = TypedCall("nn.relu", {x});
  RelayToNeuronConverter converter;
  converter.Convert(MakeFn({x}, relu));
  // Listing 1: every visited node has a NodeEntry with inputs/outputs.
  const auto& dict = converter.node_entry_dict();
  ASSERT_EQ(dict.count(x.get()), 1u);
  ASSERT_EQ(dict.count(relu.get()), 1u);
  const NodeEntry& var_entry = dict.at(x.get());
  EXPECT_EQ(var_entry.inputs, var_entry.outputs);  // visit_var convention
  const NodeEntry& call_entry = dict.at(relu.get());
  EXPECT_EQ(call_entry.inputs.front(), var_entry.outputs.front());
  EXPECT_NE(call_entry.outputs.front(), call_entry.inputs.front());
}

TEST(Converter, ConvLowersWithConstWeights) {
  auto x = TypedVar("x", Shape({1, 3, 8, 8}), DType::kFloat32);
  auto conv = TypedCall("nn.conv2d", {x, WeightF32(Shape({4, 3, 3, 3}), 1), ZeroBiasF32(4)},
                        Attrs().SetInts("strides", {2, 2}).SetInts("padding", {1, 1}));
  RelayToNeuronConverter converter;
  const neuron::NeuronModel model = converter.Convert(MakeFn({x}, conv));
  ASSERT_EQ(model.operations().size(), 1u);
  const neuron::Operation& op = model.operations()[0];
  EXPECT_EQ(op.type, neuron::NeuronOpType::kConv2d);
  EXPECT_EQ(op.attrs.strides, (std::vector<std::int64_t>{2, 2}));
  EXPECT_EQ(model.operand(op.inputs[1]).kind, neuron::OperandKind::kConstant);
  EXPECT_EQ(model.operand(op.outputs[0]).shape, Shape({1, 4, 4, 4}));
}

TEST(Converter, TupleFlattensIntoConcat) {
  auto a = TypedVar("a", Shape({1, 2, 4, 4}), DType::kFloat32);
  auto b = TypedVar("b", Shape({1, 3, 4, 4}), DType::kFloat32);
  auto cat = TypedCall("concatenate", {TypedTuple({a, b})}, Attrs().SetInt("axis", 1));
  RelayToNeuronConverter converter;
  const neuron::NeuronModel model = converter.Convert(MakeFn({a, b}, cat));
  ASSERT_EQ(model.operations().size(), 1u);
  EXPECT_EQ(model.operations()[0].type, neuron::NeuronOpType::kConcat);
  EXPECT_EQ(model.operations()[0].inputs.size(), 2u);  // tuple flattened
}

TEST(Converter, TupleOutputsMultipleModelOutputs) {
  auto x = TypedVar("x", Shape({1, 4}), DType::kFloat32);
  auto relu = TypedCall("nn.relu", {x});
  auto clip = TypedCall("clip", {x}, Attrs().SetDouble("a_min", 0).SetDouble("a_max", 1));
  RelayToNeuronConverter converter;
  const neuron::NeuronModel model =
      converter.Convert(MakeFn({x}, TypedTuple({relu, clip})));
  EXPECT_EQ(model.model_outputs().size(), 2u);
}

TEST(Converter, BiasAddReshapesConstBias) {
  auto x = TypedVar("x", Shape({1, 4, 4, 4}), DType::kFloat32);
  auto biased = TypedCall("nn.bias_add", {x, WeightF32(Shape({4}), 3, 0.1f)});
  RelayToNeuronConverter converter;
  const neuron::NeuronModel model = converter.Convert(MakeFn({x}, biased));
  ASSERT_EQ(model.operations().size(), 1u);
  const neuron::Operation& op = model.operations()[0];
  EXPECT_EQ(op.type, neuron::NeuronOpType::kAdd);
  EXPECT_EQ(model.operand(op.inputs[1]).shape, Shape({1, 4, 1, 1}));  // broadcastable
}

TEST(Converter, UnsupportedOpThrows) {
  auto x = TypedVar("x", Shape({1, 4}), DType::kFloat32);
  auto sig = TypedCall("sigmoid", {x});
  RelayToNeuronConverter converter;
  try {
    converter.Convert(MakeFn({x}, sig));
    FAIL() << "expected UnsupportedOp";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kUnsupportedOp);
    EXPECT_NE(std::string(e.what()).find("sigmoid"), std::string::npos);
  }
}

TEST(Converter, FusedFunctionCallRejected) {
  auto x = TypedVar("x", Shape({1, 4}), DType::kFloat32);
  auto inner_param = TypedVar("p", Shape({1, 4}), DType::kFloat32);
  relay::Attrs prim;
  prim.SetInt(relay::kAttrPrimitive, 1);
  auto fused = relay::MakeFunction({inner_param}, TypedCall("nn.relu", {inner_param}), prim);
  auto call = relay::MakeFunctionCall(fused, {x});
  call->set_checked_type(x->checked_type());
  RelayToNeuronConverter converter;
  EXPECT_THROW(converter.Convert(MakeFn({x}, call)), Error);
}

// ---------------- QNN augmentation (paper Section 3.3) ----------------

TEST(QnnAugment, ConvAttrsLandOnOperands) {
  // Operator-oriented attrs must end up on the input/weight/output tensors.
  auto x = TypedVar("x", Shape({1, 3, 8, 8}), DType::kInt8);
  Attrs attrs;
  attrs.SetDouble("input_scale", 0.1).SetInt("input_zero_point", 2);
  attrs.SetDouble("weight_scale", 0.05).SetInt("weight_zero_point", 0);
  attrs.SetDouble("output_scale", 0.3).SetInt("output_zero_point", -1);
  attrs.SetInts("padding", {1, 1});
  auto conv = TypedCall("qnn.conv2d",
                        {x, frontend::WeightS8(Shape({4, 3, 3, 3}), 1),
                         frontend::BiasS32(Shape({4}), 2)},
                        attrs);
  RelayToNeuronConverter converter;
  const neuron::NeuronModel model = converter.Convert(MakeFn({x}, conv));
  const neuron::Operation& op = model.operations()[0];
  EXPECT_EQ(model.operand(op.inputs[0]).quant, QuantParams(0.1f, 2));
  EXPECT_EQ(model.operand(op.inputs[1]).quant, QuantParams(0.05f, 0));
  EXPECT_EQ(model.operand(op.outputs[0]).quant, QuantParams(0.3f, -1));
}

TEST(QnnAugment, ParamsPropagateThroughNonQnnOps) {
  // "even if the model has been pre-quantized, there are still some non-qnn
  // options ... we pass the output quantization parameters directly to the
  // input and continue passing them" — pooling and reshape here.
  auto x = TypedVar("x", Shape({1, 3, 8, 8}), DType::kFloat32);
  auto q = TypedCall("qnn.quantize", {x},
                     Attrs().SetDouble("output_scale", 0.25).SetInt("output_zero_point", 4));
  auto pooled = TypedCall("nn.max_pool2d", {q},
                          Attrs().SetInts("pool_size", {2, 2}).SetInts("strides", {2, 2}));
  auto flat = TypedCall("reshape", {pooled}, Attrs().SetInts("newshape", {1, -1}));
  RelayToNeuronConverter converter;
  const neuron::NeuronModel model = converter.Convert(MakeFn({x}, flat));
  // The pool and reshape outputs carry the quantize's params.
  for (const auto& op : model.operations()) {
    if (op.type == neuron::NeuronOpType::kMaxPool2d ||
        op.type == neuron::NeuronOpType::kReshape) {
      EXPECT_EQ(model.operand(op.outputs[0]).quant, QuantParams(0.25f, 4))
          << NeuronOpTypeName(op.type);
    }
  }
}

TEST(QnnAugment, ConcatInputScalesLand) {
  auto a = TypedVar("a", Shape({1, 2, 4, 4}), DType::kInt8);
  auto b = TypedVar("b", Shape({1, 2, 4, 4}), DType::kInt8);
  Attrs attrs;
  attrs.SetDoubles("input_scales", {0.1, 0.2});
  attrs.SetInts("input_zero_points", {0, 3});
  attrs.SetDouble("output_scale", 0.2).SetInt("output_zero_point", 0);
  attrs.SetInt("axis", 1);
  auto cat = TypedCall("qnn.concatenate", {TypedTuple({a, b})}, attrs);
  RelayToNeuronConverter converter;
  const neuron::NeuronModel model = converter.Convert(MakeFn({a, b}, cat));
  const neuron::Operation& op = model.operations()[0];
  EXPECT_EQ(model.operand(op.inputs[0]).quant, QuantParams(0.1f, 0));
  EXPECT_EQ(model.operand(op.inputs[1]).quant, QuantParams(0.2f, 3));
}

TEST(QnnAugment, EnsureQuantDoesNotOverwrite) {
  // Two consumers with different attr claims: the first wins; the operand's
  // params are tensor properties, not per-use.
  auto x = TypedVar("x", Shape({1, 2}), DType::kInt8);
  auto dq1 = TypedCall("qnn.dequantize", {x},
                       Attrs().SetDouble("input_scale", 0.1).SetInt("input_zero_point", 0));
  auto dq2 = TypedCall("qnn.dequantize", {x},
                       Attrs().SetDouble("input_scale", 0.9).SetInt("input_zero_point", 9));
  auto sum = TypedCall("add", {dq1, dq2});
  RelayToNeuronConverter converter;
  const neuron::NeuronModel model = converter.Convert(MakeFn({x}, sum));
  EXPECT_EQ(model.operand(model.model_inputs()[0]).quant, QuantParams(0.1f, 0));
}

// ---------------- handler dictionary / support predicate ----------------

TEST(OpHandlerDictTest, CoverageMatchesDesign) {
  const auto& dict = OpHandlerDict::Global();
  for (const char* supported :
       {"nn.conv2d", "nn.dense", "nn.relu", "clip", "nn.max_pool2d", "nn.avg_pool2d",
        "nn.global_avg_pool2d", "nn.softmax", "concatenate", "reshape", "nn.batch_flatten",
        "nn.batch_norm", "nn.pad", "add", "multiply", "qnn.conv2d", "qnn.dense", "qnn.add",
        "qnn.quantize", "qnn.dequantize", "qnn.requantize", "qnn.concatenate"}) {
    EXPECT_TRUE(dict.Has(supported)) << supported;
  }
  for (const char* unsupported :
       {"sigmoid", "tanh", "nn.leaky_relu", "nn.upsampling", "strided_slice", "mean",
        "transpose", "cast", "exp", "sqrt"}) {
    EXPECT_FALSE(dict.Has(unsupported)) << unsupported;
  }
}

TEST(NirSupportedTest, TargetAware) {
  auto x = TypedVar("x", Shape({1, 2, 4, 4}), DType::kFloat32);
  auto sub = relay::As<relay::Call>(TypedCall("subtract", {x, x}));
  auto relu = relay::As<relay::Call>(TypedCall("nn.relu", {x}));
  // SUB exists in Neuron IR but the APU cannot run it.
  EXPECT_TRUE(NirSupported(*sub, {sim::DeviceKind::kNeuronCpu}));
  EXPECT_FALSE(NirSupported(*sub, {sim::DeviceKind::kNeuronApu}));
  EXPECT_TRUE(NirSupported(*relu, {sim::DeviceKind::kNeuronApu}));
}

}  // namespace
}  // namespace core
}  // namespace tnp
