// Quantization kernels: round trips, requantize, quantized elementwise.
#include <gtest/gtest.h>

#include <cmath>

#include "kernels/quantize.h"
#include "support/rng.h"

namespace tnp {
namespace kernels {
namespace {

class QuantRoundTrip : public ::testing::TestWithParam<std::pair<float, int>> {};

TEST_P(QuantRoundTrip, ErrorBoundedByHalfScale) {
  const auto [scale, zero_point] = GetParam();
  const QuantParams q(scale, zero_point);
  NDArray real = NDArray::RandomNormal(Shape({512}), 77, scale * 40);
  NDArray quantized = NDArray::Empty(real.shape(), DType::kInt8);
  NDArray recovered = NDArray::Empty(real.shape(), DType::kFloat32);
  QuantizeF32ToS8(real, quantized, q);
  DequantizeS8ToF32(quantized, recovered, q);

  const float lo = q.Dequantize(-128);
  const float hi = q.Dequantize(127);
  for (std::int64_t i = 0; i < real.NumElements(); ++i) {
    const float clamped = std::clamp(real.Data<float>()[i], lo, hi);
    EXPECT_NEAR(recovered.Data<float>()[i], clamped, scale / 2 + 1e-6)
        << "scale=" << scale << " zp=" << zero_point;
  }
}

INSTANTIATE_TEST_SUITE_P(Params, QuantRoundTrip,
                         ::testing::Values(std::make_pair(0.1f, 0),
                                           std::make_pair(0.05f, 10),
                                           std::make_pair(0.02f, -20),
                                           std::make_pair(1.0f, 0),
                                           std::make_pair(0.007f, 3)));

TEST(Requantize, IdentityWhenSameParams) {
  const QuantParams q(0.1f, 5);
  NDArray in = NDArray::RandomInt8(Shape({64}), 9);
  NDArray out = NDArray::Empty(in.shape(), DType::kInt8);
  RequantizeS8(in, out, q, q);
  EXPECT_TRUE(NDArray::BitEqual(in, out));
}

TEST(Requantize, HalvesScale) {
  const QuantParams in_q(0.2f, 0);
  const QuantParams out_q(0.4f, 0);
  NDArray in = NDArray::FromVector<std::int8_t>(Shape({3}), {10, -20, 100});
  NDArray out = NDArray::Empty(in.shape(), DType::kInt8);
  RequantizeS8(in, out, in_q, out_q);
  EXPECT_EQ(out.Data<std::int8_t>()[0], 5);
  EXPECT_EQ(out.Data<std::int8_t>()[1], -10);
  EXPECT_EQ(out.Data<std::int8_t>()[2], 50);
}

TEST(Requantize, ZeroPointShift) {
  const QuantParams in_q(0.1f, 0);
  const QuantParams out_q(0.1f, 10);
  NDArray in = NDArray::FromVector<std::int8_t>(Shape({2}), {0, 50});
  NDArray out = NDArray::Empty(in.shape(), DType::kInt8);
  RequantizeS8(in, out, in_q, out_q);
  EXPECT_EQ(out.Data<std::int8_t>()[0], 10);
  EXPECT_EQ(out.Data<std::int8_t>()[1], 60);
}

TEST(QAdd, TracksRealAddition) {
  const QuantParams a_q(0.1f, 0);
  const QuantParams b_q(0.05f, -4);
  const QuantParams out_q(0.2f, 2);
  NDArray a = NDArray::RandomInt8(Shape({128}), 1, -100, 100);
  NDArray b = NDArray::RandomInt8(Shape({128}), 2, -100, 100);
  NDArray out = NDArray::Empty(a.shape(), DType::kInt8);
  QAddS8(a, b, out, a_q, b_q, out_q);
  for (std::int64_t i = 0; i < 128; ++i) {
    const float real = a_q.Dequantize(a.Data<std::int8_t>()[i]) +
                       b_q.Dequantize(b.Data<std::int8_t>()[i]);
    const float clamped = std::clamp(real, out_q.Dequantize(-128), out_q.Dequantize(127));
    EXPECT_NEAR(out_q.Dequantize(out.Data<std::int8_t>()[i]), clamped, out_q.scale);
  }
}

TEST(QMul, TracksRealMultiplication) {
  const QuantParams a_q(0.1f, 0);
  const QuantParams b_q(0.1f, 0);
  const QuantParams out_q(0.5f, 0);
  NDArray a = NDArray::RandomInt8(Shape({64}), 3, -50, 50);
  NDArray b = NDArray::RandomInt8(Shape({64}), 4, -50, 50);
  NDArray out = NDArray::Empty(a.shape(), DType::kInt8);
  QMulS8(a, b, out, a_q, b_q, out_q);
  for (std::int64_t i = 0; i < 64; ++i) {
    const float real = a_q.Dequantize(a.Data<std::int8_t>()[i]) *
                       b_q.Dequantize(b.Data<std::int8_t>()[i]);
    const float clamped = std::clamp(real, out_q.Dequantize(-128), out_q.Dequantize(127));
    EXPECT_NEAR(out_q.Dequantize(out.Data<std::int8_t>()[i]), clamped, out_q.scale);
  }
}

TEST(QConcat, RescalesInputs) {
  const QuantParams a_q(0.1f, 0);
  const QuantParams b_q(0.2f, 0);
  const QuantParams out_q(0.2f, 0);
  NDArray a = NDArray::FromVector<std::int8_t>(Shape({1, 2}), {20, 40});   // 2.0, 4.0
  NDArray b = NDArray::FromVector<std::int8_t>(Shape({1, 2}), {10, 20});   // 2.0, 4.0
  NDArray out = NDArray::Empty(Shape({1, 4}), DType::kInt8);
  QConcatS8({a, b}, {a_q, b_q}, out, out_q, 1);
  // In output scale 0.2: 2.0 -> 10, 4.0 -> 20 for both halves.
  EXPECT_EQ(out.Data<std::int8_t>()[0], 10);
  EXPECT_EQ(out.Data<std::int8_t>()[1], 20);
  EXPECT_EQ(out.Data<std::int8_t>()[2], 10);
  EXPECT_EQ(out.Data<std::int8_t>()[3], 20);
}

TEST(QConcat, SameParamsAvoidCopyError) {
  const QuantParams q(0.1f, 0);
  NDArray a = NDArray::RandomInt8(Shape({1, 3}), 5);
  NDArray b = NDArray::RandomInt8(Shape({1, 3}), 6);
  NDArray out = NDArray::Empty(Shape({1, 6}), DType::kInt8);
  QConcatS8({a, b}, {q, q}, out, q, 1);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(out.Data<std::int8_t>()[i], a.Data<std::int8_t>()[i]);
    EXPECT_EQ(out.Data<std::int8_t>()[3 + i], b.Data<std::int8_t>()[i]);
  }
}

TEST(Quantize, InvalidParamsThrow) {
  NDArray in = NDArray::Zeros(Shape({2}), DType::kFloat32);
  NDArray out = NDArray::Empty(Shape({2}), DType::kInt8);
  EXPECT_THROW(QuantizeF32ToS8(in, out, QuantParams::None()), InternalError);
}

}  // namespace
}  // namespace kernels
}  // namespace tnp
