// Computation scheduling (Section 5.1) and pipeline scheduling (Section 5.2):
// best-flow selection, timeline properties, assignment policies.
#include <gtest/gtest.h>

#include <map>

#include "core/scheduler.h"

namespace tnp {
namespace core {
namespace {

ModelProfile MakeProfile(const std::string& name,
                         std::map<FlowKind, double> latencies) {
  ModelProfile profile;
  profile.model = name;
  profile.latency_us = std::move(latencies);
  return profile;
}

TEST(ComputationSchedulerTest, PicksMinimumLatency) {
  const ModelProfile profile = MakeProfile("m", {{FlowKind::kTvmOnly, 100.0},
                                                 {FlowKind::kByocCpuApu, 40.0},
                                                 {FlowKind::kNpApu, 55.0}});
  const Assignment best = ComputationScheduler::BestFlow(profile);
  EXPECT_EQ(best.flow, FlowKind::kByocCpuApu);
  EXPECT_DOUBLE_EQ(best.latency_us, 40.0);
}

TEST(ComputationSchedulerTest, RespectsResourceConstraint) {
  const ModelProfile profile = MakeProfile("m", {{FlowKind::kByocCpuApu, 40.0},
                                                 {FlowKind::kByocCpu, 70.0},
                                                 {FlowKind::kNpApu, 55.0}});
  const auto cpu_only =
      ComputationScheduler::BestFlowWithin(profile, {sim::Resource::kCpu});
  ASSERT_TRUE(cpu_only.has_value());
  EXPECT_EQ(cpu_only->flow, FlowKind::kByocCpu);

  const auto apu_only =
      ComputationScheduler::BestFlowWithin(profile, {sim::Resource::kApu});
  ASSERT_TRUE(apu_only.has_value());
  EXPECT_EQ(apu_only->flow, FlowKind::kNpApu);
}

TEST(ComputationSchedulerTest, NoFlowWithinConstraintReturnsEmpty) {
  const ModelProfile profile = MakeProfile("m", {{FlowKind::kByocCpuApu, 40.0}});
  EXPECT_FALSE(
      ComputationScheduler::BestFlowWithin(profile, {sim::Resource::kApu}).has_value());
}

TEST(ComputationSchedulerTest, EmptyProfileThrows) {
  EXPECT_THROW(ComputationScheduler::BestFlow(MakeProfile("m", {})), InternalError);
}

TEST(ComputationSchedulerTest, AllFlowsUnsupportedThrows) {
  // A model every flow rejected: the profile carries only errors, no
  // latencies. Selection must fail loudly, never silently pick a flow.
  ModelProfile profile = MakeProfile("unsupported", {});
  for (const FlowKind flow : kAllFlows) {
    profile.errors[flow] = "op not supported by " + std::string(FlowName(flow));
  }
  EXPECT_THROW(ComputationScheduler::BestFlow(profile), InternalError);
  EXPECT_THROW(ComputationScheduler::PlanForServing(profile), InternalError);
  EXPECT_FALSE(
      ComputationScheduler::BestFlowWithin(profile, {sim::Resource::kCpu}).has_value());
  EXPECT_FALSE(
      ComputationScheduler::BestFlowWithin(profile, {sim::Resource::kApu}).has_value());
}

TEST(ComputationSchedulerTest, MissingResourcesFallsBackToFlowResources) {
  // Hand-built profiles carry no measured `resources` map; ResourcesOf must
  // derive the conservative per-flow resource set instead.
  const ModelProfile profile = MakeProfile("m", {{FlowKind::kByocCpuApu, 40.0}});
  EXPECT_TRUE(profile.resources.empty());
  for (const FlowKind flow : kAllFlows) {
    EXPECT_EQ(profile.ResourcesOf(flow), FlowResources(flow));
  }
}

TEST(ComputationSchedulerTest, MeasuredResourcesOverrideFlowResources) {
  ModelProfile profile = MakeProfile("m", {{FlowKind::kByocCpuApu, 40.0}});
  // Profiling found the partitioner offloaded everything: CPU+APU flow
  // actually only occupies the APU.
  profile.resources[FlowKind::kByocCpuApu] = {sim::Resource::kApu};
  EXPECT_EQ(profile.ResourcesOf(FlowKind::kByocCpuApu),
            std::vector<sim::Resource>{sim::Resource::kApu});
  // Other flows still fall back.
  EXPECT_EQ(profile.ResourcesOf(FlowKind::kNpCpu), FlowResources(FlowKind::kNpCpu));
}

// ------------------------------------------------------------- serve plans

TEST(ServePlanTest, ApuPrimaryGetsCpuFallback) {
  const ModelProfile profile = MakeProfile("emo", {{FlowKind::kNpApu, 22.0},
                                                   {FlowKind::kNpCpu, 50.0},
                                                   {FlowKind::kTvmOnly, 90.0}});
  const ServePlan plan = ComputationScheduler::PlanForServing(profile);
  EXPECT_EQ(plan.primary.flow, FlowKind::kNpApu);
  ASSERT_TRUE(plan.cpu_fallback.has_value());
  EXPECT_EQ(plan.cpu_fallback->flow, FlowKind::kNpCpu);  // best CPU-only, not kTvmOnly
  EXPECT_DOUBLE_EQ(plan.cpu_fallback->latency_us, 50.0);
}

TEST(ServePlanTest, CpuOnlyPrimaryHasNoFallback) {
  const ModelProfile profile =
      MakeProfile("det", {{FlowKind::kByocCpu, 30.0}, {FlowKind::kNpApu, 60.0}});
  const ServePlan plan = ComputationScheduler::PlanForServing(profile);
  EXPECT_EQ(plan.primary.flow, FlowKind::kByocCpu);
  EXPECT_FALSE(plan.cpu_fallback.has_value());
}

TEST(ServePlanTest, ApuOnlyModelHasNoFallback) {
  // The model supports no CPU-only flow at all: primary only, the server
  // must shed rather than degrade.
  const ModelProfile profile = MakeProfile("apu-only", {{FlowKind::kNpApu, 22.0}});
  const ServePlan plan = ComputationScheduler::PlanForServing(profile);
  EXPECT_EQ(plan.primary.flow, FlowKind::kNpApu);
  EXPECT_FALSE(plan.cpu_fallback.has_value());
}

// --------------------------------------------------------------- timeline

TEST(Timeline, ResourceExclusivitySerializes) {
  sim::Timeline timeline;
  const double end1 = timeline.Schedule("a", sim::Resource::kCpu, 0.0, 10.0);
  const double end2 = timeline.Schedule("b", sim::Resource::kCpu, 0.0, 10.0);
  EXPECT_DOUBLE_EQ(end1, 10.0);
  EXPECT_DOUBLE_EQ(end2, 20.0);  // serialized on the shared CPU
  const double end3 = timeline.Schedule("c", sim::Resource::kApu, 0.0, 5.0);
  EXPECT_DOUBLE_EQ(end3, 5.0);  // APU is free, runs in parallel
}

TEST(Timeline, MultiResourceHoldsBoth) {
  sim::Timeline timeline;
  timeline.Schedule("cpu-work", sim::Resource::kCpu, 0.0, 10.0);
  const double end = timeline.ScheduleMulti(
      "both", {sim::Resource::kCpu, sim::Resource::kApu}, 0.0, 5.0);
  EXPECT_DOUBLE_EQ(end, 15.0);  // waits for the CPU
  // And the APU is now busy until 15 too.
  const double apu_end = timeline.Schedule("apu-work", sim::Resource::kApu, 0.0, 1.0);
  EXPECT_DOUBLE_EQ(apu_end, 16.0);
}

TEST(Timeline, AsciiRenderContainsLabels) {
  sim::Timeline timeline;
  timeline.Schedule("det#0", sim::Resource::kCpu, 0.0, 10.0);
  timeline.Schedule("emo#0", sim::Resource::kApu, 10.0, 5.0);
  const std::string chart = timeline.RenderAscii(40);
  EXPECT_NE(chart.find("CPU"), std::string::npos);
  EXPECT_NE(chart.find("APU"), std::string::npos);
  EXPECT_NE(chart.find("det#0"), std::string::npos);
}

// ---------------------------------------------------------------- pipeline

std::vector<PipelineStage> PaperLikeStages() {
  // Figure-5 shape: detection CPU-only, anti-spoof CPU+APU, emotion APU.
  return {
      PipelineStage{"obj-det", FlowKind::kByocCpu, 30.0},
      PipelineStage{"anti-spoof", FlowKind::kByocCpuApu, 20.0},
      PipelineStage{"emotion", FlowKind::kNpApu, 25.0},
  };
}

TEST(PipelineScheduling, MakespanNeverExceedsSequential) {
  const PipelineResult result = SchedulePipeline(PaperLikeStages(), 8);
  EXPECT_LE(result.makespan_us, result.sequential_us + 1e-9);
  EXPECT_GE(result.speedup, 1.0);
}

TEST(PipelineScheduling, DisjointResourcesOverlap) {
  // CPU-only stage and APU-only stage of successive frames overlap, so the
  // 2-stage pipeline beats sequential execution.
  const std::vector<PipelineStage> stages = {
      PipelineStage{"cpu", FlowKind::kByocCpu, 30.0},
      PipelineStage{"apu", FlowKind::kNpApu, 30.0},
  };
  const PipelineResult result = SchedulePipeline(stages, 16);
  EXPECT_GT(result.speedup, 1.7);  // near-perfect overlap for equal stages
}

TEST(PipelineScheduling, SharedResourceCannotOverlap) {
  const std::vector<PipelineStage> stages = {
      PipelineStage{"a", FlowKind::kByocCpu, 30.0},
      PipelineStage{"b", FlowKind::kNpCpu, 30.0},
  };
  const PipelineResult result = SchedulePipeline(stages, 8);
  EXPECT_NEAR(result.speedup, 1.0, 1e-9);  // both stages fight for the CPU
}

TEST(PipelineScheduling, NoResourceOverlapsInTimeline) {
  const PipelineResult result = SchedulePipeline(PaperLikeStages(), 12);
  // Property: spans on the same resource never overlap.
  for (int r = 0; r < sim::kNumResources; ++r) {
    std::vector<std::pair<double, double>> spans;
    for (const auto& span : result.timeline.spans()) {
      if (static_cast<int>(span.resource) == r) spans.emplace_back(span.start_us, span.end_us);
    }
    std::sort(spans.begin(), spans.end());
    for (std::size_t i = 1; i < spans.size(); ++i) {
      EXPECT_GE(spans[i].first, spans[i - 1].second - 1e-9);
    }
  }
}

TEST(PipelineScheduling, FrameDependencyHolds) {
  // Stage s of frame f starts only after stage s-1 of frame f finished.
  const PipelineResult result = SchedulePipeline(PaperLikeStages(), 6);
  std::map<std::string, std::pair<double, double>> span_of;
  for (const auto& span : result.timeline.spans()) {
    // Multi-resource stages produce several spans with identical times.
    span_of[span.label] = {span.start_us, span.end_us};
  }
  for (int f = 0; f < 6; ++f) {
    const auto det = span_of.at("obj-det#" + std::to_string(f));
    const auto anti = span_of.at("anti-spoof#" + std::to_string(f));
    const auto emo = span_of.at("emotion#" + std::to_string(f));
    EXPECT_GE(anti.first, det.second - 1e-9);
    EXPECT_GE(emo.first, anti.second - 1e-9);
  }
}

TEST(PipelineScheduling, PaperPrototypeMovesFirstStageToCpu) {
  // Object detection's best flow is CPU+APU, but the prototype policy must
  // pin it to a CPU-only flow (Figure 5's yellow->blue move).
  std::vector<ModelProfile> profiles = {
      MakeProfile("obj-det", {{FlowKind::kByocCpuApu, 25.0}, {FlowKind::kByocCpu, 32.0}}),
      MakeProfile("anti-spoof", {{FlowKind::kByocCpuApu, 20.0}, {FlowKind::kByocCpu, 60.0}}),
      MakeProfile("emotion", {{FlowKind::kNpApu, 22.0}, {FlowKind::kNpCpu, 50.0}}),
  };
  const auto stages = PaperPrototypeAssignment(profiles);
  ASSERT_EQ(stages.size(), 3u);
  EXPECT_EQ(stages[0].flow, FlowKind::kByocCpu);
  EXPECT_EQ(stages[1].flow, FlowKind::kByocCpuApu);
  EXPECT_EQ(stages[2].flow, FlowKind::kNpApu);
}

TEST(PipelineScheduling, PrototypeBeatsAllBestAssignments) {
  // With every model on its individually-best CPU+APU flow, nothing
  // overlaps; the prototype's CPU-only detection unlocks pipelining.
  std::vector<ModelProfile> profiles = {
      MakeProfile("obj-det", {{FlowKind::kByocCpuApu, 25.0}, {FlowKind::kByocCpu, 32.0}}),
      MakeProfile("anti-spoof", {{FlowKind::kByocCpuApu, 20.0}}),
      MakeProfile("emotion", {{FlowKind::kNpApu, 22.0}}),
  };
  std::vector<PipelineStage> greedy_stages;
  for (const auto& profile : profiles) {
    const Assignment a = ComputationScheduler::BestFlow(profile);
    greedy_stages.push_back(PipelineStage{profile.model, a.flow, a.latency_us});
  }
  const double greedy = SchedulePipeline(greedy_stages, 16).makespan_us;
  const double prototype =
      SchedulePipeline(PaperPrototypeAssignment(profiles), 16).makespan_us;
  EXPECT_LT(prototype, greedy);
}

TEST(PipelineScheduling, ExhaustiveSearchAtLeastAsGoodAsPrototype) {
  std::vector<ModelProfile> profiles = {
      MakeProfile("obj-det", {{FlowKind::kByocCpuApu, 25.0},
                              {FlowKind::kByocCpu, 32.0},
                              {FlowKind::kNpCpu, 40.0}}),
      MakeProfile("anti-spoof", {{FlowKind::kByocCpuApu, 20.0}, {FlowKind::kNpCpu, 45.0}}),
      MakeProfile("emotion", {{FlowKind::kNpApu, 22.0}, {FlowKind::kNpCpu, 50.0}}),
  };
  const double best = SchedulePipeline(ChoosePipelineAssignment(profiles, 16), 16).makespan_us;
  const double prototype =
      SchedulePipeline(PaperPrototypeAssignment(profiles), 16).makespan_us;
  EXPECT_LE(best, prototype + 1e-9);
}

TEST(PipelineScheduling, ThroughputMatchesMakespan) {
  const PipelineResult result = SchedulePipeline(PaperLikeStages(), 10);
  EXPECT_NEAR(result.throughput_fps, 10.0 / (result.makespan_us / 1e6), 1e-6);
}

}  // namespace
}  // namespace core
}  // namespace tnp
