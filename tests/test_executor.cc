// relay::Build + GraphExecutor: lowering, execution, outputs, simulated
// latency accounting, fusion ablation.
#include <gtest/gtest.h>

#include "frontend/common.h"
#include "relay/build.h"
#include "relay/pass.h"

namespace tnp {
namespace relay {
namespace {

using frontend::TypedCall;
using frontend::TypedVar;
using frontend::WeightF32;
using frontend::ZeroBiasF32;

Module ConvReluModule() {
  auto x = TypedVar("data", Shape({1, 3, 8, 8}), DType::kFloat32);
  auto conv = TypedCall("nn.conv2d", {x, WeightF32(Shape({4, 3, 3, 3}), 1), ZeroBiasF32(4)},
                        Attrs().SetInts("padding", {1, 1}));
  auto relu = TypedCall("nn.relu", {conv});
  return Module(MakeFunction({x}, relu));
}

TEST(Build, ProducesExecutableProgram) {
  const CompiledModulePtr compiled = Build(ConvReluModule());
  EXPECT_GT(compiled->instructions.size(), 0u);
  EXPECT_EQ(compiled->num_outputs, 1);
  EXPECT_EQ(compiled->input_slots.count("data"), 1u);
  EXPECT_GT(compiled->TotalMacs(), 0);
}

TEST(Executor, RunsAndProducesOutput) {
  GraphExecutor exec(Build(ConvReluModule()));
  exec.SetInput("data", NDArray::RandomNormal(Shape({1, 3, 8, 8}), 5));
  exec.Run();
  const NDArray out = exec.GetOutput(0);
  EXPECT_EQ(out.shape(), Shape({1, 4, 8, 8}));
  for (float v : out.Span<float>()) EXPECT_GE(v, 0.0f);  // relu output
}

TEST(Executor, UnknownInputThrows) {
  GraphExecutor exec(Build(ConvReluModule()));
  EXPECT_THROW(exec.SetInput("nope", NDArray::Zeros(Shape({1}), DType::kFloat32)), Error);
}

TEST(Executor, OutputIndexRangeChecked) {
  GraphExecutor exec(Build(ConvReluModule()));
  exec.SetInput("data", NDArray::Zeros(Shape({1, 3, 8, 8}), DType::kFloat32));
  exec.Run();
  EXPECT_THROW(exec.GetOutput(1), InternalError);
}

TEST(Executor, TupleOutputs) {
  auto x = TypedVar("data", Shape({1, 4}), DType::kFloat32);
  auto relu = TypedCall("nn.relu", {x});
  auto tanh_e = TypedCall("tanh", {x});
  Module module(MakeFunction({x}, MakeTuple({relu, tanh_e})));
  GraphExecutor exec(Build(module));
  EXPECT_EQ(exec.NumOutputs(), 2);
  exec.SetInput("data", NDArray::FromVector<float>(Shape({1, 4}), {-1, 0, 1, 2}));
  exec.Run();
  EXPECT_FLOAT_EQ(exec.GetOutput(0).Data<float>()[0], 0.0f);
  EXPECT_NEAR(exec.GetOutput(1).Data<float>()[3], std::tanh(2.0f), 1e-6);
}

TEST(Executor, MultipleInputs) {
  auto a = TypedVar("a", Shape({1, 4}), DType::kFloat32);
  auto b = TypedVar("b", Shape({1, 4}), DType::kFloat32);
  Module module(MakeFunction({a, b}, TypedCall("add", {a, b})));
  GraphExecutor exec(Build(module));
  exec.SetInput("a", NDArray::Full(Shape({1, 4}), DType::kFloat32, 1.0));
  exec.SetInput("b", NDArray::Full(Shape({1, 4}), DType::kFloat32, 2.0));
  exec.Run();
  EXPECT_FLOAT_EQ(exec.GetOutput(0).Data<float>()[0], 3.0f);
}

TEST(Executor, SimClockAccountsOps) {
  GraphExecutor exec(Build(ConvReluModule()));
  exec.SetInput("data", NDArray::Zeros(Shape({1, 3, 8, 8}), DType::kFloat32));
  exec.Run();
  const sim::SimClock& clock = exec.last_clock();
  EXPECT_GT(clock.total_us(), 0.0);
  EXPECT_GT(clock.num_ops(), 0);
  EXPECT_EQ(clock.per_device_us().count(sim::DeviceKind::kTvmCpu), 1u);
}

TEST(Executor, EstimateMatchesRunClock) {
  const CompiledModulePtr compiled = Build(ConvReluModule());
  GraphExecutor exec(compiled);
  exec.SetInput("data", NDArray::Zeros(Shape({1, 3, 8, 8}), DType::kFloat32));
  exec.Run();
  // Simulation-only estimate equals the clock of an actual run: the model
  // is analytic, not wall-clock based.
  EXPECT_DOUBLE_EQ(compiled->EstimateLatency().total_us(), exec.last_clock().total_us());
}

TEST(Build, FusionReducesSimulatedLatency) {
  const Module module = ConvReluModule();
  BuildOptions fused;
  fused.enable_fusion = true;
  BuildOptions unfused;
  unfused.enable_fusion = false;
  const double fused_us = Build(module, fused)->EstimateLatency().total_us();
  const double unfused_us = Build(module, unfused)->EstimateLatency().total_us();
  EXPECT_LT(fused_us, unfused_us);  // one launch overhead instead of two
}

TEST(Build, FusionPreservesNumerics) {
  const Module module = ConvReluModule();
  NDArray input = NDArray::RandomNormal(Shape({1, 3, 8, 8}), 11);
  BuildOptions fused;
  BuildOptions unfused;
  unfused.enable_fusion = false;
  GraphExecutor a(Build(module, fused));
  GraphExecutor b(Build(module, unfused));
  a.SetInput("data", input);
  b.SetInput("data", input);
  a.Run();
  b.Run();
  EXPECT_TRUE(NDArray::BitEqual(a.GetOutput(0), b.GetOutput(0)));
}

TEST(Build, HostDeviceAffectsLatency) {
  const Module module = ConvReluModule();
  BuildOptions tvm;
  tvm.host_device = sim::DeviceKind::kTvmCpu;
  BuildOptions np;
  np.host_device = sim::DeviceKind::kNeuronCpu;
  // The NeuroPilot-tuned CPU is faster than the TVM-kernel CPU for the same
  // program (the paper's central observation).
  EXPECT_LT(Build(module, np)->EstimateLatency().total_us(),
            Build(module, tvm)->EstimateLatency().total_us());
}

TEST(Build, ProfileCoversAllOps) {
  const CompiledModulePtr compiled = Build(ConvReluModule());
  const auto profile = compiled->Profile();
  ASSERT_FALSE(profile.empty());
  double total = 0.0;
  std::int64_t macs = 0;
  for (const auto& entry : profile) {
    EXPECT_GT(entry.us, 0.0);
    total += entry.us;
    macs += entry.macs;
  }
  // The per-op profile sums exactly to the static latency estimate (no
  // transfers in a host-only program).
  EXPECT_NEAR(total, compiled->EstimateLatency().total_us(), 1e-6);
  EXPECT_EQ(macs, compiled->TotalMacs());
}

TEST(Build, GlobalCallToMissingExternalThrows) {
  auto x = TypedVar("x", Shape({1, 4}), DType::kFloat32);
  Module module(MakeFunction({x}, MakeGlobalCall("nowhere", {x})));
  EXPECT_THROW(Build(module), Error);
}

TEST(CostModel, ApuFasterForLargeConvs) {
  const sim::CostModel cost(sim::Testbed::Dimensity800());
  sim::OpDesc big_conv;
  big_conv.category = sim::OpCategory::kConv;
  big_conv.macs = 500'000'000;
  big_conv.input_bytes = 1 << 20;
  big_conv.output_bytes = 1 << 20;
  EXPECT_LT(cost.OpMicros(big_conv, sim::DeviceKind::kNeuronApu),
            cost.OpMicros(big_conv, sim::DeviceKind::kNeuronCpu));
  EXPECT_LT(cost.OpMicros(big_conv, sim::DeviceKind::kNeuronCpu),
            cost.OpMicros(big_conv, sim::DeviceKind::kTvmCpu));
}

TEST(CostModel, TinyOpsPreferCpuOverApu) {
  const sim::CostModel cost(sim::Testbed::Dimensity800());
  sim::OpDesc tiny;
  tiny.category = sim::OpCategory::kConv;
  tiny.macs = 10'000;
  tiny.input_bytes = 4096;
  tiny.output_bytes = 4096;
  // Launch overhead + utilization ramp make the APU slower on tiny layers.
  EXPECT_LT(cost.OpMicros(tiny, sim::DeviceKind::kNeuronCpu),
            cost.OpMicros(tiny, sim::DeviceKind::kNeuronApu));
}

TEST(CostModel, Int8BeatsFloatOnApu) {
  const sim::CostModel cost(sim::Testbed::Dimensity800());
  sim::OpDesc conv;
  conv.category = sim::OpCategory::kConv;
  conv.macs = 100'000'000;
  sim::OpDesc qconv = conv;
  qconv.int8 = true;
  EXPECT_LT(cost.OpMicros(qconv, sim::DeviceKind::kNeuronApu),
            cost.OpMicros(conv, sim::DeviceKind::kNeuronApu));
}

TEST(CostModel, TransferFreeWithinResource) {
  const sim::CostModel cost(sim::Testbed::Dimensity800());
  EXPECT_EQ(cost.TransferMicros(1 << 20, sim::DeviceKind::kTvmCpu,
                                sim::DeviceKind::kNeuronCpu),
            0.0);
  EXPECT_GT(cost.TransferMicros(1 << 20, sim::DeviceKind::kNeuronCpu,
                                sim::DeviceKind::kNeuronApu),
            0.0);
}

}  // namespace
}  // namespace relay
}  // namespace tnp
