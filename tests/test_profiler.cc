// The always-on sampling profiler: slot registration, label/state
// publication, the alloc-free fold table, collapsed-stack and JSON exports,
// and sampling concurrent with a loaded work-stealing pool (the racy-read
// design TSan must accept).
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "support/json.h"
#include "support/profiler.h"
#include "support/thread_pool.h"

namespace tnp {
namespace support {
namespace profiler {
namespace {

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

TEST(Profiler, RegistrationIsPerThreadAndIdempotent) {
  Profiler::Global().Reset();
  std::atomic<bool> registered_in_thread{false};
  std::thread worker([&] {
    EXPECT_FALSE(ThreadRegistered());
    RegisterThread("unit");
    RegisterThread("unit");  // idempotent, must not claim a second slot
    registered_in_thread.store(ThreadRegistered());
  });
  worker.join();
  EXPECT_TRUE(registered_in_thread.load());
}

TEST(Profiler, SampleFoldsLabelStack) {
  Profiler::Global().Reset();
  std::atomic<bool> ready{false};
  std::atomic<bool> done{false};
  std::thread worker([&] {
    RegisterThread("unit");
    SetThreadState(ThreadState::kRunning);
    LabelScope outer("outer-label");
    LabelScope inner("inner-label");
    ready.store(true);
    while (!done.load()) std::this_thread::yield();
  });
  while (!ready.load()) std::this_thread::yield();
  Profiler::Global().SampleOnce();
  done.store(true);
  worker.join();

  const std::string folded = Profiler::Global().ExportFolded();
  EXPECT_TRUE(Contains(folded, "unit;outer-label;inner-label"))
      << "folded export was:\n"
      << folded;
  const ProfileStats stats = Profiler::Global().stats();
  EXPECT_GE(stats.samples, 1u);
  EXPECT_GE(stats.thread_samples, 1u);
  EXPECT_GE(stats.distinct_stacks, 1u);
}

TEST(Profiler, StateRendersAsTrailingPseudoFrame) {
  Profiler::Global().Reset();
  std::atomic<int> stage{0};
  std::thread worker([&] {
    RegisterThread("unit");
    {
      StateScope blocked(ThreadState::kBlocked);
      stage.store(1);
      while (stage.load() == 1) std::this_thread::yield();
    }
    // StateScope restored the previous state (kIdle for a fresh slot).
    stage.store(3);
    while (stage.load() == 3) std::this_thread::yield();
  });
  while (stage.load() != 1) std::this_thread::yield();
  Profiler::Global().SampleOnce();
  stage.store(2);
  while (stage.load() != 3) std::this_thread::yield();
  Profiler::Global().SampleOnce();
  stage.store(4);
  worker.join();

  const std::string folded = Profiler::Global().ExportFolded();
  EXPECT_TRUE(Contains(folded, "unit;(blocked)")) << folded;
  EXPECT_TRUE(Contains(folded, "unit;(idle)")) << folded;
}

TEST(Profiler, LabelScopeLazilyRegistersUnderThreadRoot) {
  Profiler::Global().Reset();
  std::atomic<bool> ready{false};
  std::atomic<bool> done{false};
  std::thread worker([&] {
    LabelScope label("lazy-label");  // no explicit RegisterThread
    ready.store(true);
    while (!done.load()) std::this_thread::yield();
  });
  while (!ready.load()) std::this_thread::yield();
  Profiler::Global().SampleOnce();
  done.store(true);
  worker.join();
  EXPECT_TRUE(Contains(Profiler::Global().ExportFolded(), "thread;lazy-label"));
}

TEST(Profiler, ExportJsonIsValidAndDeterministicSchema) {
  Profiler::Global().Reset();
  Profiler::Global().SampleOnce();
  const std::string json = Profiler::Global().ExportJson();
  const JsonValue doc = JsonValue::Parse(json);
  ASSERT_TRUE(doc.is_object());
  for (const char* key :
       {"samples", "thread_samples", "fold_dropped", "slot_overflow",
        "alloc_events", "stacks"}) {
    EXPECT_NE(doc.Find(key), nullptr) << "missing key " << key;
  }
  ASSERT_TRUE(doc.Find("stacks")->is_array());
  for (const JsonValue& entry : doc.Find("stacks")->array()) {
    ASSERT_TRUE(entry.is_object());
    EXPECT_NE(entry.Find("stack"), nullptr);
    EXPECT_NE(entry.Find("count"), nullptr);
  }
}

TEST(Profiler, ResetClearsFoldedCounts) {
  Profiler::Global().Reset();
  Profiler::Global().SampleOnce();
  ASSERT_GE(Profiler::Global().stats().samples, 1u);
  Profiler::Global().Reset();
  const ProfileStats stats = Profiler::Global().stats();
  EXPECT_EQ(stats.samples, 0u);
  EXPECT_EQ(stats.thread_samples, 0u);
  EXPECT_EQ(stats.distinct_stacks, 0u);
}

TEST(Profiler, SamplesConcurrentlyWithLoadedPool) {
  Profiler::Global().Reset();
  std::atomic<bool> stop{false};
  std::thread sampler([&] {
    while (!stop.load()) Profiler::Global().SampleOnce();
  });

  for (int round = 0; round < 50; ++round) {
    TaskGroup group;
    for (int t = 0; t < 16; ++t) {
      group.Run([] {
        LabelScope label("pool-task");
        volatile double sink = 0.0;
        for (int i = 0; i < 2000; ++i) sink = sink + static_cast<double>(i);
        (void)sink;
      });
    }
    group.Wait();
  }
  stop.store(true);
  sampler.join();

  const ProfileStats stats = Profiler::Global().stats();
  EXPECT_GT(stats.samples, 0u);
  // The folded table and both exports stay self-consistent after the storm.
  const JsonValue doc = JsonValue::Parse(Profiler::Global().ExportJson());
  ASSERT_TRUE(doc.is_object());
  EXPECT_GE(doc.NumberOr("samples", -1.0), 1.0);
  // Pool workers register under the literal "pool" root; with 50 rounds of
  // labelled tasks at least one sample lands inside one.
  EXPECT_TRUE(Contains(Profiler::Global().ExportFolded(), "pool"));
}

TEST(Profiler, SamplePathIsAllocFree) {
  Profiler::Global().Reset();
  std::atomic<bool> done{false};
  std::thread worker([&] {
    RegisterThread("unit");
    LabelScope label("steady");
    while (!done.load()) std::this_thread::yield();
  });
  for (int i = 0; i < 200; ++i) Profiler::Global().SampleOnce();
  done.store(true);
  worker.join();
  // The profiler's own honesty counter: publication and sampling take no
  // heap in steady state (the bench gate enforces the same invariant with a
  // replaced operator new).
  EXPECT_EQ(Profiler::Global().stats().alloc_events, 0);
}

}  // namespace
}  // namespace profiler
}  // namespace support
}  // namespace tnp
