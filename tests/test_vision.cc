// Vision substrate: geometry, image utilities, scene rendering, classical
// detectors, SSD decode plumbing.
#include <gtest/gtest.h>

#include "vision/detector.h"
#include "vision/image.h"
#include "vision/scene.h"

namespace tnp {
namespace vision {
namespace {

TEST(Geometry, IoU) {
  const Box a{0, 0, 10, 10};
  const Box b{5, 5, 10, 10};
  EXPECT_NEAR(IoU(a, b), 25.0 / 175.0, 1e-9);
  EXPECT_DOUBLE_EQ(IoU(a, a), 1.0);
  EXPECT_DOUBLE_EQ(IoU(a, Box{20, 20, 5, 5}), 0.0);
}

TEST(Geometry, Overlaps) {
  EXPECT_TRUE(Overlaps(Box{0, 0, 10, 10}, Box{9, 9, 5, 5}));
  EXPECT_FALSE(Overlaps(Box{0, 0, 10, 10}, Box{10, 0, 5, 5}));  // touching != overlap
  EXPECT_FALSE(Overlaps(Box{0, 0, 10, 10}, Box{11, 0, 5, 5}));
}

TEST(Geometry, NmsKeepsBestPerCluster) {
  std::vector<Detection> detections = {
      {Box{0, 0, 10, 10}, 0.9, 0},
      {Box{1, 1, 10, 10}, 0.8, 0},  // overlaps first
      {Box{50, 50, 10, 10}, 0.7, 0},
  };
  const auto kept = Nms(detections, 0.3);
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_DOUBLE_EQ(kept[0].score, 0.9);
  EXPECT_DOUBLE_EQ(kept[1].score, 0.7);
}

TEST(Geometry, EmotionNames) {
  EXPECT_STREQ(EmotionName(Emotion::kHappy), "happy");
  EXPECT_STREQ(EmotionName(Emotion::kSurprised), "surprised");
}

TEST(ImageUtil, RgbToGrayWeights) {
  NDArray frame = NDArray::Zeros(Shape({1, 3, 2, 2}), DType::kFloat32);
  SetPixel(frame, 0, 0, 0, 1.0f);  // pure red pixel
  const NDArray gray = RgbToGray(frame);
  EXPECT_NEAR(gray.Data<float>()[0], 0.299f, 1e-6);
}

TEST(ImageUtil, CropClampsToFrame) {
  NDArray frame = NDArray::RandomNormal(Shape({1, 3, 20, 20}), 1);
  const NDArray crop = Crop(frame, Box{15, 15, 10, 10});
  EXPECT_EQ(crop.shape(), Shape({1, 3, 5, 5}));
  EXPECT_FLOAT_EQ(GetPixel(crop, 0, 0, 0), GetPixel(frame, 0, 15, 15));
}

TEST(ImageUtil, ResizeIdentity) {
  NDArray image = NDArray::RandomNormal(Shape({1, 1, 8, 8}), 2);
  const NDArray same = ResizeBilinear(image, 8, 8);
  EXPECT_LT(NDArray::MaxAbsDiff(image, same), 1e-6);
}

TEST(ImageUtil, ResizeInterpolates) {
  NDArray image = NDArray::Zeros(Shape({1, 1, 1, 2}), DType::kFloat32);
  image.Data<float>()[1] = 1.0f;
  const NDArray wide = ResizeBilinear(image, 1, 3);
  EXPECT_NEAR(wide.Data<float>()[1], 0.5f, 1e-6);  // midpoint
}

TEST(ImageUtil, FaceCrop48Shape) {
  NDArray frame = NDArray::RandomNormal(Shape({1, 3, 100, 100}), 3);
  const NDArray crop = FaceCrop48(frame, Box{10, 10, 40, 40});
  EXPECT_EQ(crop.shape(), Shape({1, 1, 48, 48}));
}

TEST(SceneTest, DeterministicGeneration) {
  const Scene a = Scene::Random(320, 240, 3, 2, 5);
  const Scene b = Scene::Random(320, 240, 3, 2, 5);
  ASSERT_EQ(a.persons.size(), b.persons.size());
  for (std::size_t i = 0; i < a.persons.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.persons[i].face.x, b.persons[i].face.x);
    EXPECT_EQ(a.persons[i].spoof, b.persons[i].spoof);
  }
}

TEST(SceneTest, EntitiesDoNotOverlap) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const Scene scene = Scene::Random(320, 240, 4, 2, seed);
    std::vector<Box> boxes;
    for (const auto& person : scene.persons) {
      boxes.push_back(person.face);
      boxes.push_back(person.body);
    }
    for (std::size_t i = 0; i < scene.posters.size(); ++i) {
      boxes.push_back(scene.posters[i].face);
    }
    for (std::size_t i = 0; i < boxes.size(); ++i) {
      for (std::size_t j = i + 1; j < boxes.size(); ++j) {
        // A person's own face/body pair overlaps by construction; others no.
        const bool same_person = (i / 2 == j / 2) && j < scene.persons.size() * 2;
        if (!same_person) {
          EXPECT_LT(IoU(boxes[i], boxes[j]), 0.05) << "seed " << seed;
        }
      }
    }
  }
}

TEST(SceneTest, RenderDeterministicPerFrame) {
  const Scene scene = Scene::Random(320, 240, 2, 1, 9);
  const NDArray f0a = RenderFrame(scene, 0);
  const NDArray f0b = RenderFrame(scene, 0);
  EXPECT_TRUE(NDArray::BitEqual(f0a, f0b));
  const NDArray f1 = RenderFrame(scene, 1);
  EXPECT_FALSE(NDArray::BitEqual(f0a, f1));  // noise salt differs per frame
}

TEST(SceneTest, PixelRangeReasonable) {
  const Scene scene = Scene::Random(320, 240, 3, 1, 4);
  const NDArray frame = RenderFrame(scene, 0);
  for (float v : frame.Span<float>()) {
    EXPECT_GT(v, -0.7f);
    EXPECT_LT(v, 1.7f);
  }
}

class DetectorSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DetectorSweep, FacesFoundWithGoodIoU) {
  const Scene scene = Scene::Random(320, 240, 3, 2, GetParam());
  const NDArray frame = RenderFrame(scene, 0);
  const auto faces = DetectFaces(frame);

  // Recall: every ground-truth face (persons + posters) is matched.
  int matched = 0;
  const auto match = [&faces](const Box& gt) {
    for (const auto& detection : faces) {
      if (IoU(detection.box, gt) > 0.5) return true;
    }
    return false;
  };
  for (const auto& person : scene.persons) matched += match(person.face) ? 1 : 0;
  for (const auto& poster : scene.posters) matched += match(poster.face) ? 1 : 0;
  const int total = static_cast<int>(scene.persons.size() + scene.posters.size());
  EXPECT_EQ(matched, total) << "seed " << GetParam();

  // Precision: at most a couple of spurious boxes per scene (the classical
  // detector is the candidate *generator*; downstream models do the work).
  EXPECT_LE(static_cast<int>(faces.size()), total + 2) << "seed " << GetParam();
}

TEST_P(DetectorSweep, BodiesFound) {
  const Scene scene = Scene::Random(320, 240, 3, 2, GetParam());
  const NDArray frame = RenderFrame(scene, 0);
  const auto bodies = DetectBodies(frame);
  for (const auto& person : scene.persons) {
    bool found = false;
    for (const auto& detection : bodies) {
      if (IoU(detection.box, person.body) > 0.4) found = true;
    }
    EXPECT_TRUE(found) << "seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DetectorSweep, ::testing::Values(1, 2, 3, 7, 11, 13, 42));

TEST(SsdDecode, PlumbingProducesBoundedBoxes) {
  SsdDecodeConfig config;
  config.threshold = 0.5;
  const std::int64_t cells = 16;
  NDArray boxes = NDArray::RandomNormal(
      Shape({1, cells * config.num_anchors * 4}), 5, 1.0f);
  NDArray scores = NDArray::Full(
      Shape({1, cells * config.num_anchors * config.num_classes}), DType::kFloat32, 0.55);
  const auto detections = DecodeSsd(boxes, scores, config);
  EXPECT_FALSE(detections.empty());
  for (const auto& detection : detections) {
    EXPECT_GT(detection.box.w, 0.0);
    EXPECT_GT(detection.box.h, 0.0);
    EXPECT_GE(detection.score, config.threshold);
    EXPECT_GT(detection.label, 0);  // background never reported
  }
}

TEST(SsdDecode, BelowThresholdEmpty) {
  SsdDecodeConfig config;
  NDArray boxes = NDArray::Zeros(Shape({1, 12 * 16}), DType::kFloat32);
  NDArray scores =
      NDArray::Full(Shape({1, 16 * 3 * 21}), DType::kFloat32, 0.1);
  EXPECT_TRUE(DecodeSsd(boxes, scores, config).empty());
}

}  // namespace
}  // namespace vision
}  // namespace tnp
