// Elementwise / pooling / data-movement kernels.
#include <gtest/gtest.h>

#include <cmath>

#include "kernels/elementwise.h"
#include "kernels/pool.h"

namespace tnp {
namespace kernels {
namespace {

NDArray F32(Shape shape, std::vector<float> values) {
  return NDArray::FromVector<float>(std::move(shape), values);
}

TEST(Unary, Relu) {
  NDArray in = F32(Shape({4}), {-1, 0, 2, -3});
  NDArray out = NDArray::Empty(in.shape(), DType::kFloat32);
  ReluF32(in, out);
  EXPECT_EQ(out.Data<float>()[0], 0.0f);
  EXPECT_EQ(out.Data<float>()[2], 2.0f);
}

TEST(Unary, LeakyRelu) {
  NDArray in = F32(Shape({2}), {-10, 10});
  NDArray out = NDArray::Empty(in.shape(), DType::kFloat32);
  LeakyReluF32(in, out, 0.1f);
  EXPECT_FLOAT_EQ(out.Data<float>()[0], -1.0f);
  EXPECT_FLOAT_EQ(out.Data<float>()[1], 10.0f);
}

TEST(Unary, SigmoidBounds) {
  NDArray in = F32(Shape({3}), {-100, 0, 100});
  NDArray out = NDArray::Empty(in.shape(), DType::kFloat32);
  SigmoidF32(in, out);
  EXPECT_NEAR(out.Data<float>()[0], 0.0f, 1e-6);
  EXPECT_FLOAT_EQ(out.Data<float>()[1], 0.5f);
  EXPECT_NEAR(out.Data<float>()[2], 1.0f, 1e-6);
}

TEST(Unary, Clip) {
  NDArray in = F32(Shape({3}), {-5, 3, 50});
  NDArray out = NDArray::Empty(in.shape(), DType::kFloat32);
  ClipF32(in, out, 0.0f, 6.0f);
  EXPECT_FLOAT_EQ(out.Data<float>()[0], 0.0f);
  EXPECT_FLOAT_EQ(out.Data<float>()[1], 3.0f);
  EXPECT_FLOAT_EQ(out.Data<float>()[2], 6.0f);
}

TEST(Unary, ReluS8UsesZeroPoint) {
  NDArray in = NDArray::FromVector<std::int8_t>(Shape({3}), {-10, 5, 20});
  NDArray out = NDArray::Empty(in.shape(), DType::kInt8);
  ReluS8(in, out, 5);
  EXPECT_EQ(out.Data<std::int8_t>()[0], 5);
  EXPECT_EQ(out.Data<std::int8_t>()[1], 5);
  EXPECT_EQ(out.Data<std::int8_t>()[2], 20);
}

// ---------------------------------------------------------------- broadcast

TEST(Broadcast, ShapeRules) {
  EXPECT_EQ(BroadcastShape(Shape({1, 3, 4}), Shape({2, 1, 4})), Shape({2, 3, 4}));
  EXPECT_EQ(BroadcastShape(Shape({4}), Shape({2, 3, 4})), Shape({2, 3, 4}));
  EXPECT_EQ(BroadcastShape(Shape({}), Shape({5})), Shape({5}));
  EXPECT_THROW(BroadcastShape(Shape({3}), Shape({4})), Error);
}

TEST(Broadcast, SameShapeFastPath) {
  NDArray a = F32(Shape({4}), {1, 2, 3, 4});
  NDArray b = F32(Shape({4}), {10, 20, 30, 40});
  NDArray out = NDArray::Empty(Shape({4}), DType::kFloat32);
  BroadcastBinaryF32(BinaryOp::kAdd, a, b, out);
  EXPECT_FLOAT_EQ(out.Data<float>()[3], 44.0f);
}

TEST(Broadcast, ScalarPath) {
  NDArray a = F32(Shape({3}), {1, 2, 3});
  NDArray s = F32(Shape({1}), {10});
  NDArray out = NDArray::Empty(Shape({3}), DType::kFloat32);
  BroadcastBinaryF32(BinaryOp::kMul, a, s, out);
  EXPECT_FLOAT_EQ(out.Data<float>()[2], 30.0f);
  BroadcastBinaryF32(BinaryOp::kSub, s, a, out);
  EXPECT_FLOAT_EQ(out.Data<float>()[2], 7.0f);
}

TEST(Broadcast, ChannelBias) {
  // (1,2,2,2) + (1,2,1,1): the per-channel pattern bias_add lowers to.
  NDArray a = F32(Shape({1, 2, 2, 2}), {1, 1, 1, 1, 2, 2, 2, 2});
  NDArray b = F32(Shape({1, 2, 1, 1}), {10, 20});
  NDArray out = NDArray::Empty(Shape({1, 2, 2, 2}), DType::kFloat32);
  BroadcastBinaryF32(BinaryOp::kAdd, a, b, out);
  EXPECT_FLOAT_EQ(out.Data<float>()[0], 11.0f);
  EXPECT_FLOAT_EQ(out.Data<float>()[4], 22.0f);
}

TEST(Broadcast, AllOps) {
  NDArray a = F32(Shape({2}), {6, -2});
  NDArray b = F32(Shape({2}), {3, 4});
  NDArray out = NDArray::Empty(Shape({2}), DType::kFloat32);
  BroadcastBinaryF32(BinaryOp::kDiv, a, b, out);
  EXPECT_FLOAT_EQ(out.Data<float>()[0], 2.0f);
  BroadcastBinaryF32(BinaryOp::kMax, a, b, out);
  EXPECT_FLOAT_EQ(out.Data<float>()[1], 4.0f);
  BroadcastBinaryF32(BinaryOp::kMin, a, b, out);
  EXPECT_FLOAT_EQ(out.Data<float>()[1], -2.0f);
}

// ------------------------------------------------------------------ softmax

TEST(Softmax, SumsToOne) {
  NDArray in = NDArray::RandomNormal(Shape({2, 5}), 3, 2.0f);
  NDArray out = NDArray::Empty(in.shape(), DType::kFloat32);
  SoftmaxF32(in, out, -1);
  for (int r = 0; r < 2; ++r) {
    double sum = 0.0;
    for (int c = 0; c < 5; ++c) sum += out.Data<float>()[r * 5 + c];
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(Softmax, ShiftInvariant) {
  NDArray a = F32(Shape({1, 3}), {1, 2, 3});
  NDArray b = F32(Shape({1, 3}), {101, 102, 103});
  NDArray oa = NDArray::Empty(a.shape(), DType::kFloat32);
  NDArray ob = NDArray::Empty(b.shape(), DType::kFloat32);
  SoftmaxF32(a, oa, 1);
  SoftmaxF32(b, ob, 1);
  EXPECT_LT(NDArray::MaxAbsDiff(oa, ob), 1e-6);
}

TEST(Softmax, AxisOne) {
  // Axis over channels of NCHW.
  NDArray in = NDArray::RandomNormal(Shape({1, 4, 2, 2}), 5);
  NDArray out = NDArray::Empty(in.shape(), DType::kFloat32);
  SoftmaxF32(in, out, 1);
  for (int pos = 0; pos < 4; ++pos) {
    double sum = 0.0;
    for (int c = 0; c < 4; ++c) sum += out.Data<float>()[c * 4 + pos];
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

// ------------------------------------------------------------------ pooling

TEST(Pool, MaxBasic) {
  NDArray in = F32(Shape({1, 1, 2, 2}), {1, 2, 3, 4});
  NDArray out = NDArray::Empty(Shape({1, 1, 1, 1}), DType::kFloat32);
  Pool2DParams p;
  MaxPool2DF32(in, out, p);
  EXPECT_FLOAT_EQ(out.Data<float>()[0], 4.0f);
}

TEST(Pool, AvgExcludesPadByDefault) {
  NDArray in = F32(Shape({1, 1, 2, 2}), {2, 2, 2, 2});
  Pool2DParams p;
  p.kernel_h = p.kernel_w = 3;
  p.stride_h = p.stride_w = 1;
  p.pad_h = p.pad_w = 1;
  NDArray out = NDArray::Empty(Shape({1, 1, 2, 2}), DType::kFloat32);
  AvgPool2DF32(in, out, p);
  // Every window sees only value-2 pixels; count excludes padding.
  for (float v : out.Span<float>()) EXPECT_FLOAT_EQ(v, 2.0f);

  p.count_include_pad = true;
  AvgPool2DF32(in, out, p);
  // Top-left window: 4 real pixels of 9 -> 8/9.
  EXPECT_NEAR(out.Data<float>()[0], 8.0f / 9.0f, 1e-6);
}

TEST(Pool, GlobalAvg) {
  NDArray in = F32(Shape({1, 2, 2, 2}), {1, 2, 3, 4, 10, 10, 10, 10});
  NDArray out = NDArray::Empty(Shape({1, 2, 1, 1}), DType::kFloat32);
  GlobalAvgPool2DF32(in, out);
  EXPECT_FLOAT_EQ(out.Data<float>()[0], 2.5f);
  EXPECT_FLOAT_EQ(out.Data<float>()[1], 10.0f);
}

TEST(Pool, Int8MaxAndAvg) {
  NDArray in = NDArray::FromVector<std::int8_t>(Shape({1, 1, 2, 2}), {-8, 3, 5, 1});
  NDArray out = NDArray::Empty(Shape({1, 1, 1, 1}), DType::kInt8);
  Pool2DParams p;
  MaxPool2DS8(in, out, p);
  EXPECT_EQ(out.Data<std::int8_t>()[0], 5);
  AvgPool2DS8(in, out, p);
  EXPECT_EQ(out.Data<std::int8_t>()[0], 0);  // mean 0.25 rounds to 0

  NDArray gout = NDArray::Empty(Shape({1, 1, 1, 1}), DType::kInt8);
  GlobalAvgPool2DS8(in, gout);
  EXPECT_EQ(gout.Data<std::int8_t>()[0], 0);
}

// ----------------------------------------------------------- data movement

TEST(Concat, AxisOne) {
  NDArray a = F32(Shape({1, 1, 2, 2}), {1, 2, 3, 4});
  NDArray b = F32(Shape({1, 2, 2, 2}), {5, 6, 7, 8, 9, 10, 11, 12});
  NDArray out = NDArray::Empty(Shape({1, 3, 2, 2}), DType::kFloat32);
  Concat({a, b}, out, 1);
  EXPECT_FLOAT_EQ(out.Data<float>()[0], 1.0f);
  EXPECT_FLOAT_EQ(out.Data<float>()[4], 5.0f);
  EXPECT_FLOAT_EQ(out.Data<float>()[11], 12.0f);
}

TEST(Concat, LastAxis) {
  NDArray a = F32(Shape({2, 1}), {1, 2});
  NDArray b = F32(Shape({2, 2}), {3, 4, 5, 6});
  NDArray out = NDArray::Empty(Shape({2, 3}), DType::kFloat32);
  Concat({a, b}, out, 1);
  const float expect[6] = {1, 3, 4, 2, 5, 6};
  for (int i = 0; i < 6; ++i) EXPECT_FLOAT_EQ(out.Data<float>()[i], expect[i]);
}

TEST(Pad, SpatialPad) {
  NDArray in = F32(Shape({1, 1, 2, 2}), {1, 2, 3, 4});
  NDArray out = NDArray::Empty(Shape({1, 1, 4, 4}), DType::kFloat32);
  PadConstant(in, out, {0, 0, 1, 1}, {0, 0, 1, 1}, 9.0);
  EXPECT_FLOAT_EQ(out.Data<float>()[0], 9.0f);
  EXPECT_FLOAT_EQ(out.Data<float>()[5], 1.0f);   // (1,1)
  EXPECT_FLOAT_EQ(out.Data<float>()[10], 4.0f);  // (2,2)
  EXPECT_FLOAT_EQ(out.Data<float>()[15], 9.0f);
}

TEST(Pad, AsymmetricPad) {
  NDArray in = F32(Shape({2}), {1, 2});
  NDArray out = NDArray::Empty(Shape({5}), DType::kFloat32);
  PadConstant(in, out, {1}, {2}, 0.0);
  const float expect[5] = {0, 1, 2, 0, 0};
  for (int i = 0; i < 5; ++i) EXPECT_FLOAT_EQ(out.Data<float>()[i], expect[i]);
}

TEST(Upsampling, Nearest2x) {
  NDArray in = F32(Shape({1, 1, 2, 2}), {1, 2, 3, 4});
  NDArray out = NDArray::Empty(Shape({1, 1, 4, 4}), DType::kFloat32);
  UpsamplingNearestF32(in, out, 2, 2);
  EXPECT_FLOAT_EQ(out.Data<float>()[0], 1.0f);
  EXPECT_FLOAT_EQ(out.Data<float>()[1], 1.0f);
  EXPECT_FLOAT_EQ(out.Data<float>()[5], 1.0f);
  EXPECT_FLOAT_EQ(out.Data<float>()[15], 4.0f);
}

TEST(StridedSliceTest, Basic) {
  NDArray in = F32(Shape({1, 4}), {10, 11, 12, 13});
  NDArray out = NDArray::Empty(Shape({1, 2}), DType::kFloat32);
  StridedSlice(in, out, {0, 1}, {1, 3}, {1, 1});
  EXPECT_FLOAT_EQ(out.Data<float>()[0], 11.0f);
  EXPECT_FLOAT_EQ(out.Data<float>()[1], 12.0f);
}

TEST(StridedSliceTest, WithStride) {
  NDArray in = F32(Shape({6}), {0, 1, 2, 3, 4, 5});
  NDArray out = NDArray::Empty(Shape({3}), DType::kFloat32);
  StridedSlice(in, out, {0}, {6}, {2});
  EXPECT_FLOAT_EQ(out.Data<float>()[2], 4.0f);
}

TEST(MeanTest, SpatialMean) {
  NDArray in = F32(Shape({1, 2, 2, 2}), {1, 2, 3, 4, 5, 5, 5, 5});
  NDArray out = NDArray::Empty(Shape({1, 2}), DType::kFloat32);
  MeanF32(in, out, {2, 3});
  EXPECT_FLOAT_EQ(out.Data<float>()[0], 2.5f);
  EXPECT_FLOAT_EQ(out.Data<float>()[1], 5.0f);
}

TEST(TransposeTest, Permute) {
  NDArray in = F32(Shape({2, 3}), {1, 2, 3, 4, 5, 6});
  NDArray out = NDArray::Empty(Shape({3, 2}), DType::kFloat32);
  Transpose(in, out, {1, 0});
  EXPECT_FLOAT_EQ(out.Data<float>()[0], 1.0f);
  EXPECT_FLOAT_EQ(out.Data<float>()[1], 4.0f);
  EXPECT_FLOAT_EQ(out.Data<float>()[2], 2.0f);
}

TEST(CastTest, FloatToInt8Saturates) {
  NDArray in = F32(Shape({3}), {300.0f, -300.0f, 2.6f});
  NDArray out = NDArray::Empty(Shape({3}), DType::kInt8);
  Cast(in, out);
  EXPECT_EQ(out.Data<std::int8_t>()[0], 127);
  EXPECT_EQ(out.Data<std::int8_t>()[1], -128);
  EXPECT_EQ(out.Data<std::int8_t>()[2], 2);
}

TEST(BatchNorm, FoldsToScaleShift) {
  NDArray in = NDArray::RandomNormal(Shape({1, 2, 3, 3}), 8);
  NDArray gamma = F32(Shape({2}), {2.0f, 1.0f});
  NDArray beta = F32(Shape({2}), {0.5f, -0.5f});
  NDArray mean = F32(Shape({2}), {1.0f, 0.0f});
  NDArray var = F32(Shape({2}), {4.0f, 1.0f});
  NDArray out = NDArray::Empty(in.shape(), DType::kFloat32);
  BatchNormF32(in, gamma, beta, mean, var, out, 0.0f);
  // channel 0: y = 2*(x-1)/2 + 0.5 = x - 0.5
  EXPECT_NEAR(out.Data<float>()[0], in.Data<float>()[0] - 0.5f, 1e-5);
  // channel 1: y = x - 0.5
  EXPECT_NEAR(out.Data<float>()[9], in.Data<float>()[9] - 0.5f, 1e-5);
}

TEST(BiasAdd, ChannelAxis) {
  NDArray in = NDArray::Zeros(Shape({1, 2, 2, 2}), DType::kFloat32);
  NDArray bias = F32(Shape({2}), {1.0f, 2.0f});
  NDArray out = NDArray::Empty(in.shape(), DType::kFloat32);
  BiasAddF32(in, bias, out, 1);
  EXPECT_FLOAT_EQ(out.Data<float>()[0], 1.0f);
  EXPECT_FLOAT_EQ(out.Data<float>()[4], 2.0f);
}

TEST(BiasAdd, LastAxis) {
  NDArray in = NDArray::Zeros(Shape({2, 3}), DType::kFloat32);
  NDArray bias = F32(Shape({3}), {1, 2, 3});
  NDArray out = NDArray::Empty(in.shape(), DType::kFloat32);
  BiasAddF32(in, bias, out, -1);
  EXPECT_FLOAT_EQ(out.Data<float>()[5], 3.0f);
}

}  // namespace
}  // namespace kernels
}  // namespace tnp
