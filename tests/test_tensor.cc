// Unit tests for Shape / DType / QuantParams / NDArray.
#include <gtest/gtest.h>

#include "tensor/ndarray.h"

namespace tnp {
namespace {

TEST(Shape, BasicProperties) {
  const Shape s({2, 3, 4});
  EXPECT_EQ(s.rank(), 3);
  EXPECT_EQ(s.NumElements(), 24);
  EXPECT_EQ(s[0], 2);
  EXPECT_EQ(s.Dim(-1), 4);
  EXPECT_EQ(s.ToString(), "(2, 3, 4)");
}

TEST(Shape, ScalarShape) {
  const Shape s{};
  EXPECT_EQ(s.rank(), 0);
  EXPECT_EQ(s.NumElements(), 1);
}

TEST(Shape, Strides) {
  const Shape s({2, 3, 4});
  EXPECT_EQ(s.Strides(), (std::vector<std::int64_t>{12, 4, 1}));
}

TEST(Shape, OutOfRangeThrows) {
  const Shape s({2, 3});
  EXPECT_THROW(s[2], InternalError);
  EXPECT_THROW(Shape({-1, 2}), InternalError);
}

TEST(Shape, Equality) {
  EXPECT_EQ(Shape({1, 2}), Shape({1, 2}));
  EXPECT_NE(Shape({1, 2}), Shape({2, 1}));
}

TEST(DTypeTest, SizesAndNames) {
  EXPECT_EQ(DTypeBytes(DType::kFloat32), 4u);
  EXPECT_EQ(DTypeBytes(DType::kInt8), 1u);
  EXPECT_EQ(DTypeBytes(DType::kInt64), 8u);
  EXPECT_STREQ(DTypeName(DType::kInt32), "int32");
  EXPECT_EQ(DTypeFromName("float32"), DType::kFloat32);
  EXPECT_THROW(DTypeFromName("float16"), Error);
}

TEST(QuantParamsTest, RoundTrip) {
  const QuantParams q(0.1f, 3);
  EXPECT_TRUE(q.valid);
  for (float real : {-1.0f, 0.0f, 0.55f, 2.0f}) {
    const std::int8_t quantized = q.Quantize(real);
    EXPECT_NEAR(q.Dequantize(quantized), real, q.scale / 2 + 1e-6);
  }
}

TEST(QuantParamsTest, Saturates) {
  const QuantParams q(0.01f, 0);
  EXPECT_EQ(q.Quantize(100.0f), 127);
  EXPECT_EQ(q.Quantize(-100.0f), -128);
}

TEST(QuantParamsTest, Equality) {
  EXPECT_EQ(QuantParams(0.1f, 0), QuantParams(0.1f, 0));
  EXPECT_NE(QuantParams(0.1f, 0), QuantParams(0.2f, 0));
  EXPECT_EQ(QuantParams::None(), QuantParams::None());
  EXPECT_NE(QuantParams::None(), QuantParams(0.1f, 0));
}

TEST(NDArrayTest, ZerosAndFull) {
  NDArray z = NDArray::Zeros(Shape({2, 3}), DType::kFloat32);
  for (float v : z.Span<float>()) EXPECT_EQ(v, 0.0f);
  NDArray f = NDArray::Full(Shape({4}), DType::kInt8, 7);
  for (std::int8_t v : f.Span<std::int8_t>()) EXPECT_EQ(v, 7);
}

TEST(NDArrayTest, FromVector) {
  NDArray a = NDArray::FromVector<float>(Shape({2, 2}), {1, 2, 3, 4});
  EXPECT_EQ(a.Data<float>()[3], 4.0f);
  EXPECT_EQ(a.NumElements(), 4);
}

TEST(NDArrayTest, WrongDtypeAccessThrows) {
  NDArray a = NDArray::Zeros(Shape({2}), DType::kFloat32);
  EXPECT_THROW(a.Data<std::int8_t>(), InternalError);
}

TEST(NDArrayTest, SharedVsDeepCopy) {
  NDArray a = NDArray::Zeros(Shape({4}), DType::kFloat32);
  NDArray shared = a;              // shallow
  NDArray deep = a.CopyDeep();     // new storage
  a.Data<float>()[0] = 5.0f;
  EXPECT_EQ(shared.Data<float>()[0], 5.0f);
  EXPECT_EQ(deep.Data<float>()[0], 0.0f);
}

TEST(NDArrayTest, ReshapeSharesData) {
  NDArray a = NDArray::FromVector<float>(Shape({2, 3}), {1, 2, 3, 4, 5, 6});
  NDArray b = a.Reshape(Shape({3, 2}));
  EXPECT_EQ(b.shape(), Shape({3, 2}));
  a.Data<float>()[0] = 9.0f;
  EXPECT_EQ(b.Data<float>()[0], 9.0f);
  EXPECT_THROW(a.Reshape(Shape({7})), InternalError);
}

TEST(NDArrayTest, RandomDeterministic) {
  NDArray a = NDArray::RandomNormal(Shape({32}), 42, 1.0f);
  NDArray b = NDArray::RandomNormal(Shape({32}), 42, 1.0f);
  EXPECT_TRUE(NDArray::BitEqual(a, b));
  NDArray c = NDArray::RandomNormal(Shape({32}), 43, 1.0f);
  EXPECT_FALSE(NDArray::BitEqual(a, c));
}

TEST(NDArrayTest, RandomInt8Range) {
  NDArray a = NDArray::RandomInt8(Shape({256}), 1, -5, 5);
  for (std::int8_t v : a.Span<std::int8_t>()) {
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(NDArrayTest, MaxAbsDiff) {
  NDArray a = NDArray::FromVector<float>(Shape({3}), {1, 2, 3});
  NDArray b = NDArray::FromVector<float>(Shape({3}), {1, 2.5, 3});
  EXPECT_FLOAT_EQ(NDArray::MaxAbsDiff(a, b), 0.5f);
}

TEST(NDArrayTest, BitEqualConsidersMetadata) {
  NDArray a = NDArray::Zeros(Shape({4}), DType::kFloat32);
  NDArray b = NDArray::Zeros(Shape({2, 2}), DType::kFloat32);
  EXPECT_FALSE(NDArray::BitEqual(a, b));  // same bytes, different shape
  EXPECT_TRUE(NDArray::BitEqual(NDArray(), NDArray()));
  EXPECT_FALSE(NDArray::BitEqual(a, NDArray()));
}

TEST(NDArrayTest, QuantMetadata) {
  NDArray a = NDArray::Zeros(Shape({4}), DType::kInt8);
  EXPECT_FALSE(a.quant().valid);
  a.set_quant(QuantParams(0.5f, 1));
  EXPECT_TRUE(a.quant().valid);
  EXPECT_EQ(a.CopyDeep().quant(), a.quant());
  EXPECT_EQ(a.Reshape(Shape({2, 2})).quant(), a.quant());
}

TEST(NDArrayTest, ZeroElementTensor) {
  NDArray a = NDArray::Zeros(Shape({0, 3}), DType::kFloat32);
  EXPECT_EQ(a.NumElements(), 0);
  EXPECT_TRUE(a.defined());
}

TEST(NDArrayTest, ToStringTruncates) {
  NDArray a = NDArray::Zeros(Shape({100}), DType::kFloat32);
  const std::string s = a.ToString(4);
  EXPECT_NE(s.find("..."), std::string::npos);
}

}  // namespace
}  // namespace tnp
