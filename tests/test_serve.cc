// The serving runtime: request-queue ordering and admission control, warm
// session pooling, micro-batching, overload shedding, CPU fallback,
// deadlines, metrics, and the zero-allocation steady state.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>

#include "core/flows.h"
#include "frontend/common.h"
#include "serve/load_gen.h"
#include "serve/request_queue.h"
#include "serve/server.h"
#include "serve/session_pool.h"
#include "support/metrics.h"

namespace tnp {
namespace serve {
namespace {

using frontend::TypedCall;
using frontend::TypedVar;
using frontend::WeightF32;
using frontend::ZeroBiasF32;
using support::metrics::Registry;

/// Small conv net every flow supports (mirrors test_flows.cc).
relay::Module TinyModel() {
  auto x = TypedVar("data", Shape({1, 3, 16, 16}), DType::kFloat32);
  auto conv = TypedCall("nn.conv2d", {x, WeightF32(Shape({8, 3, 3, 3}), 1), ZeroBiasF32(8)},
                        relay::Attrs().SetInts("padding", {1, 1}));
  auto relu = TypedCall("nn.relu", {conv});
  auto pool = TypedCall("nn.global_avg_pool2d", {relu});
  auto flat = TypedCall("nn.batch_flatten", {pool});
  auto dense = TypedCall("nn.dense", {flat, WeightF32(Shape({5, 8}), 2), ZeroBiasF32(5)});
  auto softmax = TypedCall("nn.softmax", {dense});
  return relay::Module(relay::MakeFunction({x}, softmax));
}

ServedModel MakeTinyServed(const std::string& name, core::FlowKind primary,
                           std::optional<core::FlowKind> fallback = std::nullopt) {
  ServedModel model;
  model.name = name;
  model.module = TinyModel();
  model.plan.primary = core::Assignment{primary, 100.0};
  if (fallback.has_value()) model.plan.cpu_fallback = core::Assignment{*fallback, 200.0};
  return model;
}

NDArray TinyInput() { return NDArray::Full(Shape({1, 3, 16, 16}), DType::kFloat32, 0.5); }

QueuedRequest MakeEntry(const std::string& model, int priority, double deadline_us,
                        core::FlowKind flow = core::FlowKind::kTvmOnly) {
  QueuedRequest entry;
  entry.request.model = model;
  entry.request.priority = priority;
  entry.request.deadline_us = deadline_us;
  entry.flow = flow;
  entry.session_key = SessionKey(model, flow);
  return entry;
}

std::int64_t CounterValue(const std::string& name) {
  const auto* counter = Registry::Global().FindCounter(name);
  return counter != nullptr ? counter->value() : 0;
}

// ------------------------------------------------------------ RequestQueue

TEST(RequestQueue, DispatchOrderPriorityDeadlineFifo) {
  RequestQueue queue("t-order", 8);
  auto low_late = MakeEntry("a", 0, 900.0);
  auto low_soon = MakeEntry("b", 0, 100.0);
  auto high_none = MakeEntry("c", 5, 0.0);
  auto low_soon_second = MakeEntry("d", 0, 100.0);
  ASSERT_TRUE(queue.TryPush(low_late));
  ASSERT_TRUE(queue.TryPush(low_soon));
  ASSERT_TRUE(queue.TryPush(high_none));
  ASSERT_TRUE(queue.TryPush(low_soon_second));

  // Priority first, then earliest deadline, then FIFO; no deadline = last.
  EXPECT_EQ(queue.Pop()->request.model, "c");
  EXPECT_EQ(queue.Pop()->request.model, "b");
  EXPECT_EQ(queue.Pop()->request.model, "d");
  EXPECT_EQ(queue.Pop()->request.model, "a");
}

TEST(RequestQueue, TryPushRefusesWhenFullAndLeavesEntryIntact) {
  RequestQueue queue("t-full", 2);
  auto e1 = MakeEntry("a", 0, 0.0);
  auto e2 = MakeEntry("b", 0, 0.0);
  auto e3 = MakeEntry("c", 7, 0.0);
  ASSERT_TRUE(queue.TryPush(e1));
  ASSERT_TRUE(queue.TryPush(e2));
  EXPECT_FALSE(queue.TryPush(e3));
  // The refused entry is still usable (promise not consumed, fields intact).
  EXPECT_EQ(e3.request.model, "c");
  EXPECT_EQ(e3.request.priority, 7);
  auto future = e3.promise.get_future();
  ServeResponse shed;
  shed.status = ServeStatus::kShed;
  e3.promise.set_value(shed);
  EXPECT_EQ(future.get().status, ServeStatus::kShed);
}

TEST(RequestQueue, DepthGaugeTracksBound) {
  RequestQueue queue("t-depth", 3);
  for (int i = 0; i < 5; ++i) {
    auto entry = MakeEntry("m", 0, 0.0);
    queue.TryPush(entry);
  }
  EXPECT_EQ(queue.size(), 3u);
  const auto* gauge = Registry::Global().FindGauge("serve/queue/t-depth/depth");
  ASSERT_NE(gauge, nullptr);
  EXPECT_LE(gauge->max(), 3.0);
  EXPECT_GE(gauge->max(), 3.0);
}

TEST(RequestQueue, PopBatchCoalescesSameSessionOnly) {
  RequestQueue queue("t-batch", 8);
  auto a1 = MakeEntry("a", 0, 0.0, core::FlowKind::kTvmOnly);
  auto b1 = MakeEntry("b", 0, 0.0, core::FlowKind::kNpCpu);
  auto a2 = MakeEntry("a", 0, 0.0, core::FlowKind::kTvmOnly);
  auto a3 = MakeEntry("a", 0, 0.0, core::FlowKind::kTvmOnly);
  ASSERT_TRUE(queue.TryPush(a1));
  ASSERT_TRUE(queue.TryPush(b1));
  ASSERT_TRUE(queue.TryPush(a2));
  ASSERT_TRUE(queue.TryPush(a3));

  const auto batch = queue.PopBatch(/*max_batch=*/8, /*window_us=*/0.0);
  ASSERT_EQ(batch.size(), 3u);  // the three "a" entries; "b" stays queued
  for (const auto& entry : batch) EXPECT_EQ(entry.request.model, "a");
  EXPECT_EQ(queue.size(), 1u);
  EXPECT_EQ(queue.Pop()->request.model, "b");
}

TEST(RequestQueue, PopBatchRespectsMaxBatch) {
  RequestQueue queue("t-maxbatch", 8);
  for (int i = 0; i < 5; ++i) {
    auto entry = MakeEntry("a", 0, 0.0);
    ASSERT_TRUE(queue.TryPush(entry));
  }
  EXPECT_EQ(queue.PopBatch(2, 0.0).size(), 2u);
  EXPECT_EQ(queue.size(), 3u);
}

TEST(RequestQueue, PopBatchWindowWaitsForStragglers) {
  RequestQueue queue("t-window", 8);
  auto first = MakeEntry("a", 0, 0.0);
  ASSERT_TRUE(queue.TryPush(first));
  std::thread straggler([&queue] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    auto late = MakeEntry("a", 0, 0.0);
    queue.TryPush(late);
  });
  // 100ms window comfortably covers the 5ms straggler.
  const auto batch = queue.PopBatch(2, 100'000.0);
  straggler.join();
  EXPECT_EQ(batch.size(), 2u);
}

TEST(RequestQueue, CloseDrainsThenReturnsEmpty) {
  RequestQueue queue("t-close", 4);
  auto entry = MakeEntry("a", 0, 0.0);
  ASSERT_TRUE(queue.TryPush(entry));
  queue.Close();
  EXPECT_TRUE(queue.Pop().has_value());
  EXPECT_FALSE(queue.Pop().has_value());
  EXPECT_TRUE(queue.PopBatch(4, 0.0).empty());
  auto refused = MakeEntry("b", 0, 0.0);
  EXPECT_FALSE(queue.TryPush(refused));
}

// ------------------------------------------------------------- SessionPool

TEST(SessionPool, ReusesWarmSessionsWithoutRecompiling) {
  SessionPool pool;
  std::atomic<int> builds{0};
  const relay::Module module = TinyModel();
  pool.Register("tiny/TVM-only", [&builds, module] {
    builds.fetch_add(1);
    return core::CompileFlow(module, core::FlowKind::kTvmOnly);
  });
  for (int i = 0; i < 4; ++i) {
    SessionPool::Lease lease = pool.Checkout("tiny/TVM-only");
    ASSERT_TRUE(static_cast<bool>(lease));
  }
  EXPECT_EQ(builds.load(), 1);
  EXPECT_EQ(pool.CreatedCount("tiny/TVM-only"), 1u);
}

TEST(SessionPool, WarmUpPrebuildsToCapacity) {
  SessionPool pool;
  std::atomic<int> builds{0};
  const relay::Module module = TinyModel();
  pool.Register("tiny/TVM-only", [&builds, module] {
    builds.fetch_add(1);
    return core::CompileFlow(module, core::FlowKind::kTvmOnly);
  }, /*capacity=*/2);
  pool.WarmUp();
  EXPECT_EQ(builds.load(), 2);
  // Checkouts after warmup never build.
  SessionPool::Lease a = pool.Checkout("tiny/TVM-only");
  SessionPool::Lease b = pool.Checkout("tiny/TVM-only");
  EXPECT_EQ(builds.load(), 2);
}

TEST(SessionPool, CheckoutBlocksUntilCheckin) {
  SessionPool pool;
  const relay::Module module = TinyModel();
  pool.Register("tiny/TVM-only",
                [module] { return core::CompileFlow(module, core::FlowKind::kTvmOnly); });
  auto lease = std::make_unique<SessionPool::Lease>(pool.Checkout("tiny/TVM-only"));
  std::atomic<bool> acquired{false};
  std::thread waiter([&pool, &acquired] {
    SessionPool::Lease second = pool.Checkout("tiny/TVM-only");
    acquired.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(acquired.load());  // capacity 1, still checked out
  lease.reset();                  // checkin unblocks the waiter
  waiter.join();
  EXPECT_TRUE(acquired.load());
}

TEST(SessionPool, UnknownKeyThrows) {
  SessionPool pool;
  EXPECT_THROW(pool.Checkout("nope/TVM-only"), Error);
}

// ---------------------------------------------------------- InferenceServer

TEST(InferenceServer, ServesCorrectOutputs) {
  // Reference run straight through the compiled flow.
  const relay::Module module = TinyModel();
  const auto reference = core::CompileFlow(module, core::FlowKind::kTvmOnly);
  reference->SetInput("data", TinyInput());
  reference->Run();
  const NDArray expected = reference->GetOutput(0);

  InferenceServer server({MakeTinyServed("tiny", core::FlowKind::kTvmOnly)});
  ServeRequest request;
  request.model = "tiny";
  request.inputs = {{"data", TinyInput()}};
  const ServeResponse response = server.Submit(std::move(request)).get();
  ASSERT_EQ(response.status, ServeStatus::kOk) << response.error;
  EXPECT_EQ(response.flow, core::FlowKind::kTvmOnly);
  EXPECT_FALSE(response.fell_back);
  ASSERT_EQ(response.outputs.size(), 1u);
  EXPECT_TRUE(NDArray::BitEqual(response.outputs[0], expected));
  EXPECT_GT(response.total_us, 0.0);
  EXPECT_GT(response.sim_us, 0.0);
  EXPECT_GE(response.batch_size, 1);
}

TEST(InferenceServer, CopiesIntoCallerProvidedBuffers) {
  InferenceServer server({MakeTinyServed("tiny", core::FlowKind::kTvmOnly)});
  NDArray buffer = NDArray::Zeros(Shape({1, 5}), DType::kFloat32);
  const void* raw = buffer.RawData();

  ServeRequest request;
  request.model = "tiny";
  request.inputs = {{"data", TinyInput()}};
  request.output_buffers = {buffer};
  const ServeResponse response = server.Submit(std::move(request)).get();
  ASSERT_EQ(response.status, ServeStatus::kOk) << response.error;
  ASSERT_EQ(response.outputs.size(), 1u);
  // The response aliases the caller's storage — no fresh tensor.
  EXPECT_EQ(response.outputs[0].RawData(), raw);
  // Softmax output: strictly positive, sums to ~1.
  double sum = 0.0;
  for (const float v : buffer.Span<float>()) {
    EXPECT_GT(v, 0.0f);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-4);
}

TEST(InferenceServer, UnknownModelThrows) {
  InferenceServer server({MakeTinyServed("tiny", core::FlowKind::kTvmOnly)});
  ServeRequest request;
  request.model = "nope";
  EXPECT_THROW(server.Submit(std::move(request)), Error);
}

TEST(InferenceServer, OverloadShedsInsteadOfGrowing) {
  const std::int64_t shed_before = CounterValue("serve/shed");
  // The depth gauge is process-wide; reset so the watermark reflects this
  // server's bound only.
  Registry::Global().GetGauge("serve/queue/cpu/depth").Reset();
  ServerOptions options;
  options.queue_capacity = 2;
  core::ResourceLocks locks;
  options.locks = &locks;
  // CPU-only primary without a fallback: saturation must shed.
  InferenceServer server({MakeTinyServed("tiny", core::FlowKind::kTvmOnly)}, options);

  std::vector<std::future<ServeResponse>> futures;
  for (int i = 0; i < 64; ++i) {
    ServeRequest request;
    request.model = "tiny";
    request.inputs = {{"data", TinyInput()}};
    futures.push_back(server.Submit(std::move(request)));
  }
  int ok = 0;
  int shed = 0;
  for (auto& future : futures) {
    const ServeResponse response = future.get();
    if (response.status == ServeStatus::kOk) ++ok;
    if (response.status == ServeStatus::kShed) ++shed;
  }
  EXPECT_EQ(ok + shed, 64);
  EXPECT_GT(shed, 0) << "64 burst submissions into a depth-2 queue must shed";
  EXPECT_GT(ok, 0);
  EXPECT_EQ(CounterValue("serve/shed") - shed_before, shed);
  // The queue never exceeded its configured bound.
  const auto* gauge = Registry::Global().FindGauge("serve/queue/cpu/depth");
  ASSERT_NE(gauge, nullptr);
  EXPECT_LE(gauge->max(), 2.0);
}

TEST(InferenceServer, SaturatedApuFallsBackToCpuFlow) {
  const std::int64_t fallback_before = CounterValue("serve/fallback");
  ServerOptions options;
  options.queue_capacity = 1;
  core::ResourceLocks locks;
  options.locks = &locks;
  InferenceServer server(
      {MakeTinyServed("tiny", core::FlowKind::kNpApu, core::FlowKind::kNpCpu)}, options);

  std::vector<std::future<ServeResponse>> futures;
  for (int i = 0; i < 48; ++i) {
    ServeRequest request;
    request.model = "tiny";
    request.inputs = {{"data", TinyInput()}};
    futures.push_back(server.Submit(std::move(request)));
  }
  int fell_back = 0;
  int ok = 0;
  for (auto& future : futures) {
    const ServeResponse response = future.get();
    if (response.status != ServeStatus::kOk) continue;
    ++ok;
    if (response.fell_back) {
      ++fell_back;
      EXPECT_EQ(response.flow, core::FlowKind::kNpCpu);
    } else {
      EXPECT_EQ(response.flow, core::FlowKind::kNpApu);
    }
  }
  EXPECT_GT(ok, 0);
  EXPECT_GT(fell_back, 0) << "saturating the depth-1 APU queue must degrade to CPU";
  EXPECT_EQ(CounterValue("serve/fallback") - fallback_before, fell_back);
}

TEST(InferenceServer, ExpiredDeadlineIsDropped) {
  InferenceServer server({MakeTinyServed("tiny", core::FlowKind::kTvmOnly)});
  ServeRequest request;
  request.model = "tiny";
  request.inputs = {{"data", TinyInput()}};
  request.deadline_us = 1e-6;  // effectively already past
  const ServeResponse response = server.Submit(std::move(request)).get();
  EXPECT_EQ(response.status, ServeStatus::kExpired);
  EXPECT_TRUE(response.outputs.empty());
}

TEST(InferenceServer, MicroBatcherCoalescesBursts) {
  ServerOptions options;
  options.queue_capacity = 64;
  options.max_batch = 8;
  core::ResourceLocks locks;
  options.locks = &locks;
  InferenceServer server({MakeTinyServed("tiny", core::FlowKind::kTvmOnly)}, options);

  std::vector<std::future<ServeResponse>> futures;
  for (int i = 0; i < 64; ++i) {
    ServeRequest request;
    request.model = "tiny";
    request.inputs = {{"data", TinyInput()}};
    futures.push_back(server.Submit(std::move(request)));
  }
  int max_batch_seen = 0;
  for (auto& future : futures) {
    const ServeResponse response = future.get();
    ASSERT_EQ(response.status, ServeStatus::kOk) << response.error;
    max_batch_seen = std::max(max_batch_seen, response.batch_size);
    EXPECT_LE(response.batch_size, 8);
  }
  // Submission far outpaces execution, so dispatches must have coalesced.
  EXPECT_GT(max_batch_seen, 1);
}

TEST(InferenceServer, ConcurrentStreamsOnDisjointResources) {
  // CPU-resident and APU-resident models served to concurrent closed-loop
  // clients: everything completes, nothing is shed (closed loop ≤ 1
  // in-flight request per client), answers stay correct.
  ServerOptions options;
  options.queue_capacity = 16;
  core::ResourceLocks locks;
  options.locks = &locks;
  InferenceServer server({MakeTinyServed("cpu-model", core::FlowKind::kTvmOnly),
                          MakeTinyServed("apu-model", core::FlowKind::kNpApu)},
                         options);

  std::vector<ClientStream> streams;
  for (int c = 0; c < 4; ++c) {
    ClientStream stream;
    stream.model = c % 2 == 0 ? "cpu-model" : "apu-model";
    stream.inputs = {{"data", TinyInput()}};
    streams.push_back(std::move(stream));
  }
  const LoadResult result = RunClosedLoop(server, streams, /*requests_per_client=*/8);
  EXPECT_EQ(result.submitted, 32);
  EXPECT_EQ(result.ok, 32);
  EXPECT_EQ(result.shed, 0);
  EXPECT_EQ(result.errors, 0);
}

TEST(InferenceServer, SteadyStateServesWithZeroTensorAllocations) {
  core::ResourceLocks locks;
  ServerOptions options;
  options.locks = &locks;
  InferenceServer server({MakeTinyServed("tiny", core::FlowKind::kTvmOnly)}, options);

  ClientStream stream;
  stream.model = "tiny";
  stream.inputs = {{"data", TinyInput()}};
  stream.output_buffers = {NDArray::Zeros(Shape({1, 5}), DType::kFloat32)};

  // Warm: first runs may bind lazily.
  RunClosedLoop(server, {stream}, 3);
  const std::int64_t allocs_before = NDArray::TotalAllocations();
  const LoadResult result = RunClosedLoop(server, {stream}, 5);
  EXPECT_EQ(result.ok, 5);
  EXPECT_EQ(NDArray::TotalAllocations() - allocs_before, 0)
      << "warm serving must not allocate tensors";
}

TEST(InferenceServer, ShutdownDrainsAdmittedRequests) {
  core::ResourceLocks locks;
  ServerOptions options;
  options.locks = &locks;
  auto server = std::make_unique<InferenceServer>(
      std::vector<ServedModel>{MakeTinyServed("tiny", core::FlowKind::kTvmOnly)}, options);
  std::vector<std::future<ServeResponse>> futures;
  for (int i = 0; i < 8; ++i) {
    ServeRequest request;
    request.model = "tiny";
    request.inputs = {{"data", TinyInput()}};
    futures.push_back(server->Submit(std::move(request)));
  }
  server.reset();  // Shutdown: admitted requests still get answers
  for (auto& future : futures) {
    const ServeResponse response = future.get();
    EXPECT_TRUE(response.status == ServeStatus::kOk ||
                response.status == ServeStatus::kShed);
  }
}

}  // namespace
}  // namespace serve
}  // namespace tnp
