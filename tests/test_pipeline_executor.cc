// The threaded pipeline executor: ordering, packet dropping, resource
// exclusivity, and genuine wall-clock overlap of resource-disjoint stages.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "core/pipeline_executor.h"

namespace tnp {
namespace core {
namespace {

using Clock = std::chrono::steady_clock;

TEST(PipelineExecutor, PreservesOrder) {
  using P = Pipeline<int>;
  std::vector<P::Stage> stages;
  stages.push_back(P::Stage{"inc", {sim::Resource::kCpu},
                            [](int v) -> std::optional<int> { return v + 1; }});
  stages.push_back(P::Stage{"dbl", {sim::Resource::kApu},
                            [](int v) -> std::optional<int> { return v * 2; }});
  P pipeline(std::move(stages));
  std::vector<int> inputs;
  for (int i = 0; i < 32; ++i) inputs.push_back(i);
  const std::vector<int> outputs = pipeline.Run(std::move(inputs));
  ASSERT_EQ(outputs.size(), 32u);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(outputs[static_cast<std::size_t>(i)], (i + 1) * 2);
}

TEST(PipelineExecutor, DropsFilteredPackets) {
  using P = Pipeline<int>;
  std::vector<P::Stage> stages;
  stages.push_back(P::Stage{"filter-odd", {sim::Resource::kCpu},
                            [](int v) -> std::optional<int> {
                              if (v % 2 == 1) return std::nullopt;
                              return v;
                            }});
  stages.push_back(P::Stage{"pass", {sim::Resource::kCpu},
                            [](int v) -> std::optional<int> { return v; }});
  P pipeline(std::move(stages));
  const std::vector<int> outputs = pipeline.Run({0, 1, 2, 3, 4, 5});
  EXPECT_EQ(outputs, (std::vector<int>{0, 2, 4}));
}

TEST(PipelineExecutor, EmptyInputCompletes) {
  using P = Pipeline<int>;
  std::vector<P::Stage> stages;
  stages.push_back(
      P::Stage{"s", {sim::Resource::kCpu}, [](int v) -> std::optional<int> { return v; }});
  P pipeline(std::move(stages));
  EXPECT_TRUE(pipeline.Run({}).empty());
}

TEST(PipelineExecutor, ResourceExclusivityEnforced) {
  // Two stages share the CPU resource; at no instant may both hold it.
  std::atomic<int> holders{0};
  std::atomic<bool> violated{false};
  const auto critical = [&](int v) -> std::optional<int> {
    if (holders.fetch_add(1) != 0) violated = true;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    holders.fetch_sub(1);
    return v;
  };
  using P = Pipeline<int>;
  std::vector<P::Stage> stages;
  stages.push_back(P::Stage{"a", {sim::Resource::kCpu}, critical});
  stages.push_back(P::Stage{"b", {sim::Resource::kCpu}, critical});
  P pipeline(std::move(stages));
  std::vector<int> inputs(64, 1);
  pipeline.Run(std::move(inputs));
  EXPECT_FALSE(violated.load());
}

TEST(PipelineExecutor, DisjointResourcesOverlapInWallClock) {
  // Two 2ms stages on different resources over 16 packets: sequential would
  // take >= 64ms; the pipeline should land well under that.
  const auto sleepy = [](int v) -> std::optional<int> {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    return v;
  };
  using P = Pipeline<int>;
  std::vector<P::Stage> stages;
  stages.push_back(P::Stage{"cpu", {sim::Resource::kCpu}, sleepy});
  stages.push_back(P::Stage{"apu", {sim::Resource::kApu}, sleepy});
  P pipeline(std::move(stages));
  std::vector<int> inputs(16, 0);
  const auto start = Clock::now();
  pipeline.Run(std::move(inputs));
  const double ms = std::chrono::duration<double, std::milli>(Clock::now() - start).count();
  EXPECT_LT(ms, 56.0) << "no overlap observed";
  EXPECT_GT(ms, 30.0);  // sanity: the work itself takes >= 17*2ms critical path
}

TEST(PipelineExecutor, MultiResourceStageBlocksBoth) {
  std::atomic<bool> violated{false};
  std::atomic<int> cpu_holders{0};
  using P = Pipeline<int>;
  std::vector<P::Stage> stages;
  stages.push_back(P::Stage{"both", {sim::Resource::kCpu, sim::Resource::kApu},
                            [&](int v) -> std::optional<int> {
                              if (cpu_holders.fetch_add(1) != 0) violated = true;
                              std::this_thread::sleep_for(std::chrono::microseconds(100));
                              cpu_holders.fetch_sub(1);
                              return v;
                            }});
  stages.push_back(P::Stage{"cpu-only", {sim::Resource::kCpu},
                            [&](int v) -> std::optional<int> {
                              if (cpu_holders.fetch_add(1) != 0) violated = true;
                              std::this_thread::sleep_for(std::chrono::microseconds(100));
                              cpu_holders.fetch_sub(1);
                              return v;
                            }});
  P pipeline(std::move(stages));
  std::vector<int> inputs(32, 0);
  pipeline.Run(std::move(inputs));
  EXPECT_FALSE(violated.load());
}

TEST(PipelineExecutor, SingleStageWorks) {
  using P = Pipeline<std::string>;
  std::vector<P::Stage> stages;
  stages.push_back(P::Stage{"suffix", {sim::Resource::kCpu},
                            [](std::string s) -> std::optional<std::string> {
                              return s + "!";
                            }});
  P pipeline(std::move(stages));
  const auto out = pipeline.Run({"a", "b"});
  EXPECT_EQ(out, (std::vector<std::string>{"a!", "b!"}));
}

TEST(PipelineExecutor, BoundedQueueDoesNotDeadlock) {
  // More packets than total queue capacity; completes without deadlock.
  using P = Pipeline<int>;
  std::vector<P::Stage> stages;
  for (int s = 0; s < 4; ++s) {
    stages.push_back(P::Stage{"s" + std::to_string(s), {sim::Resource::kCpu},
                              [](int v) -> std::optional<int> { return v + 1; }});
  }
  P pipeline(std::move(stages), /*queue_capacity=*/2);
  std::vector<int> inputs(200, 0);
  const auto outputs = pipeline.Run(std::move(inputs));
  ASSERT_EQ(outputs.size(), 200u);
  EXPECT_EQ(outputs[0], 4);
}

}  // namespace
}  // namespace core
}  // namespace tnp
