// The threaded pipeline executor: ordering, packet dropping, resource
// exclusivity, genuine wall-clock overlap of resource-disjoint stages, and
// the observability surface (queue-depth gauges, per-stage spans).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>

#include "core/pipeline_executor.h"
#include "support/metrics.h"
#include "support/trace.h"

namespace tnp {
namespace core {
namespace {

using Clock = std::chrono::steady_clock;

TEST(PipelineExecutor, PreservesOrder) {
  using P = Pipeline<int>;
  std::vector<P::Stage> stages;
  stages.push_back(P::Stage{"inc", {sim::Resource::kCpu},
                            [](int v) -> std::optional<int> { return v + 1; }});
  stages.push_back(P::Stage{"dbl", {sim::Resource::kApu},
                            [](int v) -> std::optional<int> { return v * 2; }});
  P pipeline(std::move(stages));
  std::vector<int> inputs;
  for (int i = 0; i < 32; ++i) inputs.push_back(i);
  const std::vector<int> outputs = pipeline.Run(std::move(inputs));
  ASSERT_EQ(outputs.size(), 32u);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(outputs[static_cast<std::size_t>(i)], (i + 1) * 2);
}

TEST(PipelineExecutor, DropsFilteredPackets) {
  using P = Pipeline<int>;
  std::vector<P::Stage> stages;
  stages.push_back(P::Stage{"filter-odd", {sim::Resource::kCpu},
                            [](int v) -> std::optional<int> {
                              if (v % 2 == 1) return std::nullopt;
                              return v;
                            }});
  stages.push_back(P::Stage{"pass", {sim::Resource::kCpu},
                            [](int v) -> std::optional<int> { return v; }});
  P pipeline(std::move(stages));
  const std::vector<int> outputs = pipeline.Run({0, 1, 2, 3, 4, 5});
  EXPECT_EQ(outputs, (std::vector<int>{0, 2, 4}));
}

TEST(PipelineExecutor, EmptyInputCompletes) {
  using P = Pipeline<int>;
  std::vector<P::Stage> stages;
  stages.push_back(
      P::Stage{"s", {sim::Resource::kCpu}, [](int v) -> std::optional<int> { return v; }});
  P pipeline(std::move(stages));
  EXPECT_TRUE(pipeline.Run({}).empty());
}

TEST(PipelineExecutor, ResourceExclusivityEnforced) {
  // Two stages share the CPU resource; at no instant may both hold it.
  std::atomic<int> holders{0};
  std::atomic<bool> violated{false};
  const auto critical = [&](int v) -> std::optional<int> {
    if (holders.fetch_add(1) != 0) violated = true;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    holders.fetch_sub(1);
    return v;
  };
  using P = Pipeline<int>;
  std::vector<P::Stage> stages;
  stages.push_back(P::Stage{"a", {sim::Resource::kCpu}, critical});
  stages.push_back(P::Stage{"b", {sim::Resource::kCpu}, critical});
  P pipeline(std::move(stages));
  std::vector<int> inputs(64, 1);
  pipeline.Run(std::move(inputs));
  EXPECT_FALSE(violated.load());
}

TEST(PipelineExecutor, DisjointResourcesOverlapInWallClock) {
  // Two 2ms stages on different resources over 16 packets: sequential would
  // take >= 64ms; the pipeline should land well under that.
  const auto sleepy = [](int v) -> std::optional<int> {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    return v;
  };
  using P = Pipeline<int>;
  std::vector<P::Stage> stages;
  stages.push_back(P::Stage{"cpu", {sim::Resource::kCpu}, sleepy});
  stages.push_back(P::Stage{"apu", {sim::Resource::kApu}, sleepy});
  P pipeline(std::move(stages));
  std::vector<int> inputs(16, 0);
  const auto start = Clock::now();
  pipeline.Run(std::move(inputs));
  const double ms = std::chrono::duration<double, std::milli>(Clock::now() - start).count();
  EXPECT_LT(ms, 56.0) << "no overlap observed";
  EXPECT_GT(ms, 30.0);  // sanity: the work itself takes >= 17*2ms critical path
}

TEST(PipelineExecutor, MultiResourceStageBlocksBoth) {
  std::atomic<bool> violated{false};
  std::atomic<int> cpu_holders{0};
  using P = Pipeline<int>;
  std::vector<P::Stage> stages;
  stages.push_back(P::Stage{"both", {sim::Resource::kCpu, sim::Resource::kApu},
                            [&](int v) -> std::optional<int> {
                              if (cpu_holders.fetch_add(1) != 0) violated = true;
                              std::this_thread::sleep_for(std::chrono::microseconds(100));
                              cpu_holders.fetch_sub(1);
                              return v;
                            }});
  stages.push_back(P::Stage{"cpu-only", {sim::Resource::kCpu},
                            [&](int v) -> std::optional<int> {
                              if (cpu_holders.fetch_add(1) != 0) violated = true;
                              std::this_thread::sleep_for(std::chrono::microseconds(100));
                              cpu_holders.fetch_sub(1);
                              return v;
                            }});
  P pipeline(std::move(stages));
  std::vector<int> inputs(32, 0);
  pipeline.Run(std::move(inputs));
  EXPECT_FALSE(violated.load());
}

TEST(PipelineExecutor, SingleStageWorks) {
  using P = Pipeline<std::string>;
  std::vector<P::Stage> stages;
  stages.push_back(P::Stage{"suffix", {sim::Resource::kCpu},
                            [](std::string s) -> std::optional<std::string> {
                              return s + "!";
                            }});
  P pipeline(std::move(stages));
  const auto out = pipeline.Run({"a", "b"});
  EXPECT_EQ(out, (std::vector<std::string>{"a!", "b!"}));
}

TEST(PipelineExecutor, QueueDepthGaugesPopulated) {
  using P = Pipeline<int>;
  std::vector<P::Stage> stages;
  stages.push_back(P::Stage{"gauge-a", {sim::Resource::kCpu},
                            [](int v) -> std::optional<int> {
                              std::this_thread::sleep_for(std::chrono::microseconds(100));
                              return v;
                            }});
  stages.push_back(P::Stage{"gauge-b", {sim::Resource::kApu},
                            [](int v) -> std::optional<int> { return v; }});
  P pipeline(std::move(stages), /*queue_capacity=*/2);
  std::vector<int> inputs(16, 0);
  pipeline.Run(std::move(inputs));

  auto& registry = support::metrics::Registry::Global();
  // One gauge per inter-stage queue, plus the output queue.
  for (const char* name : {"pipeline/queue/gauge-a/depth", "pipeline/queue/gauge-b/depth",
                           "pipeline/queue/out/depth"}) {
    const support::metrics::Gauge* gauge = registry.FindGauge(name);
    ASSERT_NE(gauge, nullptr) << name;
    // 16 packets flowed through a capacity-2 queue: the high-watermark must
    // have seen at least one item, and the drained queue reads zero.
    EXPECT_GE(gauge->max(), 1.0) << name;
    EXPECT_EQ(gauge->value(), 0.0) << name;
  }
  // Per-stage latency histograms see every packet regardless of tracing.
  const support::metrics::Histogram* stage_us =
      registry.FindHistogram("pipeline/stage/gauge-a/us");
  ASSERT_NE(stage_us, nullptr);
  EXPECT_GE(stage_us->count(), 16);
}

TEST(PipelineExecutor, PerStageSpansRecorded) {
  auto& tracer = support::Tracer::Global();
  tracer.Clear();
  const support::Tracer::ScopedEnable enable;
  const std::uint64_t start_seq = tracer.sequence();

  using P = Pipeline<int>;
  std::vector<P::Stage> stages;
  stages.push_back(P::Stage{"span-a", {sim::Resource::kCpu},
                            [](int v) -> std::optional<int> { return v; }});
  stages.push_back(P::Stage{"span-b", {sim::Resource::kApu},
                            [](int v) -> std::optional<int> { return v; }});
  P pipeline(std::move(stages));
  std::vector<int> inputs(8, 0);
  pipeline.Run(std::move(inputs));

  std::set<std::string> names;
  int counter_samples = 0;
  for (const auto& event : tracer.EventsSince(start_seq)) {
    if (std::string(event.category) != "pipeline") continue;
    if (event.phase == support::TracePhase::kCounter) {
      ++counter_samples;
      continue;
    }
    names.insert(event.name);
  }
  // dequeue/run/enqueue spans for both stages (the last stage's enqueue
  // feeds the output queue).
  for (const char* expected :
       {"span-a:dequeue", "span-a:run", "span-a:enqueue", "span-b:dequeue", "span-b:run",
        "span-b:enqueue"}) {
    EXPECT_EQ(names.count(expected), 1u) << expected;
  }
  // Queue-depth counter track samples on every push/pop.
  EXPECT_GT(counter_samples, 0);
}

TEST(PipelineExecutor, InjectedLocksIsolateIndependentPipelines) {
  // Two pipelines whose stages claim the "CPU" but represent independent
  // devices (e.g. a serving executor and a test pipeline): with private
  // injected ResourceLocks their stages may run concurrently, while the
  // shared Global() instance must keep serializing them. Observed via a
  // cross-pipeline concurrency counter (not wall-clock, which is noisy
  // under a loaded test machine).
  std::atomic<int> holders{0};
  std::atomic<int> max_holders{0};
  const auto observing = [&](int v) -> std::optional<int> {
    const int now = holders.fetch_add(1) + 1;
    int seen = max_holders.load();
    while (now > seen && !max_holders.compare_exchange_weak(seen, now)) {
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    holders.fetch_sub(1);
    return v;
  };
  using P = Pipeline<int>;
  const auto run_pair = [&](ResourceLocks* locks_a, ResourceLocks* locks_b) {
    holders = 0;
    max_holders = 0;
    std::vector<P::Stage> stages_a;
    stages_a.push_back(P::Stage{"hog-a", {sim::Resource::kCpu}, observing});
    std::vector<P::Stage> stages_b;
    stages_b.push_back(P::Stage{"hog-b", {sim::Resource::kCpu}, observing});
    P a(std::move(stages_a), /*queue_capacity=*/4, locks_a);
    P b(std::move(stages_b), /*queue_capacity=*/4, locks_b);
    std::thread ta([&] { a.Run(std::vector<int>(8, 0)); });
    std::thread tb([&] { b.Run(std::vector<int>(8, 0)); });
    ta.join();
    tb.join();
    return max_holders.load();
  };

  ResourceLocks locks_a;
  ResourceLocks locks_b;
  // Private lock sets: 8 x 2ms sleeps per pipeline overlap at some instant.
  EXPECT_EQ(run_pair(&locks_a, &locks_b), 2) << "private locks must not serialize";
  // Defaulted to Global(): the shared CPU mutex admits one holder ever.
  EXPECT_EQ(run_pair(nullptr, nullptr), 1) << "Global() locks must still serialize";
}

TEST(PipelineExecutor, BoundedQueueDoesNotDeadlock) {
  // More packets than total queue capacity; completes without deadlock.
  using P = Pipeline<int>;
  std::vector<P::Stage> stages;
  for (int s = 0; s < 4; ++s) {
    stages.push_back(P::Stage{"s" + std::to_string(s), {sim::Resource::kCpu},
                              [](int v) -> std::optional<int> { return v + 1; }});
  }
  P pipeline(std::move(stages), /*queue_capacity=*/2);
  std::vector<int> inputs(200, 0);
  const auto outputs = pipeline.Run(std::move(inputs));
  ASSERT_EQ(outputs.size(), 200u);
  EXPECT_EQ(outputs[0], 4);
}

}  // namespace
}  // namespace core
}  // namespace tnp
