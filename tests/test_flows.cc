// The seven flow permutations: support patterns, output equivalence, and
// the latency orderings the paper's Figures 4/6 rest on.
#include <gtest/gtest.h>

#include "core/flows.h"
#include "frontend/common.h"
#include "relay/pass.h"
#include "zoo/zoo.h"

namespace tnp {
namespace core {
namespace {

using frontend::TypedCall;
using frontend::TypedVar;
using frontend::WeightF32;
using frontend::ZeroBiasF32;

/// Fully Neuron-mappable conv net (all 7 flows should support it).
relay::Module FullySupportedModel() {
  auto x = TypedVar("data", Shape({1, 3, 16, 16}), DType::kFloat32);
  auto conv = TypedCall("nn.conv2d", {x, WeightF32(Shape({8, 3, 3, 3}), 1), ZeroBiasF32(8)},
                        relay::Attrs().SetInts("padding", {1, 1}));
  auto relu = TypedCall("nn.relu", {conv});
  auto pool = TypedCall("nn.global_avg_pool2d", {relu});
  auto flat = TypedCall("nn.batch_flatten", {pool});
  auto dense = TypedCall("nn.dense", {flat, WeightF32(Shape({5, 8}), 2), ZeroBiasF32(5)});
  auto softmax = TypedCall("nn.softmax", {dense});
  return relay::Module(relay::MakeFunction({x}, softmax));
}

/// Contains sigmoid: NP-only flows must fail, BYOC must split.
relay::Module PartiallySupportedModel() {
  auto x = TypedVar("data", Shape({1, 3, 16, 16}), DType::kFloat32);
  auto conv = TypedCall("nn.conv2d", {x, WeightF32(Shape({8, 3, 3, 3}), 1), ZeroBiasF32(8)},
                        relay::Attrs().SetInts("padding", {1, 1}));
  auto gate = TypedCall("sigmoid", {conv});
  auto gated = TypedCall("multiply", {conv, gate});
  return relay::Module(relay::MakeFunction({x}, gated));
}

TEST(Flows, NamesAndResources) {
  EXPECT_STREQ(FlowName(FlowKind::kTvmOnly), "TVM-only");
  EXPECT_STREQ(FlowName(FlowKind::kNpCpuApu), "NP-only(CPU+APU)");
  EXPECT_EQ(FlowResources(FlowKind::kTvmOnly),
            (std::vector<sim::Resource>{sim::Resource::kCpu}));
  EXPECT_EQ(FlowResources(FlowKind::kNpApu),
            (std::vector<sim::Resource>{sim::Resource::kApu}));
  EXPECT_EQ(FlowResources(FlowKind::kByocCpuApu).size(), 2u);
}

TEST(Flows, FullySupportedRunsEverywhere) {
  const relay::Module module = FullySupportedModel();
  for (const FlowKind flow : kAllFlows) {
    std::string error;
    const InferenceSessionPtr session = TryCompileFlow(module, flow, &error);
    ASSERT_NE(session, nullptr) << FlowName(flow) << ": " << error;
    EXPECT_GT(session->EstimateLatency().total_us(), 0.0) << FlowName(flow);
  }
}

TEST(Flows, OutputsIdenticalAcrossAllFlows) {
  const relay::Module module = FullySupportedModel();
  NDArray input = NDArray::RandomNormal(Shape({1, 3, 16, 16}), 17, 0.5f);
  NDArray reference;
  for (const FlowKind flow : kAllFlows) {
    const InferenceSessionPtr session = CompileFlow(module, flow);
    session->SetInput("data", input);
    session->Run();
    const NDArray out = session->GetOutput(0);
    if (!reference.defined()) {
      reference = out;
    } else {
      EXPECT_TRUE(NDArray::BitEqual(reference, out))
          << FlowName(flow) << " diverges from TVM-only";
    }
  }
}

TEST(Flows, NpOnlyFailsOnUnsupportedOps) {
  const relay::Module module = PartiallySupportedModel();
  for (const FlowKind flow : {FlowKind::kNpCpu, FlowKind::kNpApu, FlowKind::kNpCpuApu}) {
    std::string error;
    EXPECT_EQ(TryCompileFlow(module, flow, &error), nullptr) << FlowName(flow);
    EXPECT_NE(error.find("sigmoid"), std::string::npos);
  }
  // BYOC flows still work (sigmoid stays on the TVM host).
  for (const FlowKind flow : {FlowKind::kByocCpu, FlowKind::kByocApu, FlowKind::kByocCpuApu}) {
    std::string error;
    const InferenceSessionPtr session = TryCompileFlow(module, flow, &error);
    ASSERT_NE(session, nullptr) << FlowName(flow) << ": " << error;
    EXPECT_GE(session->NumPartitions(), 1) << FlowName(flow);
  }
}

TEST(Flows, ByocMatchesTvmOnlyOnPartialModel) {
  const relay::Module module = PartiallySupportedModel();
  NDArray input = NDArray::RandomNormal(Shape({1, 3, 16, 16}), 23, 0.5f);
  const InferenceSessionPtr tvm = CompileFlow(module, FlowKind::kTvmOnly);
  const InferenceSessionPtr byoc = CompileFlow(module, FlowKind::kByocCpuApu);
  tvm->SetInput("data", input);
  byoc->SetInput("data", input);
  tvm->Run();
  byoc->Run();
  EXPECT_TRUE(NDArray::BitEqual(tvm->GetOutput(0), byoc->GetOutput(0)));
}

TEST(Flows, TvmOnlyIsSlowest) {
  // The paper's headline: TVM-only inference takes longer than flows using
  // NeuroPilot backends.
  const relay::Module module = FullySupportedModel();
  const double tvm_us =
      CompileFlow(module, FlowKind::kTvmOnly)->EstimateLatency().total_us();
  for (const FlowKind flow :
       {FlowKind::kByocCpu, FlowKind::kByocCpuApu, FlowKind::kNpCpu, FlowKind::kNpCpuApu}) {
    EXPECT_LT(CompileFlow(module, flow)->EstimateLatency().total_us(), tvm_us)
        << FlowName(flow);
  }
}

TEST(Flows, QuantModelFasterOnApuThanCpu) {
  // Canonical size so conv layers are big enough for APU offload to pay
  // (only the static simulator runs; no numerics at this scale).
  zoo::ZooOptions options;
  const relay::Module module = zoo::Build("mobilenet_v1_quant", options);
  const double np_cpu = CompileFlow(module, FlowKind::kNpCpu)->EstimateLatency().total_us();
  const double np_cpu_apu =
      CompileFlow(module, FlowKind::kNpCpuApu)->EstimateLatency().total_us();
  EXPECT_LT(np_cpu_apu, np_cpu);
}

TEST(Flows, PartitionCountsMatchModelStructure) {
  zoo::ZooOptions options;
  options.image_size = 32;
  options.width = 0.25;
  options.depth = 0.3;
  // deepixbis: sigmoid gates split the graph into several NIR subgraphs.
  const InferenceSessionPtr anti =
      CompileFlow(zoo::Build("deepixbis", options), FlowKind::kByocCpuApu);
  EXPECT_GT(anti->NumPartitions(), 1);
  // mobilenet_v1: fully supported -> exactly one subgraph.
  const InferenceSessionPtr mobilenet =
      CompileFlow(zoo::Build("mobilenet_v1", options), FlowKind::kByocCpuApu);
  EXPECT_EQ(mobilenet->NumPartitions(), 1);
  EXPECT_GT(mobilenet->NumExternalOps(), 10);
}

TEST(Flows, SessionIsReRunnable) {
  const relay::Module module = FullySupportedModel();
  const InferenceSessionPtr session = CompileFlow(module, FlowKind::kByocCpuApu);
  NDArray a = NDArray::RandomNormal(Shape({1, 3, 16, 16}), 1);
  NDArray b = NDArray::RandomNormal(Shape({1, 3, 16, 16}), 2);
  session->SetInput("data", a);
  session->Run();
  const NDArray out_a = session->GetOutput(0).CopyDeep();
  session->SetInput("data", b);
  session->Run();
  const NDArray out_b = session->GetOutput(0).CopyDeep();
  session->SetInput("data", a);
  session->Run();
  EXPECT_TRUE(NDArray::BitEqual(session->GetOutput(0), out_a));
  EXPECT_FALSE(NDArray::BitEqual(out_a, out_b));
}

TEST(Flows, NpSessionRejectsUnknownInput) {
  const InferenceSessionPtr session =
      CompileFlow(FullySupportedModel(), FlowKind::kNpCpu);
  EXPECT_THROW(session->SetInput("wrong", NDArray::Zeros(Shape({1}), DType::kFloat32)),
               Error);
}

TEST(Flows, EstimateIsDeterministic) {
  const relay::Module module = FullySupportedModel();
  const InferenceSessionPtr session = CompileFlow(module, FlowKind::kByocCpuApu);
  EXPECT_DOUBLE_EQ(session->EstimateLatency().total_us(),
                   session->EstimateLatency().total_us());
}

}  // namespace
}  // namespace core
}  // namespace tnp
