# Empty compiler generated dependencies file for fig4_showcase_targets.
# This may be replaced when dependencies are built.
