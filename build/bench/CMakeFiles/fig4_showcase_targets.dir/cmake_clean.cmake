file(REMOVE_RECURSE
  "CMakeFiles/fig4_showcase_targets.dir/fig4_showcase_targets.cc.o"
  "CMakeFiles/fig4_showcase_targets.dir/fig4_showcase_targets.cc.o.d"
  "fig4_showcase_targets"
  "fig4_showcase_targets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_showcase_targets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
