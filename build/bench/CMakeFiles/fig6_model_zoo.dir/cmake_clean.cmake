file(REMOVE_RECURSE
  "CMakeFiles/fig6_model_zoo.dir/fig6_model_zoo.cc.o"
  "CMakeFiles/fig6_model_zoo.dir/fig6_model_zoo.cc.o.d"
  "fig6_model_zoo"
  "fig6_model_zoo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_model_zoo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
