# Empty compiler generated dependencies file for ablation_subgraphs.
# This may be replaced when dependencies are built.
