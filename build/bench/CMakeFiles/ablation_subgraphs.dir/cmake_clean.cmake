file(REMOVE_RECURSE
  "CMakeFiles/ablation_subgraphs.dir/ablation_subgraphs.cc.o"
  "CMakeFiles/ablation_subgraphs.dir/ablation_subgraphs.cc.o.d"
  "ablation_subgraphs"
  "ablation_subgraphs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_subgraphs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
