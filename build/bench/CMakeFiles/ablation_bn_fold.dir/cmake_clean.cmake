file(REMOVE_RECURSE
  "CMakeFiles/ablation_bn_fold.dir/ablation_bn_fold.cc.o"
  "CMakeFiles/ablation_bn_fold.dir/ablation_bn_fold.cc.o.d"
  "ablation_bn_fold"
  "ablation_bn_fold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bn_fold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
