# Empty compiler generated dependencies file for ablation_bn_fold.
# This may be replaced when dependencies are built.
