# Empty dependencies file for profile_hotspots.
# This may be replaced when dependencies are built.
