file(REMOVE_RECURSE
  "CMakeFiles/profile_hotspots.dir/profile_hotspots.cc.o"
  "CMakeFiles/profile_hotspots.dir/profile_hotspots.cc.o.d"
  "profile_hotspots"
  "profile_hotspots.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profile_hotspots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
