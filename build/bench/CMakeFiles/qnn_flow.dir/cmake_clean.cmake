file(REMOVE_RECURSE
  "CMakeFiles/qnn_flow.dir/qnn_flow.cc.o"
  "CMakeFiles/qnn_flow.dir/qnn_flow.cc.o.d"
  "qnn_flow"
  "qnn_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qnn_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
