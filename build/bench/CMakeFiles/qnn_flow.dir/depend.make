# Empty dependencies file for qnn_flow.
# This may be replaced when dependencies are built.
