file(REMOVE_RECURSE
  "CMakeFiles/table2_device.dir/table2_device.cc.o"
  "CMakeFiles/table2_device.dir/table2_device.cc.o.d"
  "table2_device"
  "table2_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
