file(REMOVE_RECURSE
  "CMakeFiles/custom_backend.dir/custom_backend.cpp.o"
  "CMakeFiles/custom_backend.dir/custom_backend.cpp.o.d"
  "custom_backend"
  "custom_backend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_backend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
