# Empty compiler generated dependencies file for custom_backend.
# This may be replaced when dependencies are built.
