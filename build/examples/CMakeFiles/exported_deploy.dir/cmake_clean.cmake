file(REMOVE_RECURSE
  "CMakeFiles/exported_deploy.dir/exported_deploy.cpp.o"
  "CMakeFiles/exported_deploy.dir/exported_deploy.cpp.o.d"
  "exported_deploy"
  "exported_deploy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exported_deploy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
