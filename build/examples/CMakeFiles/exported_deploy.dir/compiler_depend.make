# Empty compiler generated dependencies file for exported_deploy.
# This may be replaced when dependencies are built.
