file(REMOVE_RECURSE
  "CMakeFiles/showcase_app.dir/showcase_app.cpp.o"
  "CMakeFiles/showcase_app.dir/showcase_app.cpp.o.d"
  "showcase_app"
  "showcase_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/showcase_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
