# Empty dependencies file for showcase_app.
# This may be replaced when dependencies are built.
