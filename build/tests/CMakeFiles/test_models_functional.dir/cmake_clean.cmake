file(REMOVE_RECURSE
  "CMakeFiles/test_models_functional.dir/test_models_functional.cc.o"
  "CMakeFiles/test_models_functional.dir/test_models_functional.cc.o.d"
  "test_models_functional"
  "test_models_functional.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_models_functional.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
