# Empty compiler generated dependencies file for test_models_functional.
# This may be replaced when dependencies are built.
