file(REMOVE_RECURSE
  "CMakeFiles/test_relay_typeinfer.dir/test_relay_typeinfer.cc.o"
  "CMakeFiles/test_relay_typeinfer.dir/test_relay_typeinfer.cc.o.d"
  "test_relay_typeinfer"
  "test_relay_typeinfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_relay_typeinfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
