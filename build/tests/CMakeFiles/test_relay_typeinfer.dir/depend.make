# Empty dependencies file for test_relay_typeinfer.
# This may be replaced when dependencies are built.
