file(REMOVE_RECURSE
  "CMakeFiles/test_kernels_conv.dir/test_kernels_conv.cc.o"
  "CMakeFiles/test_kernels_conv.dir/test_kernels_conv.cc.o.d"
  "test_kernels_conv"
  "test_kernels_conv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernels_conv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
