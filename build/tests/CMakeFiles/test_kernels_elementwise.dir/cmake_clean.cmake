file(REMOVE_RECURSE
  "CMakeFiles/test_kernels_elementwise.dir/test_kernels_elementwise.cc.o"
  "CMakeFiles/test_kernels_elementwise.dir/test_kernels_elementwise.cc.o.d"
  "test_kernels_elementwise"
  "test_kernels_elementwise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernels_elementwise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
