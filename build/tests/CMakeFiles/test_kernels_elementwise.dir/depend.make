# Empty dependencies file for test_kernels_elementwise.
# This may be replaced when dependencies are built.
