file(REMOVE_RECURSE
  "CMakeFiles/test_neuron.dir/test_neuron.cc.o"
  "CMakeFiles/test_neuron.dir/test_neuron.cc.o.d"
  "test_neuron"
  "test_neuron.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_neuron.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
