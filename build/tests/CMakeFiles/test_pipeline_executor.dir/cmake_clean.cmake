file(REMOVE_RECURSE
  "CMakeFiles/test_pipeline_executor.dir/test_pipeline_executor.cc.o"
  "CMakeFiles/test_pipeline_executor.dir/test_pipeline_executor.cc.o.d"
  "test_pipeline_executor"
  "test_pipeline_executor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pipeline_executor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
