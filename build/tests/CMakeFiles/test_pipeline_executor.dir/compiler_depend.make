# Empty compiler generated dependencies file for test_pipeline_executor.
# This may be replaced when dependencies are built.
