# Empty compiler generated dependencies file for test_qnn_canonicalize.
# This may be replaced when dependencies are built.
