file(REMOVE_RECURSE
  "CMakeFiles/test_qnn_canonicalize.dir/test_qnn_canonicalize.cc.o"
  "CMakeFiles/test_qnn_canonicalize.dir/test_qnn_canonicalize.cc.o.d"
  "test_qnn_canonicalize"
  "test_qnn_canonicalize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qnn_canonicalize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
