file(REMOVE_RECURSE
  "CMakeFiles/test_kernels_quantize.dir/test_kernels_quantize.cc.o"
  "CMakeFiles/test_kernels_quantize.dir/test_kernels_quantize.cc.o.d"
  "test_kernels_quantize"
  "test_kernels_quantize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernels_quantize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
