# Empty compiler generated dependencies file for test_kernels_quantize.
# This may be replaced when dependencies are built.
