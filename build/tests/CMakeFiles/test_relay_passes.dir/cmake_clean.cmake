file(REMOVE_RECURSE
  "CMakeFiles/test_relay_passes.dir/test_relay_passes.cc.o"
  "CMakeFiles/test_relay_passes.dir/test_relay_passes.cc.o.d"
  "test_relay_passes"
  "test_relay_passes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_relay_passes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
