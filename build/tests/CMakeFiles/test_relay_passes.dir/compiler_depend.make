# Empty compiler generated dependencies file for test_relay_passes.
# This may be replaced when dependencies are built.
