
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_relay_passes.cc" "tests/CMakeFiles/test_relay_passes.dir/test_relay_passes.cc.o" "gcc" "tests/CMakeFiles/test_relay_passes.dir/test_relay_passes.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vision/CMakeFiles/tnp_vision.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tnp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/zoo/CMakeFiles/tnp_zoo.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/tnp_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/relay/CMakeFiles/tnp_relay.dir/DependInfo.cmake"
  "/root/repo/build/src/neuron/CMakeFiles/tnp_neuron.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/tnp_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tnp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/tnp_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/tnp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
