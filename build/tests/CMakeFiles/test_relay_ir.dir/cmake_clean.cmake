file(REMOVE_RECURSE
  "CMakeFiles/test_relay_ir.dir/test_relay_ir.cc.o"
  "CMakeFiles/test_relay_ir.dir/test_relay_ir.cc.o.d"
  "test_relay_ir"
  "test_relay_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_relay_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
