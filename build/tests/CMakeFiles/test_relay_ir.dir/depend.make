# Empty dependencies file for test_relay_ir.
# This may be replaced when dependencies are built.
