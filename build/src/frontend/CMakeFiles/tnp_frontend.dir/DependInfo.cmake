
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/frontend/common.cc" "src/frontend/CMakeFiles/tnp_frontend.dir/common.cc.o" "gcc" "src/frontend/CMakeFiles/tnp_frontend.dir/common.cc.o.d"
  "/root/repo/src/frontend/darknet.cc" "src/frontend/CMakeFiles/tnp_frontend.dir/darknet.cc.o" "gcc" "src/frontend/CMakeFiles/tnp_frontend.dir/darknet.cc.o.d"
  "/root/repo/src/frontend/keras.cc" "src/frontend/CMakeFiles/tnp_frontend.dir/keras.cc.o" "gcc" "src/frontend/CMakeFiles/tnp_frontend.dir/keras.cc.o.d"
  "/root/repo/src/frontend/mxnet.cc" "src/frontend/CMakeFiles/tnp_frontend.dir/mxnet.cc.o" "gcc" "src/frontend/CMakeFiles/tnp_frontend.dir/mxnet.cc.o.d"
  "/root/repo/src/frontend/onnx.cc" "src/frontend/CMakeFiles/tnp_frontend.dir/onnx.cc.o" "gcc" "src/frontend/CMakeFiles/tnp_frontend.dir/onnx.cc.o.d"
  "/root/repo/src/frontend/tflite.cc" "src/frontend/CMakeFiles/tnp_frontend.dir/tflite.cc.o" "gcc" "src/frontend/CMakeFiles/tnp_frontend.dir/tflite.cc.o.d"
  "/root/repo/src/frontend/torchscript.cc" "src/frontend/CMakeFiles/tnp_frontend.dir/torchscript.cc.o" "gcc" "src/frontend/CMakeFiles/tnp_frontend.dir/torchscript.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/relay/CMakeFiles/tnp_relay.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/tnp_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tnp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/tnp_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/tnp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
