file(REMOVE_RECURSE
  "CMakeFiles/tnp_frontend.dir/common.cc.o"
  "CMakeFiles/tnp_frontend.dir/common.cc.o.d"
  "CMakeFiles/tnp_frontend.dir/darknet.cc.o"
  "CMakeFiles/tnp_frontend.dir/darknet.cc.o.d"
  "CMakeFiles/tnp_frontend.dir/keras.cc.o"
  "CMakeFiles/tnp_frontend.dir/keras.cc.o.d"
  "CMakeFiles/tnp_frontend.dir/mxnet.cc.o"
  "CMakeFiles/tnp_frontend.dir/mxnet.cc.o.d"
  "CMakeFiles/tnp_frontend.dir/onnx.cc.o"
  "CMakeFiles/tnp_frontend.dir/onnx.cc.o.d"
  "CMakeFiles/tnp_frontend.dir/tflite.cc.o"
  "CMakeFiles/tnp_frontend.dir/tflite.cc.o.d"
  "CMakeFiles/tnp_frontend.dir/torchscript.cc.o"
  "CMakeFiles/tnp_frontend.dir/torchscript.cc.o.d"
  "libtnp_frontend.a"
  "libtnp_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tnp_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
