# Empty compiler generated dependencies file for tnp_frontend.
# This may be replaced when dependencies are built.
