file(REMOVE_RECURSE
  "libtnp_frontend.a"
)
