# Empty compiler generated dependencies file for tnp_core.
# This may be replaced when dependencies are built.
