file(REMOVE_RECURSE
  "CMakeFiles/tnp_core.dir/flows.cc.o"
  "CMakeFiles/tnp_core.dir/flows.cc.o.d"
  "CMakeFiles/tnp_core.dir/nir.cc.o"
  "CMakeFiles/tnp_core.dir/nir.cc.o.d"
  "CMakeFiles/tnp_core.dir/relay_to_neuron.cc.o"
  "CMakeFiles/tnp_core.dir/relay_to_neuron.cc.o.d"
  "CMakeFiles/tnp_core.dir/scheduler.cc.o"
  "CMakeFiles/tnp_core.dir/scheduler.cc.o.d"
  "libtnp_core.a"
  "libtnp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tnp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
