file(REMOVE_RECURSE
  "libtnp_core.a"
)
