file(REMOVE_RECURSE
  "libtnp_neuron.a"
)
