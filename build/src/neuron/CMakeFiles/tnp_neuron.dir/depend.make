# Empty dependencies file for tnp_neuron.
# This may be replaced when dependencies are built.
