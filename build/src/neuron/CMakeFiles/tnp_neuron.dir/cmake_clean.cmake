file(REMOVE_RECURSE
  "CMakeFiles/tnp_neuron.dir/compiler.cc.o"
  "CMakeFiles/tnp_neuron.dir/compiler.cc.o.d"
  "CMakeFiles/tnp_neuron.dir/desc.cc.o"
  "CMakeFiles/tnp_neuron.dir/desc.cc.o.d"
  "CMakeFiles/tnp_neuron.dir/ir.cc.o"
  "CMakeFiles/tnp_neuron.dir/ir.cc.o.d"
  "CMakeFiles/tnp_neuron.dir/planner.cc.o"
  "CMakeFiles/tnp_neuron.dir/planner.cc.o.d"
  "CMakeFiles/tnp_neuron.dir/runtime.cc.o"
  "CMakeFiles/tnp_neuron.dir/runtime.cc.o.d"
  "CMakeFiles/tnp_neuron.dir/support_matrix.cc.o"
  "CMakeFiles/tnp_neuron.dir/support_matrix.cc.o.d"
  "libtnp_neuron.a"
  "libtnp_neuron.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tnp_neuron.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
