
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/neuron/compiler.cc" "src/neuron/CMakeFiles/tnp_neuron.dir/compiler.cc.o" "gcc" "src/neuron/CMakeFiles/tnp_neuron.dir/compiler.cc.o.d"
  "/root/repo/src/neuron/desc.cc" "src/neuron/CMakeFiles/tnp_neuron.dir/desc.cc.o" "gcc" "src/neuron/CMakeFiles/tnp_neuron.dir/desc.cc.o.d"
  "/root/repo/src/neuron/ir.cc" "src/neuron/CMakeFiles/tnp_neuron.dir/ir.cc.o" "gcc" "src/neuron/CMakeFiles/tnp_neuron.dir/ir.cc.o.d"
  "/root/repo/src/neuron/planner.cc" "src/neuron/CMakeFiles/tnp_neuron.dir/planner.cc.o" "gcc" "src/neuron/CMakeFiles/tnp_neuron.dir/planner.cc.o.d"
  "/root/repo/src/neuron/runtime.cc" "src/neuron/CMakeFiles/tnp_neuron.dir/runtime.cc.o" "gcc" "src/neuron/CMakeFiles/tnp_neuron.dir/runtime.cc.o.d"
  "/root/repo/src/neuron/support_matrix.cc" "src/neuron/CMakeFiles/tnp_neuron.dir/support_matrix.cc.o" "gcc" "src/neuron/CMakeFiles/tnp_neuron.dir/support_matrix.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kernels/CMakeFiles/tnp_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tnp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/tnp_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/tnp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
