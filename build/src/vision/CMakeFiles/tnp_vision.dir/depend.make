# Empty dependencies file for tnp_vision.
# This may be replaced when dependencies are built.
