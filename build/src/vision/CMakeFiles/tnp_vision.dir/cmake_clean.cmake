file(REMOVE_RECURSE
  "CMakeFiles/tnp_vision.dir/app.cc.o"
  "CMakeFiles/tnp_vision.dir/app.cc.o.d"
  "CMakeFiles/tnp_vision.dir/detector.cc.o"
  "CMakeFiles/tnp_vision.dir/detector.cc.o.d"
  "CMakeFiles/tnp_vision.dir/image.cc.o"
  "CMakeFiles/tnp_vision.dir/image.cc.o.d"
  "CMakeFiles/tnp_vision.dir/models.cc.o"
  "CMakeFiles/tnp_vision.dir/models.cc.o.d"
  "CMakeFiles/tnp_vision.dir/scene.cc.o"
  "CMakeFiles/tnp_vision.dir/scene.cc.o.d"
  "CMakeFiles/tnp_vision.dir/types.cc.o"
  "CMakeFiles/tnp_vision.dir/types.cc.o.d"
  "libtnp_vision.a"
  "libtnp_vision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tnp_vision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
