file(REMOVE_RECURSE
  "libtnp_vision.a"
)
