# Empty dependencies file for tnp_zoo.
# This may be replaced when dependencies are built.
