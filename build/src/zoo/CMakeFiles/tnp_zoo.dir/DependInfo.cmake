
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/zoo/darknet_models.cc" "src/zoo/CMakeFiles/tnp_zoo.dir/darknet_models.cc.o" "gcc" "src/zoo/CMakeFiles/tnp_zoo.dir/darknet_models.cc.o.d"
  "/root/repo/src/zoo/keras_models.cc" "src/zoo/CMakeFiles/tnp_zoo.dir/keras_models.cc.o" "gcc" "src/zoo/CMakeFiles/tnp_zoo.dir/keras_models.cc.o.d"
  "/root/repo/src/zoo/mxnet_models.cc" "src/zoo/CMakeFiles/tnp_zoo.dir/mxnet_models.cc.o" "gcc" "src/zoo/CMakeFiles/tnp_zoo.dir/mxnet_models.cc.o.d"
  "/root/repo/src/zoo/onnx_models.cc" "src/zoo/CMakeFiles/tnp_zoo.dir/onnx_models.cc.o" "gcc" "src/zoo/CMakeFiles/tnp_zoo.dir/onnx_models.cc.o.d"
  "/root/repo/src/zoo/tflite_models.cc" "src/zoo/CMakeFiles/tnp_zoo.dir/tflite_models.cc.o" "gcc" "src/zoo/CMakeFiles/tnp_zoo.dir/tflite_models.cc.o.d"
  "/root/repo/src/zoo/torch_models.cc" "src/zoo/CMakeFiles/tnp_zoo.dir/torch_models.cc.o" "gcc" "src/zoo/CMakeFiles/tnp_zoo.dir/torch_models.cc.o.d"
  "/root/repo/src/zoo/zoo.cc" "src/zoo/CMakeFiles/tnp_zoo.dir/zoo.cc.o" "gcc" "src/zoo/CMakeFiles/tnp_zoo.dir/zoo.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/frontend/CMakeFiles/tnp_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/relay/CMakeFiles/tnp_relay.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/tnp_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tnp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/tnp_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/tnp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
