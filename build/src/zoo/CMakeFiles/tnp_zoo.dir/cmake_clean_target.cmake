file(REMOVE_RECURSE
  "libtnp_zoo.a"
)
