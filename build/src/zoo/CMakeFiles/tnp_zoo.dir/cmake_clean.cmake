file(REMOVE_RECURSE
  "CMakeFiles/tnp_zoo.dir/darknet_models.cc.o"
  "CMakeFiles/tnp_zoo.dir/darknet_models.cc.o.d"
  "CMakeFiles/tnp_zoo.dir/keras_models.cc.o"
  "CMakeFiles/tnp_zoo.dir/keras_models.cc.o.d"
  "CMakeFiles/tnp_zoo.dir/mxnet_models.cc.o"
  "CMakeFiles/tnp_zoo.dir/mxnet_models.cc.o.d"
  "CMakeFiles/tnp_zoo.dir/onnx_models.cc.o"
  "CMakeFiles/tnp_zoo.dir/onnx_models.cc.o.d"
  "CMakeFiles/tnp_zoo.dir/tflite_models.cc.o"
  "CMakeFiles/tnp_zoo.dir/tflite_models.cc.o.d"
  "CMakeFiles/tnp_zoo.dir/torch_models.cc.o"
  "CMakeFiles/tnp_zoo.dir/torch_models.cc.o.d"
  "CMakeFiles/tnp_zoo.dir/zoo.cc.o"
  "CMakeFiles/tnp_zoo.dir/zoo.cc.o.d"
  "libtnp_zoo.a"
  "libtnp_zoo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tnp_zoo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
