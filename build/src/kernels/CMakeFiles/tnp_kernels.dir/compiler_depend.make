# Empty compiler generated dependencies file for tnp_kernels.
# This may be replaced when dependencies are built.
