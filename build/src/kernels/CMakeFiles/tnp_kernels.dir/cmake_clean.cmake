file(REMOVE_RECURSE
  "CMakeFiles/tnp_kernels.dir/conv.cc.o"
  "CMakeFiles/tnp_kernels.dir/conv.cc.o.d"
  "CMakeFiles/tnp_kernels.dir/dense.cc.o"
  "CMakeFiles/tnp_kernels.dir/dense.cc.o.d"
  "CMakeFiles/tnp_kernels.dir/elementwise.cc.o"
  "CMakeFiles/tnp_kernels.dir/elementwise.cc.o.d"
  "CMakeFiles/tnp_kernels.dir/gemm.cc.o"
  "CMakeFiles/tnp_kernels.dir/gemm.cc.o.d"
  "CMakeFiles/tnp_kernels.dir/pool.cc.o"
  "CMakeFiles/tnp_kernels.dir/pool.cc.o.d"
  "CMakeFiles/tnp_kernels.dir/quantize.cc.o"
  "CMakeFiles/tnp_kernels.dir/quantize.cc.o.d"
  "libtnp_kernels.a"
  "libtnp_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tnp_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
