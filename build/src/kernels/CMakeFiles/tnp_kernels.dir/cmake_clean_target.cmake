file(REMOVE_RECURSE
  "libtnp_kernels.a"
)
