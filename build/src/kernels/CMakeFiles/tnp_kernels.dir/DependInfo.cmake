
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/conv.cc" "src/kernels/CMakeFiles/tnp_kernels.dir/conv.cc.o" "gcc" "src/kernels/CMakeFiles/tnp_kernels.dir/conv.cc.o.d"
  "/root/repo/src/kernels/dense.cc" "src/kernels/CMakeFiles/tnp_kernels.dir/dense.cc.o" "gcc" "src/kernels/CMakeFiles/tnp_kernels.dir/dense.cc.o.d"
  "/root/repo/src/kernels/elementwise.cc" "src/kernels/CMakeFiles/tnp_kernels.dir/elementwise.cc.o" "gcc" "src/kernels/CMakeFiles/tnp_kernels.dir/elementwise.cc.o.d"
  "/root/repo/src/kernels/gemm.cc" "src/kernels/CMakeFiles/tnp_kernels.dir/gemm.cc.o" "gcc" "src/kernels/CMakeFiles/tnp_kernels.dir/gemm.cc.o.d"
  "/root/repo/src/kernels/pool.cc" "src/kernels/CMakeFiles/tnp_kernels.dir/pool.cc.o" "gcc" "src/kernels/CMakeFiles/tnp_kernels.dir/pool.cc.o.d"
  "/root/repo/src/kernels/quantize.cc" "src/kernels/CMakeFiles/tnp_kernels.dir/quantize.cc.o" "gcc" "src/kernels/CMakeFiles/tnp_kernels.dir/quantize.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/tnp_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/tnp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
