file(REMOVE_RECURSE
  "libtnp_tensor.a"
)
