file(REMOVE_RECURSE
  "CMakeFiles/tnp_tensor.dir/ndarray.cc.o"
  "CMakeFiles/tnp_tensor.dir/ndarray.cc.o.d"
  "CMakeFiles/tnp_tensor.dir/shape.cc.o"
  "CMakeFiles/tnp_tensor.dir/shape.cc.o.d"
  "libtnp_tensor.a"
  "libtnp_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tnp_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
