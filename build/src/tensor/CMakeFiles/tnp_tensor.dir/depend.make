# Empty dependencies file for tnp_tensor.
# This may be replaced when dependencies are built.
