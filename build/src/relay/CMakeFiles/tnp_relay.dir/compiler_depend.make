# Empty compiler generated dependencies file for tnp_relay.
# This may be replaced when dependencies are built.
