file(REMOVE_RECURSE
  "CMakeFiles/tnp_relay.dir/attrs.cc.o"
  "CMakeFiles/tnp_relay.dir/attrs.cc.o.d"
  "CMakeFiles/tnp_relay.dir/build.cc.o"
  "CMakeFiles/tnp_relay.dir/build.cc.o.d"
  "CMakeFiles/tnp_relay.dir/byoc_partition.cc.o"
  "CMakeFiles/tnp_relay.dir/byoc_partition.cc.o.d"
  "CMakeFiles/tnp_relay.dir/expr.cc.o"
  "CMakeFiles/tnp_relay.dir/expr.cc.o.d"
  "CMakeFiles/tnp_relay.dir/external.cc.o"
  "CMakeFiles/tnp_relay.dir/external.cc.o.d"
  "CMakeFiles/tnp_relay.dir/fold_batch_norm.cc.o"
  "CMakeFiles/tnp_relay.dir/fold_batch_norm.cc.o.d"
  "CMakeFiles/tnp_relay.dir/fuse_ops.cc.o"
  "CMakeFiles/tnp_relay.dir/fuse_ops.cc.o.d"
  "CMakeFiles/tnp_relay.dir/interpreter.cc.o"
  "CMakeFiles/tnp_relay.dir/interpreter.cc.o.d"
  "CMakeFiles/tnp_relay.dir/op.cc.o"
  "CMakeFiles/tnp_relay.dir/op.cc.o.d"
  "CMakeFiles/tnp_relay.dir/op_registry.cc.o"
  "CMakeFiles/tnp_relay.dir/op_registry.cc.o.d"
  "CMakeFiles/tnp_relay.dir/pass.cc.o"
  "CMakeFiles/tnp_relay.dir/pass.cc.o.d"
  "CMakeFiles/tnp_relay.dir/printer.cc.o"
  "CMakeFiles/tnp_relay.dir/printer.cc.o.d"
  "CMakeFiles/tnp_relay.dir/qnn_canonicalize.cc.o"
  "CMakeFiles/tnp_relay.dir/qnn_canonicalize.cc.o.d"
  "CMakeFiles/tnp_relay.dir/serializer.cc.o"
  "CMakeFiles/tnp_relay.dir/serializer.cc.o.d"
  "CMakeFiles/tnp_relay.dir/visitor.cc.o"
  "CMakeFiles/tnp_relay.dir/visitor.cc.o.d"
  "libtnp_relay.a"
  "libtnp_relay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tnp_relay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
