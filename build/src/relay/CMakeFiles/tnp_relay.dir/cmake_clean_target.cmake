file(REMOVE_RECURSE
  "libtnp_relay.a"
)
