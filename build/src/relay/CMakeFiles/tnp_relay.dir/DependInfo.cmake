
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/relay/attrs.cc" "src/relay/CMakeFiles/tnp_relay.dir/attrs.cc.o" "gcc" "src/relay/CMakeFiles/tnp_relay.dir/attrs.cc.o.d"
  "/root/repo/src/relay/build.cc" "src/relay/CMakeFiles/tnp_relay.dir/build.cc.o" "gcc" "src/relay/CMakeFiles/tnp_relay.dir/build.cc.o.d"
  "/root/repo/src/relay/byoc_partition.cc" "src/relay/CMakeFiles/tnp_relay.dir/byoc_partition.cc.o" "gcc" "src/relay/CMakeFiles/tnp_relay.dir/byoc_partition.cc.o.d"
  "/root/repo/src/relay/expr.cc" "src/relay/CMakeFiles/tnp_relay.dir/expr.cc.o" "gcc" "src/relay/CMakeFiles/tnp_relay.dir/expr.cc.o.d"
  "/root/repo/src/relay/external.cc" "src/relay/CMakeFiles/tnp_relay.dir/external.cc.o" "gcc" "src/relay/CMakeFiles/tnp_relay.dir/external.cc.o.d"
  "/root/repo/src/relay/fold_batch_norm.cc" "src/relay/CMakeFiles/tnp_relay.dir/fold_batch_norm.cc.o" "gcc" "src/relay/CMakeFiles/tnp_relay.dir/fold_batch_norm.cc.o.d"
  "/root/repo/src/relay/fuse_ops.cc" "src/relay/CMakeFiles/tnp_relay.dir/fuse_ops.cc.o" "gcc" "src/relay/CMakeFiles/tnp_relay.dir/fuse_ops.cc.o.d"
  "/root/repo/src/relay/interpreter.cc" "src/relay/CMakeFiles/tnp_relay.dir/interpreter.cc.o" "gcc" "src/relay/CMakeFiles/tnp_relay.dir/interpreter.cc.o.d"
  "/root/repo/src/relay/op.cc" "src/relay/CMakeFiles/tnp_relay.dir/op.cc.o" "gcc" "src/relay/CMakeFiles/tnp_relay.dir/op.cc.o.d"
  "/root/repo/src/relay/op_registry.cc" "src/relay/CMakeFiles/tnp_relay.dir/op_registry.cc.o" "gcc" "src/relay/CMakeFiles/tnp_relay.dir/op_registry.cc.o.d"
  "/root/repo/src/relay/pass.cc" "src/relay/CMakeFiles/tnp_relay.dir/pass.cc.o" "gcc" "src/relay/CMakeFiles/tnp_relay.dir/pass.cc.o.d"
  "/root/repo/src/relay/printer.cc" "src/relay/CMakeFiles/tnp_relay.dir/printer.cc.o" "gcc" "src/relay/CMakeFiles/tnp_relay.dir/printer.cc.o.d"
  "/root/repo/src/relay/qnn_canonicalize.cc" "src/relay/CMakeFiles/tnp_relay.dir/qnn_canonicalize.cc.o" "gcc" "src/relay/CMakeFiles/tnp_relay.dir/qnn_canonicalize.cc.o.d"
  "/root/repo/src/relay/serializer.cc" "src/relay/CMakeFiles/tnp_relay.dir/serializer.cc.o" "gcc" "src/relay/CMakeFiles/tnp_relay.dir/serializer.cc.o.d"
  "/root/repo/src/relay/visitor.cc" "src/relay/CMakeFiles/tnp_relay.dir/visitor.cc.o" "gcc" "src/relay/CMakeFiles/tnp_relay.dir/visitor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kernels/CMakeFiles/tnp_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tnp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/tnp_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/tnp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
