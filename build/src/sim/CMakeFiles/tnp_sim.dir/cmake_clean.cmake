file(REMOVE_RECURSE
  "CMakeFiles/tnp_sim.dir/cost_model.cc.o"
  "CMakeFiles/tnp_sim.dir/cost_model.cc.o.d"
  "CMakeFiles/tnp_sim.dir/device.cc.o"
  "CMakeFiles/tnp_sim.dir/device.cc.o.d"
  "CMakeFiles/tnp_sim.dir/timeline.cc.o"
  "CMakeFiles/tnp_sim.dir/timeline.cc.o.d"
  "libtnp_sim.a"
  "libtnp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tnp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
