file(REMOVE_RECURSE
  "CMakeFiles/tnp_support.dir/logging.cc.o"
  "CMakeFiles/tnp_support.dir/logging.cc.o.d"
  "CMakeFiles/tnp_support.dir/string_util.cc.o"
  "CMakeFiles/tnp_support.dir/string_util.cc.o.d"
  "CMakeFiles/tnp_support.dir/table.cc.o"
  "CMakeFiles/tnp_support.dir/table.cc.o.d"
  "CMakeFiles/tnp_support.dir/thread_pool.cc.o"
  "CMakeFiles/tnp_support.dir/thread_pool.cc.o.d"
  "CMakeFiles/tnp_support.dir/tokenizer.cc.o"
  "CMakeFiles/tnp_support.dir/tokenizer.cc.o.d"
  "libtnp_support.a"
  "libtnp_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tnp_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
