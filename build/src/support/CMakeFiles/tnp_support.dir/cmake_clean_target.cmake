file(REMOVE_RECURSE
  "libtnp_support.a"
)
