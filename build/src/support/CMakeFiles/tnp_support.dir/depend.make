# Empty dependencies file for tnp_support.
# This may be replaced when dependencies are built.
