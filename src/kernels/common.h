// Shared kernel parameter structs and shape arithmetic.
//
// Conventions (documented once here, relied on everywhere):
//  * Activations are NCHW. Convolution weights are OIHW (O = output
//    channels, I = input channels / groups). Depthwise convolution is
//    expressed as a grouped convolution with groups == input channels.
//  * All kernels write into a caller-allocated output NDArray whose shape
//    must match the kernel's inferred output shape.
#pragma once

#include <cstdint>
#include <string>

#include "support/logging.h"
#include "tensor/shape.h"

namespace tnp {
namespace kernels {

struct Conv2DParams {
  std::int64_t stride_h = 1;
  std::int64_t stride_w = 1;
  std::int64_t pad_h = 0;  ///< symmetric top/bottom padding
  std::int64_t pad_w = 0;  ///< symmetric left/right padding
  std::int64_t dilation_h = 1;
  std::int64_t dilation_w = 1;
  std::int64_t groups = 1;
};

struct Pool2DParams {
  std::int64_t kernel_h = 2;
  std::int64_t kernel_w = 2;
  std::int64_t stride_h = 2;
  std::int64_t stride_w = 2;
  std::int64_t pad_h = 0;
  std::int64_t pad_w = 0;
  /// When true, average pooling divides by the full kernel area even at
  /// padded borders (TFLite semantics); otherwise by the valid-element count.
  bool count_include_pad = false;
};

/// Output spatial extent of a conv/pool window along one axis.
inline std::int64_t ConvOutDim(std::int64_t in, std::int64_t kernel, std::int64_t stride,
                               std::int64_t pad, std::int64_t dilation = 1) {
  const std::int64_t effective_kernel = dilation * (kernel - 1) + 1;
  const std::int64_t out = (in + 2 * pad - effective_kernel) / stride + 1;
  TNP_CHECK_GT(out, 0) << "conv/pool window larger than padded input (in=" << in
                       << " kernel=" << kernel << " stride=" << stride << " pad=" << pad << ")";
  return out;
}

/// Output shape of conv2d given NCHW input and OIHW weight shapes.
inline Shape Conv2DOutShape(const Shape& input, const Shape& weight, const Conv2DParams& p) {
  TNP_CHECK_EQ(input.rank(), 4);
  TNP_CHECK_EQ(weight.rank(), 4);
  TNP_CHECK_EQ(input[1] % p.groups, 0);
  TNP_CHECK_EQ(weight[1], input[1] / p.groups)
      << "weight input-channel dim mismatch (weight " << weight.ToString() << ", input "
      << input.ToString() << ", groups " << p.groups << ")";
  const std::int64_t out_h = ConvOutDim(input[2], weight[2], p.stride_h, p.pad_h, p.dilation_h);
  const std::int64_t out_w = ConvOutDim(input[3], weight[3], p.stride_w, p.pad_w, p.dilation_w);
  return Shape({input[0], weight[0], out_h, out_w});
}

/// Output shape of pool2d given an NCHW input.
inline Shape Pool2DOutShape(const Shape& input, const Pool2DParams& p) {
  TNP_CHECK_EQ(input.rank(), 4);
  const std::int64_t out_h = ConvOutDim(input[2], p.kernel_h, p.stride_h, p.pad_h);
  const std::int64_t out_w = ConvOutDim(input[3], p.kernel_w, p.stride_w, p.pad_w);
  return Shape({input[0], input[1], out_h, out_w});
}

}  // namespace kernels
}  // namespace tnp
