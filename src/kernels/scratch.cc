#include "kernels/scratch.h"

namespace tnp {
namespace kernels {

support::Arena& ThreadScratchArena() {
  thread_local support::Arena arena("kernels/scratch");
  return arena;
}

std::size_t ThisThreadScratchHighWatermark() {
  return ThreadScratchArena().scratch_high_watermark();
}

}  // namespace kernels
}  // namespace tnp
