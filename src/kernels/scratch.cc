#include "kernels/scratch.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "support/metrics.h"
#include "support/thread_pool.h"

namespace tnp {
namespace kernels {

namespace {

/// One registered thread's scratch peak. The owning thread stores into
/// `peak` (relaxed) on every frame close; PublishScratchWorkerGauges reads
/// from arbitrary threads. The slot is shared_ptr-owned by the registry so
/// it outlives the thread — a worker that exits leaves its final peak
/// behind instead of tearing a hole in the aggregate.
struct PeakSlot {
  int worker_index = -1;  ///< pool worker index at first frame, -1 = external
  std::atomic<std::size_t> peak{0};
};

struct PeakRegistry {
  std::mutex mutex;
  std::vector<std::shared_ptr<PeakSlot>> slots;
};

PeakRegistry& GlobalPeakRegistry() {
  static PeakRegistry* registry = new PeakRegistry();
  return *registry;
}

PeakSlot& ThisThreadPeakSlot() {
  thread_local std::shared_ptr<PeakSlot> slot = [] {
    auto created = std::make_shared<PeakSlot>();
    created->worker_index = support::ThreadPool::CurrentWorkerIndex();
    PeakRegistry& registry = GlobalPeakRegistry();
    std::lock_guard<std::mutex> lock(registry.mutex);
    registry.slots.push_back(created);
    return created;
  }();
  return *slot;
}

}  // namespace

namespace detail {

void NoteScratchPeak(std::size_t peak_bytes) {
  std::atomic<std::size_t>& peak = ThisThreadPeakSlot().peak;
  std::size_t seen = peak.load(std::memory_order_relaxed);
  while (seen < peak_bytes &&
         !peak.compare_exchange_weak(seen, peak_bytes, std::memory_order_relaxed)) {
  }
}

}  // namespace detail

support::Arena& ThreadScratchArena() {
  thread_local support::Arena arena("kernels/scratch");
  return arena;
}

std::size_t ThisThreadScratchHighWatermark() {
  return ThreadScratchArena().scratch_high_watermark();
}

std::size_t AggregateScratchHighWatermark() {
  PeakRegistry& registry = GlobalPeakRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  std::size_t aggregate = 0;
  for (const auto& slot : registry.slots) {
    aggregate = std::max(aggregate, slot->peak.load(std::memory_order_relaxed));
  }
  return aggregate;
}

void PublishScratchWorkerGauges() {
  // Two pools can both have a worker 0; fold same-index slots with max so
  // the gauge stays monotone under pool churn.
  std::map<int, std::size_t> per_worker;
  std::size_t aggregate = 0;
  {
    PeakRegistry& registry = GlobalPeakRegistry();
    std::lock_guard<std::mutex> lock(registry.mutex);
    for (const auto& slot : registry.slots) {
      const std::size_t peak = slot->peak.load(std::memory_order_relaxed);
      aggregate = std::max(aggregate, peak);
      if (slot->worker_index < 0) continue;
      std::size_t& entry = per_worker[slot->worker_index];
      entry = std::max(entry, peak);
    }
  }
  auto& metrics = support::metrics::Registry::Global();
  metrics.GetGauge("kernels/scratch/peak_bytes").Set(static_cast<double>(aggregate));
  for (const auto& [index, peak] : per_worker) {
    metrics.GetGauge("kernels/scratch/w" + std::to_string(index) + "/peak_bytes")
        .Set(static_cast<double>(peak));
  }
}

}  // namespace kernels
}  // namespace tnp
