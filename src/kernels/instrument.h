// Shared observability hook for kernel entry points: every dispatch bumps
// the process-wide "kernels/dispatch" counter, publishes the kernel name as
// a profiler label frame (so the sampling profiler's folded stacks show
// which kernel a worker is inside), and, when tracing is enabled, opens a
// "kernel"-category span covering the kernel body.
#pragma once

#include "support/metrics.h"
#include "support/profiler.h"
#include "support/trace.h"

namespace tnp {
namespace kernels {

inline void CountKernelDispatch() {
  static support::metrics::Counter& dispatches =
      support::metrics::Registry::Global().GetCounter("kernels/dispatch");
  dispatches.Increment();
}

}  // namespace kernels
}  // namespace tnp

/// Place at the top of a kernel entry point; `name` must be a literal (the
/// profiler retains the pointer, the tracer copies the text).
#define TNP_KERNEL_SPAN(name)                                      \
  ::tnp::kernels::CountKernelDispatch();                           \
  ::tnp::support::profiler::LabelScope TNP_TRACE_CONCAT_(          \
      tnp_kernel_label_, __LINE__)(name);                          \
  TNP_TRACE_SCOPE("kernel", name)
