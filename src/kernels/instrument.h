// Shared observability hook for kernel entry points: every dispatch bumps
// the process-wide "kernels/dispatch" counter and, when tracing is enabled,
// opens a "kernel"-category span covering the kernel body.
#pragma once

#include "support/metrics.h"
#include "support/trace.h"

namespace tnp {
namespace kernels {

inline void CountKernelDispatch() {
  static support::metrics::Counter& dispatches =
      support::metrics::Registry::Global().GetCounter("kernels/dispatch");
  dispatches.Increment();
}

}  // namespace kernels
}  // namespace tnp

/// Place at the top of a kernel entry point; `name` must be a literal.
#define TNP_KERNEL_SPAN(name)            \
  ::tnp::kernels::CountKernelDispatch(); \
  TNP_TRACE_SCOPE("kernel", name)
