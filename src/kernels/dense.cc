#include "kernels/dense.h"

#include <algorithm>
#include <cmath>

#include "kernels/gemm.h"
#include "kernels/instrument.h"
#include "kernels/scratch.h"
#include "support/thread_pool.h"

namespace tnp {
namespace kernels {

namespace {

void ValidatePackedDenseWeights(const PackedMatrix& packed, DType dtype, std::int64_t k,
                                std::int64_t n) {
  TNP_CHECK(packed.side == PackedMatrix::Side::kB);
  TNP_CHECK(packed.dtype == dtype);
  TNP_CHECK_EQ(packed.rows, k);
  TNP_CHECK_EQ(packed.cols, n);
}

}  // namespace

void DenseF32(const NDArray& input, const NDArray& weight, const NDArray& bias,
              NDArray& output, const PackedMatrix* packed_weights) {
  TNP_KERNEL_SPAN("DenseF32");
  TNP_CHECK_EQ(input.shape().rank(), 2);
  TNP_CHECK_EQ(weight.shape().rank(), 2);
  const std::int64_t m = input.shape()[0];
  const std::int64_t k = input.shape()[1];
  const std::int64_t n = weight.shape()[0];
  TNP_CHECK_EQ(weight.shape()[1], k);
  TNP_CHECK(output.shape() == Shape({m, n}));

  const float* in_data = input.Data<float>();
  const float* w_data = weight.Data<float>();
  const float* bias_data = bias.defined() ? bias.Data<float>() : nullptr;
  float* out_data = output.Data<float>();

  if (m == 1) {
    // GEMV: the N x K weight matrix already has each output's reduction
    // contiguous — packing would only add traffic.
    support::ParallelFor(0, n, [&](std::int64_t j) {
      const float* w_row = w_data + j * k;
      float acc = bias_data != nullptr ? bias_data[j] : 0.0f;
      for (std::int64_t kk = 0; kk < k; ++kk) acc += in_data[kk] * w_row[kk];
      out_data[j] = acc;
    }, /*grain_size=*/16);
    return;
  }

  ScratchFrame frame;
  // Pre-packed weights carry the tuned schedule; the activation side is
  // packed per call at the same config so panels and core always agree.
  const GemmConfig cfg =
      packed_weights != nullptr ? packed_weights->config : GemmConfig::DefaultF32();
  const float* bpanels;
  if (packed_weights != nullptr) {
    ValidatePackedDenseWeights(*packed_weights, DType::kFloat32, k, n);
    bpanels = packed_weights->data.Data<float>();
  } else {
    float* scratch_panels = frame.Alloc<float>(PackedExtent(n, cfg.nr) * k);
    PackPanelsBTransF32(w_data, k, n, k, scratch_panels, cfg.nr);
    CountWeightPack(PackedExtent(n, cfg.nr) * k *
                    static_cast<std::int64_t>(sizeof(float)));
    bpanels = scratch_panels;
  }
  float* apanels = frame.Alloc<float>(PackedExtent(m, cfg.mr) * k);
  PackPanelsAF32(in_data, m, k, k, apanels, cfg.mr);
  GemmPackedF32(apanels, bpanels, out_data, m, k, n, n, /*parallel=*/true, cfg);

  if (bias_data != nullptr) {
    support::ParallelFor(0, m, [&](std::int64_t i) {
      float* row = out_data + i * n;
      for (std::int64_t j = 0; j < n; ++j) row[j] += bias_data[j];
    }, /*grain_size=*/4);
  }
}

void QDenseS8(const NDArray& input, const NDArray& weight, const NDArray& bias,
              NDArray& output, const QuantParams& input_q, const QuantParams& weight_q,
              const QuantParams& output_q, const PackedMatrix* packed_weights) {
  TNP_KERNEL_SPAN("QDenseS8");
  TNP_CHECK(input_q.valid && weight_q.valid && output_q.valid);
  TNP_CHECK_EQ(input.shape().rank(), 2);
  TNP_CHECK_EQ(weight.shape().rank(), 2);
  const std::int64_t m = input.shape()[0];
  const std::int64_t k = input.shape()[1];
  const std::int64_t n = weight.shape()[0];
  TNP_CHECK_EQ(weight.shape()[1], k);
  TNP_CHECK(output.shape() == Shape({m, n}));

  const std::int8_t* in_data = input.Data<std::int8_t>();
  const std::int8_t* w_data = weight.Data<std::int8_t>();
  const std::int32_t* bias_data = bias.defined() ? bias.Data<std::int32_t>() : nullptr;
  std::int8_t* out_data = output.Data<std::int8_t>();
  const float multiplier = input_q.scale * weight_q.scale / output_q.scale;
  const std::int32_t in_zp = input_q.zero_point;
  const std::int32_t w_zp = weight_q.zero_point;
  const float out_zp = static_cast<float>(output_q.zero_point);

  auto requantize = [&](std::int32_t acc) {
    const float scaled = std::nearbyintf(static_cast<float>(acc) * multiplier) + out_zp;
    return static_cast<std::int8_t>(std::clamp(scaled, -128.0f, 127.0f));
  };

  if (m == 1) {
    // Factorized GEMV: raw s8 dot per output, zero points folded in after.
    std::int32_t in_sum = 0;
    for (std::int64_t kk = 0; kk < k; ++kk) in_sum += in_data[kk];
    const std::int32_t kzz = static_cast<std::int32_t>(k) * in_zp * w_zp;
    const std::int32_t* wrow_sums =
        packed_weights != nullptr && packed_weights->sums.defined()
            ? packed_weights->sums.Data<std::int32_t>()
            : nullptr;
    support::ParallelFor(0, n, [&](std::int64_t j) {
      const std::int8_t* w_row = w_data + j * k;
      std::int32_t acc = 0;
      std::int32_t w_sum;
      if (wrow_sums != nullptr) {
        w_sum = wrow_sums[j];
        for (std::int64_t kk = 0; kk < k; ++kk) {
          acc += static_cast<std::int32_t>(in_data[kk]) *
                 static_cast<std::int32_t>(w_row[kk]);
        }
      } else {
        w_sum = 0;
        for (std::int64_t kk = 0; kk < k; ++kk) {
          acc += static_cast<std::int32_t>(in_data[kk]) *
                 static_cast<std::int32_t>(w_row[kk]);
          w_sum += w_row[kk];
        }
      }
      acc += kzz - in_zp * w_sum - w_zp * in_sum;
      if (bias_data != nullptr) acc += bias_data[j];
      out_data[j] = requantize(acc);
    }, /*grain_size=*/16);
    return;
  }

  ScratchFrame frame;
  // s8 keeps the 4x8 layout contract; the tuned config varies kc/nc only.
  const GemmConfig cfg =
      packed_weights != nullptr ? packed_weights->config : GemmConfig::DefaultS8();
  const std::int8_t* bpanels;
  const std::int32_t* wcol_sums;
  if (packed_weights != nullptr) {
    ValidatePackedDenseWeights(*packed_weights, DType::kInt8, k, n);
    bpanels = packed_weights->data.Data<std::int8_t>();
    wcol_sums = packed_weights->sums.Data<std::int32_t>();
  } else {
    std::int8_t* scratch_panels =
        frame.Alloc<std::int8_t>(PackedExtent(n, cfg.nr) * PackedKS8(k));
    std::int32_t* scratch_sums = frame.Alloc<std::int32_t>(n);
    PackPanelsBTransS8(w_data, k, n, k, scratch_panels, scratch_sums, cfg.nr);
    CountWeightPack(PackedExtent(n, cfg.nr) * PackedKS8(k) +
                    n * static_cast<std::int64_t>(sizeof(std::int32_t)));
    bpanels = scratch_panels;
    wcol_sums = scratch_sums;
  }
  std::int8_t* apanels = frame.Alloc<std::int8_t>(PackedExtent(m, cfg.mr) * PackedKS8(k));
  std::int32_t* in_row_sums = frame.Alloc<std::int32_t>(m);
  std::int32_t* acc = frame.Alloc<std::int32_t>(m * n);
  PackPanelsAS8(in_data, m, k, k, apanels, in_row_sums, cfg.mr);
  GemmPackedS8S32(apanels, bpanels, acc, m, k, n, n, /*parallel=*/true, cfg);
  ApplyZeroPointCorrection(acc, m, n, n, k, in_zp, w_zp, in_row_sums, wcol_sums);

  support::ParallelFor(0, m, [&](std::int64_t i) {
    const std::int32_t* acc_row = acc + i * n;
    std::int8_t* out_row = out_data + i * n;
    for (std::int64_t j = 0; j < n; ++j) {
      std::int32_t a = acc_row[j];
      if (bias_data != nullptr) a += bias_data[j];
      out_row[j] = requantize(a);
    }
  }, /*grain_size=*/4);
}

}  // namespace kernels
}  // namespace tnp
