#include "kernels/dense.h"

#include <algorithm>
#include <cmath>

#include "kernels/instrument.h"
#include "support/thread_pool.h"

namespace tnp {
namespace kernels {

void DenseF32(const NDArray& input, const NDArray& weight, const NDArray& bias,
              NDArray& output) {
  TNP_KERNEL_SPAN("DenseF32");
  TNP_CHECK_EQ(input.shape().rank(), 2);
  TNP_CHECK_EQ(weight.shape().rank(), 2);
  const std::int64_t m = input.shape()[0];
  const std::int64_t k = input.shape()[1];
  const std::int64_t n = weight.shape()[0];
  TNP_CHECK_EQ(weight.shape()[1], k);
  TNP_CHECK(output.shape() == Shape({m, n}));

  const float* in_data = input.Data<float>();
  const float* w_data = weight.Data<float>();
  const float* bias_data = bias.defined() ? bias.Data<float>() : nullptr;
  float* out_data = output.Data<float>();

  support::ParallelFor(0, m * n, [&](std::int64_t mn) {
    const std::int64_t i = mn / n;
    const std::int64_t j = mn % n;
    const float* in_row = in_data + i * k;
    const float* w_row = w_data + j * k;
    float acc = bias_data != nullptr ? bias_data[j] : 0.0f;
    for (std::int64_t kk = 0; kk < k; ++kk) acc += in_row[kk] * w_row[kk];
    out_data[mn] = acc;
  }, /*grain_size=*/16);
}

void QDenseS8(const NDArray& input, const NDArray& weight, const NDArray& bias,
              NDArray& output, const QuantParams& input_q, const QuantParams& weight_q,
              const QuantParams& output_q) {
  TNP_KERNEL_SPAN("QDenseS8");
  TNP_CHECK(input_q.valid && weight_q.valid && output_q.valid);
  TNP_CHECK_EQ(input.shape().rank(), 2);
  TNP_CHECK_EQ(weight.shape().rank(), 2);
  const std::int64_t m = input.shape()[0];
  const std::int64_t k = input.shape()[1];
  const std::int64_t n = weight.shape()[0];
  TNP_CHECK_EQ(weight.shape()[1], k);
  TNP_CHECK(output.shape() == Shape({m, n}));

  const std::int8_t* in_data = input.Data<std::int8_t>();
  const std::int8_t* w_data = weight.Data<std::int8_t>();
  const std::int32_t* bias_data = bias.defined() ? bias.Data<std::int32_t>() : nullptr;
  std::int8_t* out_data = output.Data<std::int8_t>();
  const float multiplier = input_q.scale * weight_q.scale / output_q.scale;

  support::ParallelFor(0, m * n, [&](std::int64_t mn) {
    const std::int64_t i = mn / n;
    const std::int64_t j = mn % n;
    const std::int8_t* in_row = in_data + i * k;
    const std::int8_t* w_row = w_data + j * k;
    std::int32_t acc = bias_data != nullptr ? bias_data[j] : 0;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      acc += (static_cast<std::int32_t>(in_row[kk]) - input_q.zero_point) *
             (static_cast<std::int32_t>(w_row[kk]) - weight_q.zero_point);
    }
    const float scaled = std::nearbyintf(static_cast<float>(acc) * multiplier) +
                         static_cast<float>(output_q.zero_point);
    out_data[mn] = static_cast<std::int8_t>(std::clamp(scaled, -128.0f, 127.0f));
  }, /*grain_size=*/16);
}

}  // namespace kernels
}  // namespace tnp
