// Arena-backed kernel scratch — per-thread, zero heap allocations in steady
// state.
//
// Kernels that need temporary storage (im2col panels, GEMM pack buffers,
// int32 accumulators) open a ScratchFrame and Alloc() from it. Frames bump
// out of a thread-local support::Arena and rewind it on destruction, so the
// same chunks are reused call after call: after one warm-up pass a thread
// serves every subsequent kernel invocation without touching the heap
// (asserted in tests via Arena::TotalScratchChunkAllocs()).
//
// Frames nest with stack discipline (conv opens a frame, the GEMM it calls
// opens another). ParallelFor workers that need per-tile staging use fixed
// stack arrays instead of frames, so worker scheduling never causes a
// steady-state chunk allocation.
#pragma once

#include <cstddef>
#include <cstdint>

#include "support/arena.h"

namespace tnp {
namespace kernels {

/// The calling thread's scratch arena (created on first use, lives for the
/// thread's lifetime).
support::Arena& ThreadScratchArena();

namespace detail {
/// Record the calling thread's lifetime scratch peak in its registry slot
/// (lock-free after the first call); PublishScratchWorkerGauges reads the
/// slots from any thread.
void NoteScratchPeak(std::size_t peak_bytes);
}  // namespace detail

/// RAII scratch frame over the calling thread's arena.
class ScratchFrame {
 public:
  ScratchFrame() : arena_(ThreadScratchArena()), mark_(arena_.MarkScratch()) {}
  ~ScratchFrame() {
    detail::NoteScratchPeak(arena_.scratch_high_watermark());
    arena_.RewindScratch(mark_);
  }

  ScratchFrame(const ScratchFrame&) = delete;
  ScratchFrame& operator=(const ScratchFrame&) = delete;

  /// 64-byte-aligned uninitialized storage for `count` elements of T, valid
  /// until this frame is destroyed.
  template <typename T>
  T* Alloc(std::int64_t count) {
    return static_cast<T*>(
        arena_.Allocate(static_cast<std::size_t>(count) * sizeof(T)));
  }

 private:
  support::Arena& arena_;
  support::Arena::ScratchMark mark_;
};

/// Peak bytes ever simultaneously live in the calling thread's scratch
/// arena. Deterministic for a fixed workload run on one thread — the
/// bench-regression gate snapshots it.
std::size_t ThisThreadScratchHighWatermark();

/// Max scratch peak across every thread that has closed a frame, including
/// threads that have since exited. Observability for pool-parallel kernels,
/// where the per-thread watermark only sees the calling thread's share.
std::size_t AggregateScratchHighWatermark();

/// Snapshot per-thread scratch peaks into the metrics registry:
///   kernels/scratch/peak_bytes           — aggregate (max over all threads)
///   kernels/scratch/w<i>/peak_bytes      — per pool-worker peak, keyed by
///                                          ThreadPool::CurrentWorkerIndex()
///                                          at the thread's first frame
/// Threads outside any pool (the main thread) fold into the aggregate only.
void PublishScratchWorkerGauges();

}  // namespace kernels
}  // namespace tnp
