// Packed-panel layouts for the tiled GEMM engine, plus compile-time weight
// pre-packing.
//
// The micro-kernel consumes both operands in panel form:
//
//   A (m x k, the LHS)  -> row-panels of kGemmMr rows. Panel ip holds rows
//     [ip*MR, ip*MR+MR); within the panel elements are k-major, interleaved
//     by MR:        ap[(ip*k + kk)*MR + r] = A[ip*MR + r][kk]
//     Rows past m are zero-filled, so tail panels feed the full-width
//     micro-kernel and the extra lanes are simply never stored.
//
//   B (k x n, the RHS)  -> column-panels of kGemmNr columns:
//                   bp[(jp*k + kk)*NR + j] = B[kk][jp*NR + j]
//     Columns past n are zero-filled.
//
// Because panels are contiguous over the whole k extent, a k-cache block
// [pc, pc+kc) of panel ip is the contiguous range ap + (ip*k + pc)*MR — the
// blocked driver needs no per-block bookkeeping.
//
// Int8 panels use a *pair-interleaved* variant of the same scheme: k is
// rounded up to even (PackedKS8, zero-padding the tail) and consecutive k
// pairs are interleaved per row/column,
//
//   ap[ip*MR*k2 + p*2*MR + r*2 + t] = A[ip*MR + r][2p + t]
//   bp[jp*NR*k2 + p*2*NR + j*2 + t] = B[2p + t][jp*NR + j]
//
// so the SSE2 micro-kernel can feed pmaddwd (s16 x s16 pair dot -> s32)
// directly; the zero padding contributes nothing to any product or sum.
//
// Constant conv/dense weights are packed into this layout once, at
// relay::Build / neuron::Compile time, and cached on the compiled artifact
// (PackedWeightsCache): steady-state inference never repacks. For the int8
// path the pack also precomputes the weight-side sums that the gemmlowp-style
// zero-point factorization needs (see gemm.h).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "tensor/ndarray.h"

namespace tnp {
namespace kernels {

/// Micro-kernel register tile: MR rows x NR columns of C per inner loop.
/// 4x8 keeps the full accumulator tile in SSE registers at plain -O3
/// (baseline x86-64); wider/taller tiles measurably spill.
inline constexpr std::int64_t kGemmMrF32 = 4;
inline constexpr std::int64_t kGemmNrF32 = 8;
inline constexpr std::int64_t kGemmMrS8 = 4;
inline constexpr std::int64_t kGemmNrS8 = 8;
/// Cache blocking: k is processed in kGemmKc slices, n in kGemmNc slices
/// (kGemmNc is a multiple of both NR values so column panels never straddle
/// a cache block).
inline constexpr std::int64_t kGemmKc = 256;
inline constexpr std::int64_t kGemmNc = 192;

/// Rows (columns) after padding up to a whole number of panels.
inline std::int64_t PackedExtent(std::int64_t extent, std::int64_t panel) {
  return (extent + panel - 1) / panel * panel;
}

/// Int8 panels pad k up to even so the pmaddwd micro-kernel walks whole
/// k pairs; a padded trailing slot is zero-filled and contributes nothing.
inline std::int64_t PackedKS8(std::int64_t k) { return (k + 1) & ~std::int64_t{1}; }

// ---------------------------------------------------------------------------
// Raw panel packing into caller-provided storage (scratch or pre-pack).

/// A-side f32: a is m x k row-major with leading dimension lda.
/// `out` must hold PackedExtent(m, kGemmMrF32) * k floats.
void PackPanelsAF32(const float* a, std::int64_t m, std::int64_t k, std::int64_t lda,
                    float* out);

/// A-side s8, pair-interleaved; also emits per-row sums (length m) for the
/// zero-point factorization when `row_sums` is non-null.
/// `out` must hold PackedExtent(m, kGemmMrS8) * PackedKS8(k) bytes.
void PackPanelsAS8(const std::int8_t* a, std::int64_t m, std::int64_t k, std::int64_t lda,
                   std::int8_t* out, std::int32_t* row_sums);

/// B-side f32: b is k x n row-major with leading dimension ldb.
/// `out` must hold PackedExtent(n, kGemmNrF32) * k floats.
void PackPanelsBF32(const float* b, std::int64_t k, std::int64_t n, std::int64_t ldb,
                    float* out);

/// B-side f32 from a transposed source: bt is n x k row-major (leading
/// dimension ldbt) representing logical B[kk][j] = bt[j][kk] — the dense
/// weight matrix.
void PackPanelsBTransF32(const float* bt, std::int64_t k, std::int64_t n, std::int64_t ldbt,
                         float* out);

/// B-side s8, pair-interleaved; emits per-column sums (length n) when
/// `col_sums` is non-null.
/// `out` must hold PackedExtent(n, kGemmNrS8) * PackedKS8(k) bytes.
void PackPanelsBS8(const std::int8_t* b, std::int64_t k, std::int64_t n, std::int64_t ldb,
                   std::int8_t* out, std::int32_t* col_sums);

/// B-side s8 from a transposed (n x k) source, with per-column sums.
void PackPanelsBTransS8(const std::int8_t* bt, std::int64_t k, std::int64_t n,
                        std::int64_t ldbt, std::int8_t* out, std::int32_t* col_sums);

// ---------------------------------------------------------------------------
// Pre-packed weights.

/// One weight tensor pre-packed into panel layout. Conv weights pack A-side
/// (one sub-matrix per group, group-major in `data`); dense weights pack
/// B-side (transposed, single group).
struct PackedMatrix {
  enum class Side : std::uint8_t { kA, kB };

  Side side = Side::kA;
  DType dtype = DType::kFloat32;
  std::int64_t rows = 0;          ///< logical rows per group (A: m, B: k)
  std::int64_t cols = 0;          ///< logical cols per group (A: k, B: n)
  std::int64_t groups = 1;
  std::int64_t panel = 0;         ///< MR (A) or NR (B) used at pack time
  std::int64_t group_stride = 0;  ///< elements per group in `data`
  NDArray data;                   ///< packed panels, 64-byte aligned
  /// s8 only: per-group weight-side sums for zero-point factorization —
  /// row sums (length groups*rows) for A-side, column sums (groups*cols)
  /// for B-side. Undefined NDArray for f32.
  NDArray sums;

  std::int64_t total_bytes() const {
    std::int64_t bytes = data.defined() ? static_cast<std::int64_t>(data.SizeBytes()) : 0;
    if (sums.defined()) bytes += static_cast<std::int64_t>(sums.SizeBytes());
    return bytes;
  }
};

using PackedMatrixPtr = std::shared_ptr<const PackedMatrix>;

/// Pack conv weights (OIHW, f32/s8) A-side per group. Throws on dtype
/// mismatch. Counts one weight pack.
PackedMatrixPtr PackConvWeightsF32(const NDArray& weight, std::int64_t groups);
PackedMatrixPtr PackConvWeightsS8(const NDArray& weight, std::int64_t groups);

/// Pack dense weights (n x k, f32/s8) B-side (transposed to k x n panels).
PackedMatrixPtr PackDenseWeightsF32(const NDArray& weight);
PackedMatrixPtr PackDenseWeightsS8(const NDArray& weight);

/// Build-time cache of packed weights, stored on CompiledModule /
/// NeuronPackage. Keyed by op + layout + weight identity so instructions
/// sharing one constant share one pack.
class PackedWeightsCache {
 public:
  PackedMatrixPtr GetOrPack(const std::string& key,
                            const std::function<PackedMatrixPtr()>& pack);

  int size() const;
  std::int64_t total_bytes() const;

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::string, PackedMatrixPtr> entries_;
};

/// Validate a PackedMatrix whose descriptor and payloads came from an
/// untrusted source (the artifact loader): dtype, panel width, group_stride
/// and the data/sums extents must match exactly what the packers above
/// produce for the recorded geometry, so a mapped panel can be fed to the
/// micro-kernels without repacking. Throws kParseError on any mismatch.
void ValidatePackedLayout(const PackedMatrix& matrix);

/// Count one weight-panel pack (compile-time or runtime fallback). Published
/// as the "kernels/pack/weight_packs" counter; steady-state runs must not
/// move it.
void CountWeightPack(std::int64_t bytes);

/// Process-wide number of weight packs ever performed.
std::int64_t TotalWeightPacks();

}  // namespace kernels
}  // namespace tnp
