// Packed-panel layouts for the tiled GEMM engine, plus compile-time weight
// pre-packing.
//
// The micro-kernel consumes both operands in panel form:
//
//   A (m x k, the LHS)  -> row-panels of MR rows. Panel ip holds rows
//     [ip*MR, ip*MR+MR); within the panel elements are k-major, interleaved
//     by MR:        ap[(ip*k + kk)*MR + r] = A[ip*MR + r][kk]
//     Rows past m are zero-filled, so tail panels feed the full-width
//     micro-kernel and the extra lanes are simply never stored.
//
//   B (k x n, the RHS)  -> column-panels of NR columns:
//                   bp[(jp*k + kk)*NR + j] = B[kk][jp*NR + j]
//     Columns past n are zero-filled.
//
// Because panels are contiguous over the whole k extent, a k-cache block
// [pc, pc+kc) of panel ip is the contiguous range ap + (ip*k + pc)*MR — the
// blocked driver needs no per-block bookkeeping.
//
// Int8 panels use a *pair-interleaved* variant of the same scheme: k is
// rounded up to even (PackedKS8, zero-padding the tail) and consecutive k
// pairs are interleaved per row/column,
//
//   ap[ip*MR*k2 + p*2*MR + r*2 + t] = A[ip*MR + r][2p + t]
//   bp[jp*NR*k2 + p*2*NR + j*2 + t] = B[2p + t][jp*NR + j]
//
// so the SSE2 micro-kernel can feed pmaddwd (s16 x s16 pair dot -> s32)
// directly; the zero padding contributes nothing to any product or sum.
//
// The register tile (MR x NR) and the cache blocking (Kc, Nc) are no longer
// fixed constants: every pack and every blocked GEMM run is parameterized by
// a GemmConfig, so the auto-tuner (src/tune) can pick a schedule per
// (op, dtype, M, K, N) workload. The kGemm* constants below are the
// untuned defaults and remain the fallback when no tuning DB entry exists.
//
// Constant conv/dense weights are packed into this layout once, at
// relay::Build / neuron::Compile time, and cached on the compiled artifact
// (PackedWeightsCache): steady-state inference never repacks. For the int8
// path the pack also precomputes the weight-side sums that the gemmlowp-style
// zero-point factorization needs (see gemm.h).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "tensor/ndarray.h"

namespace tnp {
namespace kernels {

/// Default micro-kernel register tile: MR rows x NR columns of C per inner
/// loop. 4x8 keeps the full accumulator tile in SSE registers at plain -O3
/// (baseline x86-64); wider/taller tiles measurably spill on some shapes —
/// which is exactly what the tuner decides per workload.
inline constexpr std::int64_t kGemmMrF32 = 4;
inline constexpr std::int64_t kGemmNrF32 = 8;
inline constexpr std::int64_t kGemmMrS8 = 4;
inline constexpr std::int64_t kGemmNrS8 = 8;
/// Default cache blocking: k is processed in Kc slices, n in Nc slices
/// (Nc must be a multiple of NR so column panels never straddle a cache
/// block — IsValidGemmConfig enforces this for every tuned config).
inline constexpr std::int64_t kGemmKc = 256;
inline constexpr std::int64_t kGemmNc = 192;

/// One schedule of the tiled GEMM engine: the register tile (mr x nr), the
/// cache blocking (kc over the reduction, nc over columns) and the
/// micro-kernel k-unroll. Carried through packing, the blocked drivers and
/// the scratch-sizing math; recorded on every PackedMatrix so panels and the
/// core that walks them can never disagree about layout.
struct GemmConfig {
  std::int64_t mr = kGemmMrF32;
  std::int64_t nr = kGemmNrF32;
  std::int64_t kc = kGemmKc;
  std::int64_t nc = kGemmNc;
  std::int64_t unroll = 1;

  static constexpr GemmConfig DefaultF32() {
    return GemmConfig{kGemmMrF32, kGemmNrF32, kGemmKc, kGemmNc, 1};
  }
  static constexpr GemmConfig DefaultS8() {
    return GemmConfig{kGemmMrS8, kGemmNrS8, kGemmKc, kGemmNc, 1};
  }

  bool operator==(const GemmConfig& other) const {
    return mr == other.mr && nr == other.nr && kc == other.kc && nc == other.nc &&
           unroll == other.unroll;
  }
  bool operator!=(const GemmConfig& other) const { return !(*this == other); }

  /// Stable compact rendering ("4x8/kc256/nc192/u1") used in cache keys,
  /// tuning-DB records and reports.
  std::string ToString() const;
};

/// Legality of a config for a dtype. f32 register tiles come from the
/// pre-instantiated micro-kernel set (4x8, 6x8, 8x4, 4x16) with unroll 1 or
/// 2; the s8 pmaddwd path keeps its 4x8 layout contract and tunes cache
/// blocking only. For both: kc > 0 and even (whole s8 pairs), nc > 0 and a
/// multiple of nr (column panels never straddle an n-cache block).
bool IsValidGemmConfig(const GemmConfig& config, DType dtype);

/// The config `GemmConfig{}` / the packers default to when none is given.
inline GemmConfig DefaultGemmConfig(DType dtype) {
  return dtype == DType::kInt8 ? GemmConfig::DefaultS8() : GemmConfig::DefaultF32();
}

/// Rows (columns) after padding up to a whole number of panels.
inline std::int64_t PackedExtent(std::int64_t extent, std::int64_t panel) {
  return (extent + panel - 1) / panel * panel;
}

/// Int8 panels pad k up to even so the pmaddwd micro-kernel walks whole
/// k pairs; a padded trailing slot is zero-filled and contributes nothing.
inline std::int64_t PackedKS8(std::int64_t k) { return (k + 1) & ~std::int64_t{1}; }

// ---------------------------------------------------------------------------
// Raw panel packing into caller-provided storage (scratch or pre-pack).
// The trailing panel-width argument is the config's mr (A side) or nr
// (B side); the defaults reproduce the untuned layout.

/// A-side f32: a is m x k row-major with leading dimension lda.
/// `out` must hold PackedExtent(m, mr) * k floats.
void PackPanelsAF32(const float* a, std::int64_t m, std::int64_t k, std::int64_t lda,
                    float* out, std::int64_t mr = kGemmMrF32);

/// A-side s8, pair-interleaved; also emits per-row sums (length m) for the
/// zero-point factorization when `row_sums` is non-null.
/// `out` must hold PackedExtent(m, mr) * PackedKS8(k) bytes.
void PackPanelsAS8(const std::int8_t* a, std::int64_t m, std::int64_t k, std::int64_t lda,
                   std::int8_t* out, std::int32_t* row_sums, std::int64_t mr = kGemmMrS8);

/// B-side f32: b is k x n row-major with leading dimension ldb.
/// `out` must hold PackedExtent(n, nr) * k floats.
void PackPanelsBF32(const float* b, std::int64_t k, std::int64_t n, std::int64_t ldb,
                    float* out, std::int64_t nr = kGemmNrF32);

/// B-side f32 from a transposed source: bt is n x k row-major (leading
/// dimension ldbt) representing logical B[kk][j] = bt[j][kk] — the dense
/// weight matrix.
void PackPanelsBTransF32(const float* bt, std::int64_t k, std::int64_t n, std::int64_t ldbt,
                         float* out, std::int64_t nr = kGemmNrF32);

/// B-side s8, pair-interleaved; emits per-column sums (length n) when
/// `col_sums` is non-null.
/// `out` must hold PackedExtent(n, nr) * PackedKS8(k) bytes.
void PackPanelsBS8(const std::int8_t* b, std::int64_t k, std::int64_t n, std::int64_t ldb,
                   std::int8_t* out, std::int32_t* col_sums, std::int64_t nr = kGemmNrS8);

/// B-side s8 from a transposed (n x k) source, with per-column sums.
void PackPanelsBTransS8(const std::int8_t* bt, std::int64_t k, std::int64_t n,
                        std::int64_t ldbt, std::int8_t* out, std::int32_t* col_sums,
                        std::int64_t nr = kGemmNrS8);

// ---------------------------------------------------------------------------
// Pre-packed weights.

/// One weight tensor pre-packed into panel layout. Conv weights pack A-side
/// (one sub-matrix per group, group-major in `data`); dense weights pack
/// B-side (transposed, single group).
struct PackedMatrix {
  enum class Side : std::uint8_t { kA, kB };

  Side side = Side::kA;
  DType dtype = DType::kFloat32;
  std::int64_t rows = 0;          ///< logical rows per group (A: m, B: k)
  std::int64_t cols = 0;          ///< logical cols per group (A: k, B: n)
  std::int64_t groups = 1;
  std::int64_t panel = 0;         ///< MR (A) or NR (B) used at pack time
  std::int64_t group_stride = 0;  ///< elements per group in `data`
  /// The full schedule the panels were packed under. The runtime kernels run
  /// the blocked core with exactly this config, so a tuned artifact executes
  /// its tuned schedule without any side channel; panel == (A ? config.mr :
  /// config.nr) always.
  GemmConfig config;
  NDArray data;                   ///< packed panels, 64-byte aligned
  /// s8 only: per-group weight-side sums for zero-point factorization —
  /// row sums (length groups*rows) for A-side, column sums (groups*cols)
  /// for B-side. Undefined NDArray for f32.
  NDArray sums;

  std::int64_t total_bytes() const {
    std::int64_t bytes = data.defined() ? static_cast<std::int64_t>(data.SizeBytes()) : 0;
    if (sums.defined()) bytes += static_cast<std::int64_t>(sums.SizeBytes());
    return bytes;
  }
};

using PackedMatrixPtr = std::shared_ptr<const PackedMatrix>;

/// Pack conv weights (OIHW, f32/s8) A-side per group under `config` (the
/// untuned default when omitted). Throws on dtype mismatch or an illegal
/// config. Counts one weight pack.
PackedMatrixPtr PackConvWeightsF32(const NDArray& weight, std::int64_t groups,
                                   const GemmConfig& config = GemmConfig::DefaultF32());
PackedMatrixPtr PackConvWeightsS8(const NDArray& weight, std::int64_t groups,
                                  const GemmConfig& config = GemmConfig::DefaultS8());

/// Pack dense weights (n x k, f32/s8) B-side (transposed to k x n panels).
PackedMatrixPtr PackDenseWeightsF32(const NDArray& weight,
                                    const GemmConfig& config = GemmConfig::DefaultF32());
PackedMatrixPtr PackDenseWeightsS8(const NDArray& weight,
                                   const GemmConfig& config = GemmConfig::DefaultS8());

/// Build-time cache of packed weights, stored on CompiledModule /
/// NeuronPackage. Keyed by op + layout + weight identity so instructions
/// sharing one constant share one pack.
class PackedWeightsCache {
 public:
  PackedMatrixPtr GetOrPack(const std::string& key,
                            const std::function<PackedMatrixPtr()>& pack);

  int size() const;
  std::int64_t total_bytes() const;

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::string, PackedMatrixPtr> entries_;
};

/// Validate a PackedMatrix whose descriptor and payloads came from an
/// untrusted source (the artifact loader): dtype, the recorded GemmConfig,
/// panel width, group_stride and the data/sums extents must match exactly
/// what the packers above produce for the recorded geometry, so a mapped
/// panel can be fed to the micro-kernels without repacking. Throws
/// kParseError on any mismatch.
void ValidatePackedLayout(const PackedMatrix& matrix);

/// Count one weight-panel pack (compile-time or runtime fallback). Published
/// as the "kernels/pack/weight_packs" counter; steady-state runs must not
/// move it.
void CountWeightPack(std::int64_t bytes);

/// Process-wide number of weight packs ever performed.
std::int64_t TotalWeightPacks();

}  // namespace kernels
}  // namespace tnp
