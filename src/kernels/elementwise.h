// Elementwise, reduction and data-movement kernels (float32 unless noted).
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/ndarray.h"

namespace tnp {
namespace kernels {

// ---- unary activations ----
void ReluF32(const NDArray& input, NDArray& output);
void LeakyReluF32(const NDArray& input, NDArray& output, float alpha);
void SigmoidF32(const NDArray& input, NDArray& output);
void TanhF32(const NDArray& input, NDArray& output);
void ClipF32(const NDArray& input, NDArray& output, float lo, float hi);
void ExpF32(const NDArray& input, NDArray& output);
void SqrtF32(const NDArray& input, NDArray& output);

/// int8 relu against the zero-point (used when relu stays in quantized form).
void ReluS8(const NDArray& input, NDArray& output, std::int32_t zero_point);

// ---- binary broadcast ----
enum class BinaryOp { kAdd, kSub, kMul, kDiv, kMax, kMin };

/// NumPy-style broadcasting between float32 tensors up to rank 6.
/// `output` must have the broadcast result shape.
void BroadcastBinaryF32(BinaryOp op, const NDArray& lhs, const NDArray& rhs, NDArray& output);

/// The broadcast result shape, or throws kInvalidArgument if incompatible.
Shape BroadcastShape(const Shape& lhs, const Shape& rhs);

// ---- fused inference-time layers ----
/// output = input + bias broadcast along `axis` (default channel axis 1).
void BiasAddF32(const NDArray& input, const NDArray& bias, NDArray& output, int axis);

/// Inference batch norm: y = gamma * (x - mean) / sqrt(var + eps) + beta,
/// all parameter tensors shaped (C,), input NCHW.
void BatchNormF32(const NDArray& input, const NDArray& gamma, const NDArray& beta,
                  const NDArray& mean, const NDArray& var, NDArray& output, float epsilon);

/// Softmax along `axis` (negative axes allowed).
void SoftmaxF32(const NDArray& input, NDArray& output, int axis);

// ---- data movement ----
/// Concatenate along `axis`; all inputs share the other dims and the dtype.
void Concat(const std::vector<NDArray>& inputs, NDArray& output, int axis);

/// Pad with a constant; `pad_before`/`pad_after` have one entry per axis.
void PadConstant(const NDArray& input, NDArray& output,
                 const std::vector<std::int64_t>& pad_before,
                 const std::vector<std::int64_t>& pad_after, double pad_value);

/// Nearest-neighbour 2x/3x/... upsampling of an NCHW activation.
void UpsamplingNearestF32(const NDArray& input, NDArray& output, std::int64_t scale_h,
                          std::int64_t scale_w);

/// Strided slice with per-axis begin/end/stride (stride > 0 only).
void StridedSlice(const NDArray& input, NDArray& output,
                  const std::vector<std::int64_t>& begin, const std::vector<std::int64_t>& end,
                  const std::vector<std::int64_t>& strides);

/// Mean over the given axes (keepdims behaviour decided by output shape).
void MeanF32(const NDArray& input, NDArray& output, const std::vector<int>& axes);

/// Permute axes.
void Transpose(const NDArray& input, NDArray& output, const std::vector<int>& axes);

/// Elementwise dtype conversion (numeric casts with saturation to int8).
void Cast(const NDArray& input, NDArray& output);

}  // namespace kernels
}  // namespace tnp
