// Fully-connected kernels. Dense follows the Relay convention:
// output[m, n] = sum_k input[m, k] * weight[n, k]  (weight is N x K).
#pragma once

#include "tensor/ndarray.h"

namespace tnp {
namespace kernels {

/// Float dense; `bias` optional with shape (units,).
void DenseF32(const NDArray& input, const NDArray& weight, const NDArray& bias,
              NDArray& output);

/// Quantized dense, same affine scheme as QConv2DS8; bias is int32.
void QDenseS8(const NDArray& input, const NDArray& weight, const NDArray& bias,
              NDArray& output, const QuantParams& input_q, const QuantParams& weight_q,
              const QuantParams& output_q);

}  // namespace kernels
}  // namespace tnp
