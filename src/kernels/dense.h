// Fully-connected kernels. Dense follows the Relay convention:
// output[m, n] = sum_k input[m, k] * weight[n, k]  (weight is N x K).
#pragma once

#include "kernels/pack.h"
#include "tensor/ndarray.h"

namespace tnp {
namespace kernels {

/// Float dense; `bias` optional with shape (units,).
/// m == 1 takes a GEMV fast path over the raw (already k-contiguous) weight
/// rows; larger m runs the packed GEMM, using `packed_weights` (from
/// PackDenseWeightsF32) when provided, else packing into arena scratch.
void DenseF32(const NDArray& input, const NDArray& weight, const NDArray& bias,
              NDArray& output, const PackedMatrix* packed_weights = nullptr);

/// Quantized dense, same affine scheme as QConv2DS8; bias is int32.
void QDenseS8(const NDArray& input, const NDArray& weight, const NDArray& bias,
              NDArray& output, const QuantParams& input_q, const QuantParams& weight_q,
              const QuantParams& output_q, const PackedMatrix* packed_weights = nullptr);

}  // namespace kernels
}  // namespace tnp
