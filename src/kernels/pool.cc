#include "kernels/pool.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "kernels/instrument.h"
#include "support/thread_pool.h"

namespace tnp {
namespace kernels {

namespace {

template <typename T, typename Reduce>
void PoolImpl(const NDArray& input, NDArray& output, const Pool2DParams& p, Reduce reduce) {
  const Shape expected = Pool2DOutShape(input.shape(), p);
  TNP_CHECK(output.shape() == expected);
  const std::int64_t batch = input.shape()[0];
  const std::int64_t channels = input.shape()[1];
  const std::int64_t in_h = input.shape()[2];
  const std::int64_t in_w = input.shape()[3];
  const std::int64_t out_h = expected[2];
  const std::int64_t out_w = expected[3];

  const T* in_data = input.Data<T>();
  T* out_data = output.Data<T>();

  support::ParallelFor(0, batch * channels, [&](std::int64_t nc) {
    const T* in_plane = in_data + nc * in_h * in_w;
    T* out_plane = out_data + nc * out_h * out_w;
    for (std::int64_t oh = 0; oh < out_h; ++oh) {
      for (std::int64_t ow = 0; ow < out_w; ++ow) {
        const std::int64_t h0 = oh * p.stride_h - p.pad_h;
        const std::int64_t w0 = ow * p.stride_w - p.pad_w;
        const std::int64_t h_lo = std::max<std::int64_t>(0, h0);
        const std::int64_t h_hi = std::min(in_h, h0 + p.kernel_h);
        const std::int64_t w_lo = std::max<std::int64_t>(0, w0);
        const std::int64_t w_hi = std::min(in_w, w0 + p.kernel_w);
        out_plane[oh * out_w + ow] = reduce(in_plane, in_w, h_lo, h_hi, w_lo, w_hi);
      }
    }
  }, /*grain_size=*/4);
}

template <typename T>
T WindowMax(const T* plane, std::int64_t in_w, std::int64_t h_lo, std::int64_t h_hi,
            std::int64_t w_lo, std::int64_t w_hi) {
  T best = std::numeric_limits<T>::lowest();
  for (std::int64_t h = h_lo; h < h_hi; ++h) {
    for (std::int64_t w = w_lo; w < w_hi; ++w) {
      best = std::max(best, plane[h * in_w + w]);
    }
  }
  return best;
}

}  // namespace

void MaxPool2DF32(const NDArray& input, NDArray& output, const Pool2DParams& p) {
  TNP_KERNEL_SPAN("MaxPool2DF32");
  PoolImpl<float>(input, output, p,
                  [](const float* plane, std::int64_t in_w, std::int64_t h_lo, std::int64_t h_hi,
                     std::int64_t w_lo, std::int64_t w_hi) {
                    return WindowMax(plane, in_w, h_lo, h_hi, w_lo, w_hi);
                  });
}

void MaxPool2DS8(const NDArray& input, NDArray& output, const Pool2DParams& p) {
  TNP_KERNEL_SPAN("MaxPool2DS8");
  PoolImpl<std::int8_t>(
      input, output, p,
      [](const std::int8_t* plane, std::int64_t in_w, std::int64_t h_lo, std::int64_t h_hi,
         std::int64_t w_lo, std::int64_t w_hi) {
        return WindowMax(plane, in_w, h_lo, h_hi, w_lo, w_hi);
      });
}

void AvgPool2DF32(const NDArray& input, NDArray& output, const Pool2DParams& p) {
  TNP_KERNEL_SPAN("AvgPool2DF32");
  const std::int64_t full_area = p.kernel_h * p.kernel_w;
  PoolImpl<float>(input, output, p,
                  [&](const float* plane, std::int64_t in_w, std::int64_t h_lo, std::int64_t h_hi,
                      std::int64_t w_lo, std::int64_t w_hi) {
                    double acc = 0.0;
                    for (std::int64_t h = h_lo; h < h_hi; ++h) {
                      for (std::int64_t w = w_lo; w < w_hi; ++w) acc += plane[h * in_w + w];
                    }
                    const std::int64_t count =
                        p.count_include_pad ? full_area : (h_hi - h_lo) * (w_hi - w_lo);
                    return static_cast<float>(acc / static_cast<double>(std::max<std::int64_t>(1, count)));
                  });
}

void AvgPool2DS8(const NDArray& input, NDArray& output, const Pool2DParams& p) {
  TNP_KERNEL_SPAN("AvgPool2DS8");
  const std::int64_t full_area = p.kernel_h * p.kernel_w;
  PoolImpl<std::int8_t>(
      input, output, p,
      [&](const std::int8_t* plane, std::int64_t in_w, std::int64_t h_lo, std::int64_t h_hi,
          std::int64_t w_lo, std::int64_t w_hi) {
        std::int64_t acc = 0;
        for (std::int64_t h = h_lo; h < h_hi; ++h) {
          for (std::int64_t w = w_lo; w < w_hi; ++w) acc += plane[h * in_w + w];
        }
        const std::int64_t count =
            p.count_include_pad ? full_area : (h_hi - h_lo) * (w_hi - w_lo);
        const double mean = static_cast<double>(acc) / static_cast<double>(std::max<std::int64_t>(1, count));
        return static_cast<std::int8_t>(
            std::clamp(std::nearbyint(mean), -128.0, 127.0));
      });
}

void GlobalAvgPool2DF32(const NDArray& input, NDArray& output) {
  TNP_KERNEL_SPAN("GlobalAvgPool2DF32");
  TNP_CHECK_EQ(input.shape().rank(), 4);
  TNP_CHECK(output.shape() == Shape({input.shape()[0], input.shape()[1], 1, 1}));
  const std::int64_t planes = input.shape()[0] * input.shape()[1];
  const std::int64_t area = input.shape()[2] * input.shape()[3];
  const float* in_data = input.Data<float>();
  float* out_data = output.Data<float>();
  support::ParallelFor(0, planes, [&](std::int64_t nc) {
    double acc = 0.0;
    const float* plane = in_data + nc * area;
    for (std::int64_t i = 0; i < area; ++i) acc += plane[i];
    out_data[nc] = static_cast<float>(acc / static_cast<double>(area));
  }, /*grain_size=*/4);
}

void GlobalAvgPool2DS8(const NDArray& input, NDArray& output) {
  TNP_KERNEL_SPAN("GlobalAvgPool2DS8");
  TNP_CHECK_EQ(input.shape().rank(), 4);
  TNP_CHECK(output.shape() == Shape({input.shape()[0], input.shape()[1], 1, 1}));
  const std::int64_t planes = input.shape()[0] * input.shape()[1];
  const std::int64_t area = input.shape()[2] * input.shape()[3];
  const std::int8_t* in_data = input.Data<std::int8_t>();
  std::int8_t* out_data = output.Data<std::int8_t>();
  support::ParallelFor(0, planes, [&](std::int64_t nc) {
    std::int64_t acc = 0;
    const std::int8_t* plane = in_data + nc * area;
    for (std::int64_t i = 0; i < area; ++i) acc += plane[i];
    const double mean = static_cast<double>(acc) / static_cast<double>(area);
    out_data[nc] = static_cast<std::int8_t>(std::clamp(std::nearbyint(mean), -128.0, 127.0));
  }, /*grain_size=*/4);
}

}  // namespace kernels
}  // namespace tnp
