// Spatial pooling kernels over NCHW activations, float32 and int8.
//
// Max pooling on quantized tensors preserves quantization parameters (max of
// affine-quantized values is the quantized max). Average pooling accumulates
// in int32 and rounds, also preserving quantization parameters — this is why
// the Relay->Neuron QNN augmentation can propagate quant params *through*
// pooling ops (paper Section 3.3).
#pragma once

#include "kernels/common.h"
#include "tensor/ndarray.h"

namespace tnp {
namespace kernels {

void MaxPool2DF32(const NDArray& input, NDArray& output, const Pool2DParams& params);
void AvgPool2DF32(const NDArray& input, NDArray& output, const Pool2DParams& params);
void GlobalAvgPool2DF32(const NDArray& input, NDArray& output);

void MaxPool2DS8(const NDArray& input, NDArray& output, const Pool2DParams& params);
void AvgPool2DS8(const NDArray& input, NDArray& output, const Pool2DParams& params);
void GlobalAvgPool2DS8(const NDArray& input, NDArray& output);

}  // namespace kernels
}  // namespace tnp
