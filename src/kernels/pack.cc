#include "kernels/pack.h"

#include <cstring>

#include "support/metrics.h"

namespace tnp {
namespace kernels {

namespace {

support::metrics::Counter& WeightPackCounter() {
  static support::metrics::Counter& counter =
      support::metrics::Registry::Global().GetCounter("kernels/pack/weight_packs");
  return counter;
}

support::metrics::Counter& WeightPackBytesCounter() {
  static support::metrics::Counter& counter =
      support::metrics::Registry::Global().GetCounter("kernels/pack/weight_bytes");
  return counter;
}

}  // namespace

std::string GemmConfig::ToString() const {
  std::string text = std::to_string(mr) + "x" + std::to_string(nr);
  text += "/kc" + std::to_string(kc);
  text += "/nc" + std::to_string(nc);
  text += "/u" + std::to_string(unroll);
  return text;
}

bool IsValidGemmConfig(const GemmConfig& config, DType dtype) {
  if (config.kc <= 0 || config.kc % 2 != 0) return false;  // whole s8 pairs
  if (config.nr <= 0 || config.nc <= 0 || config.nc % config.nr != 0) return false;
  if (dtype == DType::kInt8) {
    // The SSE2 pmaddwd micro-kernel's panel layout is fixed at 4x8; only the
    // cache blocking is tunable.
    return config.mr == kGemmMrS8 && config.nr == kGemmNrS8 && config.unroll == 1;
  }
  if (dtype != DType::kFloat32) return false;
  if (config.unroll != 1 && config.unroll != 2) return false;
  const bool known_tile = (config.mr == 4 && config.nr == 8) ||
                          (config.mr == 6 && config.nr == 8) ||
                          (config.mr == 8 && config.nr == 4) ||
                          (config.mr == 4 && config.nr == 16);
  return known_tile;
}

void PackPanelsAF32(const float* a, std::int64_t m, std::int64_t k, std::int64_t lda,
                    float* out, std::int64_t MR) {
  for (std::int64_t ip = 0; ip * MR < m; ++ip) {
    const std::int64_t mr = std::min(MR, m - ip * MR);
    float* panel = out + ip * MR * k;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      float* col = panel + kk * MR;
      const float* src = a + (ip * MR) * lda + kk;
      std::int64_t r = 0;
      for (; r < mr; ++r) col[r] = src[r * lda];
      for (; r < MR; ++r) col[r] = 0.0f;
    }
  }
}

void PackPanelsAS8(const std::int8_t* a, std::int64_t m, std::int64_t k, std::int64_t lda,
                   std::int8_t* out, std::int32_t* row_sums, std::int64_t MR) {
  const std::int64_t k2 = PackedKS8(k);
  for (std::int64_t ip = 0; ip * MR < m; ++ip) {
    const std::int64_t mr = std::min(MR, m - ip * MR);
    std::int8_t* panel = out + ip * MR * k2;
    for (std::int64_t p = 0; p < k2 / 2; ++p) {
      const std::int64_t kk0 = 2 * p;
      const bool has1 = kk0 + 1 < k;
      std::int8_t* dst = panel + p * 2 * MR;
      const std::int8_t* src = a + (ip * MR) * lda + kk0;
      std::int64_t r = 0;
      for (; r < mr; ++r) {
        dst[r * 2 + 0] = src[r * lda];
        dst[r * 2 + 1] = has1 ? src[r * lda + 1] : std::int8_t{0};
      }
      for (; r < MR; ++r) {
        dst[r * 2 + 0] = 0;
        dst[r * 2 + 1] = 0;
      }
    }
    if (row_sums != nullptr) {
      for (std::int64_t r = 0; r < mr; ++r) {
        const std::int8_t* row = a + (ip * MR + r) * lda;
        std::int32_t sum = 0;
        for (std::int64_t kk = 0; kk < k; ++kk) sum += row[kk];
        row_sums[ip * MR + r] = sum;
      }
    }
  }
}

void PackPanelsBF32(const float* b, std::int64_t k, std::int64_t n, std::int64_t ldb,
                    float* out, std::int64_t NR) {
  for (std::int64_t jp = 0; jp * NR < n; ++jp) {
    const std::int64_t nr = std::min(NR, n - jp * NR);
    float* panel = out + jp * NR * k;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      float* row = panel + kk * NR;
      const float* src = b + kk * ldb + jp * NR;
      std::int64_t j = 0;
      for (; j < nr; ++j) row[j] = src[j];
      for (; j < NR; ++j) row[j] = 0.0f;
    }
  }
}

void PackPanelsBTransF32(const float* bt, std::int64_t k, std::int64_t n, std::int64_t ldbt,
                         float* out, std::int64_t NR) {
  for (std::int64_t jp = 0; jp * NR < n; ++jp) {
    const std::int64_t nr = std::min(NR, n - jp * NR);
    float* panel = out + jp * NR * k;
    for (std::int64_t j = 0; j < nr; ++j) {
      const float* src = bt + (jp * NR + j) * ldbt;
      for (std::int64_t kk = 0; kk < k; ++kk) panel[kk * NR + j] = src[kk];
    }
    for (std::int64_t j = nr; j < NR; ++j) {
      for (std::int64_t kk = 0; kk < k; ++kk) panel[kk * NR + j] = 0.0f;
    }
  }
}

void PackPanelsBS8(const std::int8_t* b, std::int64_t k, std::int64_t n, std::int64_t ldb,
                   std::int8_t* out, std::int32_t* col_sums, std::int64_t NR) {
  const std::int64_t k2 = PackedKS8(k);
  if (col_sums != nullptr) std::memset(col_sums, 0, static_cast<std::size_t>(n) * 4);
  for (std::int64_t jp = 0; jp * NR < n; ++jp) {
    const std::int64_t nr = std::min(NR, n - jp * NR);
    std::int8_t* panel = out + jp * NR * k2;
    std::int32_t* sums = col_sums != nullptr ? col_sums + jp * NR : nullptr;
    for (std::int64_t p = 0; p < k2 / 2; ++p) {
      const std::int64_t kk0 = 2 * p;
      const bool has1 = kk0 + 1 < k;
      std::int8_t* dst = panel + p * 2 * NR;
      const std::int8_t* src0 = b + kk0 * ldb + jp * NR;
      const std::int8_t* src1 = src0 + ldb;
      std::int64_t j = 0;
      for (; j < nr; ++j) {
        dst[j * 2 + 0] = src0[j];
        dst[j * 2 + 1] = has1 ? src1[j] : std::int8_t{0};
      }
      for (; j < NR; ++j) {
        dst[j * 2 + 0] = 0;
        dst[j * 2 + 1] = 0;
      }
      if (sums != nullptr) {
        for (j = 0; j < nr; ++j) sums[j] += dst[j * 2] + dst[j * 2 + 1];
      }
    }
  }
}

void PackPanelsBTransS8(const std::int8_t* bt, std::int64_t k, std::int64_t n,
                        std::int64_t ldbt, std::int8_t* out, std::int32_t* col_sums,
                        std::int64_t NR) {
  const std::int64_t k2 = PackedKS8(k);
  for (std::int64_t jp = 0; jp * NR < n; ++jp) {
    const std::int64_t nr = std::min(NR, n - jp * NR);
    std::int8_t* panel = out + jp * NR * k2;
    for (std::int64_t j = 0; j < nr; ++j) {
      const std::int8_t* src = bt + (jp * NR + j) * ldbt;
      std::int32_t sum = 0;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        panel[(kk / 2) * 2 * NR + j * 2 + (kk & 1)] = src[kk];
        sum += src[kk];
      }
      if (k & 1) panel[(k2 / 2 - 1) * 2 * NR + j * 2 + 1] = 0;
      if (col_sums != nullptr) col_sums[jp * NR + j] = sum;
    }
    for (std::int64_t j = nr; j < NR; ++j) {
      for (std::int64_t p = 0; p < k2 / 2; ++p) {
        panel[p * 2 * NR + j * 2 + 0] = 0;
        panel[p * 2 * NR + j * 2 + 1] = 0;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Pre-packed weights.

namespace {

PackedMatrixPtr PackConvWeights(const NDArray& weight, std::int64_t groups, bool int8,
                                const GemmConfig& config) {
  TNP_CHECK_EQ(weight.shape().rank(), 4);
  TNP_CHECK(IsValidGemmConfig(config, int8 ? DType::kInt8 : DType::kFloat32))
      << "illegal GEMM config " << config.ToString();
  const std::int64_t co = weight.shape()[0];
  const std::int64_t k = weight.shape()[1] * weight.shape()[2] * weight.shape()[3];
  TNP_CHECK_EQ(co % groups, 0);
  const std::int64_t co_g = co / groups;

  auto packed = std::make_shared<PackedMatrix>();
  packed->side = PackedMatrix::Side::kA;
  packed->dtype = weight.dtype();
  packed->rows = co_g;
  packed->cols = k;
  packed->groups = groups;
  packed->config = config;
  packed->panel = config.mr;
  if (int8) {
    packed->group_stride = PackedExtent(co_g, config.mr) * PackedKS8(k);
    packed->data = NDArray::Empty(Shape({groups * packed->group_stride}), DType::kInt8);
    packed->sums = NDArray::Empty(Shape({co}), DType::kInt32);
    const std::int8_t* src = weight.Data<std::int8_t>();
    for (std::int64_t g = 0; g < groups; ++g) {
      PackPanelsAS8(src + g * co_g * k, co_g, k, k,
                    packed->data.Data<std::int8_t>() + g * packed->group_stride,
                    packed->sums.Data<std::int32_t>() + g * co_g, config.mr);
    }
  } else {
    packed->group_stride = PackedExtent(co_g, config.mr) * k;
    packed->data = NDArray::Empty(Shape({groups * packed->group_stride}), DType::kFloat32);
    const float* src = weight.Data<float>();
    for (std::int64_t g = 0; g < groups; ++g) {
      PackPanelsAF32(src + g * co_g * k, co_g, k, k,
                     packed->data.Data<float>() + g * packed->group_stride, config.mr);
    }
  }
  CountWeightPack(packed->total_bytes());
  return packed;
}

PackedMatrixPtr PackDenseWeights(const NDArray& weight, bool int8,
                                 const GemmConfig& config) {
  TNP_CHECK_EQ(weight.shape().rank(), 2);
  TNP_CHECK(IsValidGemmConfig(config, int8 ? DType::kInt8 : DType::kFloat32))
      << "illegal GEMM config " << config.ToString();
  const std::int64_t n = weight.shape()[0];
  const std::int64_t k = weight.shape()[1];

  auto packed = std::make_shared<PackedMatrix>();
  packed->side = PackedMatrix::Side::kB;
  packed->dtype = weight.dtype();
  packed->rows = k;
  packed->cols = n;
  packed->groups = 1;
  packed->config = config;
  packed->panel = config.nr;
  if (int8) {
    packed->group_stride = PackedExtent(n, config.nr) * PackedKS8(k);
    packed->data = NDArray::Empty(Shape({packed->group_stride}), DType::kInt8);
    packed->sums = NDArray::Empty(Shape({n}), DType::kInt32);
    PackPanelsBTransS8(weight.Data<std::int8_t>(), k, n, k, packed->data.Data<std::int8_t>(),
                       packed->sums.Data<std::int32_t>(), config.nr);
  } else {
    packed->group_stride = PackedExtent(n, config.nr) * k;
    packed->data = NDArray::Empty(Shape({packed->group_stride}), DType::kFloat32);
    PackPanelsBTransF32(weight.Data<float>(), k, n, k, packed->data.Data<float>(),
                        config.nr);
  }
  CountWeightPack(packed->total_bytes());
  return packed;
}

}  // namespace

PackedMatrixPtr PackConvWeightsF32(const NDArray& weight, std::int64_t groups,
                                   const GemmConfig& config) {
  TNP_CHECK(weight.dtype() == DType::kFloat32);
  return PackConvWeights(weight, groups, /*int8=*/false, config);
}

PackedMatrixPtr PackConvWeightsS8(const NDArray& weight, std::int64_t groups,
                                  const GemmConfig& config) {
  TNP_CHECK(weight.dtype() == DType::kInt8);
  return PackConvWeights(weight, groups, /*int8=*/true, config);
}

PackedMatrixPtr PackDenseWeightsF32(const NDArray& weight, const GemmConfig& config) {
  TNP_CHECK(weight.dtype() == DType::kFloat32);
  return PackDenseWeights(weight, /*int8=*/false, config);
}

PackedMatrixPtr PackDenseWeightsS8(const NDArray& weight, const GemmConfig& config) {
  TNP_CHECK(weight.dtype() == DType::kInt8);
  return PackDenseWeights(weight, /*int8=*/true, config);
}

void ValidatePackedLayout(const PackedMatrix& matrix) {
  const bool int8 = matrix.dtype == DType::kInt8;
  if (!int8 && matrix.dtype != DType::kFloat32) {
    TNP_THROW(kParseError) << "packed matrix: unsupported dtype "
                           << DTypeName(matrix.dtype);
  }
  if (matrix.rows <= 0 || matrix.cols <= 0 || matrix.groups <= 0) {
    TNP_THROW(kParseError) << "packed matrix: non-positive geometry (" << matrix.rows
                           << " x " << matrix.cols << ", " << matrix.groups
                           << " groups)";
  }
  if (!IsValidGemmConfig(matrix.config, matrix.dtype)) {
    TNP_THROW(kParseError) << "packed matrix: illegal " << DTypeName(matrix.dtype)
                           << " GEMM config " << matrix.config.ToString();
  }
  const bool a_side = matrix.side == PackedMatrix::Side::kA;
  const std::int64_t panel = a_side ? matrix.config.mr : matrix.config.nr;
  if (matrix.panel != panel) {
    TNP_THROW(kParseError) << "packed matrix: panel width " << matrix.panel
                           << " does not match the " << (a_side ? "A" : "B")
                           << "-side width of config " << matrix.config.ToString();
  }
  // A-side panels tile rows and run over the k (cols) extent; B-side panels
  // tile cols and run over the k (rows) extent. Int8 pads k up to even.
  const std::int64_t tiled = a_side ? matrix.rows : matrix.cols;
  const std::int64_t depth_raw = a_side ? matrix.cols : matrix.rows;
  const std::int64_t depth = int8 ? PackedKS8(depth_raw) : depth_raw;
  const std::int64_t stride = PackedExtent(tiled, panel) * depth;
  if (matrix.group_stride != stride) {
    TNP_THROW(kParseError) << "packed matrix: group_stride " << matrix.group_stride
                           << " does not match the packed layout (" << stride << ")";
  }
  if (!matrix.data.defined() || matrix.data.dtype() != matrix.dtype ||
      matrix.data.NumElements() != matrix.groups * stride) {
    TNP_THROW(kParseError) << "packed matrix: data payload does not hold "
                           << matrix.groups * stride << " packed "
                           << DTypeName(matrix.dtype) << " elements";
  }
  if (int8) {
    const std::int64_t sums_len = matrix.groups * (a_side ? matrix.rows : matrix.cols);
    if (!matrix.sums.defined() || matrix.sums.dtype() != DType::kInt32 ||
        matrix.sums.NumElements() != sums_len) {
      TNP_THROW(kParseError) << "packed matrix: int8 panels require " << sums_len
                             << " int32 zero-point sums";
    }
  } else if (matrix.sums.defined()) {
    TNP_THROW(kParseError) << "packed matrix: float32 panels carry no sums";
  }
}

PackedMatrixPtr PackedWeightsCache::GetOrPack(const std::string& key,
                                              const std::function<PackedMatrixPtr()>& pack) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) return it->second;
  }
  PackedMatrixPtr packed = pack();
  std::lock_guard<std::mutex> lock(mutex_);
  const auto [it, inserted] = entries_.emplace(key, std::move(packed));
  return it->second;
}

int PackedWeightsCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(entries_.size());
}

std::int64_t PackedWeightsCache::total_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::int64_t total = 0;
  for (const auto& [key, packed] : entries_) total += packed->total_bytes();
  return total;
}

void CountWeightPack(std::int64_t bytes) {
  WeightPackCounter().Increment();
  WeightPackBytesCounter().Increment(bytes);
}

std::int64_t TotalWeightPacks() { return WeightPackCounter().value(); }

}  // namespace kernels
}  // namespace tnp
