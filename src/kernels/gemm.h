// Dense matrix multiply primitives used by conv (via im2col) and dense.
//
// The engine is a BLIS-style tiled GEMM: both operands are packed into
// MR/NR panels (see pack.h), and a register-blocked MRxNR micro-kernel walks
// k-cache blocks of the panels. The public GemmF32/GemmS8S32 entry points
// pack both sides into thread-local arena scratch; conv/dense call the
// *Packed cores directly with pre-packed weights so steady-state inference
// never repacks constants.
//
// Every blocked run is driven by a GemmConfig (pack.h): the register tile
// selects one of the pre-instantiated f32 micro-kernel variants (4x8, 6x8,
// 8x4, 4x16, each at k-unroll 1 or 2) and kc/nc set the cache blocking. The
// s8 pmaddwd path keeps its 4x8 layout contract and tunes kc/nc only.
//
// Floating-point summation order: for a fixed output element the engine
// accumulates products in increasing-k order within each kc block and
// composes blocks left-to-right (store, then +=). The per-element value
// therefore depends ONLY on kc — configs that differ in mr/nr/nc/unroll are
// bitwise-identical at equal kc, and GemmF32BlockedReference reproduces the
// exact blocked order for differential testing.
//
// Int8 uses the gemmlowp-style zero-point factorization:
//
//   sum_k (A[i,k]-az)(B[k,j]-bz)
//     = sum_k A[i,k]B[k,j] - az*colsum_j(B) - bz*rowsum_i(A) + k*az*bz
//
// so the inner loop is a pure s8 x s8 -> s32 product and the zero points are
// applied as a rank-1 correction afterwards. All-integer math means the
// factorized result is bit-exact against the naive reference for every
// config.
#pragma once

#include <cstdint>

#include "kernels/pack.h"

namespace tnp {
namespace kernels {

/// C[m,n] = sum_k A[m,k] * B[k,n].  Row-major, C overwritten.
/// Packs both operands into arena scratch, then runs the tiled core
/// parallelized over row panels on the global thread pool.
void GemmF32(const float* a, const float* b, float* c, std::int64_t m, std::int64_t k,
             std::int64_t n);

/// C[m,n] = sum_k (A[m,k]-a_zero) * (B[k,n]-b_zero), int32 accumulation.
/// Bit-exact with GemmS8S32Reference (integer math, factorized zero points).
void GemmS8S32(const std::int8_t* a, const std::int8_t* b, std::int32_t* c, std::int64_t m,
               std::int64_t k, std::int64_t n, std::int32_t a_zero, std::int32_t b_zero);

// ---------------------------------------------------------------------------
// Packed cores. `ap` holds PackPanelsA* output for the full (m, k) extent
// packed at config.mr, `bp` holds PackPanelsB* output for the full (k, n)
// extent packed at config.nr; C is written at leading dimension ldc. The
// config must be legal (IsValidGemmConfig) and must match the one the panels
// were packed under. `parallel` distributes row panels over the current
// thread pool. Nested ParallelFor fans out (the work-stealing pool help-
// executes its own group while joining), so parallel=true is safe inside
// another parallel region; pass false when the caller already partitioned
// the work and a serial core avoids redundant dispatch.

void GemmPackedF32(const float* ap, const float* bp, float* c, std::int64_t m,
                   std::int64_t k, std::int64_t n, std::int64_t ldc, bool parallel,
                   const GemmConfig& config = GemmConfig::DefaultF32());

/// Pure s8 x s8 -> s32 product of packed panels; zero points NOT applied.
/// Only config.kc/config.nc vary the schedule (the tile is fixed at 4x8).
void GemmPackedS8S32(const std::int8_t* ap, const std::int8_t* bp, std::int32_t* c,
                     std::int64_t m, std::int64_t k, std::int64_t n, std::int64_t ldc,
                     bool parallel, const GemmConfig& config = GemmConfig::DefaultS8());

/// Rank-1 zero-point correction, applied in place after GemmPackedS8S32:
///   C[i,j] += -a_zero*b_col_sums[j] - b_zero*a_row_sums[i] + k*a_zero*b_zero
/// Sum arrays may be null when the matching zero point is 0.
void ApplyZeroPointCorrection(std::int32_t* c, std::int64_t m, std::int64_t n,
                              std::int64_t ldc, std::int64_t k, std::int32_t a_zero,
                              std::int32_t b_zero, const std::int32_t* a_row_sums,
                              const std::int32_t* b_col_sums);

// ---------------------------------------------------------------------------
// Naive references, kept for differential testing of the packed engine.

void GemmF32Reference(const float* a, const float* b, float* c, std::int64_t m,
                      std::int64_t k, std::int64_t n);

/// The packed engine's exact f32 summation order at k-cache block size `kc`:
/// per element, products accumulate in increasing-k order within each block
/// and blocks compose left-to-right. Bitwise-identical to GemmPackedF32 for
/// every config with this kc, regardless of mr/nr/nc/unroll.
void GemmF32BlockedReference(const float* a, const float* b, float* c, std::int64_t m,
                             std::int64_t k, std::int64_t n, std::int64_t kc);

void GemmS8S32Reference(const std::int8_t* a, const std::int8_t* b, std::int32_t* c,
                        std::int64_t m, std::int64_t k, std::int64_t n,
                        std::int32_t a_zero, std::int32_t b_zero);

/// Name of the instruction set the s8 micro-kernel compiled against
/// ("sse2" or "scalar"). Part of the tuning-DB key: tuned timings never
/// migrate across ISAs.
const char* GemmIsaName();

}  // namespace kernels
}  // namespace tnp
