// Dense matrix multiply primitives used by conv (via im2col) and dense.
//
// The engine is a BLIS-style tiled GEMM: both operands are packed into
// MR/NR panels (see pack.h), and a register-blocked MRxNR micro-kernel walks
// k-cache blocks of the panels. The public GemmF32/GemmS8S32 entry points
// pack both sides into thread-local arena scratch; conv/dense call the
// *Packed cores directly with pre-packed weights so steady-state inference
// never repacks constants.
//
// Int8 uses the gemmlowp-style zero-point factorization:
//
//   sum_k (A[i,k]-az)(B[k,j]-bz)
//     = sum_k A[i,k]B[k,j] - az*colsum_j(B) - bz*rowsum_i(A) + k*az*bz
//
// so the inner loop is a pure s8 x s8 -> s32 product and the zero points are
// applied as a rank-1 correction afterwards. All-integer math means the
// factorized result is bit-exact against the naive reference.
#pragma once

#include <cstdint>

namespace tnp {
namespace kernels {

/// C[m,n] = sum_k A[m,k] * B[k,n].  Row-major, C overwritten.
/// Packs both operands into arena scratch, then runs the tiled core
/// parallelized over row panels on the global thread pool.
void GemmF32(const float* a, const float* b, float* c, std::int64_t m, std::int64_t k,
             std::int64_t n);

/// C[m,n] = sum_k (A[m,k]-a_zero) * (B[k,n]-b_zero), int32 accumulation.
/// Bit-exact with GemmS8S32Reference (integer math, factorized zero points).
void GemmS8S32(const std::int8_t* a, const std::int8_t* b, std::int32_t* c, std::int64_t m,
               std::int64_t k, std::int64_t n, std::int32_t a_zero, std::int32_t b_zero);

// ---------------------------------------------------------------------------
// Packed cores. `ap` holds PackPanelsA* output for the full (m, k) extent,
// `bp` holds PackPanelsB* output for the full (k, n) extent; C is written at
// leading dimension ldc. `parallel` distributes row panels over the current
// thread pool. Nested ParallelFor fans out (the work-stealing pool help-
// executes its own group while joining), so parallel=true is safe inside
// another parallel region; pass false when the caller already partitioned
// the work and a serial core avoids redundant dispatch.

void GemmPackedF32(const float* ap, const float* bp, float* c, std::int64_t m,
                   std::int64_t k, std::int64_t n, std::int64_t ldc, bool parallel);

/// Pure s8 x s8 -> s32 product of packed panels; zero points NOT applied.
void GemmPackedS8S32(const std::int8_t* ap, const std::int8_t* bp, std::int32_t* c,
                     std::int64_t m, std::int64_t k, std::int64_t n, std::int64_t ldc,
                     bool parallel);

/// Rank-1 zero-point correction, applied in place after GemmPackedS8S32:
///   C[i,j] += -a_zero*b_col_sums[j] - b_zero*a_row_sums[i] + k*a_zero*b_zero
/// Sum arrays may be null when the matching zero point is 0.
void ApplyZeroPointCorrection(std::int32_t* c, std::int64_t m, std::int64_t n,
                              std::int64_t ldc, std::int64_t k, std::int32_t a_zero,
                              std::int32_t b_zero, const std::int32_t* a_row_sums,
                              const std::int32_t* b_col_sums);

// ---------------------------------------------------------------------------
// Naive references, kept for differential testing of the packed engine.

void GemmF32Reference(const float* a, const float* b, float* c, std::int64_t m,
                      std::int64_t k, std::int64_t n);

void GemmS8S32Reference(const std::int8_t* a, const std::int8_t* b, std::int32_t* c,
                        std::int64_t m, std::int64_t k, std::int64_t n,
                        std::int32_t a_zero, std::int32_t b_zero);

}  // namespace kernels
}  // namespace tnp
