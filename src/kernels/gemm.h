// Dense matrix multiply primitives used by conv (via im2col) and dense.
#pragma once

#include <cstdint>

namespace tnp {
namespace kernels {

/// C[m,n] = sum_k A[m,k] * B[k,n].  Row-major, C overwritten.
/// Parallelized over rows of C on the global thread pool.
void GemmF32(const float* a, const float* b, float* c, std::int64_t m, std::int64_t k,
             std::int64_t n);

/// C[m,n] = sum_k (A[m,k]-a_zero) * (B[k,n]-b_zero), int32 accumulation.
void GemmS8S32(const std::int8_t* a, const std::int8_t* b, std::int32_t* c, std::int64_t m,
               std::int64_t k, std::int64_t n, std::int32_t a_zero, std::int32_t b_zero);

}  // namespace kernels
}  // namespace tnp
