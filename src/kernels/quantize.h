// Quantize / dequantize / requantize and quantized elementwise kernels.
//
// All quantization in this stack is per-tensor affine int8:
//   real = scale * (q - zero_point)
#pragma once

#include <vector>

#include "tensor/ndarray.h"

namespace tnp {
namespace kernels {

/// float32 -> int8 with round-to-nearest-even and saturation.
void QuantizeF32ToS8(const NDArray& input, NDArray& output, const QuantParams& output_q);

/// int8 -> float32.
void DequantizeS8ToF32(const NDArray& input, NDArray& output, const QuantParams& input_q);

/// int8 -> int8 under new quantization parameters.
void RequantizeS8(const NDArray& input, NDArray& output, const QuantParams& input_q,
                  const QuantParams& output_q);

/// Quantized elementwise add: both inputs rescaled to real space, summed,
/// and re-quantized to output params (TFLite-style, float intermediate).
void QAddS8(const NDArray& lhs, const NDArray& rhs, NDArray& output, const QuantParams& lhs_q,
            const QuantParams& rhs_q, const QuantParams& output_q);

/// Quantized elementwise mul.
void QMulS8(const NDArray& lhs, const NDArray& rhs, NDArray& output, const QuantParams& lhs_q,
            const QuantParams& rhs_q, const QuantParams& output_q);

/// Quantized concat: each input is requantized to the output params and
/// concatenated along `axis`.
void QConcatS8(const std::vector<NDArray>& inputs, const std::vector<QuantParams>& input_qs,
               NDArray& output, const QuantParams& output_q, int axis);

}  // namespace kernels
}  // namespace tnp
