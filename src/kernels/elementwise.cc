#include "kernels/elementwise.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "support/thread_pool.h"

namespace tnp {
namespace kernels {

namespace {

constexpr int kMaxBroadcastRank = 6;

template <typename Fn>
void UnaryImpl(const NDArray& input, NDArray& output, Fn fn) {
  TNP_CHECK(input.shape() == output.shape());
  const float* in = input.Data<float>();
  float* out = output.Data<float>();
  const std::int64_t n = input.NumElements();
  support::ParallelFor(0, n, [&](std::int64_t i) { out[i] = fn(in[i]); },
                       /*grain_size=*/4096);
}

// Pad `shape` with leading 1s to `rank` dims.
std::vector<std::int64_t> PadShape(const Shape& shape, int rank) {
  std::vector<std::int64_t> dims(static_cast<std::size_t>(rank), 1);
  const int offset = rank - shape.rank();
  for (int i = 0; i < shape.rank(); ++i) dims[static_cast<std::size_t>(offset + i)] = shape[i];
  return dims;
}

}  // namespace

void ReluF32(const NDArray& input, NDArray& output) {
  UnaryImpl(input, output, [](float v) { return v > 0.0f ? v : 0.0f; });
}

void LeakyReluF32(const NDArray& input, NDArray& output, float alpha) {
  UnaryImpl(input, output, [alpha](float v) { return v > 0.0f ? v : alpha * v; });
}

void SigmoidF32(const NDArray& input, NDArray& output) {
  UnaryImpl(input, output, [](float v) { return 1.0f / (1.0f + std::exp(-v)); });
}

void TanhF32(const NDArray& input, NDArray& output) {
  UnaryImpl(input, output, [](float v) { return std::tanh(v); });
}

void ClipF32(const NDArray& input, NDArray& output, float lo, float hi) {
  UnaryImpl(input, output, [lo, hi](float v) { return std::clamp(v, lo, hi); });
}

void ExpF32(const NDArray& input, NDArray& output) {
  UnaryImpl(input, output, [](float v) { return std::exp(v); });
}

void SqrtF32(const NDArray& input, NDArray& output) {
  UnaryImpl(input, output, [](float v) { return std::sqrt(v); });
}

void ReluS8(const NDArray& input, NDArray& output, std::int32_t zero_point) {
  TNP_CHECK(input.shape() == output.shape());
  const std::int8_t* in = input.Data<std::int8_t>();
  std::int8_t* out = output.Data<std::int8_t>();
  const std::int8_t floor_value = static_cast<std::int8_t>(std::clamp(zero_point, -128, 127));
  const std::int64_t n = input.NumElements();
  support::ParallelFor(0, n, [&](std::int64_t i) {
    out[i] = std::max(in[i], floor_value);
  }, /*grain_size=*/4096);
}

Shape BroadcastShape(const Shape& lhs, const Shape& rhs) {
  const int rank = std::max(lhs.rank(), rhs.rank());
  if (rank > kMaxBroadcastRank) {
    TNP_THROW(kInvalidArgument) << "broadcast rank " << rank << " exceeds " << kMaxBroadcastRank;
  }
  const auto a = PadShape(lhs, rank);
  const auto b = PadShape(rhs, rank);
  std::vector<std::int64_t> out(static_cast<std::size_t>(rank));
  for (int i = 0; i < rank; ++i) {
    const std::int64_t da = a[static_cast<std::size_t>(i)];
    const std::int64_t db = b[static_cast<std::size_t>(i)];
    if (da != db && da != 1 && db != 1) {
      TNP_THROW(kInvalidArgument) << "cannot broadcast " << lhs.ToString() << " with "
                                  << rhs.ToString();
    }
    out[static_cast<std::size_t>(i)] = std::max(da, db);
  }
  return Shape(std::move(out));
}

void BroadcastBinaryF32(BinaryOp op, const NDArray& lhs, const NDArray& rhs, NDArray& output) {
  const Shape out_shape = BroadcastShape(lhs.shape(), rhs.shape());
  TNP_CHECK(output.shape() == out_shape)
      << output.shape().ToString() << " vs " << out_shape.ToString();

  const auto apply = [op](float a, float b) -> float {
    switch (op) {
      case BinaryOp::kAdd: return a + b;
      case BinaryOp::kSub: return a - b;
      case BinaryOp::kMul: return a * b;
      case BinaryOp::kDiv: return a / b;
      case BinaryOp::kMax: return std::max(a, b);
      case BinaryOp::kMin: return std::min(a, b);
    }
    return 0.0f;
  };

  const float* pa = lhs.Data<float>();
  const float* pb = rhs.Data<float>();
  float* po = output.Data<float>();
  const std::int64_t total = out_shape.NumElements();

  // Fast path: identical shapes.
  if (lhs.shape() == rhs.shape()) {
    support::ParallelFor(0, total, [&](std::int64_t i) { po[i] = apply(pa[i], pb[i]); },
                         /*grain_size=*/4096);
    return;
  }
  // Fast path: scalar rhs or lhs.
  if (rhs.NumElements() == 1) {
    const float b = pb[0];
    support::ParallelFor(0, total, [&](std::int64_t i) { po[i] = apply(pa[i], b); },
                         /*grain_size=*/4096);
    return;
  }
  if (lhs.NumElements() == 1) {
    const float a = pa[0];
    support::ParallelFor(0, total, [&](std::int64_t i) { po[i] = apply(a, pb[i]); },
                         /*grain_size=*/4096);
    return;
  }

  // General path: decode multi-index, compute per-operand strides with zeros
  // on broadcast axes.
  const int rank = out_shape.rank();
  const auto a_dims = PadShape(lhs.shape(), rank);
  const auto b_dims = PadShape(rhs.shape(), rank);
  std::vector<std::int64_t> out_strides = out_shape.Strides();
  std::vector<std::int64_t> a_strides(static_cast<std::size_t>(rank));
  std::vector<std::int64_t> b_strides(static_cast<std::size_t>(rank));
  std::int64_t sa = 1;
  std::int64_t sb = 1;
  for (int i = rank - 1; i >= 0; --i) {
    a_strides[static_cast<std::size_t>(i)] = a_dims[static_cast<std::size_t>(i)] == 1 ? 0 : sa;
    b_strides[static_cast<std::size_t>(i)] = b_dims[static_cast<std::size_t>(i)] == 1 ? 0 : sb;
    sa *= a_dims[static_cast<std::size_t>(i)];
    sb *= b_dims[static_cast<std::size_t>(i)];
  }

  support::ParallelFor(0, total, [&](std::int64_t flat) {
    std::int64_t rem = flat;
    std::int64_t ia = 0;
    std::int64_t ib = 0;
    for (int i = 0; i < rank; ++i) {
      const std::int64_t idx = rem / out_strides[static_cast<std::size_t>(i)];
      rem %= out_strides[static_cast<std::size_t>(i)];
      ia += idx * a_strides[static_cast<std::size_t>(i)];
      ib += idx * b_strides[static_cast<std::size_t>(i)];
    }
    po[flat] = apply(pa[ia], pb[ib]);
  }, /*grain_size=*/1024);
}

void BiasAddF32(const NDArray& input, const NDArray& bias, NDArray& output, int axis) {
  TNP_CHECK(input.shape() == output.shape());
  const int rank = input.shape().rank();
  if (axis < 0) axis += rank;
  TNP_CHECK(axis >= 0 && axis < rank);
  TNP_CHECK_EQ(bias.NumElements(), input.shape()[axis]);

  const float* in = input.Data<float>();
  const float* b = bias.Data<float>();
  float* out = output.Data<float>();

  std::int64_t outer = 1;
  for (int i = 0; i < axis; ++i) outer *= input.shape()[i];
  const std::int64_t channels = input.shape()[axis];
  std::int64_t inner = 1;
  for (int i = axis + 1; i < rank; ++i) inner *= input.shape()[i];

  support::ParallelFor(0, outer * channels, [&](std::int64_t oc) {
    const float bv = b[oc % channels];
    const float* in_row = in + oc * inner;
    float* out_row = out + oc * inner;
    for (std::int64_t i = 0; i < inner; ++i) out_row[i] = in_row[i] + bv;
  }, /*grain_size=*/16);
}

void BatchNormF32(const NDArray& input, const NDArray& gamma, const NDArray& beta,
                  const NDArray& mean, const NDArray& var, NDArray& output, float epsilon) {
  TNP_CHECK(input.shape() == output.shape());
  TNP_CHECK_EQ(input.shape().rank(), 4);
  const std::int64_t channels = input.shape()[1];
  TNP_CHECK_EQ(gamma.NumElements(), channels);
  TNP_CHECK_EQ(beta.NumElements(), channels);
  TNP_CHECK_EQ(mean.NumElements(), channels);
  TNP_CHECK_EQ(var.NumElements(), channels);

  // Fold into per-channel scale/shift once.
  std::vector<float> scale(static_cast<std::size_t>(channels));
  std::vector<float> shift(static_cast<std::size_t>(channels));
  const float* g = gamma.Data<float>();
  const float* bt = beta.Data<float>();
  const float* mu = mean.Data<float>();
  const float* vr = var.Data<float>();
  for (std::int64_t c = 0; c < channels; ++c) {
    const float inv_std = 1.0f / std::sqrt(vr[c] + epsilon);
    scale[static_cast<std::size_t>(c)] = g[c] * inv_std;
    shift[static_cast<std::size_t>(c)] = bt[c] - mu[c] * g[c] * inv_std;
  }

  const float* in = input.Data<float>();
  float* out = output.Data<float>();
  const std::int64_t batch = input.shape()[0];
  const std::int64_t area = input.shape()[2] * input.shape()[3];
  support::ParallelFor(0, batch * channels, [&](std::int64_t nc) {
    const std::int64_t c = nc % channels;
    const float s = scale[static_cast<std::size_t>(c)];
    const float sh = shift[static_cast<std::size_t>(c)];
    const float* in_plane = in + nc * area;
    float* out_plane = out + nc * area;
    for (std::int64_t i = 0; i < area; ++i) out_plane[i] = in_plane[i] * s + sh;
  }, /*grain_size=*/8);
}

void SoftmaxF32(const NDArray& input, NDArray& output, int axis) {
  TNP_CHECK(input.shape() == output.shape());
  const int rank = input.shape().rank();
  if (axis < 0) axis += rank;
  TNP_CHECK(axis >= 0 && axis < rank);

  std::int64_t outer = 1;
  for (int i = 0; i < axis; ++i) outer *= input.shape()[i];
  const std::int64_t channels = input.shape()[axis];
  std::int64_t inner = 1;
  for (int i = axis + 1; i < rank; ++i) inner *= input.shape()[i];

  const float* in = input.Data<float>();
  float* out = output.Data<float>();
  support::ParallelFor(0, outer * inner, [&](std::int64_t oi) {
    const std::int64_t o = oi / inner;
    const std::int64_t i = oi % inner;
    const float* in_base = in + o * channels * inner + i;
    float* out_base = out + o * channels * inner + i;
    float max_value = -std::numeric_limits<float>::infinity();
    for (std::int64_t c = 0; c < channels; ++c) {
      max_value = std::max(max_value, in_base[c * inner]);
    }
    double sum = 0.0;
    for (std::int64_t c = 0; c < channels; ++c) {
      const float e = std::exp(in_base[c * inner] - max_value);
      out_base[c * inner] = e;
      sum += e;
    }
    const float inv = static_cast<float>(1.0 / sum);
    for (std::int64_t c = 0; c < channels; ++c) out_base[c * inner] *= inv;
  }, /*grain_size=*/32);
}

void Concat(const std::vector<NDArray>& inputs, NDArray& output, int axis) {
  TNP_CHECK(!inputs.empty());
  const int rank = inputs.front().shape().rank();
  if (axis < 0) axis += rank;
  TNP_CHECK(axis >= 0 && axis < rank);
  const std::size_t elem_bytes = DTypeBytes(output.dtype());

  std::int64_t outer = 1;
  for (int i = 0; i < axis; ++i) outer *= output.shape()[i];
  std::int64_t inner_bytes = static_cast<std::int64_t>(elem_bytes);
  for (int i = axis + 1; i < rank; ++i) inner_bytes *= output.shape()[i];

  std::int64_t axis_total = 0;
  for (const auto& in : inputs) {
    TNP_CHECK(in.dtype() == output.dtype());
    TNP_CHECK_EQ(in.shape().rank(), rank);
    for (int i = 0; i < rank; ++i) {
      if (i != axis) {
        TNP_CHECK_EQ(in.shape()[i], output.shape()[i]);
      }
    }
    axis_total += in.shape()[axis];
  }
  TNP_CHECK_EQ(axis_total, output.shape()[axis]);

  char* out_bytes = static_cast<char*>(output.RawData());
  const std::int64_t out_row_bytes = output.shape()[axis] * inner_bytes;
  std::int64_t axis_offset_bytes = 0;
  for (const auto& in : inputs) {
    const char* in_bytes = static_cast<const char*>(in.RawData());
    const std::int64_t in_row_bytes = in.shape()[axis] * inner_bytes;
    for (std::int64_t o = 0; o < outer; ++o) {
      std::memcpy(out_bytes + o * out_row_bytes + axis_offset_bytes,
                  in_bytes + o * in_row_bytes, static_cast<std::size_t>(in_row_bytes));
    }
    axis_offset_bytes += in_row_bytes;
  }
}

void PadConstant(const NDArray& input, NDArray& output,
                 const std::vector<std::int64_t>& pad_before,
                 const std::vector<std::int64_t>& pad_after, double pad_value) {
  const int rank = input.shape().rank();
  TNP_CHECK_EQ(static_cast<int>(pad_before.size()), rank);
  TNP_CHECK_EQ(static_cast<int>(pad_after.size()), rank);
  for (int i = 0; i < rank; ++i) {
    TNP_CHECK_EQ(output.shape()[i],
                 input.shape()[i] + pad_before[static_cast<std::size_t>(i)] +
                     pad_after[static_cast<std::size_t>(i)]);
  }
  TNP_CHECK(input.dtype() == output.dtype());

  // Fill with the pad value, then copy the interior rows.
  switch (output.dtype()) {
    case DType::kFloat32: {
      float* p = output.Data<float>();
      std::fill(p, p + output.NumElements(), static_cast<float>(pad_value));
      break;
    }
    case DType::kInt8: {
      std::int8_t* p = output.Data<std::int8_t>();
      std::fill(p, p + output.NumElements(), static_cast<std::int8_t>(pad_value));
      break;
    }
    default: {
      TNP_CHECK(pad_value == 0.0) << "non-zero pad only supported for float32/int8";
      std::memset(output.RawData(), 0, output.SizeBytes());
    }
  }

  const std::size_t elem_bytes = DTypeBytes(input.dtype());
  const auto out_strides = output.shape().Strides();
  const std::int64_t row = input.shape()[rank - 1];
  std::int64_t num_rows = 1;
  for (int i = 0; i < rank - 1; ++i) num_rows *= input.shape()[i];

  const char* in_bytes = static_cast<const char*>(input.RawData());
  char* out_bytes = static_cast<char*>(output.RawData());
  for (std::int64_t r = 0; r < num_rows; ++r) {
    // Decode the input row index and map to the output offset.
    std::int64_t rem = r;
    std::int64_t out_offset = pad_before[static_cast<std::size_t>(rank - 1)];
    for (int i = rank - 2; i >= 0; --i) {
      const std::int64_t dim = input.shape()[i];
      const std::int64_t idx = rem % dim;
      rem /= dim;
      out_offset += (idx + pad_before[static_cast<std::size_t>(i)]) *
                    out_strides[static_cast<std::size_t>(i)];
    }
    std::memcpy(out_bytes + static_cast<std::size_t>(out_offset) * elem_bytes,
                in_bytes + static_cast<std::size_t>(r * row) * elem_bytes,
                static_cast<std::size_t>(row) * elem_bytes);
  }
}

void UpsamplingNearestF32(const NDArray& input, NDArray& output, std::int64_t scale_h,
                          std::int64_t scale_w) {
  TNP_CHECK_EQ(input.shape().rank(), 4);
  const std::int64_t batch = input.shape()[0];
  const std::int64_t channels = input.shape()[1];
  const std::int64_t in_h = input.shape()[2];
  const std::int64_t in_w = input.shape()[3];
  TNP_CHECK(output.shape() == Shape({batch, channels, in_h * scale_h, in_w * scale_w}));

  const float* in = input.Data<float>();
  float* out = output.Data<float>();
  const std::int64_t out_h = in_h * scale_h;
  const std::int64_t out_w = in_w * scale_w;
  support::ParallelFor(0, batch * channels, [&](std::int64_t nc) {
    const float* in_plane = in + nc * in_h * in_w;
    float* out_plane = out + nc * out_h * out_w;
    for (std::int64_t oh = 0; oh < out_h; ++oh) {
      const float* in_row = in_plane + (oh / scale_h) * in_w;
      float* out_row = out_plane + oh * out_w;
      for (std::int64_t ow = 0; ow < out_w; ++ow) {
        out_row[ow] = in_row[ow / scale_w];
      }
    }
  }, /*grain_size=*/4);
}

void StridedSlice(const NDArray& input, NDArray& output,
                  const std::vector<std::int64_t>& begin, const std::vector<std::int64_t>& end,
                  const std::vector<std::int64_t>& strides) {
  const int rank = input.shape().rank();
  TNP_CHECK_EQ(static_cast<int>(begin.size()), rank);
  TNP_CHECK_EQ(static_cast<int>(end.size()), rank);
  TNP_CHECK_EQ(static_cast<int>(strides.size()), rank);
  TNP_CHECK(input.dtype() == output.dtype());

  for (int i = 0; i < rank; ++i) {
    TNP_CHECK_GT(strides[static_cast<std::size_t>(i)], 0) << "only positive strides supported";
    const std::int64_t extent =
        (end[static_cast<std::size_t>(i)] - begin[static_cast<std::size_t>(i)] +
         strides[static_cast<std::size_t>(i)] - 1) /
        strides[static_cast<std::size_t>(i)];
    TNP_CHECK_EQ(output.shape()[i], extent);
  }

  const std::size_t elem_bytes = DTypeBytes(input.dtype());
  const auto in_strides = input.shape().Strides();
  const char* in_bytes = static_cast<const char*>(input.RawData());
  char* out_bytes = static_cast<char*>(output.RawData());
  const std::int64_t total = output.NumElements();
  const auto out_strides = output.shape().Strides();

  for (std::int64_t flat = 0; flat < total; ++flat) {
    std::int64_t rem = flat;
    std::int64_t in_offset = 0;
    for (int i = 0; i < rank; ++i) {
      const std::int64_t idx = rem / out_strides[static_cast<std::size_t>(i)];
      rem %= out_strides[static_cast<std::size_t>(i)];
      in_offset += (begin[static_cast<std::size_t>(i)] + idx * strides[static_cast<std::size_t>(i)]) *
                   in_strides[static_cast<std::size_t>(i)];
    }
    std::memcpy(out_bytes + static_cast<std::size_t>(flat) * elem_bytes,
                in_bytes + static_cast<std::size_t>(in_offset) * elem_bytes, elem_bytes);
  }
}

void MeanF32(const NDArray& input, NDArray& output, const std::vector<int>& axes) {
  const int rank = input.shape().rank();
  std::vector<bool> reduced(static_cast<std::size_t>(rank), false);
  for (int axis : axes) {
    if (axis < 0) axis += rank;
    TNP_CHECK(axis >= 0 && axis < rank);
    reduced[static_cast<std::size_t>(axis)] = true;
  }

  std::int64_t reduce_count = 1;
  for (int i = 0; i < rank; ++i) {
    if (reduced[static_cast<std::size_t>(i)]) reduce_count *= input.shape()[i];
  }

  const float* in = input.Data<float>();
  float* out = output.Data<float>();
  std::fill(out, out + output.NumElements(), 0.0f);

  const auto in_strides = input.shape().Strides();
  // Map each input element to its output slot.
  const std::int64_t total = input.NumElements();
  for (std::int64_t flat = 0; flat < total; ++flat) {
    std::int64_t rem = flat;
    std::int64_t out_index = 0;
    std::int64_t out_stride = 1;
    // Compute the output flat index by walking axes from last to first over
    // the non-reduced dims.
    std::int64_t indices[8];
    for (int i = 0; i < rank; ++i) {
      indices[i] = rem / in_strides[static_cast<std::size_t>(i)];
      rem %= in_strides[static_cast<std::size_t>(i)];
    }
    for (int i = rank - 1; i >= 0; --i) {
      if (!reduced[static_cast<std::size_t>(i)]) {
        out_index += indices[i] * out_stride;
        out_stride *= input.shape()[i];
      }
    }
    out[out_index] += in[flat];
  }
  const float inv = 1.0f / static_cast<float>(reduce_count);
  for (std::int64_t i = 0; i < output.NumElements(); ++i) out[i] *= inv;
}

void Transpose(const NDArray& input, NDArray& output, const std::vector<int>& axes) {
  const int rank = input.shape().rank();
  TNP_CHECK_EQ(static_cast<int>(axes.size()), rank);
  TNP_CHECK(input.dtype() == output.dtype());
  for (int i = 0; i < rank; ++i) {
    TNP_CHECK_EQ(output.shape()[i], input.shape()[axes[static_cast<std::size_t>(i)]]);
  }

  const std::size_t elem_bytes = DTypeBytes(input.dtype());
  const auto in_strides = input.shape().Strides();
  const auto out_strides = output.shape().Strides();
  const char* in_bytes = static_cast<const char*>(input.RawData());
  char* out_bytes = static_cast<char*>(output.RawData());
  const std::int64_t total = output.NumElements();

  for (std::int64_t flat = 0; flat < total; ++flat) {
    std::int64_t rem = flat;
    std::int64_t in_offset = 0;
    for (int i = 0; i < rank; ++i) {
      const std::int64_t idx = rem / out_strides[static_cast<std::size_t>(i)];
      rem %= out_strides[static_cast<std::size_t>(i)];
      in_offset += idx * in_strides[static_cast<std::size_t>(axes[static_cast<std::size_t>(i)])];
    }
    std::memcpy(out_bytes + static_cast<std::size_t>(flat) * elem_bytes,
                in_bytes + static_cast<std::size_t>(in_offset) * elem_bytes, elem_bytes);
  }
}

void Cast(const NDArray& input, NDArray& output) {
  TNP_CHECK(input.shape() == output.shape());
  const std::int64_t n = input.NumElements();

  const auto read_as_double = [&](std::int64_t i) -> double {
    switch (input.dtype()) {
      case DType::kFloat32: return input.Data<float>()[i];
      case DType::kInt8: return input.Data<std::int8_t>()[i];
      case DType::kUInt8: return input.Data<std::uint8_t>()[i];
      case DType::kInt32: return input.Data<std::int32_t>()[i];
      case DType::kInt64: return static_cast<double>(input.Data<std::int64_t>()[i]);
      case DType::kBool: return input.Data<bool>()[i] ? 1.0 : 0.0;
    }
    return 0.0;
  };

  for (std::int64_t i = 0; i < n; ++i) {
    const double v = read_as_double(i);
    switch (output.dtype()) {
      case DType::kFloat32: output.Data<float>()[i] = static_cast<float>(v); break;
      case DType::kInt8:
        output.Data<std::int8_t>()[i] =
            static_cast<std::int8_t>(std::clamp(v, -128.0, 127.0));
        break;
      case DType::kUInt8:
        output.Data<std::uint8_t>()[i] = static_cast<std::uint8_t>(std::clamp(v, 0.0, 255.0));
        break;
      case DType::kInt32: output.Data<std::int32_t>()[i] = static_cast<std::int32_t>(v); break;
      case DType::kInt64: output.Data<std::int64_t>()[i] = static_cast<std::int64_t>(v); break;
      case DType::kBool: output.Data<bool>()[i] = v != 0.0; break;
    }
  }
}

}  // namespace kernels
}  // namespace tnp
