// 2-D convolution kernels (float32 and int8-quantized), NCHW / OIHW.
#pragma once

#include "kernels/common.h"
#include "kernels/pack.h"
#include "tensor/ndarray.h"

namespace tnp {
namespace kernels {

/// Float conv2d with groups (groups == channels gives depthwise).
/// `bias` may be undefined; when defined it has shape (out_channels,).
/// `output` must be pre-allocated with Conv2DOutShape(...).
///
/// `packed_weights` is the pre-packed panel form of `weight` (from
/// PackConvWeightsF32) when the compiler prepared one; pass nullptr to pack
/// into arena scratch on the fly (identical panels, identical results).
void Conv2DF32(const NDArray& input, const NDArray& weight, const NDArray& bias,
               NDArray& output, const Conv2DParams& params,
               const PackedMatrix* packed_weights = nullptr);

/// Quantized conv2d: int8 input/weight, optional int32 bias, int8 output.
/// Affine per-tensor quantization:
///   real_out = clamp(round(acc * (s_in*s_w/s_out)) + z_out)
/// where acc accumulates (q_in - z_in)*(q_w - z_w) in int32 — computed via
/// the factorized form (see gemm.h), bit-exact with the direct sum.
void QConv2DS8(const NDArray& input, const NDArray& weight, const NDArray& bias,
               NDArray& output, const Conv2DParams& params, const QuantParams& input_q,
               const QuantParams& weight_q, const QuantParams& output_q,
               const PackedMatrix* packed_weights = nullptr);

/// True when a conv with this many output channels per group dispatches to
/// the packed GEMM path. Below the threshold (depthwise etc.) the direct
/// per-channel path runs and packed weights would go unused — the compiler
/// uses this to skip pre-packing them.
bool Conv2DUsesPackedWeights(std::int64_t co_per_group);

}  // namespace kernels
}  // namespace tnp
