// 2-D convolution kernels (float32 and int8-quantized), NCHW / OIHW.
#pragma once

#include "kernels/common.h"
#include "tensor/ndarray.h"

namespace tnp {
namespace kernels {

/// Float conv2d with groups (groups == channels gives depthwise).
/// `bias` may be undefined; when defined it has shape (out_channels,).
/// `output` must be pre-allocated with Conv2DOutShape(...).
void Conv2DF32(const NDArray& input, const NDArray& weight, const NDArray& bias,
               NDArray& output, const Conv2DParams& params);

/// Quantized conv2d: int8 input/weight, optional int32 bias, int8 output.
/// Affine per-tensor quantization:
///   real_out = clamp(round(acc * (s_in*s_w/s_out)) + z_out)
/// where acc accumulates (q_in - z_in)*(q_w - z_w) in int32.
void QConv2DS8(const NDArray& input, const NDArray& weight, const NDArray& bias,
               NDArray& output, const Conv2DParams& params, const QuantParams& input_q,
               const QuantParams& weight_q, const QuantParams& output_q);

}  // namespace kernels
}  // namespace tnp
