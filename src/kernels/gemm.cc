#include "kernels/gemm.h"

#include <algorithm>
#include <cstring>

#include "support/thread_pool.h"

namespace tnp {
namespace kernels {

namespace {
// Block over k to keep the hot B panel in cache; simple but ~memory-friendly.
constexpr std::int64_t kKBlock = 256;
}  // namespace

void GemmF32(const float* a, const float* b, float* c, std::int64_t m, std::int64_t k,
             std::int64_t n) {
  support::ParallelFor(0, m, [&](std::int64_t i) {
    float* crow = c + i * n;
    std::memset(crow, 0, static_cast<std::size_t>(n) * sizeof(float));
    for (std::int64_t k0 = 0; k0 < k; k0 += kKBlock) {
      const std::int64_t k1 = std::min(k, k0 + kKBlock);
      for (std::int64_t kk = k0; kk < k1; ++kk) {
        const float aik = a[i * k + kk];
        if (aik == 0.0f) continue;
        const float* brow = b + kk * n;
        for (std::int64_t j = 0; j < n; ++j) {
          crow[j] += aik * brow[j];
        }
      }
    }
  }, /*grain_size=*/4);
}

void GemmS8S32(const std::int8_t* a, const std::int8_t* b, std::int32_t* c, std::int64_t m,
               std::int64_t k, std::int64_t n, std::int32_t a_zero, std::int32_t b_zero) {
  support::ParallelFor(0, m, [&](std::int64_t i) {
    std::int32_t* crow = c + i * n;
    std::memset(crow, 0, static_cast<std::size_t>(n) * sizeof(std::int32_t));
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const std::int32_t aik = static_cast<std::int32_t>(a[i * k + kk]) - a_zero;
      if (aik == 0) continue;
      const std::int8_t* brow = b + kk * n;
      for (std::int64_t j = 0; j < n; ++j) {
        crow[j] += aik * (static_cast<std::int32_t>(brow[j]) - b_zero);
      }
    }
  }, /*grain_size=*/4);
}

}  // namespace kernels
}  // namespace tnp
