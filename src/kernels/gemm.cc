#include "kernels/gemm.h"

#include <algorithm>
#include <cstring>

#if defined(__SSE2__) || defined(_M_X64)
#include <emmintrin.h>
#define TNP_GEMM_SSE2 1
#endif

#include "kernels/pack.h"
#include "kernels/scratch.h"
#include "support/thread_pool.h"

namespace tnp {
namespace kernels {

namespace {

// MRxNR register tile over one k-cache block of packed panels. `first` picks
// store vs. accumulate so k-blocks compose without a C pre-pass. UNROLL=2
// walks two k steps per iteration but keeps the two += per accumulator lane
// sequential, so the per-element summation order is identical to UNROLL=1 —
// unroll never changes the f32 result bit pattern.
template <int MR, int NR, int UNROLL>
void MicroKernelF32(const float* ap, const float* bp, std::int64_t kc, float* c,
                    std::int64_t ldc, std::int64_t mr, std::int64_t nr, bool first) {
  float acc[MR * NR] = {};
  std::int64_t kk = 0;
  if constexpr (UNROLL == 2) {
    for (; kk + 1 < kc; kk += 2) {
      const float* arow0 = ap + kk * MR;
      const float* brow0 = bp + kk * NR;
      const float* arow1 = arow0 + MR;
      const float* brow1 = brow0 + NR;
      for (int r = 0; r < MR; ++r) {
        const float a0 = arow0[r];
        const float a1 = arow1[r];
        float* accrow = acc + r * NR;
        for (int j = 0; j < NR; ++j) {
          accrow[j] += a0 * brow0[j];
          accrow[j] += a1 * brow1[j];
        }
      }
    }
  }
  for (; kk < kc; ++kk) {
    const float* arow = ap + kk * MR;
    const float* brow = bp + kk * NR;
    for (int r = 0; r < MR; ++r) {
      const float av = arow[r];
      float* accrow = acc + r * NR;
      for (int j = 0; j < NR; ++j) accrow[j] += av * brow[j];
    }
  }
  if (mr == MR && nr == NR) {
    for (int r = 0; r < MR; ++r) {
      float* crow = c + r * ldc;
      const float* accrow = acc + r * NR;
      if (first) {
        for (int j = 0; j < NR; ++j) crow[j] = accrow[j];
      } else {
        for (int j = 0; j < NR; ++j) crow[j] += accrow[j];
      }
    }
  } else {
    for (std::int64_t r = 0; r < mr; ++r) {
      float* crow = c + r * ldc;
      const float* accrow = acc + r * NR;
      if (first) {
        for (std::int64_t j = 0; j < nr; ++j) crow[j] = accrow[j];
      } else {
        for (std::int64_t j = 0; j < nr; ++j) crow[j] += accrow[j];
      }
    }
  }
}

using MicroKernelF32Fn = void (*)(const float*, const float*, std::int64_t, float*,
                                  std::int64_t, std::int64_t, std::int64_t, bool);

// The pre-instantiated f32 variant set. IsValidGemmConfig admits exactly
// these tiles/unrolls, so a legal config always resolves.
MicroKernelF32Fn SelectMicroKernelF32(const GemmConfig& config) {
  const auto pick = [&]<int MR, int NR>() -> MicroKernelF32Fn {
    return config.unroll == 2 ? MicroKernelF32<MR, NR, 2> : MicroKernelF32<MR, NR, 1>;
  };
  if (config.mr == 4 && config.nr == 8) return pick.operator()<4, 8>();
  if (config.mr == 6 && config.nr == 8) return pick.operator()<6, 8>();
  if (config.mr == 8 && config.nr == 4) return pick.operator()<8, 4>();
  if (config.mr == 4 && config.nr == 16) return pick.operator()<4, 16>();
  TNP_THROW(kRuntimeError) << "no f32 micro-kernel variant for config "
                           << config.ToString();
}

// 4x8 s8 tile over `pairs` k-pairs of pair-interleaved panels (see pack.h).
// The SSE2 path widens each pair to s16 and feeds pmaddwd: one instruction
// computes a(2p)*b(2p) + a(2p+1)*b(2p+1) per s32 lane, so eight madd/add
// pairs per k-pair cover the whole 4x8 tile. Zero-padded pairs contribute 0.
#ifdef TNP_GEMM_SSE2
void MicroKernelS8S32(const std::int8_t* ap, const std::int8_t* bp, std::int64_t pairs,
                      std::int32_t* c, std::int64_t ldc, std::int64_t mr, std::int64_t nr,
                      bool first) {
  static_assert(kGemmMrS8 == 4 && kGemmNrS8 == 8, "SSE2 micro-kernel is fixed at 4x8");
  __m128i acc0l = _mm_setzero_si128(), acc0h = _mm_setzero_si128();
  __m128i acc1l = _mm_setzero_si128(), acc1h = _mm_setzero_si128();
  __m128i acc2l = _mm_setzero_si128(), acc2h = _mm_setzero_si128();
  __m128i acc3l = _mm_setzero_si128(), acc3h = _mm_setzero_si128();
  for (std::int64_t p = 0; p < pairs; ++p) {
    const __m128i braw = _mm_loadu_si128(reinterpret_cast<const __m128i*>(bp + p * 16));
    const __m128i blo = _mm_srai_epi16(_mm_unpacklo_epi8(braw, braw), 8);
    const __m128i bhi = _mm_srai_epi16(_mm_unpackhi_epi8(braw, braw), 8);
    const __m128i araw = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(ap + p * 8));
    const __m128i awide = _mm_srai_epi16(_mm_unpacklo_epi8(araw, araw), 8);
    const __m128i a0 = _mm_shuffle_epi32(awide, 0x00);
    const __m128i a1 = _mm_shuffle_epi32(awide, 0x55);
    const __m128i a2 = _mm_shuffle_epi32(awide, 0xAA);
    const __m128i a3 = _mm_shuffle_epi32(awide, 0xFF);
    acc0l = _mm_add_epi32(acc0l, _mm_madd_epi16(a0, blo));
    acc0h = _mm_add_epi32(acc0h, _mm_madd_epi16(a0, bhi));
    acc1l = _mm_add_epi32(acc1l, _mm_madd_epi16(a1, blo));
    acc1h = _mm_add_epi32(acc1h, _mm_madd_epi16(a1, bhi));
    acc2l = _mm_add_epi32(acc2l, _mm_madd_epi16(a2, blo));
    acc2h = _mm_add_epi32(acc2h, _mm_madd_epi16(a2, bhi));
    acc3l = _mm_add_epi32(acc3l, _mm_madd_epi16(a3, blo));
    acc3h = _mm_add_epi32(acc3h, _mm_madd_epi16(a3, bhi));
  }
  const __m128i accs[8] = {acc0l, acc0h, acc1l, acc1h, acc2l, acc2h, acc3l, acc3h};
  alignas(16) std::int32_t tmp[8];
  for (std::int64_t r = 0; r < mr; ++r) {
    _mm_store_si128(reinterpret_cast<__m128i*>(tmp), accs[r * 2]);
    _mm_store_si128(reinterpret_cast<__m128i*>(tmp + 4), accs[r * 2 + 1]);
    std::int32_t* crow = c + r * ldc;
    if (first) {
      for (std::int64_t j = 0; j < nr; ++j) crow[j] = tmp[j];
    } else {
      for (std::int64_t j = 0; j < nr; ++j) crow[j] += tmp[j];
    }
  }
}
#else
void MicroKernelS8S32(const std::int8_t* ap, const std::int8_t* bp, std::int64_t pairs,
                      std::int32_t* c, std::int64_t ldc, std::int64_t mr, std::int64_t nr,
                      bool first) {
  constexpr int MR = static_cast<int>(kGemmMrS8);
  constexpr int NR = static_cast<int>(kGemmNrS8);
  std::int32_t acc[MR * NR] = {};
  for (std::int64_t p = 0; p < pairs; ++p) {
    const std::int8_t* apair = ap + p * 2 * MR;
    const std::int8_t* bpair = bp + p * 2 * NR;
    for (int r = 0; r < MR; ++r) {
      const std::int32_t a0 = apair[r * 2];
      const std::int32_t a1 = apair[r * 2 + 1];
      std::int32_t* accrow = acc + r * NR;
      for (int j = 0; j < NR; ++j) {
        accrow[j] += a0 * static_cast<std::int32_t>(bpair[j * 2]) +
                     a1 * static_cast<std::int32_t>(bpair[j * 2 + 1]);
      }
    }
  }
  for (std::int64_t r = 0; r < mr; ++r) {
    std::int32_t* crow = c + r * ldc;
    const std::int32_t* accrow = acc + r * NR;
    if (first) {
      for (std::int64_t j = 0; j < nr; ++j) crow[j] = accrow[j];
    } else {
      for (std::int64_t j = 0; j < nr; ++j) crow[j] += accrow[j];
    }
  }
}
#endif

// One row panel's share of C: loop n-cache blocks, k-cache blocks, then NR
// column strips. config.nc is a multiple of NR (IsValidGemmConfig), so strips
// never straddle an n-block and (jc + jr) / NR indexes the column panel
// directly.
void RunRowPanelF32(const float* ap, const float* bp, float* c, std::int64_t ip,
                    std::int64_t m, std::int64_t k, std::int64_t n, std::int64_t ldc,
                    const GemmConfig& cfg, MicroKernelF32Fn micro) {
  const std::int64_t MR = cfg.mr;
  const std::int64_t NR = cfg.nr;
  const std::int64_t mr = std::min(MR, m - ip * MR);
  for (std::int64_t jc = 0; jc < n; jc += cfg.nc) {
    const std::int64_t nc = std::min(cfg.nc, n - jc);
    for (std::int64_t pc = 0; pc < k; pc += cfg.kc) {
      const std::int64_t kc = std::min(cfg.kc, k - pc);
      const bool first = pc == 0;
      const float* a_blk = ap + (ip * k + pc) * MR;
      for (std::int64_t jr = 0; jr < nc; jr += NR) {
        const std::int64_t jp = (jc + jr) / NR;
        const std::int64_t nr = std::min(NR, nc - jr);
        micro(a_blk, bp + (jp * k + pc) * NR, kc, c + ip * MR * ldc + jc + jr, ldc, mr,
              nr, first);
      }
    }
  }
}

// s8 analogue, walking pair-interleaved panels. All k bookkeeping is in pair
// units; config.kc is even (IsValidGemmConfig) so cache blocks stay aligned
// to whole pairs.
void RunRowPanelS8(const std::int8_t* ap, const std::int8_t* bp, std::int32_t* c,
                   std::int64_t ip, std::int64_t m, std::int64_t k2, std::int64_t n,
                   std::int64_t ldc, const GemmConfig& cfg) {
  constexpr std::int64_t MR = kGemmMrS8;
  constexpr std::int64_t NR = kGemmNrS8;
  const std::int64_t pair_kc = cfg.kc / 2;
  const std::int64_t pairs_total = k2 / 2;
  const std::int64_t mr = std::min<std::int64_t>(MR, m - ip * MR);
  for (std::int64_t jc = 0; jc < n; jc += cfg.nc) {
    const std::int64_t nc = std::min(cfg.nc, n - jc);
    for (std::int64_t pc = 0; pc < pairs_total; pc += pair_kc) {
      const std::int64_t pn = std::min(pair_kc, pairs_total - pc);
      const bool first = pc == 0;
      const std::int8_t* a_blk = ap + ip * MR * k2 + pc * 2 * MR;
      for (std::int64_t jr = 0; jr < nc; jr += NR) {
        const std::int64_t jp = (jc + jr) / NR;
        const std::int64_t nr = std::min<std::int64_t>(NR, nc - jr);
        MicroKernelS8S32(a_blk, bp + jp * NR * k2 + pc * 2 * NR, pn,
                         c + ip * MR * ldc + jc + jr, ldc, mr, nr, first);
      }
    }
  }
}

}  // namespace

void GemmPackedF32(const float* ap, const float* bp, float* c, std::int64_t m,
                   std::int64_t k, std::int64_t n, std::int64_t ldc, bool parallel,
                   const GemmConfig& config) {
  if (m <= 0 || n <= 0) return;
  if (k <= 0) {
    for (std::int64_t i = 0; i < m; ++i) {
      std::memset(c + i * ldc, 0, static_cast<std::size_t>(n) * sizeof(float));
    }
    return;
  }
  TNP_CHECK(IsValidGemmConfig(config, DType::kFloat32))
      << "illegal f32 GEMM config " << config.ToString();
  const MicroKernelF32Fn micro = SelectMicroKernelF32(config);
  const std::int64_t num_panels = (m + config.mr - 1) / config.mr;
  auto panel = [&](std::int64_t ip) {
    RunRowPanelF32(ap, bp, c, ip, m, k, n, ldc, config, micro);
  };
  if (parallel && num_panels > 1) {
    support::ParallelFor(0, num_panels, panel, /*grain_size=*/1);
  } else {
    for (std::int64_t ip = 0; ip < num_panels; ++ip) panel(ip);
  }
}

void GemmPackedS8S32(const std::int8_t* ap, const std::int8_t* bp, std::int32_t* c,
                     std::int64_t m, std::int64_t k, std::int64_t n, std::int64_t ldc,
                     bool parallel, const GemmConfig& config) {
  if (m <= 0 || n <= 0) return;
  if (k <= 0) {
    for (std::int64_t i = 0; i < m; ++i) {
      std::memset(c + i * ldc, 0, static_cast<std::size_t>(n) * sizeof(std::int32_t));
    }
    return;
  }
  TNP_CHECK(IsValidGemmConfig(config, DType::kInt8))
      << "illegal s8 GEMM config " << config.ToString();
  const std::int64_t k2 = PackedKS8(k);
  const std::int64_t num_panels = (m + kGemmMrS8 - 1) / kGemmMrS8;
  auto panel = [&](std::int64_t ip) {
    RunRowPanelS8(ap, bp, c, ip, m, k2, n, ldc, config);
  };
  if (parallel && num_panels > 1) {
    support::ParallelFor(0, num_panels, panel, /*grain_size=*/1);
  } else {
    for (std::int64_t ip = 0; ip < num_panels; ++ip) panel(ip);
  }
}

void ApplyZeroPointCorrection(std::int32_t* c, std::int64_t m, std::int64_t n,
                              std::int64_t ldc, std::int64_t k, std::int32_t a_zero,
                              std::int32_t b_zero, const std::int32_t* a_row_sums,
                              const std::int32_t* b_col_sums) {
  if (a_zero == 0 && b_zero == 0) return;
  const std::int32_t kzz = static_cast<std::int32_t>(k) * a_zero * b_zero;
  for (std::int64_t i = 0; i < m; ++i) {
    std::int32_t* crow = c + i * ldc;
    const std::int32_t row_term =
        kzz - (b_zero != 0 && a_row_sums != nullptr ? b_zero * a_row_sums[i] : 0);
    if (a_zero != 0 && b_col_sums != nullptr) {
      for (std::int64_t j = 0; j < n; ++j) crow[j] += row_term - a_zero * b_col_sums[j];
    } else if (row_term != 0) {
      for (std::int64_t j = 0; j < n; ++j) crow[j] += row_term;
    }
  }
}

void GemmF32(const float* a, const float* b, float* c, std::int64_t m, std::int64_t k,
             std::int64_t n) {
  if (m <= 0 || n <= 0) return;
  ScratchFrame frame;
  float* ap = frame.Alloc<float>(PackedExtent(m, kGemmMrF32) * std::max<std::int64_t>(k, 1));
  float* bp = frame.Alloc<float>(PackedExtent(n, kGemmNrF32) * std::max<std::int64_t>(k, 1));
  PackPanelsAF32(a, m, k, k, ap);
  PackPanelsBF32(b, k, n, n, bp);
  GemmPackedF32(ap, bp, c, m, k, n, n, /*parallel=*/true);
}

void GemmS8S32(const std::int8_t* a, const std::int8_t* b, std::int32_t* c, std::int64_t m,
               std::int64_t k, std::int64_t n, std::int32_t a_zero, std::int32_t b_zero) {
  if (m <= 0 || n <= 0) return;
  ScratchFrame frame;
  std::int8_t* ap = frame.Alloc<std::int8_t>(PackedExtent(m, kGemmMrS8) *
                                             std::max<std::int64_t>(PackedKS8(k), 2));
  std::int8_t* bp = frame.Alloc<std::int8_t>(PackedExtent(n, kGemmNrS8) *
                                             std::max<std::int64_t>(PackedKS8(k), 2));
  std::int32_t* row_sums = frame.Alloc<std::int32_t>(m);
  std::int32_t* col_sums = frame.Alloc<std::int32_t>(n);
  PackPanelsAS8(a, m, k, k, ap, row_sums);
  PackPanelsBS8(b, k, n, n, bp, col_sums);
  GemmPackedS8S32(ap, bp, c, m, k, n, n, /*parallel=*/true);
  ApplyZeroPointCorrection(c, m, n, n, k, a_zero, b_zero, row_sums, col_sums);
}

void GemmF32Reference(const float* a, const float* b, float* c, std::int64_t m,
                      std::int64_t k, std::int64_t n) {
  for (std::int64_t i = 0; i < m; ++i) {
    float* crow = c + i * n;
    std::memset(crow, 0, static_cast<std::size_t>(n) * sizeof(float));
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float aik = a[i * k + kk];
      const float* brow = b + kk * n;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  }
}

void GemmF32BlockedReference(const float* a, const float* b, float* c, std::int64_t m,
                             std::int64_t k, std::int64_t n, std::int64_t kc) {
  TNP_CHECK_GT(kc, 0);
  for (std::int64_t i = 0; i < m; ++i) {
    float* crow = c + i * n;
    if (k <= 0) {
      std::memset(crow, 0, static_cast<std::size_t>(n) * sizeof(float));
      continue;
    }
    for (std::int64_t j = 0; j < n; ++j) {
      float total = 0.0f;
      for (std::int64_t pc = 0; pc < k; pc += kc) {
        const std::int64_t kb = std::min(kc, k - pc);
        float block = 0.0f;
        for (std::int64_t kk = pc; kk < pc + kb; ++kk) {
          block += a[i * k + kk] * b[kk * n + j];
        }
        total = pc == 0 ? block : total + block;
      }
      crow[j] = total;
    }
  }
}

void GemmS8S32Reference(const std::int8_t* a, const std::int8_t* b, std::int32_t* c,
                        std::int64_t m, std::int64_t k, std::int64_t n,
                        std::int32_t a_zero, std::int32_t b_zero) {
  for (std::int64_t i = 0; i < m; ++i) {
    std::int32_t* crow = c + i * n;
    std::memset(crow, 0, static_cast<std::size_t>(n) * sizeof(std::int32_t));
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const std::int32_t aik = static_cast<std::int32_t>(a[i * k + kk]) - a_zero;
      const std::int8_t* brow = b + kk * n;
      for (std::int64_t j = 0; j < n; ++j) {
        crow[j] += aik * (static_cast<std::int32_t>(brow[j]) - b_zero);
      }
    }
  }
}

const char* GemmIsaName() {
#ifdef TNP_GEMM_SSE2
  return "sse2";
#else
  return "scalar";
#endif
}

}  // namespace kernels
}  // namespace tnp
