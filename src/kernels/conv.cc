#include "kernels/conv.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "kernels/gemm.h"
#include "kernels/instrument.h"
#include "support/thread_pool.h"

namespace tnp {
namespace kernels {

namespace {

// Gather one group's input patch matrix: rows = CI_g*KH*KW, cols = OH*OW.
// Out-of-bounds (padding) positions contribute `pad_value`.
template <typename T>
void Im2Col(const T* input, std::int64_t ci_g, std::int64_t in_h, std::int64_t in_w,
            std::int64_t kernel_h, std::int64_t kernel_w, std::int64_t out_h, std::int64_t out_w,
            const Conv2DParams& p, T pad_value, T* column) {
  for (std::int64_t c = 0; c < ci_g; ++c) {
    for (std::int64_t kh = 0; kh < kernel_h; ++kh) {
      for (std::int64_t kw = 0; kw < kernel_w; ++kw) {
        T* col_row = column + ((c * kernel_h + kh) * kernel_w + kw) * out_h * out_w;
        for (std::int64_t oh = 0; oh < out_h; ++oh) {
          const std::int64_t ih = oh * p.stride_h - p.pad_h + kh * p.dilation_h;
          if (ih < 0 || ih >= in_h) {
            std::fill(col_row + oh * out_w, col_row + (oh + 1) * out_w, pad_value);
            continue;
          }
          const T* in_row = input + (c * in_h + ih) * in_w;
          for (std::int64_t ow = 0; ow < out_w; ++ow) {
            const std::int64_t iw = ow * p.stride_w - p.pad_w + kw * p.dilation_w;
            col_row[oh * out_w + ow] = (iw < 0 || iw >= in_w) ? pad_value : in_row[iw];
          }
        }
      }
    }
  }
}

}  // namespace

void Conv2DF32(const NDArray& input, const NDArray& weight, const NDArray& bias,
               NDArray& output, const Conv2DParams& p) {
  TNP_KERNEL_SPAN("Conv2DF32");
  const Shape expected = Conv2DOutShape(input.shape(), weight.shape(), p);
  TNP_CHECK(output.shape() == expected)
      << "conv2d output shape " << output.shape().ToString() << " != " << expected.ToString();

  const std::int64_t batch = input.shape()[0];
  const std::int64_t ci = input.shape()[1];
  const std::int64_t in_h = input.shape()[2];
  const std::int64_t in_w = input.shape()[3];
  const std::int64_t co = weight.shape()[0];
  const std::int64_t ci_g = weight.shape()[1];
  const std::int64_t kernel_h = weight.shape()[2];
  const std::int64_t kernel_w = weight.shape()[3];
  const std::int64_t out_h = expected[2];
  const std::int64_t out_w = expected[3];
  const std::int64_t co_g = co / p.groups;
  TNP_CHECK_EQ(co % p.groups, 0);

  const float* in_data = input.Data<float>();
  const float* w_data = weight.Data<float>();
  const float* bias_data = bias.defined() ? bias.Data<float>() : nullptr;
  float* out_data = output.Data<float>();

  const std::int64_t col_rows = ci_g * kernel_h * kernel_w;
  const std::int64_t col_cols = out_h * out_w;
  std::vector<float> column(static_cast<std::size_t>(col_rows * col_cols));

  for (std::int64_t n = 0; n < batch; ++n) {
    for (std::int64_t g = 0; g < p.groups; ++g) {
      const float* in_group = in_data + (n * ci + g * ci_g) * in_h * in_w;
      Im2Col(in_group, ci_g, in_h, in_w, kernel_h, kernel_w, out_h, out_w, p, 0.0f,
             column.data());
      const float* w_group = w_data + g * co_g * col_rows;
      float* out_group = out_data + (n * co + g * co_g) * col_cols;
      GemmF32(w_group, column.data(), out_group, co_g, col_rows, col_cols);
    }
  }

  if (bias_data != nullptr) {
    TNP_CHECK_EQ(bias.NumElements(), co);
    support::ParallelFor(0, batch * co, [&](std::int64_t nc) {
      const float b = bias_data[nc % co];
      float* row = out_data + nc * col_cols;
      for (std::int64_t i = 0; i < col_cols; ++i) row[i] += b;
    }, /*grain_size=*/8);
  }
}

void QConv2DS8(const NDArray& input, const NDArray& weight, const NDArray& bias,
               NDArray& output, const Conv2DParams& p, const QuantParams& input_q,
               const QuantParams& weight_q, const QuantParams& output_q) {
  TNP_KERNEL_SPAN("QConv2DS8");
  TNP_CHECK(input_q.valid && weight_q.valid && output_q.valid);
  const Shape expected = Conv2DOutShape(input.shape(), weight.shape(), p);
  TNP_CHECK(output.shape() == expected);

  const std::int64_t batch = input.shape()[0];
  const std::int64_t ci = input.shape()[1];
  const std::int64_t in_h = input.shape()[2];
  const std::int64_t in_w = input.shape()[3];
  const std::int64_t co = weight.shape()[0];
  const std::int64_t ci_g = weight.shape()[1];
  const std::int64_t kernel_h = weight.shape()[2];
  const std::int64_t kernel_w = weight.shape()[3];
  const std::int64_t out_h = expected[2];
  const std::int64_t out_w = expected[3];
  const std::int64_t co_g = co / p.groups;

  const std::int8_t* in_data = input.Data<std::int8_t>();
  const std::int8_t* w_data = weight.Data<std::int8_t>();
  const std::int32_t* bias_data = bias.defined() ? bias.Data<std::int32_t>() : nullptr;
  std::int8_t* out_data = output.Data<std::int8_t>();

  const std::int64_t col_rows = ci_g * kernel_h * kernel_w;
  const std::int64_t col_cols = out_h * out_w;
  std::vector<std::int8_t> column(static_cast<std::size_t>(col_rows * col_cols));
  std::vector<std::int32_t> acc(static_cast<std::size_t>(co_g * col_cols));

  // Single real multiplier mapping the int32 accumulator back to int8 space.
  const float multiplier = input_q.scale * weight_q.scale / output_q.scale;

  for (std::int64_t n = 0; n < batch; ++n) {
    for (std::int64_t g = 0; g < p.groups; ++g) {
      const std::int8_t* in_group = in_data + (n * ci + g * ci_g) * in_h * in_w;
      // Padding positions must contribute zero *after* zero-point shift, so
      // pad with the input zero-point itself.
      Im2Col(in_group, ci_g, in_h, in_w, kernel_h, kernel_w, out_h, out_w, p,
             static_cast<std::int8_t>(input_q.zero_point), column.data());
      const std::int8_t* w_group = w_data + g * co_g * col_rows;
      GemmS8S32(w_group, column.data(), acc.data(), co_g, col_rows, col_cols,
                weight_q.zero_point, input_q.zero_point);

      std::int8_t* out_group = out_data + (n * co + g * co_g) * col_cols;
      support::ParallelFor(0, co_g, [&](std::int64_t oc) {
        const std::int32_t b =
            bias_data != nullptr ? bias_data[g * co_g + oc] : 0;
        const std::int32_t* acc_row = acc.data() + oc * col_cols;
        std::int8_t* out_row = out_group + oc * col_cols;
        for (std::int64_t i = 0; i < col_cols; ++i) {
          const float scaled =
              std::nearbyintf(static_cast<float>(acc_row[i] + b) * multiplier) +
              static_cast<float>(output_q.zero_point);
          out_row[i] = static_cast<std::int8_t>(std::clamp(scaled, -128.0f, 127.0f));
        }
      }, /*grain_size=*/4);
    }
  }
}

}  // namespace kernels
}  // namespace tnp
