#include "kernels/conv.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "kernels/gemm.h"
#include "kernels/instrument.h"
#include "kernels/scratch.h"
#include "support/thread_pool.h"

namespace tnp {
namespace kernels {

namespace {

// The s8 im2col packer keeps the pmaddwd path's fixed column-panel width;
// the f32 packer is templated and dispatched on the tuned config's nr.
constexpr int kConvNrS8 = static_cast<int>(kGemmNrS8);

// Below this many output channels per group the GEMM tile is mostly padding
// (depthwise has co_g == 1); a direct per-channel convolution with no packing
// or scratch wins.
constexpr std::int64_t kDirectPathMaxCoG = 4;

// Geometry of one conv call. The fused im2col packing reads from a "padded
// view" of one group's input — either the input itself (no spatial padding)
// or a zero-point-padded scratch copy — so the hot loop is a single
// offset-add per element with no bounds checks:
//
//   patch(kk, pix) = view[koff[kk] + pix_off[pix]]
struct ConvGeometry {
  std::int64_t k = 0;           ///< ci_g * kernel_h * kernel_w
  std::int64_t npix = 0;        ///< out_h * out_w
  std::int64_t view_h = 0;      ///< padded view height
  std::int64_t view_w = 0;      ///< padded view width
  bool needs_copy = false;      ///< view != raw input (padding present)
  const std::int64_t* koff;     ///< [k] channel-plane + kernel-tap offset
  const std::int64_t* pix_off;  ///< [npix] output-pixel offset
};

ConvGeometry BuildGeometry(ScratchFrame& frame, std::int64_t ci_g, std::int64_t in_h,
                           std::int64_t in_w, std::int64_t kernel_h, std::int64_t kernel_w,
                           std::int64_t out_h, std::int64_t out_w, const Conv2DParams& p) {
  ConvGeometry geo;
  geo.k = ci_g * kernel_h * kernel_w;
  geo.npix = out_h * out_w;
  geo.needs_copy = p.pad_h != 0 || p.pad_w != 0;
  if (geo.needs_copy) {
    // Exact extent the kernel footprint touches in padded coordinates.
    geo.view_h = (out_h - 1) * p.stride_h + (kernel_h - 1) * p.dilation_h + 1;
    geo.view_w = (out_w - 1) * p.stride_w + (kernel_w - 1) * p.dilation_w + 1;
  } else {
    geo.view_h = in_h;
    geo.view_w = in_w;
  }
  std::int64_t* koff = frame.Alloc<std::int64_t>(geo.k);
  std::int64_t* pix_off = frame.Alloc<std::int64_t>(geo.npix);
  std::int64_t kk = 0;
  for (std::int64_t c = 0; c < ci_g; ++c) {
    for (std::int64_t kh = 0; kh < kernel_h; ++kh) {
      for (std::int64_t kw = 0; kw < kernel_w; ++kw, ++kk) {
        koff[kk] = (c * geo.view_h + kh * p.dilation_h) * geo.view_w + kw * p.dilation_w;
      }
    }
  }
  for (std::int64_t pix = 0; pix < geo.npix; ++pix) {
    pix_off[pix] = (pix / out_w) * p.stride_h * geo.view_w + (pix % out_w) * p.stride_w;
  }
  geo.koff = koff;
  geo.pix_off = pix_off;
  return geo;
}

// Copy one group's input into the zero-point-padded view.
template <typename T>
void FillPaddedView(const T* in_group, std::int64_t ci_g, std::int64_t in_h,
                    std::int64_t in_w, const ConvGeometry& geo, const Conv2DParams& p,
                    T pad_value, T* view) {
  for (std::int64_t c = 0; c < ci_g; ++c) {
    const T* src_plane = in_group + c * in_h * in_w;
    T* dst_plane = view + c * geo.view_h * geo.view_w;
    for (std::int64_t vh = 0; vh < geo.view_h; ++vh) {
      T* dst_row = dst_plane + vh * geo.view_w;
      const std::int64_t ih = vh - p.pad_h;
      if (ih < 0 || ih >= in_h) {
        std::fill(dst_row, dst_row + geo.view_w, pad_value);
        continue;
      }
      const T* src_row = src_plane + ih * in_w;
      const std::int64_t left = std::min(p.pad_w, geo.view_w);
      const std::int64_t copy =
          std::max<std::int64_t>(0, std::min(geo.view_w - p.pad_w, in_w));
      std::fill(dst_row, dst_row + left, pad_value);
      std::memcpy(dst_row + left, src_row, static_cast<std::size_t>(copy) * sizeof(T));
      std::fill(dst_row + left + copy, dst_row + geo.view_w, pad_value);
    }
  }
}

// Fused im2col + B-panel packing from the padded view: writes one group's
// logical patch matrix (k x npix) straight into NR column panels. Templated
// on the panel width so every tuned nr keeps the unrolled full-panel fast
// path.
template <int NR>
void PackIm2ColPanelsImpl(const float* view, const ConvGeometry& geo, float* out) {
  const std::int64_t k = geo.k;
  const std::int64_t npix = geo.npix;
  for (std::int64_t jp = 0; jp * NR < npix; ++jp) {
    const std::int64_t nr = std::min<std::int64_t>(NR, npix - jp * NR);
    const std::int64_t* poff = geo.pix_off + jp * NR;
    float* panel = out + jp * NR * k;
    if (nr == NR) {
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const float* src = view + geo.koff[kk];
        float* row = panel + kk * NR;
        for (int j = 0; j < NR; ++j) row[j] = src[poff[j]];
      }
    } else {
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const float* src = view + geo.koff[kk];
        float* row = panel + kk * NR;
        std::int64_t j = 0;
        for (; j < nr; ++j) row[j] = src[poff[j]];
        for (; j < NR; ++j) row[j] = 0.0f;
      }
    }
  }
}

void PackIm2ColPanels(const float* view, const ConvGeometry& geo, float* out,
                      std::int64_t nr) {
  switch (nr) {
    case 4: PackIm2ColPanelsImpl<4>(view, geo, out); return;
    case 8: PackIm2ColPanelsImpl<8>(view, geo, out); return;
    case 16: PackIm2ColPanelsImpl<16>(view, geo, out); return;
    default:
      TNP_THROW(kRuntimeError) << "no im2col packer for column-panel width " << nr;
  }
}

// s8 variant writing pair-interleaved panels (see pack.h). Also accumulates
// per-column sums for the zero-point correction — over real columns,
// including padding positions (which hold the input zero point, see
// QConv2DS8); packed zero padding contributes 0 to both products and sums.
void PackIm2ColPanelsS8(const std::int8_t* view, const ConvGeometry& geo,
                        std::int8_t* out, std::int32_t* col_sums) {
  constexpr int NR = kConvNrS8;
  const std::int64_t k = geo.k;
  const std::int64_t k2 = PackedKS8(k);
  const std::int64_t npix = geo.npix;
  for (std::int64_t jp = 0; jp * NR < npix; ++jp) {
    const std::int64_t nr = std::min<std::int64_t>(NR, npix - jp * NR);
    const std::int64_t* poff = geo.pix_off + jp * NR;
    std::int8_t* panel = out + jp * NR * k2;
    for (std::int64_t p = 0; p < k2 / 2; ++p) {
      const std::int64_t kk0 = 2 * p;
      const bool has1 = kk0 + 1 < k;
      const std::int8_t* src0 = view + geo.koff[kk0];
      std::int8_t* dst = panel + p * 2 * NR;
      if (nr == NR && has1) {
        const std::int8_t* src1 = view + geo.koff[kk0 + 1];
        for (int j = 0; j < NR; ++j) {
          dst[j * 2 + 0] = src0[poff[j]];
          dst[j * 2 + 1] = src1[poff[j]];
        }
      } else {
        const std::int8_t* src1 = has1 ? view + geo.koff[kk0 + 1] : nullptr;
        std::int64_t j = 0;
        for (; j < nr; ++j) {
          dst[j * 2 + 0] = src0[poff[j]];
          dst[j * 2 + 1] = has1 ? src1[poff[j]] : std::int8_t{0};
        }
        for (; j < NR; ++j) {
          dst[j * 2 + 0] = 0;
          dst[j * 2 + 1] = 0;
        }
      }
    }
    if (col_sums != nullptr) {
      std::int32_t* sums = col_sums + jp * NR;
      for (std::int64_t j = 0; j < nr; ++j) sums[j] = 0;
      for (std::int64_t p = 0; p < k2 / 2; ++p) {
        const std::int8_t* dst = panel + p * 2 * NR;
        for (std::int64_t j = 0; j < nr; ++j) sums[j] += dst[j * 2] + dst[j * 2 + 1];
      }
    }
  }
}

// Bounds of the output region whose kernel footprint never leaves the input
// (the checked border loop only runs outside [lo, hi)).
struct InteriorRange {
  std::int64_t lo = 0;
  std::int64_t hi = 0;
};

InteriorRange ComputeInterior(std::int64_t out_extent, std::int64_t in_extent,
                              std::int64_t kernel, std::int64_t stride, std::int64_t pad,
                              std::int64_t dilation) {
  InteriorRange r;
  r.lo = std::min(out_extent, (pad + stride - 1) / stride);
  const std::int64_t last_tap = (kernel - 1) * dilation;
  const std::int64_t max_o = (in_extent - 1 - last_tap + pad) / stride;
  r.hi = std::max(r.lo, std::min(out_extent, max_o + 1));
  return r;
}

void ValidatePackedConvWeights(const PackedMatrix& packed, DType dtype, std::int64_t co_g,
                               std::int64_t k, std::int64_t groups) {
  TNP_CHECK(packed.side == PackedMatrix::Side::kA);
  TNP_CHECK(packed.dtype == dtype);
  TNP_CHECK_EQ(packed.rows, co_g);
  TNP_CHECK_EQ(packed.cols, k);
  TNP_CHECK_EQ(packed.groups, groups);
}

}  // namespace

bool Conv2DUsesPackedWeights(std::int64_t co_per_group) {
  return co_per_group >= kDirectPathMaxCoG;
}

void Conv2DF32(const NDArray& input, const NDArray& weight, const NDArray& bias,
               NDArray& output, const Conv2DParams& p,
               const PackedMatrix* packed_weights) {
  TNP_KERNEL_SPAN("Conv2DF32");
  const Shape expected = Conv2DOutShape(input.shape(), weight.shape(), p);
  TNP_CHECK(output.shape() == expected)
      << "conv2d output shape " << output.shape().ToString() << " != " << expected.ToString();

  const std::int64_t batch = input.shape()[0];
  const std::int64_t ci = input.shape()[1];
  const std::int64_t in_h = input.shape()[2];
  const std::int64_t in_w = input.shape()[3];
  const std::int64_t co = weight.shape()[0];
  const std::int64_t ci_g = weight.shape()[1];
  const std::int64_t kernel_h = weight.shape()[2];
  const std::int64_t kernel_w = weight.shape()[3];
  const std::int64_t out_h = expected[2];
  const std::int64_t out_w = expected[3];
  const std::int64_t co_g = co / p.groups;
  TNP_CHECK_EQ(co % p.groups, 0);

  const float* in_data = input.Data<float>();
  const float* w_data = weight.Data<float>();
  const float* bias_data = bias.defined() ? bias.Data<float>() : nullptr;
  float* out_data = output.Data<float>();

  const std::int64_t k = ci_g * kernel_h * kernel_w;
  const std::int64_t npix = out_h * out_w;

  if (co_g < kDirectPathMaxCoG) {
    // Depthwise / few-channel groups: the GEMM tile would be mostly padding.
    // Compute each output plane directly, with an unchecked interior loop and
    // a bounds-checked border.
    const InteriorRange ohr =
        ComputeInterior(out_h, in_h, kernel_h, p.stride_h, p.pad_h, p.dilation_h);
    const InteriorRange owr =
        ComputeInterior(out_w, in_w, kernel_w, p.stride_w, p.pad_w, p.dilation_w);
    support::ParallelFor(0, batch * co, [&](std::int64_t idx) {
      const std::int64_t n = idx / co;
      const std::int64_t oc = idx % co;
      const std::int64_t g = oc / co_g;
      const float* w_oc = w_data + oc * k;
      const float* in_group = in_data + (n * ci + g * ci_g) * in_h * in_w;
      float* out_plane = out_data + idx * npix;
      const float b = bias_data != nullptr ? bias_data[oc] : 0.0f;
      auto checked_pixel = [&](std::int64_t oh, std::int64_t ow) {
        float acc = b;
        for (std::int64_t c = 0; c < ci_g; ++c) {
          const float* plane = in_group + c * in_h * in_w;
          for (std::int64_t kh = 0; kh < kernel_h; ++kh) {
            const std::int64_t ih = oh * p.stride_h - p.pad_h + kh * p.dilation_h;
            if (ih < 0 || ih >= in_h) continue;
            const float* in_row = plane + ih * in_w;
            const float* w_row = w_oc + (c * kernel_h + kh) * kernel_w;
            for (std::int64_t kw = 0; kw < kernel_w; ++kw) {
              const std::int64_t iw = ow * p.stride_w - p.pad_w + kw * p.dilation_w;
              if (iw < 0 || iw >= in_w) continue;
              acc += in_row[iw] * w_row[kw];
            }
          }
        }
        out_plane[oh * out_w + ow] = acc;
      };
      for (std::int64_t oh = 0; oh < out_h; ++oh) {
        const bool row_interior = oh >= ohr.lo && oh < ohr.hi;
        std::int64_t ow = 0;
        if (row_interior) {
          for (; ow < owr.lo; ++ow) checked_pixel(oh, ow);
          const float* in_base =
              in_group + (oh * p.stride_h - p.pad_h) * in_w - p.pad_w;
          for (; ow < owr.hi; ++ow) {
            const float* in_pix = in_base + ow * p.stride_w;
            float acc = b;
            const float* w_ptr = w_oc;
            for (std::int64_t c = 0; c < ci_g; ++c) {
              const float* plane = in_pix + c * in_h * in_w;
              for (std::int64_t kh = 0; kh < kernel_h; ++kh) {
                const float* in_row = plane + kh * p.dilation_h * in_w;
                for (std::int64_t kw = 0; kw < kernel_w; ++kw) {
                  acc += in_row[kw * p.dilation_w] * *w_ptr++;
                }
              }
            }
            out_plane[oh * out_w + ow] = acc;
          }
        }
        for (; ow < out_w; ++ow) checked_pixel(oh, ow);
      }
    }, /*grain_size=*/1);
    return;
  }

  ScratchFrame frame;
  const ConvGeometry geo =
      BuildGeometry(frame, ci_g, in_h, in_w, kernel_h, kernel_w, out_h, out_w, p);

  // Pre-packed weights carry the tuned schedule they were packed under; the
  // scratch fallback packs (and runs) the untuned default.
  const GemmConfig cfg =
      packed_weights != nullptr ? packed_weights->config : GemmConfig::DefaultF32();
  const std::int64_t group_stride = PackedExtent(co_g, cfg.mr) * k;
  const float* wpanels;
  if (packed_weights != nullptr) {
    ValidatePackedConvWeights(*packed_weights, DType::kFloat32, co_g, k, p.groups);
    wpanels = packed_weights->data.Data<float>();
  } else {
    float* scratch_panels = frame.Alloc<float>(p.groups * group_stride);
    for (std::int64_t g = 0; g < p.groups; ++g) {
      PackPanelsAF32(w_data + g * co_g * k, co_g, k, k, scratch_panels + g * group_stride,
                     cfg.mr);
    }
    CountWeightPack(p.groups * group_stride * static_cast<std::int64_t>(sizeof(float)));
    wpanels = scratch_panels;
  }

  float* view_buf =
      geo.needs_copy ? frame.Alloc<float>(ci_g * geo.view_h * geo.view_w) : nullptr;
  float* bpanels = frame.Alloc<float>(PackedExtent(npix, cfg.nr) * k);
  for (std::int64_t n = 0; n < batch; ++n) {
    for (std::int64_t g = 0; g < p.groups; ++g) {
      const float* in_group = in_data + (n * ci + g * ci_g) * in_h * in_w;
      const float* view = in_group;
      if (geo.needs_copy) {
        FillPaddedView(in_group, ci_g, in_h, in_w, geo, p, 0.0f, view_buf);
        view = view_buf;
      }
      PackIm2ColPanels(view, geo, bpanels, cfg.nr);
      float* out_group = out_data + (n * co + g * co_g) * npix;
      GemmPackedF32(wpanels + g * group_stride, bpanels, out_group, co_g, k, npix, npix,
                    /*parallel=*/true, cfg);
    }
  }

  if (bias_data != nullptr) {
    TNP_CHECK_EQ(bias.NumElements(), co);
    support::ParallelFor(0, batch * co, [&](std::int64_t nc) {
      const float b = bias_data[nc % co];
      float* row = out_data + nc * npix;
      for (std::int64_t i = 0; i < npix; ++i) row[i] += b;
    }, /*grain_size=*/8);
  }
}

void QConv2DS8(const NDArray& input, const NDArray& weight, const NDArray& bias,
               NDArray& output, const Conv2DParams& p, const QuantParams& input_q,
               const QuantParams& weight_q, const QuantParams& output_q,
               const PackedMatrix* packed_weights) {
  TNP_KERNEL_SPAN("QConv2DS8");
  TNP_CHECK(input_q.valid && weight_q.valid && output_q.valid);
  const Shape expected = Conv2DOutShape(input.shape(), weight.shape(), p);
  TNP_CHECK(output.shape() == expected);

  const std::int64_t batch = input.shape()[0];
  const std::int64_t ci = input.shape()[1];
  const std::int64_t in_h = input.shape()[2];
  const std::int64_t in_w = input.shape()[3];
  const std::int64_t co = weight.shape()[0];
  const std::int64_t ci_g = weight.shape()[1];
  const std::int64_t kernel_h = weight.shape()[2];
  const std::int64_t kernel_w = weight.shape()[3];
  const std::int64_t out_h = expected[2];
  const std::int64_t out_w = expected[3];
  const std::int64_t co_g = co / p.groups;
  TNP_CHECK_EQ(co % p.groups, 0);

  const std::int8_t* in_data = input.Data<std::int8_t>();
  const std::int8_t* w_data = weight.Data<std::int8_t>();
  const std::int32_t* bias_data = bias.defined() ? bias.Data<std::int32_t>() : nullptr;
  std::int8_t* out_data = output.Data<std::int8_t>();

  const std::int64_t k = ci_g * kernel_h * kernel_w;
  const std::int64_t npix = out_h * out_w;

  // Single real multiplier mapping the int32 accumulator back to int8 space.
  const float multiplier = input_q.scale * weight_q.scale / output_q.scale;
  const std::int32_t in_zp = input_q.zero_point;
  const std::int32_t w_zp = weight_q.zero_point;
  const float out_zp = static_cast<float>(output_q.zero_point);

  if (co_g < kDirectPathMaxCoG) {
    // Direct path (depthwise etc.): padding contributes (z_in - z_in) = 0,
    // so out-of-bounds taps are simply skipped in the checked border loop —
    // exact; the interior loop needs no checks at all.
    const InteriorRange ohr =
        ComputeInterior(out_h, in_h, kernel_h, p.stride_h, p.pad_h, p.dilation_h);
    const InteriorRange owr =
        ComputeInterior(out_w, in_w, kernel_w, p.stride_w, p.pad_w, p.dilation_w);
    support::ParallelFor(0, batch * co, [&](std::int64_t idx) {
      const std::int64_t n = idx / co;
      const std::int64_t oc = idx % co;
      const std::int64_t g = oc / co_g;
      const std::int8_t* w_oc = w_data + oc * k;
      const std::int8_t* in_group = in_data + (n * ci + g * ci_g) * in_h * in_w;
      std::int8_t* out_plane = out_data + idx * npix;
      const std::int32_t b = bias_data != nullptr ? bias_data[oc] : 0;
      std::int32_t w_sum = 0;
      for (std::int64_t t = 0; t < k; ++t) w_sum += w_oc[t];
      const std::int32_t zp_const =
          static_cast<std::int32_t>(k) * in_zp * w_zp - in_zp * w_sum;
      auto requantize = [&](std::int32_t acc) {
        const float scaled =
            std::nearbyintf(static_cast<float>(acc + b) * multiplier) + out_zp;
        return static_cast<std::int8_t>(std::clamp(scaled, -128.0f, 127.0f));
      };
      auto checked_pixel = [&](std::int64_t oh, std::int64_t ow) {
        std::int32_t acc = 0;
        for (std::int64_t c = 0; c < ci_g; ++c) {
          const std::int8_t* plane = in_group + c * in_h * in_w;
          for (std::int64_t kh = 0; kh < kernel_h; ++kh) {
            const std::int64_t ih = oh * p.stride_h - p.pad_h + kh * p.dilation_h;
            if (ih < 0 || ih >= in_h) continue;
            const std::int8_t* in_row = plane + ih * in_w;
            const std::int8_t* w_row = w_oc + (c * kernel_h + kh) * kernel_w;
            for (std::int64_t kw = 0; kw < kernel_w; ++kw) {
              const std::int64_t iw = ow * p.stride_w - p.pad_w + kw * p.dilation_w;
              if (iw < 0 || iw >= in_w) continue;
              acc += (static_cast<std::int32_t>(in_row[iw]) - in_zp) *
                     (static_cast<std::int32_t>(w_row[kw]) - w_zp);
            }
          }
        }
        out_plane[oh * out_w + ow] = requantize(acc);
      };
      for (std::int64_t oh = 0; oh < out_h; ++oh) {
        const bool row_interior = oh >= ohr.lo && oh < ohr.hi;
        std::int64_t ow = 0;
        if (row_interior) {
          for (; ow < owr.lo; ++ow) checked_pixel(oh, ow);
          const std::int8_t* in_base =
              in_group + (oh * p.stride_h - p.pad_h) * in_w - p.pad_w;
          for (; ow < owr.hi; ++ow) {
            const std::int8_t* in_pix = in_base + ow * p.stride_w;
            // Unchecked interior: accumulate the raw product and the input
            // sum in one pass, fold both zero points afterwards (exact in
            // integer math).
            std::int32_t raw = 0;
            std::int32_t in_sum = 0;
            const std::int8_t* w_ptr = w_oc;
            for (std::int64_t c = 0; c < ci_g; ++c) {
              const std::int8_t* plane = in_pix + c * in_h * in_w;
              for (std::int64_t kh = 0; kh < kernel_h; ++kh) {
                const std::int8_t* in_row = plane + kh * p.dilation_h * in_w;
                for (std::int64_t kw = 0; kw < kernel_w; ++kw) {
                  const std::int32_t x = in_row[kw * p.dilation_w];
                  raw += x * static_cast<std::int32_t>(*w_ptr++);
                  in_sum += x;
                }
              }
            }
            out_plane[oh * out_w + ow] = requantize(raw - w_zp * in_sum + zp_const);
          }
        }
        for (; ow < out_w; ++ow) checked_pixel(oh, ow);
      }
    }, /*grain_size=*/1);
    return;
  }

  ScratchFrame frame;
  const ConvGeometry geo =
      BuildGeometry(frame, ci_g, in_h, in_w, kernel_h, kernel_w, out_h, out_w, p);

  // s8 keeps the 4x8 layout contract; the tuned config varies kc/nc only.
  const GemmConfig qcfg =
      packed_weights != nullptr ? packed_weights->config : GemmConfig::DefaultS8();
  const std::int64_t group_stride = PackedExtent(co_g, qcfg.mr) * PackedKS8(k);
  const std::int8_t* wpanels;
  const std::int32_t* wrow_sums;
  if (packed_weights != nullptr) {
    ValidatePackedConvWeights(*packed_weights, DType::kInt8, co_g, k, p.groups);
    wpanels = packed_weights->data.Data<std::int8_t>();
    wrow_sums = packed_weights->sums.Data<std::int32_t>();
  } else {
    std::int8_t* scratch_panels = frame.Alloc<std::int8_t>(p.groups * group_stride);
    std::int32_t* scratch_sums = frame.Alloc<std::int32_t>(co);
    for (std::int64_t g = 0; g < p.groups; ++g) {
      PackPanelsAS8(w_data + g * co_g * k, co_g, k, k, scratch_panels + g * group_stride,
                    scratch_sums + g * co_g);
    }
    CountWeightPack(p.groups * group_stride +
                    co * static_cast<std::int64_t>(sizeof(std::int32_t)));
    wpanels = scratch_panels;
    wrow_sums = scratch_sums;
  }

  std::int8_t* view_buf =
      geo.needs_copy ? frame.Alloc<std::int8_t>(ci_g * geo.view_h * geo.view_w) : nullptr;
  std::int8_t* bpanels =
      frame.Alloc<std::int8_t>(PackedExtent(npix, kConvNrS8) * PackedKS8(k));
  std::int32_t* col_sums = frame.Alloc<std::int32_t>(npix);
  std::int32_t* acc = frame.Alloc<std::int32_t>(co_g * npix);

  for (std::int64_t n = 0; n < batch; ++n) {
    for (std::int64_t g = 0; g < p.groups; ++g) {
      const std::int8_t* in_group = in_data + (n * ci + g * ci_g) * in_h * in_w;
      const std::int8_t* view = in_group;
      if (geo.needs_copy) {
        // Padding positions must contribute zero *after* zero-point shift, so
        // pad with the input zero-point itself.
        FillPaddedView(in_group, ci_g, in_h, in_w, geo, p,
                       static_cast<std::int8_t>(input_q.zero_point), view_buf);
        view = view_buf;
      }
      PackIm2ColPanelsS8(view, geo, bpanels, col_sums);
      GemmPackedS8S32(wpanels + g * group_stride, bpanels, acc, co_g, k, npix, npix,
                      /*parallel=*/true, qcfg);
      ApplyZeroPointCorrection(acc, co_g, npix, npix, k, w_zp, in_zp,
                               wrow_sums + g * co_g, col_sums);

      std::int8_t* out_group = out_data + (n * co + g * co_g) * npix;
      support::ParallelFor(0, co_g, [&](std::int64_t oc) {
        const std::int32_t b = bias_data != nullptr ? bias_data[g * co_g + oc] : 0;
        const std::int32_t* acc_row = acc + oc * npix;
        std::int8_t* out_row = out_group + oc * npix;
        for (std::int64_t i = 0; i < npix; ++i) {
          const float scaled =
              std::nearbyintf(static_cast<float>(acc_row[i] + b) * multiplier) + out_zp;
          out_row[i] = static_cast<std::int8_t>(std::clamp(scaled, -128.0f, 127.0f));
        }
      }, /*grain_size=*/4);
    }
  }
}

}  // namespace kernels
}  // namespace tnp
