#include "kernels/quantize.h"

#include <algorithm>
#include <cmath>

#include "kernels/elementwise.h"
#include "support/thread_pool.h"

namespace tnp {
namespace kernels {

namespace {

inline std::int8_t SaturateToS8(float value) {
  return static_cast<std::int8_t>(std::clamp(value, -128.0f, 127.0f));
}

}  // namespace

void QuantizeF32ToS8(const NDArray& input, NDArray& output, const QuantParams& output_q) {
  TNP_CHECK(output_q.valid);
  TNP_CHECK(input.shape() == output.shape());
  const float* in = input.Data<float>();
  std::int8_t* out = output.Data<std::int8_t>();
  const float inv_scale = 1.0f / output_q.scale;
  const float zp = static_cast<float>(output_q.zero_point);
  const std::int64_t n = input.NumElements();
  support::ParallelFor(0, n, [&](std::int64_t i) {
    out[i] = SaturateToS8(std::nearbyintf(in[i] * inv_scale) + zp);
  }, /*grain_size=*/4096);
}

void DequantizeS8ToF32(const NDArray& input, NDArray& output, const QuantParams& input_q) {
  TNP_CHECK(input_q.valid);
  TNP_CHECK(input.shape() == output.shape());
  const std::int8_t* in = input.Data<std::int8_t>();
  float* out = output.Data<float>();
  const float scale = input_q.scale;
  const float zp = static_cast<float>(input_q.zero_point);
  const std::int64_t n = input.NumElements();
  support::ParallelFor(0, n, [&](std::int64_t i) {
    out[i] = scale * (static_cast<float>(in[i]) - zp);
  }, /*grain_size=*/4096);
}

void RequantizeS8(const NDArray& input, NDArray& output, const QuantParams& input_q,
                  const QuantParams& output_q) {
  TNP_CHECK(input_q.valid && output_q.valid);
  TNP_CHECK(input.shape() == output.shape());
  const std::int8_t* in = input.Data<std::int8_t>();
  std::int8_t* out = output.Data<std::int8_t>();
  const float multiplier = input_q.scale / output_q.scale;
  const float in_zp = static_cast<float>(input_q.zero_point);
  const float out_zp = static_cast<float>(output_q.zero_point);
  const std::int64_t n = input.NumElements();
  support::ParallelFor(0, n, [&](std::int64_t i) {
    out[i] = SaturateToS8(std::nearbyintf((static_cast<float>(in[i]) - in_zp) * multiplier) + out_zp);
  }, /*grain_size=*/4096);
}

void QAddS8(const NDArray& lhs, const NDArray& rhs, NDArray& output, const QuantParams& lhs_q,
            const QuantParams& rhs_q, const QuantParams& output_q) {
  TNP_CHECK(lhs_q.valid && rhs_q.valid && output_q.valid);
  TNP_CHECK(lhs.shape() == rhs.shape());
  TNP_CHECK(lhs.shape() == output.shape());
  const std::int8_t* a = lhs.Data<std::int8_t>();
  const std::int8_t* b = rhs.Data<std::int8_t>();
  std::int8_t* out = output.Data<std::int8_t>();
  const std::int64_t n = output.NumElements();
  support::ParallelFor(0, n, [&](std::int64_t i) {
    const float real = lhs_q.Dequantize(a[i]) + rhs_q.Dequantize(b[i]);
    out[i] = output_q.Quantize(real);
  }, /*grain_size=*/4096);
}

void QMulS8(const NDArray& lhs, const NDArray& rhs, NDArray& output, const QuantParams& lhs_q,
            const QuantParams& rhs_q, const QuantParams& output_q) {
  TNP_CHECK(lhs_q.valid && rhs_q.valid && output_q.valid);
  TNP_CHECK(lhs.shape() == rhs.shape());
  TNP_CHECK(lhs.shape() == output.shape());
  const std::int8_t* a = lhs.Data<std::int8_t>();
  const std::int8_t* b = rhs.Data<std::int8_t>();
  std::int8_t* out = output.Data<std::int8_t>();
  const std::int64_t n = output.NumElements();
  support::ParallelFor(0, n, [&](std::int64_t i) {
    const float real = lhs_q.Dequantize(a[i]) * rhs_q.Dequantize(b[i]);
    out[i] = output_q.Quantize(real);
  }, /*grain_size=*/4096);
}

void QConcatS8(const std::vector<NDArray>& inputs, const std::vector<QuantParams>& input_qs,
               NDArray& output, const QuantParams& output_q, int axis) {
  TNP_CHECK_EQ(inputs.size(), input_qs.size());
  std::vector<NDArray> rescaled;
  rescaled.reserve(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    if (input_qs[i] == output_q) {
      rescaled.push_back(inputs[i]);
    } else {
      NDArray tmp = NDArray::Empty(inputs[i].shape(), DType::kInt8);
      RequantizeS8(inputs[i], tmp, input_qs[i], output_q);
      rescaled.push_back(std::move(tmp));
    }
  }
  Concat(rescaled, output, axis);
}

}  // namespace kernels
}  // namespace tnp
