#include "kernels/quantize.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "kernels/elementwise.h"
#include "support/thread_pool.h"

namespace tnp {
namespace kernels {

namespace {

inline std::int8_t SaturateToS8(float value) {
  return static_cast<std::int8_t>(std::clamp(value, -128.0f, 127.0f));
}

}  // namespace

void QuantizeF32ToS8(const NDArray& input, NDArray& output, const QuantParams& output_q) {
  TNP_CHECK(output_q.valid);
  TNP_CHECK(input.shape() == output.shape());
  const float* in = input.Data<float>();
  std::int8_t* out = output.Data<std::int8_t>();
  const float inv_scale = 1.0f / output_q.scale;
  const float zp = static_cast<float>(output_q.zero_point);
  const std::int64_t n = input.NumElements();
  support::ParallelFor(0, n, [&](std::int64_t i) {
    out[i] = SaturateToS8(std::nearbyintf(in[i] * inv_scale) + zp);
  }, /*grain_size=*/4096);
}

void DequantizeS8ToF32(const NDArray& input, NDArray& output, const QuantParams& input_q) {
  TNP_CHECK(input_q.valid);
  TNP_CHECK(input.shape() == output.shape());
  const std::int8_t* in = input.Data<std::int8_t>();
  float* out = output.Data<float>();
  const float scale = input_q.scale;
  const float zp = static_cast<float>(input_q.zero_point);
  const std::int64_t n = input.NumElements();
  support::ParallelFor(0, n, [&](std::int64_t i) {
    out[i] = scale * (static_cast<float>(in[i]) - zp);
  }, /*grain_size=*/4096);
}

void RequantizeS8(const NDArray& input, NDArray& output, const QuantParams& input_q,
                  const QuantParams& output_q) {
  TNP_CHECK(input_q.valid && output_q.valid);
  TNP_CHECK(input.shape() == output.shape());
  const std::int8_t* in = input.Data<std::int8_t>();
  std::int8_t* out = output.Data<std::int8_t>();
  const float multiplier = input_q.scale / output_q.scale;
  const float in_zp = static_cast<float>(input_q.zero_point);
  const float out_zp = static_cast<float>(output_q.zero_point);
  const std::int64_t n = input.NumElements();
  support::ParallelFor(0, n, [&](std::int64_t i) {
    out[i] = SaturateToS8(std::nearbyintf((static_cast<float>(in[i]) - in_zp) * multiplier) + out_zp);
  }, /*grain_size=*/4096);
}

void QAddS8(const NDArray& lhs, const NDArray& rhs, NDArray& output, const QuantParams& lhs_q,
            const QuantParams& rhs_q, const QuantParams& output_q) {
  TNP_CHECK(lhs_q.valid && rhs_q.valid && output_q.valid);
  TNP_CHECK(lhs.shape() == rhs.shape());
  TNP_CHECK(lhs.shape() == output.shape());
  const std::int8_t* a = lhs.Data<std::int8_t>();
  const std::int8_t* b = rhs.Data<std::int8_t>();
  std::int8_t* out = output.Data<std::int8_t>();
  const std::int64_t n = output.NumElements();
  support::ParallelFor(0, n, [&](std::int64_t i) {
    const float real = lhs_q.Dequantize(a[i]) + rhs_q.Dequantize(b[i]);
    out[i] = output_q.Quantize(real);
  }, /*grain_size=*/4096);
}

void QMulS8(const NDArray& lhs, const NDArray& rhs, NDArray& output, const QuantParams& lhs_q,
            const QuantParams& rhs_q, const QuantParams& output_q) {
  TNP_CHECK(lhs_q.valid && rhs_q.valid && output_q.valid);
  TNP_CHECK(lhs.shape() == rhs.shape());
  TNP_CHECK(lhs.shape() == output.shape());
  const std::int8_t* a = lhs.Data<std::int8_t>();
  const std::int8_t* b = rhs.Data<std::int8_t>();
  std::int8_t* out = output.Data<std::int8_t>();
  const std::int64_t n = output.NumElements();
  support::ParallelFor(0, n, [&](std::int64_t i) {
    const float real = lhs_q.Dequantize(a[i]) * rhs_q.Dequantize(b[i]);
    out[i] = output_q.Quantize(real);
  }, /*grain_size=*/4096);
}

void QConcatS8(const std::vector<NDArray>& inputs, const std::vector<QuantParams>& input_qs,
               NDArray& output, const QuantParams& output_q, int axis) {
  TNP_CHECK_EQ(inputs.size(), input_qs.size());
  TNP_CHECK(!inputs.empty());
  const int rank = inputs.front().shape().rank();
  if (axis < 0) axis += rank;
  TNP_CHECK(axis >= 0 && axis < rank);

  std::int64_t outer = 1;
  for (int i = 0; i < axis; ++i) outer *= output.shape()[i];
  std::int64_t inner = 1;
  for (int i = axis + 1; i < rank; ++i) inner *= output.shape()[i];

  std::int64_t axis_total = 0;
  for (const auto& in : inputs) {
    TNP_CHECK(in.dtype() == DType::kInt8);
    TNP_CHECK_EQ(in.shape().rank(), rank);
    for (int i = 0; i < rank; ++i) {
      if (i != axis) TNP_CHECK_EQ(in.shape()[i], output.shape()[i]);
    }
    axis_total += in.shape()[axis];
  }
  TNP_CHECK_EQ(axis_total, output.shape()[axis]);

  // Mismatched quantization is folded into the copy loop rather than through
  // per-input rescale temporaries, so the kernel performs no allocations.
  std::int8_t* out = output.Data<std::int8_t>();
  const std::int64_t out_row = output.shape()[axis] * inner;
  std::int64_t axis_offset = 0;
  for (std::size_t idx = 0; idx < inputs.size(); ++idx) {
    const NDArray& in_tensor = inputs[idx];
    const std::int8_t* in = in_tensor.Data<std::int8_t>();
    const std::int64_t in_row = in_tensor.shape()[axis] * inner;
    const bool rescale = !(input_qs[idx] == output_q);
    // Same arithmetic as RequantizeS8 so results are identical to the old
    // rescale-into-temporary formulation.
    const float multiplier = rescale ? input_qs[idx].scale / output_q.scale : 1.0f;
    const float in_zp = static_cast<float>(input_qs[idx].zero_point);
    const float out_zp = static_cast<float>(output_q.zero_point);
    for (std::int64_t o = 0; o < outer; ++o) {
      std::int8_t* dst = out + o * out_row + axis_offset;
      const std::int8_t* src = in + o * in_row;
      if (!rescale) {
        std::memcpy(dst, src, static_cast<std::size_t>(in_row));
      } else {
        for (std::int64_t i = 0; i < in_row; ++i) {
          dst[i] = SaturateToS8(
              std::nearbyintf((static_cast<float>(src[i]) - in_zp) * multiplier) + out_zp);
        }
      }
    }
    axis_offset += in_row;
  }
}

}  // namespace kernels
}  // namespace tnp
