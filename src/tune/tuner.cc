#include "tune/tuner.h"

#include <algorithm>
#include <chrono>
#include <unordered_set>

#include "kernels/gemm.h"
#include "kernels/scratch.h"
#include "support/logging.h"
#include "support/metrics.h"
#include "support/rng.h"

namespace tnp {
namespace tune {

namespace {

using Clock = std::chrono::steady_clock;

double ElapsedUs(Clock::time_point since) {
  return std::chrono::duration<double, std::micro>(Clock::now() - since).count();
}

constexpr std::int64_t kKcCandidates[] = {128, 256, 384};
constexpr std::int64_t kNcCandidates[] = {96, 192, 384};

struct TileCandidate {
  std::int64_t mr;
  std::int64_t nr;
};
constexpr TileCandidate kF32Tiles[] = {{4, 8}, {6, 8}, {8, 4}, {4, 16}};

/// Median of `repetitions` timed runs of `fn`, one warmup first, through a
/// LOCAL histogram — the same nearest-rank median the bench harnesses use,
/// but never the shared registry entry, so concurrent TuneWorkload calls
/// (or a metrics scrape mid-sweep) cannot interleave samples.
double MeasureMedianUs(int repetitions, const std::function<void()>& fn) {
  support::metrics::Histogram histogram;
  fn();  // warmup: first touch of panels/output
  for (int i = 0; i < repetitions; ++i) {
    const auto start = Clock::now();
    fn();
    histogram.Record(ElapsedUs(start));
  }
  return histogram.Summarize().p50;
}

}  // namespace

std::vector<kernels::GemmConfig> CandidateConfigs(DType dtype) {
  std::vector<kernels::GemmConfig> out;
  const kernels::GemmConfig fallback = kernels::DefaultGemmConfig(dtype);
  out.push_back(fallback);
  if (dtype == DType::kInt8) {
    for (const std::int64_t kc : kKcCandidates) {
      for (const std::int64_t nc : kNcCandidates) {
        const kernels::GemmConfig config{fallback.mr, fallback.nr, kc, nc, 1};
        if (config != fallback) out.push_back(config);
      }
    }
  } else {
    TNP_CHECK(dtype == DType::kFloat32);
    for (const TileCandidate tile : kF32Tiles) {
      for (const std::int64_t kc : kKcCandidates) {
        for (const std::int64_t nc : kNcCandidates) {
          for (const std::int64_t unroll : {std::int64_t{1}, std::int64_t{2}}) {
            const kernels::GemmConfig config{tile.mr, tile.nr, kc, nc, unroll};
            if (config != fallback) out.push_back(config);
          }
        }
      }
    }
  }
  for (const kernels::GemmConfig& config : out) {
    TNP_CHECK(kernels::IsValidGemmConfig(config, dtype))
        << "candidate space produced illegal config " << config.ToString();
  }
  return out;
}

TuneResult TuneWorkload(const Workload& workload, const TuneOptions& options,
                        double budget_us) {
  TNP_CHECK(workload.m > 0 && workload.k > 0 && workload.n > 0)
      << "cannot tune degenerate workload " << workload.Key();
  const auto start = Clock::now();
  const std::int64_t m = workload.m;
  const std::int64_t k = workload.k;
  const std::int64_t n = workload.n;
  const bool int8 = workload.dtype == DType::kInt8;
  const std::vector<kernels::GemmConfig> candidates = CandidateConfigs(workload.dtype);

  // Deterministic synthetic operands seeded from the key: the tuner's
  // timings are reproducible and independent of everything but the shape.
  support::SplitMix64 rng(support::StableHash(workload.Key()));

  TuneResult result;
  result.candidates_total = static_cast<int>(candidates.size());
  result.record.workload = workload;

  kernels::ScratchFrame frame;
  if (int8) {
    std::int8_t* a = frame.Alloc<std::int8_t>(m * k);
    std::int8_t* b = frame.Alloc<std::int8_t>(k * n);
    for (std::int64_t i = 0; i < m * k; ++i) {
      a[i] = static_cast<std::int8_t>(rng.UniformInt(-128, 127));
    }
    for (std::int64_t i = 0; i < k * n; ++i) {
      b[i] = static_cast<std::int8_t>(rng.UniformInt(-128, 127));
    }
    const std::int64_t k2 = kernels::PackedKS8(k);
    std::int8_t* ap =
        frame.Alloc<std::int8_t>(kernels::PackedExtent(m, kernels::kGemmMrS8) * k2);
    std::int8_t* bp =
        frame.Alloc<std::int8_t>(kernels::PackedExtent(n, kernels::kGemmNrS8) * k2);
    std::int32_t* c = frame.Alloc<std::int32_t>(m * n);
    // The s8 tile is fixed, so one packing serves every candidate.
    kernels::PackPanelsAS8(a, m, k, k, ap, nullptr);
    kernels::PackPanelsBS8(b, k, n, n, bp, nullptr);
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (i > 0 && budget_us > 0.0 && ElapsedUs(start) >= budget_us) break;
      const kernels::GemmConfig& config = candidates[i];
      const double us = MeasureMedianUs(options.repetitions, [&] {
        kernels::GemmPackedS8S32(ap, bp, c, m, k, n, n, /*parallel=*/false, config);
      });
      if (i == 0) result.record.baseline_us = us;
      if (i == 0 || us < result.record.best_us) {
        result.record.best_us = us;
        result.record.config = config;
      }
      ++result.record.trials;
    }
  } else {
    float* a = frame.Alloc<float>(m * k);
    float* b = frame.Alloc<float>(k * n);
    for (std::int64_t i = 0; i < m * k; ++i) {
      a[i] = static_cast<float>(rng.Uniform(-1.0, 1.0));
    }
    for (std::int64_t i = 0; i < k * n; ++i) {
      b[i] = static_cast<float>(rng.Uniform(-1.0, 1.0));
    }
    // Panels sized for the worst case over the candidate tiles; repacked per
    // config. The widest tile is NOT the worst case: a narrower mr can pad to
    // more rows (ceil(m/6)*6 > ceil(m/8)*8 at m=8), so take the max over the
    // actual candidates rather than hard-coding one tile.
    std::int64_t ap_floats = 0;
    std::int64_t bp_floats = 0;
    for (const kernels::GemmConfig& config : candidates) {
      ap_floats = std::max(ap_floats, kernels::PackedExtent(m, config.mr) * k);
      bp_floats = std::max(bp_floats, kernels::PackedExtent(n, config.nr) * k);
    }
    float* ap = frame.Alloc<float>(ap_floats);
    float* bp = frame.Alloc<float>(bp_floats);
    float* c = frame.Alloc<float>(m * n);
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (i > 0 && budget_us > 0.0 && ElapsedUs(start) >= budget_us) break;
      const kernels::GemmConfig& config = candidates[i];
      kernels::PackPanelsAF32(a, m, k, k, ap, config.mr);
      kernels::PackPanelsBF32(b, k, n, n, bp, config.nr);
      const double us = MeasureMedianUs(options.repetitions, [&] {
        kernels::GemmPackedF32(ap, bp, c, m, k, n, n, /*parallel=*/false, config);
      });
      if (i == 0) result.record.baseline_us = us;
      if (i == 0 || us < result.record.best_us) {
        result.record.best_us = us;
        result.record.config = config;
      }
      ++result.record.trials;
    }
  }
  result.exhausted = result.record.trials == result.candidates_total;
  return result;
}

int TuneAll(const std::vector<Workload>& workloads, TuningDb* db,
            const TuneOptions& options,
            const std::function<void(const TuneResult&)>& progress) {
  TNP_CHECK(db != nullptr);
  const auto start = Clock::now();
  const double budget_us = options.budget_ms * 1000.0;
  std::unordered_set<std::string> seen;
  int tuned = 0;
  for (const Workload& workload : workloads) {
    if (!seen.insert(workload.Key()).second) continue;
    if (!options.retune && db->Lookup(workload).has_value()) continue;
    const double remaining_us =
        budget_us > 0.0 ? budget_us - ElapsedUs(start) : 0.0;
    if (budget_us > 0.0 && remaining_us <= 0.0) break;
    const TuneResult result = TuneWorkload(workload, options, remaining_us);
    db->Put(result.record);
    ++tuned;
    if (progress) progress(result);
  }
  return tuned;
}

}  // namespace tune
}  // namespace tnp
