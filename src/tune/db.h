// Persistent, content-addressed tuning database.
//
// The auto-tuner (tuner.h) searches the GemmConfig schedule space per
// (op, dtype, M, K, N) workload; the winners land here. A TuningDb is a
// directory of small JSON records, one file per workload, whose filename is
// the FNV-1a hash of the workload key — content-addressed, so concurrent
// tuners writing the same workload converge on the same file and records
// never collide across workloads.
//
// Keying. A workload key bakes in everything that invalidates a tuned
// schedule:
//
//   conv2d/f32/m64/k576/n3136|isa=sse2|schema=1
//
// - the op + dtype + GEMM extents identify the computation,
// - `isa` (kernels::GemmIsaName) pins the micro-kernel instruction set so a
//   DB tuned on one ISA is never consulted on another,
// - `schema` is kTuningSchemaVersion, bumped whenever the config search
//   space or record format changes meaning.
//
// Consultation happens at COMPILE time only: relay::Build and
// neuron::Compile look up the winning config when pre-packing constant
// weights (falling back to the untuned defaults on miss) and record it on
// the artifact. Steady-state inference never touches the DB. The process-
// global active DB (SetActiveTuningDb) is what the compile paths consult;
// its fingerprint is folded into flow/artifact cache keys so artifacts
// built under different tuning states never mix.
//
// Failure policy: fail closed. A corrupt or inconsistent record file throws
// kParseError at load time rather than silently serving a half-read config
// to the packers.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "kernels/pack.h"
#include "tensor/dtype.h"

namespace tnp {
namespace tune {

/// Bumped whenever the candidate space or the record format changes meaning;
/// part of every workload key, so stale records are misses, not corruption.
inline constexpr int kTuningSchemaVersion = 1;

/// One GEMM-shaped workload as seen by the kernel engine: conv2d im2col
/// GEMMs are (m = out-channels per group, k = ci_g*kh*kw, n = out pixels),
/// dense GEMMs are (m = batch rows, k = reduction, n = units).
struct Workload {
  std::string op;                    ///< "conv2d" | "dense"
  DType dtype = DType::kFloat32;     ///< kFloat32 | kInt8
  std::int64_t m = 0;
  std::int64_t k = 0;
  std::int64_t n = 0;

  /// Full DB key including ISA and schema version (see file comment).
  std::string Key() const;

  bool operator==(const Workload& other) const {
    return op == other.op && dtype == other.dtype && m == other.m && k == other.k &&
           n == other.n;
  }
};

/// A tuned winner: the best config found for a workload plus the evidence
/// (median micro-kernel times, in microseconds, and trial count) so reports
/// can show before/after without re-measuring.
struct TuningRecord {
  Workload workload;
  kernels::GemmConfig config;
  double best_us = 0.0;       ///< median runtime of the winning config
  double baseline_us = 0.0;   ///< median runtime of the untuned default
  int trials = 0;             ///< candidate configs measured
};

/// The on-disk + in-process tuning database. Construction with a directory
/// eagerly loads every `*.json` record (fail-closed); lookups after that are
/// an in-memory map probe guarded by a mutex, counted on the
/// "tune/db_hits" / "tune/db_misses" metrics.
class TuningDb {
 public:
  /// In-memory only (no persistence); starts empty.
  TuningDb() = default;

  /// Open (creating if needed) the DB directory and load every record.
  /// Throws kParseError on a corrupt record, kRuntimeError on I/O failure.
  explicit TuningDb(const std::string& dir);

  /// Winning record for the workload, or nullopt on miss. Thread-safe: the
  /// record is copied out under the lock, so the result stays valid even if
  /// a concurrent Put overwrites the same key.
  std::optional<TuningRecord> Lookup(const Workload& workload) const;

  /// Insert/overwrite the record in memory and, when the DB has a directory,
  /// atomically persist it (temp file + rename) under its content hash.
  void Put(const TuningRecord& record);

  /// Stable digest over the sorted (key, config) pairs. Two DBs with the
  /// same tuned winners fingerprint identically regardless of insertion
  /// order; the empty DB fingerprints as "empty". Folded into flow-cache /
  /// artifact-store keys.
  std::string Fingerprint() const;

  std::size_t size() const;
  const std::string& dir() const { return dir_; }

  /// All records, sorted by key (for reports and the CLI).
  std::vector<TuningRecord> Records() const;

 private:
  void LoadDirectory();

  std::string dir_;  ///< empty for in-memory DBs
  mutable std::mutex mutex_;
  std::map<std::string, TuningRecord> records_;  ///< key -> winner
};

/// Parse one JSON record (the content of a DB file). Throws kParseError on
/// any structural problem: wrong schema, illegal config, key/field mismatch.
/// `stored_key` (optional) receives the record's own key, which differs from
/// workload.Key() when the record was tuned on another ISA.
TuningRecord ParseTuningRecord(const std::string& json_text,
                               std::string* stored_key = nullptr);

/// Serialize a record to the JSON document ParseTuningRecord accepts.
std::string TuningRecordToJson(const TuningRecord& record);

// ---------------------------------------------------------------------------
// Process-global active DB: what relay::Build / neuron::Compile consult when
// pre-packing weights, installed by the examples' --tuning-db flag and the
// tuning CLI. Null (the default) means "untuned defaults everywhere".

void SetActiveTuningDb(std::shared_ptr<const TuningDb> db);
std::shared_ptr<const TuningDb> ActiveTuningDb();

/// Fingerprint of the active DB, or "none" when no DB is installed. Safe to
/// embed in cache keys unconditionally.
std::string ActiveTuningFingerprint();

/// Lookup against the active DB; returns the untuned default config for the
/// dtype on miss or when no DB is installed. This is the single call the
/// compile-time prepack paths use.
kernels::GemmConfig TunedConfigFor(const Workload& workload);

}  // namespace tune
}  // namespace tnp
