#include "tune/db.h"

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "kernels/gemm.h"
#include "support/json.h"
#include "support/logging.h"
#include "support/metrics.h"
#include "support/rng.h"

namespace tnp {
namespace tune {

namespace {

support::metrics::Counter& HitCounter() {
  static support::metrics::Counter& counter =
      support::metrics::Registry::Global().GetCounter("tune/db_hits");
  return counter;
}

support::metrics::Counter& MissCounter() {
  static support::metrics::Counter& counter =
      support::metrics::Registry::Global().GetCounter("tune/db_misses");
  return counter;
}

const char* DtypeToken(DType dtype) {
  switch (dtype) {
    case DType::kFloat32: return "f32";
    case DType::kInt8: return "s8";
    default:
      TNP_THROW(kInvalidArgument)
          << "tuning workloads cover f32/s8 only, got " << DTypeName(dtype);
  }
}

DType DtypeFromToken(const std::string& token) {
  if (token == "f32") return DType::kFloat32;
  if (token == "s8") return DType::kInt8;
  TNP_THROW(kParseError) << "tuning record: unknown dtype token '" << token << "'";
}

std::string RenderKey(const Workload& w, const std::string& isa, int schema) {
  std::ostringstream key;
  key << w.op << '/' << DtypeToken(w.dtype) << "/m" << w.m << "/k" << w.k << "/n" << w.n
      << "|isa=" << isa << "|schema=" << schema;
  return key.str();
}

std::string HashHex16(std::uint64_t hash) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(hash));
  return std::string(buf);
}

std::int64_t RequireInt(const support::JsonValue& doc, const char* field) {
  const support::JsonValue* v = doc.Find(field);
  if (v == nullptr || !v->is_number()) {
    TNP_THROW(kParseError) << "tuning record: missing numeric field '" << field << "'";
  }
  return static_cast<std::int64_t>(v->number());
}

std::string RequireString(const support::JsonValue& doc, const char* field) {
  const support::JsonValue* v = doc.Find(field);
  if (v == nullptr || !v->is_string()) {
    TNP_THROW(kParseError) << "tuning record: missing string field '" << field << "'";
  }
  return v->string();
}

std::string FormatUs(double us) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", us);
  return std::string(buf);
}

}  // namespace

std::string Workload::Key() const {
  return RenderKey(*this, kernels::GemmIsaName(), kTuningSchemaVersion);
}

std::string TuningRecordToJson(const TuningRecord& record) {
  const kernels::GemmConfig& c = record.config;
  std::ostringstream os;
  os << "{\n"
     << "  \"schema\": " << kTuningSchemaVersion << ",\n"
     << "  \"key\": \"" << record.workload.Key() << "\",\n"
     << "  \"op\": \"" << record.workload.op << "\",\n"
     << "  \"dtype\": \"" << DtypeToken(record.workload.dtype) << "\",\n"
     << "  \"m\": " << record.workload.m << ",\n"
     << "  \"k\": " << record.workload.k << ",\n"
     << "  \"n\": " << record.workload.n << ",\n"
     << "  \"isa\": \"" << kernels::GemmIsaName() << "\",\n"
     << "  \"config\": {\"mr\": " << c.mr << ", \"nr\": " << c.nr << ", \"kc\": " << c.kc
     << ", \"nc\": " << c.nc << ", \"unroll\": " << c.unroll << "},\n"
     << "  \"best_us\": " << FormatUs(record.best_us) << ",\n"
     << "  \"baseline_us\": " << FormatUs(record.baseline_us) << ",\n"
     << "  \"trials\": " << record.trials << "\n"
     << "}\n";
  return os.str();
}

TuningRecord ParseTuningRecord(const std::string& json_text, std::string* stored_key) {
  const support::JsonValue doc = support::JsonValue::Parse(json_text);
  if (!doc.is_object()) {
    TNP_THROW(kParseError) << "tuning record: document is not an object";
  }
  const int schema = static_cast<int>(RequireInt(doc, "schema"));
  if (schema != kTuningSchemaVersion) {
    TNP_THROW(kParseError) << "tuning record: schema " << schema << " != "
                           << kTuningSchemaVersion;
  }
  TuningRecord record;
  record.workload.op = RequireString(doc, "op");
  if (record.workload.op != "conv2d" && record.workload.op != "dense") {
    TNP_THROW(kParseError) << "tuning record: unknown op '" << record.workload.op << "'";
  }
  record.workload.dtype = DtypeFromToken(RequireString(doc, "dtype"));
  record.workload.m = RequireInt(doc, "m");
  record.workload.k = RequireInt(doc, "k");
  record.workload.n = RequireInt(doc, "n");
  if (record.workload.m <= 0 || record.workload.k <= 0 || record.workload.n <= 0) {
    TNP_THROW(kParseError) << "tuning record: non-positive GEMM extents";
  }

  const support::JsonValue* config = doc.Find("config");
  if (config == nullptr || !config->is_object()) {
    TNP_THROW(kParseError) << "tuning record: missing config object";
  }
  record.config.mr = RequireInt(*config, "mr");
  record.config.nr = RequireInt(*config, "nr");
  record.config.kc = RequireInt(*config, "kc");
  record.config.nc = RequireInt(*config, "nc");
  record.config.unroll = RequireInt(*config, "unroll");
  if (!kernels::IsValidGemmConfig(record.config, record.workload.dtype)) {
    TNP_THROW(kParseError) << "tuning record: illegal "
                           << DtypeToken(record.workload.dtype) << " config "
                           << record.config.ToString();
  }

  // The stored key must agree with the stored fields — a mismatch means the
  // file was hand-edited or truncated-and-patched; refuse it.
  const std::string isa = RequireString(doc, "isa");
  const std::string key = RequireString(doc, "key");
  if (key != RenderKey(record.workload, isa, schema)) {
    TNP_THROW(kParseError) << "tuning record: key '" << key
                           << "' does not match its fields";
  }
  if (stored_key != nullptr) *stored_key = key;

  record.best_us = doc.NumberOr("best_us", 0.0);
  record.baseline_us = doc.NumberOr("baseline_us", 0.0);
  record.trials = static_cast<int>(doc.NumberOr("trials", 0.0));
  if (record.best_us < 0.0 || record.baseline_us < 0.0 || record.trials < 0) {
    TNP_THROW(kParseError) << "tuning record: negative timing fields";
  }
  return record;
}

TuningDb::TuningDb(const std::string& dir) : dir_(dir) {
  TNP_CHECK(!dir_.empty()) << "tuning DB directory must be non-empty";
  if (::mkdir(dir_.c_str(), 0755) != 0 && errno != EEXIST) {
    TNP_THROW(kRuntimeError) << "tuning DB: cannot create directory '" << dir_
                             << "': " << std::strerror(errno);
  }
  LoadDirectory();
}

void TuningDb::LoadDirectory() {
  DIR* dp = ::opendir(dir_.c_str());
  if (dp == nullptr) {
    TNP_THROW(kRuntimeError) << "tuning DB: cannot open directory '" << dir_
                             << "': " << std::strerror(errno);
  }
  std::vector<std::string> files;
  while (const dirent* entry = ::readdir(dp)) {
    const std::string name = entry->d_name;
    if (name.size() > 5 && name.compare(name.size() - 5, 5, ".json") == 0) {
      files.push_back(name);
    }
  }
  ::closedir(dp);

  for (const std::string& name : files) {
    const std::string path = dir_ + "/" + name;
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      TNP_THROW(kRuntimeError) << "tuning DB: cannot read '" << path << "'";
    }
    std::ostringstream text;
    text << in.rdbuf();
    TuningRecord record;
    std::string key;
    try {
      record = ParseTuningRecord(text.str(), &key);
    } catch (const Error& e) {
      // Fail closed, naming the offending file: a half-written or corrupt
      // record must never silently become "untuned" (or worse, mis-tuned).
      TNP_THROW(kParseError) << "tuning DB: corrupt record '" << path
                             << "': " << e.what();
    }
    // Indexed under the record's own key: a record tuned on another ISA
    // simply never matches a lookup on this host.
    records_[key] = record;
  }
}

std::optional<TuningRecord> TuningDb::Lookup(const Workload& workload) const {
  const std::string key = workload.Key();
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = records_.find(key);
  if (it == records_.end()) {
    MissCounter().Increment();
    return std::nullopt;
  }
  HitCounter().Increment();
  // Copied under the lock: a pointer into records_ would dangle the moment a
  // concurrent Put overwrote this key.
  return it->second;
}

void TuningDb::Put(const TuningRecord& record) {
  TNP_CHECK(kernels::IsValidGemmConfig(record.config, record.workload.dtype))
      << "refusing to store illegal config " << record.config.ToString();
  const std::string key = record.workload.Key();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    records_[key] = record;
  }
  if (dir_.empty()) return;

  const std::string path = dir_ + "/" + HashHex16(support::StableHash(key)) + ".json";
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      TNP_THROW(kRuntimeError) << "tuning DB: cannot write '" << tmp << "'";
    }
    out << TuningRecordToJson(record);
    out.flush();
    if (!out) {
      TNP_THROW(kRuntimeError) << "tuning DB: short write to '" << tmp << "'";
    }
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    TNP_THROW(kRuntimeError) << "tuning DB: cannot publish '" << path
                             << "': " << std::strerror(err);
  }
}

std::string TuningDb::Fingerprint() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (records_.empty()) return "empty";
  // std::map iterates in key order, so the digest is insertion-order
  // independent by construction.
  std::string blob;
  for (const auto& [key, record] : records_) {
    blob += key;
    blob += "=>";
    blob += record.config.ToString();
    blob += ";";
  }
  return HashHex16(support::StableHash(blob));
}

std::size_t TuningDb::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_.size();
}

std::vector<TuningRecord> TuningDb::Records() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TuningRecord> out;
  out.reserve(records_.size());
  for (const auto& [key, record] : records_) out.push_back(record);
  return out;
}

// ---------------------------------------------------------------------------
// Process-global active DB.

namespace {

std::mutex g_active_mutex;
std::shared_ptr<const TuningDb> g_active_db;

}  // namespace

void SetActiveTuningDb(std::shared_ptr<const TuningDb> db) {
  std::lock_guard<std::mutex> lock(g_active_mutex);
  g_active_db = std::move(db);
}

std::shared_ptr<const TuningDb> ActiveTuningDb() {
  std::lock_guard<std::mutex> lock(g_active_mutex);
  return g_active_db;
}

std::string ActiveTuningFingerprint() {
  const std::shared_ptr<const TuningDb> db = ActiveTuningDb();
  return db != nullptr ? db->Fingerprint() : "none";
}

kernels::GemmConfig TunedConfigFor(const Workload& workload) {
  const std::shared_ptr<const TuningDb> db = ActiveTuningDb();
  if (db == nullptr) return kernels::DefaultGemmConfig(workload.dtype);
  const std::optional<TuningRecord> record = db->Lookup(workload);
  return record.has_value() ? record->config
                            : kernels::DefaultGemmConfig(workload.dtype);
}

}  // namespace tune
}  // namespace tnp
