// The schedule search: sweep the legal GemmConfig space per workload and
// record the winner in a TuningDb.
//
// The tuner measures the packed GEMM core (GemmPackedF32 / GemmPackedS8S32)
// on synthetic operands of the workload's exact extents — the same code path
// steady-state inference runs against pre-packed weights. Panels are packed
// outside the timed region (weights are packed once at compile time), and
// the core runs serially so the measurement is the kernel, not the
// scheduler. Every candidate is measured with the registry-histogram
// repetition machinery (median over N runs after a warmup) so the tuner's
// numbers are comparable with the bench harnesses'.
//
// The search is exhaustive over the candidate space by default and bounded
// by a wall-clock budget: the untuned default is always measured first (it
// is both the baseline and the fallback winner), then remaining candidates
// run until the budget is spent. A budget too small to finish a sweep still
// yields a valid record — just one picked from fewer trials.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "kernels/pack.h"
#include "tune/db.h"

namespace tnp {
namespace tune {

struct TuneOptions {
  /// Total wall-clock budget in milliseconds across the whole sweep
  /// (TuneAll) — 0 means unbounded. The default config is always measured.
  double budget_ms = 0.0;
  /// Timed repetitions per candidate (after one warmup run); the median is
  /// the candidate's score.
  int repetitions = 5;
  /// Re-measure workloads that already have a DB record.
  bool retune = false;
};

/// Result of tuning one workload.
struct TuneResult {
  TuningRecord record;
  int candidates_total = 0;  ///< size of the legal candidate space
  bool exhausted = false;    ///< every candidate was measured
};

/// The legal candidate space for a dtype, untuned default first. f32 sweeps
/// register tiles {4x8, 6x8, 8x4, 4x16} x kc {128,256,384} x nc {96,192,384}
/// x unroll {1,2}; s8 keeps the 4x8 pmaddwd tile and sweeps kc/nc only.
std::vector<kernels::GemmConfig> CandidateConfigs(DType dtype);

/// Sweep one workload within `budget_us` microseconds (<= 0: unbounded).
/// Deterministic synthetic operands (seeded from the workload key). Returns
/// the winner with baseline/best medians filled in.
TuneResult TuneWorkload(const Workload& workload, const TuneOptions& options,
                        double budget_us);

/// Tune every workload (deduplicated, in order) into `db`, sharing
/// options.budget_ms across the sweep. Workloads already in the DB are
/// skipped unless options.retune. Calls `progress` (when given) after each
/// workload. Returns the number of workloads newly tuned.
int TuneAll(const std::vector<Workload>& workloads, TuningDb* db,
            const TuneOptions& options,
            const std::function<void(const TuneResult&)>& progress = nullptr);

}  // namespace tune
}  // namespace tnp
