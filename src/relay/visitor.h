// ExprVisitor / ExprMutator: memoized post-order DFS traversal of the Relay
// AST. This is the exact structure the paper's Listing 1 builds on: the
// Relay->Neuron converter in core/ subclasses ExprVisitor and fills a
// NodeEntry dictionary per visited node.
#pragma once

#include <unordered_map>
#include <unordered_set>

#include "relay/expr.h"

namespace tnp {
namespace relay {

/// Read-only traversal. Each distinct node is visited once (DAG-aware);
/// children are visited before their parent (post-order).
class ExprVisitor {
 public:
  virtual ~ExprVisitor() = default;

  /// Visit `expr` and all reachable children (each exactly once).
  void Visit(const ExprPtr& expr);

 protected:
  virtual void VisitVar(const VarPtr& var) { (void)var; }
  virtual void VisitConstant(const ConstantPtr& constant) { (void)constant; }
  /// Called after all args were visited.
  virtual void VisitCall(const CallPtr& call) { (void)call; }
  virtual void VisitTuple(const TuplePtr& tuple) { (void)tuple; }
  virtual void VisitTupleGetItem(const TupleGetItemPtr& get) { (void)get; }
  /// By default visits the function body (not the params); embedded
  /// primitive functions can be skipped by overriding.
  virtual void VisitFunction(const FunctionPtr& fn);

  /// Visit children of embedded functions? (default: yes)
  bool visit_function_bodies_ = true;

 private:
  std::unordered_set<const Expr*> visited_;
};

/// Rewriting traversal: returns a new expression tree where each node whose
/// children changed is rebuilt; unchanged subtrees are shared. Subclasses
/// override Rewrite* hooks which receive the node with already-mutated
/// children.
class ExprMutator {
 public:
  virtual ~ExprMutator() = default;

  ExprPtr Mutate(const ExprPtr& expr);

 protected:
  /// Hooks: return the (possibly replaced) node. Default: identity.
  virtual ExprPtr RewriteVar(const VarPtr& var) { return var; }
  virtual ExprPtr RewriteConstant(const ConstantPtr& constant) { return constant; }
  virtual ExprPtr RewriteCall(const CallPtr& call) { return call; }
  virtual ExprPtr RewriteTuple(const TuplePtr& tuple) { return tuple; }
  virtual ExprPtr RewriteTupleGetItem(const TupleGetItemPtr& get) { return get; }
  virtual ExprPtr RewriteFunction(const FunctionPtr& fn) { return fn; }

  /// Whether to descend into embedded function bodies (default true; the
  /// partitioning passes disable this to treat extracted regions opaquely).
  bool mutate_function_bodies_ = true;

  std::unordered_map<const Expr*, ExprPtr> memo_;
};

/// Collect every node reachable from `expr` in post-order (children first).
std::vector<ExprPtr> PostOrder(const ExprPtr& expr);

/// Count the calls (optionally only calls to `op_name`).
int CountCalls(const ExprPtr& expr, const std::string& op_name = "");

/// Collect the free Vars of an expression in first-use order.
std::vector<VarPtr> FreeVars(const ExprPtr& expr);

}  // namespace relay
}  // namespace tnp
