// Operator attributes: a small typed key/value map.
//
// Relay proper uses per-op attribute structs; a string-keyed variant map
// keeps this reproduction compact while staying fully typed at access time
// (wrong-kind access is a TypeError naming the key).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <variant>
#include <vector>

#include "support/logging.h"

namespace tnp {
namespace relay {

using AttrValue =
    std::variant<std::int64_t, double, std::string, std::vector<std::int64_t>,
                 std::vector<double>>;

class Attrs {
 public:
  Attrs() = default;

  Attrs& Set(const std::string& key, AttrValue value) {
    values_[key] = std::move(value);
    return *this;
  }
  Attrs& SetInt(const std::string& key, std::int64_t value) { return Set(key, value); }
  Attrs& SetDouble(const std::string& key, double value) { return Set(key, value); }
  Attrs& SetString(const std::string& key, std::string value) {
    return Set(key, AttrValue(std::move(value)));
  }
  Attrs& SetInts(const std::string& key, std::vector<std::int64_t> value) {
    return Set(key, AttrValue(std::move(value)));
  }
  Attrs& SetDoubles(const std::string& key, std::vector<double> value) {
    return Set(key, AttrValue(std::move(value)));
  }

  bool Has(const std::string& key) const { return values_.count(key) != 0; }

  std::int64_t GetInt(const std::string& key, std::int64_t fallback) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    return Require<std::int64_t>(it, key);
  }
  double GetDouble(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    // Integer literals are acceptable where a double is expected.
    if (std::holds_alternative<std::int64_t>(it->second)) {
      return static_cast<double>(std::get<std::int64_t>(it->second));
    }
    return Require<double>(it, key);
  }
  std::string GetString(const std::string& key, const std::string& fallback) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    return Require<std::string>(it, key);
  }
  std::vector<std::int64_t> GetInts(const std::string& key,
                                    std::vector<std::int64_t> fallback) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    return Require<std::vector<std::int64_t>>(it, key);
  }
  std::vector<double> GetDoubles(const std::string& key, std::vector<double> fallback) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    return Require<std::vector<double>>(it, key);
  }

  /// Required-attribute accessors: throw TypeError when missing.
  std::int64_t RequireInt(const std::string& key) const {
    RequirePresent(key);
    return GetInt(key, 0);
  }
  double RequireDouble(const std::string& key) const {
    RequirePresent(key);
    return GetDouble(key, 0.0);
  }
  std::string RequireString(const std::string& key) const {
    RequirePresent(key);
    return GetString(key, "");
  }
  std::vector<std::int64_t> RequireInts(const std::string& key) const {
    RequirePresent(key);
    return GetInts(key, {});
  }

  const std::map<std::string, AttrValue>& values() const { return values_; }

  std::string ToString() const;

 private:
  void RequirePresent(const std::string& key) const {
    if (!Has(key)) {
      TNP_THROW(kTypeError) << "missing required attribute '" << key << "'";
    }
  }

  template <typename T>
  static T Require(std::map<std::string, AttrValue>::const_iterator it,
                   const std::string& key) {
    if (!std::holds_alternative<T>(it->second)) {
      TNP_THROW(kTypeError) << "attribute '" << key << "' has the wrong kind";
    }
    return std::get<T>(it->second);
  }

  std::map<std::string, AttrValue> values_;
};

}  // namespace relay
}  // namespace tnp
