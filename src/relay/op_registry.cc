// Builtin operator vocabulary: type inference, cost categories and fusion
// metadata for every Relay op used by the model zoo and the frontends.
//
// Attribute conventions are documented per op below; frontends and zoo
// builders must follow them exactly (they are validated here at infer time).
#include <algorithm>

#include "kernels/common.h"
#include "kernels/elementwise.h"
#include "relay/op.h"
#include "support/string_util.h"

namespace tnp {
namespace relay {

namespace {

using sim::OpCategory;

const TensorType& TensorArg(const std::vector<Type>& args, std::size_t index,
                            const char* op_name) {
  if (index >= args.size() || !args[index].IsTensor()) {
    TNP_THROW(kTypeError) << op_name << ": argument " << index << " must be a tensor";
  }
  return args[index].AsTensor();
}

void RequireDType(const TensorType& t, DType dtype, const char* op_name) {
  if (t.dtype != dtype) {
    TNP_THROW(kTypeError) << op_name << ": expected dtype " << DTypeName(dtype) << ", got "
                          << DTypeName(t.dtype);
  }
}

kernels::Conv2DParams ConvParamsFromAttrs(const Attrs& attrs) {
  kernels::Conv2DParams p;
  const auto strides = attrs.GetInts("strides", {1, 1});
  const auto padding = attrs.GetInts("padding", {0, 0});
  const auto dilation = attrs.GetInts("dilation", {1, 1});
  if (strides.size() != 2 || padding.size() != 2 || dilation.size() != 2) {
    TNP_THROW(kTypeError) << "conv2d strides/padding/dilation must have 2 entries";
  }
  p.stride_h = strides[0];
  p.stride_w = strides[1];
  p.pad_h = padding[0];
  p.pad_w = padding[1];
  p.dilation_h = dilation[0];
  p.dilation_w = dilation[1];
  p.groups = attrs.GetInt("groups", 1);
  return p;
}

kernels::Pool2DParams PoolParamsFromAttrs(const Attrs& attrs) {
  kernels::Pool2DParams p;
  const auto pool_size = attrs.RequireInts("pool_size");
  const auto strides = attrs.GetInts("strides", pool_size);
  const auto padding = attrs.GetInts("padding", {0, 0});
  if (pool_size.size() != 2 || strides.size() != 2 || padding.size() != 2) {
    TNP_THROW(kTypeError) << "pool2d pool_size/strides/padding must have 2 entries";
  }
  p.kernel_h = pool_size[0];
  p.kernel_w = pool_size[1];
  p.stride_h = strides[0];
  p.stride_w = strides[1];
  p.pad_h = padding[0];
  p.pad_w = padding[1];
  p.count_include_pad = attrs.GetInt("count_include_pad", 0) != 0;
  return p;
}

Type Conv2DInferShapeOnly(const Call& call, const std::vector<Type>& args, DType out_dtype) {
  const TensorType& data = TensorArg(args, 0, "conv2d");
  const TensorType& weight = TensorArg(args, 1, "conv2d");
  if (data.shape.rank() != 4 || weight.shape.rank() != 4) {
    TNP_THROW(kTypeError) << "conv2d expects NCHW data and OIHW weight";
  }
  const auto p = ConvParamsFromAttrs(call.attrs());
  Shape out;
  try {
    out = kernels::Conv2DOutShape(data.shape, weight.shape, p);
  } catch (const InternalError& error) {
    TNP_THROW(kTypeError) << "conv2d: " << error.what();
  }
  return Type::Tensor(out, out_dtype);
}

std::int64_t Conv2DMacs(const Call& call, const std::vector<Type>& args, const Type& out) {
  (void)call;
  const TensorType& weight = TensorArg(args, 1, "conv2d");
  const auto& out_t = out.AsTensor();
  // per output element: CI/groups * KH * KW MACs
  return out_t.shape.NumElements() * weight.shape[1] * weight.shape[2] * weight.shape[3];
}

Type DenseInferShapeOnly(const std::vector<Type>& args, DType out_dtype) {
  const TensorType& data = TensorArg(args, 0, "dense");
  const TensorType& weight = TensorArg(args, 1, "dense");
  if (data.shape.rank() != 2 || weight.shape.rank() != 2 || data.shape[1] != weight.shape[1]) {
    TNP_THROW(kTypeError) << "dense: incompatible shapes " << data.shape.ToString() << " and "
                          << weight.shape.ToString();
  }
  return Type::Tensor(Shape({data.shape[0], weight.shape[0]}), out_dtype);
}

std::int64_t DenseMacs(const Call&, const std::vector<Type>& args, const Type& out) {
  const TensorType& weight = TensorArg(args, 1, "dense");
  return out.AsTensor().shape.NumElements() * weight.shape[1];
}

/// Same-type pass-through (unary elementwise).
Type IdentityInfer(const Call&, const std::vector<Type>& args) {
  if (args.size() != 1 || !args[0].IsTensor()) {
    TNP_THROW(kTypeError) << "unary op expects one tensor argument";
  }
  return args[0];
}

Type FloatUnaryInfer(const Call& call, const std::vector<Type>& args) {
  const TensorType& t = TensorArg(args, 0, "unary");
  RequireDType(t, DType::kFloat32, call.op_name().c_str());
  return args[0];
}

Type BroadcastBinaryInfer(const Call& call, const std::vector<Type>& args) {
  const TensorType& a = TensorArg(args, 0, call.op_name().c_str());
  const TensorType& b = TensorArg(args, 1, call.op_name().c_str());
  if (a.dtype != b.dtype) {
    TNP_THROW(kTypeError) << call.op_name() << ": dtype mismatch " << DTypeName(a.dtype)
                          << " vs " << DTypeName(b.dtype);
  }
  try {
    return Type::Tensor(kernels::BroadcastShape(a.shape, b.shape), a.dtype);
  } catch (const Error& error) {
    TNP_THROW(kTypeError) << call.op_name() << ": " << error.what();
  }
}

Type PoolInfer(const Call& call, const std::vector<Type>& args) {
  const TensorType& data = TensorArg(args, 0, call.op_name().c_str());
  if (data.shape.rank() != 4) {
    TNP_THROW(kTypeError) << call.op_name() << ": expects NCHW input";
  }
  const auto p = PoolParamsFromAttrs(call.attrs());
  try {
    return Type::Tensor(kernels::Pool2DOutShape(data.shape, p), data.dtype);
  } catch (const InternalError& error) {
    TNP_THROW(kTypeError) << call.op_name() << ": " << error.what();
  }
}

// QNN attr helpers shared by several inferers.
void RequireQnnAttrs(const Attrs& attrs, std::initializer_list<const char*> keys,
                     const char* op_name) {
  for (const char* key : keys) {
    if (!attrs.Has(key)) {
      TNP_THROW(kTypeError) << op_name << ": missing QNN attribute '" << key << "'";
    }
  }
}

}  // namespace

void RegisterBuiltinOpsInto(OpRegistry& reg) {
  // ---------------- convolution / dense ----------------
  reg.Register(OpDef{
      "nn.conv2d", 3,
      [](const Call& call, const std::vector<Type>& args) {
        // args: data, weight, bias (bias may be a 0-dim "none" marker; the
        // zoo always passes a real bias or a zero bias).
        const Type out = Conv2DInferShapeOnly(call, args, DType::kFloat32);
        const TensorType& weight = TensorArg(args, 1, "nn.conv2d");
        const TensorType& bias = TensorArg(args, 2, "nn.conv2d");
        if (bias.shape.NumElements() != weight.shape[0]) {
          TNP_THROW(kTypeError) << "nn.conv2d: bias size " << bias.shape.NumElements()
                                << " != out channels " << weight.shape[0];
        }
        return out;
      },
      OpCategory::kConv, Conv2DMacs, false, true});

  reg.Register(OpDef{
      "nn.dense", 3,
      [](const Call& call, const std::vector<Type>& args) {
        (void)call;
        const Type out = DenseInferShapeOnly(args, DType::kFloat32);
        const TensorType& weight = TensorArg(args, 1, "nn.dense");
        const TensorType& bias = TensorArg(args, 2, "nn.dense");
        if (bias.shape.NumElements() != weight.shape[0]) {
          TNP_THROW(kTypeError) << "nn.dense: bias size mismatch";
        }
        return out;
      },
      OpCategory::kDense, DenseMacs, false, true});

  reg.Register(OpDef{
      "nn.bias_add", 2,
      [](const Call& call, const std::vector<Type>& args) {
        const TensorType& data = TensorArg(args, 0, "nn.bias_add");
        const TensorType& bias = TensorArg(args, 1, "nn.bias_add");
        int axis = static_cast<int>(call.attrs().GetInt("axis", 1));
        if (axis < 0) axis += data.shape.rank();
        if (axis < 0 || axis >= data.shape.rank() ||
            bias.shape.NumElements() != data.shape[axis]) {
          TNP_THROW(kTypeError) << "nn.bias_add: bias/axis mismatch";
        }
        return args[0];
      },
      OpCategory::kElementwise, nullptr, true, false});

  // ---------------- activations ----------------
  reg.Register(OpDef{"nn.relu", 1, IdentityInfer, OpCategory::kElementwise, nullptr, true, false});
  reg.Register(OpDef{"nn.leaky_relu", 1, FloatUnaryInfer, OpCategory::kElementwise, nullptr, true, false});
  reg.Register(OpDef{"sigmoid", 1, FloatUnaryInfer, OpCategory::kElementwise, nullptr, true, false});
  reg.Register(OpDef{"tanh", 1, FloatUnaryInfer, OpCategory::kElementwise, nullptr, true, false});
  reg.Register(OpDef{"exp", 1, FloatUnaryInfer, OpCategory::kElementwise, nullptr, true, false});
  reg.Register(OpDef{"sqrt", 1, FloatUnaryInfer, OpCategory::kElementwise, nullptr, true, false});
  reg.Register(OpDef{
      "clip", 1,
      [](const Call& call, const std::vector<Type>& args) {
        call.attrs().RequireDouble("a_min");
        call.attrs().RequireDouble("a_max");
        return FloatUnaryInfer(call, args);
      },
      OpCategory::kElementwise, nullptr, true, false});

  // ---------------- binary broadcast ----------------
  for (const char* name : {"add", "subtract", "multiply", "divide", "maximum", "minimum"}) {
    reg.Register(OpDef{name, 2, BroadcastBinaryInfer, OpCategory::kElementwise, nullptr, true, false});
  }

  // ---------------- pooling ----------------
  reg.Register(OpDef{"nn.max_pool2d", 1, PoolInfer, OpCategory::kPool, nullptr, false, false});
  reg.Register(OpDef{"nn.avg_pool2d", 1, PoolInfer, OpCategory::kPool, nullptr, false, false});
  reg.Register(OpDef{
      "nn.global_avg_pool2d", 1,
      [](const Call& call, const std::vector<Type>& args) {
        const TensorType& data = TensorArg(args, 0, "nn.global_avg_pool2d");
        (void)call;
        if (data.shape.rank() != 4) {
          TNP_THROW(kTypeError) << "nn.global_avg_pool2d expects NCHW";
        }
        return Type::Tensor(Shape({data.shape[0], data.shape[1], 1, 1}), data.dtype);
      },
      OpCategory::kPool, nullptr, false, false});

  // ---------------- normalization / softmax ----------------
  reg.Register(OpDef{
      "nn.batch_norm", 5,
      [](const Call& call, const std::vector<Type>& args) {
        const TensorType& data = TensorArg(args, 0, "nn.batch_norm");
        RequireDType(data, DType::kFloat32, "nn.batch_norm");
        if (data.shape.rank() != 4) {
          TNP_THROW(kTypeError) << "nn.batch_norm expects NCHW";
        }
        const std::int64_t channels = data.shape[1];
        for (std::size_t i = 1; i < 5; ++i) {
          if (TensorArg(args, i, "nn.batch_norm").shape.NumElements() != channels) {
            TNP_THROW(kTypeError) << "nn.batch_norm: parameter " << i << " size mismatch";
          }
        }
        call.attrs().GetDouble("epsilon", 1e-5);
        return args[0];
      },
      OpCategory::kElementwise, nullptr, true, false});

  reg.Register(OpDef{
      "nn.softmax", 1,
      [](const Call& call, const std::vector<Type>& args) {
        (void)call;
        const TensorType& data = TensorArg(args, 0, "nn.softmax");
        RequireDType(data, DType::kFloat32, "nn.softmax");
        return args[0];
      },
      OpCategory::kSoftmax, nullptr, false, false});

  reg.Register(OpDef{
      "nn.dropout", 1,
      [](const Call& call, const std::vector<Type>& args) {
        (void)call;
        return IdentityInfer(call, args);
      },
      OpCategory::kElementwise, nullptr, true, false});

  // ---------------- data movement ----------------
  reg.Register(OpDef{
      "nn.batch_flatten", 1,
      [](const Call&, const std::vector<Type>& args) {
        const TensorType& data = TensorArg(args, 0, "nn.batch_flatten");
        if (data.shape.rank() < 1) {
          TNP_THROW(kTypeError) << "nn.batch_flatten expects rank >= 1";
        }
        std::int64_t inner = 1;
        for (int i = 1; i < data.shape.rank(); ++i) inner *= data.shape[i];
        return Type::Tensor(Shape({data.shape[0], inner}), data.dtype);
      },
      OpCategory::kDataMove, nullptr, true, false});

  reg.Register(OpDef{
      "reshape", 1,
      [](const Call& call, const std::vector<Type>& args) {
        const TensorType& data = TensorArg(args, 0, "reshape");
        auto newshape = call.attrs().RequireInts("newshape");
        // A single -1 dim is inferred from the remaining elements.
        std::int64_t known = 1;
        int infer_at = -1;
        for (std::size_t i = 0; i < newshape.size(); ++i) {
          if (newshape[i] == -1) {
            if (infer_at != -1) TNP_THROW(kTypeError) << "reshape: multiple -1 dims";
            infer_at = static_cast<int>(i);
          } else {
            known *= newshape[i];
          }
        }
        if (infer_at >= 0) {
          if (known == 0 || data.shape.NumElements() % known != 0) {
            TNP_THROW(kTypeError) << "reshape: cannot infer -1 dim";
          }
          newshape[static_cast<std::size_t>(infer_at)] = data.shape.NumElements() / known;
          known *= newshape[static_cast<std::size_t>(infer_at)];
        }
        if (known != data.shape.NumElements()) {
          TNP_THROW(kTypeError) << "reshape: element count mismatch " << data.shape.ToString()
                                << " -> " << support::FormatIntVector(newshape);
        }
        return Type::Tensor(Shape(newshape), data.dtype);
      },
      OpCategory::kDataMove, nullptr, true, false});

  reg.Register(OpDef{
      "transpose", 1,
      [](const Call& call, const std::vector<Type>& args) {
        const TensorType& data = TensorArg(args, 0, "transpose");
        const auto axes = call.attrs().RequireInts("axes");
        if (static_cast<int>(axes.size()) != data.shape.rank()) {
          TNP_THROW(kTypeError) << "transpose: axes rank mismatch";
        }
        std::vector<std::int64_t> dims;
        std::vector<bool> seen(axes.size(), false);
        for (const std::int64_t axis : axes) {
          if (axis < 0 || axis >= data.shape.rank() || seen[static_cast<std::size_t>(axis)]) {
            TNP_THROW(kTypeError) << "transpose: invalid axes";
          }
          seen[static_cast<std::size_t>(axis)] = true;
          dims.push_back(data.shape[static_cast<int>(axis)]);
        }
        return Type::Tensor(Shape(dims), data.dtype);
      },
      OpCategory::kDataMove, nullptr, false, false});

  reg.Register(OpDef{
      "concatenate", 1,
      [](const Call& call, const std::vector<Type>& args) {
        // Relay-style: the single argument is a Tuple of tensors.
        if (args.size() != 1 || !args[0].IsTuple() || args[0].AsTuple().empty()) {
          TNP_THROW(kTypeError) << "concatenate expects a non-empty tuple argument";
        }
        const auto& fields = args[0].AsTuple();
        const TensorType& first = fields[0].AsTensor();
        int axis = static_cast<int>(call.attrs().GetInt("axis", 0));
        if (axis < 0) axis += first.shape.rank();
        if (axis < 0 || axis >= first.shape.rank()) {
          TNP_THROW(kTypeError) << "concatenate: bad axis";
        }
        std::int64_t axis_sum = 0;
        for (const auto& field : fields) {
          const TensorType& t = field.AsTensor();
          if (t.dtype != first.dtype || t.shape.rank() != first.shape.rank()) {
            TNP_THROW(kTypeError) << "concatenate: mismatched field types";
          }
          for (int i = 0; i < t.shape.rank(); ++i) {
            if (i != axis && t.shape[i] != first.shape[i]) {
              TNP_THROW(kTypeError) << "concatenate: mismatched non-axis dims";
            }
          }
          axis_sum += t.shape[axis];
        }
        std::vector<std::int64_t> dims = first.shape.dims();
        dims[static_cast<std::size_t>(axis)] = axis_sum;
        return Type::Tensor(Shape(dims), first.dtype);
      },
      OpCategory::kDataMove, nullptr, false, false});

  reg.Register(OpDef{
      "nn.pad", 1,
      [](const Call& call, const std::vector<Type>& args) {
        const TensorType& data = TensorArg(args, 0, "nn.pad");
        const auto before = call.attrs().RequireInts("pad_before");
        const auto after = call.attrs().RequireInts("pad_after");
        if (static_cast<int>(before.size()) != data.shape.rank() ||
            static_cast<int>(after.size()) != data.shape.rank()) {
          TNP_THROW(kTypeError) << "nn.pad: pad vectors must match rank";
        }
        std::vector<std::int64_t> dims = data.shape.dims();
        for (std::size_t i = 0; i < dims.size(); ++i) {
          if (before[i] < 0 || after[i] < 0) TNP_THROW(kTypeError) << "nn.pad: negative pad";
          dims[i] += before[i] + after[i];
        }
        return Type::Tensor(Shape(dims), data.dtype);
      },
      OpCategory::kDataMove, nullptr, false, false});

  reg.Register(OpDef{
      "nn.upsampling", 1,
      [](const Call& call, const std::vector<Type>& args) {
        const TensorType& data = TensorArg(args, 0, "nn.upsampling");
        RequireDType(data, DType::kFloat32, "nn.upsampling");
        if (data.shape.rank() != 4) TNP_THROW(kTypeError) << "nn.upsampling expects NCHW";
        const std::int64_t sh = call.attrs().GetInt("scale_h", 2);
        const std::int64_t sw = call.attrs().GetInt("scale_w", 2);
        if (sh < 1 || sw < 1) TNP_THROW(kTypeError) << "nn.upsampling: bad scale";
        return Type::Tensor(
            Shape({data.shape[0], data.shape[1], data.shape[2] * sh, data.shape[3] * sw}),
            data.dtype);
      },
      OpCategory::kDataMove, nullptr, false, false});

  reg.Register(OpDef{
      "strided_slice", 1,
      [](const Call& call, const std::vector<Type>& args) {
        const TensorType& data = TensorArg(args, 0, "strided_slice");
        const auto begin = call.attrs().RequireInts("begin");
        const auto end = call.attrs().RequireInts("end");
        const auto strides = call.attrs().GetInts(
            "strides", std::vector<std::int64_t>(begin.size(), 1));
        if (static_cast<int>(begin.size()) != data.shape.rank() || begin.size() != end.size() ||
            begin.size() != strides.size()) {
          TNP_THROW(kTypeError) << "strided_slice: rank mismatch";
        }
        std::vector<std::int64_t> dims;
        for (std::size_t i = 0; i < begin.size(); ++i) {
          const std::int64_t extent = data.shape[static_cast<int>(i)];
          std::int64_t b = begin[i] < 0 ? begin[i] + extent : begin[i];
          std::int64_t e = end[i] < 0 ? end[i] + extent : std::min(end[i], extent);
          if (strides[i] <= 0 || b < 0 || e < b) {
            TNP_THROW(kTypeError) << "strided_slice: invalid range on axis " << i;
          }
          dims.push_back((e - b + strides[i] - 1) / strides[i]);
        }
        return Type::Tensor(Shape(dims), data.dtype);
      },
      OpCategory::kDataMove, nullptr, false, false});

  reg.Register(OpDef{
      "mean", 1,
      [](const Call& call, const std::vector<Type>& args) {
        const TensorType& data = TensorArg(args, 0, "mean");
        RequireDType(data, DType::kFloat32, "mean");
        const auto axes = call.attrs().RequireInts("axis");
        const bool keepdims = call.attrs().GetInt("keepdims", 0) != 0;
        std::vector<bool> reduced(static_cast<std::size_t>(data.shape.rank()), false);
        for (std::int64_t axis : axes) {
          if (axis < 0) axis += data.shape.rank();
          if (axis < 0 || axis >= data.shape.rank()) TNP_THROW(kTypeError) << "mean: bad axis";
          reduced[static_cast<std::size_t>(axis)] = true;
        }
        std::vector<std::int64_t> dims;
        for (int i = 0; i < data.shape.rank(); ++i) {
          if (!reduced[static_cast<std::size_t>(i)]) {
            dims.push_back(data.shape[i]);
          } else if (keepdims) {
            dims.push_back(1);
          }
        }
        return Type::Tensor(Shape(dims), data.dtype);
      },
      OpCategory::kPool, nullptr, false, false});

  reg.Register(OpDef{
      "cast", 1,
      [](const Call& call, const std::vector<Type>& args) {
        const TensorType& data = TensorArg(args, 0, "cast");
        const DType dtype = DTypeFromName(call.attrs().RequireString("dtype"));
        return Type::Tensor(data.shape, dtype);
      },
      OpCategory::kElementwise, nullptr, true, false});

  // ---------------- QNN dialect ----------------
  // Operator-oriented quantization: scales/zero-points live in call attrs,
  // exactly the representation the paper's Section 3.3 must convert away
  // from when targeting the tensor-oriented Neuron IR.
  reg.Register(OpDef{
      "qnn.quantize", 1,
      [](const Call& call, const std::vector<Type>& args) {
        const TensorType& data = TensorArg(args, 0, "qnn.quantize");
        RequireDType(data, DType::kFloat32, "qnn.quantize");
        RequireQnnAttrs(call.attrs(), {"output_scale", "output_zero_point"}, "qnn.quantize");
        return Type::Tensor(data.shape, DType::kInt8);
      },
      OpCategory::kQuantize, nullptr, false, false});

  reg.Register(OpDef{
      "qnn.dequantize", 1,
      [](const Call& call, const std::vector<Type>& args) {
        const TensorType& data = TensorArg(args, 0, "qnn.dequantize");
        RequireDType(data, DType::kInt8, "qnn.dequantize");
        RequireQnnAttrs(call.attrs(), {"input_scale", "input_zero_point"}, "qnn.dequantize");
        return Type::Tensor(data.shape, DType::kFloat32);
      },
      OpCategory::kQuantize, nullptr, false, false});

  reg.Register(OpDef{
      "qnn.requantize", 1,
      [](const Call& call, const std::vector<Type>& args) {
        const TensorType& data = TensorArg(args, 0, "qnn.requantize");
        RequireDType(data, DType::kInt8, "qnn.requantize");
        RequireQnnAttrs(call.attrs(),
                        {"input_scale", "input_zero_point", "output_scale", "output_zero_point"},
                        "qnn.requantize");
        return args[0];
      },
      OpCategory::kQuantize, nullptr, false, false});

  reg.Register(OpDef{
      "qnn.conv2d", 3,
      [](const Call& call, const std::vector<Type>& args) {
        const TensorType& data = TensorArg(args, 0, "qnn.conv2d");
        const TensorType& weight = TensorArg(args, 1, "qnn.conv2d");
        const TensorType& bias = TensorArg(args, 2, "qnn.conv2d");
        RequireDType(data, DType::kInt8, "qnn.conv2d");
        RequireDType(weight, DType::kInt8, "qnn.conv2d");
        RequireDType(bias, DType::kInt32, "qnn.conv2d");
        RequireQnnAttrs(call.attrs(),
                        {"input_scale", "input_zero_point", "weight_scale", "weight_zero_point",
                         "output_scale", "output_zero_point"},
                        "qnn.conv2d");
        if (bias.shape.NumElements() != weight.shape[0]) {
          TNP_THROW(kTypeError) << "qnn.conv2d: bias size mismatch";
        }
        return Conv2DInferShapeOnly(call, args, DType::kInt8);
      },
      OpCategory::kConv,
      [](const Call& call, const std::vector<Type>& args, const Type& out) {
        return Conv2DMacs(call, args, out);
      },
      false, true});

  reg.Register(OpDef{
      "qnn.dense", 3,
      [](const Call& call, const std::vector<Type>& args) {
        const TensorType& data = TensorArg(args, 0, "qnn.dense");
        const TensorType& weight = TensorArg(args, 1, "qnn.dense");
        const TensorType& bias = TensorArg(args, 2, "qnn.dense");
        RequireDType(data, DType::kInt8, "qnn.dense");
        RequireDType(weight, DType::kInt8, "qnn.dense");
        RequireDType(bias, DType::kInt32, "qnn.dense");
        RequireQnnAttrs(call.attrs(),
                        {"input_scale", "input_zero_point", "weight_scale", "weight_zero_point",
                         "output_scale", "output_zero_point"},
                        "qnn.dense");
        return DenseInferShapeOnly(args, DType::kInt8);
      },
      OpCategory::kDense, DenseMacs, false, true});

  for (const char* name : {"qnn.add", "qnn.mul"}) {
    reg.Register(OpDef{
        name, 2,
        [](const Call& call, const std::vector<Type>& args) {
          const TensorType& a = TensorArg(args, 0, "qnn binary");
          const TensorType& b = TensorArg(args, 1, "qnn binary");
          RequireDType(a, DType::kInt8, "qnn binary");
          RequireDType(b, DType::kInt8, "qnn binary");
          if (a.shape != b.shape) {
            TNP_THROW(kTypeError) << "qnn binary ops require equal shapes";
          }
          RequireQnnAttrs(call.attrs(),
                          {"lhs_scale", "lhs_zero_point", "rhs_scale", "rhs_zero_point",
                           "output_scale", "output_zero_point"},
                          "qnn binary");
          return args[0];
        },
        OpCategory::kElementwise, nullptr, true, false});
  }

  reg.Register(OpDef{
      "qnn.concatenate", 1,
      [](const Call& call, const std::vector<Type>& args) {
        if (args.size() != 1 || !args[0].IsTuple() || args[0].AsTuple().empty()) {
          TNP_THROW(kTypeError) << "qnn.concatenate expects a non-empty tuple argument";
        }
        const auto& fields = args[0].AsTuple();
        const auto scales = call.attrs().GetDoubles("input_scales", {});
        const auto zps = call.attrs().GetInts("input_zero_points", {});
        if (scales.size() != fields.size() || zps.size() != fields.size()) {
          TNP_THROW(kTypeError) << "qnn.concatenate: per-input quant params required";
        }
        RequireQnnAttrs(call.attrs(), {"output_scale", "output_zero_point"},
                        "qnn.concatenate");
        // Shape logic is identical to concatenate.
        Call proxy("concatenate", {}, Attrs(call.attrs()));
        return OpRegistry::Global().Get("concatenate").infer(proxy, args);
      },
      OpCategory::kDataMove, nullptr, false, false});

  reg.Register(OpDef{
      "qnn.relu", 1,
      [](const Call& call, const std::vector<Type>& args) {
        const TensorType& data = TensorArg(args, 0, "qnn.relu");
        RequireDType(data, DType::kInt8, "qnn.relu");
        RequireQnnAttrs(call.attrs(), {"zero_point"}, "qnn.relu");
        return args[0];
      },
      OpCategory::kElementwise, nullptr, true, false});
}

}  // namespace relay
}  // namespace tnp
