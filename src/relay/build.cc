#include "relay/build.h"

#include <chrono>

#include "relay/op.h"
#include "relay/pass.h"
#include "relay/visitor.h"
#include "support/string_util.h"
#include "support/trace.h"

namespace tnp {
namespace relay {

namespace {

std::vector<ExprPtr> TopLevelPostOrder(const ExprPtr& body) {
  struct Collector : ExprVisitor {
    Collector() { visit_function_bodies_ = false; }
    std::vector<ExprPtr> nodes;
    void VisitVar(const VarPtr& v) override { nodes.push_back(v); }
    void VisitConstant(const ConstantPtr& c) override { nodes.push_back(c); }
    void VisitCall(const CallPtr& c) override { nodes.push_back(c); }
    void VisitTuple(const TuplePtr& t) override { nodes.push_back(t); }
    void VisitTupleGetItem(const TupleGetItemPtr& g) override { nodes.push_back(g); }
  };
  Collector collector;
  collector.Visit(body);
  return std::move(collector.nodes);
}

std::int64_t TypeBytes(const Type& type) {
  if (type.IsTensor()) return type.AsTensor().NumBytes();
  if (type.IsTuple()) {
    std::int64_t total = 0;
    for (const auto& field : type.AsTuple()) total += TypeBytes(field);
    return total;
  }
  return 0;
}

bool TypeIsInt8(const Type& type) {
  if (type.IsTensor()) return type.AsTensor().dtype == DType::kInt8;
  if (type.IsTuple()) {
    for (const auto& field : type.AsTuple()) {
      if (TypeIsInt8(field)) return true;
    }
  }
  return false;
}

/// Cost descriptor of one plain op call (types must be inferred).
sim::OpDesc DescribeOpCall(const CallPtr& call) {
  const OpDef& def = OpRegistry::Global().Get(call->op_name());
  sim::OpDesc desc;
  desc.category = def.category;
  desc.name = call->op_name();
  std::vector<Type> arg_types;
  for (const auto& arg : call->args()) {
    arg_types.push_back(arg->checked_type());
    if (arg->kind() == ExprKind::kConstant) {
      desc.weight_bytes += TypeBytes(arg->checked_type());
    } else {
      desc.input_bytes += TypeBytes(arg->checked_type());
    }
  }
  desc.output_bytes = TypeBytes(call->checked_type());
  desc.macs = CallMacs(*call, arg_types, call->checked_type());
  desc.int8 = TypeIsInt8(call->checked_type());
  return desc;
}

/// Aggregate cost descriptor of a fused primitive call: MACs add up, the
/// launch overhead is paid once, and intermediate tensors never leave the
/// register/cache tile so only the group's external inputs and final output
/// count as memory traffic.
sim::OpDesc DescribePrimitiveCall(const CallPtr& call) {
  const FunctionPtr& fn = call->fn();
  sim::OpDesc desc;
  desc.name = "fused";
  desc.fused_ops = 0;
  std::int64_t best_macs = -1;
  for (const auto& node : PostOrder(fn->body())) {
    if (node->kind() != ExprKind::kCall) continue;
    const auto inner = std::static_pointer_cast<Call>(node);
    if (inner->callee_kind() != CalleeKind::kOp) continue;
    ++desc.fused_ops;
    desc.name += "." + inner->op_name();
    std::vector<Type> arg_types;
    for (const auto& arg : inner->args()) {
      arg_types.push_back(arg->checked_type());
      if (arg->kind() == ExprKind::kConstant) desc.weight_bytes += TypeBytes(arg->checked_type());
    }
    const std::int64_t macs = CallMacs(*inner, arg_types, inner->checked_type());
    desc.macs += macs;
    if (macs > best_macs) {
      best_macs = macs;
      desc.category = OpRegistry::Global().Get(inner->op_name()).category;
    }
  }
  for (const auto& arg : call->args()) desc.input_bytes += TypeBytes(arg->checked_type());
  desc.output_bytes = TypeBytes(call->checked_type());
  desc.int8 = TypeIsInt8(call->checked_type());
  if (desc.fused_ops == 0) desc.fused_ops = 1;
  return desc;
}

}  // namespace

sim::SimClock CompiledModule::EstimateLatency() const {
  sim::SimClock clock;
  const sim::CostModel cost_model(*options.testbed);
  for (const auto& inst : instructions) {
    switch (inst.kind) {
      case Instruction::Kind::kCallOp:
      case Instruction::Kind::kCallPrimitive:
        clock.AddOp(inst.desc, options.host_device,
                    cost_model.OpMicros(inst.desc, options.host_device));
        break;
      case Instruction::Kind::kCallExternal:
        externals[static_cast<std::size_t>(inst.external_index)]->Run(
            {}, &clock, /*execute_numerics=*/false);
        break;
      default:
        break;  // constants / tuple plumbing are free
    }
  }
  return clock;
}

std::vector<ProfileEntry> CompiledModule::Profile() const {
  std::vector<ProfileEntry> entries;
  const sim::CostModel cost_model(*options.testbed);
  for (const auto& inst : instructions) {
    switch (inst.kind) {
      case Instruction::Kind::kCallOp:
      case Instruction::Kind::kCallPrimitive:
        entries.push_back(ProfileEntry{
            inst.desc.name, options.host_device,
            cost_model.OpMicros(inst.desc, options.host_device), inst.desc.macs});
        break;
      case Instruction::Kind::kCallExternal:
        externals[static_cast<std::size_t>(inst.external_index)]->AppendProfile(entries);
        break;
      default:
        break;
    }
  }
  return entries;
}

std::int64_t CompiledModule::TotalMacs() const {
  std::int64_t total = 0;
  for (const auto& inst : instructions) total += inst.desc.macs;
  return total;
}

int CompiledModule::NumExternalOps() const {
  int total = 0;
  for (const auto& external : externals) total += external->num_ops();
  return total;
}

CompiledModulePtr Build(const Module& module, const BuildOptions& options) {
  support::TraceScope build_scope;
  if (build_scope.armed()) build_scope.Begin("relay.build", "relay::Build");
  // Standard optimization pipeline (the analogue of opt_level=3). InferType
  // runs again before FuseOps because SimplifyExpr/FoldConstant rebuild
  // nodes without cached types.
  std::vector<Pass> pipeline = {InferType(), SimplifyExpr(), FoldConstant(), InferType()};
  if (options.fold_batch_norm) pipeline.push_back(FoldBatchNorm());
  if (options.enable_fusion) pipeline.push_back(FuseOps());
  pipeline.push_back(InferType());
  const Module optimized = Sequential(pipeline).Run(module);

  auto compiled = std::make_shared<CompiledModule>();
  compiled->options = options;

  // Codegen every external function.
  std::unordered_map<std::string, int> external_index;
  for (const auto& [name, fn] : optimized.functions()) {
    const std::string compiler = fn->compiler();
    if (compiler.empty()) continue;
    const auto& codegen = ExternalCodegenRegistry::Global().Get(compiler);
    external_index[name] = static_cast<int>(compiled->externals.size());
    compiled->externals.push_back(codegen(fn, name, options));
  }

  // Linearize main.
  const FunctionPtr& main_fn = optimized.main();
  TNP_CHECK(main_fn->checked_type().defined());
  std::unordered_map<const Expr*, int> slot_of;
  int next_slot = 0;

  for (const auto& param : main_fn->params()) {
    slot_of[param.get()] = next_slot;
    compiled->input_slots[param->name()] = next_slot;
    ++next_slot;
  }

  for (const auto& node : TopLevelPostOrder(main_fn->body())) {
    if (slot_of.count(node.get()) != 0) continue;  // params already placed

    Instruction inst;
    switch (node->kind()) {
      case ExprKind::kVar:
        TNP_THROW(kCompileError) << "free variable '"
                                 << std::static_pointer_cast<Var>(node)->name()
                                 << "' is not a parameter of main";
      case ExprKind::kConstant:
        inst.kind = Instruction::Kind::kConstant;
        inst.constant = std::static_pointer_cast<Constant>(node)->data();
        break;
      case ExprKind::kCall: {
        const auto call = std::static_pointer_cast<Call>(node);
        for (const auto& arg : call->args()) inst.input_slots.push_back(slot_of.at(arg.get()));
        switch (call->callee_kind()) {
          case CalleeKind::kOp:
            inst.kind = Instruction::Kind::kCallOp;
            inst.call = call;
            inst.desc = DescribeOpCall(call);
            break;
          case CalleeKind::kFunction:
            TNP_CHECK(call->fn()->IsPrimitive()) << "non-primitive embedded function at build";
            inst.kind = Instruction::Kind::kCallPrimitive;
            inst.primitive = call->fn();
            inst.desc = DescribePrimitiveCall(call);
            break;
          case CalleeKind::kGlobal: {
            const auto it = external_index.find(call->op_name());
            if (it == external_index.end()) {
              TNP_THROW(kCompileError)
                  << "call to global '@" << call->op_name() << "' which is not external";
            }
            inst.kind = Instruction::Kind::kCallExternal;
            inst.external_index = it->second;
            break;
          }
        }
        break;
      }
      case ExprKind::kTuple: {
        const auto tuple = std::static_pointer_cast<Tuple>(node);
        inst.kind = Instruction::Kind::kTuple;
        for (const auto& field : tuple->fields()) {
          inst.input_slots.push_back(slot_of.at(field.get()));
        }
        break;
      }
      case ExprKind::kTupleGetItem: {
        const auto get = std::static_pointer_cast<TupleGetItem>(node);
        inst.kind = Instruction::Kind::kTupleGetItem;
        inst.input_slots.push_back(slot_of.at(get->tuple().get()));
        inst.tuple_index = get->index();
        break;
      }
      case ExprKind::kFunction:
        continue;  // embedded primitive bodies are materialized via their call
    }

    inst.output_slot = next_slot;
    slot_of[node.get()] = next_slot;
    ++next_slot;
    compiled->instructions.push_back(std::move(inst));
  }

  compiled->num_slots = next_slot;
  compiled->output_slot = slot_of.at(main_fn->body().get());
  const Type& out_type = main_fn->body()->checked_type();
  compiled->num_outputs = out_type.IsTuple() ? static_cast<int>(out_type.AsTuple().size()) : 1;
  if (build_scope.armed()) {
    build_scope.AddArg(support::TraceArg(
        "instructions", static_cast<std::int64_t>(compiled->instructions.size())));
    build_scope.AddArg(support::TraceArg(
        "externals", static_cast<std::int64_t>(compiled->externals.size())));
  }
  return compiled;
}

GraphExecutor::GraphExecutor(CompiledModulePtr compiled) : compiled_(std::move(compiled)) {
  TNP_CHECK(compiled_ != nullptr);
  slots_.resize(static_cast<std::size_t>(compiled_->num_slots));
}

void GraphExecutor::SetInput(const std::string& name, NDArray value) {
  const auto it = compiled_->input_slots.find(name);
  if (it == compiled_->input_slots.end()) {
    TNP_THROW(kInvalidArgument) << "no graph input named '" << name << "'";
  }
  slots_[static_cast<std::size_t>(it->second)] = Value(std::move(value));
}

void GraphExecutor::Run() { Execute(/*execute_numerics=*/true); }

void GraphExecutor::Execute(bool execute_numerics) {
  TNP_TRACE_SCOPE("relay.execute", "GraphExecutor::Run",
                  support::TraceArg("numerics", execute_numerics));
  last_clock_.Reset();
  const sim::CostModel cost_model(*compiled_->options.testbed);
  const sim::DeviceKind host = compiled_->options.host_device;

  for (const auto& inst : compiled_->instructions) {
    std::vector<Value> args;
    args.reserve(inst.input_slots.size());
    for (const int slot : inst.input_slots) {
      args.push_back(slots_[static_cast<std::size_t>(slot)]);
    }

    Value result;
    switch (inst.kind) {
      case Instruction::Kind::kConstant:
        result = Value(inst.constant);
        break;
      case Instruction::Kind::kCallOp:
        last_clock_.AddOp(inst.desc, host, cost_model.OpMicros(inst.desc, host));
        if (execute_numerics) {
          result = EvalOpCall(inst.call->op_name(), inst.call->attrs(), *inst.call, args);
        }
        break;
      case Instruction::Kind::kCallPrimitive: {
        last_clock_.AddOp(inst.desc, host, cost_model.OpMicros(inst.desc, host));
        if (execute_numerics) {
          const FunctionPtr& fn = inst.primitive;
          TNP_CHECK_EQ(fn->params().size(), args.size());
          Environment env;
          for (std::size_t i = 0; i < args.size(); ++i) env[fn->params()[i].get()] = args[i];
          result = EvalExpr(fn->body(), env);
        }
        break;
      }
      case Instruction::Kind::kCallExternal: {
        sim::SimClock external_clock;
        result = compiled_->externals[static_cast<std::size_t>(inst.external_index)]->Run(
            args, &external_clock, execute_numerics);
        last_clock_.Merge(external_clock);
        break;
      }
      case Instruction::Kind::kTuple:
        result = Value(std::move(args));
        break;
      case Instruction::Kind::kTupleGetItem:
        if (execute_numerics) {
          const auto& fields = args.at(0).AsTuple();
          result = fields.at(static_cast<std::size_t>(inst.tuple_index));
        }
        break;
    }
    slots_[static_cast<std::size_t>(inst.output_slot)] = std::move(result);
  }
}

NDArray GraphExecutor::GetOutput(int index) const {
  TNP_CHECK(index >= 0 && index < compiled_->num_outputs) << "output index out of range";
  const Value& out = slots_[static_cast<std::size_t>(compiled_->output_slot)];
  if (!out.is_tuple()) {
    TNP_CHECK_EQ(index, 0);
    return out.AsTensor();
  }
  return out.AsTuple().at(static_cast<std::size_t>(index)).AsTensor();
}

}  // namespace relay
}  // namespace tnp
