#include "relay/build.h"

#include <algorithm>
#include <chrono>

#include "kernels/conv.h"
#include "relay/op.h"
#include "relay/pass.h"
#include "relay/visitor.h"
#include "support/memplan.h"
#include "support/string_util.h"
#include "support/trace.h"

namespace tnp {
namespace relay {

namespace {

std::vector<ExprPtr> TopLevelPostOrder(const ExprPtr& body) {
  struct Collector : ExprVisitor {
    Collector() { visit_function_bodies_ = false; }
    std::vector<ExprPtr> nodes;
    void VisitVar(const VarPtr& v) override { nodes.push_back(v); }
    void VisitConstant(const ConstantPtr& c) override { nodes.push_back(c); }
    void VisitCall(const CallPtr& c) override { nodes.push_back(c); }
    void VisitTuple(const TuplePtr& t) override { nodes.push_back(t); }
    void VisitTupleGetItem(const TupleGetItemPtr& g) override { nodes.push_back(g); }
  };
  Collector collector;
  collector.Visit(body);
  return std::move(collector.nodes);
}

std::int64_t TypeBytes(const Type& type) {
  if (type.IsTensor()) return type.AsTensor().NumBytes();
  if (type.IsTuple()) {
    std::int64_t total = 0;
    for (const auto& field : type.AsTuple()) total += TypeBytes(field);
    return total;
  }
  return 0;
}

bool TypeIsInt8(const Type& type) {
  if (type.IsTensor()) return type.AsTensor().dtype == DType::kInt8;
  if (type.IsTuple()) {
    for (const auto& field : type.AsTuple()) {
      if (TypeIsInt8(field)) return true;
    }
  }
  return false;
}

/// Cost descriptor of one plain op call (types must be inferred).
sim::OpDesc DescribeOpCall(const CallPtr& call) {
  const OpDef& def = OpRegistry::Global().Get(call->op_name());
  sim::OpDesc desc;
  desc.category = def.category;
  desc.name = call->op_name();
  std::vector<Type> arg_types;
  for (const auto& arg : call->args()) {
    arg_types.push_back(arg->checked_type());
    if (arg->kind() == ExprKind::kConstant) {
      desc.weight_bytes += TypeBytes(arg->checked_type());
    } else {
      desc.input_bytes += TypeBytes(arg->checked_type());
    }
  }
  desc.output_bytes = TypeBytes(call->checked_type());
  desc.macs = CallMacs(*call, arg_types, call->checked_type());
  desc.int8 = TypeIsInt8(call->checked_type());
  return desc;
}

/// Aggregate cost descriptor of a fused primitive call: MACs add up, the
/// launch overhead is paid once, and intermediate tensors never leave the
/// register/cache tile so only the group's external inputs and final output
/// count as memory traffic.
sim::OpDesc DescribePrimitiveCall(const CallPtr& call) {
  const FunctionPtr& fn = call->fn();
  sim::OpDesc desc;
  desc.name = "fused";
  desc.fused_ops = 0;
  std::int64_t best_macs = -1;
  for (const auto& node : PostOrder(fn->body())) {
    if (node->kind() != ExprKind::kCall) continue;
    const auto inner = std::static_pointer_cast<Call>(node);
    if (inner->callee_kind() != CalleeKind::kOp) continue;
    ++desc.fused_ops;
    desc.name += "." + inner->op_name();
    std::vector<Type> arg_types;
    for (const auto& arg : inner->args()) {
      arg_types.push_back(arg->checked_type());
      if (arg->kind() == ExprKind::kConstant) desc.weight_bytes += TypeBytes(arg->checked_type());
    }
    const std::int64_t macs = CallMacs(*inner, arg_types, inner->checked_type());
    desc.macs += macs;
    if (macs > best_macs) {
      best_macs = macs;
      desc.category = OpRegistry::Global().Get(inner->op_name()).category;
    }
  }
  for (const auto& arg : call->args()) desc.input_bytes += TypeBytes(arg->checked_type());
  desc.output_bytes = TypeBytes(call->checked_type());
  desc.int8 = TypeIsInt8(call->checked_type());
  if (desc.fused_ops == 0) desc.fused_ops = 1;
  return desc;
}

/// Linearizer: lowers expression trees (main body and, recursively, fused
/// primitive bodies) into the flat instruction stream, snapshotting op
/// names/attrs/types so no AST node survives into the CompiledModule.
class Lowerer {
 public:
  Lowerer(CompiledModule* compiled, const std::unordered_map<std::string, int>* external_index)
      : compiled_(compiled), external_index_(external_index) {}

  int next_slot = 0;

  /// Lower `body` under `scope` (Expr* -> slot for params and shared
  /// subtrees). `fusion_group` tags every emitted instruction (-1 = host
  /// ops of main). Returns the slot holding the body's value.
  int LowerBody(const ExprPtr& body, std::unordered_map<const Expr*, int> scope,
                int fusion_group) {
    for (const auto& node : TopLevelPostOrder(body)) {
      if (scope.count(node.get()) != 0) continue;  // params / shared subtrees

      Instruction inst;
      inst.fusion_group = fusion_group;
      // Instructions inlined from a fused primitive charge nothing
      // individually; the group's aggregate descriptor lands on its last
      // instruction (see the kFunction case below).
      inst.charge = fusion_group < 0;
      switch (node->kind()) {
        case ExprKind::kVar:
          TNP_THROW(kCompileError) << "free variable '"
                                   << std::static_pointer_cast<Var>(node)->name()
                                   << "' is not a parameter of main";
        case ExprKind::kConstant:
          inst.kind = Instruction::Kind::kConstant;
          inst.constant = std::static_pointer_cast<Constant>(node)->data();
          inst.out_type = node->checked_type();
          break;
        case ExprKind::kCall: {
          const auto call = std::static_pointer_cast<Call>(node);
          if (call->callee_kind() == CalleeKind::kFunction) {
            TNP_CHECK(call->fn()->IsPrimitive()) << "non-primitive embedded function at build";
            scope[node.get()] = InlinePrimitive(call, scope);
            continue;
          }
          for (const auto& arg : call->args()) inst.input_slots.push_back(scope.at(arg.get()));
          inst.out_type = call->checked_type();
          if (call->callee_kind() == CalleeKind::kOp) {
            inst.kind = Instruction::Kind::kCallOp;
            inst.op_name = call->op_name();
            inst.attrs = call->attrs();
            if (inst.charge) inst.desc = DescribeOpCall(call);
          } else {
            const auto it = external_index_->find(call->op_name());
            if (it == external_index_->end()) {
              TNP_THROW(kCompileError)
                  << "call to global '@" << call->op_name() << "' which is not external";
            }
            inst.kind = Instruction::Kind::kCallExternal;
            inst.external_index = it->second;
          }
          break;
        }
        case ExprKind::kTuple: {
          const auto tuple = std::static_pointer_cast<Tuple>(node);
          inst.kind = Instruction::Kind::kTuple;
          for (const auto& field : tuple->fields()) {
            inst.input_slots.push_back(scope.at(field.get()));
          }
          inst.out_type = node->checked_type();
          break;
        }
        case ExprKind::kTupleGetItem: {
          const auto get = std::static_pointer_cast<TupleGetItem>(node);
          inst.kind = Instruction::Kind::kTupleGetItem;
          inst.input_slots.push_back(scope.at(get->tuple().get()));
          inst.tuple_index = get->index();
          inst.out_type = node->checked_type();
          break;
        }
        case ExprKind::kFunction:
          continue;  // embedded primitive bodies are materialized via their call
      }

      inst.output_slot = next_slot;
      scope[node.get()] = next_slot;
      ++next_slot;
      compiled_->instructions.push_back(std::move(inst));
    }
    return scope.at(body.get());
  }

 private:
  /// Inline a fused primitive call into the instruction stream. The body's
  /// intermediates become ordinary planned slots; the group's aggregate cost
  /// descriptor is charged once, on the instruction producing the group's
  /// result, so simulated latency and profiles match the un-inlined form.
  int InlinePrimitive(const CallPtr& call, const std::unordered_map<const Expr*, int>& scope) {
    const FunctionPtr& fn = call->fn();
    TNP_CHECK_EQ(fn->params().size(), call->args().size());
    std::unordered_map<const Expr*, int> inner;
    for (std::size_t i = 0; i < call->args().size(); ++i) {
      inner[fn->params()[i].get()] = scope.at(call->args()[i].get());
    }
    const int group = next_group_++;
    const std::size_t first_inst = compiled_->instructions.size();
    const int result_slot = LowerBody(fn->body(), std::move(inner), group);
    // Charge the group's cost on its last instruction (degenerate bodies —
    // a bare param — emit none and cost nothing).
    if (compiled_->instructions.size() > first_inst) {
      Instruction& last = compiled_->instructions.back();
      last.charge = true;
      last.desc = DescribePrimitiveCall(call);
    }
    return result_slot;
  }

  CompiledModule* compiled_;
  const std::unordered_map<std::string, int>* external_index_;
  int next_group_ = 0;
};

/// One prepack-eligible conv/dense call found by ForEachPrepackSite.
struct PrepackSite {
  bool conv = false;            ///< conv2d vs dense
  bool int8 = false;
  std::int64_t groups = 1;      ///< conv groups (1 for dense)
  const NDArray* weight = nullptr;
  tune::Workload workload;      ///< the GEMM the runtime kernel will execute
};

/// Walk the host instruction stream and call `fn(inst, site)` for every
/// conv/dense kCallOp with a constant, pack-eligible weight. One sweep
/// shared by PrepackConstantWeights and CollectGemmWorkloads so the tuner
/// tunes exactly the GEMMs the build will look up.
template <typename Fn>
void ForEachPrepackSite(CompiledModule* compiled, Fn&& fn) {
  std::unordered_map<int, const NDArray*> constants;
  for (const auto& inst : compiled->instructions) {
    if (inst.kind == Instruction::Kind::kConstant) {
      constants[inst.output_slot] = &inst.constant;
    }
  }
  for (auto& inst : compiled->instructions) {
    if (inst.kind != Instruction::Kind::kCallOp || inst.input_slots.size() < 2) continue;
    const bool conv = inst.op_name == "nn.conv2d" || inst.op_name == "qnn.conv2d";
    const bool dense = inst.op_name == "nn.dense" || inst.op_name == "qnn.dense";
    if (!conv && !dense) continue;
    const auto it = constants.find(inst.input_slots[1]);
    if (it == constants.end()) continue;  // dynamic weight: runtime fallback
    const NDArray& weight = *it->second;
    const bool int8 = weight.dtype() == DType::kInt8;
    if (!int8 && weight.dtype() != DType::kFloat32) continue;
    if (!inst.out_type.IsTensor()) continue;
    const TensorType& out = inst.out_type.AsTensor();

    PrepackSite site;
    site.conv = conv;
    site.int8 = int8;
    site.weight = &weight;
    site.workload.dtype = int8 ? DType::kInt8 : DType::kFloat32;
    if (conv) {
      if (weight.shape().rank() != 4 || out.shape.rank() != 4) continue;
      site.groups = inst.attrs.GetInt("groups", 1);
      if (site.groups <= 0 || weight.shape()[0] % site.groups != 0) continue;
      if (!kernels::Conv2DUsesPackedWeights(weight.shape()[0] / site.groups)) continue;
      // The im2col GEMM: (co_g x k) panels times (k x out-pixels).
      site.workload.op = "conv2d";
      site.workload.m = weight.shape()[0] / site.groups;
      site.workload.k = weight.shape()[1] * weight.shape()[2] * weight.shape()[3];
      site.workload.n = out.shape[2] * out.shape[3];
    } else {
      if (weight.shape().rank() != 2 || out.shape.rank() != 2) continue;
      // Dense: (rows x k) activations times (k x units) panels.
      site.workload.op = "dense";
      site.workload.m = out.shape[0];
      site.workload.k = weight.shape()[1];
      site.workload.n = weight.shape()[0];
    }
    if (site.workload.m <= 0 || site.workload.k <= 0 || site.workload.n <= 0) continue;
    fn(inst, site);
  }
}

/// Pack constant conv/dense weights into GEMM panel layout once, at build
/// time (see kernels/pack.h), under the tuning DB's winning config for each
/// workload (untuned defaults on miss). The weight's identity is its data
/// pointer plus the chosen config — instructions sharing one constant and
/// one schedule share one cache entry, and fused primitive bodies are
/// already inlined as plain kCallOp instructions so they are covered by the
/// same sweep.
void PrepackConstantWeights(CompiledModule* compiled) {
  ForEachPrepackSite(compiled, [&](Instruction& inst, const PrepackSite& site) {
    const kernels::GemmConfig config = tune::TunedConfigFor(site.workload);
    const NDArray& weight = *site.weight;
    const void* identity = weight.RawData();

    std::string key = (site.conv ? "conv/" : "dense/");
    key += site.int8 ? "s8/" : "f32/";
    key += std::to_string(site.groups) + "/" +
           std::to_string(reinterpret_cast<std::uintptr_t>(identity)) + "/" +
           config.ToString();
    inst.packed_weights = compiled->packed_weights.GetOrPack(key, [&] {
      if (site.conv) {
        return site.int8 ? kernels::PackConvWeightsS8(weight, site.groups, config)
                         : kernels::PackConvWeightsF32(weight, site.groups, config);
      }
      return site.int8 ? kernels::PackDenseWeightsS8(weight, config)
                       : kernels::PackDenseWeightsF32(weight, config);
    });
  });
}

/// In-place aliasing classes: which kCallOp instructions may write their
/// output over their first input's arena region. Every kernel listed is
/// element-local (out[i] depends only on in[i] at the same flat index).
enum class AliasClass {
  kNone,
  kIdentity,   ///< pure copy / view: reshape, batch_flatten, dropout
  kUnary,      ///< out[i] = f(in[i]), same shape and dtype
  kBinaryLhs,  ///< out[i] = f(lhs[i], rhs[...]), lhs shape must equal out shape
};

AliasClass AliasClassOf(const std::string& op) {
  if (op == "reshape" || op == "nn.batch_flatten" || op == "nn.dropout") {
    return AliasClass::kIdentity;
  }
  if (op == "nn.relu" || op == "nn.leaky_relu" || op == "sigmoid" || op == "tanh" ||
      op == "exp" || op == "sqrt" || op == "clip" || op == "qnn.requantize" ||
      op == "qnn.relu") {
    return AliasClass::kUnary;
  }
  if (op == "add" || op == "subtract" || op == "multiply" || op == "divide" ||
      op == "maximum" || op == "minimum" || op == "qnn.add" || op == "qnn.mul") {
    return AliasClass::kBinaryLhs;
  }
  return AliasClass::kNone;
}

/// Liveness analysis + greedy best-fit storage assignment over the linear
/// program. Tensor outputs of host ops live in one shared arena; a slot's
/// region is recycled once its last reader has executed. Tuple/TupleGetItem
/// instructions forward references to their inputs' storage, so their input
/// lifetimes are extended to the forwarding value's own last use (computed
/// by a reverse sweep). Elementwise/identity ops alias their input's region
/// in place when they are its final reader.
MemoryPlan PlanMemory(const CompiledModule& compiled) {
  const int n_slots = compiled.num_slots;
  const int n_insts = static_cast<int>(compiled.instructions.size());

  std::vector<int> first_def(static_cast<std::size_t>(n_slots), -1);
  std::vector<int> last_use(static_cast<std::size_t>(n_slots), -1);
  for (int i = 0; i < n_insts; ++i) {
    const Instruction& inst = compiled.instructions[static_cast<std::size_t>(i)];
    for (const int slot : inst.input_slots) last_use[static_cast<std::size_t>(slot)] = i;
    first_def[static_cast<std::size_t>(inst.output_slot)] = i;
  }
  // The program result must survive past the last instruction (GetOutput).
  last_use[static_cast<std::size_t>(compiled.output_slot)] = MemoryPlan::kLiveForever;
  // Reverse sweep: a tuple (or projection) holds references into its inputs'
  // storage, so those inputs stay live as long as the forwarding value does.
  // Reverse order makes the propagation transitive through chains like
  // slot -> tuple -> get_item.
  for (int i = n_insts - 1; i >= 0; --i) {
    const Instruction& inst = compiled.instructions[static_cast<std::size_t>(i)];
    if (inst.kind != Instruction::Kind::kTuple &&
        inst.kind != Instruction::Kind::kTupleGetItem) {
      continue;
    }
    const int out_lu = last_use[static_cast<std::size_t>(inst.output_slot)];
    for (const int slot : inst.input_slots) {
      last_use[static_cast<std::size_t>(slot)] =
          std::max(last_use[static_cast<std::size_t>(slot)], out_lu);
    }
  }

  MemoryPlan plan;
  plan.slots.resize(static_cast<std::size_t>(n_slots));
  for (int s = 0; s < n_slots; ++s) {
    plan.slots[static_cast<std::size_t>(s)].first_def = first_def[static_cast<std::size_t>(s)];
    plan.slots[static_cast<std::size_t>(s)].last_use = last_use[static_cast<std::size_t>(s)];
  }

  support::LinearMemoryPlanner planner;
  std::vector<int> region_of(static_cast<std::size_t>(n_slots), -1);

  for (int i = 0; i < n_insts; ++i) {
    const Instruction& inst = compiled.instructions[static_cast<std::size_t>(i)];
    planner.BeginStep(i);
    SlotPlan& out = plan.slots[static_cast<std::size_t>(inst.output_slot)];

    if (inst.kind == Instruction::Kind::kConstant) {
      out.kind = SlotPlan::Kind::kConstant;
      continue;
    }
    if (inst.kind != Instruction::Kind::kCallOp || !inst.out_type.IsTensor()) {
      continue;  // kValue: tuples, projections, external outputs
    }

    const TensorType& out_type = inst.out_type.AsTensor();
    const std::int64_t out_bytes = out_type.NumBytes();
    // Dead outputs still need a buffer for the kernel to write into; they
    // just expire immediately.
    const int lu = std::max(last_use[static_cast<std::size_t>(inst.output_slot)], i);

    // Try to run the op in place over its first input's region.
    const AliasClass alias_class = AliasClassOf(inst.op_name);
    if (alias_class != AliasClass::kNone && !inst.input_slots.empty()) {
      const int in_slot = inst.input_slots.front();
      const int in_region = region_of[static_cast<std::size_t>(in_slot)];
      const SlotPlan& in_plan = plan.slots[static_cast<std::size_t>(in_slot)];
      bool ok = in_region >= 0;  // input must itself be arena-backed
      if (ok && alias_class == AliasClass::kIdentity) {
        // A copy-free view: safe even when the input stays live, because the
        // bytes are identical — only the region's lifetime must cover both.
        ok = in_plan.type.NumBytes() == out_bytes && in_plan.type.dtype == out_type.dtype;
      } else if (ok) {
        // Destructive in-place: this instruction must be the final reader of
        // the region (aliases included — the region's last_use covers them).
        ok = in_plan.type.shape == out_type.shape && in_plan.type.dtype == out_type.dtype &&
             planner.region(in_region).last_use <= i;
      }
      if (ok) {
        planner.ExtendLifetime(in_region, lu);
        region_of[static_cast<std::size_t>(inst.output_slot)] = in_region;
        out.kind = SlotPlan::Kind::kAlias;
        out.alias_of = in_slot;
        out.offset = plan.slots[static_cast<std::size_t>(in_slot)].offset;
        out.bytes = out_bytes;
        out.type = out_type;
        ++plan.num_alias_slots;
        continue;
      }
    }

    const int region = planner.Allocate(out_bytes, lu);
    region_of[static_cast<std::size_t>(inst.output_slot)] = region;
    out.kind = SlotPlan::Kind::kArena;
    out.offset = planner.region(region).offset;
    out.bytes = out_bytes;
    out.type = out_type;
    ++plan.num_arena_slots;
  }

  // Publish each region's final lifetime (after all alias extensions) so the
  // overlap invariant is directly checkable: two arena-backed slots of
  // different regions whose byte ranges intersect must have disjoint
  // [first_def, last_use] windows.
  for (int s = 0; s < n_slots; ++s) {
    if (region_of[static_cast<std::size_t>(s)] >= 0) {
      plan.slots[static_cast<std::size_t>(s)].last_use =
          planner.region(region_of[static_cast<std::size_t>(s)]).last_use;
    }
  }

  plan.arena_bytes = planner.arena_bytes();
  plan.planned_bytes = planner.total_bytes();
  return plan;
}

}  // namespace

sim::SimClock CompiledModule::EstimateLatency() const {
  sim::SimClock clock;
  const sim::CostModel cost_model(*options.testbed);
  for (const auto& inst : instructions) {
    switch (inst.kind) {
      case Instruction::Kind::kCallOp:
        if (inst.charge) {
          clock.AddOp(inst.desc, options.host_device,
                      cost_model.OpMicros(inst.desc, options.host_device));
        }
        break;
      case Instruction::Kind::kCallExternal:
        externals[static_cast<std::size_t>(inst.external_index)]->Run(
            {}, &clock, /*execute_numerics=*/false);
        break;
      default:
        break;  // constants / tuple plumbing are free
    }
  }
  return clock;
}

std::vector<ProfileEntry> CompiledModule::Profile() const {
  std::vector<ProfileEntry> entries;
  const sim::CostModel cost_model(*options.testbed);
  for (const auto& inst : instructions) {
    switch (inst.kind) {
      case Instruction::Kind::kCallOp:
        if (inst.charge) {
          entries.push_back(ProfileEntry{
              inst.desc.name, options.host_device,
              cost_model.OpMicros(inst.desc, options.host_device), inst.desc.macs});
        }
        break;
      case Instruction::Kind::kCallExternal:
        externals[static_cast<std::size_t>(inst.external_index)]->AppendProfile(entries);
        break;
      default:
        break;
    }
  }
  return entries;
}

std::int64_t CompiledModule::TotalMacs() const {
  std::int64_t total = 0;
  for (const auto& inst : instructions) total += inst.desc.macs;
  return total;
}

int CompiledModule::NumExternalOps() const {
  int total = 0;
  for (const auto& external : externals) total += external->num_ops();
  return total;
}

CompiledModulePtr Build(const Module& module, const BuildOptions& options) {
  support::TraceScope build_scope;
  if (build_scope.armed()) build_scope.Begin("relay.build", "relay::Build");
  // Standard optimization pipeline (the analogue of opt_level=3). InferType
  // runs again before FuseOps because SimplifyExpr/FoldConstant rebuild
  // nodes without cached types.
  std::vector<Pass> pipeline = {InferType(), SimplifyExpr(), FoldConstant(), InferType()};
  if (options.fold_batch_norm) pipeline.push_back(FoldBatchNorm());
  if (options.enable_fusion) pipeline.push_back(FuseOps());
  pipeline.push_back(InferType());
  const Module optimized = Sequential(pipeline).Run(module);

  auto compiled = std::make_shared<CompiledModule>();
  compiled->options = options;

  // Codegen every external function.
  std::unordered_map<std::string, int> external_index;
  for (const auto& [name, fn] : optimized.functions()) {
    const std::string compiler = fn->compiler();
    if (compiler.empty()) continue;
    const auto& codegen = ExternalCodegenRegistry::Global().Get(compiler);
    external_index[name] = static_cast<int>(compiled->externals.size());
    compiled->externals.push_back(codegen(fn, name, options));
  }

  // Linearize main (fused primitive bodies inline into the same stream so
  // their intermediates are planned like any other slot).
  const FunctionPtr& main_fn = optimized.main();
  TNP_CHECK(main_fn->checked_type().defined());
  Lowerer lowerer(compiled.get(), &external_index);
  std::unordered_map<const Expr*, int> scope;
  for (const auto& param : main_fn->params()) {
    scope[param.get()] = lowerer.next_slot;
    compiled->input_slots[param->name()] = lowerer.next_slot;
    ++lowerer.next_slot;
  }
  compiled->output_slot = lowerer.LowerBody(main_fn->body(), std::move(scope), -1);
  compiled->num_slots = lowerer.next_slot;

  const Type& out_type = main_fn->body()->checked_type();
  compiled->num_outputs = out_type.IsTuple() ? static_cast<int>(out_type.AsTuple().size()) : 1;

  compiled->memory_plan = PlanMemory(*compiled);

  compiled->tuning_fingerprint = tune::ActiveTuningFingerprint();
  if (options.prepack_weights) PrepackConstantWeights(compiled.get());

  if (build_scope.armed()) {
    build_scope.AddArg(support::TraceArg(
        "instructions", static_cast<std::int64_t>(compiled->instructions.size())));
    build_scope.AddArg(support::TraceArg(
        "externals", static_cast<std::int64_t>(compiled->externals.size())));
    build_scope.AddArg(support::TraceArg("arena_bytes", compiled->memory_plan.arena_bytes));
  }
  return compiled;
}

std::vector<tune::Workload> CollectGemmWorkloads(const CompiledModule& compiled) {
  std::vector<tune::Workload> workloads;
  std::unordered_map<std::string, bool> seen;
  // The sweep never mutates through `inst` here; the non-const parameter is
  // only so PrepackConstantWeights can share it.
  ForEachPrepackSite(const_cast<CompiledModule*>(&compiled),
                     [&](Instruction&, const PrepackSite& site) {
                       if (seen.emplace(site.workload.Key(), true).second) {
                         workloads.push_back(site.workload);
                       }
                     });
  return workloads;
}

GraphExecutor::GraphExecutor(CompiledModulePtr compiled, bool use_memory_plan)
    : compiled_(std::move(compiled)), planned_(use_memory_plan), arena_("relay/executor") {
  TNP_CHECK(compiled_ != nullptr);
  slots_.resize(static_cast<std::size_t>(compiled_->num_slots));
  if (!planned_) return;

  const MemoryPlan& plan = compiled_->memory_plan;
  arena_.Reserve(static_cast<std::size_t>(plan.arena_bytes));
  planned_views_.resize(static_cast<std::size_t>(compiled_->num_slots));
  for (int s = 0; s < compiled_->num_slots; ++s) {
    const SlotPlan& slot = plan.slots[static_cast<std::size_t>(s)];
    if (slot.kind != SlotPlan::Kind::kArena && slot.kind != SlotPlan::Kind::kAlias) continue;
    const std::size_t bytes = static_cast<std::size_t>(slot.bytes);
    planned_views_[static_cast<std::size_t>(s)] =
        NDArray::ViewOver(arena_.Data(static_cast<std::size_t>(slot.offset), bytes), bytes,
                          slot.type.shape, slot.type.dtype, arena_.handle());
  }
  // Constants bind once; Execute never reassigns them in planned mode.
  for (const auto& inst : compiled_->instructions) {
    if (inst.kind == Instruction::Kind::kConstant) {
      slots_[static_cast<std::size_t>(inst.output_slot)] = Value(inst.constant);
    }
  }
  external_sessions_.resize(compiled_->externals.size());
  for (std::size_t i = 0; i < compiled_->externals.size(); ++i) {
    external_sessions_[i] = compiled_->externals[i]->CreateSession();
  }
}

std::int64_t GraphExecutor::arena_bytes() const {
  return planned_ ? compiled_->memory_plan.arena_bytes : 0;
}

void GraphExecutor::SetInput(const std::string& name, NDArray value) {
  const auto it = compiled_->input_slots.find(name);
  if (it == compiled_->input_slots.end()) {
    TNP_THROW(kInvalidArgument) << "no graph input named '" << name << "'";
  }
  slots_[static_cast<std::size_t>(it->second)] = Value(std::move(value));
}

void GraphExecutor::Run() { Execute(/*execute_numerics=*/true); }

void GraphExecutor::Execute(bool execute_numerics) {
  TNP_TRACE_SCOPE("relay.execute", "GraphExecutor::Run",
                  support::TraceArg("numerics", execute_numerics),
                  support::TraceArg("planned", planned_));
  last_clock_.Reset();
  const sim::CostModel cost_model(*compiled_->options.testbed);
  const sim::DeviceKind host = compiled_->options.host_device;

  for (const auto& inst : compiled_->instructions) {
    std::vector<Value> args;
    args.reserve(inst.input_slots.size());
    for (const int slot : inst.input_slots) {
      args.push_back(slots_[static_cast<std::size_t>(slot)]);
    }

    switch (inst.kind) {
      case Instruction::Kind::kConstant:
        if (!planned_) {
          slots_[static_cast<std::size_t>(inst.output_slot)] = Value(inst.constant);
        }
        break;
      case Instruction::Kind::kCallOp: {
        if (inst.charge) {
          last_clock_.AddOp(inst.desc, host, cost_model.OpMicros(inst.desc, host));
        }
        if (!execute_numerics) break;
        NDArray out = planned_ ? planned_views_[static_cast<std::size_t>(inst.output_slot)]
                               : NDArray();
        if (!out.defined()) {
          const TensorType& out_type = inst.out_type.AsTensor();
          out = NDArray::Empty(out_type.shape, out_type.dtype);
        }
        EvalOpCallInto(inst.op_name, inst.attrs, args, out, inst.packed_weights.get());
        slots_[static_cast<std::size_t>(inst.output_slot)] = Value(std::move(out));
        break;
      }
      case Instruction::Kind::kCallExternal: {
        sim::SimClock external_clock;
        const std::size_t index = static_cast<std::size_t>(inst.external_index);
        ExternalSession* session =
            planned_ && index < external_sessions_.size() ? external_sessions_[index].get()
                                                          : nullptr;
        slots_[static_cast<std::size_t>(inst.output_slot)] =
            compiled_->externals[index]->Run(args, &external_clock, execute_numerics, session);
        last_clock_.Merge(external_clock);
        break;
      }
      case Instruction::Kind::kTuple:
        slots_[static_cast<std::size_t>(inst.output_slot)] = Value(std::move(args));
        break;
      case Instruction::Kind::kTupleGetItem:
        if (execute_numerics) {
          const auto& fields = args.at(0).AsTuple();
          slots_[static_cast<std::size_t>(inst.output_slot)] =
              fields.at(static_cast<std::size_t>(inst.tuple_index));
        }
        break;
    }
  }
}

NDArray GraphExecutor::GetOutput(int index) const {
  TNP_CHECK(index >= 0 && index < compiled_->num_outputs) << "output index out of range";
  const Value& out = slots_[static_cast<std::size_t>(compiled_->output_slot)];
  if (!out.is_tuple()) {
    TNP_CHECK_EQ(index, 0);
    return out.AsTensor();
  }
  return out.AsTuple().at(static_cast<std::size_t>(index)).AsTensor();
}

}  // namespace relay
}  // namespace tnp
