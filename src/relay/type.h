// Relay-style types. Only two type forms exist at the graph level:
// TensorType (static shape + dtype) and TupleType. Every expression gets a
// checked type assigned by the InferType pass.
#pragma once

#include <string>
#include <vector>

#include "support/logging.h"
#include "tensor/dtype.h"
#include "tensor/shape.h"

namespace tnp {
namespace relay {

class Type;

struct TensorType {
  Shape shape;
  DType dtype = DType::kFloat32;

  TensorType() = default;
  TensorType(Shape shape_in, DType dtype_in) : shape(std::move(shape_in)), dtype(dtype_in) {}

  std::int64_t NumBytes() const {
    return shape.NumElements() * static_cast<std::int64_t>(DTypeBytes(dtype));
  }

  bool operator==(const TensorType& other) const {
    return shape == other.shape && dtype == other.dtype;
  }
  bool operator!=(const TensorType& other) const { return !(*this == other); }

  std::string ToString() const {
    return "Tensor" + shape.ToString() + ":" + DTypeName(dtype);
  }
};

class Type {
 public:
  enum class Kind { kUnknown, kTensor, kTuple };

  Type() = default;
  Type(TensorType tensor) : kind_(Kind::kTensor), tensor_(std::move(tensor)) {}  // NOLINT
  explicit Type(std::vector<Type> fields) : kind_(Kind::kTuple), fields_(std::move(fields)) {}

  static Type Tensor(Shape shape, DType dtype) {
    return Type(TensorType(std::move(shape), dtype));
  }
  static Type Tuple(std::vector<Type> fields) { return Type(std::move(fields)); }

  Kind kind() const noexcept { return kind_; }
  bool defined() const noexcept { return kind_ != Kind::kUnknown; }
  bool IsTensor() const noexcept { return kind_ == Kind::kTensor; }
  bool IsTuple() const noexcept { return kind_ == Kind::kTuple; }

  const TensorType& AsTensor() const {
    TNP_CHECK(IsTensor()) << "type is not a tensor: " << ToString();
    return tensor_;
  }
  const std::vector<Type>& AsTuple() const {
    TNP_CHECK(IsTuple()) << "type is not a tuple: " << ToString();
    return fields_;
  }

  bool operator==(const Type& other) const {
    if (kind_ != other.kind_) return false;
    if (kind_ == Kind::kTensor) return tensor_ == other.tensor_;
    if (kind_ == Kind::kTuple) return fields_ == other.fields_;
    return true;
  }
  bool operator!=(const Type& other) const { return !(*this == other); }

  std::string ToString() const {
    switch (kind_) {
      case Kind::kUnknown: return "?";
      case Kind::kTensor: return tensor_.ToString();
      case Kind::kTuple: {
        std::string out = "(";
        for (std::size_t i = 0; i < fields_.size(); ++i) {
          if (i != 0) out += ", ";
          out += fields_[i].ToString();
        }
        return out + ")";
      }
    }
    return "?";
  }

 private:
  Kind kind_ = Kind::kUnknown;
  TensorType tensor_;
  std::vector<Type> fields_;
};

}  // namespace relay
}  // namespace tnp
