// QnnCanonicalize: lower the QNN dialect to plain float ops (the analogue
// of TVM's qnn.transform.Canonicalize, with a float reference lowering).
//
// Quantized constants are dequantized into float constants; quantize /
// requantize become range clips (saturation is the dominant quantization
// artefact; rounding noise is bounded by half a scale step). The result is
// a pure-float module whose outputs approximate the integer pipeline within
// a few output quantization steps — which the test suite asserts. This is
// the reference against which the int8 path is validated, and lets a
// backend without integer kernels still run pre-quantized models.
#include "relay/pass.h"

#include "kernels/quantize.h"
#include "relay/op.h"
#include "relay/visitor.h"

namespace tnp {
namespace relay {

namespace {

QuantParams AttrQuant(const Attrs& attrs, const char* scale_key, const char* zp_key) {
  return QuantParams(static_cast<float>(attrs.RequireDouble(scale_key)),
                     static_cast<std::int32_t>(attrs.RequireInt(zp_key)));
}

/// Clip to the real range representable under `quant` (int8 saturation).
ExprPtr ClipToRange(ExprPtr x, const QuantParams& quant) {
  return MakeCall("clip", {std::move(x)},
                  Attrs()
                      .SetDouble("a_min", quant.Dequantize(-128))
                      .SetDouble("a_max", quant.Dequantize(127)));
}

/// Dequantize an int8 constant into a float constant.
ExprPtr DequantConstant(const ExprPtr& expr, const QuantParams& quant) {
  TNP_CHECK(expr->kind() == ExprKind::kConstant)
      << "QnnCanonicalize requires constant quantized weights";
  const NDArray& q = As<Constant>(expr)->data();
  NDArray f = NDArray::Empty(q.shape(), DType::kFloat32);
  kernels::DequantizeS8ToF32(q, f, quant);
  return MakeConstant(std::move(f));
}

/// Convert an int32 bias constant into float with scale in*w.
ExprPtr FloatBias(const ExprPtr& expr, float scale) {
  TNP_CHECK(expr->kind() == ExprKind::kConstant);
  const NDArray& b = As<Constant>(expr)->data();
  TNP_CHECK(b.dtype() == DType::kInt32);
  NDArray f = NDArray::Empty(b.shape(), DType::kFloat32);
  const std::int32_t* src = b.Data<std::int32_t>();
  float* dst = f.Data<float>();
  for (std::int64_t i = 0; i < b.NumElements(); ++i) {
    dst[i] = static_cast<float>(src[i]) * scale;
  }
  return MakeConstant(std::move(f));
}

class Canonicalizer : public ExprMutator {
 protected:
  ExprPtr RewriteVar(const VarPtr& var) override {
    // Int8 graph inputs become float inputs (callers feed real values).
    if (var->type_annotation().defined() && var->type_annotation().IsTensor() &&
        var->type_annotation().AsTensor().dtype == DType::kInt8) {
      const auto it = var_replacements_.find(var.get());
      if (it != var_replacements_.end()) return it->second;
      auto replacement = MakeVar(
          var->name(),
          Type::Tensor(var->type_annotation().AsTensor().shape, DType::kFloat32));
      var_replacements_[var.get()] = replacement;
      return replacement;
    }
    return var;
  }

  ExprPtr RewriteCall(const CallPtr& call) override {
    if (call->callee_kind() != CalleeKind::kOp) return call;
    const std::string& op = call->op_name();
    const Attrs& attrs = call->attrs();
    const auto& args = call->args();

    if (op == "qnn.quantize") {
      return ClipToRange(args[0], AttrQuant(attrs, "output_scale", "output_zero_point"));
    }
    if (op == "qnn.dequantize") {
      return args[0];  // already float in the canonicalized graph
    }
    if (op == "qnn.requantize") {
      return ClipToRange(args[0], AttrQuant(attrs, "output_scale", "output_zero_point"));
    }
    if (op == "qnn.conv2d" || op == "qnn.dense") {
      const QuantParams in_q = AttrQuant(attrs, "input_scale", "input_zero_point");
      const QuantParams w_q = AttrQuant(attrs, "weight_scale", "weight_zero_point");
      const QuantParams out_q = AttrQuant(attrs, "output_scale", "output_zero_point");
      Attrs float_attrs;
      if (op == "qnn.conv2d") {
        float_attrs.SetInts("strides", attrs.GetInts("strides", {1, 1}))
            .SetInts("padding", attrs.GetInts("padding", {0, 0}))
            .SetInts("dilation", attrs.GetInts("dilation", {1, 1}))
            .SetInt("groups", attrs.GetInt("groups", 1));
      }
      ExprPtr result = MakeCall(op == "qnn.conv2d" ? "nn.conv2d" : "nn.dense",
                                {args[0], DequantConstant(args[1], w_q),
                                 FloatBias(args[2], in_q.scale * w_q.scale)},
                                std::move(float_attrs));
      return ClipToRange(std::move(result), out_q);
    }
    if (op == "qnn.add" || op == "qnn.mul") {
      const QuantParams out_q = AttrQuant(attrs, "output_scale", "output_zero_point");
      ExprPtr result = MakeCall(op == "qnn.add" ? "add" : "multiply", {args[0], args[1]});
      return ClipToRange(std::move(result), out_q);
    }
    if (op == "qnn.relu") {
      return MakeCall("nn.relu", {args[0]});
    }
    if (op == "qnn.concatenate") {
      const QuantParams out_q = AttrQuant(attrs, "output_scale", "output_zero_point");
      ExprPtr result = MakeCall("concatenate", {args[0]},
                                Attrs().SetInt("axis", attrs.GetInt("axis", 0)));
      return ClipToRange(std::move(result), out_q);
    }
    return call;
  }

 private:
  std::unordered_map<const Expr*, VarPtr> var_replacements_;
};

}  // namespace

Pass QnnCanonicalize() {
  return Pass("QnnCanonicalize", [](const Module& module) {
    Module result;
    for (const auto& [name, fn] : module.functions()) {
      Canonicalizer canonicalizer;
      const ExprPtr new_body = canonicalizer.Mutate(fn->body());
      std::vector<VarPtr> params;
      params.reserve(fn->params().size());
      for (const auto& param : fn->params()) {
        const ExprPtr mutated = canonicalizer.Mutate(std::static_pointer_cast<Expr>(param));
        params.push_back(std::static_pointer_cast<Var>(mutated));
      }
      result.Add(name, new_body == fn->body() && params == fn->params()
                           ? fn
                           : MakeFunction(std::move(params), new_body, fn->attrs()));
    }
    return InferType().Run(result);
  });
}

}  // namespace relay
}  // namespace tnp
