// Relay-style expression AST.
//
// The graph-level IR mirrors TVM Relay's node kinds: Var, Constant, Call,
// Tuple, TupleGetItem and Function. Expressions are immutable by convention
// after construction (passes rewrite by building new nodes); the only
// mutable field is the cached checked_type written by the InferType pass.
// Shared subexpressions are real sharing (a DAG), which the visitors
// preserve via memoization.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "relay/attrs.h"
#include "relay/type.h"
#include "tensor/ndarray.h"

namespace tnp {
namespace relay {

class Expr;
class Function;
using ExprPtr = std::shared_ptr<Expr>;
using FunctionPtr = std::shared_ptr<Function>;

enum class ExprKind : std::uint8_t {
  kVar,
  kConstant,
  kCall,
  kTuple,
  kTupleGetItem,
  kFunction,
};

class Expr {
 public:
  virtual ~Expr() = default;

  ExprKind kind() const noexcept { return kind_; }

  /// Type assigned by InferType; Type::defined() is false before that.
  const Type& checked_type() const noexcept { return checked_type_; }
  void set_checked_type(Type type) { checked_type_ = std::move(type); }

  /// Convenience: checked type as tensor type (throws if not inferred/tensor).
  const TensorType& tensor_type() const {
    TNP_CHECK(checked_type_.defined()) << "expression has no checked type (run InferType)";
    return checked_type_.AsTensor();
  }

 protected:
  explicit Expr(ExprKind kind) : kind_(kind) {}

 private:
  ExprKind kind_;
  Type checked_type_;
};

/// Named graph input (or function parameter).
class Var : public Expr {
 public:
  Var(std::string name, Type type_annotation)
      : Expr(ExprKind::kVar), name_(std::move(name)), type_annotation_(std::move(type_annotation)) {}

  const std::string& name() const noexcept { return name_; }
  const Type& type_annotation() const noexcept { return type_annotation_; }

 private:
  std::string name_;
  Type type_annotation_;
};
using VarPtr = std::shared_ptr<Var>;

/// Embedded tensor literal (weights, biases, scalar constants).
class Constant : public Expr {
 public:
  explicit Constant(NDArray data) : Expr(ExprKind::kConstant), data_(std::move(data)) {}

  const NDArray& data() const noexcept { return data_; }

 private:
  NDArray data_;
};
using ConstantPtr = std::shared_ptr<Constant>;

/// What a Call invokes: a registered operator (by name), a locally embedded
/// function (fused primitive), or a module-level global function (the result
/// of BYOC partitioning).
enum class CalleeKind : std::uint8_t { kOp, kFunction, kGlobal };

class Call : public Expr {
 public:
  /// Call a registered operator.
  Call(std::string op_name, std::vector<ExprPtr> args, Attrs attrs)
      : Expr(ExprKind::kCall),
        callee_kind_(CalleeKind::kOp),
        op_name_(std::move(op_name)),
        args_(std::move(args)),
        attrs_(std::move(attrs)) {}

  /// Call an embedded function (fusion result).
  Call(FunctionPtr fn, std::vector<ExprPtr> args);

  /// Call a module-level global function by name (partition result).
  struct GlobalTag {};
  Call(GlobalTag, std::string global_name, std::vector<ExprPtr> args)
      : Expr(ExprKind::kCall),
        callee_kind_(CalleeKind::kGlobal),
        op_name_(std::move(global_name)),
        args_(std::move(args)) {}

  CalleeKind callee_kind() const noexcept { return callee_kind_; }

  /// Operator name (kOp) or global function name (kGlobal).
  const std::string& op_name() const {
    TNP_CHECK(callee_kind_ != CalleeKind::kFunction);
    return op_name_;
  }
  const FunctionPtr& fn() const {
    TNP_CHECK(callee_kind_ == CalleeKind::kFunction);
    return fn_;
  }

  const std::vector<ExprPtr>& args() const noexcept { return args_; }
  const Attrs& attrs() const noexcept { return attrs_; }

 private:
  CalleeKind callee_kind_;
  std::string op_name_;
  FunctionPtr fn_;
  std::vector<ExprPtr> args_;
  Attrs attrs_;
};
using CallPtr = std::shared_ptr<Call>;

class Tuple : public Expr {
 public:
  explicit Tuple(std::vector<ExprPtr> fields)
      : Expr(ExprKind::kTuple), fields_(std::move(fields)) {}

  const std::vector<ExprPtr>& fields() const noexcept { return fields_; }

 private:
  std::vector<ExprPtr> fields_;
};
using TuplePtr = std::shared_ptr<Tuple>;

class TupleGetItem : public Expr {
 public:
  TupleGetItem(ExprPtr tuple, int index)
      : Expr(ExprKind::kTupleGetItem), tuple_(std::move(tuple)), index_(index) {}

  const ExprPtr& tuple() const noexcept { return tuple_; }
  int index() const noexcept { return index_; }

 private:
  ExprPtr tuple_;
  int index_;
};
using TupleGetItemPtr = std::shared_ptr<TupleGetItem>;

/// Function attribute keys used by the BYOC flow (TVM-compatible names).
inline constexpr const char* kAttrCompiler = "Compiler";        ///< external codegen id
inline constexpr const char* kAttrGlobalSymbol = "global_symbol";
inline constexpr const char* kAttrPrimitive = "Primitive";      ///< fused group

class Function : public Expr {
 public:
  Function(std::vector<VarPtr> params, ExprPtr body, Attrs attrs = Attrs())
      : Expr(ExprKind::kFunction),
        params_(std::move(params)),
        body_(std::move(body)),
        attrs_(std::move(attrs)) {}

  const std::vector<VarPtr>& params() const noexcept { return params_; }
  const ExprPtr& body() const noexcept { return body_; }
  const Attrs& attrs() const noexcept { return attrs_; }

  bool IsPrimitive() const { return attrs_.GetInt(kAttrPrimitive, 0) != 0; }
  std::string compiler() const { return attrs_.GetString(kAttrCompiler, ""); }

 private:
  std::vector<VarPtr> params_;
  ExprPtr body_;
  Attrs attrs_;
};

// ---- factory helpers ----

inline VarPtr MakeVar(std::string name, Type type) {
  return std::make_shared<Var>(std::move(name), std::move(type));
}
inline ConstantPtr MakeConstant(NDArray data) {
  return std::make_shared<Constant>(std::move(data));
}
inline CallPtr MakeCall(std::string op_name, std::vector<ExprPtr> args, Attrs attrs = Attrs()) {
  return std::make_shared<Call>(std::move(op_name), std::move(args), std::move(attrs));
}
CallPtr MakeFunctionCall(FunctionPtr fn, std::vector<ExprPtr> args);
inline CallPtr MakeGlobalCall(std::string global_name, std::vector<ExprPtr> args) {
  return std::make_shared<Call>(Call::GlobalTag{}, std::move(global_name), std::move(args));
}
inline TuplePtr MakeTuple(std::vector<ExprPtr> fields) {
  return std::make_shared<Tuple>(std::move(fields));
}
inline TupleGetItemPtr MakeTupleGetItem(ExprPtr tuple, int index) {
  return std::make_shared<TupleGetItem>(std::move(tuple), index);
}
inline FunctionPtr MakeFunction(std::vector<VarPtr> params, ExprPtr body, Attrs attrs = Attrs()) {
  return std::make_shared<Function>(std::move(params), std::move(body), std::move(attrs));
}

/// Downcast helpers (checked).
template <typename T>
std::shared_ptr<T> As(const ExprPtr& expr);

template <> inline std::shared_ptr<Var> As<Var>(const ExprPtr& expr) {
  TNP_CHECK(expr && expr->kind() == ExprKind::kVar);
  return std::static_pointer_cast<Var>(expr);
}
template <> inline std::shared_ptr<Constant> As<Constant>(const ExprPtr& expr) {
  TNP_CHECK(expr && expr->kind() == ExprKind::kConstant);
  return std::static_pointer_cast<Constant>(expr);
}
template <> inline std::shared_ptr<Call> As<Call>(const ExprPtr& expr) {
  TNP_CHECK(expr && expr->kind() == ExprKind::kCall);
  return std::static_pointer_cast<Call>(expr);
}
template <> inline std::shared_ptr<Tuple> As<Tuple>(const ExprPtr& expr) {
  TNP_CHECK(expr && expr->kind() == ExprKind::kTuple);
  return std::static_pointer_cast<Tuple>(expr);
}
template <> inline std::shared_ptr<TupleGetItem> As<TupleGetItem>(const ExprPtr& expr) {
  TNP_CHECK(expr && expr->kind() == ExprKind::kTupleGetItem);
  return std::static_pointer_cast<TupleGetItem>(expr);
}
template <> inline std::shared_ptr<Function> As<Function>(const ExprPtr& expr) {
  TNP_CHECK(expr && expr->kind() == ExprKind::kFunction);
  return std::static_pointer_cast<Function>(expr);
}

/// Unchecked "is a call to op X" test.
bool IsCallTo(const ExprPtr& expr, const std::string& op_name);

}  // namespace relay
}  // namespace tnp
