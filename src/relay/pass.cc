#include "relay/pass.h"

#include <unordered_map>
#include <unordered_set>

#include "relay/interpreter.h"
#include "relay/op.h"
#include "relay/visitor.h"

namespace tnp {
namespace relay {

namespace {

// ---------------------------------------------------------------- InferType

class TypeInferencer : public ExprVisitor {
 public:
  void VisitVar(const VarPtr& var) override {
    if (!var->type_annotation().defined()) {
      TNP_THROW(kTypeError) << "variable '" << var->name() << "' has no type annotation";
    }
    var->set_checked_type(var->type_annotation());
  }

  void VisitConstant(const ConstantPtr& constant) override {
    constant->set_checked_type(
        Type::Tensor(constant->data().shape(), constant->data().dtype()));
  }

  void VisitTuple(const TuplePtr& tuple) override {
    std::vector<Type> field_types;
    field_types.reserve(tuple->fields().size());
    for (const auto& field : tuple->fields()) field_types.push_back(field->checked_type());
    tuple->set_checked_type(Type::Tuple(std::move(field_types)));
  }

  void VisitTupleGetItem(const TupleGetItemPtr& get) override {
    const Type& tuple_type = get->tuple()->checked_type();
    if (!tuple_type.IsTuple()) {
      TNP_THROW(kTypeError) << "tuple_get_item on non-tuple value";
    }
    const auto& fields = tuple_type.AsTuple();
    if (get->index() < 0 || get->index() >= static_cast<int>(fields.size())) {
      TNP_THROW(kTypeError) << "tuple index " << get->index() << " out of range";
    }
    get->set_checked_type(fields[static_cast<std::size_t>(get->index())]);
  }

  void VisitFunction(const FunctionPtr& fn) override {
    // Body was already visited (post-order); function type is its body type.
    fn->set_checked_type(fn->body()->checked_type());
  }

  void VisitCall(const CallPtr& call) override {
    std::vector<Type> arg_types;
    arg_types.reserve(call->args().size());
    for (const auto& arg : call->args()) arg_types.push_back(arg->checked_type());

    switch (call->callee_kind()) {
      case CalleeKind::kOp:
        call->set_checked_type(InferCallType(*call, arg_types));
        return;
      case CalleeKind::kFunction: {
        const FunctionPtr& fn = call->fn();
        if (fn->params().size() != arg_types.size()) {
          TNP_THROW(kTypeError) << "function call arity mismatch";
        }
        // The function body was visited by the traversal (params carry their
        // own annotations); check argument compatibility.
        for (std::size_t i = 0; i < arg_types.size(); ++i) {
          const Type& expected = fn->params()[i]->type_annotation();
          if (expected.defined() && expected != arg_types[i]) {
            TNP_THROW(kTypeError)
                << "argument " << i << " type " << arg_types[i].ToString()
                << " does not match parameter type " << expected.ToString();
          }
        }
        call->set_checked_type(fn->body()->checked_type());
        return;
      }
      case CalleeKind::kGlobal: {
        TNP_CHECK(module_ != nullptr) << "global call outside module-level inference";
        if (!module_->Has(call->op_name())) {
          TNP_THROW(kTypeError) << "call to undefined global '@" << call->op_name() << "'";
        }
        const FunctionPtr callee = module_->Get(call->op_name());
        if (!callee->checked_type().defined()) {
          TNP_THROW(kTypeError) << "global '" << call->op_name() << "' not yet inferred";
        }
        if (callee->params().size() != arg_types.size()) {
          TNP_THROW(kTypeError) << "global call arity mismatch for '@" << call->op_name() << "'";
        }
        call->set_checked_type(callee->checked_type());
        return;
      }
    }
  }

  const Module* module_ = nullptr;
};

// ------------------------------------------------------------- FoldConstant

class ConstantFolder : public ExprMutator {
 protected:
  ExprPtr RewriteCall(const CallPtr& call) override {
    if (call->callee_kind() != CalleeKind::kOp) return call;
    // Don't fold ops whose output depends on runtime-only semantics.
    if (call->op_name() == "nn.dropout") return call;
    std::vector<Value> arg_values;
    arg_values.reserve(call->args().size());
    for (const auto& arg : call->args()) {
      Value value = TryConstValue(arg);
      if (!value.defined()) return call;
      arg_values.push_back(std::move(value));
    }
    const Value folded = EvalOpCall(call->op_name(), call->attrs(), *call, arg_values);
    if (folded.is_tuple()) return call;  // tuple-producing folds not needed
    return MakeConstant(folded.AsTensor());
  }

 private:
  /// Constant or Tuple-of-constants to Value; undefined Value otherwise.
  static Value TryConstValue(const ExprPtr& expr) {
    if (expr->kind() == ExprKind::kConstant) {
      return Value(std::static_pointer_cast<Constant>(expr)->data());
    }
    if (expr->kind() == ExprKind::kTuple) {
      std::vector<Value> fields;
      for (const auto& field : std::static_pointer_cast<Tuple>(expr)->fields()) {
        Value value = TryConstValue(field);
        if (!value.defined()) return Value();
        fields.push_back(std::move(value));
      }
      return Value(std::move(fields));
    }
    return Value();
  }
};

// ------------------------------------------------------------- SimplifyExpr

class Simplifier : public ExprMutator {
 protected:
  ExprPtr RewriteTupleGetItem(const TupleGetItemPtr& get) override {
    if (get->tuple()->kind() == ExprKind::kTuple) {
      const auto tuple = std::static_pointer_cast<Tuple>(get->tuple());
      return tuple->fields().at(static_cast<std::size_t>(get->index()));
    }
    return get;
  }

  ExprPtr RewriteCall(const CallPtr& call) override {
    if (call->callee_kind() == CalleeKind::kOp && call->op_name() == "nn.dropout") {
      return call->args().at(0);
    }
    return call;
  }
};

std::unordered_set<std::string> ReachableGlobals(const Module& module) {
  std::unordered_set<std::string> reachable;
  std::vector<std::string> worklist = {"main"};
  while (!worklist.empty()) {
    const std::string name = worklist.back();
    worklist.pop_back();
    if (!reachable.insert(name).second) continue;
    if (!module.Has(name)) continue;
    for (const auto& node : PostOrder(module.Get(name)->body())) {
      if (node->kind() != ExprKind::kCall) continue;
      const auto call = std::static_pointer_cast<Call>(node);
      if (call->callee_kind() == CalleeKind::kGlobal) worklist.push_back(call->op_name());
    }
  }
  return reachable;
}

}  // namespace

int CountModuleNodes(const Module& module) {
  int count = 0;
  for (const auto& [name, fn] : module.functions()) {
    count += static_cast<int>(PostOrder(fn->body()).size());
  }
  return count;
}

Type InferFunctionTypes(const FunctionPtr& fn) {
  TypeInferencer inferencer;
  for (const auto& param : fn->params()) inferencer.Visit(param);
  inferencer.Visit(fn->body());
  fn->set_checked_type(fn->body()->checked_type());
  return fn->checked_type();
}

Pass InferType() {
  return Pass("InferType", [](const Module& module) {
    Module result = module.Clone();
    // Non-main functions first so global calls from main see their types.
    TypeInferencer inferencer;
    inferencer.module_ = &result;
    for (const auto& [name, fn] : result.functions()) {
      if (name == "main") continue;
      for (const auto& param : fn->params()) inferencer.Visit(param);
      inferencer.Visit(fn->body());
      fn->set_checked_type(fn->body()->checked_type());
    }
    if (result.Has("main")) {
      const FunctionPtr& main_fn = result.main();
      for (const auto& param : main_fn->params()) inferencer.Visit(param);
      inferencer.Visit(main_fn->body());
      main_fn->set_checked_type(main_fn->body()->checked_type());
    }
    return result;
  });
}

Pass FoldConstant() {
  return Pass("FoldConstant", [](const Module& module) {
    Module result;
    for (const auto& [name, fn] : module.functions()) {
      ConstantFolder folder;
      const ExprPtr new_body = folder.Mutate(fn->body());
      result.Add(name, new_body == fn->body()
                           ? fn
                           : MakeFunction(fn->params(), new_body, fn->attrs()));
    }
    return result;
  });
}

Pass SimplifyExpr() {
  return Pass("SimplifyExpr", [](const Module& module) {
    Module rewritten;
    for (const auto& [name, fn] : module.functions()) {
      Simplifier simplifier;
      const ExprPtr new_body = simplifier.Mutate(fn->body());
      rewritten.Add(name, new_body == fn->body()
                              ? fn
                              : MakeFunction(fn->params(), new_body, fn->attrs()));
    }
    // Module-level DCE: drop globals unreachable from main.
    if (!rewritten.Has("main")) return rewritten;
    const auto reachable = ReachableGlobals(rewritten);
    Module result;
    for (const auto& [name, fn] : rewritten.functions()) {
      if (reachable.count(name) != 0) result.Add(name, fn);
    }
    return result;
  });
}

}  // namespace relay
}  // namespace tnp
