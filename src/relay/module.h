// IRModule: named global functions with a distinguished "main" entry.
// BYOC partitioning adds one global function per external region.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "relay/expr.h"

namespace tnp {
namespace relay {

class Module {
 public:
  Module() = default;
  explicit Module(FunctionPtr main) { Add("main", std::move(main)); }

  void Add(const std::string& name, FunctionPtr fn) {
    TNP_CHECK(fn != nullptr);
    functions_[name] = std::move(fn);
  }

  bool Has(const std::string& name) const { return functions_.count(name) != 0; }

  const FunctionPtr& Get(const std::string& name) const {
    const auto it = functions_.find(name);
    TNP_CHECK(it != functions_.end()) << "no global function '" << name << "'";
    return it->second;
  }

  const FunctionPtr& main() const { return Get("main"); }

  const std::map<std::string, FunctionPtr>& functions() const { return functions_; }

  /// Names of all global functions with the given Compiler attribute.
  std::vector<std::string> ExternalFunctions(const std::string& compiler) const {
    std::vector<std::string> names;
    for (const auto& [name, fn] : functions_) {
      if (fn->compiler() == compiler) names.push_back(name);
    }
    return names;
  }

  /// Shallow copy (function pointers shared; map independent).
  Module Clone() const {
    Module copy;
    copy.functions_ = functions_;
    return copy;
  }

 private:
  std::map<std::string, FunctionPtr> functions_;
};

}  // namespace relay
}  // namespace tnp
