#include "relay/op.h"

namespace tnp {
namespace relay {

OpRegistry& OpRegistry::Global() {
  // Leaked singleton: avoids destruction-order issues and guarantees the
  // builtin vocabulary is in place before the first lookup.
  static OpRegistry* registry = [] {
    auto* r = new OpRegistry();
    RegisterBuiltinOpsInto(*r);
    return r;
  }();
  return *registry;
}

void OpRegistry::Register(OpDef def) {
  TNP_CHECK(!def.name.empty());
  TNP_CHECK(def.infer != nullptr) << "op '" << def.name << "' lacks a type inference fn";
  const auto [it, inserted] = ops_.emplace(def.name, std::move(def));
  TNP_CHECK(inserted) << "op '" << it->first << "' registered twice";
}

bool OpRegistry::Has(const std::string& name) const { return ops_.count(name) != 0; }

const OpDef& OpRegistry::Get(const std::string& name) const {
  const auto it = ops_.find(name);
  if (it == ops_.end()) {
    TNP_THROW(kTypeError) << "unknown operator '" << name << "'";
  }
  return it->second;
}

std::vector<std::string> OpRegistry::AllNames() const {
  std::vector<std::string> names;
  names.reserve(ops_.size());
  for (const auto& [name, def] : ops_) names.push_back(name);
  return names;
}

Type InferCallType(const Call& call, const std::vector<Type>& arg_types) {
  TNP_CHECK(call.callee_kind() == CalleeKind::kOp);
  const OpDef& def = OpRegistry::Global().Get(call.op_name());
  if (def.num_inputs >= 0 && static_cast<int>(arg_types.size()) != def.num_inputs) {
    TNP_THROW(kTypeError) << "operator '" << def.name << "' expects " << def.num_inputs
                          << " arguments, got " << arg_types.size();
  }
  return def.infer(call, arg_types);
}

std::int64_t CallMacs(const Call& call, const std::vector<Type>& arg_types,
                      const Type& out_type) {
  const OpDef& def = OpRegistry::Global().Get(call.op_name());
  if (!def.macs) return 0;
  return def.macs(call, arg_types, out_type);
}

}  // namespace relay
}  // namespace tnp
