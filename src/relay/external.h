// External codegen/runtime interface — the TVM side of the BYOC contract.
//
// relay::Build looks up a registered ExternalCodegenFn for every global
// function tagged Compiler=<name> and obtains an ExternalModule, which the
// graph executor later invokes like any other instruction. core/ registers
// the "nir" codegen (Relay -> Neuron IR -> NeuronPackage).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "relay/expr.h"
#include "relay/interpreter.h"
#include "sim/timeline.h"

namespace tnp {
namespace relay {

/// One row of a per-operator profile report (TVM's debug-executor analogue).
struct ProfileEntry {
  std::string name;                                  ///< op / fused-group name
  sim::DeviceKind device = sim::DeviceKind::kTvmCpu; ///< where it runs
  double us = 0.0;                                   ///< simulated time
  std::int64_t macs = 0;
};

/// Per-executor mutable execution state of an ExternalModule — e.g. the
/// Neuron runtime's pre-planned operand arena. The ExternalModule itself is
/// shared and immutable across executors; each GraphExecutor creates its own
/// session once and passes it to every Run, so repeated inference reuses the
/// same buffers instead of allocating.
class ExternalSession {
 public:
  virtual ~ExternalSession() = default;
};

using ExternalSessionPtr = std::shared_ptr<ExternalSession>;

/// Compiled external subgraph, executable by the graph executor.
class ExternalModule {
 public:
  virtual ~ExternalModule() = default;

  /// Execute the subgraph. When `execute_numerics` is false only simulated
  /// time is accounted (used by the benchmark harnesses at full model
  /// scale). `clock` may be null when the caller does not track time.
  /// `session` is a state object from CreateSession() or null for the
  /// legacy allocate-per-run path; outputs produced against a session are
  /// views into its arena, valid until the session's next Run.
  virtual Value Run(const std::vector<Value>& inputs, sim::SimClock* clock,
                    bool execute_numerics, ExternalSession* session = nullptr) = 0;

  /// Create per-executor execution state for Run. The default (null) means
  /// the module is stateless and always allocates its outputs.
  virtual ExternalSessionPtr CreateSession() const { return nullptr; }

  virtual const std::string& name() const = 0;

  /// Number of Neuron ops inside (reporting / ablations).
  virtual int num_ops() const = 0;

  /// Physical resources this subgraph occupies while executing (drives the
  /// pipeline scheduler's exclusivity constraint). Defaults to the CPU.
  virtual std::vector<sim::Resource> resources() const { return {sim::Resource::kCpu}; }

  /// Append one ProfileEntry per internal operator (default: nothing).
  virtual void AppendProfile(std::vector<ProfileEntry>& out) const { (void)out; }
};

using ExternalModulePtr = std::shared_ptr<ExternalModule>;

/// Options controlling relay::Build (the analogue of TVM's PassContext).
struct BuildOptions {
  /// Run FuseOps before lowering (ablation hook).
  bool enable_fusion = true;
  /// Pack constant conv/dense weights into GEMM panel layout at build time
  /// (see kernels/pack.h); steady-state inference then never repacks. Off is
  /// an ablation hook — kernels fall back to packing into scratch per call.
  bool prepack_weights = true;
  /// Fold batch norms into conv weights before lowering (off by default so
  /// latency tables stay comparable; see bench/ablation_bn_fold).
  bool fold_batch_norm = false;
  /// Device executing TVM-native instructions.
  sim::DeviceKind host_device = sim::DeviceKind::kTvmCpu;
  /// Simulated testbed (never null).
  const sim::Testbed* testbed = &sim::Testbed::Dimensity800();
  /// Free-form configuration forwarded to external codegens
  /// (e.g. {"nir.devices", "cpu,apu"}).
  std::map<std::string, std::string> external_config;
};

/// Compiles a Compiler-tagged function to an ExternalModule.
using ExternalCodegenFn =
    std::function<ExternalModulePtr(const FunctionPtr& fn, const std::string& global_name,
                                    const BuildOptions& options)>;

/// Global registry of external codegens keyed by compiler name.
class ExternalCodegenRegistry {
 public:
  static ExternalCodegenRegistry& Global();

  void Register(const std::string& compiler, ExternalCodegenFn fn);
  bool Has(const std::string& compiler) const;
  const ExternalCodegenFn& Get(const std::string& compiler) const;

 private:
  std::map<std::string, ExternalCodegenFn> codegens_;
};

}  // namespace relay
}  // namespace tnp
