#include "relay/attrs.h"

#include <sstream>

namespace tnp {
namespace relay {

namespace {

struct AttrPrinter {
  std::ostringstream& os;
  void operator()(std::int64_t v) { os << v; }
  void operator()(double v) { os << v; }
  void operator()(const std::string& v) { os << '"' << v << '"'; }
  void operator()(const std::vector<std::int64_t>& v) {
    os << "[";
    for (std::size_t i = 0; i < v.size(); ++i) os << (i ? ", " : "") << v[i];
    os << "]";
  }
  void operator()(const std::vector<double>& v) {
    os << "[";
    for (std::size_t i = 0; i < v.size(); ++i) os << (i ? ", " : "") << v[i];
    os << "]";
  }
};

}  // namespace

std::string Attrs::ToString() const {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (const auto& [key, value] : values_) {
    if (!first) os << ", ";
    first = false;
    os << key << "=";
    std::visit(AttrPrinter{os}, value);
  }
  os << "}";
  return os.str();
}

}  // namespace relay
}  // namespace tnp
