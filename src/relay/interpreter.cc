#include "relay/interpreter.h"

#include <algorithm>
#include <cstring>
#include <functional>
#include <unordered_map>

#include "kernels/conv.h"
#include "kernels/dense.h"
#include "kernels/elementwise.h"
#include "kernels/pool.h"
#include "kernels/quantize.h"
#include "relay/op.h"

namespace tnp {
namespace relay {

namespace {

using kernels::BinaryOp;

std::vector<Type> ArgTypes(const std::vector<Value>& args) {
  std::vector<Type> types;
  types.reserve(args.size());
  for (const auto& arg : args) types.push_back(arg.GetType());
  return types;
}

QuantParams QP(const Attrs& attrs, const char* scale_key, const char* zp_key) {
  return QuantParams(static_cast<float>(attrs.RequireDouble(scale_key)),
                     static_cast<std::int32_t>(attrs.RequireInt(zp_key)));
}

std::vector<int> ToIntVector(const std::vector<std::int64_t>& v) {
  std::vector<int> out;
  out.reserve(v.size());
  for (const std::int64_t x : v) out.push_back(static_cast<int>(x));
  return out;
}

kernels::Conv2DParams ConvParams(const Attrs& attrs) {
  kernels::Conv2DParams p;
  const auto strides = attrs.GetInts("strides", {1, 1});
  const auto padding = attrs.GetInts("padding", {0, 0});
  const auto dilation = attrs.GetInts("dilation", {1, 1});
  p.stride_h = strides[0];
  p.stride_w = strides[1];
  p.pad_h = padding[0];
  p.pad_w = padding[1];
  p.dilation_h = dilation[0];
  p.dilation_w = dilation[1];
  p.groups = attrs.GetInt("groups", 1);
  return p;
}

kernels::Pool2DParams PoolParams(const Attrs& attrs) {
  kernels::Pool2DParams p;
  const auto pool_size = attrs.RequireInts("pool_size");
  const auto strides = attrs.GetInts("strides", pool_size);
  const auto padding = attrs.GetInts("padding", {0, 0});
  p.kernel_h = pool_size[0];
  p.kernel_w = pool_size[1];
  p.stride_h = strides[0];
  p.stride_w = strides[1];
  p.pad_h = padding[0];
  p.pad_w = padding[1];
  p.count_include_pad = attrs.GetInt("count_include_pad", 0) != 0;
  return p;
}

}  // namespace

Type Value::GetType() const {
  if (is_tuple_) {
    std::vector<Type> field_types;
    field_types.reserve(fields_.size());
    for (const auto& field : fields_) field_types.push_back(field.GetType());
    return Type::Tuple(std::move(field_types));
  }
  TNP_CHECK(tensor_.defined());
  return Type::Tensor(tensor_.shape(), tensor_.dtype());
}

void EvalOpCallInto(const std::string& op, const Attrs& attrs,
                    const std::vector<Value>& args, NDArray& out,
                    const kernels::PackedMatrix* packed_weights) {
  const auto tensor_arg = [&](std::size_t i) -> const NDArray& { return args[i].AsTensor(); };

  if (op == "nn.conv2d") {
    kernels::Conv2DF32(tensor_arg(0), tensor_arg(1), tensor_arg(2), out, ConvParams(attrs),
                       packed_weights);
    return;
  }
  if (op == "nn.dense") {
    kernels::DenseF32(tensor_arg(0), tensor_arg(1), tensor_arg(2), out, packed_weights);
    return;
  }
  if (op == "nn.bias_add") {
    kernels::BiasAddF32(tensor_arg(0), tensor_arg(1), out,
                        static_cast<int>(attrs.GetInt("axis", 1)));
    return;
  }
  if (op == "nn.relu") {
    if (tensor_arg(0).dtype() == DType::kInt8) {
      kernels::ReluS8(tensor_arg(0), out, 0);
    } else {
      kernels::ReluF32(tensor_arg(0), out);
    }
    return;
  }
  if (op == "nn.leaky_relu") {
    kernels::LeakyReluF32(tensor_arg(0), out,
                          static_cast<float>(attrs.GetDouble("alpha", 0.01)));
    return;
  }
  if (op == "sigmoid") {
    kernels::SigmoidF32(tensor_arg(0), out);
    return;
  }
  if (op == "tanh") {
    kernels::TanhF32(tensor_arg(0), out);
    return;
  }
  if (op == "exp") {
    kernels::ExpF32(tensor_arg(0), out);
    return;
  }
  if (op == "sqrt") {
    kernels::SqrtF32(tensor_arg(0), out);
    return;
  }
  if (op == "clip") {
    kernels::ClipF32(tensor_arg(0), out, static_cast<float>(attrs.RequireDouble("a_min")),
                     static_cast<float>(attrs.RequireDouble("a_max")));
    return;
  }
  if (op == "add" || op == "subtract" || op == "multiply" || op == "divide" ||
      op == "maximum" || op == "minimum") {
    static const std::unordered_map<std::string, BinaryOp> kMap = {
        {"add", BinaryOp::kAdd},         {"subtract", BinaryOp::kSub},
        {"multiply", BinaryOp::kMul},    {"divide", BinaryOp::kDiv},
        {"maximum", BinaryOp::kMax},     {"minimum", BinaryOp::kMin}};
    kernels::BroadcastBinaryF32(kMap.at(op), tensor_arg(0), tensor_arg(1), out);
    return;
  }
  if (op == "nn.max_pool2d") {
    if (tensor_arg(0).dtype() == DType::kInt8) {
      kernels::MaxPool2DS8(tensor_arg(0), out, PoolParams(attrs));
    } else {
      kernels::MaxPool2DF32(tensor_arg(0), out, PoolParams(attrs));
    }
    return;
  }
  if (op == "nn.avg_pool2d") {
    if (tensor_arg(0).dtype() == DType::kInt8) {
      kernels::AvgPool2DS8(tensor_arg(0), out, PoolParams(attrs));
    } else {
      kernels::AvgPool2DF32(tensor_arg(0), out, PoolParams(attrs));
    }
    return;
  }
  if (op == "nn.global_avg_pool2d") {
    if (tensor_arg(0).dtype() == DType::kInt8) {
      kernels::GlobalAvgPool2DS8(tensor_arg(0), out);
    } else {
      kernels::GlobalAvgPool2DF32(tensor_arg(0), out);
    }
    return;
  }
  if (op == "nn.batch_norm") {
    kernels::BatchNormF32(tensor_arg(0), tensor_arg(1), tensor_arg(2), tensor_arg(3),
                          tensor_arg(4), out,
                          static_cast<float>(attrs.GetDouble("epsilon", 1e-5)));
    return;
  }
  if (op == "nn.softmax") {
    kernels::SoftmaxF32(tensor_arg(0), out, static_cast<int>(attrs.GetInt("axis", -1)));
    return;
  }
  if (op == "nn.dropout" || op == "nn.batch_flatten" || op == "reshape") {
    // Inference-mode identity ops: a plain byte copy into `out` (whose shape
    // already reflects the op's output type). The planner may alias `out`
    // onto the input, in which case the bytes are already in place.
    const NDArray& in = tensor_arg(0);
    TNP_CHECK_EQ(in.SizeBytes(), out.SizeBytes());
    if (out.RawData() != in.RawData()) {
      std::memcpy(out.RawData(), in.RawData(), in.SizeBytes());
    }
    out.set_quant(in.quant());
    return;
  }
  if (op == "transpose") {
    kernels::Transpose(tensor_arg(0), out, ToIntVector(attrs.RequireInts("axes")));
    return;
  }
  if (op == "concatenate") {
    const auto& fields = args.at(0).AsTuple();
    std::vector<NDArray> tensors;
    tensors.reserve(fields.size());
    for (const auto& field : fields) tensors.push_back(field.AsTensor());
    kernels::Concat(tensors, out, static_cast<int>(attrs.GetInt("axis", 0)));
    return;
  }
  if (op == "nn.pad") {
    kernels::PadConstant(tensor_arg(0), out, attrs.RequireInts("pad_before"),
                         attrs.RequireInts("pad_after"), attrs.GetDouble("pad_value", 0.0));
    return;
  }
  if (op == "nn.upsampling") {
    kernels::UpsamplingNearestF32(tensor_arg(0), out, attrs.GetInt("scale_h", 2),
                                  attrs.GetInt("scale_w", 2));
    return;
  }
  if (op == "strided_slice") {
    const auto& in = tensor_arg(0);
    auto begin = attrs.RequireInts("begin");
    auto end = attrs.RequireInts("end");
    auto strides = attrs.GetInts("strides", std::vector<std::int64_t>(begin.size(), 1));
    // Normalize negative / clamped indices the same way type inference does.
    for (std::size_t i = 0; i < begin.size(); ++i) {
      const std::int64_t extent = in.shape()[static_cast<int>(i)];
      if (begin[i] < 0) begin[i] += extent;
      if (end[i] < 0) end[i] += extent;
      end[i] = std::min(end[i], extent);
    }
    kernels::StridedSlice(in, out, begin, end, strides);
    return;
  }
  if (op == "mean") {
    kernels::MeanF32(tensor_arg(0), out, ToIntVector(attrs.RequireInts("axis")));
    return;
  }
  if (op == "cast") {
    kernels::Cast(tensor_arg(0), out);
    return;
  }

  // ---------------- QNN dialect ----------------
  if (op == "qnn.quantize") {
    kernels::QuantizeF32ToS8(tensor_arg(0), out, QP(attrs, "output_scale", "output_zero_point"));
    return;
  }
  if (op == "qnn.dequantize") {
    kernels::DequantizeS8ToF32(tensor_arg(0), out, QP(attrs, "input_scale", "input_zero_point"));
    return;
  }
  if (op == "qnn.requantize") {
    kernels::RequantizeS8(tensor_arg(0), out, QP(attrs, "input_scale", "input_zero_point"),
                          QP(attrs, "output_scale", "output_zero_point"));
    return;
  }
  if (op == "qnn.conv2d") {
    kernels::QConv2DS8(tensor_arg(0), tensor_arg(1), tensor_arg(2), out, ConvParams(attrs),
                       QP(attrs, "input_scale", "input_zero_point"),
                       QP(attrs, "weight_scale", "weight_zero_point"),
                       QP(attrs, "output_scale", "output_zero_point"), packed_weights);
    return;
  }
  if (op == "qnn.dense") {
    kernels::QDenseS8(tensor_arg(0), tensor_arg(1), tensor_arg(2), out,
                      QP(attrs, "input_scale", "input_zero_point"),
                      QP(attrs, "weight_scale", "weight_zero_point"),
                      QP(attrs, "output_scale", "output_zero_point"), packed_weights);
    return;
  }
  if (op == "qnn.add" || op == "qnn.mul") {
    const QuantParams lhs_q = QP(attrs, "lhs_scale", "lhs_zero_point");
    const QuantParams rhs_q = QP(attrs, "rhs_scale", "rhs_zero_point");
    const QuantParams out_q = QP(attrs, "output_scale", "output_zero_point");
    if (op == "qnn.add") {
      kernels::QAddS8(tensor_arg(0), tensor_arg(1), out, lhs_q, rhs_q, out_q);
    } else {
      kernels::QMulS8(tensor_arg(0), tensor_arg(1), out, lhs_q, rhs_q, out_q);
    }
    return;
  }
  if (op == "qnn.concatenate") {
    const auto& fields = args.at(0).AsTuple();
    std::vector<NDArray> tensors;
    std::vector<QuantParams> qs;
    const auto scales = attrs.GetDoubles("input_scales", {});
    const auto zps = attrs.GetInts("input_zero_points", {});
    for (std::size_t i = 0; i < fields.size(); ++i) {
      tensors.push_back(fields[i].AsTensor());
      qs.emplace_back(static_cast<float>(scales[i]), static_cast<std::int32_t>(zps[i]));
    }
    kernels::QConcatS8(tensors, qs, out, QP(attrs, "output_scale", "output_zero_point"),
                       static_cast<int>(attrs.GetInt("axis", 0)));
    return;
  }
  if (op == "qnn.relu") {
    kernels::ReluS8(tensor_arg(0), out, static_cast<std::int32_t>(attrs.RequireInt("zero_point")));
    return;
  }

  TNP_THROW(kRuntimeError) << "interpreter: no kernel for operator '" << op << "'";
}

Value EvalOpCall(const std::string& op, const Attrs& attrs, const Call& call,
                 const std::vector<Value>& args) {
  // Output type drives allocation.
  const Type out_type = InferCallType(call, ArgTypes(args));
  NDArray out = NDArray::Empty(out_type.AsTensor().shape, out_type.AsTensor().dtype);
  EvalOpCallInto(op, attrs, args, out);
  return out;
}

Value EvalExpr(const ExprPtr& expr, const Environment& env) {
  std::unordered_map<const Expr*, Value> memo;

  const std::function<Value(const ExprPtr&)> eval = [&](const ExprPtr& node) -> Value {
    const auto it = memo.find(node.get());
    if (it != memo.end()) return it->second;

    Value result;
    switch (node->kind()) {
      case ExprKind::kVar: {
        const auto env_it = env.find(node.get());
        if (env_it == env.end()) {
          TNP_THROW(kRuntimeError) << "unbound variable '"
                                   << std::static_pointer_cast<Var>(node)->name() << "'";
        }
        result = env_it->second;
        break;
      }
      case ExprKind::kConstant:
        result = std::static_pointer_cast<Constant>(node)->data();
        break;
      case ExprKind::kTuple: {
        const auto tuple = std::static_pointer_cast<Tuple>(node);
        std::vector<Value> fields;
        fields.reserve(tuple->fields().size());
        for (const auto& field : tuple->fields()) fields.push_back(eval(field));
        result = Value(std::move(fields));
        break;
      }
      case ExprKind::kTupleGetItem: {
        const auto get = std::static_pointer_cast<TupleGetItem>(node);
        const Value tuple_value = eval(get->tuple());
        const auto& fields = tuple_value.AsTuple();
        TNP_CHECK(get->index() >= 0 && get->index() < static_cast<int>(fields.size()));
        result = fields[static_cast<std::size_t>(get->index())];
        break;
      }
      case ExprKind::kCall: {
        const auto call = std::static_pointer_cast<Call>(node);
        std::vector<Value> arg_values;
        arg_values.reserve(call->args().size());
        for (const auto& arg : call->args()) arg_values.push_back(eval(arg));
        switch (call->callee_kind()) {
          case CalleeKind::kOp:
            result = EvalOpCall(call->op_name(), call->attrs(), *call, arg_values);
            break;
          case CalleeKind::kFunction: {
            const FunctionPtr& fn = call->fn();
            TNP_CHECK_EQ(fn->params().size(), arg_values.size());
            Environment inner;
            for (std::size_t i = 0; i < arg_values.size(); ++i) {
              inner[fn->params()[i].get()] = arg_values[i];
            }
            result = EvalExpr(fn->body(), inner);
            break;
          }
          case CalleeKind::kGlobal:
            TNP_THROW(kRuntimeError)
                << "interpreter cannot evaluate global call '@" << call->op_name()
                << "' without a module (use the graph executor)";
        }
        break;
      }
      case ExprKind::kFunction:
        TNP_THROW(kRuntimeError) << "cannot evaluate a bare function to a value";
    }
    memo[node.get()] = result;
    return result;
  };

  return eval(expr);
}

}  // namespace relay
}  // namespace tnp
