// Relay module (de)serialization — the repository's analogue of the paper's
// Section 4.5 deployment flow: compile and partition on the host
// ("server side"), `lib.export_library(...)`, then load the artifact on the
// target ("android side") and run it through the runtime without any
// framework frontend present.
//
// The artifact stores the full partitioned module: every global function,
// every expression node (with structural sharing preserved), operator
// attributes, and constant tensors (raw bytes + quantization metadata).
// Loading re-infers types and re-runs codegen, which is cheap here; the
// user-visible contract — save once, run anywhere without model sources —
// matches TVM's exported .so.
#pragma once

#include <iosfwd>
#include <string>

#include "relay/module.h"

namespace tnp {
namespace relay {

/// Binary format magic/version (stored in the header; bumped on breaking
/// format changes).
inline constexpr std::uint32_t kModuleMagic = 0x544E504Du;  // "TNPM"
inline constexpr std::uint32_t kModuleVersion = 1;

/// Serialize `module` (all global functions) to a binary stream.
void SaveModule(const Module& module, std::ostream& os);

/// Deserialize; throws kParseError on malformed/incompatible artifacts.
/// Checked types are re-inferred before returning.
Module LoadModule(std::istream& is);

void SaveModuleToFile(const Module& module, const std::string& path);
Module LoadModuleFromFile(const std::string& path);

}  // namespace relay
}  // namespace tnp
