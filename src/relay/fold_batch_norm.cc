// FoldBatchNorm: fold inference-time batch normalization into the preceding
// convolution's weights and bias (the heart of TVM's SimplifyInference).
//
//   bn(conv(x, W, b)) = conv(x, W', b')  with per-output-channel
//   s = gamma / sqrt(var + eps),  W'[oc,...] = W[oc,...] * s[oc],
//   b' = (b - mean) * s + beta
//
// Eliminates one memory-bound op per conv layer (most of the zoo's float
// models carry conv+BN pairs), shrinking both op count and simulated
// latency; numerics match unfused execution to float rounding.
#include <cmath>

#include "relay/op.h"
#include "relay/pass.h"
#include "relay/visitor.h"

namespace tnp {
namespace relay {

namespace {

bool IsConstant(const ExprPtr& expr) { return expr->kind() == ExprKind::kConstant; }

const NDArray& ConstData(const ExprPtr& expr) { return As<Constant>(expr)->data(); }

class BnFolder : public ExprMutator {
 public:
  int folded = 0;

 protected:
  ExprPtr RewriteCall(const CallPtr& call) override {
    if (call->callee_kind() != CalleeKind::kOp || call->op_name() != "nn.batch_norm") {
      return call;
    }
    const auto& args = call->args();
    const ExprPtr& input = args[0];
    if (!IsCallTo(input, "nn.conv2d")) return call;
    const auto conv = As<Call>(input);
    // Every parameter involved must be a constant (always true for imported
    // inference graphs; bail out otherwise).
    if (!IsConstant(conv->args()[1]) || !IsConstant(conv->args()[2]) ||
        !IsConstant(args[1]) || !IsConstant(args[2]) || !IsConstant(args[3]) ||
        !IsConstant(args[4])) {
      return call;
    }
    const NDArray& weight = ConstData(conv->args()[1]);
    const NDArray& bias = ConstData(conv->args()[2]);
    if (weight.dtype() != DType::kFloat32 || bias.dtype() != DType::kFloat32) return call;

    const NDArray& gamma = ConstData(args[1]);
    const NDArray& beta = ConstData(args[2]);
    const NDArray& mean = ConstData(args[3]);
    const NDArray& var = ConstData(args[4]);
    const float epsilon = static_cast<float>(call->attrs().GetDouble("epsilon", 1e-5));

    const std::int64_t out_channels = weight.shape()[0];
    if (gamma.NumElements() != out_channels) return call;

    NDArray new_weight = weight.CopyDeep();
    NDArray new_bias = bias.CopyDeep();
    const std::int64_t per_channel = weight.NumElements() / out_channels;
    float* w = new_weight.Data<float>();
    float* b = new_bias.Data<float>();
    const float* g = gamma.Data<float>();
    const float* bt = beta.Data<float>();
    const float* mu = mean.Data<float>();
    const float* vr = var.Data<float>();
    for (std::int64_t oc = 0; oc < out_channels; ++oc) {
      const float scale = g[oc] / std::sqrt(vr[oc] + epsilon);
      for (std::int64_t i = 0; i < per_channel; ++i) {
        w[oc * per_channel + i] *= scale;
      }
      b[oc] = (b[oc] - mu[oc]) * scale + bt[oc];
    }

    ++folded;
    return MakeCall("nn.conv2d",
                    {conv->args()[0], MakeConstant(std::move(new_weight)),
                     MakeConstant(std::move(new_bias))},
                    conv->attrs());
  }
};

}  // namespace

Pass FoldBatchNorm() {
  return Pass("FoldBatchNorm", [](const Module& module) {
    Module result;
    for (const auto& [name, fn] : module.functions()) {
      BnFolder folder;
      const ExprPtr new_body = folder.Mutate(fn->body());
      result.Add(name, folder.folded == 0
                           ? fn
                           : MakeFunction(fn->params(), new_body, fn->attrs()));
    }
    return InferType().Run(result);
  });
}

}  // namespace relay
}  // namespace tnp
