// relay::Build — lower an optimized module to an executable program, the
// analogue of TVM's `relay.build` + graph_executor.GraphModule pair:
//
//   Module mod = frontend::FromKeras(...);
//   mod = core::PartitionForNir(mod, opts);          // optional BYOC step
//   auto compiled = relay::Build(mod, build_options);
//   relay::GraphExecutor exec(compiled);
//   exec.SetInput("data", input);
//   exec.Run();
//   NDArray out = exec.GetOutput(0);
#pragma once

#include <limits>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "kernels/pack.h"
#include "relay/external.h"
#include "relay/module.h"
#include "support/arena.h"
#include "tune/db.h"

namespace tnp {
namespace relay {

/// One lowered instruction of the linear program. Everything the executor
/// needs is snapshotted at build time (op name, attrs, checked output type,
/// cost descriptor) — no AST node is retained, so lowering a module does not
/// keep the frontend expression graph alive. Fused primitive bodies are
/// inlined into the stream as plain kCallOp instructions sharing a
/// fusion_group id; the group's aggregate cost is charged on exactly one of
/// them (charge == true).
struct Instruction {
  enum class Kind : std::uint8_t {
    kConstant,      ///< materialize an embedded constant
    kCallOp,        ///< single operator call
    kCallExternal,  ///< external (BYOC) subgraph call
    kTuple,         ///< build a tuple value
    kTupleGetItem,  ///< project a tuple field
  };

  Kind kind = Kind::kCallOp;
  int output_slot = -1;
  std::vector<int> input_slots;

  // kCallOp (snapshotted; the AST call node is dropped after lowering)
  std::string op_name;
  Attrs attrs;
  /// Checked output type (kCallOp / kCallExternal / tuple plumbing) — drives
  /// memory planning and output allocation on the legacy path.
  Type out_type;
  /// Fusion group this instruction was inlined from (-1 = not fused).
  int fusion_group = -1;
  /// True when this instruction carries `desc` into the simulated clock /
  /// profile. For a fused group only the last instruction charges, with the
  /// whole group's aggregate descriptor.
  bool charge = true;

  // kCallExternal
  int external_index = -1;
  // kTupleGetItem
  int tuple_index = 0;
  // kConstant
  NDArray constant;

  /// Pre-packed panel form of this op's constant weight argument (conv/dense
  /// only; null when the weight is dynamic, the op takes the direct path, or
  /// prepack_weights is off). Shares the module-level PackedWeightsCache
  /// entry, so instructions reusing one constant share one pack.
  kernels::PackedMatrixPtr packed_weights;

  /// Cost descriptor (charged kCallOp; externals account internally).
  sim::OpDesc desc;
};

/// Static storage assignment of one slot of the linear program.
struct SlotPlan {
  enum class Kind : std::uint8_t {
    kValue,     ///< runtime-bound Value (graph inputs, tuples, external outputs)
    kConstant,  ///< bound once to an embedded constant tensor
    kArena,     ///< tensor at [offset, offset + bytes) in the shared arena
    kAlias,     ///< shares bytes with another slot (in-place / reshape view)
  };

  Kind kind = Kind::kValue;
  std::int64_t offset = 0;  ///< arena offset (kArena and resolved kAlias)
  std::int64_t bytes = 0;   ///< view size in bytes (kArena / kAlias)
  int alias_of = -1;        ///< kAlias: the input slot whose region is shared
  TensorType type;          ///< view shape/dtype (kArena / kAlias)
  int first_def = -1;       ///< instruction index producing the slot (-1 = input)
  /// Last instruction index reading the slot's bytes, after tuple-forwarding
  /// propagation and alias extension. INT_MAX for program outputs.
  int last_use = -1;
};

/// Result of the liveness + planning pass over a lowered program: every
/// tensor-valued intermediate is assigned a fixed range of a shared arena,
/// with non-overlapping lifetimes sharing offsets and elementwise/identity
/// ops aliasing their input in place.
struct MemoryPlan {
  static constexpr int kLiveForever = std::numeric_limits<int>::max();

  std::vector<SlotPlan> slots;
  std::int64_t arena_bytes = 0;   ///< planned arena size (with reuse)
  std::int64_t planned_bytes = 0; ///< sum of planned tensor sizes (no reuse)
  int num_arena_slots = 0;
  int num_alias_slots = 0;
};

class CompiledModule {
 public:
  std::vector<Instruction> instructions;
  int num_slots = 0;
  /// Graph input name -> slot.
  std::unordered_map<std::string, int> input_slots;
  /// Slot holding the program result (possibly a tuple value).
  int output_slot = -1;
  int num_outputs = 1;
  std::vector<ExternalModulePtr> externals;
  BuildOptions options;
  /// Static storage assignment computed at build time.
  MemoryPlan memory_plan;
  /// Build-time packed constant weights, keyed by op kind + weight identity
  /// + GEMM config (see pack.h). Instructions hold shared_ptrs into this
  /// cache.
  kernels::PackedWeightsCache packed_weights;
  /// Fingerprint of the tuning DB active when this module was built ("none"
  /// without one). Serialized with the artifact and folded into flow-cache
  /// keys, so artifacts built under different tuning states never mix.
  std::string tuning_fingerprint = "none";

  /// Static (simulation-only) latency estimate: execute no numerics, only
  /// walk the program accumulating simulated time.
  sim::SimClock EstimateLatency() const;

  /// Per-operator profile (host instructions + every op inside external
  /// subgraphs), in execution order. Sort by `us` for a hotspot report.
  std::vector<ProfileEntry> Profile() const;

  /// Totals for reports.
  std::int64_t TotalMacs() const;
  int NumExternalOps() const;
};

using CompiledModulePtr = std::shared_ptr<const CompiledModule>;

/// Lower `module` (optimize + codegen external functions + linearize main).
/// The module may be pre-partitioned (global functions with Compiler attrs);
/// plain modules build to a pure host program (the "TVM-only" flow).
CompiledModulePtr Build(const Module& module, const BuildOptions& options = BuildOptions());

/// The GEMM-shaped workloads of a compiled program's host instructions: one
/// per prepack-eligible conv/dense call with a constant weight (deduplicated,
/// in instruction order). This is exactly the set the build consults the
/// tuning DB for — the tuning CLI sweeps it.
std::vector<tune::Workload> CollectGemmWorkloads(const CompiledModule& compiled);

/// Stateful executor over a CompiledModule (thread-compatible: use one
/// executor per thread; the CompiledModule itself is immutable and shared).
///
/// By default the executor runs against the module's MemoryPlan: it reserves
/// one arena per executor, materializes every planned slot as a view into it
/// once, creates a session per external module, and steady-state Run() calls
/// perform zero tensor allocations. Pass use_memory_plan=false for the
/// legacy allocate-per-op path (differential testing).
///
/// Planned-mode GetOutput returns a view into the executor's arena: the
/// contents stay valid until the next Run() (the view itself keeps the arena
/// bytes alive even after the executor is destroyed).
class GraphExecutor {
 public:
  explicit GraphExecutor(CompiledModulePtr compiled, bool use_memory_plan = true);

  void SetInput(const std::string& name, NDArray value);

  /// Execute numerically; simulated time for the run is in last_clock().
  void Run();

  int NumOutputs() const { return compiled_->num_outputs; }
  NDArray GetOutput(int index = 0) const;

  const sim::SimClock& last_clock() const { return last_clock_; }

  const CompiledModule& compiled() const { return *compiled_; }

  /// True when Run() executes against the pre-planned arena.
  bool planned() const { return planned_; }
  /// Planned arena footprint in bytes (0 in legacy mode).
  std::int64_t arena_bytes() const;

 private:
  void Execute(bool execute_numerics);

  CompiledModulePtr compiled_;
  bool planned_ = false;
  support::Arena arena_;
  std::vector<Value> slots_;
  /// Pre-materialized views for kArena/kAlias slots (planned mode only).
  std::vector<NDArray> planned_views_;
  /// Per-external-module execution state (planned mode only).
  std::vector<ExternalSessionPtr> external_sessions_;
  sim::SimClock last_clock_;
};

}  // namespace relay
}  // namespace tnp
