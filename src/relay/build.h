// relay::Build — lower an optimized module to an executable program, the
// analogue of TVM's `relay.build` + graph_executor.GraphModule pair:
//
//   Module mod = frontend::FromKeras(...);
//   mod = core::PartitionForNir(mod, opts);          // optional BYOC step
//   auto compiled = relay::Build(mod, build_options);
//   relay::GraphExecutor exec(compiled);
//   exec.SetInput("data", input);
//   exec.Run();
//   NDArray out = exec.GetOutput(0);
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "relay/external.h"
#include "relay/module.h"

namespace tnp {
namespace relay {

/// One lowered instruction of the linear program.
struct Instruction {
  enum class Kind : std::uint8_t {
    kConstant,      ///< materialize an embedded constant
    kCallOp,        ///< single operator call
    kCallPrimitive, ///< fused primitive function call
    kCallExternal,  ///< external (BYOC) subgraph call
    kTuple,         ///< build a tuple value
    kTupleGetItem,  ///< project a tuple field
  };

  Kind kind = Kind::kCallOp;
  int output_slot = -1;
  std::vector<int> input_slots;

  // kCallOp
  CallPtr call;  ///< original call (op name, attrs; needed by the interpreter)
  // kCallPrimitive
  FunctionPtr primitive;
  // kCallExternal
  int external_index = -1;
  // kTupleGetItem
  int tuple_index = 0;
  // kConstant
  NDArray constant;

  /// Cost descriptor (kCallOp / kCallPrimitive; externals account internally).
  sim::OpDesc desc;
};

class CompiledModule {
 public:
  std::vector<Instruction> instructions;
  int num_slots = 0;
  /// Graph input name -> slot.
  std::unordered_map<std::string, int> input_slots;
  /// Slot holding the program result (possibly a tuple value).
  int output_slot = -1;
  int num_outputs = 1;
  std::vector<ExternalModulePtr> externals;
  BuildOptions options;

  /// Static (simulation-only) latency estimate: execute no numerics, only
  /// walk the program accumulating simulated time.
  sim::SimClock EstimateLatency() const;

  /// Per-operator profile (host instructions + every op inside external
  /// subgraphs), in execution order. Sort by `us` for a hotspot report.
  std::vector<ProfileEntry> Profile() const;

  /// Totals for reports.
  std::int64_t TotalMacs() const;
  int NumExternalOps() const;
};

using CompiledModulePtr = std::shared_ptr<const CompiledModule>;

/// Lower `module` (optimize + codegen external functions + linearize main).
/// The module may be pre-partitioned (global functions with Compiler attrs);
/// plain modules build to a pure host program (the "TVM-only" flow).
CompiledModulePtr Build(const Module& module, const BuildOptions& options = BuildOptions());

/// Stateful executor over a CompiledModule (thread-compatible: use one
/// executor per thread; the CompiledModule itself is immutable and shared).
class GraphExecutor {
 public:
  explicit GraphExecutor(CompiledModulePtr compiled);

  void SetInput(const std::string& name, NDArray value);

  /// Execute numerically; simulated time for the run is in last_clock().
  void Run();

  int NumOutputs() const { return compiled_->num_outputs; }
  NDArray GetOutput(int index = 0) const;

  const sim::SimClock& last_clock() const { return last_clock_; }

  const CompiledModule& compiled() const { return *compiled_; }

 private:
  void Execute(bool execute_numerics);

  CompiledModulePtr compiled_;
  std::vector<Value> slots_;
  std::unordered_map<std::string, NDArray> pending_inputs_;
  sim::SimClock last_clock_;
};

}  // namespace relay
}  // namespace tnp
