#include "relay/byoc_partition.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_set>

#include "relay/visitor.h"
#include "support/trace.h"

namespace tnp {
namespace relay {

namespace {

/// Union-find over region ids.
class UnionFind {
 public:
  int Fresh() {
    parent_.push_back(static_cast<int>(parent_.size()));
    return parent_.back();
  }
  int Find(int x) {
    while (parent_[static_cast<std::size_t>(x)] != x) {
      parent_[static_cast<std::size_t>(x)] =
          parent_[static_cast<std::size_t>(parent_[static_cast<std::size_t>(x)])];
      x = parent_[static_cast<std::size_t>(x)];
    }
    return x;
  }
  void Union(int a, int b) { parent_[static_cast<std::size_t>(Find(b))] = Find(a); }

 private:
  std::vector<int> parent_;
};

std::vector<ExprPtr> TopLevelPostOrder(const ExprPtr& body) {
  struct Collector : ExprVisitor {
    Collector() { visit_function_bodies_ = false; }
    std::vector<ExprPtr> nodes;
    void VisitVar(const VarPtr& v) override { nodes.push_back(v); }
    void VisitConstant(const ConstantPtr& c) override { nodes.push_back(c); }
    void VisitCall(const CallPtr& c) override { nodes.push_back(c); }
    void VisitTuple(const TuplePtr& t) override { nodes.push_back(t); }
    void VisitTupleGetItem(const TupleGetItemPtr& g) override { nodes.push_back(g); }
  };
  Collector collector;
  collector.Visit(body);
  return std::move(collector.nodes);
}

/// Direct data inputs of a node at this function's top level.
std::vector<ExprPtr> DirectArgs(const ExprPtr& node) {
  switch (node->kind()) {
    case ExprKind::kCall: return std::static_pointer_cast<Call>(node)->args();
    case ExprKind::kTuple: return std::static_pointer_cast<Tuple>(node)->fields();
    case ExprKind::kTupleGetItem:
      return {std::static_pointer_cast<TupleGetItem>(node)->tuple()};
    default: return {};
  }
}

/// Region-growing analysis state (AnnotateTarget + MergeCompilerRegions).
class RegionBuilder {
 public:
  RegionBuilder(const FunctionPtr& fn, const SupportPredicate& pred) {
    const auto nodes = TopLevelPostOrder(fn->body());

    for (const auto& node : nodes) {
      // `above`: all regions among transitive predecessors.
      // `ext_above`: regions reachable only through a node outside them —
      // merging the current node into such a region would break convexity.
      //
      // A not-yet-assigned Tuple argument is *transparent*: if this node
      // joins a region, the tuple is absorbed with it (concatenate's tuple
      // lives inside the region), so paths through the tuple must be judged
      // by the tuple's fields, not by the tuple's own (absent) region.
      std::vector<ExprPtr> effective_args;
      for (const auto& arg : DirectArgs(node)) {
        if (arg->kind() == ExprKind::kTuple && Normalized(arg.get()) < 0) {
          for (const auto& field : DirectArgs(arg)) effective_args.push_back(field);
        } else {
          effective_args.push_back(arg);
        }
      }

      std::set<int> above;
      std::set<int> ext_above;
      for (const auto& arg : effective_args) {
        const int arg_region = Normalized(arg.get());
        const auto& arg_above = above_[arg.get()];
        const auto& arg_ext = ext_above_[arg.get()];
        for (int r : arg_above) {
          r = uf_.Find(r);
          above.insert(r);
          if (r != arg_region) ext_above.insert(r);  // path left region r at `arg`
        }
        for (int r : arg_ext) ext_above.insert(uf_.Find(r));
        if (arg_region >= 0) above.insert(arg_region);
      }

      const bool is_supported_call =
          node->kind() == ExprKind::kCall &&
          std::static_pointer_cast<Call>(node)->callee_kind() == CalleeKind::kOp &&
          pred(*std::static_pointer_cast<Call>(node));

      if (is_supported_call) {
        int rid = uf_.Fresh();
        // Merge with every predecessor region that keeps the result convex.
        for (const auto& arg : DirectArgs(node)) {
          // An unassigned tuple argument is pulled into the region with its
          // consumer, so candidate regions come from the tuple's fields. A
          // tuple already claimed by another region is treated as a regular
          // merge candidate instead of being reassigned.
          const bool absorb_tuple =
              arg->kind() == ExprKind::kTuple && Normalized(arg.get()) < 0;
          std::vector<ExprPtr> candidates =
              absorb_tuple ? DirectArgs(arg) : std::vector<ExprPtr>{arg};
          for (const auto& candidate : candidates) {
            const int pr = Normalized(candidate.get());
            if (pr < 0) continue;
            if (ext_above.count(pr) != 0) continue;  // would break convexity
            uf_.Union(rid, pr);
            rid = uf_.Find(rid);
          }
          if (absorb_tuple) region_of_[arg.get()] = rid;
        }
        region_of_[node.get()] = rid;
      }

      above_[node.get()] = std::move(above);
      ext_above_[node.get()] = std::move(ext_above);
    }

    // Normalize to dense region ids ordered by first (topo) appearance.
    std::map<int, int> dense;
    for (const auto& node : nodes) {
      const auto it = region_of_.find(node.get());
      if (it == region_of_.end()) continue;
      const int root = uf_.Find(it->second);
      if (dense.find(root) == dense.end()) {
        const int id = static_cast<int>(dense.size());
        dense[root] = id;
      }
    }
    for (auto& [expr, rid] : region_of_) rid = dense.at(uf_.Find(rid));
    num_regions_ = static_cast<int>(dense.size());
  }

  RegionAssignment Result() && {
    RegionAssignment assignment;
    assignment.region_of = std::move(region_of_);
    assignment.num_regions = num_regions_;
    return assignment;
  }

 private:
  int Normalized(const Expr* node) {
    const auto it = region_of_.find(node);
    return it == region_of_.end() ? -1 : uf_.Find(it->second);
  }

  UnionFind uf_;
  std::unordered_map<const Expr*, int> region_of_;
  std::unordered_map<const Expr*, std::set<int>> above_;
  std::unordered_map<const Expr*, std::set<int>> ext_above_;
  int num_regions_ = 0;
};

/// Extraction: turn each region into a global function and rewrite main.
class Extractor {
 public:
  Extractor(const FunctionPtr& main_fn, const RegionAssignment& regions,
            const std::string& compiler)
      : regions_(regions), compiler_(compiler) {
    nodes_ = TopLevelPostOrder(main_fn->body());
    for (std::size_t i = 0; i < nodes_.size(); ++i) topo_index_[nodes_[i].get()] = i;

    // Group nodes per region (topo order preserved by construction).
    region_nodes_.resize(static_cast<std::size_t>(regions.num_regions));
    for (const auto& node : nodes_) {
      const int rid = regions.RegionOf(node.get());
      if (rid >= 0) region_nodes_[static_cast<std::size_t>(rid)].push_back(node);
    }

    // Consumers map for output detection.
    for (const auto& node : nodes_) {
      for (const auto& arg : DirectArgs(node)) consumers_[arg.get()].push_back(node);
    }
    body_root_ = main_fn->body();
  }

  Module Run(const Module& module, const FunctionPtr& main_fn) {
    Module result;
    for (const auto& [name, fn] : module.functions()) {
      if (name != "main") result.Add(name, fn);
    }

    // Determine region outputs and build the external functions.
    for (int rid = 0; rid < regions_.num_regions; ++rid) {
      BuildRegionFunction(rid, result);
    }

    // Rewrite main.
    const ExprPtr new_body = RewriteHost(body_root_);
    result.Add("main", MakeFunction(main_fn->params(), new_body, main_fn->attrs()));
    return result;
  }

 private:
  struct RegionInfo {
    std::string global_name;
    std::vector<ExprPtr> inputs;    ///< host-side exprs feeding the region
    std::vector<ExprPtr> outputs;   ///< region nodes consumed outside
  };

  void BuildRegionFunction(int rid, Module& module_out) {
    const auto& nodes = region_nodes_[static_cast<std::size_t>(rid)];
    TNP_CHECK(!nodes.empty());
    RegionInfo info;
    info.global_name = compiler_ + "_" + std::to_string(rid);

    std::unordered_set<const Expr*> member_set;
    for (const auto& node : nodes) member_set.insert(node.get());

    // Inputs: non-constant external operands, in first-use order.
    std::unordered_set<const Expr*> seen_inputs;
    for (const auto& node : nodes) {
      for (const auto& arg : DirectArgs(node)) {
        if (member_set.count(arg.get()) != 0) continue;
        if (arg->kind() == ExprKind::kConstant) continue;
        if (seen_inputs.insert(arg.get()).second) info.inputs.push_back(arg);
      }
    }

    // Outputs: members with a consumer outside the region, or the body root.
    for (const auto& node : nodes) {
      bool is_output = node == body_root_;
      if (!is_output) {
        for (const auto& consumer : consumers_[node.get()]) {
          if (member_set.count(consumer.get()) == 0) {
            is_output = true;
            break;
          }
        }
      }
      // Tuples feeding only in-region consumers are interior; a tuple
      // escaping the region would be unusual but is handled as an output.
      if (is_output) info.outputs.push_back(node);
    }
    TNP_CHECK(!info.outputs.empty()) << "region " << rid << " has no outputs";

    // Clone region body with params substituted for inputs.
    std::vector<VarPtr> params;
    std::unordered_map<const Expr*, ExprPtr> local;
    for (std::size_t i = 0; i < info.inputs.size(); ++i) {
      TNP_CHECK(info.inputs[i]->checked_type().defined())
          << "PartitionGraph requires InferType";
      auto param = MakeVar("i" + std::to_string(i), info.inputs[i]->checked_type());
      params.push_back(param);
      local[info.inputs[i].get()] = param;
    }
    for (const auto& node : nodes) {
      std::vector<ExprPtr> new_args;
      for (const auto& arg : DirectArgs(node)) {
        if (arg->kind() == ExprKind::kConstant && member_set.count(arg.get()) == 0) {
          new_args.push_back(arg);
          continue;
        }
        const auto it = local.find(arg.get());
        TNP_CHECK(it != local.end()) << "region operand not materialized";
        new_args.push_back(it->second);
      }
      switch (node->kind()) {
        case ExprKind::kCall: {
          const auto call = std::static_pointer_cast<Call>(node);
          local[node.get()] = MakeCall(call->op_name(), std::move(new_args), call->attrs());
          break;
        }
        case ExprKind::kTuple:
          local[node.get()] = MakeTuple(std::move(new_args));
          break;
        case ExprKind::kTupleGetItem: {
          const auto get = std::static_pointer_cast<TupleGetItem>(node);
          local[node.get()] = MakeTupleGetItem(new_args.at(0), get->index());
          break;
        }
        default:
          TNP_CHECK(false) << "unexpected node kind in region";
      }
    }

    ExprPtr body;
    if (info.outputs.size() == 1) {
      body = local.at(info.outputs.front().get());
    } else {
      std::vector<ExprPtr> fields;
      for (const auto& output : info.outputs) fields.push_back(local.at(output.get()));
      body = MakeTuple(std::move(fields));
    }

    Attrs fn_attrs;
    fn_attrs.SetString(kAttrCompiler, compiler_);
    fn_attrs.SetString(kAttrGlobalSymbol, info.global_name);
    module_out.Add(info.global_name, MakeFunction(std::move(params), body, fn_attrs));
    region_info_[rid] = std::move(info);
  }

  /// Rewrite the host-side expression, replacing region outputs with calls
  /// to the extracted global functions.
  ExprPtr RewriteHost(const ExprPtr& expr) {
    const auto memo_it = memo_.find(expr.get());
    if (memo_it != memo_.end()) return memo_it->second;

    ExprPtr result;
    const int rid = regions_.RegionOf(expr.get());
    if (rid >= 0) {
      const RegionInfo& info = region_info_.at(rid);
      const ExprPtr call = RegionCall(rid);
      // Which output is this node?
      int output_index = -1;
      for (std::size_t i = 0; i < info.outputs.size(); ++i) {
        if (info.outputs[i] == expr) {
          output_index = static_cast<int>(i);
          break;
        }
      }
      TNP_CHECK(output_index >= 0) << "interior region node referenced from host";
      result = info.outputs.size() == 1 ? call : MakeTupleGetItem(call, output_index);
    } else {
      switch (expr->kind()) {
        case ExprKind::kVar:
        case ExprKind::kConstant:
        case ExprKind::kFunction:
          result = expr;
          break;
        case ExprKind::kCall: {
          const auto call = std::static_pointer_cast<Call>(expr);
          std::vector<ExprPtr> args;
          for (const auto& arg : call->args()) args.push_back(RewriteHost(arg));
          switch (call->callee_kind()) {
            case CalleeKind::kOp:
              result = MakeCall(call->op_name(), std::move(args), call->attrs());
              break;
            case CalleeKind::kFunction:
              result = MakeFunctionCall(call->fn(), std::move(args));
              break;
            case CalleeKind::kGlobal:
              result = MakeGlobalCall(call->op_name(), std::move(args));
              break;
          }
          break;
        }
        case ExprKind::kTuple: {
          std::vector<ExprPtr> fields;
          for (const auto& field : std::static_pointer_cast<Tuple>(expr)->fields()) {
            fields.push_back(RewriteHost(field));
          }
          result = MakeTuple(std::move(fields));
          break;
        }
        case ExprKind::kTupleGetItem: {
          const auto get = std::static_pointer_cast<TupleGetItem>(expr);
          result = MakeTupleGetItem(RewriteHost(get->tuple()), get->index());
          break;
        }
      }
    }
    memo_[expr.get()] = result;
    return result;
  }

  ExprPtr RegionCall(int rid) {
    const auto it = region_calls_.find(rid);
    if (it != region_calls_.end()) return it->second;
    const RegionInfo& info = region_info_.at(rid);
    std::vector<ExprPtr> args;
    args.reserve(info.inputs.size());
    for (const auto& input : info.inputs) args.push_back(RewriteHost(input));
    const ExprPtr call = MakeGlobalCall(info.global_name, std::move(args));
    region_calls_[rid] = call;
    return call;
  }

  const RegionAssignment& regions_;
  std::string compiler_;
  std::vector<ExprPtr> nodes_;
  std::unordered_map<const Expr*, std::size_t> topo_index_;
  std::vector<std::vector<ExprPtr>> region_nodes_;
  std::unordered_map<const Expr*, std::vector<ExprPtr>> consumers_;
  std::map<int, RegionInfo> region_info_;
  std::map<int, ExprPtr> region_calls_;
  std::unordered_map<const Expr*, ExprPtr> memo_;
  ExprPtr body_root_;
};

}  // namespace

RegionAssignment AnnotateAndMergeRegions(const FunctionPtr& fn, const SupportPredicate& pred) {
  return RegionBuilder(fn, pred).Result();
}

Module PartitionGraph(const Module& module, const std::string& compiler,
                      const SupportPredicate& pred) {
  const FunctionPtr& main_fn = module.main();
  TNP_CHECK(main_fn->checked_type().defined())
      << "PartitionGraph requires InferType to have run";
  support::TraceScope scope;
  if (scope.armed()) {
    scope.Begin("byoc.partition", "PartitionGraph",
                support::TraceArg("compiler", compiler));
  }
  const RegionAssignment regions = AnnotateAndMergeRegions(main_fn, pred);
  if (scope.armed()) scope.AddArg(support::TraceArg("regions", regions.num_regions));
  if (regions.num_regions == 0) return module;
  Extractor extractor(main_fn, regions, compiler);
  Module result = extractor.Run(module, main_fn);
  return InferType().Run(result);
}

Pass PartitionGraphPass(std::string compiler, SupportPredicate pred) {
  return Pass("PartitionGraph", [compiler = std::move(compiler),
                                 pred = std::move(pred)](const Module& module) {
    return PartitionGraph(module, compiler, pred);
  });
}

}  // namespace relay
}  // namespace tnp
