// Module-level pass infrastructure and the standard optimization passes.
//
// Passes are pure Module -> Module functions composed by Sequential, in the
// spirit of TVM's transform.PassContext pipeline:
//
//   Module optimized = Sequential({InferType(), FoldConstant(), FuseOps()})
//                          .Run(module);
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "relay/module.h"
#include "support/metrics.h"
#include "support/trace.h"

namespace tnp {
namespace relay {

/// Total IR nodes across all functions of `module` (trace annotations).
int CountModuleNodes(const Module& module);

class Pass {
 public:
  Pass(std::string name, std::function<Module(const Module&)> fn)
      : name_(std::move(name)), fn_(std::move(fn)) {}

  const std::string& name() const noexcept { return name_; }

  Module Run(const Module& module) const {
    static support::metrics::Counter& runs =
        support::metrics::Registry::Global().GetCounter("relay/pass_runs");
    runs.Increment();
    support::TraceScope scope;
    if (scope.armed()) {
      scope.Begin("relay.pass", name_,
                  support::TraceArg("nodes_in", CountModuleNodes(module)));
    }
    Module result = fn_(module);
    if (scope.armed()) {
      scope.AddArg(support::TraceArg("nodes_out", CountModuleNodes(result)));
    }
    return result;
  }

 private:
  std::string name_;
  std::function<Module(const Module&)> fn_;
};

/// Runs the contained passes in order.
class Sequential {
 public:
  Sequential(std::vector<Pass> passes) : passes_(std::move(passes)) {}  // NOLINT

  Module Run(const Module& module) const {
    Module current = module;
    for (const auto& pass : passes_) current = pass.Run(current);
    return current;
  }

 private:
  std::vector<Pass> passes_;
};

// ---- standard passes ----

/// Assign checked types to every expression of every function. Throws
/// kTypeError on ill-typed programs. Idempotent.
Pass InferType();

/// Evaluate constant subexpressions (whole-constant op calls) at compile
/// time and replace them with Constants. Requires InferType beforehand.
Pass FoldConstant();

/// Structural cleanups: TupleGetItem(Tuple(fields), i) -> fields[i],
/// nn.dropout -> identity, and removal of module functions unreachable from
/// main (DCE at module granularity).
Pass SimplifyExpr();

/// Fuse anchor ops (conv/dense) with trailing fusable followers
/// (bias_add/activation/batch_norm/...) into Primitive functions. The fused
/// group pays one launch overhead in the device cost model.
Pass FuseOps();

/// Fold inference-time nn.batch_norm into the preceding conv2d's constant
/// weights/bias (per-output-channel scale + shift). Numerics preserved to
/// float rounding; one fewer memory-bound op per conv+BN pair.
Pass FoldBatchNorm();

/// Lower the QNN dialect to a pure-float reference graph: quantized
/// constants are dequantized, quantize/requantize become saturation clips,
/// int8 graph inputs become float inputs. Outputs approximate the integer
/// pipeline within a few quantization steps (asserted by the test suite).
Pass QnnCanonicalize();

// ---- type inference utility usable on bare expressions ----

/// Infer checked types on one function in place (mutates the cached type
/// fields only). Returns the function's result type.
Type InferFunctionTypes(const FunctionPtr& fn);

}  // namespace relay
}  // namespace tnp
