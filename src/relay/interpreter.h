// Reference interpreter: evaluates Relay expressions by dispatching each op
// call to the corresponding CPU kernel. This is the numerical ground truth
// for the whole stack — the graph executor, constant folding and the tests
// all route through EvalOpCall.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "relay/expr.h"
#include "tensor/ndarray.h"

namespace tnp {
namespace kernels {
struct PackedMatrix;
}  // namespace kernels

namespace relay {

/// Runtime value: a tensor or a tuple of values.
class Value {
 public:
  Value() = default;
  Value(NDArray tensor) : tensor_(std::move(tensor)) {}  // NOLINT
  explicit Value(std::vector<Value> fields) : fields_(std::move(fields)), is_tuple_(true) {}

  bool is_tuple() const noexcept { return is_tuple_; }
  bool defined() const noexcept { return is_tuple_ || tensor_.defined(); }

  const NDArray& AsTensor() const {
    TNP_CHECK(!is_tuple_ && tensor_.defined()) << "value is not a tensor";
    return tensor_;
  }
  const std::vector<Value>& AsTuple() const {
    TNP_CHECK(is_tuple_) << "value is not a tuple";
    return fields_;
  }

  Type GetType() const;

 private:
  NDArray tensor_;
  std::vector<Value> fields_;
  bool is_tuple_ = false;
};

/// Evaluate one operator call on already-computed argument values, writing
/// the result into the caller-provided `out` tensor (shape/dtype must match
/// the op's inferred output type). `out` may alias the first argument for
/// elementwise/identity ops — every kernel on that path is element-local.
/// Performs no tensor allocation: this is the planned-arena execution path.
/// `packed_weights` (conv/dense ops only) is the pre-packed panel form of
/// the weight argument when the compiler prepared one; nullptr falls back to
/// packing into arena scratch inside the kernel.
void EvalOpCallInto(const std::string& op_name, const Attrs& attrs,
                    const std::vector<Value>& args, NDArray& out,
                    const kernels::PackedMatrix* packed_weights = nullptr);

/// Evaluate one operator call on already-computed argument values.
/// The output tensor is freshly allocated (thin wrapper over EvalOpCallInto;
/// the legacy path kept for constant folding, EvalExpr and differential
/// testing against planned execution).
Value EvalOpCall(const std::string& op_name, const Attrs& attrs, const Call& call,
                 const std::vector<Value>& args);

/// Environment mapping Vars (by identity) to values.
using Environment = std::map<const Expr*, Value>;

/// Evaluate a whole expression tree under `env`. Handles every node kind
/// including calls to embedded (fused) functions.
Value EvalExpr(const ExprPtr& expr, const Environment& env);

}  // namespace relay
}  // namespace tnp
