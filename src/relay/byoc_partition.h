// BYOC graph partitioning (TVM-style AnnotateTarget -> MergeCompilerRegions
// -> PartitionGraph).
//
// Given a predicate describing which operator calls an external compiler
// supports, the partitioner grows maximal *convex* regions of supported
// nodes (convex = no path leaves the region and re-enters, which would make
// the extracted call graph cyclic), then extracts each region into a global
// function tagged with the Compiler attribute and replaces it with a call.
//
// The extracted functions are what core/'s Relay->Neuron converter consumes.
#pragma once

#include <functional>
#include <unordered_map>

#include "relay/module.h"
#include "relay/pass.h"

namespace tnp {
namespace relay {

/// True when the external compiler can execute this operator call.
using SupportPredicate = std::function<bool(const Call& call)>;

/// Result of AnnotateTarget + MergeCompilerRegions: a region id per
/// expression node (-1 = stays on the host), with regions guaranteed convex.
struct RegionAssignment {
  std::unordered_map<const Expr*, int> region_of;
  int num_regions = 0;

  int RegionOf(const Expr* node) const {
    const auto it = region_of.find(node);
    return it == region_of.end() ? -1 : it->second;
  }
};

/// Annotate supported calls and merge them into maximal convex regions.
/// Requires checked types (run InferType first).
RegionAssignment AnnotateAndMergeRegions(const FunctionPtr& fn, const SupportPredicate& pred);

/// Full partition pipeline on module["main"]: annotate + merge + extract.
/// Each region becomes a global function `<compiler>_<k>` with attributes
/// Compiler=<compiler> and global_symbol. Re-runs InferType on the result.
Module PartitionGraph(const Module& module, const std::string& compiler,
                      const SupportPredicate& pred);

/// The same as a composable Pass.
Pass PartitionGraphPass(std::string compiler, SupportPredicate pred);

}  // namespace relay
}  // namespace tnp
