// FuseOps: group an anchor op (conv2d/dense, float or QNN) with its chain of
// single-consumer fusable followers (bias_add, activations, batch_norm, ...)
// into one Primitive function. The graph executor runs a fused group as one
// instruction, so in the device cost model a fused group pays the per-op
// launch overhead once — mirroring why TVM's fused kernels beat a naive
// per-op dispatch on mobile CPUs.
#include <unordered_map>
#include <unordered_set>

#include "relay/op.h"
#include "relay/pass.h"
#include "relay/visitor.h"

namespace tnp {
namespace relay {

namespace {

/// Nodes of one function body, excluding embedded function bodies.
std::vector<ExprPtr> TopLevelPostOrder(const ExprPtr& body) {
  struct Collector : ExprVisitor {
    Collector() { visit_function_bodies_ = false; }
    std::vector<ExprPtr> nodes;
    void VisitVar(const VarPtr& v) override { nodes.push_back(v); }
    void VisitConstant(const ConstantPtr& c) override { nodes.push_back(c); }
    void VisitCall(const CallPtr& c) override { nodes.push_back(c); }
    void VisitTuple(const TuplePtr& t) override { nodes.push_back(t); }
    void VisitTupleGetItem(const TupleGetItemPtr& g) override { nodes.push_back(g); }
  };
  Collector collector;
  collector.Visit(body);
  return std::move(collector.nodes);
}

bool IsPlainOpCall(const ExprPtr& expr) {
  return expr->kind() == ExprKind::kCall &&
         std::static_pointer_cast<Call>(expr)->callee_kind() == CalleeKind::kOp;
}

class FuseRewriter {
 public:
  explicit FuseRewriter(const ExprPtr& body) {
    const auto nodes = TopLevelPostOrder(body);

    // Use map: node -> consuming expressions (at this function's top level).
    std::unordered_map<const Expr*, std::vector<ExprPtr>> uses;
    for (const auto& node : nodes) {
      if (node->kind() == ExprKind::kCall) {
        for (const auto& arg : std::static_pointer_cast<Call>(node)->args()) {
          uses[arg.get()].push_back(node);
        }
      } else if (node->kind() == ExprKind::kTuple) {
        for (const auto& field : std::static_pointer_cast<Tuple>(node)->fields()) {
          uses[field.get()].push_back(node);
        }
      } else if (node->kind() == ExprKind::kTupleGetItem) {
        uses[std::static_pointer_cast<TupleGetItem>(node)->tuple().get()].push_back(node);
      }
    }

    // Grow a chain from every anchor.
    for (const auto& node : nodes) {
      if (!IsPlainOpCall(node)) continue;
      const auto call = std::static_pointer_cast<Call>(node);
      const OpDef& def = OpRegistry::Global().Get(call->op_name());
      if (!def.fusion_anchor || in_group_.count(node.get()) != 0) continue;

      std::vector<CallPtr> chain = {call};
      ExprPtr tail = node;
      while (tail.get() != body.get()) {
        const auto use_it = uses.find(tail.get());
        if (use_it == uses.end() || use_it->second.size() != 1) break;
        const ExprPtr& consumer = use_it->second.front();
        if (!IsPlainOpCall(consumer)) break;
        const auto consumer_call = std::static_pointer_cast<Call>(consumer);
        const OpDef& consumer_def = OpRegistry::Global().Get(consumer_call->op_name());
        if (!consumer_def.fusable_follower) break;
        // Every other operand must be a leaf (constant / graph input) so the
        // fused body stays a straight-line chain.
        bool leaf_args = true;
        for (const auto& arg : consumer_call->args()) {
          if (arg == tail) continue;
          if (arg->kind() != ExprKind::kConstant && arg->kind() != ExprKind::kVar) {
            leaf_args = false;
            break;
          }
        }
        if (!leaf_args) break;
        chain.push_back(consumer_call);
        tail = consumer;
      }

      if (chain.size() < 2) continue;  // nothing to fuse
      for (const auto& member : chain) in_group_.insert(member.get());
      group_of_tail_[chain.back().get()] = std::move(chain);
    }
  }

  ExprPtr Rewrite(const ExprPtr& expr) {
    const auto memo_it = memo_.find(expr.get());
    if (memo_it != memo_.end()) return memo_it->second;

    ExprPtr result;
    const auto group_it = group_of_tail_.find(expr.get());
    if (group_it != group_of_tail_.end()) {
      result = BuildFusedCall(group_it->second);
    } else {
      TNP_CHECK(in_group_.count(expr.get()) == 0 || expr->kind() != ExprKind::kCall ||
                group_of_tail_.count(expr.get()) != 0)
          << "interior fused node referenced externally";
      result = RebuildShallow(expr);
    }
    memo_[expr.get()] = result;
    return result;
  }

 private:
  ExprPtr RebuildShallow(const ExprPtr& expr) {
    switch (expr->kind()) {
      case ExprKind::kVar:
      case ExprKind::kConstant:
      case ExprKind::kFunction:
        return expr;
      case ExprKind::kCall: {
        const auto call = std::static_pointer_cast<Call>(expr);
        std::vector<ExprPtr> args;
        args.reserve(call->args().size());
        bool changed = false;
        for (const auto& arg : call->args()) {
          args.push_back(Rewrite(arg));
          changed |= args.back() != arg;
        }
        if (!changed) return expr;
        switch (call->callee_kind()) {
          case CalleeKind::kOp: return MakeCall(call->op_name(), std::move(args), call->attrs());
          case CalleeKind::kFunction: return MakeFunctionCall(call->fn(), std::move(args));
          case CalleeKind::kGlobal: return MakeGlobalCall(call->op_name(), std::move(args));
        }
        return expr;
      }
      case ExprKind::kTuple: {
        const auto tuple = std::static_pointer_cast<Tuple>(expr);
        std::vector<ExprPtr> fields;
        bool changed = false;
        for (const auto& field : tuple->fields()) {
          fields.push_back(Rewrite(field));
          changed |= fields.back() != field;
        }
        return changed ? MakeTuple(std::move(fields)) : expr;
      }
      case ExprKind::kTupleGetItem: {
        const auto get = std::static_pointer_cast<TupleGetItem>(expr);
        const ExprPtr tuple = Rewrite(get->tuple());
        return tuple == get->tuple() ? expr : MakeTupleGetItem(tuple, get->index());
      }
    }
    return expr;
  }

  ExprPtr BuildFusedCall(const std::vector<CallPtr>& chain) {
    std::unordered_set<const Expr*> members;
    for (const auto& member : chain) members.insert(member.get());

    // External (non-constant, non-member) operands become parameters;
    // constants stay embedded in the primitive body.
    std::vector<ExprPtr> outer_args;
    std::vector<VarPtr> params;
    std::unordered_map<const Expr*, ExprPtr> replacement;  // old node -> inner expr
    int param_index = 0;

    for (const auto& member : chain) {
      for (const auto& arg : member->args()) {
        if (members.count(arg.get()) != 0) continue;
        if (replacement.count(arg.get()) != 0) continue;
        if (arg->kind() == ExprKind::kConstant) {
          replacement[arg.get()] = arg;
          continue;
        }
        TNP_CHECK(arg->checked_type().defined())
            << "FuseOps requires InferType to have run first";
        auto param = MakeVar("fp" + std::to_string(param_index++), arg->checked_type());
        params.push_back(param);
        replacement[arg.get()] = param;
        outer_args.push_back(Rewrite(arg));
      }
    }

    // Rebuild the chain inside the primitive function.
    for (const auto& member : chain) {
      std::vector<ExprPtr> inner_args;
      inner_args.reserve(member->args().size());
      for (const auto& arg : member->args()) {
        const auto it = replacement.find(arg.get());
        TNP_CHECK(it != replacement.end());
        inner_args.push_back(it->second);
      }
      replacement[member.get()] = MakeCall(member->op_name(), std::move(inner_args),
                                           member->attrs());
    }

    Attrs fn_attrs;
    fn_attrs.SetInt(kAttrPrimitive, 1);
    auto fused = MakeFunction(std::move(params), replacement[chain.back().get()], fn_attrs);
    return MakeFunctionCall(std::move(fused), std::move(outer_args));
  }

  std::unordered_map<const Expr*, std::vector<CallPtr>> group_of_tail_;
  std::unordered_set<const Expr*> in_group_;
  std::unordered_map<const Expr*, ExprPtr> memo_;
};

}  // namespace

Pass FuseOps() {
  return Pass("FuseOps", [](const Module& module) {
    Module result;
    for (const auto& [name, fn] : module.functions()) {
      // External (BYOC) functions are compiled by the external codegen,
      // which performs its own grouping; leave them untouched.
      if (!fn->compiler().empty()) {
        result.Add(name, fn);
        continue;
      }
      FuseRewriter rewriter(fn->body());
      const ExprPtr new_body = rewriter.Rewrite(fn->body());
      result.Add(name, new_body == fn->body()
                           ? fn
                           : MakeFunction(fn->params(), new_body, fn->attrs()));
    }
    return result;
  });
}

}  // namespace relay
}  // namespace tnp
