#include "relay/expr.h"

namespace tnp {
namespace relay {

Call::Call(FunctionPtr fn, std::vector<ExprPtr> args)
    : Expr(ExprKind::kCall),
      callee_kind_(CalleeKind::kFunction),
      fn_(std::move(fn)),
      args_(std::move(args)) {}

CallPtr MakeFunctionCall(FunctionPtr fn, std::vector<ExprPtr> args) {
  return std::make_shared<Call>(std::move(fn), std::move(args));
}

bool IsCallTo(const ExprPtr& expr, const std::string& op_name) {
  if (!expr || expr->kind() != ExprKind::kCall) return false;
  const auto call = std::static_pointer_cast<Call>(expr);
  return call->callee_kind() == CalleeKind::kOp && call->op_name() == op_name;
}

}  // namespace relay
}  // namespace tnp
