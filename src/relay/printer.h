// Human-readable text form of Relay expressions and modules, in an
// A-normal-ish style with one binding per line:
//   %0 = nn.conv2d(%data, const<...>, ...) {strides=[1, 1]}
// Used by tests (structural assertions) and for debugging passes.
#pragma once

#include <string>

#include "relay/module.h"

namespace tnp {
namespace relay {

std::string PrintExpr(const ExprPtr& expr);
std::string PrintFunction(const FunctionPtr& fn);
std::string PrintModule(const Module& module);

}  // namespace relay
}  // namespace tnp
