#include "relay/serializer.h"

#include <cstring>
#include <fstream>
#include <ostream>
#include <sstream>
#include <unordered_map>

#include "relay/pass.h"
#include "relay/visitor.h"
#include "support/logging.h"

namespace tnp {
namespace relay {

namespace {

// ------------------------------------------------------------- primitives

void WriteU32(std::ostream& os, std::uint32_t value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

void WriteI64(std::ostream& os, std::int64_t value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

void WriteF64(std::ostream& os, double value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

void WriteString(std::ostream& os, const std::string& text) {
  WriteU32(os, static_cast<std::uint32_t>(text.size()));
  os.write(text.data(), static_cast<std::streamsize>(text.size()));
}

std::uint32_t ReadU32(std::istream& is) {
  std::uint32_t value = 0;
  is.read(reinterpret_cast<char*>(&value), sizeof(value));
  if (!is) TNP_THROW(kParseError) << "module artifact truncated (u32)";
  return value;
}

std::int64_t ReadI64(std::istream& is) {
  std::int64_t value = 0;
  is.read(reinterpret_cast<char*>(&value), sizeof(value));
  if (!is) TNP_THROW(kParseError) << "module artifact truncated (i64)";
  return value;
}

double ReadF64(std::istream& is) {
  double value = 0;
  is.read(reinterpret_cast<char*>(&value), sizeof(value));
  if (!is) TNP_THROW(kParseError) << "module artifact truncated (f64)";
  return value;
}

std::string ReadString(std::istream& is) {
  const std::uint32_t size = ReadU32(is);
  if (size > (64u << 20)) TNP_THROW(kParseError) << "implausible string size " << size;
  std::string text(size, '\0');
  is.read(text.data(), static_cast<std::streamsize>(size));
  if (!is) TNP_THROW(kParseError) << "module artifact truncated (string)";
  return text;
}

// ------------------------------------------------------------------ attrs

enum class AttrTag : std::uint32_t {
  kInt = 0,
  kDouble = 1,
  kString = 2,
  kInts = 3,
  kDoubles = 4,
};

void WriteAttrs(std::ostream& os, const Attrs& attrs) {
  WriteU32(os, static_cast<std::uint32_t>(attrs.values().size()));
  for (const auto& [key, value] : attrs.values()) {
    WriteString(os, key);
    if (const auto* v = std::get_if<std::int64_t>(&value)) {
      WriteU32(os, static_cast<std::uint32_t>(AttrTag::kInt));
      WriteI64(os, *v);
    } else if (const auto* v = std::get_if<double>(&value)) {
      WriteU32(os, static_cast<std::uint32_t>(AttrTag::kDouble));
      WriteF64(os, *v);
    } else if (const auto* v = std::get_if<std::string>(&value)) {
      WriteU32(os, static_cast<std::uint32_t>(AttrTag::kString));
      WriteString(os, *v);
    } else if (const auto* v = std::get_if<std::vector<std::int64_t>>(&value)) {
      WriteU32(os, static_cast<std::uint32_t>(AttrTag::kInts));
      WriteU32(os, static_cast<std::uint32_t>(v->size()));
      for (const std::int64_t x : *v) WriteI64(os, x);
    } else if (const auto* v = std::get_if<std::vector<double>>(&value)) {
      WriteU32(os, static_cast<std::uint32_t>(AttrTag::kDoubles));
      WriteU32(os, static_cast<std::uint32_t>(v->size()));
      for (const double x : *v) WriteF64(os, x);
    } else {
      TNP_CHECK(false) << "unhandled attr variant";
    }
  }
}

Attrs ReadAttrs(std::istream& is) {
  Attrs attrs;
  const std::uint32_t count = ReadU32(is);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::string key = ReadString(is);
    switch (static_cast<AttrTag>(ReadU32(is))) {
      case AttrTag::kInt:
        attrs.SetInt(key, ReadI64(is));
        break;
      case AttrTag::kDouble:
        attrs.SetDouble(key, ReadF64(is));
        break;
      case AttrTag::kString:
        attrs.SetString(key, ReadString(is));
        break;
      case AttrTag::kInts: {
        std::vector<std::int64_t> values(ReadU32(is));
        for (auto& value : values) value = ReadI64(is);
        attrs.SetInts(key, std::move(values));
        break;
      }
      case AttrTag::kDoubles: {
        std::vector<double> values(ReadU32(is));
        for (auto& value : values) value = ReadF64(is);
        attrs.SetDoubles(key, std::move(values));
        break;
      }
      default:
        TNP_THROW(kParseError) << "unknown attribute tag in module artifact";
    }
  }
  return attrs;
}

// ------------------------------------------------------------ types/arrays

void WriteType(std::ostream& os, const Type& type) {
  WriteU32(os, static_cast<std::uint32_t>(type.kind()));
  if (type.IsTensor()) {
    const TensorType& tensor = type.AsTensor();
    WriteU32(os, static_cast<std::uint32_t>(tensor.shape.rank()));
    for (const std::int64_t dim : tensor.shape.dims()) WriteI64(os, dim);
    WriteU32(os, static_cast<std::uint32_t>(tensor.dtype));
  } else if (type.IsTuple()) {
    WriteU32(os, static_cast<std::uint32_t>(type.AsTuple().size()));
    for (const Type& field : type.AsTuple()) WriteType(os, field);
  }
}

Type ReadType(std::istream& is) {
  const auto kind = static_cast<Type::Kind>(ReadU32(is));
  switch (kind) {
    case Type::Kind::kUnknown:
      return Type();
    case Type::Kind::kTensor: {
      std::vector<std::int64_t> dims(ReadU32(is));
      for (auto& dim : dims) dim = ReadI64(is);
      const auto dtype = static_cast<DType>(ReadU32(is));
      return Type::Tensor(Shape(std::move(dims)), dtype);
    }
    case Type::Kind::kTuple: {
      std::vector<Type> fields(ReadU32(is));
      for (auto& field : fields) field = ReadType(is);
      return Type::Tuple(std::move(fields));
    }
  }
  TNP_THROW(kParseError) << "unknown type kind in module artifact";
}

void WriteNDArray(std::ostream& os, const NDArray& array) {
  WriteU32(os, static_cast<std::uint32_t>(array.shape().rank()));
  for (const std::int64_t dim : array.shape().dims()) WriteI64(os, dim);
  WriteU32(os, static_cast<std::uint32_t>(array.dtype()));
  WriteU32(os, array.quant().valid ? 1 : 0);
  if (array.quant().valid) {
    WriteF64(os, array.quant().scale);
    WriteI64(os, array.quant().zero_point);
  }
  WriteI64(os, static_cast<std::int64_t>(array.SizeBytes()));
  os.write(static_cast<const char*>(array.RawData()),
           static_cast<std::streamsize>(array.SizeBytes()));
}

NDArray ReadNDArray(std::istream& is) {
  std::vector<std::int64_t> dims(ReadU32(is));
  for (auto& dim : dims) dim = ReadI64(is);
  const auto dtype = static_cast<DType>(ReadU32(is));
  QuantParams quant;
  if (ReadU32(is) != 0) {
    const double scale = ReadF64(is);
    const std::int64_t zero_point = ReadI64(is);
    quant = QuantParams(static_cast<float>(scale), static_cast<std::int32_t>(zero_point));
  }
  NDArray array = NDArray::Empty(Shape(std::move(dims)), dtype);
  const std::int64_t bytes = ReadI64(is);
  if (bytes != static_cast<std::int64_t>(array.SizeBytes())) {
    TNP_THROW(kParseError) << "constant byte-size mismatch in module artifact";
  }
  is.read(static_cast<char*>(array.RawData()), static_cast<std::streamsize>(bytes));
  if (!is) TNP_THROW(kParseError) << "module artifact truncated (constant)";
  array.set_quant(quant);
  return array;
}

// ------------------------------------------------------------- expressions

enum class NodeTag : std::uint32_t {
  kVar = 0,
  kConstant = 1,
  kCallOp = 2,
  kCallFunction = 3,
  kCallGlobal = 4,
  kTuple = 5,
  kTupleGetItem = 6,
  kFunction = 7,
};

/// Serialize one function's expression DAG: post-order node list where
/// children precede parents, so indices written for args always refer to
/// already-materialized nodes on load. Structural sharing is preserved.
void WriteFunction(std::ostream& os, const FunctionPtr& fn) {
  // Params may be unreferenced by the body; force them into the node order.
  std::unordered_map<const Expr*, std::uint32_t> index_of;
  std::vector<ExprPtr> nodes;
  {
    struct Collector : ExprVisitor {
      std::vector<ExprPtr>* nodes;
      void VisitVar(const VarPtr& v) override { nodes->push_back(v); }
      void VisitConstant(const ConstantPtr& c) override { nodes->push_back(c); }
      void VisitCall(const CallPtr& c) override { nodes->push_back(c); }
      void VisitTuple(const TuplePtr& t) override { nodes->push_back(t); }
      void VisitTupleGetItem(const TupleGetItemPtr& g) override { nodes->push_back(g); }
      void VisitFunction(const FunctionPtr& f) override { nodes->push_back(f); }
    };
    Collector collector;
    collector.nodes = &nodes;
    for (const auto& param : fn->params()) collector.Visit(param);
    collector.Visit(fn->body());
  }
  for (std::uint32_t i = 0; i < nodes.size(); ++i) index_of[nodes[i].get()] = i;

  const auto ref = [&](const ExprPtr& expr) {
    const auto it = index_of.find(expr.get());
    TNP_CHECK(it != index_of.end()) << "expression not in serialization order";
    return it->second;
  };

  WriteU32(os, static_cast<std::uint32_t>(nodes.size()));
  for (const auto& node : nodes) {
    switch (node->kind()) {
      case ExprKind::kVar: {
        const auto var = As<Var>(node);
        WriteU32(os, static_cast<std::uint32_t>(NodeTag::kVar));
        WriteString(os, var->name());
        WriteType(os, var->type_annotation());
        break;
      }
      case ExprKind::kConstant: {
        WriteU32(os, static_cast<std::uint32_t>(NodeTag::kConstant));
        WriteNDArray(os, As<Constant>(node)->data());
        break;
      }
      case ExprKind::kCall: {
        const auto call = As<Call>(node);
        switch (call->callee_kind()) {
          case CalleeKind::kOp:
            WriteU32(os, static_cast<std::uint32_t>(NodeTag::kCallOp));
            WriteString(os, call->op_name());
            WriteAttrs(os, call->attrs());
            break;
          case CalleeKind::kFunction:
            WriteU32(os, static_cast<std::uint32_t>(NodeTag::kCallFunction));
            WriteU32(os, ref(call->fn()));
            break;
          case CalleeKind::kGlobal:
            WriteU32(os, static_cast<std::uint32_t>(NodeTag::kCallGlobal));
            WriteString(os, call->op_name());
            break;
        }
        WriteU32(os, static_cast<std::uint32_t>(call->args().size()));
        for (const auto& arg : call->args()) WriteU32(os, ref(arg));
        break;
      }
      case ExprKind::kTuple: {
        const auto tuple = As<Tuple>(node);
        WriteU32(os, static_cast<std::uint32_t>(NodeTag::kTuple));
        WriteU32(os, static_cast<std::uint32_t>(tuple->fields().size()));
        for (const auto& field : tuple->fields()) WriteU32(os, ref(field));
        break;
      }
      case ExprKind::kTupleGetItem: {
        const auto get = As<TupleGetItem>(node);
        WriteU32(os, static_cast<std::uint32_t>(NodeTag::kTupleGetItem));
        WriteU32(os, ref(get->tuple()));
        WriteI64(os, get->index());
        break;
      }
      case ExprKind::kFunction: {
        const auto inner = As<Function>(node);
        WriteU32(os, static_cast<std::uint32_t>(NodeTag::kFunction));
        WriteU32(os, static_cast<std::uint32_t>(inner->params().size()));
        for (const auto& param : inner->params()) WriteU32(os, ref(std::static_pointer_cast<Expr>(param)));
        WriteU32(os, ref(inner->body()));
        WriteAttrs(os, inner->attrs());
        break;
      }
    }
  }

  // The function itself: param refs, body ref, attrs.
  WriteU32(os, static_cast<std::uint32_t>(fn->params().size()));
  for (const auto& param : fn->params()) WriteU32(os, ref(std::static_pointer_cast<Expr>(param)));
  WriteU32(os, ref(fn->body()));
  WriteAttrs(os, fn->attrs());
}

FunctionPtr ReadFunction(std::istream& is) {
  const std::uint32_t num_nodes = ReadU32(is);
  if (num_nodes > (1u << 24)) TNP_THROW(kParseError) << "implausible node count";
  std::vector<ExprPtr> nodes;
  nodes.reserve(num_nodes);

  const auto node_at = [&](std::uint32_t index) -> const ExprPtr& {
    if (index >= nodes.size()) {
      TNP_THROW(kParseError) << "forward node reference in module artifact";
    }
    return nodes[index];
  };
  const auto var_at = [&](std::uint32_t index) {
    const ExprPtr& node = node_at(index);
    if (node->kind() != ExprKind::kVar) {
      TNP_THROW(kParseError) << "parameter reference is not a Var";
    }
    return std::static_pointer_cast<Var>(node);
  };

  for (std::uint32_t i = 0; i < num_nodes; ++i) {
    switch (static_cast<NodeTag>(ReadU32(is))) {
      case NodeTag::kVar: {
        const std::string name = ReadString(is);
        nodes.push_back(MakeVar(name, ReadType(is)));
        break;
      }
      case NodeTag::kConstant:
        nodes.push_back(MakeConstant(ReadNDArray(is)));
        break;
      case NodeTag::kCallOp: {
        const std::string op = ReadString(is);
        Attrs attrs = ReadAttrs(is);
        std::vector<ExprPtr> args(ReadU32(is));
        for (auto& arg : args) arg = node_at(ReadU32(is));
        nodes.push_back(MakeCall(op, std::move(args), std::move(attrs)));
        break;
      }
      case NodeTag::kCallFunction: {
        const ExprPtr callee = node_at(ReadU32(is));
        if (callee->kind() != ExprKind::kFunction) {
          TNP_THROW(kParseError) << "function-call callee is not a Function";
        }
        std::vector<ExprPtr> args(ReadU32(is));
        for (auto& arg : args) arg = node_at(ReadU32(is));
        nodes.push_back(
            MakeFunctionCall(std::static_pointer_cast<Function>(callee), std::move(args)));
        break;
      }
      case NodeTag::kCallGlobal: {
        const std::string global = ReadString(is);
        std::vector<ExprPtr> args(ReadU32(is));
        for (auto& arg : args) arg = node_at(ReadU32(is));
        nodes.push_back(MakeGlobalCall(global, std::move(args)));
        break;
      }
      case NodeTag::kTuple: {
        std::vector<ExprPtr> fields(ReadU32(is));
        for (auto& field : fields) field = node_at(ReadU32(is));
        nodes.push_back(MakeTuple(std::move(fields)));
        break;
      }
      case NodeTag::kTupleGetItem: {
        const ExprPtr tuple = node_at(ReadU32(is));
        nodes.push_back(MakeTupleGetItem(tuple, static_cast<int>(ReadI64(is))));
        break;
      }
      case NodeTag::kFunction: {
        std::vector<VarPtr> params(ReadU32(is));
        for (auto& param : params) param = var_at(ReadU32(is));
        const ExprPtr body = node_at(ReadU32(is));
        nodes.push_back(MakeFunction(std::move(params), body, ReadAttrs(is)));
        break;
      }
      default:
        TNP_THROW(kParseError) << "unknown node tag in module artifact";
    }
  }

  std::vector<VarPtr> params(ReadU32(is));
  for (auto& param : params) param = var_at(ReadU32(is));
  const ExprPtr body = node_at(ReadU32(is));
  return MakeFunction(std::move(params), body, ReadAttrs(is));
}

}  // namespace

void SaveModule(const Module& module, std::ostream& os) {
  WriteU32(os, kModuleMagic);
  WriteU32(os, kModuleVersion);
  WriteU32(os, static_cast<std::uint32_t>(module.functions().size()));
  for (const auto& [name, fn] : module.functions()) {
    WriteString(os, name);
    WriteFunction(os, fn);
  }
  TNP_CHECK(os.good()) << "module serialization stream failure";
}

Module LoadModule(std::istream& is) {
  if (ReadU32(is) != kModuleMagic) {
    TNP_THROW(kParseError) << "not a TNP module artifact (bad magic)";
  }
  const std::uint32_t version = ReadU32(is);
  if (version != kModuleVersion) {
    TNP_THROW(kParseError) << "unsupported module artifact version " << version;
  }
  Module module;
  const std::uint32_t num_functions = ReadU32(is);
  for (std::uint32_t i = 0; i < num_functions; ++i) {
    const std::string name = ReadString(is);
    module.Add(name, ReadFunction(is));
  }
  return InferType().Run(module);
}

void SaveModuleToFile(const Module& module, const std::string& path) {
  std::ofstream file(path, std::ios::binary);
  if (!file) TNP_THROW(kInvalidArgument) << "cannot open '" << path << "' for writing";
  SaveModule(module, file);
}

Module LoadModuleFromFile(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) TNP_THROW(kInvalidArgument) << "cannot open '" << path << "' for reading";
  return LoadModule(file);
}

}  // namespace relay
}  // namespace tnp
