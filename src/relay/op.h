// Operator registry: every Relay op carries a type-inference function, a
// cost-model category, and fusion metadata. Frontends and the converter
// reference ops only by name, so the registry is the single source of truth
// for the op vocabulary.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "relay/expr.h"
#include "relay/type.h"
#include "sim/cost_model.h"

namespace tnp {
namespace relay {

/// Computes the result type of a call given its argument types.
/// Throws tnp::Error(kTypeError) on invalid inputs.
using TypeInferFn = std::function<Type(const Call& call, const std::vector<Type>& arg_types)>;

/// Computes the multiply-accumulate count of a call (0 = memory-bound op).
using MacsFn = std::function<std::int64_t(const Call& call, const std::vector<Type>& arg_types,
                                          const Type& out_type)>;

struct OpDef {
  std::string name;
  /// Expected argument count; -1 means variadic (e.g. concatenate's tuple).
  int num_inputs = -1;
  TypeInferFn infer;
  sim::OpCategory category = sim::OpCategory::kElementwise;
  MacsFn macs;  ///< optional; nullptr means 0 MACs
  /// Fusable into a preceding anchor op (elementwise/injective follower).
  bool fusable_follower = false;
  /// Anchor of a fusion group (conv/dense).
  bool fusion_anchor = false;
};

class OpRegistry {
 public:
  static OpRegistry& Global();

  /// Registers an op definition; re-registering a name is an error.
  void Register(OpDef def);

  bool Has(const std::string& name) const;
  const OpDef& Get(const std::string& name) const;

  std::vector<std::string> AllNames() const;

 private:
  OpRegistry() = default;
  std::map<std::string, OpDef> ops_;
};

/// Infers the checked type of a single op call from already-inferred
/// argument types (shared by the InferType pass and the frontends).
Type InferCallType(const Call& call, const std::vector<Type>& arg_types);

/// MAC count for a call (0 when the op has no MacsFn).
std::int64_t CallMacs(const Call& call, const std::vector<Type>& arg_types,
                      const Type& out_type);

/// Registers the builtin op vocabulary into `registry`. Invoked exactly once
/// by OpRegistry::Global() during lazy construction.
void RegisterBuiltinOpsInto(OpRegistry& registry);

}  // namespace relay
}  // namespace tnp
