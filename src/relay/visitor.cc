#include "relay/visitor.h"

#include <algorithm>

namespace tnp {
namespace relay {

void ExprVisitor::Visit(const ExprPtr& expr) {
  TNP_CHECK(expr != nullptr);
  if (!visited_.insert(expr.get()).second) return;

  switch (expr->kind()) {
    case ExprKind::kVar:
      VisitVar(std::static_pointer_cast<Var>(expr));
      return;
    case ExprKind::kConstant:
      VisitConstant(std::static_pointer_cast<Constant>(expr));
      return;
    case ExprKind::kCall: {
      const auto call = std::static_pointer_cast<Call>(expr);
      for (const auto& arg : call->args()) Visit(arg);
      if (call->callee_kind() == CalleeKind::kFunction && visit_function_bodies_) {
        Visit(call->fn());
      }
      VisitCall(call);
      return;
    }
    case ExprKind::kTuple: {
      const auto tuple = std::static_pointer_cast<Tuple>(expr);
      for (const auto& field : tuple->fields()) Visit(field);
      VisitTuple(tuple);
      return;
    }
    case ExprKind::kTupleGetItem: {
      const auto get = std::static_pointer_cast<TupleGetItem>(expr);
      Visit(get->tuple());
      VisitTupleGetItem(get);
      return;
    }
    case ExprKind::kFunction: {
      const auto fn = std::static_pointer_cast<Function>(expr);
      if (visit_function_bodies_) {
        for (const auto& param : fn->params()) Visit(param);
        Visit(fn->body());
      }
      VisitFunction(fn);
      return;
    }
  }
}

void ExprVisitor::VisitFunction(const FunctionPtr& fn) { (void)fn; }

ExprPtr ExprMutator::Mutate(const ExprPtr& expr) {
  TNP_CHECK(expr != nullptr);
  const auto it = memo_.find(expr.get());
  if (it != memo_.end()) return it->second;

  ExprPtr result;
  switch (expr->kind()) {
    case ExprKind::kVar:
      result = RewriteVar(std::static_pointer_cast<Var>(expr));
      break;
    case ExprKind::kConstant:
      result = RewriteConstant(std::static_pointer_cast<Constant>(expr));
      break;
    case ExprKind::kCall: {
      const auto call = std::static_pointer_cast<Call>(expr);
      std::vector<ExprPtr> new_args;
      new_args.reserve(call->args().size());
      bool changed = false;
      for (const auto& arg : call->args()) {
        new_args.push_back(Mutate(arg));
        changed |= new_args.back() != arg;
      }
      FunctionPtr new_fn = call->callee_kind() == CalleeKind::kFunction ? call->fn() : nullptr;
      if (new_fn && mutate_function_bodies_) {
        const ExprPtr mutated = Mutate(std::static_pointer_cast<Expr>(new_fn));
        TNP_CHECK(mutated->kind() == ExprKind::kFunction);
        if (mutated.get() != new_fn.get()) {
          new_fn = std::static_pointer_cast<Function>(mutated);
          changed = true;
        }
      }
      CallPtr rebuilt;
      if (!changed) {
        rebuilt = call;
      } else {
        switch (call->callee_kind()) {
          case CalleeKind::kOp:
            rebuilt = MakeCall(call->op_name(), std::move(new_args), call->attrs());
            break;
          case CalleeKind::kFunction:
            rebuilt = MakeFunctionCall(new_fn, std::move(new_args));
            break;
          case CalleeKind::kGlobal:
            rebuilt = MakeGlobalCall(call->op_name(), std::move(new_args));
            break;
        }
      }
      result = RewriteCall(rebuilt);
      break;
    }
    case ExprKind::kTuple: {
      const auto tuple = std::static_pointer_cast<Tuple>(expr);
      std::vector<ExprPtr> new_fields;
      new_fields.reserve(tuple->fields().size());
      bool changed = false;
      for (const auto& field : tuple->fields()) {
        new_fields.push_back(Mutate(field));
        changed |= new_fields.back() != field;
      }
      result = RewriteTuple(changed ? MakeTuple(std::move(new_fields)) : tuple);
      break;
    }
    case ExprKind::kTupleGetItem: {
      const auto get = std::static_pointer_cast<TupleGetItem>(expr);
      const ExprPtr new_tuple = Mutate(get->tuple());
      result = RewriteTupleGetItem(
          new_tuple == get->tuple() ? get : MakeTupleGetItem(new_tuple, get->index()));
      break;
    }
    case ExprKind::kFunction: {
      const auto fn = std::static_pointer_cast<Function>(expr);
      if (!mutate_function_bodies_) {
        result = RewriteFunction(fn);
        break;
      }
      const ExprPtr new_body = Mutate(fn->body());
      result = RewriteFunction(new_body == fn->body()
                                   ? fn
                                   : MakeFunction(fn->params(), new_body, fn->attrs()));
      break;
    }
  }
  TNP_CHECK(result != nullptr);
  memo_[expr.get()] = result;
  return result;
}

std::vector<ExprPtr> PostOrder(const ExprPtr& expr) {
  struct Collector : ExprVisitor {
    std::vector<ExprPtr> nodes;
    void VisitVar(const VarPtr& v) override { nodes.push_back(v); }
    void VisitConstant(const ConstantPtr& c) override { nodes.push_back(c); }
    void VisitCall(const CallPtr& c) override { nodes.push_back(c); }
    void VisitTuple(const TuplePtr& t) override { nodes.push_back(t); }
    void VisitTupleGetItem(const TupleGetItemPtr& g) override { nodes.push_back(g); }
    void VisitFunction(const FunctionPtr& f) override { nodes.push_back(f); }
  };
  Collector collector;
  collector.Visit(expr);
  return std::move(collector.nodes);
}

int CountCalls(const ExprPtr& expr, const std::string& op_name) {
  int count = 0;
  for (const auto& node : PostOrder(expr)) {
    if (node->kind() != ExprKind::kCall) continue;
    const auto call = std::static_pointer_cast<Call>(node);
    if (op_name.empty() ||
        (call->callee_kind() == CalleeKind::kOp && call->op_name() == op_name)) {
      ++count;
    }
  }
  return count;
}

std::vector<VarPtr> FreeVars(const ExprPtr& expr) {
  // For graph-style modules (no Let/local binding except function params),
  // free vars are all Vars reachable without descending into embedded
  // function bodies, minus nothing. Function params shadow only inside
  // their own body, which we do not descend into here.
  struct Collector : ExprVisitor {
    Collector() { visit_function_bodies_ = false; }
    std::vector<VarPtr> vars;
    std::unordered_set<const Expr*> seen;
    void VisitVar(const VarPtr& v) override {
      if (seen.insert(v.get()).second) vars.push_back(v);
    }
  };
  Collector collector;
  collector.Visit(expr);
  return std::move(collector.vars);
}

}  // namespace relay
}  // namespace tnp
