#include "relay/printer.h"

#include <sstream>
#include <unordered_map>

#include "relay/visitor.h"

namespace tnp {
namespace relay {

namespace {

class Printer : ExprVisitor {
 public:
  Printer() { visit_function_bodies_ = false; }

  std::string Print(const ExprPtr& expr) {
    Visit(expr);
    os_ << "return " << Ref(expr) << "\n";
    return os_.str();
  }

  std::string PrintFn(const FunctionPtr& fn) {
    std::ostringstream header;
    header << "fn (";
    for (std::size_t i = 0; i < fn->params().size(); ++i) {
      if (i != 0) header << ", ";
      header << "%" << fn->params()[i]->name();
      if (fn->params()[i]->type_annotation().defined()) {
        header << ": " << fn->params()[i]->type_annotation().ToString();
      }
    }
    header << ")";
    if (!fn->attrs().values().empty()) header << " attrs=" << fn->attrs().ToString();
    header << " {\n";
    const std::string body = Print(fn->body());
    return header.str() + body + "}\n";
  }

 private:
  std::string Ref(const ExprPtr& expr) {
    switch (expr->kind()) {
      case ExprKind::kVar:
        return "%" + std::static_pointer_cast<Var>(expr)->name();
      case ExprKind::kConstant: {
        const auto c = std::static_pointer_cast<Constant>(expr);
        return "const<" + c->data().shape().ToString() + ":" + DTypeName(c->data().dtype()) + ">";
      }
      default: {
        const auto it = names_.find(expr.get());
        TNP_CHECK(it != names_.end());
        return it->second;
      }
    }
  }

  std::string Fresh(const Expr* expr) {
    const std::string name = "%" + std::to_string(counter_++);
    names_[expr] = name;
    return name;
  }

  void VisitCall(const CallPtr& call) override {
    const std::string name = Fresh(call.get());
    os_ << name << " = ";
    switch (call->callee_kind()) {
      case CalleeKind::kOp: os_ << call->op_name(); break;
      case CalleeKind::kGlobal: os_ << "@" << call->op_name(); break;
      case CalleeKind::kFunction: os_ << "fn<" << call->fn()->attrs().ToString() << ">"; break;
    }
    os_ << "(";
    for (std::size_t i = 0; i < call->args().size(); ++i) {
      if (i != 0) os_ << ", ";
      os_ << Ref(call->args()[i]);
    }
    os_ << ")";
    if (call->callee_kind() == CalleeKind::kOp && !call->attrs().values().empty()) {
      os_ << " " << call->attrs().ToString();
    }
    if (call->checked_type().defined()) os_ << " /* " << call->checked_type().ToString() << " */";
    os_ << "\n";
  }

  void VisitTuple(const TuplePtr& tuple) override {
    const std::string name = Fresh(tuple.get());
    os_ << name << " = (";
    for (std::size_t i = 0; i < tuple->fields().size(); ++i) {
      if (i != 0) os_ << ", ";
      os_ << Ref(tuple->fields()[i]);
    }
    os_ << ")\n";
  }

  void VisitTupleGetItem(const TupleGetItemPtr& get) override {
    const std::string name = Fresh(get.get());
    os_ << name << " = " << Ref(get->tuple()) << "." << get->index() << "\n";
  }

  void VisitFunction(const FunctionPtr& fn) override {
    // Embedded functions print as opaque references; their bodies are
    // printed separately when requested via PrintFunction.
    names_[fn.get()] = "fn<" + fn->attrs().ToString() + ">";
  }

  std::ostringstream os_;
  std::unordered_map<const Expr*, std::string> names_;
  int counter_ = 0;
};

}  // namespace

std::string PrintExpr(const ExprPtr& expr) { return Printer().Print(expr); }

std::string PrintFunction(const FunctionPtr& fn) { return Printer().PrintFn(fn); }

std::string PrintModule(const Module& module) {
  std::ostringstream os;
  for (const auto& [name, fn] : module.functions()) {
    os << "def @" << name << " ";
    os << PrintFunction(fn);
    os << "\n";
  }
  return os.str();
}

}  // namespace relay
}  // namespace tnp
