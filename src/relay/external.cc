#include "relay/external.h"

namespace tnp {
namespace relay {

ExternalCodegenRegistry& ExternalCodegenRegistry::Global() {
  static ExternalCodegenRegistry registry;
  return registry;
}

void ExternalCodegenRegistry::Register(const std::string& compiler, ExternalCodegenFn fn) {
  TNP_CHECK(fn != nullptr);
  codegens_[compiler] = std::move(fn);
}

bool ExternalCodegenRegistry::Has(const std::string& compiler) const {
  return codegens_.count(compiler) != 0;
}

const ExternalCodegenFn& ExternalCodegenRegistry::Get(const std::string& compiler) const {
  const auto it = codegens_.find(compiler);
  if (it == codegens_.end()) {
    TNP_THROW(kCompileError) << "no external codegen registered for compiler '" << compiler
                             << "'";
  }
  return it->second;
}

}  // namespace relay
}  // namespace tnp
