#include "support/telemetry.h"

#include <string>
#include <vector>

#include "support/metrics.h"
#include "support/profiler.h"
#include "support/timeseries.h"
#include "support/trace.h"

namespace tnp {
namespace support {

namespace {

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool IsTelemetryDerived(const std::string& name) {
  return name.rfind("telemetry/", 0) == 0;
}

}  // namespace

TelemetrySampler::TelemetrySampler(TelemetrySamplerOptions options)
    : options_(options) {}

TelemetrySampler::~TelemetrySampler() { Stop(); }

void TelemetrySampler::Start() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (running_) return;
  stop_ = false;
  running_ = true;
  thread_ = std::thread([this] { Loop(); });
}

void TelemetrySampler::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!running_) return;
    stop_ = true;
    cv_.notify_all();
  }
  thread_.join();
  std::lock_guard<std::mutex> lock(mutex_);
  running_ = false;
}

void TelemetrySampler::Loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (cv_.wait_for(lock, options_.period, [this] { return stop_; })) return;
    }
    SampleOnce();
  }
}

void TelemetrySampler::AddSampleCallback(std::function<void()> callback) {
  std::lock_guard<std::mutex> lock(mutex_);
  callbacks_.push_back(std::move(callback));
}

void TelemetrySampler::SampleOnce() {
  using metrics::MetricRef;
  if (options_.advance_timeseries) timeseries::Collector::Global().Tick();
  if (options_.sample_profiler) profiler::Profiler::Global().SampleOnce();
  const std::vector<MetricRef> refs = metrics::Registry::Global().Entries();
  for (const MetricRef& ref : refs) {
    if (IsTelemetryDerived(ref.name)) continue;  // never sample our own output
    if (options_.publish_trace_counters && ref.gauge != nullptr) {
      TNP_TRACE_COUNTER("telemetry", ref.name, ref.gauge->value());
    }
    if (options_.publish_percentiles && ref.histogram != nullptr &&
        EndsWith(ref.name, "/us")) {
      const metrics::HistogramSummary s = ref.histogram->Summarize();
      if (s.count == 0) continue;
      auto& registry = metrics::Registry::Global();
      registry.GetGauge("telemetry/" + ref.name + "/p50").Set(s.p50);
      registry.GetGauge("telemetry/" + ref.name + "/p95").Set(s.p95);
      registry.GetGauge("telemetry/" + ref.name + "/p99").Set(s.p99);
    }
  }
  std::vector<std::function<void()>> callbacks;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    callbacks = callbacks_;
  }
  for (const auto& callback : callbacks) callback();
  samples_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace support
}  // namespace tnp
