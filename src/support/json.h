// Minimal JSON document parser (RFC 8259 subset: no surrogate decoding —
// \uXXXX escapes keep their literal text) for the telemetry tooling:
// bench_compare diffs metric snapshots, the flight-recorder test re-reads
// dumps, and the serve tracing test reconstructs requests from the
// Chrome-trace export. Parsing only; serialization stays with the
// producers (Tracer::ExportChromeTrace, metrics::ExportJson).
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace tnp {
namespace support {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parse `text` as one JSON document. Throws tnp::Error(kParseError) on
  /// malformed input (offset included in the message).
  static JsonValue Parse(const std::string& text);
  /// Non-throwing variant; fills `error` (when given) on failure.
  static bool TryParse(const std::string& text, JsonValue* out,
                       std::string* error = nullptr);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_bool() const { return kind_ == Kind::kBool; }

  bool bool_value() const { return bool_; }
  double number() const { return number_; }
  const std::string& string() const { return string_; }
  const std::vector<JsonValue>& array() const { return array_; }
  const std::vector<std::pair<std::string, JsonValue>>& object() const {
    return object_;
  }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;
  /// Member's number/string with a default when absent or wrongly typed.
  double NumberOr(const std::string& key, double fallback) const;
  std::string StringOr(const std::string& key, std::string fallback) const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;  // document order

  friend class JsonParser;
};

}  // namespace support
}  // namespace tnp
