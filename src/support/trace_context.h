// Request-scoped trace context: the identity a request carries through the
// serving stack so every span it causes — admission, queue wait, micro-batch
// membership, session run, GraphExecutor/Neuron execution, kernel dispatch —
// lands in the Chrome-trace export tagged with the same `req_id` and a
// causal `parent` span id, and a single request's critical path can be
// reconstructed even when it was batched with others.
//
// The context is thread-local with *explicit* handoff: it never leaks across
// threads on its own. A producer captures the context into the unit of work
// (e.g. serve::QueuedRequest::trace, a pipeline packet) and the consumer
// re-installs it:
//
//   // admission (client thread)
//   TraceContext ctx = TraceContext::NewRequest();
//   entry.trace = ctx;                       // handoff travels with the work
//   TraceContextScope scope(ctx);            // spans here tag req_id/parent
//   TNP_TRACE_SCOPE("serve.request", "admit:" + model);
//
//   // dispatch (executor thread)
//   TraceContextScope scope(entry.trace);    // re-install: causal chain
//   TNP_TRACE_SCOPE("serve.request", "run:" + key);  // continues across the
//   lease->Run();                                    // thread boundary
//
// While a context is installed, every TraceScope (TNP_TRACE_SCOPE) mints a
// span id, records its parent, and re-installs itself as the current parent
// for the spans it encloses — so nesting is tracked per-thread with zero
// coordination. Instant events tag req_id/parent without minting ids.
// When no context is installed (req_id == 0) nothing is tagged and the
// tracing fast path is unchanged.
#pragma once

#include <cstdint>

namespace tnp {
namespace support {

struct TraceContext {
  /// Request identity; 0 means "no context" (spans are not tagged).
  std::uint64_t req_id = 0;
  /// Span id new child spans attach to (their `parent` arg). For a freshly
  /// minted request this is the request's root span id.
  std::uint64_t span_id = 0;

  bool active() const { return req_id != 0; }

  /// Mint a context for a brand-new request: fresh req_id plus a root span
  /// id that the request's top-level spans attach to.
  static TraceContext NewRequest();
};

/// Process-unique non-zero id (shared sequence for requests and spans).
std::uint64_t NewTraceId();

/// The calling thread's installed context ({0, 0} when none).
const TraceContext& CurrentTraceContext();

/// RAII installer: makes `ctx` the calling thread's current context and
/// restores the previous one on destruction. Scopes nest (LIFO per thread).
class TraceContextScope {
 public:
  explicit TraceContextScope(const TraceContext& ctx);
  ~TraceContextScope();
  TraceContextScope(const TraceContextScope&) = delete;
  TraceContextScope& operator=(const TraceContextScope&) = delete;

 private:
  TraceContext previous_;
};

namespace detail {
/// Mutable access for TraceScope's parent-chain bookkeeping (trace.cc).
TraceContext& MutableCurrentTraceContext();
}  // namespace detail

}  // namespace support
}  // namespace tnp
