#include "support/thread_pool.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "support/profiler.h"
#include "support/trace.h"

namespace tnp {
namespace support {

namespace {

// Worker identity: which pool (if any) owns the calling thread, and the
// thread's stable slot index inside it. Joiners and CurrentPool() route on
// these; spare workers get indices past num_threads().
thread_local ThreadPool* g_worker_pool = nullptr;
thread_local int g_worker_index = -1;

// ScopedPool override for non-worker threads (benches, tests).
thread_local ThreadPool* g_scoped_pool = nullptr;

// Configure() target for the lazily-created global pool.
std::atomic<int> g_configured_threads{0};
std::atomic<bool> g_global_created{false};

// Each chunk is at most 1/(kChunksPerThread * num_threads) of the range, so
// a late-arriving or stalled worker still leaves enough chunks to steal.
constexpr std::int64_t kChunksPerThread = 4;

int HardwareConcurrency() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 4 : static_cast<int>(hc);
}

int DefaultThreadCount() {
  const int hw = HardwareConcurrency();
  const int configured = g_configured_threads.load(std::memory_order_relaxed);
  if (configured > 0) return std::min(configured, 4 * hw);
  const int parsed = ParseThreadCountEnv(std::getenv("TNP_NUM_THREADS"), hw);
  return parsed > 0 ? parsed : hw;
}

// The ParallelFor chunk body: trivially copyable so it rides the inline task
// slot. The FunctionRef keeps pointing at the caller's lambda, which outlives
// the chunk because ParallelFor blocks in TaskGroup::Wait.
struct ChunkTask {
  FunctionRef<void(std::int64_t)> fn;
  std::int64_t lo = 0;
  std::int64_t hi = 0;
  TaskGroup* group = nullptr;

  void operator()() const {
    for (std::int64_t i = lo; i < hi && !group->failed(); ++i) fn(i);
  }
};
static_assert(std::is_trivially_copyable_v<ChunkTask>);
static_assert(sizeof(ChunkTask) <= detail::kInlineTaskBytes);

}  // namespace

int ParseThreadCountEnv(const char* text, int hardware) {
  if (text == nullptr || *text == '\0') return 0;
  errno = 0;
  char* end = nullptr;
  const long parsed = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE) {
    TNP_LOG(WARNING) << "ignoring malformed TNP_NUM_THREADS value \"" << text
                     << "\" (expected a positive integer)";
    return 0;
  }
  if (parsed <= 0) {
    TNP_LOG(WARNING) << "ignoring non-positive TNP_NUM_THREADS value " << parsed;
    return 0;
  }
  const long max_threads = 4L * hardware;
  if (parsed > max_threads) {
    TNP_LOG(WARNING) << "clamping TNP_NUM_THREADS=" << parsed << " to "
                     << max_threads << " (4x hardware concurrency of "
                     << hardware << ")";
    return static_cast<int>(max_threads);
  }
  return static_cast<int>(parsed);
}

// ------------------------------------------------------------------ TaskGroup

TaskGroup::TaskGroup(ThreadPool* pool)
    : pool_(pool != nullptr ? pool : &CurrentPool()) {}

TaskGroup::~TaskGroup() { WaitImpl(/*rethrow=*/false); }

void TaskGroup::Wait() { WaitImpl(/*rethrow=*/true); }

void TaskGroup::WaitImpl(bool rethrow) {
  for (;;) {
    detail::Task task;
    if (pool_->TakeGroupTask(this, &task)) {
      pool_->Execute(task, /*stolen=*/false);
      continue;
    }
    std::unique_lock<std::mutex> lock(mutex_);
    if (outstanding_ == 0) break;
    // Every completion notifies: a wakeup with tasks still outstanding means
    // "rescan the deques" — one of our tasks may be queued with all workers
    // busy elsewhere, and the joiner must run it itself to guarantee
    // progress.
    cv_.wait(lock);
    if (outstanding_ == 0) break;
  }
  if (rethrow) {
    std::exception_ptr error;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      error = error_;
      error_ = nullptr;
      failed_.store(false, std::memory_order_relaxed);
    }
    if (error) std::rethrow_exception(error);
  }
}

void TaskGroup::OnDone(std::exception_ptr error) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (error && !error_) {
    error_ = error;
    failed_.store(true, std::memory_order_relaxed);
  }
  --outstanding_;
  cv_.notify_all();
}

// ------------------------------------------------------------------ ThreadPool

ThreadPool::ThreadPool(int num_threads) : ThreadPool(num_threads, Options{}) {}

ThreadPool::ThreadPool(int num_threads, Options options)
    : options_(std::move(options)),
      target_(num_threads),
      max_workers_(num_threads + std::max(0, options_.max_spares)),
      deques_(static_cast<std::size_t>(num_threads +
                                       std::max(0, options_.max_spares))) {
  TNP_CHECK_GT(num_threads, 0);
  TNP_CHECK_GT(options_.queue_capacity, 0u);
  auto& registry = metrics::Registry::Global();
  executed_ = &registry.GetCounter(options_.name + "/executed");
  steals_ = &registry.GetCounter(options_.name + "/steals");
  overflow_count_ = &registry.GetCounter(options_.name + "/overflow");
  heap_tasks_ = &registry.GetCounter(options_.name + "/heap_tasks");
  chunks_ = &registry.GetCounter(options_.name + "/parallel_for/chunks");
  spares_spawned_ = &registry.GetCounter(options_.name + "/spares_spawned");
  blocked_gauge_ = &registry.GetGauge(options_.name + "/blocked");
  registry.GetGauge(options_.name + "/num_threads")
      .Set(static_cast<double>(target_));
  for (std::size_t i = 0; i < deques_.size(); ++i) {
    deques_[i].ring.resize(options_.queue_capacity);
    deques_[i].depth = &registry.GetGauge(options_.name + "/worker" +
                                          std::to_string(i) + "/depth");
  }
  std::lock_guard<std::mutex> lock(workers_mutex_);
  workers_.reserve(static_cast<std::size_t>(max_workers_));
  for (int i = 0; i < target_; ++i) SpawnWorkerLocked();
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::SpawnWorkerLocked() {
  const int index = num_workers_++;
  workers_.emplace_back([this, index] { WorkerLoop(index); });
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool(DefaultThreadCount());
  g_global_created.store(true, std::memory_order_relaxed);
  return pool;
}

bool ThreadPool::Configure(int num_threads) {
  if (num_threads <= 0) {
    TNP_LOG(WARNING) << "ThreadPool::Configure ignoring non-positive thread "
                     << "count " << num_threads;
    return false;
  }
  if (g_global_created.load(std::memory_order_relaxed)) {
    TNP_LOG(WARNING) << "ThreadPool::Configure(" << num_threads
                     << ") ignored: the global pool is already running with "
                     << Global().num_threads() << " threads";
    return false;
  }
  g_configured_threads.store(num_threads, std::memory_order_relaxed);
  return true;
}

int ThreadPool::CurrentWorkerIndex() { return g_worker_index; }

ThreadPool& CurrentPool() {
  if (g_worker_pool != nullptr) return *g_worker_pool;
  if (g_scoped_pool != nullptr) return *g_scoped_pool;
  return ThreadPool::Global();
}

ScopedPool::ScopedPool(ThreadPool& pool) : previous_(g_scoped_pool) {
  g_scoped_pool = &pool;
}

ScopedPool::~ScopedPool() { g_scoped_pool = previous_; }

bool ThreadPool::TryEnqueue(const detail::Task& task) {
  // Workers (their own deque, LIFO end) keep nested work cache-hot; external
  // threads scatter round-robin across the primary deques so every worker
  // has something local to pop before it must steal.
  std::size_t target_deque;
  if (g_worker_pool == this && g_worker_index >= 0) {
    target_deque = static_cast<std::size_t>(g_worker_index);
  } else {
    target_deque = next_victim_.fetch_add(1, std::memory_order_relaxed) %
                   static_cast<std::size_t>(target_);
  }
  Deque& dq = deques_[target_deque];
  {
    std::lock_guard<std::mutex> lock(dq.mutex);
    // The stopping check lives under the deque mutex: Shutdown() sets the
    // flag and then locks every deque while draining, so a push either
    // observes stopping here or lands before the drain sweep — no task is
    // ever silently dropped.
    if (stopping_.load(std::memory_order_acquire)) return false;
    if (dq.count < dq.ring.size()) {
      dq.ring[(dq.head + dq.count) % dq.ring.size()] = task;
      ++dq.count;
      dq.depth->Set(static_cast<double>(dq.count));
      pending_.fetch_add(1, std::memory_order_release);
      WakeOne();
      return true;
    }
  }
  // Ring full: spill to the allocating overflow list rather than blocking.
  {
    std::lock_guard<std::mutex> lock(overflow_mutex_);
    if (stopping_.load(std::memory_order_acquire)) return false;
    overflow_.push_back(task);
  }
  overflow_count_->Increment();
  pending_.fetch_add(1, std::memory_order_release);
  WakeOne();
  return true;
}

void ThreadPool::WakeOne() {
  // sleepers_ is only written under sleep_mutex_; a racy read here can only
  // miss a *just-started* sleeper, which re-checks pending_ before waiting.
  {
    std::lock_guard<std::mutex> lock(sleep_mutex_);
    if (sleepers_ == 0) return;
  }
  sleep_cv_.notify_one();
}

bool ThreadPool::FindTask(int worker_index, detail::Task* out, bool* stolen) {
  *stolen = false;
  // 1. Own deque, LIFO end: most recently pushed (nested, cache-hot) first.
  {
    Deque& dq = deques_[static_cast<std::size_t>(worker_index)];
    std::lock_guard<std::mutex> lock(dq.mutex);
    if (dq.count > 0) {
      --dq.count;
      *out = dq.ring[(dq.head + dq.count) % dq.ring.size()];
      dq.depth->Set(static_cast<double>(dq.count));
      pending_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  // 2. Overflow spill.
  {
    std::lock_guard<std::mutex> lock(overflow_mutex_);
    if (!overflow_.empty()) {
      *out = overflow_.front();
      overflow_.pop_front();
      pending_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  // 3. Steal from the FIFO end of another deque: the oldest task is the
  // coarsest-grained work and the least likely to be cache-hot anywhere.
  // The scan publishes as "stealing" so the sampling profiler can tell
  // steal pressure from genuine idleness.
  profiler::StateScope steal_state(profiler::ThreadState::kStealing);
  const std::size_t n = deques_.size();
  for (std::size_t offset = 1; offset < n; ++offset) {
    Deque& victim =
        deques_[(static_cast<std::size_t>(worker_index) + offset) % n];
    std::lock_guard<std::mutex> lock(victim.mutex);
    if (victim.count > 0) {
      *out = victim.ring[victim.head];
      victim.head = (victim.head + 1) % victim.ring.size();
      --victim.count;
      victim.depth->Set(static_cast<double>(victim.count));
      pending_.fetch_sub(1, std::memory_order_relaxed);
      *stolen = true;
      return true;
    }
  }
  return false;
}

bool ThreadPool::TakeGroupTask(TaskGroup* group, detail::Task* out) {
  // Joiner help-execution: extract a task *of this group only*. Scans each
  // deque from the LIFO end (a joining worker's own nested chunks sit
  // there). Restricting to the group is what keeps join deadlock-free — a
  // foreign task could block on a lock the joiner holds.
  const std::size_t n = deques_.size();
  const std::size_t start =
      g_worker_index >= 0 ? static_cast<std::size_t>(g_worker_index) : 0;
  for (std::size_t offset = 0; offset < n; ++offset) {
    Deque& dq = deques_[(start + offset) % n];
    std::lock_guard<std::mutex> lock(dq.mutex);
    for (std::size_t k = 0; k < dq.count; ++k) {
      const std::size_t idx =
          (dq.head + dq.count - 1 - k) % dq.ring.size();
      if (dq.ring[idx].group != group) continue;
      *out = dq.ring[idx];
      // Fill the hole with the LIFO-end task and shrink; chunk execution
      // order within a group carries no ordering contract.
      dq.ring[idx] = dq.ring[(dq.head + dq.count - 1) % dq.ring.size()];
      --dq.count;
      dq.depth->Set(static_cast<double>(dq.count));
      pending_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  {
    std::lock_guard<std::mutex> lock(overflow_mutex_);
    for (auto it = overflow_.begin(); it != overflow_.end(); ++it) {
      if (it->group != group) continue;
      *out = *it;
      overflow_.erase(it);
      pending_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void ThreadPool::Execute(detail::Task& task, bool stolen) {
  executed_->Increment();
  if (stolen) steals_->Increment();
  // Publish "running" for the sampler (restored to the caller's state on
  // exit — idle for a worker between tasks, running for a help-executing
  // joiner already inside a task).
  profiler::StateScope run_state(profiler::ThreadState::kRunning);
  std::exception_ptr error;
  {
    // The span must be fully recorded before OnDone: a joiner observing
    // completion may immediately export the trace, and any span the task
    // emitted that is parented to this one must find it there.
    TraceContextScope context(task.trace);
    TNP_TRACE_SCOPE("pool", options_.name + ":task",
                    TraceArg("worker", g_worker_index),
                    TraceArg("stolen", stolen));
    try {
      task.invoke(task.storage);
    } catch (...) {
      error = std::current_exception();
    }
  }
  if (task.group != nullptr) {
    task.group->OnDone(error);
  } else if (error) {
    try {
      std::rethrow_exception(error);
    } catch (const std::exception& e) {
      TNP_LOG(ERROR) << "detached pool task threw: " << e.what();
    } catch (...) {
      TNP_LOG(ERROR) << "detached pool task threw a non-std exception";
    }
  }
}

void ThreadPool::WorkerLoop(int index) {
  g_worker_pool = this;
  g_worker_index = index;
  // Profiler slot under the shared "pool" root (a literal, never this
  // pool's name: the fold table outlives temporary pools). Released
  // automatically when the worker thread exits.
  profiler::RegisterThread("pool");
  for (;;) {
    detail::Task task;
    bool stolen = false;
    if (FindTask(index, &task, &stolen)) {
      Execute(task, stolen);
      continue;
    }
    std::unique_lock<std::mutex> lock(sleep_mutex_);
    if (pending_.load(std::memory_order_acquire) > 0) continue;
    if (stopping_.load(std::memory_order_acquire)) return;
    ++sleepers_;
    sleep_cv_.wait(lock, [this] {
      return pending_.load(std::memory_order_acquire) > 0 ||
             stopping_.load(std::memory_order_acquire);
    });
    --sleepers_;
  }
}

void ThreadPool::OnBlockingEnter() {
  const int blocked = blocked_.fetch_add(1, std::memory_order_relaxed) + 1;
  blocked_gauge_->Set(static_cast<double>(blocked));
  profiler::SetThreadState(profiler::ThreadState::kBlocked);
  std::lock_guard<std::mutex> lock(workers_mutex_);
  if (stopping_.load(std::memory_order_acquire)) return;
  // Back-fill: keep `target_` workers runnable while tasks park, up to the
  // spare budget. Spares are never retired — they idle on the sleep cv and
  // are joined at shutdown.
  if (num_workers_ - blocked_.load(std::memory_order_relaxed) < target_ &&
      num_workers_ < max_workers_) {
    SpawnWorkerLocked();
    spares_spawned_->Increment();
  }
}

void ThreadPool::OnBlockingExit() {
  const int blocked = blocked_.fetch_sub(1, std::memory_order_relaxed) - 1;
  blocked_gauge_->Set(static_cast<double>(blocked));
  // Blocking scopes only open inside running tasks, so "running" is the
  // state being returned to.
  profiler::SetThreadState(profiler::ThreadState::kRunning);
}

ThreadPool::BlockingScope::BlockingScope() {
  if (g_worker_pool != nullptr) {
    pool_ = g_worker_pool;
    pool_->OnBlockingEnter();
  }
}

ThreadPool::BlockingScope::~BlockingScope() {
  if (pool_ != nullptr) pool_->OnBlockingExit();
}

ThreadPool::BlockingScope& ThreadPool::BlockingScope::operator=(
    BlockingScope&& other) noexcept {
  if (this != &other) {
    if (pool_ != nullptr) pool_->OnBlockingExit();
    pool_ = other.pool_;
    other.pool_ = nullptr;
  }
  return *this;
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  // Control-plane path: type-erased callable + future, both heap-allocated.
  // The inline slot carries only the pointer, so the data plane is shared
  // with Post; the allocation is counted to keep steady-state paths honest.
  heap_tasks_->Increment();
  auto* packaged = new std::packaged_task<void()>(std::move(task));
  std::future<void> future = packaged->get_future();
  struct SubmitTask {
    std::packaged_task<void()>* packaged;
    void operator()() const {
      (*packaged)();
      delete packaged;
    }
  };
  detail::Task slot;
  slot.invoke = +[](void* storage) { (*static_cast<SubmitTask*>(storage))(); };
  slot.group = nullptr;
  slot.trace = CurrentTraceContext();
  ::new (static_cast<void*>(slot.storage)) SubmitTask{packaged};
  if (!TryEnqueue(slot)) {
    delete packaged;
    TNP_THROW(kRuntimeError) << "ThreadPool::Submit after shutdown";
  }
  return future;
}

void ThreadPool::ParallelFor(std::int64_t begin, std::int64_t end,
                             FunctionRef<void(std::int64_t)> fn,
                             std::int64_t grain_size) {
  if (begin >= end) return;
  const std::int64_t range = end - begin;
  if (target_ <= 1 || stopping_.load(std::memory_order_acquire)) {
    for (std::int64_t i = begin; i < end; ++i) fn(i);
    return;
  }
  // Auto grain: split into ~kChunksPerThread chunks per worker so stolen
  // work stays coarse; an explicit grain_size is a minimum-work floor.
  const std::int64_t max_chunks =
      kChunksPerThread * static_cast<std::int64_t>(target_);
  std::int64_t grain = grain_size > 0
                           ? grain_size
                           : std::max<std::int64_t>(1, (range + max_chunks - 1) /
                                                           max_chunks);
  const std::int64_t chunks =
      std::min<std::int64_t>((range + grain - 1) / grain, max_chunks);
  if (chunks <= 1) {
    for (std::int64_t i = begin; i < end; ++i) fn(i);
    return;
  }
  const std::int64_t chunk = (range + chunks - 1) / chunks;
  TaskGroup group(this);
  std::int64_t posted = 0;
  for (std::int64_t lo = begin; lo < end; lo += chunk) {
    const std::int64_t hi = std::min(end, lo + chunk);
    group.Run(ChunkTask{fn, lo, hi, &group});
    ++posted;
  }
  chunks_->Increment(posted);
  group.Wait();
}

void ThreadPool::Shutdown() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true,
                                         std::memory_order_acq_rel)) {
    return;  // idempotent
  }
  sleep_cv_.notify_all();
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(workers_mutex_);
    workers.swap(workers_);
  }
  // Workers drain every queued task before exiting (they only return when
  // stopping && nothing found), so after the joins the deques can hold at
  // most pushes that raced the stopping flag — run those here so shutdown
  // is deterministic: everything accepted gets executed.
  for (auto& worker : workers) worker.join();
  for (std::size_t i = 0; i < deques_.size(); ++i) {
    for (;;) {
      detail::Task task;
      bool found = false;
      {
        Deque& dq = deques_[i];
        std::lock_guard<std::mutex> lock(dq.mutex);
        if (dq.count > 0) {
          --dq.count;
          task = dq.ring[(dq.head + dq.count) % dq.ring.size()];
          dq.depth->Set(static_cast<double>(dq.count));
          pending_.fetch_sub(1, std::memory_order_relaxed);
          found = true;
        }
      }
      if (!found) break;
      Execute(task, /*stolen=*/false);
    }
  }
  for (;;) {
    detail::Task task;
    bool found = false;
    {
      std::lock_guard<std::mutex> lock(overflow_mutex_);
      if (!overflow_.empty()) {
        task = overflow_.front();
        overflow_.pop_front();
        pending_.fetch_sub(1, std::memory_order_relaxed);
        found = true;
      }
    }
    if (!found) break;
    Execute(task, /*stolen=*/false);
  }
}

}  // namespace support
}  // namespace tnp
