#include "support/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>

#include "support/logging.h"

namespace tnp {
namespace support {

namespace {

// Set while a thread is executing pool work; nested ParallelFor calls from
// inside a worker run inline to avoid deadlocking on a saturated pool.
thread_local bool g_in_worker = false;

int DefaultThreadCount() {
  if (const char* env = std::getenv("TNP_NUM_THREADS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 4 : static_cast<int>(hc);
}

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  TNP_CHECK_GT(num_threads, 0);
  workers_.reserve(static_cast<std::size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool(DefaultThreadCount());
  return pool;
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  auto packaged = std::make_shared<std::packaged_task<void()>>(std::move(task));
  std::future<void> future = packaged->get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    TNP_CHECK(!stopping_) << "Submit after shutdown";
    tasks_.emplace_back([packaged] { (*packaged)(); });
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::WorkerLoop() {
  g_in_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(std::int64_t begin, std::int64_t end,
                             const std::function<void(std::int64_t)>& fn,
                             std::int64_t grain_size) {
  if (begin >= end) return;
  if (g_in_worker) {
    for (std::int64_t i = begin; i < end; ++i) fn(i);
    return;
  }
  const std::int64_t range = end - begin;
  const std::int64_t max_chunks =
      std::min<std::int64_t>(num_threads(), std::max<std::int64_t>(1, range / std::max<std::int64_t>(1, grain_size)));
  if (max_chunks <= 1) {
    for (std::int64_t i = begin; i < end; ++i) fn(i);
    return;
  }

  const std::int64_t chunk = (range + max_chunks - 1) / max_chunks;
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::vector<std::future<void>> futures;
  futures.reserve(static_cast<std::size_t>(max_chunks));

  for (std::int64_t c = 0; c < max_chunks; ++c) {
    const std::int64_t lo = begin + c * chunk;
    const std::int64_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    futures.push_back(Submit([&, lo, hi] {
      try {
        for (std::int64_t i = lo; i < hi && !failed.load(std::memory_order_relaxed); ++i) {
          fn(i);
        }
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!failed.exchange(true)) first_error = std::current_exception();
      }
    }));
  }
  for (auto& future : futures) future.wait();
  if (failed && first_error) std::rethrow_exception(first_error);
}

}  // namespace support
}  // namespace tnp
