// Always-on sampling profiler over the work-stealing pool.
//
// Two halves, both alloc-free in steady state:
//
//   * Publication side (the threads being profiled): every pool worker owns
//     one fixed Slot in a static table and publishes what it is doing as
//     plain atomic stores — a small stack of label frames (LabelScope, pushed
//     by kernels, serve pumps, pipeline stages) plus a coarse state (running
//     / stealing / idle / blocked-in-BlockingScope, maintained by hooks in
//     thread_pool.cc). Labels must be string literals (static storage): the
//     sampler keeps the pointers, never copies the text.
//   * Sampling side: Profiler::SampleOnce() — ridden by TelemetrySampler on
//     its cadence — walks the slot table, reads each thread's frame stack,
//     and folds it into a fixed open-addressing table of stack counts. No
//     locks are taken against the publishing threads and no heap is touched:
//     a full table drops samples into `prof/fold_dropped` instead of
//     growing.
//
// The folded counts export as collapsed-stack text (`ExportFolded`, the
// flamegraph.pl / speedscope "folded" format: "root;frame;frame N" per
// line) and as deterministic-schema JSON (`ExportJson`, served at
// /profilez). Reads are intentionally racy (a sampled stack may mix frames
// from adjacent tasks); every field is a std::atomic so the races are
// benign and TSan-clean — standard practice for sampling profilers.
#pragma once

#include <cstdint>
#include <string>

namespace tnp {
namespace support {
namespace profiler {

/// Coarse activity of a registered thread, sampled alongside its stack.
enum class ThreadState : int {
  kIdle = 0,      ///< worker waiting for work (between FindTask and sleep)
  kRunning = 1,   ///< executing a task
  kStealing = 2,  ///< scanning other deques for work
  kBlocked = 3,   ///< parked inside a ThreadPool::BlockingScope
};

/// Frames a thread can publish; deeper nesting still runs, the extra frames
/// are just not visible to the sampler.
constexpr int kMaxDepth = 8;
/// Fixed slot table size — the most threads observable at once. Slots are
/// recycled when threads exit.
constexpr int kMaxThreads = 128;

/// Claim this thread's slot under `root` (the first folded-stack frame,
/// e.g. "pool", "thread"). `root` MUST be a string literal. Idempotent; the
/// slot is released automatically when the thread exits. No-op (and
/// counted in `prof/slot_overflow`) when the table is full.
void RegisterThread(const char* root);

/// True when the calling thread holds a slot.
bool ThreadRegistered();

/// Publish the calling thread's coarse state; no-op when unregistered.
void SetThreadState(ThreadState state);

/// RAII state change: publishes `state`, restores the previous state on
/// destruction. No-op on unregistered threads.
class StateScope {
 public:
  explicit StateScope(ThreadState state);
  ~StateScope();
  StateScope(const StateScope&) = delete;
  StateScope& operator=(const StateScope&) = delete;

 private:
  ThreadState previous_;
  bool active_;
};

/// RAII label frame: pushes `label` onto the calling thread's published
/// stack. Lazily registers unregistered threads under root "thread" so
/// kernels running on a bench main thread still show up. `label` MUST be a
/// string literal (the sampler retains the pointer).
class LabelScope {
 public:
  explicit LabelScope(const char* label);
  ~LabelScope();
  LabelScope(const LabelScope&) = delete;
  LabelScope& operator=(const LabelScope&) = delete;
};

struct ProfileStats {
  std::uint64_t samples = 0;        ///< completed SampleOnce passes
  std::uint64_t thread_samples = 0; ///< per-thread observations folded in
  std::uint64_t fold_dropped = 0;   ///< observations lost to a full table
  std::uint64_t slot_overflow = 0;  ///< threads that found no free slot
  std::uint64_t distinct_stacks = 0;
  std::int64_t alloc_events = 0;    ///< heap allocations on the sample path
                                    ///< (0 by design; bench-gated)
};

class Profiler {
 public:
  /// Process-wide instance (the one TelemetrySampler drives).
  static Profiler& Global();

  /// One sampling pass: snapshot every registered thread's stack + state
  /// into the fold table. Alloc-free; safe from any single thread at a time
  /// (the telemetry cadence). Concurrent with publication by design.
  void SampleOnce();

  /// Clear folded counts and pass counters (slots stay registered).
  void Reset();

  ProfileStats stats() const;

  /// Collapsed-stack text: "root;frame;...;frame count\n" per distinct
  /// stack, sorted; idle/stealing/blocked states render as a trailing
  /// pseudo-frame ("(idle)", "(stealing)", "(blocked)"). Feed directly to
  /// flamegraph.pl or speedscope.
  std::string ExportFolded() const;

  /// Deterministic-schema JSON document (served at /profilez):
  ///   {"samples":N,"thread_samples":N,"fold_dropped":N,"slot_overflow":N,
  ///    "alloc_events":N,"stacks":[{"stack":"a;b;c","count":N}, ...]}
  /// "stacks" is sorted by stack string; keys always present.
  std::string ExportJson() const;

 private:
  Profiler() = default;
};

}  // namespace profiler
}  // namespace support
}  // namespace tnp
