#include "support/slo.h"

#include <algorithm>

#include "support/logging.h"
#include "support/metrics.h"
#include "support/trace.h"

namespace tnp {
namespace support {
namespace slo {

const char* AlertStateName(AlertState state) {
  switch (state) {
    case AlertState::kOk: return "ok";
    case AlertState::kWarning: return "warning";
    case AlertState::kCritical: return "critical";
  }
  return "unknown";
}

SloTracker::SloTracker(SloTrackerOptions options, timeseries::Collector* collector)
    : options_(options),
      collector_(collector != nullptr ? collector : &timeseries::Collector::Global()) {}

void SloTracker::AddObjective(Objective objective) {
  TNP_CHECK(!objective.name.empty()) << "SLO objective needs a name";
  TNP_CHECK(objective.target > 0.0 && objective.target < 1.0)
      << "SLO target must be in (0, 1), got " << objective.target;
  TNP_CHECK(objective.short_window_s > 0 &&
            objective.long_window_s >= objective.short_window_s)
      << "SLO windows must satisfy 0 < short <= long";
  if (!objective.histogram.empty()) {
    collector_->TrackHistogram(objective.histogram);
  } else {
    TNP_CHECK(!objective.bad_counter.empty() && !objective.total_counter.empty())
        << "SLO objective '" << objective.name
        << "' needs either a histogram or a bad/total counter pair";
    collector_->TrackCounter(objective.bad_counter);
    collector_->TrackCounter(objective.total_counter);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  Tracked tracked;
  tracked.objective = std::move(objective);
  objectives_.push_back(std::move(tracked));
}

std::size_t SloTracker::num_objectives() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return objectives_.size();
}

double SloTracker::ErrorFraction(const Tracked& tracked, int window_s) const {
  const Objective& objective = tracked.objective;
  if (!objective.histogram.empty()) {
    const timeseries::LatencySeries* series =
        collector_->FindHistogram(objective.histogram);
    if (series == nullptr) return 0.0;
    return 1.0 - series->FractionBelow(objective.threshold_us, window_s);
  }
  const timeseries::RateSeries* bad = collector_->FindCounter(objective.bad_counter);
  const timeseries::RateSeries* total = collector_->FindCounter(objective.total_counter);
  if (bad == nullptr || total == nullptr) return 0.0;
  const std::int64_t total_events = total->DeltaOver(window_s);
  if (total_events <= 0) return 0.0;  // no traffic = no errors
  const std::int64_t bad_events = std::min(bad->DeltaOver(window_s), total_events);
  return static_cast<double>(bad_events) / static_cast<double>(total_events);
}

std::vector<ObjectiveStatus> SloTracker::Evaluate() {
  auto& registry = metrics::Registry::Global();
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<ObjectiveStatus> statuses;
  statuses.reserve(objectives_.size());
  double worst_burn = 0.0;
  AlertState worst_alert = AlertState::kOk;

  for (Tracked& tracked : objectives_) {
    const Objective& objective = tracked.objective;
    const double budget = 1.0 - objective.target;

    ObjectiveStatus status;
    status.name = objective.name;
    status.burn_short = ErrorFraction(tracked, objective.short_window_s) / budget;
    status.burn_long = ErrorFraction(tracked, objective.long_window_s) / budget;

    // Multiwindow AND: both windows must burn for the alert to fire, and
    // both must cool for it to clear.
    const double confirmed = status.effective_burn();
    if (confirmed >= options_.critical_burn) {
      status.alert = AlertState::kCritical;
    } else if (confirmed >= options_.warning_burn) {
      status.alert = AlertState::kWarning;
    } else {
      status.alert = AlertState::kOk;
    }

    if (status.alert != tracked.alert) {
      TNP_TRACE_INSTANT("health", "slo:" + objective.name,
                        TraceArg("from", AlertStateName(tracked.alert)),
                        TraceArg("to", AlertStateName(status.alert)),
                        TraceArg("burn_short", status.burn_short),
                        TraceArg("burn_long", status.burn_long));
      TNP_LOG(INFO) << "slo alert transition" << KV("objective", objective.name)
                    << KV("from", AlertStateName(tracked.alert))
                    << KV("to", AlertStateName(status.alert))
                    << KV("burn_short", status.burn_short)
                    << KV("burn_long", status.burn_long);
      registry.GetCounter("health/slo/" + objective.name + "/transitions").Increment();
      tracked.alert = status.alert;
    }
    registry.GetGauge("health/slo/" + objective.name + "/burn_short")
        .Set(status.burn_short);
    registry.GetGauge("health/slo/" + objective.name + "/burn_long")
        .Set(status.burn_long);
    registry.GetGauge("health/slo/" + objective.name + "/alert")
        .Set(static_cast<double>(status.alert));

    worst_burn = std::max(worst_burn, confirmed);
    worst_alert = std::max(worst_alert, status.alert);
    statuses.push_back(std::move(status));
  }

  worst_burn_ = worst_burn;
  worst_alert_ = worst_alert;
  registry.GetGauge("health/slo/worst_burn").Set(worst_burn);
  return statuses;
}

double SloTracker::worst_burn() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return worst_burn_;
}

AlertState SloTracker::worst_alert() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return worst_alert_;
}

}  // namespace slo
}  // namespace support
}  // namespace tnp
