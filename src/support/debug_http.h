// Minimal blocking HTTP/1.0 debug listener — the scrape surface an external
// prober (Prometheus, a router health-check, curl) uses to read this
// process's live state.
//
// Deliberately tiny: GET only, exact-path routing, one response per
// connection ("Connection: close"), bound to 127.0.0.1. The listener runs
// on its own thread and hands each accepted connection to the shared
// support::ThreadPool, so a slow client never blocks accept. Stop() (and
// the destructor) closes the listen socket, joins the listener thread and
// waits for in-flight connections — no leaked sockets or threads under
// ASan/TSan.
//
//   DebugHttpServer http;
//   RegisterSupportEndpoints(http);        // /metrics /timeseries /flightrecord
//   monitor.RegisterWith(http);            // /healthz (serve/health.h)
//   http.Start(8080);                      // throws kRuntimeError if in use
//   ... curl http://127.0.0.1:8080/healthz ...
//   http.Stop();
//
// HttpGet() is the matching loopback client, used by tests and by the
// examples' end-of-run self-capture.
#pragma once

#include <functional>
#include <future>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace tnp {
namespace support {

struct HttpRequest {
  std::string method;
  std::string path;   ///< without the query string
  std::string query;  ///< raw text after '?', possibly empty
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

class DebugHttpServer {
 public:
  DebugHttpServer() = default;
  ~DebugHttpServer();  ///< Stop()s if running.

  DebugHttpServer(const DebugHttpServer&) = delete;
  DebugHttpServer& operator=(const DebugHttpServer&) = delete;

  /// Route an exact path ("/healthz") to `handler`. Register before
  /// Start(); later registrations replace earlier ones for the same path.
  void Handle(const std::string& path, HttpHandler handler);

  /// Bind 127.0.0.1:`port` (0 = pick an ephemeral port, see port()) and
  /// start accepting. Throws tnp::Error(kRuntimeError) when the port is
  /// already in use or the socket cannot be created.
  void Start(int port);

  /// Close the listen socket, join the listener thread, wait for in-flight
  /// connection handlers. Idempotent.
  void Stop();

  bool running() const;
  /// The bound port (after Start; meaningful with Start(0)).
  int port() const;

 private:
  void ListenLoop();
  void ServeConnection(int fd);
  HttpResponse Dispatch(const HttpRequest& request) const;

  mutable std::mutex mutex_;
  std::map<std::string, HttpHandler> handlers_;
  std::thread listener_;
  std::vector<std::future<void>> connections_;
  int listen_fd_ = -1;
  int port_ = 0;
  bool running_ = false;
};

/// Register the process-wide observability endpoints:
///   /metrics      Prometheus text exposition of the metrics registry
///   /timeseries   JSON window stats from timeseries::Collector::Global()
///                 (?window=N picks the window seconds, default 10 and 60)
///   /flightrecord on-demand flight-recorder document (trace tail + metrics
///                 + timeseries + profile + registered aux sections)
///   /profilez     sampling-profiler folded stacks (JSON; ?format=folded
///                 returns collapsed-stack text for flamegraph.pl)
/// The serve layer adds /healthz (HealthMonitor::RegisterWith) and
/// /attribution (attribution::RegisterAttributionEndpoints).
void RegisterSupportEndpoints(DebugHttpServer& server);

struct HttpResult {
  int status = 0;  ///< 0 = transport failure, see `error`
  std::string content_type;
  std::string body;
  std::string error;
  bool ok() const { return status >= 200 && status < 300; }
};

/// Blocking loopback GET against 127.0.0.1:`port` (HTTP/1.0, reads to EOF).
/// Transport failures return status 0 with `error` set — no exceptions, so
/// probe loops stay simple.
HttpResult HttpGet(int port, const std::string& path);

}  // namespace support
}  // namespace tnp
