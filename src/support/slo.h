// SLO objectives and multi-window burn-rate alerting over the windowed
// time-series surface (timeseries.h).
//
// An Objective declares what fraction of events must be good:
//
//   - latency form: "target of the samples in <histogram> complete under
//     threshold_us" (e.g. "99% of admitted p2 requests finish < 20ms"),
//     evaluated from a tracked LatencySeries' windowed CDF;
//   - availability form: "at most (1 - target) of <total_counter> events are
//     <bad_counter> events" (e.g. sheds per submission), evaluated from two
//     tracked RateSeries.
//
// Burn rate is SRE error-budget math: with budget = 1 - target, burn =
// observed_error_fraction / budget. Burn 1.0 spends the budget exactly at
// the sustainable rate; burn 10 exhausts a 30-day budget in 3 days. Each
// objective is evaluated over a paired short/long window and alerts only
// when BOTH burn above the threshold (multiwindow AND): the long window
// keeps one spike from paging, the short window clears the alert quickly
// once the bleeding stops. The effective burn of an objective is therefore
// min(short, long).
//
// Evaluate() publishes "health/slo/<name>/burn_short|burn_long|alert"
// gauges and emits a trace instant event on every alert transition, so the
// alert history lands in trace exports and flight-recorder dumps.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "support/timeseries.h"

namespace tnp {
namespace support {
namespace slo {

struct Objective {
  std::string name;     ///< gauge/trace key, e.g. "p2-latency", "availability"
  double target = 0.99; ///< required good fraction, in (0, 1)

  /// Latency form (used when `histogram` is non-empty): good = sample in
  /// the tracked "/us" histogram strictly below threshold_us.
  std::string histogram;
  double threshold_us = 0.0;

  /// Availability form (used when `histogram` is empty): good = total
  /// event that is not a bad event.
  std::string bad_counter;
  std::string total_counter;

  /// Paired evaluation windows, seconds (SRE-style short/long).
  int short_window_s = 5;
  int long_window_s = 60;
};

enum class AlertState { kOk = 0, kWarning = 1, kCritical = 2 };
const char* AlertStateName(AlertState state);

struct ObjectiveStatus {
  std::string name;
  double burn_short = 0.0;
  double burn_long = 0.0;
  AlertState alert = AlertState::kOk;
  /// min(burn_short, burn_long): the rate at which this objective is
  /// *confirmed* to be burning budget.
  double effective_burn() const {
    return burn_short < burn_long ? burn_short : burn_long;
  }
};

struct SloTrackerOptions {
  /// Both windows burning >= warning_burn -> kWarning; >= critical_burn ->
  /// kCritical. 1.0 = budget spent exactly at the sustainable rate.
  double warning_burn = 1.0;
  double critical_burn = 6.0;
};

class SloTracker {
 public:
  /// Series are tracked against `collector` (nullptr = the global one) as
  /// objectives are added.
  explicit SloTracker(SloTrackerOptions options = {},
                      timeseries::Collector* collector = nullptr);

  void AddObjective(Objective objective);
  std::size_t num_objectives() const;

  /// Evaluate every objective against the collector's current windows.
  /// Publishes health/slo/* gauges, emits trace instants + a structured log
  /// line on alert transitions, and returns the per-objective statuses.
  std::vector<ObjectiveStatus> Evaluate();

  /// Worst effective burn across objectives at the last Evaluate().
  double worst_burn() const;
  /// Worst alert state across objectives at the last Evaluate().
  AlertState worst_alert() const;

 private:
  struct Tracked {
    Objective objective;
    AlertState alert = AlertState::kOk;
  };

  double ErrorFraction(const Tracked& tracked, int window_s) const;

  SloTrackerOptions options_;
  timeseries::Collector* collector_;
  mutable std::mutex mutex_;
  std::vector<Tracked> objectives_;
  double worst_burn_ = 0.0;
  AlertState worst_alert_ = AlertState::kOk;
};

}  // namespace slo
}  // namespace support
}  // namespace tnp
