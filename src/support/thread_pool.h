// Fixed-size worker pool with a blocking parallel_for.
//
// This is the single parallel substrate of the repository: CPU kernels use
// ParallelFor for data parallelism, and the pipeline executor (core/) uses
// Submit for task parallelism. The pool is created lazily and sized to the
// hardware concurrency (overridable via TNP_NUM_THREADS).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace tnp {
namespace support {

class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Process-wide pool, sized from TNP_NUM_THREADS or hardware_concurrency.
  static ThreadPool& Global();

  int num_threads() const noexcept { return static_cast<int>(workers_.size()); }

  /// Enqueue an arbitrary task; the returned future completes when it ran.
  std::future<void> Submit(std::function<void()> task);

  /// Run fn(i) for i in [begin, end), splitting the range into roughly
  /// `num_threads` contiguous chunks. Blocks until all chunks finish.
  /// Exceptions thrown by fn are rethrown (first one wins) on the caller.
  /// Small ranges (or grain_size >= range) run inline with zero overhead.
  void ParallelFor(std::int64_t begin, std::int64_t end,
                   const std::function<void(std::int64_t)>& fn,
                   std::int64_t grain_size = 1);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Convenience wrapper over the global pool.
inline void ParallelFor(std::int64_t begin, std::int64_t end,
                        const std::function<void(std::int64_t)>& fn,
                        std::int64_t grain_size = 1) {
  ThreadPool::Global().ParallelFor(begin, end, fn, grain_size);
}

}  // namespace support
}  // namespace tnp
