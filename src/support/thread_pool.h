// Work-stealing worker pool — the single parallel substrate of the
// repository.
//
// Every layer schedules onto this pool: CPU kernels fan data-parallel chunks
// out through ParallelFor, the pipeline executor (core/) runs its stages as
// pool tasks, and the serve executors (serve/) dispatch batches as task
// chains. Design:
//
//   * Per-worker bounded deques of fixed task slots: the owning worker pushes
//     and pops at the LIFO end (cache-hot nested work first), idle workers
//     steal from the FIFO end (oldest, coarsest work). The steady-state
//     submit/steal path performs zero heap allocations — tasks are
//     trivially-copyable objects stored inline in preallocated slots
//     (`pool/overflow` and `pool/heap_tasks` count the exceptions).
//   * TaskGroup join with help-execution: a thread waiting on a group
//     executes that group's queued tasks itself instead of sleeping, so
//     nested ParallelFor from inside a worker genuinely parallelizes and
//     always completes even on a saturated pool (the joiner can run every
//     chunk alone). Joiners only ever execute tasks of the group they are
//     waiting on — never foreign tasks that might block on resources the
//     joiner holds — which is what makes help-first join deadlock-free.
//   * Blocking-aware liveness: a task that parks its worker (holding an
//     exclusive device resource, socket I/O, a batch straggler window)
//     declares it with ThreadPool::BlockingScope; the pool spawns a bounded
//     number of spare workers so runnable tasks keep `num_threads` cores
//     busy. core::ResourceLocks::Acquire enters a BlockingScope for the
//     lifetime of the hold — that is how CPU-affinity is negotiated between
//     kernel workers and the serve/pipeline layers' exclusive-device
//     guarantees.
//   * Deterministic shutdown: Shutdown() stops admission (Submit/Post throw
//     cleanly), drains every already-queued task, and joins all workers.
//
// The pool is created lazily and sized from TNP_NUM_THREADS (strictly
// parsed) or the hardware concurrency; Configure()/--threads=N override it
// before first use.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <new>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "support/logging.h"
#include "support/metrics.h"
#include "support/trace_context.h"

namespace tnp {
namespace support {

/// Non-owning reference to a callable — what ParallelFor takes instead of
/// `const std::function&`, so binding a lambda at a call site never heap
/// allocates. The referenced callable must outlive the call (trivially true
/// for ParallelFor, which blocks).
template <typename Sig>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  FunctionRef() = default;

  template <typename Fn,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cv_t<std::remove_reference_t<Fn>>,
                                FunctionRef>>>
  FunctionRef(Fn&& fn)  // NOLINT(google-explicit-constructor)
      : obj_(const_cast<void*>(static_cast<const void*>(std::addressof(fn)))),
        call_(+[](void* obj, Args... args) -> R {
          return (*static_cast<std::remove_reference_t<Fn>*>(obj))(
              std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const {
    return call_(obj_, std::forward<Args>(args)...);
  }
  explicit operator bool() const { return call_ != nullptr; }

 private:
  void* obj_ = nullptr;
  R (*call_)(void*, Args...) = nullptr;
};

class ThreadPool;
class TaskGroup;

namespace detail {

/// Inline slot capacity: every scheduled callable must fit (and be trivially
/// copyable) so tasks can live in the preallocated deque rings and move
/// between slots by plain copy — no heap, no virtual dispatch.
constexpr std::size_t kInlineTaskBytes = 64;

struct Task {
  void (*invoke)(void*) = nullptr;  ///< runs the callable stored in `storage`
  TaskGroup* group = nullptr;       ///< completion/error accounting; may be null
  TraceContext trace{};             ///< submitter's context, re-installed at run
  alignas(alignof(std::max_align_t)) unsigned char storage[kInlineTaskBytes];

  bool valid() const { return invoke != nullptr; }
};

}  // namespace detail

/// Join primitive: schedule a set of tasks, then Wait() for all of them.
/// Waiters help-execute tasks belonging to this group (and only this group),
/// so joining never deadlocks and nested fork-join actually parallelizes.
/// Exceptions propagate first-one-wins out of Wait(). Not reusable across
/// threads for Run (single producer), but tasks complete from any thread.
class TaskGroup {
 public:
  /// `pool == nullptr` uses the calling thread's current pool (its own pool
  /// for workers, the ScopedPool override or Global() otherwise).
  explicit TaskGroup(ThreadPool* pool = nullptr);
  ~TaskGroup();
  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Schedule fn() on the pool. Zero-allocation: Fn must be trivially
  /// copyable (capture pointers/indices, not owning objects) and fit the
  /// inline slot. On a stopped pool the task runs inline.
  template <typename Fn>
  void Run(Fn fn);

  /// Block until every scheduled task finished, executing this group's
  /// queued tasks while waiting. Rethrows the first captured exception.
  void Wait();

  /// True once any task threw — ParallelFor chunks poll this to stop early.
  bool failed() const { return failed_.load(std::memory_order_relaxed); }

 private:
  friend class ThreadPool;

  void OnDone(std::exception_ptr error);
  void WaitImpl(bool rethrow);

  ThreadPool* pool_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::size_t outstanding_ = 0;  ///< guarded by mutex_
  std::exception_ptr error_;     ///< guarded by mutex_
  std::atomic<bool> failed_{false};
};

class ThreadPool {
 public:
  struct Options {
    /// Task slots per worker deque (fixed at construction; overflow falls
    /// back to an allocating list, counted in `<name>/overflow`).
    std::size_t queue_capacity = 256;
    /// Extra workers the pool may spawn to back-fill for blocked tasks
    /// (BlockingScope) so runnable work keeps `num_threads` cores busy.
    int max_spares = 8;
    /// Metrics prefix ("pool" for the global instance). Counters:
    /// <name>/executed, <name>/steals, <name>/overflow, <name>/heap_tasks,
    /// <name>/parallel_for/chunks, <name>/spares_spawned. Gauges:
    /// <name>/num_threads, <name>/blocked, <name>/worker<i>/depth.
    std::string name = "pool";
  };

  explicit ThreadPool(int num_threads);
  ThreadPool(int num_threads, Options options);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Process-wide pool, sized from Configure()/TNP_NUM_THREADS/hardware.
  static ThreadPool& Global();

  /// Set the global pool's size before its first use (e.g. --threads=N).
  /// Returns false (and logs) when the global pool already exists.
  static bool Configure(int num_threads);

  /// Index of the calling pool-worker thread within its pool (stable for
  /// the thread's lifetime, spare workers included); -1 off-pool. Kernel
  /// scratch uses this to label per-worker arenas.
  static int CurrentWorkerIndex();

  /// Target concurrency (spare workers excluded).
  int num_threads() const noexcept { return target_; }
  const std::string& name() const noexcept { return options_.name; }

  /// Enqueue an arbitrary task; the returned future completes when it ran.
  /// This is the allocating control-plane path (type-erased std::function +
  /// shared future state, counted in `<name>/heap_tasks`); steady-state
  /// paths use Post/ParallelFor. Throws RuntimeError after Shutdown().
  std::future<void> Submit(std::function<void()> task);

  /// Fire-and-forget task on the zero-allocation path: Fn must be trivially
  /// copyable and fit the inline slot. Exceptions escaping a posted task are
  /// logged and swallowed. Throws RuntimeError after Shutdown().
  template <typename Fn>
  void Post(Fn fn);

  /// Run fn(i) for i in [begin, end). The range is split into chunks (at
  /// least `grain_size` iterations each; `grain_size == 0` auto-sizes) that
  /// are scheduled on the pool and help-executed by the caller. Blocks until
  /// every chunk finished; exceptions rethrow first-one-wins. Nested calls
  /// from workers fan out like top-level ones. Runs inline on a
  /// single-thread or stopped pool.
  void ParallelFor(std::int64_t begin, std::int64_t end,
                   FunctionRef<void(std::int64_t)> fn, std::int64_t grain_size = 0);

  /// Stop admission (Submit/Post throw; ParallelFor degrades to inline),
  /// drain every already-queued task, and join all workers. Idempotent; the
  /// destructor calls it.
  void Shutdown();

  /// Declares "the current pool task is about to park its worker" (exclusive
  /// resource hold, socket I/O, timed waits) for the scope's lifetime. The
  /// pool spawns a bounded spare worker when blocked tasks would otherwise
  /// drop runnable concurrency below num_threads(). No-op off-pool.
  class BlockingScope {
   public:
    BlockingScope();
    ~BlockingScope();
    BlockingScope(BlockingScope&& other) noexcept : pool_(other.pool_) {
      other.pool_ = nullptr;
    }
    BlockingScope& operator=(BlockingScope&& other) noexcept;
    BlockingScope(const BlockingScope&) = delete;
    BlockingScope& operator=(const BlockingScope&) = delete;

   private:
    ThreadPool* pool_ = nullptr;
  };

 private:
  friend class TaskGroup;

  struct Deque {
    std::mutex mutex;
    std::vector<detail::Task> ring;  ///< fixed capacity, allocated at pool ctor
    std::size_t head = 0;            ///< index of the oldest (steal-side) task
    std::size_t count = 0;
    metrics::Gauge* depth = nullptr;
  };

  void SpawnWorkerLocked();
  void WorkerLoop(int index);
  /// False when the pool is stopping (caller decides: throw or run inline).
  bool TryEnqueue(const detail::Task& task);
  bool FindTask(int worker_index, detail::Task* out, bool* stolen);
  bool TakeGroupTask(TaskGroup* group, detail::Task* out);
  void Execute(detail::Task& task, bool stolen);
  void WakeOne();
  void OnBlockingEnter();
  void OnBlockingExit();

  Options options_;
  int target_ = 0;       ///< requested concurrency
  int max_workers_ = 0;  ///< target_ + options_.max_spares

  std::vector<Deque> deques_;  ///< one per potential worker, fixed size
  std::mutex overflow_mutex_;
  std::deque<detail::Task> overflow_;  ///< safety valve when a ring is full

  std::mutex workers_mutex_;
  std::vector<std::thread> workers_;
  int num_workers_ = 0;  ///< == workers_.size(); guarded by workers_mutex_

  std::atomic<bool> stopping_{false};
  std::atomic<std::int64_t> pending_{0};  ///< tasks sitting in deques/overflow
  std::atomic<int> blocked_{0};           ///< workers inside a BlockingScope
  std::atomic<std::size_t> next_victim_{0};
  std::mutex sleep_mutex_;
  std::condition_variable sleep_cv_;
  int sleepers_ = 0;  ///< guarded by sleep_mutex_

  metrics::Counter* executed_ = nullptr;
  metrics::Counter* steals_ = nullptr;
  metrics::Counter* overflow_count_ = nullptr;
  metrics::Counter* heap_tasks_ = nullptr;
  metrics::Counter* chunks_ = nullptr;
  metrics::Counter* spares_spawned_ = nullptr;
  metrics::Gauge* blocked_gauge_ = nullptr;
};

/// The pool free functions and defaulted TaskGroups schedule on: the calling
/// worker's own pool, else the ScopedPool override, else Global().
ThreadPool& CurrentPool();

/// Routes CurrentPool() (and so the free ParallelFor and defaulted
/// TaskGroups) to `pool` on this thread for the scope's lifetime — how
/// benches and tests measure fixed pool sizes without touching the global.
class ScopedPool {
 public:
  explicit ScopedPool(ThreadPool& pool);
  ~ScopedPool();
  ScopedPool(const ScopedPool&) = delete;
  ScopedPool& operator=(const ScopedPool&) = delete;

 private:
  ThreadPool* previous_;
};

/// Strictly parse a TNP_NUM_THREADS-style value: nullptr/empty/garbage/
/// non-positive values are rejected (logged) and return 0 ("unset"); values
/// above 4 x `hardware` are clamped with a warning. Exposed for tests.
int ParseThreadCountEnv(const char* text, int hardware);

/// Convenience wrapper over the current pool.
inline void ParallelFor(std::int64_t begin, std::int64_t end,
                        FunctionRef<void(std::int64_t)> fn,
                        std::int64_t grain_size = 0) {
  CurrentPool().ParallelFor(begin, end, fn, grain_size);
}

// ---------------------------------------------------------------- inline impl

template <typename Fn>
void TaskGroup::Run(Fn fn) {
  static_assert(std::is_trivially_copyable_v<Fn>,
                "pool tasks must be trivially copyable: capture pointers and "
                "indices, not owning objects");
  static_assert(sizeof(Fn) <= detail::kInlineTaskBytes,
                "task capture exceeds the inline slot");
  detail::Task task;
  task.invoke = +[](void* storage) { (*static_cast<Fn*>(storage))(); };
  task.group = this;
  task.trace = CurrentTraceContext();
  ::new (static_cast<void*>(task.storage)) Fn(fn);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++outstanding_;
  }
  if (!pool_->TryEnqueue(task)) {
    // Stopped pool: degrade gracefully — run on the caller, keep accounting.
    pool_->Execute(task, /*stolen=*/false);
  }
}

template <typename Fn>
void ThreadPool::Post(Fn fn) {
  static_assert(std::is_trivially_copyable_v<Fn>,
                "pool tasks must be trivially copyable: capture pointers and "
                "indices, not owning objects");
  static_assert(sizeof(Fn) <= detail::kInlineTaskBytes,
                "task capture exceeds the inline slot");
  detail::Task task;
  task.invoke = +[](void* storage) { (*static_cast<Fn*>(storage))(); };
  task.group = nullptr;
  task.trace = CurrentTraceContext();
  ::new (static_cast<void*>(task.storage)) Fn(fn);
  if (!TryEnqueue(task)) {
    TNP_THROW(kRuntimeError) << "ThreadPool::Post after shutdown";
  }
}

}  // namespace support
}  // namespace tnp
