#include "support/tokenizer.h"

#include "support/logging.h"
#include "support/string_util.h"

namespace tnp {
namespace support {

Tokenizer::Tokenizer(std::string text, std::string source_name)
    : source_name_(std::move(source_name)) {
  for (const auto& raw : Split(text, '\n')) {
    lines_.push_back(raw);
  }
}

std::optional<std::string> Tokenizer::NextLine() {
  while (next_ < lines_.size()) {
    const std::size_t index = next_++;
    std::string_view trimmed = Trim(lines_[index]);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    current_line_ = static_cast<int>(index) + 1;
    return std::string(trimmed);
  }
  return std::nullopt;
}

std::string Tokenizer::ExpectLine(std::string_view what) {
  auto line = NextLine();
  if (!line) {
    TNP_THROW(kParseError) << source_name_ << ": unexpected end of input, expected "
                           << std::string(what);
  }
  return *line;
}

std::optional<std::string> Tokenizer::PeekLine() {
  const std::size_t saved_next = next_;
  const int saved_line = current_line_;
  auto line = NextLine();
  next_ = saved_next;
  current_line_ = saved_line;
  return line;
}

void Tokenizer::ExpectExact(std::string_view expected) {
  const std::string line = ExpectLine(expected);
  if (line != expected) {
    TNP_THROW(kParseError) << Location() << ": expected '" << std::string(expected)
                           << "', got '" << line << "'";
  }
}

std::string Tokenizer::Location() const {
  return source_name_ + ":" + std::to_string(current_line_);
}

std::pair<std::string, std::string> ParseKeyValue(std::string_view line,
                                                  std::string_view context) {
  const std::size_t eq = line.find('=');
  if (eq == std::string_view::npos) {
    TNP_THROW(kParseError) << std::string(context) << ": expected key=value, got '"
                           << std::string(line) << "'";
  }
  return {std::string(Trim(line.substr(0, eq))), std::string(Trim(line.substr(eq + 1)))};
}

std::vector<std::int64_t> ParseDims(std::string_view text, std::string_view context) {
  text = Trim(text);
  std::vector<std::int64_t> dims;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == 'x' || text[i] == ',') {
      if (i > start) dims.push_back(ParseInt(text.substr(start, i - start), context));
      start = i + 1;
    }
  }
  if (dims.empty()) {
    TNP_THROW(kParseError) << std::string(context) << ": expected dims, got '"
                           << std::string(text) << "'";
  }
  return dims;
}

}  // namespace support
}  // namespace tnp
