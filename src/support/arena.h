// Arena — the backing store for statically planned tensor memory.
//
// An arena owns one 64-byte-aligned block sized by the memory planner
// (Reserve) plus an optional chain of bump-allocated scratch chunks for
// allocations that fall outside the plan (Allocate / ResetScratch). Planned
// consumers hand out non-owning views into the block via Data(); the block
// is reference-counted (handle()) so views can outlive the Arena object
// itself — a view pins the bytes, not the Arena.
//
// Reserve may only grow the block while no views exist; after the first
// Data() call the base address is frozen (growing would dangle every view).
//
// Every arena publishes its footprint through the metrics registry:
//   memory/arena/bytes          — gauge (Add +/-); max() = peak concurrent
//                                 planned bytes across all live arenas
//   memory/arena/reservations   — counter of Reserve calls that grew a block
//   memory/scratch/bytes        — gauge of live scratch-chunk bytes (kept
//                                 separate so the planned-arena gauge stays a
//                                 deterministic compiler artifact)
//   memory/scratch/chunk_allocs — counter of scratch chunk mallocs; the
//                                 zero-alloc steady-state hook (a warm frame
//                                 sequence replayed via Mark/Rewind must not
//                                 move it)
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace tnp {
namespace support {

class Arena {
 public:
  explicit Arena(std::string name = "arena");
  ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Position of the scratch bump pointer; a frame boundary for RewindScratch.
  struct ScratchMark {
    std::size_t chunk = 0;  ///< index of the active chunk
    std::size_t used = 0;   ///< bytes used inside that chunk
  };

  /// Ensure the planned region [0, bytes) exists. Growing is only legal
  /// before the first Data() call.
  void Reserve(std::size_t bytes);

  /// Pointer to the planned region [offset, offset + bytes); bounds-checked.
  /// Freezes the base address.
  std::byte* Data(std::size_t offset, std::size_t bytes);

  /// Reference-counted handle to the planned block; keeps the bytes alive
  /// after the Arena is destroyed (pass as NDArray view keep-alive).
  std::shared_ptr<const void> handle() const { return block_; }

  /// Bump-allocate unplanned scratch (64-byte aligned, stable addresses).
  void* Allocate(std::size_t bytes);

  /// Current bump position, to be restored with RewindScratch. Stack
  /// discipline: marks must be rewound in reverse order of creation.
  ScratchMark MarkScratch() const;

  /// Roll the bump pointer back to `mark`, keeping every chunk allocated so
  /// the next frame reuses the same memory without touching the heap.
  void RewindScratch(const ScratchMark& mark);

  /// Drop all scratch chunks; planned block and its views are unaffected.
  void ResetScratch();

  const std::string& name() const { return name_; }
  std::size_t capacity() const { return capacity_; }
  std::size_t scratch_bytes() const { return scratch_bytes_; }
  /// Bytes currently bump-allocated across scratch chunks (excludes chunk
  /// tail waste) and the lifetime peak of that figure.
  std::size_t scratch_used() const { return scratch_used_; }
  std::size_t scratch_high_watermark() const { return scratch_watermark_; }

  /// Process-wide count of scratch chunk heap allocations, ever. Steady-state
  /// zero-allocation tests assert this stays flat across warm iterations.
  static std::int64_t TotalScratchChunkAllocs();

 private:
  struct Chunk;

  std::string name_;
  std::shared_ptr<std::byte> block_;  ///< planned region (aliased by views)
  std::size_t capacity_ = 0;
  bool frozen_ = false;
  std::vector<std::unique_ptr<Chunk>> scratch_;
  std::size_t active_chunk_ = 0;  ///< bump chunk; earlier chunks are full or rewound
  std::size_t scratch_bytes_ = 0;
  std::size_t scratch_used_ = 0;
  std::size_t scratch_watermark_ = 0;
};

}  // namespace support
}  // namespace tnp
