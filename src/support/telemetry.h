// Periodic telemetry sampler: a background thread that, on a fixed cadence,
// re-publishes the live operational signals so they become *time series*
// instead of point-in-time numbers:
//
//   - every gauge (queue depths, session-pool occupancy, arena bytes) is
//     emitted as a Chrome-trace counter track, so the exported trace shows
//     queue depth / pool in-flight / arena high-watermark over time;
//   - every latency histogram (names ending "/us") publishes its rolling
//     p50/p95/p99 as gauges under "telemetry/<name>/p50|p95|p99", giving
//     exporters and the flight recorder current-percentile visibility
//     without touching raw samples.
//
// The sampler is passive observation only: it never resets a metric, and
// anything it publishes under "telemetry/" is excluded from sampling so the
// cadence cannot feed back on itself.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tnp {
namespace support {

struct TelemetrySamplerOptions {
  std::chrono::milliseconds period{50};
  /// Gauges -> Chrome-trace counter tracks (requires the tracer enabled).
  bool publish_trace_counters = true;
  /// "/us" histograms -> "telemetry/<name>/p50|p95|p99" gauges.
  bool publish_percentiles = true;
  /// Advance the windowed time-series collector (timeseries.h) each pass,
  /// making the sampler cadence the clock that fills the per-second ring.
  /// Turn off when something else owns Collector::Tick (a test's injected
  /// clock, or a HealthMonitor with auto_tick_collector).
  bool advance_timeseries = true;
  /// Drive the always-on sampling profiler (profiler.h) each pass: one
  /// alloc-free Profiler::SampleOnce() folding every registered thread's
  /// published stack. This is what makes the profiler "always on" — any
  /// process running a TelemetrySampler is being profiled.
  bool sample_profiler = true;
};

class TelemetrySampler {
 public:
  explicit TelemetrySampler(TelemetrySamplerOptions options = {});
  ~TelemetrySampler();  ///< Stops the thread if running.

  TelemetrySampler(const TelemetrySampler&) = delete;
  TelemetrySampler& operator=(const TelemetrySampler&) = delete;

  /// Start the cadence thread (idempotent).
  void Start();
  /// Stop and join (idempotent; safe without Start).
  void Stop();

  /// One synchronous sampling pass — what the thread runs every period.
  /// Public so tests and exit paths can sample deterministically.
  void SampleOnce();

  /// Run `callback` at the end of every sampling pass (thread + manual) —
  /// how periodic work (health evaluation, exports) rides the existing
  /// cadence thread instead of spawning its own. Register before Start().
  void AddSampleCallback(std::function<void()> callback);

  /// Completed sampling passes (thread + manual).
  std::uint64_t samples() const { return samples_.load(std::memory_order_relaxed); }

 private:
  void Loop();

  TelemetrySamplerOptions options_;
  std::atomic<std::uint64_t> samples_{0};
  std::vector<std::function<void()>> callbacks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool running_ = false;
  std::thread thread_;
};

}  // namespace support
}  // namespace tnp
