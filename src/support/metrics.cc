#include "support/metrics.h"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

namespace tnp {
namespace support {
namespace metrics {

// ------------------------------------------------------------------ Gauge

void Gauge::Set(double value) {
  value_.store(value, std::memory_order_relaxed);
  double observed = max_.load(std::memory_order_relaxed);
  while (value > observed &&
         !max_.compare_exchange_weak(observed, value, std::memory_order_relaxed)) {
  }
}

void Gauge::Add(double delta) {
  double observed = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(observed, observed + delta,
                                       std::memory_order_relaxed)) {
  }
  Set(value_.load(std::memory_order_relaxed));  // refresh the watermark
}

double Gauge::value() const { return value_.load(std::memory_order_relaxed); }

double Gauge::max() const { return max_.load(std::memory_order_relaxed); }

void Gauge::Reset() {
  value_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

// -------------------------------------------------------------- Histogram

void Histogram::Record(double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (count_ == 0 || value < min_) min_ = value;
  if (count_ == 0 || value > max_) max_ = value;
  ++count_;
  sum_ += value;
  sum_sq_ += value * value;
  if (samples_.size() < kMaxSamples) samples_.push_back(value);
}

std::int64_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return count_;
}

double Histogram::Percentile(double p) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (samples_.empty()) return 0.0;
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  // Nearest-rank: the smallest value with at least p% of samples at or
  // below it.
  const double rank = std::ceil(p / 100.0 * static_cast<double>(sorted.size()));
  const std::size_t index = static_cast<std::size_t>(
      std::clamp<double>(rank - 1.0, 0.0, static_cast<double>(sorted.size() - 1)));
  return sorted[index];
}

HistogramSummary Histogram::Summarize() const {
  HistogramSummary summary;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    summary.count = count_;
    if (count_ == 0) return summary;
    summary.min = min_;
    summary.max = max_;
    const double n = static_cast<double>(count_);
    summary.mean = sum_ / n;
    const double variance = std::max(0.0, sum_sq_ / n - summary.mean * summary.mean);
    summary.stddev = std::sqrt(variance);
  }
  summary.p50 = Percentile(50.0);
  summary.p95 = Percentile(95.0);
  summary.p99 = Percentile(99.0);
  return summary;
}

void Histogram::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  samples_.clear();
  count_ = 0;
  sum_ = 0.0;
  sum_sq_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
}

// --------------------------------------------------------------- Registry

Registry& Registry::Global() {
  static Registry* registry = new Registry();  // never destroyed: metric
  return *registry;                            // refs outlive static teardown
}

Registry::Entry& Registry::Find(const std::string& name) {
  for (auto& [entry_name, entry] : entries_) {
    if (entry_name == name) return entry;
  }
  entries_.emplace_back(name, Entry{});
  return entries_.back().second;
}

const Registry::Entry* Registry::FindConst(const std::string& name) const {
  for (const auto& [entry_name, entry] : entries_) {
    if (entry_name == name) return &entry;
  }
  return nullptr;
}

Counter& Registry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = Find(name);
  if (entry.counter == nullptr) entry.counter = std::make_unique<Counter>();
  return *entry.counter;
}

Gauge& Registry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = Find(name);
  if (entry.gauge == nullptr) entry.gauge = std::make_unique<Gauge>();
  return *entry.gauge;
}

Histogram& Registry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = Find(name);
  if (entry.histogram == nullptr) entry.histogram = std::make_unique<Histogram>();
  return *entry.histogram;
}

const Counter* Registry::FindCounter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const Entry* entry = FindConst(name);
  return entry != nullptr ? entry->counter.get() : nullptr;
}

const Gauge* Registry::FindGauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const Entry* entry = FindConst(name);
  return entry != nullptr ? entry->gauge.get() : nullptr;
}

const Histogram* Registry::FindHistogram(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const Entry* entry = FindConst(name);
  return entry != nullptr ? entry->histogram.get() : nullptr;
}

void Registry::DumpText(std::ostream& os) const {
  std::vector<std::pair<std::string, const Entry*>> sorted;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    sorted.reserve(entries_.size());
    for (const auto& [name, entry] : entries_) sorted.emplace_back(name, &entry);
  }
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [name, entry] : sorted) {
    if (entry->counter != nullptr) {
      os << "counter   " << name << " = " << entry->counter->value() << "\n";
    }
    if (entry->gauge != nullptr) {
      os << "gauge     " << name << " = " << entry->gauge->value()
         << " (max " << entry->gauge->max() << ")\n";
    }
    if (entry->histogram != nullptr) {
      const HistogramSummary s = entry->histogram->Summarize();
      os << "histogram " << name << " count=" << s.count << " min=" << s.min
         << " p50=" << s.p50 << " p95=" << s.p95 << " p99=" << s.p99 << " max=" << s.max
         << " mean=" << s.mean << " stddev=" << s.stddev << "\n";
    }
  }
}

std::string Registry::DumpText() const {
  std::ostringstream os;
  DumpText(os);
  return os.str();
}

void Registry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, entry] : entries_) {
    if (entry.counter != nullptr) entry.counter->Reset();
    if (entry.gauge != nullptr) entry.gauge->Reset();
    if (entry.histogram != nullptr) entry.histogram->Reset();
  }
}

}  // namespace metrics
}  // namespace support
}  // namespace tnp
