#include "support/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace tnp {
namespace support {
namespace metrics {

// ------------------------------------------------------------------ Gauge

void Gauge::Set(double value) {
  value_.store(value, std::memory_order_relaxed);
  double observed = max_.load(std::memory_order_relaxed);
  while (value > observed &&
         !max_.compare_exchange_weak(observed, value, std::memory_order_relaxed)) {
  }
}

void Gauge::Add(double delta) {
  double observed = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(observed, observed + delta,
                                       std::memory_order_relaxed)) {
  }
  Set(value_.load(std::memory_order_relaxed));  // refresh the watermark
}

double Gauge::value() const { return value_.load(std::memory_order_relaxed); }

double Gauge::max() const { return max_.load(std::memory_order_relaxed); }

void Gauge::Reset() {
  value_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

// -------------------------------------------------------------- Histogram

void Histogram::Record(double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (count_ == 0 || value < min_) min_ = value;
  if (count_ == 0 || value > max_) max_ = value;
  ++count_;
  sum_ += value;
  sum_sq_ += value * value;
  if (samples_.size() < kMaxSamples) samples_.push_back(value);
}

std::int64_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return count_;
}

double Histogram::Percentile(double p) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (samples_.empty()) return 0.0;
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  // Nearest-rank: the smallest value with at least p% of samples at or
  // below it.
  const double rank = std::ceil(p / 100.0 * static_cast<double>(sorted.size()));
  const std::size_t index = static_cast<std::size_t>(
      std::clamp<double>(rank - 1.0, 0.0, static_cast<double>(sorted.size() - 1)));
  return sorted[index];
}

HistogramSummary Histogram::Summarize() const {
  HistogramSummary summary;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    summary.count = count_;
    if (count_ == 0) return summary;
    summary.min = min_;
    summary.max = max_;
    const double n = static_cast<double>(count_);
    summary.mean = sum_ / n;
    const double variance = std::max(0.0, sum_sq_ / n - summary.mean * summary.mean);
    summary.stddev = std::sqrt(variance);
  }
  summary.p50 = Percentile(50.0);
  summary.p95 = Percentile(95.0);
  summary.p99 = Percentile(99.0);
  return summary;
}

void Histogram::DrainSamplesSince(std::size_t* cursor, std::vector<double>* out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (*cursor > samples_.size()) *cursor = 0;  // Reset() rewound the samples
  for (std::size_t i = *cursor; i < samples_.size(); ++i) out->push_back(samples_[i]);
  *cursor = samples_.size();
}

void Histogram::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  samples_.clear();
  count_ = 0;
  sum_ = 0.0;
  sum_sq_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
}

// --------------------------------------------------------------- Registry

Registry& Registry::Global() {
  static Registry* registry = new Registry();  // never destroyed: metric
  return *registry;                            // refs outlive static teardown
}

Registry::Entry& Registry::Find(const std::string& name) {
  for (auto& [entry_name, entry] : entries_) {
    if (entry_name == name) return entry;
  }
  entries_.emplace_back(name, Entry{});
  return entries_.back().second;
}

const Registry::Entry* Registry::FindConst(const std::string& name) const {
  for (const auto& [entry_name, entry] : entries_) {
    if (entry_name == name) return &entry;
  }
  return nullptr;
}

Counter& Registry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = Find(name);
  if (entry.counter == nullptr) entry.counter = std::make_unique<Counter>();
  return *entry.counter;
}

Gauge& Registry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = Find(name);
  if (entry.gauge == nullptr) entry.gauge = std::make_unique<Gauge>();
  return *entry.gauge;
}

Histogram& Registry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = Find(name);
  if (entry.histogram == nullptr) entry.histogram = std::make_unique<Histogram>();
  return *entry.histogram;
}

const Counter* Registry::FindCounter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const Entry* entry = FindConst(name);
  return entry != nullptr ? entry->counter.get() : nullptr;
}

const Gauge* Registry::FindGauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const Entry* entry = FindConst(name);
  return entry != nullptr ? entry->gauge.get() : nullptr;
}

const Histogram* Registry::FindHistogram(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const Entry* entry = FindConst(name);
  return entry != nullptr ? entry->histogram.get() : nullptr;
}

void Registry::DumpText(std::ostream& os) const {
  std::vector<std::pair<std::string, const Entry*>> sorted;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    sorted.reserve(entries_.size());
    for (const auto& [name, entry] : entries_) sorted.emplace_back(name, &entry);
  }
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [name, entry] : sorted) {
    if (entry->counter != nullptr) {
      os << "counter   " << name << " = " << entry->counter->value() << "\n";
    }
    if (entry->gauge != nullptr) {
      os << "gauge     " << name << " = " << entry->gauge->value()
         << " (max " << entry->gauge->max() << ")\n";
    }
    if (entry->histogram != nullptr) {
      const HistogramSummary s = entry->histogram->Summarize();
      os << "histogram " << name << " count=" << s.count << " min=" << s.min
         << " p50=" << s.p50 << " p95=" << s.p95 << " p99=" << s.p99 << " max=" << s.max
         << " mean=" << s.mean << " stddev=" << s.stddev << "\n";
    }
  }
}

std::string Registry::DumpText() const {
  std::ostringstream os;
  DumpText(os);
  return os.str();
}

std::vector<MetricRef> Registry::Entries() const {
  std::vector<MetricRef> refs;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    refs.reserve(entries_.size());
    for (const auto& [name, entry] : entries_) {
      MetricRef ref;
      ref.name = name;
      ref.counter = entry.counter.get();
      ref.gauge = entry.gauge.get();
      ref.histogram = entry.histogram.get();
      refs.push_back(std::move(ref));
    }
  }
  std::sort(refs.begin(), refs.end(),
            [](const MetricRef& a, const MetricRef& b) { return a.name < b.name; });
  return refs;
}

void Registry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, entry] : entries_) {
    if (entry.counter != nullptr) entry.counter->Reset();
    if (entry.gauge != nullptr) entry.gauge->Reset();
    if (entry.histogram != nullptr) entry.histogram->Reset();
  }
}

// ------------------------------------------------------------- exporters

namespace {

/// Prometheus metric name: [a-zA-Z_:][a-zA-Z0-9_:]*, prefixed "tnp_".
std::string PrometheusName(const std::string& name) {
  std::string out = "tnp_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

/// Prometheus sample values: plain decimal (never scientific for the common
/// integral case, which keeps the exposition greppable).
std::string PrometheusValue(double value) {
  if (std::isfinite(value) && value == std::floor(value) &&
      std::abs(value) < 1e15) {
    return std::to_string(static_cast<long long>(value));
  }
  std::ostringstream os;
  os << value;
  return os.str();
}

void AppendJsonString(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "0";
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

}  // namespace

std::string ExportPrometheus(const Registry& registry) {
  std::string out;
  // Entries() iterates in sorted-name order, so the exposition is
  // deterministic and diffable run to run. The HELP text is the metric's
  // original slash-separated registry name — the mapping a scraper needs to
  // get back to the in-process name.
  for (const MetricRef& ref : registry.Entries()) {
    const std::string name = PrometheusName(ref.name);
    if (ref.counter != nullptr) {
      out += "# HELP " + name + " " + ref.name + "\n";
      out += "# TYPE " + name + " counter\n";
      out += name + " " + std::to_string(ref.counter->value()) + "\n";
    }
    if (ref.gauge != nullptr) {
      out += "# HELP " + name + " " + ref.name + "\n";
      out += "# TYPE " + name + " gauge\n";
      out += name + " " + PrometheusValue(ref.gauge->value()) + "\n";
      out += "# HELP " + name + "_max high-watermark of " + ref.name + "\n";
      out += "# TYPE " + name + "_max gauge\n";
      out += name + "_max " + PrometheusValue(ref.gauge->max()) + "\n";
    }
    if (ref.histogram != nullptr) {
      const HistogramSummary s = ref.histogram->Summarize();
      out += "# HELP " + name + " " + ref.name + "\n";
      out += "# TYPE " + name + " summary\n";
      out += name + "{quantile=\"0.5\"} " + PrometheusValue(s.p50) + "\n";
      out += name + "{quantile=\"0.95\"} " + PrometheusValue(s.p95) + "\n";
      out += name + "{quantile=\"0.99\"} " + PrometheusValue(s.p99) + "\n";
      out += name + "_sum " + PrometheusValue(s.mean * static_cast<double>(s.count)) + "\n";
      out += name + "_count " + std::to_string(s.count) + "\n";
    }
  }
  return out;
}

std::string ExportJson(const Registry& registry) {
  const std::vector<MetricRef> refs = registry.Entries();
  std::string out = "{";

  const auto append_section = [&out, &refs](const char* section,
                                            const auto& member_of,
                                            const auto& render) {
    AppendJsonString(out, section);
    out += ":{";
    bool first = true;
    for (const MetricRef& ref : refs) {
      if (member_of(ref) == nullptr) continue;
      if (!first) out += ",";
      first = false;
      AppendJsonString(out, ref.name);
      out += ":";
      render(*member_of(ref));
    }
    out += "}";
  };

  append_section(
      "counters", [](const MetricRef& r) { return r.counter; },
      [&out](const Counter& c) { out += std::to_string(c.value()); });
  out += ",";
  append_section(
      "gauges", [](const MetricRef& r) { return r.gauge; },
      [&out](const Gauge& g) {
        out += "{\"value\":" + JsonNumber(g.value()) + ",\"max\":" + JsonNumber(g.max()) +
               "}";
      });
  out += ",";
  append_section(
      "histograms", [](const MetricRef& r) { return r.histogram; },
      [&out](const Histogram& h) {
        const HistogramSummary s = h.Summarize();
        out += "{\"count\":" + std::to_string(s.count) +
               ",\"min\":" + JsonNumber(s.min) + ",\"max\":" + JsonNumber(s.max) +
               ",\"mean\":" + JsonNumber(s.mean) + ",\"stddev\":" + JsonNumber(s.stddev) +
               ",\"p50\":" + JsonNumber(s.p50) + ",\"p95\":" + JsonNumber(s.p95) +
               ",\"p99\":" + JsonNumber(s.p99) + "}";
      });
  out += "}";
  return out;
}

}  // namespace metrics
}  // namespace support
}  // namespace tnp
