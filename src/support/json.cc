#include "support/json.h"

#include <cctype>
#include <cstdlib>

#include "support/logging.h"

namespace tnp {
namespace support {

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out, std::string* error) {
    pos_ = 0;
    ok_ = true;
    SkipWs();
    *out = ParseValue();
    SkipWs();
    if (ok_ && pos_ != text_.size()) Fail("trailing characters after JSON value");
    if (!ok_ && error != nullptr) *error = error_;
    return ok_;
  }

 private:
  void Fail(const std::string& message) {
    if (!ok_) return;
    ok_ = false;
    error_ = message + " at offset " + std::to_string(pos_);
  }

  void SkipWs() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                   text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  bool Consume(char c) {
    if (Peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void Expect(char c) {
    if (!Consume(c)) Fail(std::string("expected '") + c + "'");
  }

  JsonValue ParseValue() {
    JsonValue value;
    if (!ok_) return value;
    const char c = Peek();
    if (c == '{') {
      ParseObject(&value);
    } else if (c == '[') {
      ParseArray(&value);
    } else if (c == '"') {
      value.kind_ = JsonValue::Kind::kString;
      value.string_ = ParseString();
    } else if (c == '-' || (c >= '0' && c <= '9')) {
      value.kind_ = JsonValue::Kind::kNumber;
      value.number_ = ParseNumber();
    } else if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      value.kind_ = JsonValue::Kind::kBool;
      value.bool_ = true;
    } else if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      value.kind_ = JsonValue::Kind::kBool;
      value.bool_ = false;
    } else if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
    } else {
      Fail("unexpected character");
    }
    return value;
  }

  void ParseObject(JsonValue* value) {
    value->kind_ = JsonValue::Kind::kObject;
    Expect('{');
    SkipWs();
    if (Consume('}')) return;
    for (;;) {
      SkipWs();
      std::string key = ParseString();
      SkipWs();
      Expect(':');
      SkipWs();
      JsonValue member = ParseValue();
      if (!ok_) return;
      value->object_.emplace_back(std::move(key), std::move(member));
      SkipWs();
      if (Consume('}')) return;
      Expect(',');
      if (!ok_) return;
    }
  }

  void ParseArray(JsonValue* value) {
    value->kind_ = JsonValue::Kind::kArray;
    Expect('[');
    SkipWs();
    if (Consume(']')) return;
    for (;;) {
      SkipWs();
      JsonValue element = ParseValue();
      if (!ok_) return;
      value->array_.push_back(std::move(element));
      SkipWs();
      if (Consume(']')) return;
      Expect(',');
      if (!ok_) return;
    }
  }

  std::string ParseString() {
    std::string result;
    if (!Consume('"')) {
      Fail("expected string");
      return result;
    }
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return result;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        Fail("unescaped control character in string");
        return result;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_];
        switch (esc) {
          case '"': result += '"'; break;
          case '\\': result += '\\'; break;
          case '/': result += '/'; break;
          case 'b': result += '\b'; break;
          case 'f': result += '\f'; break;
          case 'n': result += '\n'; break;
          case 'r': result += '\r'; break;
          case 't': result += '\t'; break;
          case 'u': {
            for (int i = 1; i <= 4; ++i) {
              if (pos_ + static_cast<std::size_t>(i) >= text_.size() ||
                  !std::isxdigit(static_cast<unsigned char>(text_[pos_ + i]))) {
                Fail("invalid \\u escape");
                return result;
              }
            }
            // Keep the escape verbatim (no surrogate decoding needed by
            // any consumer — metric/span names are ASCII).
            result += "\\u";
            result += text_.substr(pos_ + 1, 4);
            pos_ += 4;
            break;
          }
          default:
            Fail("invalid escape character");
            return result;
        }
        ++pos_;
        continue;
      }
      result += c;
      ++pos_;
    }
    Fail("unterminated string");
    return result;
  }

  double ParseNumber() {
    const std::size_t start = pos_;
    Consume('-');
    if (!std::isdigit(static_cast<unsigned char>(Peek()))) {
      Fail("invalid number");
      return 0.0;
    }
    while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    if (Consume('.')) {
      if (!std::isdigit(static_cast<unsigned char>(Peek()))) {
        Fail("invalid number fraction");
        return 0.0;
      }
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(Peek()))) {
        Fail("invalid number exponent");
        return 0.0;
      }
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    return std::strtod(text_.substr(start, pos_ - start).c_str(), nullptr);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  bool ok_ = true;
  std::string error_;
};

JsonValue JsonValue::Parse(const std::string& text) {
  JsonValue value;
  std::string error;
  if (!JsonParser(text).Parse(&value, &error)) {
    TNP_THROW(kParseError) << "invalid JSON: " << error;
  }
  return value;
}

bool JsonValue::TryParse(const std::string& text, JsonValue* out, std::string* error) {
  return JsonParser(text).Parse(out, error);
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [member_key, member] : object_) {
    if (member_key == key) return &member;
  }
  return nullptr;
}

double JsonValue::NumberOr(const std::string& key, double fallback) const {
  const JsonValue* member = Find(key);
  return member != nullptr && member->is_number() ? member->number() : fallback;
}

std::string JsonValue::StringOr(const std::string& key, std::string fallback) const {
  const JsonValue* member = Find(key);
  return member != nullptr && member->is_string() ? member->string() : std::move(fallback);
}

}  // namespace support
}  // namespace tnp
