#include "support/profiler.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <mutex>
#include <vector>

#include "support/metrics.h"

namespace tnp {
namespace support {
namespace profiler {

namespace {

// One published thread. Every field is atomic: the owning thread stores with
// relaxed/release ordering, the sampler loads with relaxed/acquire — racy by
// design (a torn stack read only misattributes one observation) and
// TSan-clean.
struct Slot {
  std::atomic<int> used{0};
  std::atomic<const char*> root{nullptr};
  std::atomic<int> state{static_cast<int>(ThreadState::kIdle)};
  std::atomic<int> depth{0};
  std::array<std::atomic<const char*>, kMaxDepth> frames{};
};

Slot g_slots[kMaxThreads];
std::atomic<std::uint64_t> g_slot_overflow{0};

void ReleaseSlot(Slot* slot) {
  slot->depth.store(0, std::memory_order_relaxed);
  slot->state.store(static_cast<int>(ThreadState::kIdle),
                    std::memory_order_relaxed);
  slot->root.store(nullptr, std::memory_order_relaxed);
  slot->used.store(0, std::memory_order_release);
}

// Thread-exit hook: the destructor returns the slot to the table so
// short-lived threads (spares, test threads) do not exhaust it.
struct SlotHandle {
  Slot* slot = nullptr;
  bool overflow_logged = false;
  ~SlotHandle() {
    if (slot != nullptr) ReleaseSlot(slot);
  }
};

thread_local SlotHandle g_slot_handle;

Slot* EnsureSlot(const char* root) {
  SlotHandle& handle = g_slot_handle;
  if (handle.slot != nullptr) return handle.slot;
  for (int i = 0; i < kMaxThreads; ++i) {
    int expected = 0;
    if (g_slots[i].used.compare_exchange_strong(expected, 1,
                                                std::memory_order_acq_rel)) {
      Slot* slot = &g_slots[i];
      slot->depth.store(0, std::memory_order_relaxed);
      slot->state.store(static_cast<int>(ThreadState::kIdle),
                        std::memory_order_relaxed);
      // root last with release: the sampler skips slots whose root is still
      // null, so a half-initialized slot is never folded.
      slot->root.store(root, std::memory_order_release);
      handle.slot = slot;
      return slot;
    }
  }
  if (!handle.overflow_logged) {
    handle.overflow_logged = true;
    g_slot_overflow.fetch_add(1, std::memory_order_relaxed);
  }
  return nullptr;
}

const char* StateFrame(ThreadState state) {
  switch (state) {
    case ThreadState::kIdle: return "(idle)";
    case ThreadState::kStealing: return "(stealing)";
    case ThreadState::kBlocked: return "(blocked)";
    case ThreadState::kRunning: return nullptr;
  }
  return nullptr;
}

// ------------------------------------------------------------- fold table

// Stack identity: root + frame pointers + state. Pointer identity is exact
// because labels are string literals.
struct StackKey {
  std::array<const char*, kMaxDepth + 1> frames{};  // [0] = root
  int num_frames = 0;
  int state = 0;

  bool Equals(const StackKey& other) const {
    if (num_frames != other.num_frames || state != other.state) return false;
    for (int i = 0; i < num_frames; ++i) {
      if (frames[static_cast<std::size_t>(i)] !=
          other.frames[static_cast<std::size_t>(i)]) {
        return false;
      }
    }
    return true;
  }

  std::size_t Hash() const {
    std::size_t h = 1469598103934665603ull;  // FNV-1a over the pointer words
    for (int i = 0; i < num_frames; ++i) {
      h ^= reinterpret_cast<std::size_t>(frames[static_cast<std::size_t>(i)]);
      h *= 1099511628211ull;
    }
    h ^= static_cast<std::size_t>(state);
    h *= 1099511628211ull;
    return h;
  }
};

struct TableEntry {
  StackKey key;
  std::uint64_t count = 0;
  bool used = false;
};

constexpr std::size_t kTableSize = 1024;  // power of two (mask indexing)

struct FoldState {
  mutable std::mutex mutex;
  std::array<TableEntry, kTableSize> table{};
  std::uint64_t samples = 0;
  std::uint64_t thread_samples = 0;
  std::uint64_t fold_dropped = 0;
  std::uint64_t distinct = 0;
  std::atomic<std::int64_t> alloc_events{0};
};

FoldState& Fold() {
  static FoldState* state = new FoldState();  // outlives static teardown
  return *state;
}

std::string RenderStack(const StackKey& key) {
  std::string out;
  for (int i = 0; i < key.num_frames; ++i) {
    if (i > 0) out += ';';
    out += key.frames[static_cast<std::size_t>(i)];
  }
  const char* suffix = StateFrame(static_cast<ThreadState>(key.state));
  if (suffix != nullptr) {
    out += ';';
    out += suffix;
  }
  return out;
}

struct RenderedEntry {
  std::string stack;
  std::uint64_t count;
};

void AppendJsonString(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
    } else {
      out += c;
    }
  }
  out += '"';
}

}  // namespace

void RegisterThread(const char* root) { EnsureSlot(root); }

bool ThreadRegistered() { return g_slot_handle.slot != nullptr; }

void SetThreadState(ThreadState state) {
  Slot* slot = g_slot_handle.slot;
  if (slot == nullptr) return;
  slot->state.store(static_cast<int>(state), std::memory_order_relaxed);
}

StateScope::StateScope(ThreadState state)
    : previous_(ThreadState::kIdle), active_(false) {
  Slot* slot = g_slot_handle.slot;
  if (slot == nullptr) return;
  active_ = true;
  previous_ =
      static_cast<ThreadState>(slot->state.load(std::memory_order_relaxed));
  slot->state.store(static_cast<int>(state), std::memory_order_relaxed);
}

StateScope::~StateScope() {
  if (!active_) return;
  Slot* slot = g_slot_handle.slot;
  if (slot == nullptr) return;
  slot->state.store(static_cast<int>(previous_), std::memory_order_relaxed);
}

LabelScope::LabelScope(const char* label) {
  Slot* slot = EnsureSlot("thread");
  if (slot == nullptr) return;
  const int depth = slot->depth.load(std::memory_order_relaxed);
  if (depth < kMaxDepth) {
    slot->frames[static_cast<std::size_t>(depth)].store(
        label, std::memory_order_relaxed);
  }
  // Store depth after the frame: the sampler reads depth first, so it never
  // sees a depth covering a frame slot that has not been written.
  slot->depth.store(depth + 1, std::memory_order_release);
}

LabelScope::~LabelScope() {
  Slot* slot = g_slot_handle.slot;
  if (slot == nullptr) return;
  const int depth = slot->depth.load(std::memory_order_relaxed);
  if (depth > 0) slot->depth.store(depth - 1, std::memory_order_release);
}

// ----------------------------------------------------------------- Profiler

Profiler& Profiler::Global() {
  static Profiler* profiler = new Profiler();  // outlives static teardown
  return *profiler;
}

void Profiler::SampleOnce() {
  static metrics::Counter& samples_counter =
      metrics::Registry::Global().GetCounter("prof/samples");
  static metrics::Gauge& threads_gauge =
      metrics::Registry::Global().GetGauge("prof/threads");

  FoldState& fold = Fold();
  std::lock_guard<std::mutex> lock(fold.mutex);
  int threads_seen = 0;
  for (int i = 0; i < kMaxThreads; ++i) {
    Slot& slot = g_slots[i];
    if (slot.used.load(std::memory_order_acquire) == 0) continue;
    const char* root = slot.root.load(std::memory_order_acquire);
    if (root == nullptr) continue;  // mid-registration or mid-release
    ++threads_seen;

    StackKey key;
    key.frames[0] = root;
    key.num_frames = 1;
    key.state = slot.state.load(std::memory_order_relaxed);
    const int depth =
        std::min(slot.depth.load(std::memory_order_acquire), kMaxDepth);
    for (int d = 0; d < depth; ++d) {
      const char* frame =
          slot.frames[static_cast<std::size_t>(d)].load(std::memory_order_relaxed);
      if (frame == nullptr) break;  // torn read during a pop; keep the prefix
      key.frames[static_cast<std::size_t>(key.num_frames)] = frame;
      ++key.num_frames;
    }

    // Open addressing, linear probing; a full table drops the observation
    // rather than allocating.
    const std::size_t mask = kTableSize - 1;
    std::size_t index = key.Hash() & mask;
    bool folded = false;
    for (std::size_t probe = 0; probe < kTableSize; ++probe) {
      TableEntry& entry = fold.table[(index + probe) & mask];
      if (!entry.used) {
        entry.used = true;
        entry.key = key;
        entry.count = 1;
        ++fold.distinct;
        folded = true;
        break;
      }
      if (entry.key.Equals(key)) {
        ++entry.count;
        folded = true;
        break;
      }
    }
    if (folded) {
      ++fold.thread_samples;
    } else {
      ++fold.fold_dropped;
    }
  }
  ++fold.samples;
  samples_counter.Increment();
  threads_gauge.Set(static_cast<double>(threads_seen));
}

void Profiler::Reset() {
  FoldState& fold = Fold();
  std::lock_guard<std::mutex> lock(fold.mutex);
  for (TableEntry& entry : fold.table) {
    entry.used = false;
    entry.count = 0;
  }
  fold.samples = 0;
  fold.thread_samples = 0;
  fold.fold_dropped = 0;
  fold.distinct = 0;
  fold.alloc_events.store(0, std::memory_order_relaxed);
}

ProfileStats Profiler::stats() const {
  FoldState& fold = Fold();
  std::lock_guard<std::mutex> lock(fold.mutex);
  ProfileStats stats;
  stats.samples = fold.samples;
  stats.thread_samples = fold.thread_samples;
  stats.fold_dropped = fold.fold_dropped;
  stats.slot_overflow = g_slot_overflow.load(std::memory_order_relaxed);
  stats.distinct_stacks = fold.distinct;
  stats.alloc_events = fold.alloc_events.load(std::memory_order_relaxed);
  return stats;
}

namespace {

std::vector<RenderedEntry> RenderEntries() {
  FoldState& fold = Fold();
  std::vector<RenderedEntry> rendered;
  {
    std::lock_guard<std::mutex> lock(fold.mutex);
    rendered.reserve(fold.distinct);
    for (const TableEntry& entry : fold.table) {
      if (!entry.used || entry.count == 0) continue;
      rendered.push_back({RenderStack(entry.key), entry.count});
    }
  }
  std::sort(rendered.begin(), rendered.end(),
            [](const RenderedEntry& a, const RenderedEntry& b) {
              return a.stack < b.stack;
            });
  return rendered;
}

}  // namespace

std::string Profiler::ExportFolded() const {
  std::string out;
  for (const RenderedEntry& entry : RenderEntries()) {
    out += entry.stack;
    out += ' ';
    out += std::to_string(entry.count);
    out += '\n';
  }
  return out;
}

std::string Profiler::ExportJson() const {
  const std::vector<RenderedEntry> rendered = RenderEntries();
  const ProfileStats s = stats();
  std::string out = "{";
  out += "\"samples\":" + std::to_string(s.samples);
  out += ",\"thread_samples\":" + std::to_string(s.thread_samples);
  out += ",\"fold_dropped\":" + std::to_string(s.fold_dropped);
  out += ",\"slot_overflow\":" + std::to_string(s.slot_overflow);
  out += ",\"alloc_events\":" + std::to_string(s.alloc_events);
  out += ",\"stacks\":[";
  bool first = true;
  for (const RenderedEntry& entry : rendered) {
    if (!first) out += ',';
    first = false;
    out += "{\"stack\":";
    AppendJsonString(out, entry.stack);
    out += ",\"count\":" + std::to_string(entry.count) + "}";
  }
  out += "]}";
  return out;
}

}  // namespace profiler
}  // namespace support
}  // namespace tnp
