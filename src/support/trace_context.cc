#include "support/trace_context.h"

#include <atomic>

namespace tnp {
namespace support {

namespace {

TraceContext& ThreadContext() {
  thread_local TraceContext context;
  return context;
}

}  // namespace

std::uint64_t NewTraceId() {
  static std::atomic<std::uint64_t> next_id{1};
  return next_id.fetch_add(1, std::memory_order_relaxed);
}

TraceContext TraceContext::NewRequest() {
  TraceContext context;
  context.req_id = NewTraceId();
  context.span_id = NewTraceId();
  return context;
}

const TraceContext& CurrentTraceContext() { return ThreadContext(); }

TraceContext& detail::MutableCurrentTraceContext() { return ThreadContext(); }

TraceContextScope::TraceContextScope(const TraceContext& ctx)
    : previous_(ThreadContext()) {
  ThreadContext() = ctx;
}

TraceContextScope::~TraceContextScope() { ThreadContext() = previous_; }

}  // namespace support
}  // namespace tnp
