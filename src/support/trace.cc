#include "support/trace.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "support/logging.h"
#include "support/trace_context.h"

namespace tnp {
namespace support {

namespace {

std::string FormatNumber(double value) {
  if (!std::isfinite(value)) return "0";
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  return buffer;
}

void AppendJsonEscaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
}

/// Tag `args` with the calling thread's request context: req_id plus the
/// causal parent span id. No-op without an installed context or when the
/// caller already tagged the event.
void AppendContextArgs(std::vector<TraceArg>& args) {
  const TraceContext& ctx = CurrentTraceContext();
  if (!ctx.active()) return;
  for (const auto& arg : args) {
    if (arg.key == "req_id") return;
  }
  args.emplace_back("req_id", ctx.req_id);
  if (ctx.span_id != 0) args.emplace_back("parent", ctx.span_id);
}

void AppendArgs(std::string& out, const std::vector<TraceArg>& args) {
  out += "{";
  bool first = true;
  for (const auto& arg : args) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    AppendJsonEscaped(out, arg.key);
    out += "\":";
    if (arg.quoted) {
      out += "\"";
      AppendJsonEscaped(out, arg.value);
      out += "\"";
    } else {
      out += arg.value;
    }
  }
  out += "}";
}

}  // namespace

TraceArg::TraceArg(std::string k, double v)
    : key(std::move(k)), value(FormatNumber(v)), quoted(false) {}

const std::string& TraceEvent::ArgValue(const std::string& key) const {
  static const std::string kEmpty;
  for (const auto& arg : args) {
    if (arg.key == key) return arg.value;
  }
  return kEmpty;
}

int TraceThreadId() {
  static std::atomic<int> next_id{0};
  thread_local const int id = next_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

Tracer::Tracer() : capacity_(1u << 15), origin_(std::chrono::steady_clock::now()) {
  const char* env = std::getenv("TNP_TRACE");
  if (env != nullptr) {
    const std::string value = env;
    enabled_.store(value == "1" || value == "true" || value == "on",
                   std::memory_order_relaxed);
  }
}

Tracer& Tracer::Global() {
  static Tracer tracer;
  return tracer;
}

void Tracer::SetCapacity(std::size_t capacity) {
  TNP_CHECK_GT(capacity, 0u);
  std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = capacity;
  ring_.clear();
  ring_.shrink_to_fit();
  next_seq_ = 0;
}

std::size_t Tracer::capacity() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return capacity_;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  next_seq_ = 0;
}

double Tracer::NowUs() const {
  return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() -
                                                   origin_)
      .count();
}

std::uint64_t Tracer::sequence() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return next_seq_;
}

std::uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return next_seq_ - ring_.size();
}

void Tracer::Record(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mutex_);
  event.seq = next_seq_;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
  } else {
    ring_[static_cast<std::size_t>(next_seq_ % capacity_)] = std::move(event);
  }
  ++next_seq_;
}

void Tracer::Emit(const char* category, std::string name, double ts_us, double dur_us,
                  std::vector<TraceArg> args) {
  if (!enabled()) return;
  TraceEvent event;
  event.name = std::move(name);
  event.category = category;
  event.phase = TracePhase::kComplete;
  event.ts_us = ts_us;
  event.dur_us = dur_us;
  event.tid = TraceThreadId();
  event.args = std::move(args);
  AppendContextArgs(event.args);
  Record(std::move(event));
}

void Tracer::InstantImpl(const char* category, std::string name,
                         std::vector<TraceArg> args) {
  TraceEvent event;
  event.name = std::move(name);
  event.category = category;
  event.phase = TracePhase::kInstant;
  event.ts_us = NowUs();
  event.tid = TraceThreadId();
  event.args = std::move(args);
  AppendContextArgs(event.args);
  Record(std::move(event));
}

void Tracer::Counter(const char* category, std::string name, double value) {
  if (!enabled()) return;
  TraceEvent event;
  event.name = std::move(name);
  event.category = category;
  event.phase = TracePhase::kCounter;
  event.ts_us = NowUs();
  event.counter_value = value;
  event.tid = TraceThreadId();
  Record(std::move(event));
}

std::vector<TraceEvent> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TraceEvent> events;
  events.reserve(ring_.size());
  const std::uint64_t oldest = next_seq_ - ring_.size();
  for (std::uint64_t seq = oldest; seq < next_seq_; ++seq) {
    events.push_back(ring_[static_cast<std::size_t>(seq % capacity_)]);
  }
  return events;
}

std::vector<TraceEvent> Tracer::EventsSince(std::uint64_t seq) const {
  std::vector<TraceEvent> events = Snapshot();
  std::vector<TraceEvent> filtered;
  for (auto& event : events) {
    if (event.seq >= seq) filtered.push_back(std::move(event));
  }
  return filtered;
}

std::string Tracer::ExportChromeTrace(std::size_t max_events) const {
  std::vector<TraceEvent> events = Snapshot();
  if (max_events != 0 && events.size() > max_events) {
    events.erase(events.begin(),
                 events.begin() + static_cast<std::ptrdiff_t>(events.size() - max_events));
  }
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const auto& event : events) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"";
    AppendJsonEscaped(out, event.name);
    out += "\",\"cat\":\"";
    AppendJsonEscaped(out, event.category);
    out += "\",\"ph\":\"";
    out += static_cast<char>(event.phase);
    out += "\",\"pid\":1,\"tid\":" + std::to_string(event.tid);
    out += ",\"ts\":" + FormatNumber(event.ts_us);
    switch (event.phase) {
      case TracePhase::kComplete:
        out += ",\"dur\":" + FormatNumber(event.dur_us);
        if (!event.args.empty()) {
          out += ",\"args\":";
          AppendArgs(out, event.args);
        }
        break;
      case TracePhase::kInstant:
        out += ",\"s\":\"t\"";
        if (!event.args.empty()) {
          out += ",\"args\":";
          AppendArgs(out, event.args);
        }
        break;
      case TracePhase::kCounter:
        out += ",\"args\":{\"value\":" + FormatNumber(event.counter_value) + "}";
        break;
    }
    out += "}";
  }
  out += "]}";
  return out;
}

void Tracer::Export(const std::string& path) const {
  std::ofstream file(path, std::ios::binary);
  if (!file) {
    TNP_THROW(kRuntimeError) << "cannot open trace output file '" << path << "'";
  }
  const std::string json = ExportChromeTrace();
  file.write(json.data(), static_cast<std::streamsize>(json.size()));
  if (!file) {
    TNP_THROW(kRuntimeError) << "failed writing trace output file '" << path << "'";
  }
}

void TraceScope::BeginContext() {
  const TraceContext& ctx = CurrentTraceContext();
  if (!ctx.active()) return;
  ctx_req_id_ = ctx.req_id;
  ctx_parent_id_ = ctx.span_id;
  ctx_span_id_ = NewTraceId();
  // Enclosed spans (and instants) attach to this span. TraceScopes destroy
  // in LIFO order per thread, so End() restores the chain correctly.
  detail::MutableCurrentTraceContext().span_id = ctx_span_id_;
}

void TraceScope::End() {
  if (ctx_req_id_ != 0) {
    detail::MutableCurrentTraceContext().span_id = ctx_parent_id_;
    args_.emplace_back("req_id", ctx_req_id_);
    args_.emplace_back("span", ctx_span_id_);
    if (ctx_parent_id_ != 0) args_.emplace_back("parent", ctx_parent_id_);
  }
  Tracer& tracer = Tracer::Global();
  TraceEvent event;
  event.name = std::move(name_);
  event.category = category_;
  event.phase = TracePhase::kComplete;
  event.ts_us = start_us_;
  event.dur_us = tracer.NowUs() - start_us_;
  event.tid = TraceThreadId();
  event.args = std::move(args_);
  tracer.Record(std::move(event));
}

// ------------------------------------------------------- JSON validation

namespace {

/// Minimal recursive-descent JSON parser used only for validation.
class JsonValidator {
 public:
  explicit JsonValidator(const std::string& text) : text_(text) {}

  bool Parse(std::string* error) {
    pos_ = 0;
    ok_ = true;
    error_.clear();
    SkipWs();
    ParseValue();
    SkipWs();
    if (ok_ && pos_ != text_.size()) Fail("trailing characters after JSON value");
    if (!ok_ && error != nullptr) *error = error_;
    return ok_;
  }

 private:
  void Fail(const std::string& message) {
    if (!ok_) return;
    ok_ = false;
    error_ = message + " at offset " + std::to_string(pos_);
  }

  void SkipWs() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                   text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void Expect(char c) {
    if (!Consume(c)) Fail(std::string("expected '") + c + "'");
  }

  void ParseValue() {
    if (!ok_) return;
    if (pos_ >= text_.size()) {
      Fail("unexpected end of input");
      return;
    }
    const char c = text_[pos_];
    if (c == '{') {
      ParseObject();
    } else if (c == '[') {
      ParseArray();
    } else if (c == '"') {
      ParseString();
    } else if (c == '-' || (c >= '0' && c <= '9')) {
      ParseNumber();
    } else if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
    } else if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
    } else if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
    } else {
      Fail("unexpected character");
    }
  }

  void ParseObject() {
    Expect('{');
    SkipWs();
    if (Consume('}')) return;
    for (;;) {
      SkipWs();
      ParseString();
      SkipWs();
      Expect(':');
      SkipWs();
      ParseValue();
      SkipWs();
      if (!ok_) return;
      if (Consume('}')) return;
      Expect(',');
      if (!ok_) return;
    }
  }

  void ParseArray() {
    Expect('[');
    SkipWs();
    if (Consume(']')) return;
    for (;;) {
      SkipWs();
      ParseValue();
      SkipWs();
      if (!ok_) return;
      if (Consume(']')) return;
      Expect(',');
      if (!ok_) return;
    }
  }

  void ParseString() {
    if (!Consume('"')) {
      Fail("expected string");
      return;
    }
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        Fail("unescaped control character in string");
        return;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 1; i <= 4; ++i) {
            if (pos_ + static_cast<std::size_t>(i) >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_ + i]))) {
              Fail("invalid \\u escape");
              return;
            }
          }
          pos_ += 4;
        } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' && esc != 'f' &&
                   esc != 'n' && esc != 'r' && esc != 't') {
          Fail("invalid escape character");
          return;
        }
      }
      ++pos_;
    }
    Fail("unterminated string");
  }

  void ParseNumber() {
    Consume('-');
    if (!std::isdigit(static_cast<unsigned char>(Peek()))) {
      Fail("invalid number");
      return;
    }
    while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    if (Consume('.')) {
      if (!std::isdigit(static_cast<unsigned char>(Peek()))) {
        Fail("invalid number fraction");
        return;
      }
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(Peek()))) {
        Fail("invalid number exponent");
        return;
      }
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  const std::string& text_;
  std::size_t pos_ = 0;
  bool ok_ = true;
  std::string error_;
};

}  // namespace

bool ValidateTraceJson(const std::string& json, std::string* error) {
  JsonValidator validator(json);
  if (!validator.Parse(error)) return false;
  // Structural requirement beyond well-formedness: a traceEvents array.
  if (json.find("\"traceEvents\"") == std::string::npos) {
    if (error != nullptr) *error = "missing top-level \"traceEvents\" array";
    return false;
  }
  return true;
}

}  // namespace support
}  // namespace tnp
