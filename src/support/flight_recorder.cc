#include "support/flight_recorder.h"

#include <cstdio>
#include <fstream>

#include "support/logging.h"
#include "support/metrics.h"
#include "support/profiler.h"
#include "support/timeseries.h"
#include "support/trace.h"

namespace tnp {
namespace support {

namespace {

void AppendJsonString(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* recorder = new FlightRecorder();  // outlives teardown
  return *recorder;
}

void FlightRecorder::Configure(FlightRecorderOptions options) {
  std::lock_guard<std::mutex> lock(mutex_);
  options_ = std::move(options);
  armed_ = true;
  storm_dumped_ = false;
  health_dumped_ = false;
  shed_times_.clear();
}

void FlightRecorder::Disarm() {
  std::lock_guard<std::mutex> lock(mutex_);
  armed_ = false;
  shed_times_.clear();
}

bool FlightRecorder::armed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return armed_;
}

void FlightRecorder::SetSection(const std::string& name,
                                std::function<std::string()> render) {
  std::lock_guard<std::mutex> lock(mutex_);
  sections_[name] = std::move(render);
}

std::string FlightRecorder::Render(const std::string& reason) const {
  std::size_t max_events;
  std::map<std::string, std::function<std::string()>> sections;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    max_events = options_.max_events;
    sections = sections_;
  }
  Tracer& tracer = Tracer::Global();
  std::string out = "{\"reason\":";
  AppendJsonString(out, reason);
  out += ",\"dump_ts_us\":" + std::to_string(tracer.NowUs());
  out += ",\"trace_dropped\":" + std::to_string(tracer.dropped());
  out += ",\"trace\":" + tracer.ExportChromeTrace(max_events);
  out += ",\"metrics\":" + metrics::ExportJson();
  // The last-N-seconds trend, not just instant values: a post-mortem needs
  // to see the windows leading into the incident.
  out += ",\"timeseries\":" + timeseries::Collector::Global().ExportJson();
  out += ",\"profile\":" + profiler::Profiler::Global().ExportJson();
  // Auxiliary sections render outside the lock: a section may itself take
  // locks (the attribution ledger) or call back into the recorder.
  for (const auto& [name, render] : sections) {
    out += ',';
    AppendJsonString(out, name);
    out += ':';
    out += render();
  }
  out += "}";
  return out;
}

std::string FlightRecorder::Dump(const std::string& reason,
                                 const std::string& path_override) {
  std::string path;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    path = path_override.empty() ? options_.path : path_override;
  }
  const std::string document = Render(reason);
  std::ofstream file(path, std::ios::binary);
  if (!file) {
    TNP_THROW(kRuntimeError) << "cannot open flight-record output file '" << path << "'";
  }
  file.write(document.data(), static_cast<std::streamsize>(document.size()));
  if (!file) {
    TNP_THROW(kRuntimeError) << "failed writing flight-record file '" << path << "'";
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++dumps_;
  }
  TNP_LOG(WARNING) << "flight recorder dumped (" << reason << ") to " << path;
  return path;
}

void FlightRecorder::RecordShed() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!armed_ || options_.shed_storm_threshold <= 0 || storm_dumped_) return;
    const auto now = std::chrono::steady_clock::now();
    shed_times_.push_back(now);
    const auto window = std::chrono::duration<double, std::milli>(
        options_.shed_storm_window_ms);
    while (!shed_times_.empty() &&
           std::chrono::duration<double, std::milli>(now - shed_times_.front()) >
               window) {
      shed_times_.pop_front();
    }
    if (static_cast<int>(shed_times_.size()) < options_.shed_storm_threshold) return;
    storm_dumped_ = true;  // one-shot until re-Configure
    shed_times_.clear();
  }
  Dump("shed-storm");
}

void FlightRecorder::RecordHealthTransition(const std::string& detail) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!armed_ || health_dumped_) return;
    health_dumped_ = true;  // one-shot until re-Configure
  }
  Dump("health:" + detail);
}

std::int64_t FlightRecorder::dumps() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dumps_;
}

}  // namespace support
}  // namespace tnp
