// Deterministic random number generation.
//
// Everything in this repository that needs randomness (synthetic weights,
// synthetic scenes, property-test inputs) goes through SplitMix64 seeded
// explicitly, so results are bit-reproducible across runs and machines.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

namespace tnp {
namespace support {

/// SplitMix64: tiny, fast, high-quality 64-bit PRNG (public-domain algorithm
/// by Sebastiano Vigna). Deterministic for a given seed on every platform.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

  std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double Uniform() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi) {
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(Next() % span);
  }

  /// Standard normal via Box-Muller (no cached second value; simple and
  /// deterministic).
  double Normal() {
    double u1 = Uniform();
    if (u1 < 1e-300) u1 = 1e-300;
    const double u2 = Uniform();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  /// Vector of floats drawn from N(0, stddev^2).
  std::vector<float> NormalFloats(std::size_t count, float stddev = 1.0f) {
    std::vector<float> out(count);
    for (auto& v : out) v = static_cast<float>(Normal() * stddev);
    return out;
  }

 private:
  std::uint64_t state_;
};

/// Stable 64-bit FNV-1a hash of a string; used to derive per-name seeds so
/// e.g. every model's weights depend only on the model name and a base seed.
inline std::uint64_t StableHash(const char* s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (; *s != '\0'; ++s) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(*s));
    h *= 1099511628211ULL;
  }
  return h;
}

inline std::uint64_t StableHash(const std::string& s) { return StableHash(s.c_str()); }

}  // namespace support
}  // namespace tnp
